#include "obs/progress.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace llmfi::obs {

namespace {

std::int64_t us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ProgressReporter::ProgressReporter(
    std::string label, std::uint64_t total,
    std::vector<std::string> tally_names, double interval_sec,
    std::function<void(const std::string&)> sink)
    : label_(std::move(label)),
      total_(total),
      tally_names_(std::move(tally_names)),
      tallies_(tally_names_.size()),
      start_(std::chrono::steady_clock::now()),
      next_emit_us_(static_cast<std::int64_t>(interval_sec * 1e6)),
      interval_sec_(interval_sec),
      sink_(std::move(sink)) {}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::add(std::size_t tally_index) {
  if (tally_index < tallies_.size()) {
    tallies_[tally_index].fetch_add(1, std::memory_order_relaxed);
  }
  done_.fetch_add(1, std::memory_order_relaxed);

  const std::int64_t now = us_since(start_);
  std::int64_t due = next_emit_us_.load(std::memory_order_relaxed);
  if (now < due) return;
  // One winner per interval; losers skip — they would only repeat the
  // same counters a few microseconds later.
  const std::int64_t interval_us = std::max<std::int64_t>(
      static_cast<std::int64_t>(interval_sec_ * 1e6), 0);
  if (!next_emit_us_.compare_exchange_strong(due, now + interval_us,
                                             std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(emit_mu_);
  if (!finished_) emit_locked(/*final_line=*/false);
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(emit_mu_);
  if (finished_) return;
  finished_ = true;
  emit_locked(/*final_line=*/true);
}

void ProgressReporter::emit_locked(bool final_line) {
  // Counters are read under emit_mu_, so successive lines can only see
  // non-decreasing values — the monotonicity the tests assert.
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const double sec = static_cast<double>(us_since(start_)) * 1e-6;
  const double rate = sec > 0 ? static_cast<double>(done) / sec : 0.0;
  std::ostringstream line;
  line << std::fixed;
  line.precision(1);
  line << "llmfi: " << label_ << (final_line ? " done: " : " ") << done
       << "/" << total_;
  if (!final_line && total_ > 0) {
    line << " (" << 100.0 * static_cast<double>(done) /
                        static_cast<double>(total_)
         << "%)";
  }
  line << ", " << rate << "/s";
  if (final_line) {
    line << ", " << sec << "s";
  } else if (rate > 0 && done < total_) {
    line << ", ETA " << static_cast<double>(total_ - done) / rate << "s";
  }
  for (std::size_t i = 0; i < tally_names_.size(); ++i) {
    line << (i == 0 ? " | " : " ") << tally_names_[i] << " "
         << tallies_[i].load(std::memory_order_relaxed);
  }
  const std::string s = line.str();
  if (sink_) {
    sink_(s);
  } else {
    std::fprintf(stderr, "%s\n", s.c_str());
  }
}

}  // namespace llmfi::obs
