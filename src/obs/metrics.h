#pragma once
// Metrics registry (DESIGN.md §11): counters, gauges, and fixed-bucket
// histograms with p50/p95/p99 summaries, exported as JSON and as
// Prometheus text exposition. Campaigns record per-trial telemetry
// (injection site/bit/pass, outcome class, detector verdicts, recovery
// passes, prefix-fork savings) and the serve layer records latencies
// (queue wait, time-to-first-token, per-token decode, batch occupancy).
//
// Overhead contract: like the tracer, every instrumented site checks
// metrics_enabled() — one relaxed atomic load — before touching the
// registry or reading a clock; disabled runs pay nothing else.
// Instruments are lock-free atomics, so recording from the campaign
// worker pool is safe and never serializes the workers. Observations
// never feed back into results: CampaignResult is byte-identical with
// metrics on or off.
//
// Naming follows Prometheus conventions: snake_case with a unit suffix
// (_total for counters, _us for microsecond histograms). Labels are
// embedded in the instrument name (e.g. `outcome_total{outcome="masked"}`)
// — the registry treats the full string as the key, which serializes
// correctly in both export formats.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace llmfi::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

// Resets the global registry and starts recording.
void metrics_start();
// Stops recording; accumulated values are retained for export.
void metrics_stop();

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
// ascending order; an implicit +inf bucket catches the rest. Quantiles
// are estimated by linear interpolation within the containing bucket
// (Prometheus histogram_quantile semantics), so p50/p95/p99 are
// summaries of the bucket layout, not exact order statistics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double quantile(double q) const;  // q in [0, 1]

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t n_buckets() const { return buckets_.size(); }  // bounds + inf
  void reset();

 private:
  friend class Registry;
  // Swaps in a new bucket layout. Only legal while the histogram is
  // empty and the registry mutex is held (set_histogram_bounds).
  void rebind_bounds(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Name-keyed instrument store. Lookup takes a mutex; instrument handles
// are stable for the registry's lifetime, so hot paths resolve once and
// record through the pointer. Exports list instruments in name order,
// which keeps the JSON/Prometheus output deterministic for golden tests.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Returns the existing histogram when `name` is already registered
  // (the bounds of the first registration win). A bounds override
  // installed via set_histogram_bounds() takes precedence over the
  // caller's default layout.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Installs `bounds` as the bucket layout for `name`, overriding the
  // default layout later histogram() registrations pass — the fix for
  // callers whose shared layout (campaign-scale latency buckets) cannot
  // resolve a specific instrument's range (sub-ms TTFT, multi-second
  // tails). If the histogram already exists and has no observations its
  // buckets are rebuilt in place; a populated histogram keeps its data
  // and layout. Overrides survive reset() so tools can install them
  // before metrics_start().
  void set_histogram_bounds(const std::string& name,
                            std::vector<double> bounds);

  void write_json(std::ostream& os) const;
  void write_prometheus(std::ostream& os) const;
  std::string json() const;
  std::string prometheus() const;

  // Drops every registered instrument. Handles returned before the reset
  // are invalidated — metrics_start() calls this, so resolve instruments
  // after starting, not across runs.
  void reset();

  static Registry& global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  // Sorted by name (std::map) for deterministic export order.
  std::map<std::string, Entry> entries_;
  // Per-name bucket-layout overrides; survive reset().
  std::map<std::string, std::vector<double>> bounds_overrides_;
};

// Shorthands against the global registry, gated on metrics_enabled():
// no-ops (beyond the flag check) when metrics are off.
void count(const std::string& name, std::uint64_t n = 1);
void gauge_set(const std::string& name, double v);
void observe(const std::string& name, std::vector<double> bounds, double v);

// Shared bucket layouts (microsecond latencies; small nonneg integers).
const std::vector<double>& latency_us_buckets();
const std::vector<double>& small_count_buckets();
// Serving-latency layout: finer sub-millisecond resolution than the
// campaign-scale latency_us_buckets() and an upper range out to 60s, so
// TTFT / token-gap histograms resolve both loopback microbenchmarks and
// multi-second stalls without saturating the top bucket. Installed via
// Registry::set_histogram_bounds by the serve tool.
const std::vector<double>& serve_latency_us_buckets();

}  // namespace llmfi::obs
