#pragma once
// Sliding-window SLO monitor (DESIGN.md §16): tracks TTFT and
// inter-token-gap attainment over 1s / 10s / 60s windows and derives
// multi-window burn rates the way an SRE alert would:
//
//   burn_rate = (1 - attainment) / (1 - objective)
//
// so 1.0 means the error budget is being consumed exactly at the rate
// the objective allows, >1 means faster (a 14x burn on the 1s window
// plus >1x on the 60s window is the classic page condition). Windows
// are rings of per-second buckets: record() folds a sample into the
// bucket for its wall second, snapshot() sums the buckets that fall
// inside each window. An empty window reports attainment 1.0 / burn
// 0.0 (no traffic consumes no budget).
//
// The serve layer records samples from the engine thread inside blocks
// already gated on metrics_enabled(); the monitor itself has an
// `enabled` latch so campaign runs (which share the global registry)
// never see SLO gauges unless a server armed them. Buckets are relaxed
// atomics — recording is single-writer in practice (engine thread) but
// snapshots race with it harmlessly.

#include <atomic>
#include <cstdint>
#include <string>

namespace llmfi::obs {

struct SloConfig {
  double ttft_slo_ms = 500.0;
  double token_gap_slo_ms = 250.0;
  double objective = 0.99;  // target attainment fraction in [0, 1)
};

struct SloWindow {
  double attainment = 1.0;
  double burn_rate = 0.0;
  std::uint64_t total = 0;
};

struct SloSnapshot {
  SloWindow ttft_1s, ttft_10s, ttft_60s;
  SloWindow gap_1s, gap_10s, gap_60s;
};

class SloMonitor {
 public:
  static constexpr int kBuckets = 64;  // > largest window (60s)

  void configure(const SloConfig& cfg);
  const SloConfig& config() const { return cfg_; }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // `now_us` is a steady-clock microsecond stamp (the caller already
  // holds one at every record site).
  void record_ttft(std::uint64_t now_us, double ttft_ms);
  void record_gap(std::uint64_t now_us, double gap_ms);

  SloSnapshot snapshot(std::uint64_t now_us) const;

  // Publishes slo_* gauges (attainment, burn rate per window, objective,
  // SLO thresholds) into the global metrics registry. Called by the
  // /metrics handler so scrapes see fresh windows.
  void publish(std::uint64_t now_us);

  // Drops all buckets (tests).
  void reset();

  static SloMonitor& global();

 private:
  struct Bucket {
    std::atomic<std::uint64_t> second{0};  // wall second this bucket holds
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> good{0};
  };
  struct Series {
    Bucket b[kBuckets];
  };

  void record(Series& s, std::uint64_t now_us, bool good);
  static SloWindow window(const Series& s, std::uint64_t now_sec, int width,
                          double objective);

  SloConfig cfg_;
  std::atomic<bool> enabled_{false};
  Series ttft_;
  Series gap_;
};

}  // namespace llmfi::obs
