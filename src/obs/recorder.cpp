#include "obs/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/context.h"

namespace llmfi::obs {

namespace detail {
std::atomic<bool> g_recorder_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 4096;

// Slot layout (8 atomic words, one cache line):
//   w0  seqlock version (odd = write in progress)
//   w1  type (top byte) | per-thread event index (low 56 bits)
//   w2  ts_us
//   w3  trace_id
//   w4  request_id
//   w5  trial_id (high u32) | pass (low u32, two's complement)
//   w6  a0
//   w7  a1
struct Slot {
  std::atomic<std::uint64_t> w[8];
};

struct Ring {
  std::atomic<std::uint64_t> head{0};  // next event index for this ring
  std::atomic<Ring*> next{nullptr};    // intrusive global list
  Slot* slots = nullptr;
  std::size_t cap = 0;
  int tid = 0;
};

std::atomic<Ring*> g_rings{nullptr};
std::atomic<int> g_next_tid{1};
std::atomic<std::size_t> g_capacity{0};  // 0 = not yet resolved
std::mutex g_dump_mu;
std::string g_dump_path;          // guarded by g_dump_mu
bool g_anomaly_dumped = false;    // guarded by g_dump_mu
char g_fatal_path[512] = {0};     // written before handler install only

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t resolve_capacity() {
  std::size_t cap = g_capacity.load(std::memory_order_relaxed);
  if (cap != 0) return cap;
  cap = kDefaultCapacity;
  if (const char* v = std::getenv("LLMFI_RECORDER_RING")) {
    const long n = std::atol(v);
    if (n >= 8 && n <= (1L << 24)) cap = static_cast<std::size_t>(n);
  }
  std::size_t expect = 0;
  g_capacity.compare_exchange_strong(expect, cap, std::memory_order_relaxed);
  return g_capacity.load(std::memory_order_relaxed);
}

Ring* make_ring() {
  Ring* r = new Ring;
  r->cap = resolve_capacity();
  // Zero-initialized: version words start even (0) = stable-empty.
  r->slots = new Slot[r->cap]();
  r->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  Ring* head = g_rings.load(std::memory_order_acquire);
  do {
    r->next.store(head, std::memory_order_relaxed);
  } while (!g_rings.compare_exchange_weak(head, r,
                                          std::memory_order_release,
                                          std::memory_order_acquire));
  return r;
}

Ring& thread_ring() {
  thread_local Ring* t_ring = nullptr;
  if (t_ring == nullptr) t_ring = make_ring();
  return *t_ring;
}

constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << 56) - 1;

// Seqlock read of one slot; false when empty, mid-write, or torn.
bool read_slot(const Slot& s, int tid, RecorderEvent& out) {
  const std::uint64_t v1 = s.w[0].load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;
  std::uint64_t w[8];
  for (int i = 1; i < 8; ++i) w[i] = s.w[i].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.w[0].load(std::memory_order_relaxed) != v1) return false;
  out.type = static_cast<RecType>(w[1] >> 56);
  out.index = w[1] & kIndexMask;
  out.ts_us = w[2];
  out.trace_id = w[3];
  out.request_id = w[4];
  out.trial_id = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(w[5] >> 32));
  out.pass = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[5]));
  out.a0 = static_cast<std::int64_t>(w[6]);
  out.a1 = static_cast<std::int64_t>(w[7]);
  out.tid = tid;
  return true;
}

// --- async-signal-safe formatting ----------------------------------------

void fd_write(int fd, const char* s, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, s, n);
    if (w <= 0) return;
    s += w;
    n -= static_cast<std::size_t>(w);
  }
}

void fd_puts(int fd, const char* s) { fd_write(fd, s, std::strlen(s)); }

void fd_put_i64(int fd, std::int64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  const bool neg = v < 0;
  std::uint64_t u = neg ? 0 - static_cast<std::uint64_t>(v)
                        : static_cast<std::uint64_t>(v);
  do {
    *--p = static_cast<char>('0' + (u % 10));
    u /= 10;
  } while (u != 0);
  if (neg) *--p = '-';
  fd_write(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

void fd_put_event(int fd, const RecorderEvent& e) {
  fd_puts(fd, "{\"ts_us\":");
  fd_put_i64(fd, static_cast<std::int64_t>(e.ts_us));
  fd_puts(fd, ",\"tid\":");
  fd_put_i64(fd, e.tid);
  fd_puts(fd, ",\"seq\":");
  fd_put_i64(fd, static_cast<std::int64_t>(e.index));
  fd_puts(fd, ",\"type\":\"");
  fd_puts(fd, rec_type_name(e.type));
  fd_puts(fd, "\",\"trace\":");
  fd_put_i64(fd, static_cast<std::int64_t>(e.trace_id));
  fd_puts(fd, ",\"request\":");
  fd_put_i64(fd, static_cast<std::int64_t>(e.request_id));
  fd_puts(fd, ",\"trial\":");
  fd_put_i64(fd, e.trial_id);
  fd_puts(fd, ",\"pass\":");
  fd_put_i64(fd, e.pass);
  fd_puts(fd, ",\"a0\":");
  fd_put_i64(fd, e.a0);
  fd_puts(fd, ",\"a1\":");
  fd_put_i64(fd, e.a1);
  fd_puts(fd, "}");
}

void fatal_dump_handler(int sig) {
  if (g_fatal_path[0] != '\0') {
    const int fd = ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder_dump_fd(fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

namespace detail {

void rec_push(RecType t, std::int64_t pass, std::int64_t a0,
              std::int64_t a1) {
  Ring& r = thread_ring();
  const std::uint64_t idx = r.head.load(std::memory_order_relaxed);
  Slot& s = r.slots[idx % r.cap];
  const RequestContext& ctx = current_context();

  const std::uint64_t v = s.w[0].load(std::memory_order_relaxed) + 1;  // odd
  s.w[0].store(v, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.w[1].store((static_cast<std::uint64_t>(t) << 56) | (idx & kIndexMask),
               std::memory_order_relaxed);
  s.w[2].store(now_us(), std::memory_order_relaxed);
  s.w[3].store(ctx.trace_id, std::memory_order_relaxed);
  s.w[4].store(ctx.request_id, std::memory_order_relaxed);
  s.w[5].store((static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(ctx.trial_id))
                << 32) |
                   static_cast<std::uint32_t>(static_cast<std::int32_t>(pass)),
               std::memory_order_relaxed);
  s.w[6].store(static_cast<std::uint64_t>(a0), std::memory_order_relaxed);
  s.w[7].store(static_cast<std::uint64_t>(a1), std::memory_order_relaxed);
  s.w[0].store(v + 1, std::memory_order_release);
  r.head.store(idx + 1, std::memory_order_release);
}

}  // namespace detail

const char* rec_type_name(RecType t) {
  switch (t) {
    case RecType::None: return "none";
    case RecType::InjectArmed: return "inject_armed";
    case RecType::InjectFired: return "inject_fired";
    case RecType::DetectorTrip: return "detector_trip";
    case RecType::DetectorVerdict: return "detector_verdict";
    case RecType::RecoveryRewind: return "recovery_rewind";
    case RecType::KvFork: return "kv_fork";
    case RecType::KvCow: return "kv_cow";
    case RecType::Cancel: return "cancel";
    case RecType::Nonfinite: return "nonfinite";
    case RecType::RequestAdmit: return "request_admit";
    case RecType::RequestRetire: return "request_retire";
  }
  return "unknown";
}

void recorder_start(std::size_t ring_capacity) {
  if (ring_capacity >= 8) {
    g_capacity.store(ring_capacity, std::memory_order_relaxed);
  }
  detail::g_recorder_enabled.store(true, std::memory_order_relaxed);
}

void recorder_stop() {
  detail::g_recorder_enabled.store(false, std::memory_order_relaxed);
}

void recorder_clear() {
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < r->cap; ++i) {
      r->slots[i].w[0].store(0, std::memory_order_relaxed);
    }
    r->head.store(0, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(g_dump_mu);
  g_anomaly_dumped = false;
}

std::size_t recorder_ring_capacity() { return resolve_capacity(); }

std::vector<RecorderEvent> recorder_snapshot() {
  std::vector<RecorderEvent> out;
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next.load(std::memory_order_acquire)) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > r->cap ? head - r->cap : 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      RecorderEvent e;
      if (!read_slot(r->slots[i % r->cap], r->tid, e)) continue;
      if (e.index != (i & kIndexMask)) continue;  // overwritten mid-read
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecorderEvent& a, const RecorderEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.index < b.index;
            });
  return out;
}

std::vector<RecorderEvent> recorder_events_for_request(
    std::uint64_t request_id) {
  std::vector<RecorderEvent> out;
  for (const RecorderEvent& e : recorder_snapshot()) {
    if (e.request_id == request_id) out.push_back(e);
  }
  return out;
}

std::vector<RecorderEvent> recorder_events_for_trial(std::int32_t trial_id) {
  std::vector<RecorderEvent> out;
  for (const RecorderEvent& e : recorder_snapshot()) {
    if (e.trial_id == trial_id) out.push_back(e);
  }
  return out;
}

std::string event_json(const RecorderEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_us\":%llu,\"tid\":%d,\"seq\":%llu,\"type\":\"%s\","
                "\"trace\":%llu,\"request\":%llu,\"trial\":%d,\"pass\":%lld,"
                "\"a0\":%lld,\"a1\":%lld}",
                static_cast<unsigned long long>(e.ts_us), e.tid,
                static_cast<unsigned long long>(e.index), rec_type_name(e.type),
                static_cast<unsigned long long>(e.trace_id),
                static_cast<unsigned long long>(e.request_id), e.trial_id,
                static_cast<long long>(e.pass), static_cast<long long>(e.a0),
                static_cast<long long>(e.a1));
  return buf;
}

void recorder_write_json(std::ostream& os) {
  os << "{\"ring_capacity\":" << recorder_ring_capacity() << ",\"events\":[";
  bool first = true;
  for (const RecorderEvent& e : recorder_snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event_json(e);
  }
  os << "\n]}\n";
}

std::string recorder_json() {
  std::ostringstream os;
  recorder_write_json(os);
  return os.str();
}

bool recorder_write_json_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  recorder_write_json(os);
  return os.good();
}

std::optional<std::string> recorder_request_timeline_json(
    std::uint64_t request_id) {
  const auto events = recorder_events_for_request(request_id);
  if (events.empty()) return std::nullopt;
  std::string out = "{\"request_id\":" + std::to_string(request_id) +
                    ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += event_json(events[i]);
  }
  out += "\n]}\n";
  return out;
}

void recorder_dump_fd(int fd) {
  fd_puts(fd, "{\"events\":[");
  bool first = true;
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr;
       r = r->next.load(std::memory_order_acquire)) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > r->cap ? head - r->cap : 0;
    for (std::uint64_t i = lo; i < head; ++i) {
      RecorderEvent e;
      if (!read_slot(r->slots[i % r->cap], r->tid, e)) continue;
      if (e.index != (i & kIndexMask)) continue;
      if (!first) fd_puts(fd, ",");
      first = false;
      fd_puts(fd, "\n");
      fd_put_event(fd, e);
    }
  }
  fd_puts(fd, "\n]}\n");
}

void install_fatal_dump_handler(const char* path) {
  std::snprintf(g_fatal_path, sizeof(g_fatal_path), "%s", path);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = fatal_dump_handler;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

void recorder_set_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_dump_mu);
  g_dump_path = path;
  g_anomaly_dumped = false;
}

void recorder_note_anomaly(std::int32_t trial_id) {
  (void)trial_id;
  std::lock_guard<std::mutex> lock(g_dump_mu);
  if (g_dump_path.empty() || g_anomaly_dumped) return;
  g_anomaly_dumped = true;
  recorder_write_json_file(g_dump_path);
}

}  // namespace llmfi::obs
