#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace llmfi::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

void metrics_start() {
  Registry::global().reset();
  detail::g_metrics_enabled.store(true, std::memory_order_relaxed);
}

void metrics_stop() {
  detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
}

// --- Histogram -----------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const auto n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const {
  const auto n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      // The +inf bucket has no upper edge; report its lower edge.
      if (i == bounds_.size()) return lo;
      const double hi = bounds_[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void Histogram::rebind_bounds(std::vector<double> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  bounds_ = std::move(bounds);
  std::vector<std::atomic<std::uint64_t>> fresh(bounds_.size() + 1);
  buckets_.swap(fresh);
}

// --- Registry ------------------------------------------------------------

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (!e.histogram) {
    const auto ov = bounds_overrides_.find(name);
    e.histogram = std::make_unique<Histogram>(
        ov != bounds_overrides_.end() ? ov->second : std::move(bounds));
  }
  return *e.histogram;
}

void Registry::set_histogram_bounds(const std::string& name,
                                    std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it != entries_.end() && it->second.histogram &&
      it->second.histogram->count() == 0) {
    it->second.histogram->rebind_bounds(bounds);
  }
  bounds_overrides_[name] = std::move(bounds);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

namespace {

// %g-style shortest representation; integral values print without a
// trailing ".0" so golden tests read naturally.
std::string fmt_num(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e999" : "-1e999";  // never emitted
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Instrument names carry embedded label quotes (`x_total{a="b"}`);
// JSON keys must escape them.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Prometheus sample lines need the label block (if any) merged with
// extra labels like `le`. "name{a=\"b\"}" + (le, 5) ->
// "name_bucket{a=\"b\",le=\"5\"}".
std::string prom_name(const std::string& name, const std::string& suffix,
                      const std::string& extra_label = "") {
  const auto brace = name.find('{');
  std::string base =
      brace == std::string::npos ? name : name.substr(0, brace);
  std::string labels =
      brace == std::string::npos
          ? ""
          : name.substr(brace + 1, name.size() - brace - 2);  // strip {}
  base += suffix;
  if (!extra_label.empty()) {
    labels = labels.empty() ? extra_label : labels + "," + extra_label;
  }
  return labels.empty() ? base : base + "{" + labels + "}";
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(name) << "\": ";
    if (e.counter) {
      os << e.counter->value();
    } else if (e.gauge) {
      os << fmt_num(e.gauge->value());
    } else if (e.histogram) {
      const auto& h = *e.histogram;
      os << "{\"count\": " << h.count() << ", \"sum\": " << fmt_num(h.sum())
         << ", \"mean\": " << fmt_num(h.mean())
         << ", \"p50\": " << fmt_num(h.quantile(0.50))
         << ", \"p95\": " << fmt_num(h.quantile(0.95))
         << ", \"p99\": " << fmt_num(h.quantile(0.99)) << ", \"buckets\": [";
      for (std::size_t i = 0; i < h.n_buckets(); ++i) {
        const std::string le =
            i < h.bounds().size() ? fmt_num(h.bounds()[i]) : "+Inf";
        os << (i ? ", " : "") << "{\"le\": \"" << le
           << "\", \"n\": " << h.bucket_count(i) << "}";
      }
      os << "]}";
    } else {
      os << "null";
    }
  }
  os << "\n}\n";
}

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      os << prom_name(name, "") << " " << e.counter->value() << "\n";
    } else if (e.gauge) {
      os << prom_name(name, "") << " " << fmt_num(e.gauge->value()) << "\n";
    } else if (e.histogram) {
      const auto& h = *e.histogram;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.n_buckets(); ++i) {
        cum += h.bucket_count(i);
        const std::string le =
            i < h.bounds().size() ? fmt_num(h.bounds()[i]) : "+Inf";
        os << prom_name(name, "_bucket", "le=\"" + le + "\"") << " " << cum
           << "\n";
      }
      os << prom_name(name, "_sum") << " " << fmt_num(h.sum()) << "\n";
      os << prom_name(name, "_count") << " " << h.count() << "\n";
    }
  }
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Registry::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

// --- gated shorthands ----------------------------------------------------

void count(const std::string& name, std::uint64_t n) {
  if (metrics_enabled()) Registry::global().counter(name).inc(n);
}

void gauge_set(const std::string& name, double v) {
  if (metrics_enabled()) Registry::global().gauge(name).set(v);
}

void observe(const std::string& name, std::vector<double> bounds, double v) {
  if (metrics_enabled()) {
    Registry::global().histogram(name, std::move(bounds)).observe(v);
  }
}

const std::vector<double>& latency_us_buckets() {
  static const std::vector<double> b{
      10,     20,     50,      100,     200,     500,     1000,   2000,
      5000,   10000,  20000,   50000,   100000,  200000,  500000, 1000000,
      2000000, 5000000, 10000000};
  return b;
}

const std::vector<double>& small_count_buckets() {
  static const std::vector<double> b{0,  1,  2,  3,  4,  6,  8,
                                     12, 16, 24, 32, 48, 64, 128};
  return b;
}

const std::vector<double>& serve_latency_us_buckets() {
  // ~1.6x geometric steps from 10µs to 60s: sub-ms TTFTs land in fine
  // buckets, multi-second stalls still resolve instead of piling into
  // the +inf bucket.
  static const std::vector<double> b{
      10,      25,      50,      75,      100,      150,      250,
      400,     650,     1000,    1500,    2500,     4000,     6500,
      10000,   15000,   25000,   40000,   65000,    100000,   150000,
      250000,  400000,  650000,  1000000, 1500000,  2500000,  4000000,
      6500000, 10000000, 15000000, 25000000, 40000000, 60000000};
  return b;
}

}  // namespace llmfi::obs
