#pragma once
// Runtime tracer (DESIGN.md §11): scoped phase spans — prefill, per-pass
// decode, attention/FFN, detector checks, recovery rewinds, prefix-fork
// capture/resume, scheduler admission/retirement — collected into
// per-thread buffers and exported as Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto (ui.perfetto.dev).
//
// NOT to be confused with core::tracer (src/core/tracer.h), which is the
// error-PROPAGATION tracer of paper Figs 5-6: it captures layer outputs
// and diffs clean vs faulty activations. obs:: traces *time*, core::
// traces *corruption spread*. See the README glossary.
//
// Overhead contract: when tracing is disabled (the default), every entry
// point reduces to one relaxed atomic load and a predicted-not-taken
// branch — no clock reads, no allocation, no locks. Instrumented code
// must therefore never perturb results: spans only read the steady
// clock, so campaign outputs are byte-identical with tracing on or off.
//
// Thread model: each thread appends events to a private thread_local
// buffer (no contention on the hot path). Buffers are folded into the
// global event list by trace_flush_thread() — the campaign drivers call
// it at trial boundaries — and automatically when a thread exits.
// trace_write_json() flushes the calling thread and serializes whatever
// has been folded so far; per-thread event order is preserved, so B/E
// pairs stay well-nested within each tid.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace llmfi::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void trace_begin(const char* name, std::int64_t arg, bool has_arg);
void trace_end();
void trace_instant_event(const char* name, std::int64_t arg, bool has_arg);
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Clears any buffered events and starts collecting.
void trace_start();
// Stops collecting; buffered events are retained for trace_write_json.
void trace_stop();
// Drops all buffered events (global and this thread's).
void trace_clear();

// Folds the calling thread's buffer into the global event list.
void trace_flush_thread();

// Number of events folded so far (flushes the calling thread first).
std::size_t trace_event_count();

// Serializes the collected events as Chrome trace-event JSON. Flushes
// the calling thread's buffer first; other threads must have flushed
// (or exited) for their events to appear.
void trace_write_json(std::ostream& os);
// Convenience: write to `path`; returns false on I/O failure.
bool trace_write_json_file(const std::string& path);
std::string trace_json();

// RAII scoped span: emits a "B" event on construction and the matching
// "E" on destruction. `name` must be a string literal (or otherwise
// outlive the trace) — the tracer stores the pointer, not a copy.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (trace_enabled()) {
      armed_ = true;
      detail::trace_begin(name, 0, /*has_arg=*/false);
    }
  }
  TraceScope(const char* name, std::int64_t arg) {
    if (trace_enabled()) {
      armed_ = true;
      detail::trace_begin(name, arg, /*has_arg=*/true);
    }
  }
  ~TraceScope() {
    if (armed_) detail::trace_end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool armed_ = false;
};

// Zero-duration marker (phase "i": detector trips, retirements, ...).
inline void trace_instant(const char* name) {
  if (trace_enabled()) detail::trace_instant_event(name, 0, false);
}
inline void trace_instant(const char* name, std::int64_t arg) {
  if (trace_enabled()) detail::trace_instant_event(name, arg, true);
}

}  // namespace llmfi::obs
