#include "obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string_view>

namespace llmfi::obs {

namespace {

std::optional<std::string> env_path(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

bool prometheus_path(std::string_view path) {
  return path.ends_with(".prom") || path.ends_with(".txt");
}

}  // namespace

EnvConfig init_from_env() {
  EnvConfig cfg;
  cfg.trace_path = env_path("LLMFI_TRACE");
  cfg.metrics_path = env_path("LLMFI_METRICS");
  cfg.recorder_path = env_path("LLMFI_RECORDER");
  if (cfg.trace_path) trace_start();
  if (cfg.metrics_path) metrics_start();
  if (cfg.recorder_path) {
    recorder_start();
    recorder_set_dump_path(*cfg.recorder_path);
  }
  return cfg;
}

bool write_outputs(const EnvConfig& cfg) {
  bool ok = true;
  if (cfg.trace_path) {
    if (!trace_write_json_file(*cfg.trace_path)) {
      std::fprintf(stderr, "llmfi: failed to write trace to %s\n",
                   cfg.trace_path->c_str());
      ok = false;
    }
  }
  if (cfg.metrics_path) {
    std::ofstream os(*cfg.metrics_path);
    if (os) {
      if (prometheus_path(*cfg.metrics_path)) {
        Registry::global().write_prometheus(os);
      } else {
        Registry::global().write_json(os);
      }
    }
    if (!os.good()) {
      std::fprintf(stderr, "llmfi: failed to write metrics to %s\n",
                   cfg.metrics_path->c_str());
      ok = false;
    }
  }
  if (cfg.recorder_path) {
    if (!recorder_write_json_file(*cfg.recorder_path)) {
      std::fprintf(stderr, "llmfi: failed to write recorder dump to %s\n",
                   cfg.recorder_path->c_str());
      ok = false;
    }
  }
  return ok;
}

bool progress_from_env(bool fallback) {
  const char* v = std::getenv("LLMFI_PROGRESS");
  if (v == nullptr || *v == '\0') return fallback;
  return std::string_view(v) != "0";
}

}  // namespace llmfi::obs
