#include "obs/slo.h"

#include <algorithm>

#include "obs/metrics.h"

namespace llmfi::obs {

void SloMonitor::configure(const SloConfig& cfg) { cfg_ = cfg; }

void SloMonitor::record(Series& s, std::uint64_t now_us, bool good) {
  const std::uint64_t sec = now_us / 1000000u;
  Bucket& b = s.b[sec % kBuckets];
  std::uint64_t held = b.second.load(std::memory_order_relaxed);
  if (held != sec) {
    // The bucket last held a second at least kBuckets ago: recycle it.
    // Racing recorders both reset; the loser's counts for the stale
    // second are dropped, which is fine for a sliding-window estimate.
    b.second.store(sec, std::memory_order_relaxed);
    b.total.store(0, std::memory_order_relaxed);
    b.good.store(0, std::memory_order_relaxed);
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (good) b.good.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::record_ttft(std::uint64_t now_us, double ttft_ms) {
  record(ttft_, now_us, ttft_ms <= cfg_.ttft_slo_ms);
}

void SloMonitor::record_gap(std::uint64_t now_us, double gap_ms) {
  record(gap_, now_us, gap_ms <= cfg_.token_gap_slo_ms);
}

SloWindow SloMonitor::window(const Series& s, std::uint64_t now_sec,
                             int width, double objective) {
  std::uint64_t total = 0;
  std::uint64_t good = 0;
  for (int i = 0; i < width; ++i) {
    if (now_sec < static_cast<std::uint64_t>(i)) break;
    const std::uint64_t sec = now_sec - static_cast<std::uint64_t>(i);
    const Bucket& b = s.b[sec % kBuckets];
    if (b.second.load(std::memory_order_relaxed) != sec) continue;
    total += b.total.load(std::memory_order_relaxed);
    good += b.good.load(std::memory_order_relaxed);
  }
  SloWindow w;
  w.total = total;
  w.attainment = total > 0
                     ? static_cast<double>(good) / static_cast<double>(total)
                     : 1.0;
  const double budget = 1.0 - objective;
  w.burn_rate = budget > 0.0 ? (1.0 - w.attainment) / budget : 0.0;
  return w;
}

SloSnapshot SloMonitor::snapshot(std::uint64_t now_us) const {
  const std::uint64_t sec = now_us / 1000000u;
  SloSnapshot snap;
  snap.ttft_1s = window(ttft_, sec, 1, cfg_.objective);
  snap.ttft_10s = window(ttft_, sec, 10, cfg_.objective);
  snap.ttft_60s = window(ttft_, sec, 60, cfg_.objective);
  snap.gap_1s = window(gap_, sec, 1, cfg_.objective);
  snap.gap_10s = window(gap_, sec, 10, cfg_.objective);
  snap.gap_60s = window(gap_, sec, 60, cfg_.objective);
  return snap;
}

void SloMonitor::publish(std::uint64_t now_us) {
  if (!enabled()) return;
  const SloSnapshot snap = snapshot(now_us);
  auto& reg = Registry::global();
  const auto set = [&reg](const char* slo, const char* win,
                          const SloWindow& w) {
    const std::string tail = std::string("{slo=\"") + slo + "\",window=\"" +
                             win + "\"}";
    reg.gauge("slo_attainment" + tail).set(w.attainment);
    reg.gauge("slo_burn_rate" + tail).set(w.burn_rate);
  };
  set("ttft", "1s", snap.ttft_1s);
  set("ttft", "10s", snap.ttft_10s);
  set("ttft", "60s", snap.ttft_60s);
  set("token_gap", "1s", snap.gap_1s);
  set("token_gap", "10s", snap.gap_10s);
  set("token_gap", "60s", snap.gap_60s);
  reg.gauge("slo_objective").set(cfg_.objective);
  reg.gauge("slo_ttft_ms").set(cfg_.ttft_slo_ms);
  reg.gauge("slo_token_gap_ms").set(cfg_.token_gap_slo_ms);
}

void SloMonitor::reset() {
  for (Series* s : {&ttft_, &gap_}) {
    for (auto& b : s->b) {
      b.second.store(0, std::memory_order_relaxed);
      b.total.store(0, std::memory_order_relaxed);
      b.good.store(0, std::memory_order_relaxed);
    }
  }
}

SloMonitor& SloMonitor::global() {
  static SloMonitor m;
  return m;
}

}  // namespace llmfi::obs
