#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/context.h"

namespace llmfi::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name;    // literal; "E" events reuse the begin's name slot
  std::int64_t ts_us;  // microseconds since the process trace epoch
  std::int64_t arg;
  // Owning request (obs/context.h) at emission time; all-unset outside
  // a ContextScope, in which case no args fields are serialized and the
  // output is byte-identical to the pre-context format.
  RequestContext ctx;
  int tid;
  char ph;  // 'B', 'E', or 'i'
  bool has_arg;
};

// One steady-clock epoch for the whole process so timestamps from every
// thread share an axis.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

std::mutex g_mutex;                   // guards g_events and tid handout
std::vector<TraceEvent> g_events;     // folded events, flush order
std::atomic<int> g_next_tid{1};
std::atomic<std::uint64_t> g_generation{0};  // bumped by trace_clear

// Per-thread buffer. The destructor folds leftovers so short-lived
// worker threads never lose events, even if the driver forgets to
// flush at a trial boundary.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  // Events buffered before a trace_clear() belong to the previous trace;
  // the generation stamp lets flush discard them instead of leaking them
  // into the new one.
  std::uint64_t generation = g_generation.load(std::memory_order_relaxed);

  void flush() {
    if (events.empty()) return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (generation == g_generation.load(std::memory_order_relaxed)) {
      g_events.insert(g_events.end(), events.begin(), events.end());
    }
    events.clear();
    generation = g_generation.load(std::memory_order_relaxed);
  }

  ~ThreadBuffer() { flush(); }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer buf;
  return buf;
}

void push_event(const char* name, char ph, std::int64_t arg, bool has_arg) {
  auto& buf = thread_buffer();
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if (buf.generation != gen) {
    buf.events.clear();  // stale events from before a trace_clear()
    buf.generation = gen;
  }
  buf.events.push_back(
      TraceEvent{name, now_us(), arg, current_context(), buf.tid, ph,
                 has_arg});
}

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

namespace detail {

void trace_begin(const char* name, std::int64_t arg, bool has_arg) {
  push_event(name, 'B', arg, has_arg);
}

void trace_end() { push_event("", 'E', 0, false); }

void trace_instant_event(const char* name, std::int64_t arg, bool has_arg) {
  push_event(name, 'i', arg, has_arg);
}

}  // namespace detail

void trace_start() {
  trace_clear();
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void trace_clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_events.clear();
  // This thread's own buffer can be invalidated eagerly; other threads
  // notice the generation bump on their next push or flush.
  thread_buffer().events.clear();
  thread_buffer().generation = g_generation.load(std::memory_order_relaxed);
}

void trace_flush_thread() { thread_buffer().flush(); }

std::size_t trace_event_count() {
  trace_flush_thread();
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_events.size();
}

void trace_write_json(std::ostream& os) {
  trace_flush_thread();
  std::lock_guard<std::mutex> lock(g_mutex);
  os << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < g_events.size(); ++i) {
    const auto& e = g_events[i];
    os << "{\"name\":\"";
    json_escape(os, e.ph == 'E' ? "" : e.name);
    os << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us
       << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (e.has_arg || e.ctx.valid()) {
      os << ",\"args\":{";
      bool first_arg = true;
      const auto field = [&](const char* key, std::int64_t v) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"" << key << "\":" << v;
      };
      if (e.has_arg) field("v", e.arg);
      if (e.ctx.trace_id != 0) {
        field("trace", static_cast<std::int64_t>(e.ctx.trace_id));
      }
      if (e.ctx.request_id != 0) {
        field("req", static_cast<std::int64_t>(e.ctx.request_id));
      }
      if (e.ctx.trial_id >= 0) field("trial", e.ctx.trial_id);
      os << "}";
    }
    os << "}" << (i + 1 < g_events.size() ? "," : "") << "\n";
  }
  os << "]}\n";
}

bool trace_write_json_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  trace_write_json(os);
  return os.good();
}

std::string trace_json() {
  std::ostringstream os;
  trace_write_json(os);
  return os.str();
}

}  // namespace llmfi::obs
