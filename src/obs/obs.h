#pragma once
// Umbrella header + env-knob plumbing for the observability subsystem
// (DESIGN.md §11). The three pieces:
//   obs/trace.h    — runtime tracer (Chrome trace-event JSON spans)
//   obs/metrics.h  — counters / gauges / histograms, JSON + Prometheus
//   obs/progress.h — periodic stderr progress line
//
// Environment knobs (equivalents of the llmfi_cli/llmfi_serve flags):
//   LLMFI_TRACE=<file>    collect spans, write Chrome trace JSON to file
//   LLMFI_METRICS=<file>  collect metrics; file ending in .prom or .txt
//                         gets Prometheus text exposition, anything else
//                         gets JSON
//   LLMFI_RECORDER=<file> arm the fault flight recorder; the full event
//                         dump is written to file at exit, and the first
//                         DetectedUnrecovered/SDC trial dumps eagerly
//   LLMFI_RECORDER_RING=N per-thread ring capacity (default 4096)
//   LLMFI_PROGRESS=1      periodic campaign progress line on stderr
//                         ("0" disables; overrides CampaignConfig)

#include <optional>
#include <string>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace llmfi::obs {

// Paths harvested from the environment by init_from_env().
struct EnvConfig {
  std::optional<std::string> trace_path;     // LLMFI_TRACE
  std::optional<std::string> metrics_path;   // LLMFI_METRICS
  std::optional<std::string> recorder_path;  // LLMFI_RECORDER
};

// Reads LLMFI_TRACE / LLMFI_METRICS and enables the corresponding
// collectors (empty values are ignored). The caller owns writing the
// files out — usually via write_outputs() at process exit.
EnvConfig init_from_env();

// Writes the trace / metrics files named in `cfg` (no-op for unset
// entries). Metrics paths ending in ".prom" or ".txt" get Prometheus
// text exposition; everything else gets JSON. Returns false if any
// write failed.
bool write_outputs(const EnvConfig& cfg);

// True when LLMFI_PROGRESS is set to anything but "0"; `fallback` when
// unset or empty.
bool progress_from_env(bool fallback);

}  // namespace llmfi::obs
