#pragma once
// Fault flight recorder (DESIGN.md §16): a fixed-size lock-free
// per-thread ring buffer of compact binary events — injection armed /
// fired, detector trip + verdict, recovery rewind, KV fork / COW,
// cancel, nonfinite flag, request admit / retire — cheap enough to
// leave on in Release builds. Where the tracer answers "where did the
// time go", the recorder answers "what happened to THIS request": every
// event is stamped with the current obs::RequestContext, so an
// anomalous trial or a tail-latency HTTP request yields a replayable
// causal timeline (fault plan → injection → trip → rewinds → verdict)
// instead of a bare outcome enum.
//
// Memory model: each thread owns one heap-allocated ring of 64-byte
// slots (8 atomic words). The writer is single-producer: it claims the
// next slot from its own head counter, marks the slot's version word
// odd, stores the payload, marks it even, then publishes the head — a
// per-slot seqlock. Readers (dump endpoints, the signal handler) walk
// all rings concurrently: a slot whose version word is odd or changes
// across the payload read is discarded, and entries older than
// head − capacity are treated as overwritten. Every access is a relaxed
// or acquire/release atomic, so dump-while-writing is TSan-clean by
// construction. Rings are registered on a lock-free intrusive list and
// never freed — events from exited campaign workers stay dumpable, and
// the fatal-signal handler can walk the list without locks.
//
// Overhead contract: like the tracer, a disabled recorder costs one
// relaxed atomic load per site; an enabled one costs a clock read plus
// eight relaxed stores into thread-private cache lines. Nothing here is
// ever read back by the compute path, so CampaignResult stays
// byte-identical with the recorder on or off.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace llmfi::obs {

enum class RecType : std::uint8_t {
  None = 0,
  InjectArmed,     // fault plan sampled: pass = planned pass, a0 = model,
                   //   a1 = target block
  InjectFired,     // flip landed: a0 = row, a1 = col
  DetectorTrip,    // detector latched: a0 = layer kind, a1 = block
  DetectorVerdict, // end-of-request/recovery verdict: a0 = 1 clean /
                   //   0 tripped-unrecovered, a1 = trips observed
  RecoveryRewind,  // rewind-and-retry attempt: a0 = attempt number
  KvFork,          // prefix-fork resume: a0 = forked length (rows)
  KvCow,           // copy-on-write page split: a0 = page index
  Cancel,          // request cancelled: a0 = 1 queued / 0 active
  Nonfinite,       // nonfinite logits observed on retirement
  RequestAdmit,    // a0 = prompt length, a1 = 1 forked admission
  RequestRetire,   // a0 = generated tokens, a1 = 1 cancelled
};

const char* rec_type_name(RecType t);

struct RecorderEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t index = 0;  // per-thread sequence number
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::int64_t pass = -1;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
  std::int32_t trial_id = -1;
  int tid = 0;
  RecType type = RecType::None;
};

namespace detail {
extern std::atomic<bool> g_recorder_enabled;
void rec_push(RecType t, std::int64_t pass, std::int64_t a0, std::int64_t a1);
}  // namespace detail

inline bool recorder_enabled() {
  return detail::g_recorder_enabled.load(std::memory_order_relaxed);
}

// Records one event stamped with current_context(); no-op (beyond the
// flag check) while the recorder is disabled.
inline void record_event(RecType t, std::int64_t pass = -1,
                         std::int64_t a0 = 0, std::int64_t a1 = 0) {
  if (recorder_enabled()) detail::rec_push(t, pass, a0, a1);
}

// Starts recording. `ring_capacity` (events per thread) applies to
// rings created after the call; 0 keeps the current capacity (default
// 4096, overridable via LLMFI_RECORDER_RING). Does not clear.
void recorder_start(std::size_t ring_capacity = 0);
// Stops recording; buffered events are retained for dumps.
void recorder_stop();
// Drops all buffered events. Callers must quiesce writers first (the
// campaign drivers clear between runs, never mid-campaign).
void recorder_clear();
std::size_t recorder_ring_capacity();

// Stable snapshot of every ring, merged and sorted by (ts_us, tid,
// index). Slots being overwritten during the read are skipped.
std::vector<RecorderEvent> recorder_snapshot();
std::vector<RecorderEvent> recorder_events_for_request(
    std::uint64_t request_id);
std::vector<RecorderEvent> recorder_events_for_trial(std::int32_t trial_id);

// Full dump: {"ring_capacity":N,"events":[...]} with one compact object
// per event.
void recorder_write_json(std::ostream& os);
std::string recorder_json();
bool recorder_write_json_file(const std::string& path);
// Timeline for one request id ({"request_id":N,"events":[...]}), or
// nullopt when no event carries the id — the /v1/requests/<id> payload.
std::optional<std::string> recorder_request_timeline_json(
    std::uint64_t request_id);
std::string event_json(const RecorderEvent& e);

// Async-signal-safe dump of every ring to `fd` (unsorted, ring by
// ring): only write(2) plus lock-free atomics.
void recorder_dump_fd(int fd);
// Installs a SIGABRT/SIGSEGV/SIGBUS/SIGFPE handler that dumps the
// recorder to `path` and then re-raises with the default disposition.
// `path` is copied into static storage; later calls replace it.
void install_fatal_dump_handler(const char* path);

// Anomaly dump hook: `path` names the file recorder_note_anomaly()
// writes the full JSON dump to (first anomaly wins; subsequent calls
// are no-ops). The campaign driver calls note_anomaly on
// DetectedUnrecovered / SDC trial outcomes.
void recorder_set_dump_path(const std::string& path);
void recorder_note_anomaly(std::int32_t trial_id);

}  // namespace llmfi::obs
