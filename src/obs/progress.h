#pragma once
// Campaign progress reporting (DESIGN.md §11): a periodic single-line
// status — items done/total, rate, ETA, and named outcome tallies —
// emitted to stderr (or a test sink). Safe under the parallel campaign
// worker pool: tallies are relaxed atomics, emission is serialized by a
// mutex that is only contended when the report interval has elapsed, and
// every emitted line reads the counters under that mutex, so reported
// counts are monotone non-decreasing across lines.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace llmfi::obs {

class ProgressReporter {
 public:
  // Lines go to `sink`, or to stderr when null. `interval_sec <= 0`
  // emits on every add() (used by tests). `tally_names` fixes the
  // outcome columns; add() indexes into it.
  ProgressReporter(std::string label, std::uint64_t total,
                   std::vector<std::string> tally_names,
                   double interval_sec = 1.0,
                   std::function<void(const std::string&)> sink = nullptr);
  ~ProgressReporter();  // emits the final line (idempotent with finish())

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Marks one item done under tally `tally_index` (out-of-range indexes
  // count toward the total only). Thread-safe.
  void add(std::size_t tally_index);

  // Emits the final "done" line once; later calls (and the destructor)
  // are no-ops.
  void finish();

  std::uint64_t done() const {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  void emit_locked(bool final_line);  // requires emit_mu_ held

  std::string label_;
  std::uint64_t total_;
  std::vector<std::string> tally_names_;
  std::vector<std::atomic<std::uint64_t>> tallies_;
  std::atomic<std::uint64_t> done_{0};
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::int64_t> next_emit_us_;
  double interval_sec_;
  std::function<void(const std::string&)> sink_;
  std::mutex emit_mu_;
  bool finished_ = false;  // under emit_mu_
};

}  // namespace llmfi::obs
