#include "obs/context.h"

namespace llmfi::obs {

namespace {

constexpr int kMaxDepth = 8;

struct CtxStack {
  RequestContext items[kMaxDepth];
  int depth = 0;
};

thread_local CtxStack t_stack;
thread_local const RequestContext* t_rows = nullptr;
thread_local int t_n_rows = 0;

const RequestContext kEmpty{};

}  // namespace

const RequestContext& current_context() {
  return t_stack.depth > 0 ? t_stack.items[t_stack.depth - 1] : kEmpty;
}

ContextScope::ContextScope(const RequestContext& ctx) {
  if (t_stack.depth < kMaxDepth) {
    t_stack.items[t_stack.depth++] = ctx;
    armed_ = true;
  }
}

ContextScope::~ContextScope() {
  if (armed_) --t_stack.depth;
}

RowContextGuard::RowContextGuard(const RequestContext* rows, int n)
    : prev_rows_(t_rows), prev_n_(t_n_rows) {
  t_rows = rows;
  t_n_rows = rows != nullptr ? n : 0;
}

RowContextGuard::~RowContextGuard() {
  t_rows = prev_rows_;
  t_n_rows = prev_n_;
}

RowContextScope::RowContextScope(int row) {
  if (t_rows != nullptr && row >= 0 && row < t_n_rows &&
      t_stack.depth < kMaxDepth) {
    t_stack.items[t_stack.depth++] = t_rows[row];
    armed_ = true;
  }
}

RowContextScope::~RowContextScope() {
  if (armed_) --t_stack.depth;
}

}  // namespace llmfi::obs
