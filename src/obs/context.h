#pragma once
// Request-context propagation (DESIGN.md §16): a small POD identifying
// the request a piece of work belongs to — HTTP request id, campaign
// trial id, and a trace id naming the run — carried on a thread_local
// stack so deeply nested instrumentation (trace spans, recorder events,
// detector trips inside a batched forward) can stamp the owning request
// without threading an argument through every layer.
//
// Two scoping mechanisms:
//   * ContextScope — RAII push/pop of one context on the calling
//     thread's stack. Minted at HTTP accept (engine thread) and at
//     campaign-trial start (worker thread / batched source).
//   * Row contexts — forward_batch() advances several requests in one
//     pass on one thread, so a single stack entry cannot attribute
//     per-row events. BatchEngine::step() registers an array of per-row
//     contexts (RowContextGuard) aligned with the BatchRow vector; the
//     model's per-row hook dispatch wraps each hooked row in a
//     RowContextScope(row), which pushes that row's context for the
//     duration of the hook call. With no table registered (single-
//     sequence gen::generate) RowContextScope is a no-op.
//
// Overhead contract: pushing a context is a couple of word stores into
// a fixed-size thread_local array — no clocks, no allocation, no
// atomics — and nothing here ever feeds back into computed results, so
// campaign outputs are byte-identical with or without contexts minted.

#include <cstdint>

namespace llmfi::obs {

struct RequestContext {
  std::uint64_t trace_id = 0;    // run / server instance (0 = unset)
  std::uint64_t request_id = 0;  // serve/HTTP request id (0 = unset)
  std::int32_t trial_id = -1;    // campaign trial index (-1 = not a trial)

  bool valid() const {
    return trace_id != 0 || request_id != 0 || trial_id >= 0;
  }
};

// The innermost context pushed on this thread, or an all-unset context
// when the stack is empty.
const RequestContext& current_context();

// RAII push/pop of `ctx` on the calling thread's context stack. Pushes
// beyond the fixed depth (8) are ignored (current_context() keeps
// returning the deepest retained entry), so misuse degrades
// attribution, never memory safety.
class ContextScope {
 public:
  explicit ContextScope(const RequestContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  bool armed_ = false;
};

// Registers `rows` (length `n`, caller-owned, must stay valid for the
// guard's lifetime) as the calling thread's per-row context table.
// Nested registration is not supported: the previous table is restored
// on destruction.
class RowContextGuard {
 public:
  RowContextGuard(const RequestContext* rows, int n);
  ~RowContextGuard();
  RowContextGuard(const RowContextGuard&) = delete;
  RowContextGuard& operator=(const RowContextGuard&) = delete;

 private:
  const RequestContext* prev_rows_;
  int prev_n_;
};

// Pushes the registered context for `row` (if a table is registered and
// the index is in range) for the scope's lifetime; no-op otherwise.
class RowContextScope {
 public:
  explicit RowContextScope(int row);
  ~RowContextScope();
  RowContextScope(const RowContextScope&) = delete;
  RowContextScope& operator=(const RowContextScope&) = delete;

 private:
  bool armed_ = false;
};

}  // namespace llmfi::obs
