#include "data/world.h"

#include <algorithm>
#include <cassert>

namespace llmfi::data {

namespace {

// Fisher-Yates with our deterministic Rng.
void shuffle_ints(std::vector<int>& v, num::Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<size_t>(rng.uniform_u64(i));
    std::swap(v[i - 1], v[j]);
  }
}

std::vector<int> permutation(int n, num::Rng& rng) {
  std::vector<int> p(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
  shuffle_ints(p, rng);
  return p;
}

}  // namespace

World::World(std::uint64_t seed) {
  num::Rng rng(seed);

  // Template / structural words shared by all tasks. Registered first so
  // their ids are stable regardless of lexicon sizes.
  for (const char* w :
       {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9",  //
        "+", "-", "=", ";", ".", "?", ":",                 //
        "solve", "direct", "step", "answer",               //
        "translate", "summarize", "question", "context", "what", "is",
        "truth", "the", "it", "or", "larger", "smaller", "and", "then"}) {
    vocab_.add(w);
  }

  auto add_group = [&](std::vector<std::string>& out, const char* prefix,
                       int n) {
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      std::string w = std::string(prefix) + std::to_string(i);
      vocab_.add(w);
      out.push_back(std::move(w));
    }
  };

  add_group(src_words_, "zu", kTranslationPairs);
  add_group(tgt_words_, "en", kTranslationPairs);
  add_group(entities_, "ent", kEntities);
  add_group(values_, "val", kValues);
  add_group(nouns_, "dog", kNouns);  // noun stems: dog0..dog15
  noun_plurals_.reserve(kNouns);
  for (int i = 0; i < kNouns; ++i) {
    std::string w = nouns_[static_cast<size_t>(i)] + "s";
    vocab_.add(w);
    noun_plurals_.push_back(std::move(w));
  }
  add_group(adjectives_, "adj", kAdjectives);
  add_group(activities_, "act", kActivities);

  // Verbs for the coreference analog. The verb deterministically decides
  // whether "it" refers to the subject or the object (the synthetic
  // equivalent of Winograd commonsense).
  verb_rules_ = {
      {"chased", true},  {"carried", true}, {"pushed", true},
      {"built", true},   {"feared", false}, {"followed", false},
      {"admired", false},{"copied", false},
  };
  for (const auto& vr : verb_rules_) vocab_.add(vr.verb);

  // World knowledge.
  fact_of_ = permutation(kValues, rng);
  fact_of_.resize(kEntities);
  myth_of_.assign(kEntities, -1);
  for (int e = kFactEntities; e < kEntities; ++e) {
    int myth;
    do {
      myth = static_cast<int>(rng.uniform_u64(kValues));
    } while (myth == fact_of_[static_cast<size_t>(e)]);
    myth_of_[static_cast<size_t>(e)] = myth;
  }
  translation_of_ = permutation(kTranslationPairs, rng);

  // Stereotyped event chains (completion analog). Chains are disjoint in
  // their first three activities so a 3-token prefix has a unique
  // continuation: chain c starts at activity (2c) mod kActivities.
  chains_.resize(kEventChains);
  for (int c = 0; c < kEventChains; ++c) {
    auto& chain = chains_[static_cast<size_t>(c)];
    chain.resize(kChainLength);
    chain[0] = (2 * c) % kActivities;
    chain[1] = (2 * c + 1) % kActivities;
    chain[2] = (2 * c + 17) % kActivities;
    chain[3] = (2 * c + 9) % kActivities;
  }
}

std::string World::spell_number(int n) {
  assert(n >= 0);
  const std::string digits = std::to_string(n);
  std::string out;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i) out += ' ';
    out += digits[i];
  }
  return out;
}

}  // namespace llmfi::data
