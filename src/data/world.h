#pragma once
// The deterministic synthetic "world" behind all datasets.
//
// The paper evaluates nine public benchmarks (Table 1). We cannot ship
// MMLU/WMT16/etc., so each benchmark is replaced by a synthetic analog
// drawn from one shared world: a closed vocabulary, a bilingual lexicon,
// an entity/value fact base (with "myth" distractors for the TruthfulQA
// analog), pluralization pairs, verb->referent rules for the coreference
// analog, and stereotyped event chains for the completion analog. The
// world is a pure function of its seed, so every model sees the same
// facts and every experiment is replayable.

#include <cstdint>
#include <string>
#include <vector>

#include "numerics/rng.h"
#include "tokenizer/vocab.h"

namespace llmfi::data {

struct VerbRule {
  std::string verb;
  bool refers_to_subject;  // "it" resolves to subject (true) or object
};

class World {
 public:
  static constexpr int kTranslationPairs = 40;
  static constexpr int kFactEntities = 12;      // ent0..ent11: clean facts
  static constexpr int kTruthEntities = 12;     // ent12..ent23: fact + myth
  static constexpr int kEntities = kFactEntities + kTruthEntities;
  static constexpr int kValues = 24;
  static constexpr int kNouns = 16;
  static constexpr int kAdjectives = 10;
  static constexpr int kActivities = 32;
  static constexpr int kEventChains = 16;
  static constexpr int kChainLength = 4;

  explicit World(std::uint64_t seed = 0xC0FFEEull);

  const tok::Vocab& vocab() const { return vocab_; }

  // --- word groups ---------------------------------------------------
  const std::string& src_word(int i) const { return src_words_.at(i); }
  const std::string& tgt_word(int i) const { return tgt_words_.at(i); }
  const std::string& entity(int i) const { return entities_.at(i); }
  const std::string& value(int i) const { return values_.at(i); }
  const std::string& noun(int i) const { return nouns_.at(i); }
  const std::string& noun_plural(int i) const { return noun_plurals_.at(i); }
  const std::string& adjective(int i) const { return adjectives_.at(i); }
  const std::string& activity(int i) const { return activities_.at(i); }

  // --- world knowledge -------------------------------------------------
  // Ground-truth value index for entity i (all 24 entities).
  int fact_value(int entity) const { return fact_of_.at(entity); }
  // Myth value index for truth-entities (12 <= entity < 24); the myth is
  // always different from the fact.
  int myth_value(int entity) const { return myth_of_.at(entity); }
  // Bilingual mapping: target-word index for source-word i (a fixed
  // permutation, so translation is not the identity on indices).
  int translation_of(int src) const { return translation_of_.at(src); }
  const std::vector<VerbRule>& verb_rules() const { return verb_rules_; }
  // Event chain c is a fixed sequence of kChainLength activity indices.
  const std::vector<int>& event_chain(int c) const { return chains_.at(c); }

  // Renders a non-negative integer as space-separated digit tokens
  // ("207" -> "2 0 7").
  static std::string spell_number(int n);

 private:
  tok::Vocab vocab_;
  std::vector<std::string> src_words_;
  std::vector<std::string> tgt_words_;
  std::vector<std::string> entities_;
  std::vector<std::string> values_;
  std::vector<std::string> nouns_;
  std::vector<std::string> noun_plurals_;
  std::vector<std::string> adjectives_;
  std::vector<std::string> activities_;
  std::vector<int> fact_of_;
  std::vector<int> myth_of_;
  std::vector<int> translation_of_;
  std::vector<VerbRule> verb_rules_;
  std::vector<std::vector<int>> chains_;
};

}  // namespace llmfi::data
