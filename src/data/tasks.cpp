#include "data/tasks.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace llmfi::data {

namespace {

TrainSeq make_seq(const tok::Vocab& vocab, const std::string& prompt,
                  const std::string& answer) {
  TrainSeq seq;
  seq.tokens.push_back(vocab.bos());
  const auto prompt_ids = vocab.encode(prompt);
  const auto answer_ids = vocab.encode(answer);
  seq.tokens.insert(seq.tokens.end(), prompt_ids.begin(), prompt_ids.end());
  seq.loss_start = static_cast<int>(seq.tokens.size());
  seq.tokens.insert(seq.tokens.end(), answer_ids.begin(), answer_ids.end());
  seq.tokens.push_back(vocab.eos());
  return seq;
}

int pick_distinct(num::Rng& rng, int n, std::vector<int>& taken) {
  int v;
  do {
    v = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
  } while (std::find(taken.begin(), taken.end(), v) != taken.end());
  taken.push_back(v);
  return v;
}

// ---- MMLU analog: fact recall --------------------------------------------

TaskData gen_mc_fact(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::McFact;
  num::Rng rng(opt.seed ^ 0xFAC7ull);
  for (int i = 0; i < opt.train_n; ++i) {
    const int e = static_cast<int>(rng.uniform_u64(World::kFactEntities));
    const std::string prompt =
        "question : what is " + w.entity(e) + " ? answer";
    data.train.push_back(make_seq(w.vocab(), prompt, w.value(w.fact_value(e))));
  }
  num::Rng erng(opt.seed ^ 0xE0A1ull);
  for (int i = 0; i < opt.eval_n; ++i) {
    const int e = i % World::kFactEntities;
    Example ex;
    ex.prompt = "question : what is " + w.entity(e) + " ? answer";
    std::vector<int> taken = {w.fact_value(e)};
    ex.options.push_back(w.value(w.fact_value(e)));
    for (int d = 0; d < 3; ++d) {
      ex.options.push_back(w.value(pick_distinct(erng, World::kValues, taken)));
    }
    // Shuffle option order deterministically.
    const int correct_pos = static_cast<int>(erng.uniform_u64(4));
    std::swap(ex.options[0], ex.options[static_cast<size_t>(correct_pos)]);
    ex.correct = correct_pos;
    ex.reference = ex.options[static_cast<size_t>(correct_pos)];
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- ARC analog: numeric comparison --------------------------------------

TaskData gen_mc_science(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::McScience;
  num::Rng rng(opt.seed ^ 0xA2Cull);
  auto make_one = [&](num::Rng& r, bool larger) {
    int a = static_cast<int>(r.uniform_u64(90)) + 10;
    int b;
    do {
      b = static_cast<int>(r.uniform_u64(90)) + 10;
    } while (b == a);
    const int ans = larger ? std::max(a, b) : std::min(a, b);
    std::string prompt = std::string("question : ") +
                         (larger ? "larger" : "smaller") + " : " +
                         World::spell_number(a) + " or " +
                         World::spell_number(b) + " ? answer";
    return std::tuple<std::string, int, int, int>(prompt, a, b, ans);
  };
  for (int i = 0; i < opt.train_n; ++i) {
    auto [prompt, a, b, ans] = make_one(rng, rng.bernoulli(0.5));
    data.train.push_back(make_seq(w.vocab(), prompt, World::spell_number(ans)));
  }
  num::Rng erng(opt.seed ^ 0xE2Cull);
  for (int i = 0; i < opt.eval_n; ++i) {
    auto [prompt, a, b, ans] = make_one(erng, (i % 2) == 0);
    Example ex;
    ex.prompt = prompt;
    ex.options = {World::spell_number(a), World::spell_number(b)};
    ex.correct = (ans == a) ? 0 : 1;
    ex.reference = World::spell_number(ans);
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- TruthfulQA analog ----------------------------------------------------
// The training corpus repeats the *myth* association frequently as a plain
// statement, while the truth-marked form carries the real fact. The model
// must prefer the fact when the prompt carries the "truth" marker.

TaskData gen_mc_truthful(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::McTruthful;
  num::Rng rng(opt.seed ^ 0x72F1ull);
  for (int i = 0; i < opt.train_n; ++i) {
    const int e = World::kFactEntities +
                  static_cast<int>(rng.uniform_u64(World::kTruthEntities));
    if (rng.bernoulli(0.5)) {
      // Myth: plain statement, no marker.
      data.train.push_back(make_seq(
          w.vocab(), w.entity(e) + " is", w.value(w.myth_value(e))));
    } else {
      data.train.push_back(make_seq(
          w.vocab(), "truth : " + w.entity(e) + " is",
          w.value(w.fact_value(e))));
    }
  }
  num::Rng erng(opt.seed ^ 0xE7F1ull);
  for (int i = 0; i < opt.eval_n; ++i) {
    const int e = World::kFactEntities + (i % World::kTruthEntities);
    Example ex;
    ex.prompt = "truth : " + w.entity(e) + " is";
    std::vector<int> taken = {w.fact_value(e), w.myth_value(e)};
    ex.options.push_back(w.value(w.fact_value(e)));
    ex.options.push_back(w.value(w.myth_value(e)));
    for (int d = 0; d < 2; ++d) {
      ex.options.push_back(w.value(pick_distinct(erng, World::kValues, taken)));
    }
    const int correct_pos = static_cast<int>(erng.uniform_u64(4));
    std::swap(ex.options[0], ex.options[static_cast<size_t>(correct_pos)]);
    ex.correct = correct_pos;
    ex.reference = ex.options[static_cast<size_t>(correct_pos)];
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- WinoGrande analog: verb-driven coreference ----------------------------

TaskData gen_mc_coref(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::McCoref;
  const auto& rules = w.verb_rules();
  num::Rng rng(opt.seed ^ 0xC04Full);
  auto build = [&](num::Rng& r) {
    std::vector<int> taken;
    const int a = pick_distinct(r, World::kNouns, taken);
    const int b = pick_distinct(r, World::kNouns, taken);
    const auto& rule = rules[r.uniform_u64(rules.size())];
    const std::string prompt = "the " + w.noun(a) + " " + rule.verb + " the " +
                               w.noun(b) + " . it is the";
    const int correct = rule.refers_to_subject ? a : b;
    return std::tuple<std::string, int, int, int>(prompt, a, b, correct);
  };
  for (int i = 0; i < opt.train_n; ++i) {
    auto [prompt, a, b, correct] = build(rng);
    data.train.push_back(make_seq(w.vocab(), prompt, w.noun(correct)));
  }
  num::Rng erng(opt.seed ^ 0xE04Full);
  for (int i = 0; i < opt.eval_n; ++i) {
    auto [prompt, a, b, correct] = build(erng);
    Example ex;
    ex.prompt = prompt;
    ex.options = {w.noun(a), w.noun(b)};
    ex.correct = (correct == a) ? 0 : 1;
    ex.reference = w.noun(correct);
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- HellaSwag analog: event-chain completion ------------------------------

TaskData gen_mc_completion(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::McCompletion;
  num::Rng rng(opt.seed ^ 0x4E11Aull);
  auto chain_text = [&](int c, int upto) {
    std::string s = "then";
    const auto& chain = w.event_chain(c);
    for (int i = 0; i < upto; ++i) s += " " + w.activity(chain[i]);
    return s;
  };
  for (int i = 0; i < opt.train_n; ++i) {
    const int c = static_cast<int>(rng.uniform_u64(World::kEventChains));
    data.train.push_back(make_seq(w.vocab(), chain_text(c, 3),
                                  w.activity(w.event_chain(c)[3])));
  }
  num::Rng erng(opt.seed ^ 0xEE11Aull);
  for (int i = 0; i < opt.eval_n; ++i) {
    const int c = i % World::kEventChains;
    Example ex;
    ex.prompt = chain_text(c, 3);
    const int correct_act = w.event_chain(c)[3];
    std::vector<int> taken = {correct_act};
    ex.options.push_back(w.activity(correct_act));
    for (int d = 0; d < 3; ++d) {
      ex.options.push_back(
          w.activity(pick_distinct(erng, World::kActivities, taken)));
    }
    const int correct_pos = static_cast<int>(erng.uniform_u64(4));
    std::swap(ex.options[0], ex.options[static_cast<size_t>(correct_pos)]);
    ex.correct = correct_pos;
    ex.reference = ex.options[static_cast<size_t>(correct_pos)];
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- GSM8k analog: multi-step arithmetic with CoT --------------------------

struct MathProblem {
  std::vector<int> terms;       // first term, then signed operands
  std::vector<char> ops;        // '+' or '-' between successive terms
  std::vector<int> partials;    // running results after each op
};

MathProblem sample_math(num::Rng& rng) {
  MathProblem p;
  const int n_terms = rng.bernoulli(0.5) ? 2 : 3;
  p.terms.push_back(static_cast<int>(rng.uniform_u64(8)) + 2);  // 2..9
  int acc = p.terms[0];
  for (int t = 1; t < n_terms; ++t) {
    const int operand = static_cast<int>(rng.uniform_u64(8)) + 2;
    // Subtraction only when the running value stays non-negative.
    const bool minus = rng.bernoulli(0.35) && acc - operand >= 0;
    p.terms.push_back(operand);
    p.ops.push_back(minus ? '-' : '+');
    acc = minus ? acc - operand : acc + operand;
    p.partials.push_back(acc);
  }
  return p;
}

std::string math_expression(const MathProblem& p) {
  std::string s = World::spell_number(p.terms[0]);
  for (size_t i = 0; i + 1 < p.terms.size(); ++i) {
    s += std::string(" ") + p.ops[i] + " " + World::spell_number(p.terms[i + 1]);
  }
  return s;
}

std::string math_cot_answer(const MathProblem& p) {
  // "step a + b = s1 ; step s1 + c = s2 ; answer s2"
  std::string s;
  int prev = p.terms[0];
  for (size_t i = 0; i < p.ops.size(); ++i) {
    if (!s.empty()) s += " ; ";
    s += "step " + World::spell_number(prev) + " " + p.ops[i] + " " +
         World::spell_number(p.terms[i + 1]) + " = " +
         World::spell_number(p.partials[i]);
    prev = p.partials[i];
  }
  s += " ; answer " + World::spell_number(p.partials.back());
  return s;
}

TaskData gen_math(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::MathGsm;
  num::Rng rng(opt.seed ^ 0x6543ull);
  for (int i = 0; i < opt.train_n; ++i) {
    const MathProblem p = sample_math(rng);
    const std::string expr = math_expression(p);
    if (i % 3 == 2) {
      // Direct-answer form (CoT disabled).
      data.train.push_back(make_seq(
          w.vocab(), "direct : " + expr + " = ?",
          "answer " + World::spell_number(p.partials.back())));
    } else {
      data.train.push_back(
          make_seq(w.vocab(), "solve : " + expr + " = ?", math_cot_answer(p)));
    }
  }
  num::Rng erng(opt.seed ^ 0xE543ull);
  for (int i = 0; i < opt.eval_n; ++i) {
    const MathProblem p = sample_math(erng);
    const std::string expr = math_expression(p);
    Example ex;
    ex.prompt = "solve : " + expr + " = ?";
    ex.prompt_direct = "direct : " + expr + " = ?";
    ex.reference = math_cot_answer(p);
    ex.final_answer = World::spell_number(p.partials.back());
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- WMT16 analog: lexicon mapping with order reversal ----------------------

TaskData gen_translation(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::Translation;
  num::Rng rng(opt.seed ^ 0x77A6Dull);
  auto build = [&](num::Rng& r) {
    const int len = static_cast<int>(r.uniform_u64(4)) + 3;  // 3..6 words
    std::vector<int> words;
    for (int i = 0; i < len; ++i) {
      words.push_back(
          static_cast<int>(r.uniform_u64(World::kTranslationPairs)));
    }
    std::string src, tgt;
    for (int i = 0; i < len; ++i) {
      if (i) src += ' ';
      src += w.src_word(words[static_cast<size_t>(i)]);
    }
    // Target language uses reversed word order (forces non-monotonic
    // attention, like real translation).
    for (int i = len - 1; i >= 0; --i) {
      if (!tgt.empty()) tgt += ' ';
      tgt += w.tgt_word(w.translation_of(words[static_cast<size_t>(i)]));
    }
    return std::pair<std::string, std::string>(src, tgt);
  };
  for (int i = 0; i < opt.train_n; ++i) {
    auto [src, tgt] = build(rng);
    data.train.push_back(make_seq(w.vocab(), "translate : " + src + " =", tgt));
  }
  num::Rng erng(opt.seed ^ 0xE7A6Dull);
  for (int i = 0; i < opt.eval_n; ++i) {
    auto [src, tgt] = build(erng);
    Example ex;
    ex.prompt = "translate : " + src + " =";
    ex.reference = tgt;
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- XLSum analog: lead-sentence extraction ---------------------------------

TaskData gen_summarization(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::Summarization;
  num::Rng rng(opt.seed ^ 0x5A33ull);
  auto sentence = [&](num::Rng& r) {
    const int e = static_cast<int>(r.uniform_u64(World::kEntities));
    const int a = static_cast<int>(r.uniform_u64(World::kAdjectives));
    const int v = static_cast<int>(r.uniform_u64(World::kValues));
    return w.entity(e) + " is " + w.adjective(a) + " " + w.value(v) + " .";
  };
  auto build = [&](num::Rng& r) {
    const int n_sent = static_cast<int>(r.uniform_u64(3)) + 3;  // 3..5
    std::string doc;
    std::string lead;
    for (int s = 0; s < n_sent; ++s) {
      const std::string sent = sentence(r);
      if (s == 0) lead = sent;
      if (s) doc += ' ';
      doc += sent;
    }
    return std::pair<std::string, std::string>(doc, lead);
  };
  for (int i = 0; i < opt.train_n; ++i) {
    auto [doc, lead] = build(rng);
    data.train.push_back(make_seq(w.vocab(), "summarize : " + doc + " =", lead));
  }
  num::Rng erng(opt.seed ^ 0xEA33ull);
  for (int i = 0; i < opt.eval_n; ++i) {
    auto [doc, lead] = build(erng);
    Example ex;
    ex.prompt = "summarize : " + doc + " =";
    ex.reference = lead;
    data.eval.push_back(std::move(ex));
  }
  return data;
}

// ---- SQuAD v2 analog: extractive context QA ---------------------------------

TaskData gen_qa(const World& w, const GenOptions& opt) {
  TaskData data;
  data.kind = TaskKind::QA;
  num::Rng rng(opt.seed ^ 0x5Add2ull);
  auto build = [&](num::Rng& r) {
    const int n_facts = static_cast<int>(r.uniform_u64(3)) + 3;  // 3..5
    std::vector<int> ents;
    std::string ctx = "context :";
    std::vector<int> vals(static_cast<size_t>(n_facts));
    for (int f = 0; f < n_facts; ++f) {
      const int e = pick_distinct(r, World::kEntities, ents);
      const int v = static_cast<int>(r.uniform_u64(World::kValues));
      vals[static_cast<size_t>(f)] = v;
      ctx += " " + w.entity(e) + " is " + w.value(v) + " .";
    }
    const int q = static_cast<int>(r.uniform_u64(static_cast<std::uint64_t>(n_facts)));
    const std::string prompt = ctx + " question : what is " +
                               w.entity(ents[static_cast<size_t>(q)]) +
                               " ? answer";
    return std::pair<std::string, std::string>(
        prompt, w.value(vals[static_cast<size_t>(q)]));
  };
  for (int i = 0; i < opt.train_n; ++i) {
    auto [prompt, answer] = build(rng);
    data.train.push_back(make_seq(w.vocab(), prompt, answer));
  }
  num::Rng erng(opt.seed ^ 0xEAdd2ull);
  for (int i = 0; i < opt.eval_n; ++i) {
    auto [prompt, answer] = build(erng);
    Example ex;
    ex.prompt = prompt;
    ex.reference = answer;
    data.eval.push_back(std::move(ex));
  }
  return data;
}

}  // namespace

TaskStyle task_style(TaskKind k) {
  switch (k) {
    case TaskKind::McFact:
    case TaskKind::McScience:
    case TaskKind::McTruthful:
    case TaskKind::McCoref:
    case TaskKind::McCompletion:
      return TaskStyle::MultipleChoice;
    default:
      return TaskStyle::Generative;
  }
}

std::string_view task_name(TaskKind k) {
  switch (k) {
    case TaskKind::McFact: return "mmlu-syn";
    case TaskKind::McScience: return "arc-syn";
    case TaskKind::McTruthful: return "truthfulqa-syn";
    case TaskKind::McCoref: return "winogrande-syn";
    case TaskKind::McCompletion: return "hellaswag-syn";
    case TaskKind::MathGsm: return "gsm8k-syn";
    case TaskKind::Translation: return "wmt16-syn";
    case TaskKind::Summarization: return "xlsum-syn";
    case TaskKind::QA: return "squad2-syn";
  }
  return "?";
}

TaskData make_task(const World& world, TaskKind kind, const GenOptions& opt) {
  switch (kind) {
    case TaskKind::McFact: return gen_mc_fact(world, opt);
    case TaskKind::McScience: return gen_mc_science(world, opt);
    case TaskKind::McTruthful: return gen_mc_truthful(world, opt);
    case TaskKind::McCoref: return gen_mc_coref(world, opt);
    case TaskKind::McCompletion: return gen_mc_completion(world, opt);
    case TaskKind::MathGsm: return gen_math(world, opt);
    case TaskKind::Translation: return gen_translation(world, opt);
    case TaskKind::Summarization: return gen_summarization(world, opt);
    case TaskKind::QA: return gen_qa(world, opt);
  }
  throw std::invalid_argument("unknown task kind");
}

std::string extract_final_answer(const std::string& text) {
  const std::string key = "answer";
  const size_t pos = text.rfind(key);
  if (pos == std::string::npos) return "";
  size_t i = pos + key.size();
  std::string out;
  // Collect digit tokens after the keyword; stop at the first non-digit.
  std::istringstream iss(text.substr(i));
  std::string word;
  while (iss >> word) {
    if (word.size() == 1 && word[0] >= '0' && word[0] <= '9') {
      if (!out.empty()) out += ' ';
      out += word;
    } else {
      break;
    }
  }
  return out;
}

}  // namespace llmfi::data
