#pragma once
// Synthetic task generators — the in-repo analogs of the paper's Table 1
// workloads. Each generator produces a training corpus (token sequences
// with a loss-start index) and a fixed evaluation subset (100 inputs by
// default, mirroring the paper's use of tinyBenchmarks).

#include <cstdint>
#include <string>
#include <vector>

#include "data/world.h"
#include "tokenizer/vocab.h"

namespace llmfi::data {

enum class TaskKind {
  McFact,        // MMLU analog: entity/value fact recall
  McScience,     // ARC analog: numeric comparison reasoning
  McTruthful,    // TruthfulQA analog: truth-marked facts vs frequent myths
  McCoref,       // WinoGrande analog: verb-driven pronoun resolution
  McCompletion,  // HellaSwag analog: stereotyped event-chain completion
  MathGsm,       // GSM8k analog: multi-step arithmetic with CoT
  Translation,   // WMT16 analog: lexicon mapping + order reversal
  Summarization, // XLSum analog: lead-sentence extraction
  QA,            // SQuAD v2 analog: extractive context QA
};

enum class TaskStyle { MultipleChoice, Generative };

TaskStyle task_style(TaskKind k);
std::string_view task_name(TaskKind k);

// One evaluation input.
struct Example {
  // Prompt text (ends immediately before where the answer begins).
  std::string prompt;
  // Reference output text. For MC tasks this equals options[correct].
  std::string reference;
  // Multiple-choice candidate continuations (empty for generative tasks).
  std::vector<std::string> options;
  int correct = -1;
  // MathGsm only: the direct-answer prompt variant (CoT disabled, paper
  // §4.3.2) and the bare final answer used for accuracy scoring.
  std::string prompt_direct;
  std::string final_answer;
};

// One training sequence: <bos> prompt answer <eos>; next-token loss is
// applied only from `loss_start` (the first answer token) onward.
struct TrainSeq {
  std::vector<tok::TokenId> tokens;
  int loss_start = 1;
};

struct TaskData {
  TaskKind kind = TaskKind::McFact;
  std::vector<TrainSeq> train;
  std::vector<Example> eval;
};

// Generator options. `train_n`/`eval_n` count sequences/examples; `seed`
// controls sampling but never the world knowledge (which lives in World).
struct GenOptions {
  int train_n = 600;
  int eval_n = 100;
  std::uint64_t seed = 1;
};

TaskData make_task(const World& world, TaskKind kind, const GenOptions& opt);

// Parses the final numeric answer out of a (possibly chain-of-thought)
// generated text: the digits following the last "answer" keyword, e.g.
// "step 3 + 4 = 7 ; answer 1 5" -> "1 5". Returns "" when absent.
std::string extract_final_answer(const std::string& text);

}  // namespace llmfi::data
