#include "numerics/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace llmfi::num {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t limit = (0ull - n) % n;  // == 2^64 mod n
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r < limit);
  return r % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? next_u64() : uniform_u64(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t stream) const {
  // Mix (seed, stream) through splitmix so streams are independent.
  std::uint64_t mix = seed_;
  const std::uint64_t a = splitmix64(mix);
  mix ^= stream * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull;
  const std::uint64_t b = splitmix64(mix);
  return Rng(a ^ rotl(b, 32) ^ stream);
}

}  // namespace llmfi::num
