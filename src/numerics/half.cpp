#include "numerics/half.h"

#include <bit>

namespace llmfi::num {

std::uint32_t f32_bits(float value) { return std::bit_cast<std::uint32_t>(value); }

float f32_from_bits(std::uint32_t bits) { return std::bit_cast<float>(bits); }

std::uint16_t f32_to_f16_bits(float value) {
  const std::uint32_t x = f32_bits(value);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    if (abs > 0x7F800000u) {
      // NaN: preserve the top mantissa payload bits so that a value
      // produced by f16_bits_to_f32 round-trips bit-exactly (the
      // memory-fault flip/restore protocol depends on this involution);
      // force a mantissa bit if truncation would otherwise yield inf.
      std::uint16_t h = static_cast<std::uint16_t>(
          sign | 0x7C00u | ((abs & 0x007FFFFFu) >> 13));
      if ((h & 0x03FFu) == 0) h |= 0x0200u;
      return h;
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x477FF000u) {
    // Rounds to a magnitude >= 65520 -> overflow to infinity.
    // (0x477FF000 is 65520.0f, the smallest fp32 rounding up to inf.)
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal fp16 or zero. abs < 2^-14.
    if (abs < 0x33000001u) {
      // Below half of the smallest subnormal -> rounds to zero.
      return static_cast<std::uint16_t>(sign);
    }
    // Subnormal target: value = mant16 * 2^-24 where mant16 is the raw
    // field. With the implicit-1 mantissa in units of 2^(e-127-23), the
    // field is mant24 >> (126 - e), rounded to nearest-even.
    const int shift = 126 - static_cast<int>(abs >> 23);  // in [1, 24]
    const std::uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
    const std::uint32_t rounded = mant >> shift;
    const std::uint32_t remainder = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = rounded;
    if (remainder > halfway || (remainder == halfway && (rounded & 1u))) {
      ++result;
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal range. Rebias exponent from 127 to 15 and round the mantissa
  // to 10 bits with round-to-nearest-even; a mantissa carry correctly
  // bumps the exponent because the fields are adjacent.
  const std::uint32_t exp16 = (abs >> 23) - 112;  // 112 == 127 - 15
  const std::uint32_t mant = abs & 0x007FFFFFu;
  std::uint32_t out = (exp16 << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;  // 13 discarded bits
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(sign | out);
}

float f16_bits_to_f32(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) return f32_from_bits(sign);  // signed zero
    // Subnormal: value = mant * 2^-24. Normalize into fp32.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t f32_exp = static_cast<std::uint32_t>(127 - 15 - e);
    const std::uint32_t f32_mant = (m & 0x3FFu) << 13;
    return f32_from_bits(sign | (f32_exp << 23) | f32_mant);
  }
  if (exp == 0x1Fu) {
    // Inf / NaN.
    return f32_from_bits(sign | 0x7F800000u | (mant << 13));
  }
  const std::uint32_t f32_exp = exp + (127 - 15);
  return f32_from_bits(sign | (f32_exp << 23) | (mant << 13));
}

std::uint16_t f32_to_bf16_bits(float value) {
  std::uint32_t x = f32_bits(value);
  if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x007FFFFFu) != 0) {
    // NaN: truncate, preserving any payload in the top mantissa bits so
    // bf16-decoded NaNs round-trip exactly; force a mantissa bit only if
    // truncation would turn the NaN into inf.
    auto h = static_cast<std::uint16_t>(x >> 16);
    if ((h & 0x007Fu) == 0) h |= 0x0040u;
    return h;
  }
  // Round-to-nearest-even on the discarded low 16 bits.
  const std::uint32_t rounding_bias = 0x7FFFu + ((x >> 16) & 1u);
  x += rounding_bias;
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_bits_to_f32(std::uint16_t bits) {
  return f32_from_bits(static_cast<std::uint32_t>(bits) << 16);
}

}  // namespace llmfi::num
