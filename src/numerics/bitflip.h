#pragma once
// Bit-flip primitives for every storage dtype.
//
// All fault models in the study reduce to "flip k bits in the stored
// representation of one value" (paper §3.1-3.2): computational faults
// flip bits in an output-activation value, memory faults flip bits in a
// stored weight. Bit index 0 is the least-significant mantissa/payload
// bit; index total_bits-1 is the sign bit. For 16-bit floats the paper's
// "bit position 14" (Figs 9-10) is the most significant exponent bit.

#include <cstdint>
#include <span>

#include "numerics/dtype.h"

namespace llmfi::num {

// Flip one bit of `value` in the representation of float dtype `t`
// (F32/F16/BF16). The value is first rounded into `t`, then the bit is
// flipped, then decoded back to fp32. Precondition: 0 <= bit < total_bits.
float flip_float_bit(float value, DType t, int bit);

// Flip several distinct bits at once (the 2-bit fault models).
float flip_float_bits(float value, DType t, std::span<const int> bits);

// Flip one bit of a two's-complement integer payload with `total_bits`
// bits (8 for I8, 4 for I4). Returns the sign-extended result, e.g. for
// I4, flipping bit 3 of +3 (0b0011) yields -5 (0b1011).
std::int32_t flip_int_bit(std::int32_t payload, int total_bits, int bit);

std::int32_t flip_int_bits(std::int32_t payload, int total_bits,
                           std::span<const int> bits);

// A value is "extreme" when its magnitude exceeds `threshold` or it is
// non-finite; used by the propagation tracer (Figs 5-6) and the distorted
// -output classifier.
bool is_extreme(float value, float threshold);

}  // namespace llmfi::num
