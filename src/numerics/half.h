#pragma once
// Software IEEE binary16 (fp16) and bfloat16 conversions with
// round-to-nearest-even, plus raw bit access.
//
// The resilience results of Fig 21 / Observation #11 depend on exact bit
// layouts: a flip of the top exponent bit of a BF16 weight can scale it by
// ~2^128 while the same flip in FP16 is bounded by 65504. These routines
// are therefore bit-exact rather than "close enough".

#include <cstdint>

namespace llmfi::num {

// --- IEEE binary16 -------------------------------------------------------

// fp32 -> fp16 bits, round-to-nearest-even, overflow -> +/-inf,
// NaN preserved as quiet NaN.
std::uint16_t f32_to_f16_bits(float value);

// fp16 bits -> fp32 (exact; every fp16 value is representable in fp32).
float f16_bits_to_f32(std::uint16_t bits);

// Round a fp32 value through fp16 storage (encode + decode).
inline float round_to_f16(float value) {
  return f16_bits_to_f32(f32_to_f16_bits(value));
}

// --- bfloat16 ------------------------------------------------------------

// fp32 -> bf16 bits, round-to-nearest-even; NaN forced quiet.
std::uint16_t f32_to_bf16_bits(float value);

// bf16 bits -> fp32 (exact).
float bf16_bits_to_f32(std::uint16_t bits);

inline float round_to_bf16(float value) {
  return bf16_bits_to_f32(f32_to_bf16_bits(value));
}

// --- fp32 bit access ------------------------------------------------------

std::uint32_t f32_bits(float value);
float f32_from_bits(std::uint32_t bits);

}  // namespace llmfi::num
