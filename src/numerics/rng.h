#pragma once
// Deterministic, forkable random number generator (xoshiro256**).
//
// Every experiment in the study must be replayable (paper §3.3.4 fixes
// the seed so all compared settings see the same fault positions), and
// campaigns run trials in parallel, so each trial forks an independent
// stream from (seed, trial_index) instead of sharing one generator.

#include <cstdint>

namespace llmfi::num {

class Rng {
 public:
  // Seeds the state via splitmix64 so nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  // Uniform in [0, n). Precondition: n > 0. Uses rejection sampling, so
  // the distribution is exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t n);

  // Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1) with 53 random bits.
  double uniform();

  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  // True with probability p.
  bool bernoulli(double p);

  // Independent child stream for (this seed, stream id). Forking does not
  // advance this generator, so fork order is irrelevant.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace llmfi::num
