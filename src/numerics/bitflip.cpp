#include "numerics/bitflip.h"

#include <cassert>
#include <cmath>

#include "numerics/half.h"

namespace llmfi::num {

namespace {

std::uint32_t toggled(std::uint32_t bits, int bit) {
  return bits ^ (1u << bit);
}

std::int32_t sign_extend(std::uint32_t raw, int total_bits) {
  const std::uint32_t sign_mask = 1u << (total_bits - 1);
  const std::uint32_t value_mask = (total_bits == 32)
                                       ? 0xFFFFFFFFu
                                       : ((1u << total_bits) - 1u);
  raw &= value_mask;
  if (raw & sign_mask) raw |= ~value_mask;
  return static_cast<std::int32_t>(raw);
}

}  // namespace

float flip_float_bit(float value, DType t, int bit) {
  const int bits[1] = {bit};
  return flip_float_bits(value, t, bits);
}

float flip_float_bits(float value, DType t, std::span<const int> bits) {
  switch (t) {
    case DType::F32: {
      std::uint32_t u = f32_bits(value);
      for (int b : bits) {
        assert(b >= 0 && b < 32);
        u = toggled(u, b);
      }
      return f32_from_bits(u);
    }
    case DType::F16: {
      std::uint32_t u = f32_to_f16_bits(value);
      for (int b : bits) {
        assert(b >= 0 && b < 16);
        u = toggled(u, b);
      }
      return f16_bits_to_f32(static_cast<std::uint16_t>(u));
    }
    case DType::BF16: {
      std::uint32_t u = f32_to_bf16_bits(value);
      for (int b : bits) {
        assert(b >= 0 && b < 16);
        u = toggled(u, b);
      }
      return bf16_bits_to_f32(static_cast<std::uint16_t>(u));
    }
    case DType::I8:
    case DType::I4:
      assert(false && "use flip_int_bit for quantized payloads");
      return value;
  }
  return value;
}

std::int32_t flip_int_bit(std::int32_t payload, int total_bits, int bit) {
  const int bits[1] = {bit};
  return flip_int_bits(payload, total_bits, bits);
}

std::int32_t flip_int_bits(std::int32_t payload, int total_bits,
                           std::span<const int> bits) {
  auto raw = static_cast<std::uint32_t>(payload);
  for (int b : bits) {
    assert(b >= 0 && b < total_bits);
    raw = toggled(raw, b);
  }
  return sign_extend(raw, total_bits);
}

bool is_extreme(float value, float threshold) {
  return !std::isfinite(value) || std::fabs(value) > threshold;
}

}  // namespace llmfi::num
