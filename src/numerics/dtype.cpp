#include "numerics/dtype.h"

#include <array>
#include <stdexcept>
#include <string>

namespace llmfi::num {

namespace {

constexpr std::array<DTypeInfo, 5> kInfo = {{
    {"fp32", 32, 8, 23, 3.4028234663852886e38},
    {"fp16", 16, 5, 10, 65504.0},
    {"bf16", 16, 8, 7, 3.3895313892515355e38},
    {"int8", 8, 0, 7, 127.0},
    {"int4", 4, 0, 3, 7.0},
}};

}  // namespace

const DTypeInfo& dtype_info(DType t) {
  return kInfo[static_cast<std::size_t>(t)];
}

std::string_view dtype_name(DType t) { return dtype_info(t).name; }

DType parse_dtype(std::string_view name) {
  if (name == "f32" || name == "fp32") return DType::F32;
  if (name == "f16" || name == "fp16") return DType::F16;
  if (name == "bf16") return DType::BF16;
  if (name == "i8" || name == "int8") return DType::I8;
  if (name == "i4" || name == "int4") return DType::I4;
  throw std::invalid_argument("unknown dtype: " + std::string(name));
}

}  // namespace llmfi::num
