#pragma once
// Data-type taxonomy for the resilience study.
//
// The paper compares FP32 / FP16 / BF16 storage (Fig 21, Table 2) and
// GPTQ-style INT8 / INT4 quantized weights (Fig 17). Faults are injected
// into the *bit representation* of a value in its storage dtype, so every
// dtype here carries exact bit-level semantics.

#include <cstdint>
#include <string_view>

namespace llmfi::num {

enum class DType : std::uint8_t {
  F32,   // IEEE binary32: 1 sign, 8 exponent, 23 mantissa
  F16,   // IEEE binary16: 1 sign, 5 exponent, 10 mantissa
  BF16,  // bfloat16:      1 sign, 8 exponent,  7 mantissa
  I8,    // symmetric group-quantized signed 8-bit payload
  I4,    // symmetric group-quantized signed 4-bit payload
};

struct DTypeInfo {
  std::string_view name;
  int total_bits;
  int exponent_bits;  // 0 for integer payloads
  int mantissa_bits;  // value bits (excluding sign) for integer payloads
  double max_finite;  // largest representable finite magnitude
};

// Static format table; `bench/tab02_float_formats` prints the paper's
// Table 2 from this.
const DTypeInfo& dtype_info(DType t);

std::string_view dtype_name(DType t);

// Parses "f32"/"fp32"/"f16"/"fp16"/"bf16"/"i8"/"int8"/"i4"/"int4".
// Throws std::invalid_argument on unknown names.
DType parse_dtype(std::string_view name);

// True for the floating-point storage types.
constexpr bool is_float_dtype(DType t) {
  return t == DType::F32 || t == DType::F16 || t == DType::BF16;
}

// True for the quantized integer payload types.
constexpr bool is_quantized_dtype(DType t) {
  return t == DType::I8 || t == DType::I4;
}

}  // namespace llmfi::num
