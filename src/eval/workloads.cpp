#include "eval/workloads.h"

#include <stdexcept>

#include "metrics/text_metrics.h"

namespace llmfi::eval {

namespace {

MetricSpec accuracy_metric() {
  // Accuracy is computed from answer comparison in the runner, not from
  // text overlap; the function is exact-match as a fallback.
  return {"accuracy", metrics::exact_match};
}

std::vector<WorkloadSpec> build_all() {
  using data::TaskKind;
  using data::TaskStyle;
  std::vector<WorkloadSpec> specs;
  auto mc = [&specs](const std::string& name, TaskKind kind) {
    specs.push_back({name,
                     kind,
                     TaskStyle::MultipleChoice,
                     {accuracy_metric()},
                     {"aquila", "qilin", "falco"}});
  };
  mc("mmlu-syn", TaskKind::McFact);
  mc("arc-syn", TaskKind::McScience);
  mc("truthfulqa-syn", TaskKind::McTruthful);
  mc("winogrande-syn", TaskKind::McCoref);
  mc("hellaswag-syn", TaskKind::McCompletion);

  specs.push_back({"gsm8k-syn",
                   TaskKind::MathGsm,
                   TaskStyle::Generative,
                   {accuracy_metric()},
                   {"qilin", "falco"}});
  specs.push_back(
      {"wmt16-syn",
       TaskKind::Translation,
       TaskStyle::Generative,
       {{"bleu", [](const std::string& h, const std::string& r) {
           return metrics::bleu(h, r);
         }},
        {"chrf++", [](const std::string& h, const std::string& r) {
           return metrics::chrf_pp(h, r);
         }}},
       {"qilin", "aquila", "alma"}});
  specs.push_back({"xlsum-syn",
                   TaskKind::Summarization,
                   TaskStyle::Generative,
                   {{"rouge1", metrics::rouge1_f},
                    {"rougeL", metrics::rougeL_f}},
                   {"aquila", "qilin", "summarizer"}});
  specs.push_back({"squad2-syn",
                   TaskKind::QA,
                   TaskStyle::Generative,
                   {{"f1", metrics::token_f1},
                    {"exact_match", metrics::exact_match}},
                   {"aquila", "qilin", "falco"}});
  return specs;
}

}  // namespace

const std::vector<WorkloadSpec>& all_workloads() {
  static const std::vector<WorkloadSpec> specs = build_all();
  return specs;
}

const WorkloadSpec& workload(const std::string& dataset) {
  for (const auto& spec : all_workloads()) {
    if (spec.dataset == dataset) return spec;
  }
  throw std::invalid_argument("unknown dataset: " + dataset);
}

const WorkloadSpec& workload(data::TaskKind kind) {
  for (const auto& spec : all_workloads()) {
    if (spec.kind == kind) return spec;
  }
  throw std::invalid_argument("unknown task kind");
}

}  // namespace llmfi::eval
