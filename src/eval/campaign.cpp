#include "eval/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "core/injector.h"

namespace llmfi::eval {

double CampaignResult::sdc_rate() const {
  const int n = trials();
  return n > 0 ? static_cast<double>(sdc_subtle + sdc_distorted) / n : 0.0;
}

double CampaignResult::baseline_mean(const std::string& metric) const {
  auto it = baseline_metrics.find(metric);
  return it == baseline_metrics.end() ? 0.0 : it->second.mean();
}

double CampaignResult::faulty_mean(const std::string& metric) const {
  auto it = faulty_metrics.find(metric);
  return it == faulty_metrics.end() ? 0.0 : it->second.mean();
}

metrics::Ratio CampaignResult::normalized(const std::string& metric) const {
  auto fit = faulty_metrics.find(metric);
  auto bit = baseline_metrics.find(metric);
  if (fit == faulty_metrics.end() || bit == baseline_metrics.end()) {
    return {};
  }
  const auto& f = fit->second;
  const auto& b = bit->second;
  if (metric == "accuracy" || metric == "exact_match") {
    // Proportions: Katz log CI.
    const int fh = static_cast<int>(std::lround(f.mean() * f.n()));
    const int bh = static_cast<int>(std::lround(b.mean() * b.n()));
    return metrics::katz_ratio_ci(fh, f.n(), bh, b.n());
  }
  return metrics::log_ratio_ci(f.mean(), f.stddev(), f.n(), b.mean(),
                               b.stddev(), b.n());
}

TrialOutcome run_trial(model::InferenceModel& engine, const tok::Vocab& vocab,
                       const std::vector<data::Example>& eval_set,
                       const std::vector<ExampleResult>& baselines,
                       const WorkloadSpec& spec, const CampaignConfig& cfg,
                       const num::Rng& campaign_rng, int trial) {
  const int n_inputs = static_cast<int>(baselines.size());
  const int ei = trial % n_inputs;
  const auto& ex = eval_set[static_cast<size_t>(ei)];
  const auto& base = baselines[static_cast<size_t>(ei)];
  const bool discrete = spec.style == data::TaskStyle::MultipleChoice ||
                        spec.kind == data::TaskKind::MathGsm;

  num::Rng rng = campaign_rng.fork(static_cast<std::uint64_t>(trial));
  core::SamplerScope scope;
  scope.layer_filter = cfg.layer_filter;
  scope.max_passes = std::max(1, base.passes - cfg.exclude_final_passes);

  TrialOutcome out;
  out.example_index = ei;
  out.plan = core::sample_fault(cfg.fault, engine, scope, rng);

  ExampleResult faulty;
  if (core::is_memory_fault(cfg.fault)) {
    core::WeightCorruption guard(engine, out.plan);
    faulty = run_example(engine, vocab, spec, ex, cfg.run);
  } else {
    core::ComputationalFaultInjector injector(
        out.plan, engine.precision().act_dtype);
    core::LinearHookGuard guard(engine, &injector);
    faulty = run_example(engine, vocab, spec, ex, cfg.run);
  }

  // baseline_empty considers generated tokens only: multiple-choice
  // runs never generate tokens, so an empty faulty token stream is
  // normal there, not a distortion symptom.
  const auto signals = core::analyze_distortion(
      faulty.tokens, faulty.nonfinite_logits, faulty.hit_max_tokens,
      /*baseline_ended=*/!base.hit_max_tokens,
      /*baseline_empty=*/base.tokens.empty());
  out.outcome = discrete
                    ? core::classify_direct(faulty.correct, signals)
                    : core::classify_generative(faulty.output, base.output,
                                                signals);
  out.correct = faulty.correct;
  out.output_matches_baseline = (faulty.output == base.output);
  out.metrics = std::move(faulty.metrics);
  out.output = std::move(faulty.output);
  return out;
}

namespace {

// Runs trials [0, cfg.trials) against per-worker engine replicas and
// fills `outcomes` slot-by-slot. Each worker owns one engine (replica 0
// is the caller's), so WeightCorruption flips and hook installs never
// cross threads; the atomic counter only schedules, it never orders the
// reduction. An exception aborts the throwing worker's loop; the driver
// rethrows the one with the lowest trial index so failure, too, is
// deterministic.
void run_trials_parallel(model::InferenceModel& engine,
                         const tok::Vocab& vocab,
                         const std::vector<data::Example>& eval_set,
                         const std::vector<ExampleResult>& baselines,
                         const WorkloadSpec& spec, const CampaignConfig& cfg,
                         const num::Rng& campaign_rng, int n_threads,
                         std::vector<TrialOutcome>& outcomes) {
  std::vector<model::InferenceModel> replicas;
  replicas.reserve(static_cast<size_t>(n_threads - 1));
  for (int w = 1; w < n_threads; ++w) replicas.push_back(engine.clone());

  std::atomic<int> next_trial{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  int first_error_trial = cfg.trials;

  auto worker = [&](model::InferenceModel& eng) {
    for (int trial = next_trial.fetch_add(1); trial < cfg.trials;
         trial = next_trial.fetch_add(1)) {
      try {
        outcomes[static_cast<size_t>(trial)] = run_trial(
            eng, vocab, eval_set, baselines, spec, cfg, campaign_rng, trial);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (trial < first_error_trial) {
          first_error_trial = trial;
          first_error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(replicas.size());
  for (auto& replica : replicas) {
    pool.emplace_back([&worker, &replica] { worker(replica); });
  }
  worker(engine);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg) {
  CampaignResult result;
  result.config = cfg;
  const auto t_start = std::chrono::steady_clock::now();

  const int n_inputs =
      std::min<int>(cfg.n_inputs, static_cast<int>(eval_set.size()));
  if (n_inputs <= 0) throw std::invalid_argument("campaign: no inputs");

  // Fault-free baselines, one per input — always serial: they seed the
  // trial loop (pass counts bound the fault sampler's scope).
  std::vector<ExampleResult> baselines;
  baselines.reserve(static_cast<size_t>(n_inputs));
  for (int i = 0; i < n_inputs; ++i) {
    auto base = run_example(engine, vocab, spec,
                            eval_set[static_cast<size_t>(i)], cfg.run);
    for (const auto& [name, value] : base.metrics) {
      result.baseline_metrics[name].add(value);
    }
    baselines.push_back(std::move(base));
  }

  const num::Rng campaign_rng(cfg.seed);
  const int n_threads =
      std::max(1, std::min(cfg.threads, std::max(1, cfg.trials)));

  std::vector<TrialOutcome> outcomes(static_cast<size_t>(
      std::max(0, cfg.trials)));
  if (n_threads == 1) {
    for (int trial = 0; trial < cfg.trials; ++trial) {
      outcomes[static_cast<size_t>(trial)] = run_trial(
          engine, vocab, eval_set, baselines, spec, cfg, campaign_rng, trial);
    }
  } else {
    run_trials_parallel(engine, vocab, eval_set, baselines, spec, cfg,
                        campaign_rng, n_threads, outcomes);
  }

  // Deterministic reduction: fold outcomes in trial order, exactly as the
  // serial loop would, so counts, accumulators, buckets, and records are
  // bit-identical for every thread count.
  for (int trial = 0; trial < cfg.trials; ++trial) {
    auto& o = outcomes[static_cast<size_t>(trial)];
    for (const auto& [name, value] : o.metrics) {
      result.faulty_metrics[name].add(value);
    }
    switch (o.outcome) {
      case core::OutcomeClass::Masked: ++result.masked; break;
      case core::OutcomeClass::SdcSubtle: ++result.sdc_subtle; break;
      case core::OutcomeClass::SdcDistorted: ++result.sdc_distorted; break;
    }
    auto& bit_bucket = result.by_highest_bit[o.plan.highest_bit()];
    ++bit_bucket[static_cast<size_t>(o.outcome)];

    if (cfg.keep_trial_records) {
      TrialRecord rec;
      rec.plan = o.plan;
      rec.example_index = o.example_index;
      rec.outcome = o.outcome;
      rec.correct = o.correct;
      rec.output_matches_baseline = o.output_matches_baseline;
      if (!spec.metrics.empty()) {
        auto it = o.metrics.find(spec.metrics.front().name);
        if (it != o.metrics.end()) rec.primary_metric = it->second;
      }
      rec.output = std::move(o.output);
      result.records.push_back(std::move(rec));
    }
  }

  result.total_runtime_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg) {
  model::InferenceModel engine(zoo.get(model_name), precision);
  const auto& eval_set = zoo.task(spec.kind).eval;
  return run_campaign_on(engine, zoo.vocab(), eval_set, spec, cfg);
}

}  // namespace llmfi::eval
