#include "eval/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string_view>
#include <thread>

#include "core/injector.h"
#include "obs/obs.h"
#include "serve/scheduler.h"

namespace llmfi::eval {

namespace {

// The metrics whose per-example values are exact 0/1 hits; their ratio
// CIs use true integer counts, not accumulator means.
bool is_proportion_metric(std::string_view name) {
  return name == "accuracy" || name == "exact_match";
}

// Per-trial detector stack assembled from the campaign's shared
// read-only profiles. Everything mutable (trip latches) lives in this
// stack-local bundle, which is what keeps detection compatible with the
// bit-identical parallel trial loop.
struct DetectorBundle {
  std::optional<core::ChecksumDetector> checksum;
  std::optional<core::ActivationDetector> range;
  std::optional<core::DetectorStack> stack;

  DetectorBundle(const DetectionConfig& dc, const DetectionContext& ctx,
                 nn::LinearHook* next) {
    std::vector<nn::DetectorHook*> children;
    if (dc.checksum) {
      this->checksum.emplace(ctx.checksum);
      children.push_back(&*this->checksum);
    }
    if (dc.range) {
      range.emplace(ctx.activation);
      children.push_back(&*range);
    }
    stack.emplace(std::move(children), next);
  }

  core::DetectorStack* hook() { return &*stack; }
};

// A campaign config the batch rows cannot express exactly falls back to
// the sequential trial loop — a correctness-preserving downgrade worth
// one loud line per process, like gen's prefix-fork fallback warning.
std::atomic<bool> g_batch_fallback_warned{false};

// LLMFI_THREADS-style worker counts and LLMFI_TP multiply: threads
// workers each drive a tp-wide shard group. Oversubscription is
// correctness-neutral (byte-identical results) but silently serializes
// the speedup, so it earns one loud line per process.
std::atomic<bool> g_thread_product_warned{false};

void warn_thread_product(int threads, int tp) {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return;
  if (static_cast<long long>(threads) * tp <= static_cast<long long>(hc)) {
    return;
  }
  if (!g_thread_product_warned.exchange(true)) {
    std::fprintf(stderr,
                 "llmfi: threads (%d) x tp (%d) = %d exceeds hardware "
                 "concurrency (%u); expect oversubscription, not speedup\n",
                 threads, tp, threads * tp, hc);
  }
}

// RAII tensor-parallel arming: campaigns set the caller's engine (worker
// replicas clone it afterwards, inheriting the degree) and restore the
// prior value on every exit path.
struct TpScope {
  model::InferenceModel& engine;
  int previous;
  TpScope(model::InferenceModel& m, int tp)
      : engine(m), previous(m.tensor_parallel()) {
    engine.set_tensor_parallel(tp);
  }
  ~TpScope() { engine.set_tensor_parallel(previous); }
  TpScope(const TpScope&) = delete;
  TpScope& operator=(const TpScope&) = delete;
};

void warn_batch_fallback(const char* why) {
  if (!g_batch_fallback_warned.exchange(true)) {
    std::fprintf(stderr,
                 "llmfi: batched campaign mode unavailable (%s); "
                 "falling back to the sequential trial loop\n",
                 why);
  }
}

// Classification + bookkeeping tail shared by the sequential run_trial
// and the batched serve driver: compares the faulty run against its
// baseline and fills every TrialOutcome field except plan/example_index.
void finish_outcome(TrialOutcome& out, ExampleResult faulty,
                    const ExampleResult& base, const WorkloadSpec& spec,
                    bool detect_recover) {
  const bool discrete = spec.style == data::TaskStyle::MultipleChoice ||
                        spec.kind == data::TaskKind::MathGsm;
  // baseline_empty considers generated tokens only: multiple-choice
  // runs never generate tokens, so an empty faulty token stream is
  // normal there, not a distortion symptom.
  const auto signals = core::analyze_distortion(
      faulty.tokens, faulty.nonfinite_logits, faulty.hit_max_tokens,
      /*baseline_ended=*/!base.hit_max_tokens,
      /*baseline_empty=*/base.tokens.empty());
  out.outcome = discrete
                    ? core::classify_direct(faulty.correct, signals)
                    : core::classify_generative(faulty.output, base.output,
                                                signals);
  // Detected trials under a recovery policy get their own outcome
  // classes: the run either converged back to the fault-free output or
  // it did not. Detect-only campaigns keep the base taxonomy so their
  // SDC counts stay comparable with undetected runs.
  if (detect_recover && faulty.detections > 0) {
    out.outcome = (faulty.output == base.output)
                      ? core::OutcomeClass::DetectedRecovered
                      : core::OutcomeClass::DetectedUnrecovered;
  }
  out.detections = faulty.detections;
  out.recovery_passes = faulty.recovery_passes;
  out.passes = faulty.passes;
  out.skipped_passes = faulty.skipped_passes;
  out.unrecovered = faulty.unrecovered_detection;
  out.correct = faulty.correct;
  out.output_matches_baseline = (faulty.output == base.output);
  out.metrics = std::move(faulty.metrics);
  out.output = std::move(faulty.output);
  // Anomalous verdicts (corruption escaped, or detection failed to
  // recover) trigger the flight recorder's first-anomaly dump so the
  // trial's causal event chain survives for postmortem (DESIGN.md §16).
  // Read-only on `out`, so classification is identical recorder on/off.
  if (obs::recorder_enabled() &&
      (out.outcome == core::OutcomeClass::SdcSubtle ||
       out.outcome == core::OutcomeClass::SdcDistorted ||
       out.outcome == core::OutcomeClass::DetectedUnrecovered)) {
    obs::recorder_note_anomaly(obs::current_context().trial_id);
  }
}

}  // namespace

double CampaignResult::sdc_rate() const {
  const int n = trials();
  return n > 0 ? static_cast<double>(sdc_subtle + sdc_distorted) / n : 0.0;
}

double CampaignResult::baseline_mean(const std::string& metric) const {
  auto it = baseline_metrics.find(metric);
  return it == baseline_metrics.end() ? 0.0 : it->second.mean();
}

double CampaignResult::faulty_mean(const std::string& metric) const {
  auto it = faulty_metrics.find(metric);
  return it == faulty_metrics.end() ? 0.0 : it->second.mean();
}

metrics::Ratio CampaignResult::normalized(const std::string& metric) const {
  auto fit = faulty_metrics.find(metric);
  auto bit = baseline_metrics.find(metric);
  if (fit == faulty_metrics.end() || bit == baseline_metrics.end()) {
    return {};
  }
  const auto& f = fit->second;
  const auto& b = bit->second;
  if (metric == "accuracy" || metric == "exact_match") {
    // Proportions: Katz log CI over the *tracked* integer hit counts.
    // Reconstructing hits as lround(mean * n) re-derives them from a
    // Welford mean whose round-off can push the product across the .5
    // boundary — only hand-built results without hit maps fall back to
    // the reconstruction.
    const auto fh_it = faulty_hits.find(metric);
    const auto bh_it = baseline_hits.find(metric);
    const long long fh =
        fh_it != faulty_hits.end()
            ? fh_it->second
            : static_cast<long long>(std::lround(f.mean() * f.n()));
    const long long bh =
        bh_it != baseline_hits.end()
            ? bh_it->second
            : static_cast<long long>(std::lround(b.mean() * b.n()));
    return metrics::katz_ratio_ci(static_cast<int>(fh), f.n(),
                                  static_cast<int>(bh), b.n());
  }
  return metrics::log_ratio_ci(f.mean(), f.stddev(), f.n(), b.mean(),
                               b.stddev(), b.n());
}

TrialOutcome run_trial(model::InferenceModel& engine, const tok::Vocab& vocab,
                       const std::vector<data::Example>& eval_set,
                       const std::vector<ExampleResult>& baselines,
                       const WorkloadSpec& spec, const CampaignConfig& cfg,
                       const num::Rng& campaign_rng, int trial,
                       const DetectionContext* detect,
                       const std::vector<gen::PrefixSnapshot>* snapshots,
                       std::shared_ptr<nn::PagePool> kv_pool) {
  // Trial-scoped observability context: every span, recorder event, and
  // detector trip below carries this trial id. Sequential trials have no
  // HTTP identity, so trace/request ids stay 0.
  obs::RequestContext trial_ctx;
  trial_ctx.trial_id = trial;
  obs::ContextScope trial_cscope(trial_ctx);
  obs::TraceScope trial_span("trial", trial);
  const int n_inputs = static_cast<int>(baselines.size());
  const int ei = trial % n_inputs;
  const auto& ex = eval_set[static_cast<size_t>(ei)];
  const auto& base = baselines[static_cast<size_t>(ei)];

  num::Rng rng = campaign_rng.fork(static_cast<std::uint64_t>(trial));
  core::SamplerScope scope;
  scope.layer_filter = cfg.layer_filter;
  scope.max_passes = std::max(1, base.passes - cfg.exclude_final_passes);

  TrialOutcome out;
  out.example_index = ei;
  out.plan = core::sample_fault(cfg.fault, engine, scope, rng);
  if (obs::recorder_enabled()) {
    obs::record_event(obs::RecType::InjectArmed, out.plan.pass_index,
                      static_cast<std::int64_t>(out.plan.model),
                      out.plan.layer.block);
  }

  const bool use_detect = detect != nullptr && cfg.detection.enabled();

  // Every run this trial performs draws its caches from the shared page
  // pool when one is set (null leaves the contiguous layout). Values are
  // bit-identical either way, so the arms below stay oblivious to it.
  RunOptions base_run = cfg.run;
  base_run.gen.kv_pool = kv_pool;

  ExampleResult faulty;
  if (core::is_kv_fault(cfg.fault)) {
    // KV-bit faults are transient in origin (one flip, one pass) but
    // persistent in effect: every later pass re-reads the corrupted row.
    // The injector is a per-pass cache hook, not a linear hook, so it
    // rides GenerationConfig::kv_hook instead of the engine's hook slot.
    core::KvBitFaultInjector injector(out.plan, engine.precision().act_dtype);
    RunOptions run = base_run;
    run.gen.kv_hook = &injector;
    if (use_detect) {
      // Detect-only during the run: recompute-the-pass rewinds appends,
      // not already-cached rows, so in-pass retries would re-read the
      // same corrupted element forever — max_recoveries stays 0.
      DetectorBundle det(cfg.detection, *detect, nullptr);
      run.gen.detector = det.hook();
      run.gen.max_recoveries = 0;
      core::LinearHookGuard guard(engine, det.hook());
      faulty = run_example(engine, vocab, spec, ex, run);
      if (cfg.detection.recover && faulty.detections > 0) {
        // Flush-and-refill recovery: restart the inference on a fresh
        // cache. The single-shot injector already fired, so the rerun
        // recomputes every K/V row clean — the KV analogue of the
        // memory arm's restore-and-rerun, with the same accounting.
        const int detections = faulty.detections;
        const int poisoned_passes = faulty.passes;
        ExampleResult restored = run_example(engine, vocab, spec, ex,
                                             base_run);
        restored.detections = detections;
        restored.recoveries = detections;
        restored.recovery_passes = restored.passes;  // the rerun is the cost
        restored.passes += poisoned_passes;
        faulty = std::move(restored);
      }
    } else {
      // Same prefix-fork gating as the transient-compute arm: the flip
      // fires at the start of pass t (>= 1 by construction), so passes
      // 0..t-1 are bit-identical to the baseline and the forked prefix
      // holds exactly the rows the injector corrupts.
      if (snapshots != nullptr && cfg.run.gen.num_beams == 1 &&
          out.plan.pass_index >= 1 &&
          ei < static_cast<int>(snapshots->size()) &&
          (*snapshots)[static_cast<size_t>(ei)].valid) {
        run.resume = &(*snapshots)[static_cast<size_t>(ei)];
        run.start_pass = out.plan.pass_index;
      }
      faulty = run_example(engine, vocab, spec, ex, run);
    }
  } else if (core::is_memory_fault(cfg.fault)) {
    // Persistent faults: recomputing a pass re-reads the same corrupted
    // weight, so the run is detect-only; recovery is
    // weight-rescreen-and-restore instead. The screen profiles the
    // *clean* weights before the corruption lands.
    std::optional<core::WeightScreen> screen;
    if (use_detect && cfg.detection.recover) screen.emplace(engine);
    bool restore_and_rerun = false;
    {
      core::WeightCorruption guard(engine, out.plan);
      if (use_detect) {
        DetectorBundle det(cfg.detection, *detect, nullptr);
        RunOptions run = base_run;
        run.gen.detector = det.hook();
        run.gen.max_recoveries = 0;
        core::LinearHookGuard hook_guard(engine, det.hook());
        faulty = run_example(engine, vocab, spec, ex, run);
        // A detector trip plus a positive weight screen localizes the
        // fault to memory — the restore (the guard's teardown) is the
        // repair, the rerun harvests it.
        restore_and_rerun = screen.has_value() && faulty.detections > 0 &&
                            screen->scan(cfg.detection.screen_bound) > 0;
      } else {
        faulty = run_example(engine, vocab, spec, ex, base_run);
      }
    }  // corruption restored here
    if (restore_and_rerun) {
      const int detections = faulty.detections;
      const int poisoned_passes = faulty.passes;
      ExampleResult restored = run_example(engine, vocab, spec, ex, base_run);
      restored.detections = detections;
      restored.recoveries = detections;
      restored.recovery_passes = restored.passes;  // the rerun is the cost
      restored.passes += poisoned_passes;
      faulty = std::move(restored);
    }
  } else if (core::is_tp_fault(cfg.fault)) {
    // Tensor-parallel faults land inside the row-parallel products, so
    // the injector rides the shard hook instead of the linear hook —
    // which leaves the linear-hook slot free for the detector stack, and
    // means detection composes with injection by construction (the
    // detectors see the already-corrupted post-reduction output, exactly
    // as they would a comp fault). Transient like comp faults, so
    // recompute-the-pass recovery and the prefix fork apply unchanged.
    core::TpFaultInjector injector(out.plan);
    core::ShardHookGuard guard(engine, &injector);
    RunOptions run = base_run;
    if (use_detect) {
      DetectorBundle det(cfg.detection, *detect, nullptr);
      run.gen.detector = det.hook();
      run.gen.max_recoveries =
          cfg.detection.recover ? cfg.detection.max_retries : 0;
      core::LinearHookGuard hook_guard(engine, det.hook());
      faulty = run_example(engine, vocab, spec, ex, run);
    } else {
      if (snapshots != nullptr && cfg.run.gen.num_beams == 1 &&
          out.plan.pass_index >= 1 &&
          ei < static_cast<int>(snapshots->size()) &&
          (*snapshots)[static_cast<size_t>(ei)].valid) {
        run.resume = &(*snapshots)[static_cast<size_t>(ei)];
        run.start_pass = out.plan.pass_index;
      }
      faulty = run_example(engine, vocab, spec, ex, run);
    }
  } else if (use_detect) {
    core::ComputationalFaultInjector injector(out.plan,
                                              engine.precision().act_dtype);
    DetectorBundle det(cfg.detection, *detect, &injector);
    RunOptions run = base_run;
    run.gen.detector = det.hook();
    run.gen.max_recoveries =
        cfg.detection.recover ? cfg.detection.max_retries : 0;
    core::LinearHookGuard guard(engine, det.hook());
    faulty = run_example(engine, vocab, spec, ex, run);
  } else {
    core::ComputationalFaultInjector injector(
        out.plan, engine.precision().act_dtype);
    core::LinearHookGuard guard(engine, &injector);
    RunOptions run = base_run;
    // Prefix-fork fast path: a transient fault armed at pass t leaves
    // passes 0..t-1 bit-identical to the baseline, so the trial resumes
    // from the shared snapshot at pass t under greedy decoding. gen
    // revalidates every precondition and falls back to a full recompute
    // (with a one-time warning) on any snapshot/config drift.
    if (snapshots != nullptr && cfg.run.gen.num_beams == 1 &&
        out.plan.pass_index >= 1 &&
        ei < static_cast<int>(snapshots->size()) &&
        (*snapshots)[static_cast<size_t>(ei)].valid) {
      run.resume = &(*snapshots)[static_cast<size_t>(ei)];
      run.start_pass = out.plan.pass_index;
    }
    faulty = run_example(engine, vocab, spec, ex, run);
  }

  finish_outcome(out, std::move(faulty), base, spec,
                 /*detect_recover=*/use_detect && cfg.detection.recover);
  return out;
}

namespace {

// Runs trials [0, cfg.trials) against per-worker engine replicas and
// fills `outcomes` slot-by-slot. Each worker owns one engine (replica 0
// is the caller's), so WeightCorruption flips and hook installs never
// cross threads; the atomic counter only schedules, it never orders the
// reduction. An exception aborts the throwing worker's loop; the driver
// rethrows the one with the lowest trial index so failure, too, is
// deterministic.
void run_trials_parallel(model::InferenceModel& engine,
                         const tok::Vocab& vocab,
                         const std::vector<data::Example>& eval_set,
                         const std::vector<ExampleResult>& baselines,
                         const WorkloadSpec& spec, const CampaignConfig& cfg,
                         const num::Rng& campaign_rng, int n_threads,
                         const DetectionContext* detect,
                         const std::vector<gen::PrefixSnapshot>* snapshots,
                         const std::shared_ptr<nn::PagePool>& kv_pool,
                         std::vector<TrialOutcome>& outcomes,
                         obs::ProgressReporter* progress) {
  std::vector<model::InferenceModel> replicas;
  replicas.reserve(static_cast<size_t>(n_threads - 1));
  for (int w = 1; w < n_threads; ++w) replicas.push_back(engine.clone());

  std::atomic<int> next_trial{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  int first_error_trial = cfg.trials;

  auto worker = [&](model::InferenceModel& eng) {
    for (int trial = next_trial.fetch_add(1); trial < cfg.trials;
         trial = next_trial.fetch_add(1)) {
      try {
        outcomes[static_cast<size_t>(trial)] =
            run_trial(eng, vocab, eval_set, baselines, spec, cfg,
                      campaign_rng, trial, detect, snapshots, kv_pool);
        // Trial boundary: fold this thread's span buffer into the global
        // trace and tick the progress line.
        if (obs::trace_enabled()) obs::trace_flush_thread();
        if (progress != nullptr) {
          progress->add(static_cast<std::size_t>(
              outcomes[static_cast<size_t>(trial)].outcome));
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (trial < first_error_trial) {
          first_error_trial = trial;
          first_error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(replicas.size());
  for (auto& replica : replicas) {
    pool.emplace_back([&worker, &replica] { worker(replica); });
  }
  worker(engine);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

// One in-flight batched trial: the injector (this request's row hook)
// must outlive the request's completion, so it travels with the request
// callbacks in a shared context instead of a stack-scoped guard.
struct BatchTrialCtx {
  int trial = 0;
  int ei = 0;
  TrialOutcome out;
  std::optional<core::ComputationalFaultInjector> injector;
};

// Batched trial execution (DESIGN.md §10): same contract and worker
// topology as run_trials_parallel, but each worker drives a
// continuous-batching scheduler over its private engine replica instead
// of a scalar trial loop — up to `batch` trials share every decode
// forward pass. The atomic counter streams trials into whichever
// worker's scheduler has a free slot; each outcome still lands at its
// trial index and every trial's tokens are bit-identical to a
// sequential run (forward_batch's per-row contract), so the reduction
// is byte-identical to every other execution mode. Only reachable for
// transient-compute, detector-free, greedy, generative campaigns — the
// caller's eligibility gate falls back to sequential otherwise.
void run_trials_batched(model::InferenceModel& engine,
                        const tok::Vocab& vocab,
                        const std::vector<data::Example>& eval_set,
                        const std::vector<ExampleResult>& baselines,
                        const WorkloadSpec& spec, const CampaignConfig& cfg,
                        const num::Rng& campaign_rng, int n_threads,
                        int batch,
                        const std::vector<gen::PrefixSnapshot>* snapshots,
                        const std::shared_ptr<nn::PagePool>& kv_pool,
                        std::vector<TrialOutcome>& outcomes,
                        obs::ProgressReporter* progress,
                        CampaignResult::ServeStats& serve_stats) {
  const int n_inputs = static_cast<int>(baselines.size());
  // Prompts are per-input, not per-trial — encode them once up front.
  std::vector<std::vector<tok::TokenId>> prompts;
  prompts.reserve(baselines.size());
  for (int i = 0; i < n_inputs; ++i) {
    prompts.push_back(build_prompt(vocab, eval_set[static_cast<size_t>(i)],
                                   cfg.run.direct_prompt));
  }

  std::vector<model::InferenceModel> replicas;
  replicas.reserve(static_cast<size_t>(n_threads - 1));
  for (int w = 1; w < n_threads; ++w) replicas.push_back(engine.clone());

  std::atomic<int> next_trial{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  int first_error_trial = cfg.trials;
  const auto record_error = [&](int trial) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (trial < first_error_trial) {
      first_error_trial = trial;
      first_error = std::current_exception();
    }
  };

  auto worker = [&](model::InferenceModel& eng) {
    // A null kv_pool leaves the slots contiguous; a live one makes every
    // forked admission alias the snapshot's prefix pages and puts the
    // scheduler's page-budget gate (queue-when-dry) in play.
    serve::BatchEngine bengine(eng, batch, kv_pool);
    serve::Scheduler sched(bengine);
    // Trials this worker has admitted but not completed. An engine
    // exception aborts the whole scheduler run, so it is attributed to
    // the earliest trial it can have poisoned.
    std::set<int> inflight;
    bool stop = false;

    auto source = [&]() -> std::optional<serve::Request> {
      if (stop) return std::nullopt;
      const int trial = next_trial.fetch_add(1);
      if (trial >= cfg.trials) return std::nullopt;
      try {
        const int ei = trial % n_inputs;
        const auto& base = baselines[static_cast<size_t>(ei)];
        num::Rng rng = campaign_rng.fork(static_cast<std::uint64_t>(trial));
        core::SamplerScope scope;
        scope.layer_filter = cfg.layer_filter;
        scope.max_passes = std::max(1, base.passes - cfg.exclude_final_passes);

        auto ctx = std::make_shared<BatchTrialCtx>();
        ctx->trial = trial;
        ctx->ei = ei;
        ctx->out.example_index = ei;
        ctx->out.plan = core::sample_fault(cfg.fault, eng, scope, rng);
        ctx->injector.emplace(ctx->out.plan, eng.precision().act_dtype);

        serve::Request req;
        req.id = static_cast<std::uint64_t>(trial);
        req.prompt = prompts[static_cast<size_t>(ei)];
        req.max_new_tokens = cfg.run.gen.max_new_tokens;
        req.eos = cfg.run.gen.eos;
        req.hook = &*ctx->injector;
        // Same trial-scoped identity as the sequential path — the batch
        // engine pushes it around this request's admission, decode rows,
        // and retirement, so finish_outcome's anomaly hook sees the
        // trial id via current_context().
        req.ctx.trial_id = trial;
        if (obs::recorder_enabled()) {
          obs::ContextScope armed_scope(req.ctx);
          obs::record_event(obs::RecType::InjectArmed,
                            ctx->out.plan.pass_index,
                            static_cast<std::int64_t>(ctx->out.plan.model),
                            ctx->out.plan.layer.block);
        }
        // Same fork gating as the sequential path; BatchEngine::admit
        // revalidates via gen::check_greedy_resume and falls back to a
        // full prefill on any snapshot drift.
        if (snapshots != nullptr && ctx->out.plan.pass_index >= 1 &&
            ei < static_cast<int>(snapshots->size()) &&
            (*snapshots)[static_cast<size_t>(ei)].valid) {
          req.resume = &(*snapshots)[static_cast<size_t>(ei)];
          req.start_pass = ctx->out.plan.pass_index;
        }
        inflight.insert(trial);
        req.on_done = [&, ctx](const serve::Completion& c) {
          ExampleResult faulty;
          faulty.tokens = c.tokens;
          faulty.passes = c.passes;
          faulty.skipped_passes = c.skipped_passes;
          faulty.hit_max_tokens = c.hit_max_tokens;
          faulty.nonfinite_logits = c.nonfinite_logits;
          score_generative(vocab, spec, eval_set[static_cast<size_t>(ctx->ei)],
                           faulty);
          finish_outcome(ctx->out, std::move(faulty),
                         baselines[static_cast<size_t>(ctx->ei)], spec,
                         /*detect_recover=*/false);
          const auto outcome_class = ctx->out.outcome;
          outcomes[static_cast<size_t>(ctx->trial)] = std::move(ctx->out);
          inflight.erase(ctx->trial);
          // Trial boundary (retirement): fold this worker's span buffer
          // and tick the progress line.
          if (obs::trace_enabled()) obs::trace_flush_thread();
          if (progress != nullptr) {
            progress->add(static_cast<std::size_t>(outcome_class));
          }
        };
        return req;
      } catch (...) {
        record_error(trial);
        stop = true;
        return std::nullopt;
      }
    };

    try {
      sched.run(source);
    } catch (...) {
      record_error(inflight.empty() ? cfg.trials - 1 : *inflight.begin());
    }
    // Per-worker scheduler/engine counters fold into the campaign-level
    // diagnostics (error_mutex doubles as the stats lock — it is idle by
    // the time a worker drains).
    {
      const auto& ss = sched.stats();
      const auto& es = sched.engine_stats();
      std::lock_guard<std::mutex> lock(error_mutex);
      serve_stats.active = true;
      serve_stats.submitted += ss.submitted;
      serve_stats.completed += ss.completed;
      serve_stats.backfills += ss.backfills;
      serve_stats.admitted += es.admitted;
      serve_stats.forked_admissions += es.forked_admissions;
      serve_stats.admission_passes += es.admission_passes;
      serve_stats.decode_batches += es.decode_batches;
      serve_stats.decode_rows += es.decode_rows;
      serve_stats.generated_tokens += es.generated_tokens;
      serve_stats.max_active = std::max(serve_stats.max_active, es.max_active);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(replicas.size());
  for (auto& replica : replicas) {
    pool.emplace_back([&worker, &replica] { worker(replica); });
  }
  worker(engine);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg) {
  CampaignResult result;
  result.config = cfg;
  const auto t_start = std::chrono::steady_clock::now();

  const int n_inputs =
      std::min<int>(cfg.n_inputs, static_cast<int>(eval_set.size()));
  if (n_inputs <= 0) throw std::invalid_argument("campaign: no inputs");

  // Detection profiles are collected once, serially, on the clean engine
  // and shared read-only by every worker replica.
  std::optional<DetectionContext> detect_ctx;
  if (cfg.detection.enabled()) {
    obs::TraceScope profile_span("detector_profile");
    std::vector<std::string> prompts;
    prompts.reserve(static_cast<size_t>(n_inputs));
    for (int i = 0; i < n_inputs; ++i) {
      const auto& ex = eval_set[static_cast<size_t>(i)];
      prompts.push_back(cfg.run.direct_prompt && !ex.prompt_direct.empty()
                            ? ex.prompt_direct
                            : ex.prompt);
    }
    detect_ctx.emplace();
    if (cfg.detection.range) {
      detect_ctx->activation = core::profile_activations(
          engine, vocab, prompts, cfg.detection.range_margin);
    }
    if (cfg.detection.checksum) {
      detect_ctx->checksum = core::profile_checksums(
          engine, vocab, prompts, cfg.detection.checksum_margin);
    }
  }
  const DetectionContext* detect = detect_ctx ? &*detect_ctx : nullptr;

  // Prefix-fork applies only where the skipped prefix is provably
  // baseline-identical: transient compute faults, greedy decoding, no
  // per-pass detector baselines to reproduce. LLMFI_PREFIX_FORK
  // overrides the config when set ("0" disables, anything else enables).
  bool prefix_fork = cfg.prefix_fork;
  if (const char* v = std::getenv("LLMFI_PREFIX_FORK");
      v != nullptr && *v != '\0') {
    prefix_fork = std::string_view(v) != "0";
  }
  const bool build_snapshots = prefix_fork &&
                               !core::is_memory_fault(cfg.fault) &&
                               !cfg.detection.enabled() &&
                               cfg.run.gen.num_beams == 1;

  // Batched trial execution: LLMFI_BATCH overrides the config when set
  // to an integer >= 1 (anything else is ignored), then the eligibility
  // gate mirrors the prefix-fork gating — configs the batch rows cannot
  // reproduce exactly fall back to the sequential loop with a one-time
  // warning.
  int batch = std::max(1, cfg.batch);
  if (const char* v = std::getenv("LLMFI_BATCH"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 1 && parsed <= 4096) {
      batch = static_cast<int>(parsed);
    }
  }
  if (batch > 1) {
    const char* why = nullptr;
    if (core::is_memory_fault(cfg.fault)) {
      why = "memory faults corrupt engine-global weights";
    } else if (cfg.detection.enabled()) {
      why = "detection needs per-pass recovery control";
    } else if (core::is_kv_fault(cfg.fault)) {
      why = "kv faults hook per-pass cache state the batch rows do not fire";
    } else if (core::is_tp_fault(cfg.fault)) {
      why = "tp faults hook the shard reduction the batch rows do not fire";
    } else if (cfg.run.gen.num_beams != 1) {
      why = "beam search decodes a single sequence-group";
    } else if (spec.style == data::TaskStyle::MultipleChoice) {
      why = "option scoring has no decode loop to batch";
    }
    if (why != nullptr) {
      warn_batch_fallback(why);
      batch = 1;
    }
  }

  const int n_threads =
      std::max(1, std::min(cfg.threads, std::max(1, cfg.trials)));

  // Tensor parallelism (DESIGN.md §14): LLMFI_TP overrides the config
  // knob when set to an integer >= 1. Purely a wall-clock knob — results
  // are byte-identical at any degree — armed on the caller's engine so
  // every worker replica clones it, and restored on return.
  int tp = std::max(1, cfg.tp);
  if (const char* v = std::getenv("LLMFI_TP"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 1 && parsed <= 64) {
      tp = static_cast<int>(parsed);
    }
  }
  warn_thread_product(n_threads, tp);
  TpScope tp_scope(engine, tp);

  // Paged KV cache (DESIGN.md §12): LLMFI_KV_PAGES overrides the config
  // knob when set to an integer >= 0 (0 keeps the contiguous oracle).
  int kv_pages = std::max(0, cfg.kv_pages);
  if (const char* v = std::getenv("LLMFI_KV_PAGES");
      v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 0 && parsed <= (1L << 28)) {
      kv_pages = static_cast<int>(parsed);
    }
  }
  std::shared_ptr<nn::PagePool> kv_pool;
  if (kv_pages > 0) {
    // The sequential arms have no admission gate, so the pool must cover
    // the campaign's worst case: every concurrently-live cache fully
    // paged out. That is the baseline snapshots (held for the whole
    // trial loop) plus, per worker, the batch slots or beam copies (beam
    // expansion transiently doubles them) and a scratch cache for the
    // boundary pages a fork acquires before releasing the old table.
    // Undersized budgets clamp up with one loud line — only the serve
    // scheduler, with its can_admit gate, is built to ride a genuinely
    // tight pool (queue-when-dry), and it exercises that under its own
    // budget in llmfi_serve, not here.
    const auto& mc = engine.config();
    const long long per_seq =
        static_cast<long long>(mc.n_layers) *
        static_cast<long long>(nn::PagePool::pages_for(
            mc.max_seq, nn::PagePool::kDefaultPageRows));
    const long long beams = std::max(1, cfg.run.gen.num_beams);
    const long long concurrent =
        (build_snapshots ? n_inputs : 0) +
        static_cast<long long>(n_threads) * (batch + 2 * beams) + 1;
    const long long floor_pages = per_seq * concurrent;
    long long pages = kv_pages;
    if (pages < floor_pages) {
      std::fprintf(stderr,
                   "llmfi: kv-pages %lld is below the campaign's worst-case "
                   "working set; clamping to %lld\n",
                   pages, floor_pages);
      pages = floor_pages;
    }
    kv_pool = std::make_shared<nn::PagePool>(static_cast<int>(pages),
                                             nn::PagePool::kDefaultPageRows,
                                             mc.d_model);
  }

  // Fault-free baselines, one per input — always serial: they seed the
  // trial loop (pass counts bound the fault sampler's scope). With
  // detection enabled the baselines run under a detect-only stack:
  // detectors never modify activations, so the baseline outputs are
  // unchanged, and any trip is by definition a false positive. When the
  // prefix fork is live, each baseline also captures its PrefixSnapshot,
  // shared read-only by every worker replica.
  std::vector<gen::PrefixSnapshot> snapshots(
      build_snapshots ? static_cast<size_t>(n_inputs) : 0);
  std::vector<ExampleResult> baselines;
  baselines.reserve(static_cast<size_t>(n_inputs));
  for (int i = 0; i < n_inputs; ++i) {
    obs::TraceScope baseline_span("baseline", i);
    ExampleResult base;
    if (detect != nullptr) {
      DetectorBundle det(cfg.detection, *detect, nullptr);
      RunOptions run = cfg.run;
      run.gen.kv_pool = kv_pool;
      run.gen.detector = det.hook();
      run.gen.max_recoveries = 0;
      core::LinearHookGuard guard(engine, det.hook());
      base = run_example(engine, vocab, spec,
                         eval_set[static_cast<size_t>(i)], run);
      if (base.detections > 0) ++result.baseline_false_positives;
    } else {
      RunOptions run = cfg.run;
      // Snapshots captured on the pool let every trial fork alias the
      // baseline's prefix pages instead of copying rows.
      run.gen.kv_pool = kv_pool;
      if (build_snapshots) run.capture = &snapshots[static_cast<size_t>(i)];
      base = run_example(engine, vocab, spec,
                         eval_set[static_cast<size_t>(i)], run);
    }
    for (const auto& [name, value] : base.metrics) {
      result.baseline_metrics[name].add(value);
      if (is_proportion_metric(name)) {
        auto& hits = result.baseline_hits[name];
        if (value > 0.5) ++hits;
      }
    }
    baselines.push_back(std::move(base));
  }

  const num::Rng campaign_rng(cfg.seed);

  // Progress reporting (LLMFI_PROGRESS overrides the config knob): a
  // periodic stderr line ticked from whichever worker retires each
  // trial. Tally columns are the outcome classes, indexed by their enum
  // value — the same index the reduction below switches on.
  std::optional<obs::ProgressReporter> progress_rep;
  if (obs::progress_from_env(cfg.progress) && cfg.trials > 0) {
    std::vector<std::string> tally_names;
    for (int c = 0; c < 5; ++c) {
      tally_names.emplace_back(
          core::outcome_name(static_cast<core::OutcomeClass>(c)));
    }
    progress_rep.emplace("campaign", static_cast<std::uint64_t>(cfg.trials),
                         std::move(tally_names));
  }
  obs::ProgressReporter* progress =
      progress_rep ? &*progress_rep : nullptr;

  const std::vector<gen::PrefixSnapshot>* snaps =
      build_snapshots ? &snapshots : nullptr;
  std::vector<TrialOutcome> outcomes(static_cast<size_t>(
      std::max(0, cfg.trials)));
  if (batch > 1) {
    run_trials_batched(engine, vocab, eval_set, baselines, spec, cfg,
                       campaign_rng, n_threads, batch, snaps, kv_pool,
                       outcomes, progress, result.serve_stats);
  } else if (n_threads == 1) {
    for (int trial = 0; trial < cfg.trials; ++trial) {
      outcomes[static_cast<size_t>(trial)] =
          run_trial(engine, vocab, eval_set, baselines, spec, cfg,
                    campaign_rng, trial, detect, snaps, kv_pool);
      if (obs::trace_enabled()) obs::trace_flush_thread();
      if (progress != nullptr) {
        progress->add(static_cast<std::size_t>(
            outcomes[static_cast<size_t>(trial)].outcome));
      }
    }
  } else {
    run_trials_parallel(engine, vocab, eval_set, baselines, spec, cfg,
                        campaign_rng, n_threads, detect, snaps, kv_pool,
                        outcomes, progress);
  }
  if (progress_rep) progress_rep->finish();

  // Deterministic reduction: fold outcomes in trial order, exactly as the
  // serial loop would, so counts, accumulators, buckets, and records are
  // bit-identical for every thread count.
  for (int trial = 0; trial < cfg.trials; ++trial) {
    auto& o = outcomes[static_cast<size_t>(trial)];
    for (const auto& [name, value] : o.metrics) {
      result.faulty_metrics[name].add(value);
      if (is_proportion_metric(name)) {
        auto& hits = result.faulty_hits[name];
        if (value > 0.5) ++hits;
      }
    }
    switch (o.outcome) {
      case core::OutcomeClass::Masked: ++result.masked; break;
      case core::OutcomeClass::SdcSubtle: ++result.sdc_subtle; break;
      case core::OutcomeClass::SdcDistorted: ++result.sdc_distorted; break;
      case core::OutcomeClass::DetectedRecovered:
        ++result.detected_recovered;
        break;
      case core::OutcomeClass::DetectedUnrecovered:
        ++result.detected_unrecovered;
        break;
    }
    auto& bit_bucket = result.by_highest_bit[o.plan.highest_bit()];
    ++bit_bucket[static_cast<size_t>(o.outcome)];
    result.faulty_passes += o.passes;
    result.recovery_passes += o.recovery_passes;
    result.prefix_skipped_passes += o.skipped_passes;
    if (o.detections > 0) ++result.trials_detected;

    // Per-trial campaign telemetry, recorded here in the serial fold so
    // the registry contents are deterministic too (same trial order as
    // the counters above).
    if (obs::metrics_enabled()) {
      obs::count("campaign_trials_total");
      obs::count(std::string("campaign_outcome_total{outcome=\"") +
                 std::string(core::outcome_name(o.outcome)) + "\"}");
      obs::count(std::string("campaign_site_total{site=\"") +
                 std::string(nn::layer_kind_name(o.plan.layer.kind)) + "\"}");
      obs::count(std::string("campaign_bit_total{bit=\"") +
                 std::to_string(o.plan.highest_bit()) + "\"}");
      obs::observe("campaign_injection_pass", obs::small_count_buckets(),
                   static_cast<double>(o.plan.pass_index));
      obs::observe("campaign_recovery_passes", obs::small_count_buckets(),
                   static_cast<double>(o.recovery_passes));
      obs::count("campaign_detections_total",
                 static_cast<std::uint64_t>(o.detections));
      obs::count("campaign_skipped_passes_total",
                 static_cast<std::uint64_t>(o.skipped_passes));
    }

    if (cfg.keep_trial_records) {
      TrialRecord rec;
      rec.plan = o.plan;
      rec.example_index = o.example_index;
      rec.outcome = o.outcome;
      rec.correct = o.correct;
      rec.output_matches_baseline = o.output_matches_baseline;
      rec.detections = o.detections;
      rec.recovery_passes = o.recovery_passes;
      if (!spec.metrics.empty()) {
        auto it = o.metrics.find(spec.metrics.front().name);
        if (it != o.metrics.end()) rec.primary_metric = it->second;
      }
      rec.output = std::move(o.output);
      result.records.push_back(std::move(rec));
    }
  }

  result.total_runtime_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  if (obs::metrics_enabled()) {
    obs::gauge_set("campaign_runtime_sec", result.total_runtime_sec);
    obs::count("campaign_baseline_false_positives_total",
               static_cast<std::uint64_t>(result.baseline_false_positives));
    if (result.serve_stats.active) {
      obs::gauge_set("campaign_batch_occupancy_mean",
                     result.serve_stats.mean_batch_occupancy());
      obs::count("campaign_batch_backfills_total",
                 result.serve_stats.backfills);
    }
  }
  return result;
}

CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg) {
  model::InferenceModel engine(zoo.get(model_name), precision);
  const auto& eval_set = zoo.task(spec.kind).eval;
  return run_campaign_on(engine, zoo.vocab(), eval_set, spec, cfg);
}

}  // namespace llmfi::eval
