#include "eval/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/injector.h"

namespace llmfi::eval {

double CampaignResult::sdc_rate() const {
  const int n = trials();
  return n > 0 ? static_cast<double>(sdc_subtle + sdc_distorted) / n : 0.0;
}

double CampaignResult::baseline_mean(const std::string& metric) const {
  auto it = baseline_metrics.find(metric);
  return it == baseline_metrics.end() ? 0.0 : it->second.mean();
}

double CampaignResult::faulty_mean(const std::string& metric) const {
  auto it = faulty_metrics.find(metric);
  return it == faulty_metrics.end() ? 0.0 : it->second.mean();
}

metrics::Ratio CampaignResult::normalized(const std::string& metric) const {
  auto fit = faulty_metrics.find(metric);
  auto bit = baseline_metrics.find(metric);
  if (fit == faulty_metrics.end() || bit == baseline_metrics.end()) {
    return {};
  }
  const auto& f = fit->second;
  const auto& b = bit->second;
  if (metric == "accuracy" || metric == "exact_match") {
    // Proportions: Katz log CI.
    const int fh = static_cast<int>(std::lround(f.mean() * f.n()));
    const int bh = static_cast<int>(std::lround(b.mean() * b.n()));
    return metrics::katz_ratio_ci(fh, f.n(), bh, b.n());
  }
  return metrics::log_ratio_ci(f.mean(), f.stddev(), f.n(), b.mean(),
                               b.stddev(), b.n());
}

CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg) {
  CampaignResult result;
  result.config = cfg;
  const auto t_start = std::chrono::steady_clock::now();

  const int n_inputs =
      std::min<int>(cfg.n_inputs, static_cast<int>(eval_set.size()));
  if (n_inputs <= 0) throw std::invalid_argument("campaign: no inputs");

  // Fault-free baselines, one per input.
  std::vector<ExampleResult> baselines;
  baselines.reserve(static_cast<size_t>(n_inputs));
  for (int i = 0; i < n_inputs; ++i) {
    auto base = run_example(engine, vocab, spec,
                            eval_set[static_cast<size_t>(i)], cfg.run);
    for (const auto& [name, value] : base.metrics) {
      result.baseline_metrics[name].add(value);
    }
    baselines.push_back(std::move(base));
  }

  num::Rng campaign_rng(cfg.seed);
  const bool discrete = spec.style == data::TaskStyle::MultipleChoice ||
                        spec.kind == data::TaskKind::MathGsm;

  for (int trial = 0; trial < cfg.trials; ++trial) {
    const int ei = trial % n_inputs;
    const auto& ex = eval_set[static_cast<size_t>(ei)];
    const auto& base = baselines[static_cast<size_t>(ei)];

    num::Rng rng = campaign_rng.fork(static_cast<std::uint64_t>(trial));
    core::SamplerScope scope;
    scope.layer_filter = cfg.layer_filter;
    scope.max_passes = std::max(1, base.passes - cfg.exclude_final_passes);
    const core::FaultPlan plan =
        core::sample_fault(cfg.fault, engine, scope, rng);

    ExampleResult faulty;
    if (core::is_memory_fault(cfg.fault)) {
      core::WeightCorruption guard(engine, plan);
      faulty = run_example(engine, vocab, spec, ex, cfg.run);
    } else {
      core::ComputationalFaultInjector injector(
          plan, engine.precision().act_dtype);
      engine.set_linear_hook(&injector);
      faulty = run_example(engine, vocab, spec, ex, cfg.run);
      engine.set_linear_hook(nullptr);
    }

    for (const auto& [name, value] : faulty.metrics) {
      result.faulty_metrics[name].add(value);
    }

    // baseline_empty considers generated tokens only: multiple-choice
    // runs never generate tokens, so an empty faulty token stream is
    // normal there, not a distortion symptom.
    const auto signals = core::analyze_distortion(
        faulty.tokens, faulty.nonfinite_logits, faulty.hit_max_tokens,
        /*baseline_ended=*/!base.hit_max_tokens,
        /*baseline_empty=*/base.tokens.empty());
    const core::OutcomeClass outcome =
        discrete ? core::classify_direct(faulty.correct, signals)
                 : core::classify_generative(faulty.output, base.output,
                                             signals);
    switch (outcome) {
      case core::OutcomeClass::Masked: ++result.masked; break;
      case core::OutcomeClass::SdcSubtle: ++result.sdc_subtle; break;
      case core::OutcomeClass::SdcDistorted: ++result.sdc_distorted; break;
    }
    auto& bit_bucket = result.by_highest_bit[plan.highest_bit()];
    ++bit_bucket[static_cast<size_t>(outcome)];

    if (cfg.keep_trial_records) {
      TrialRecord rec;
      rec.plan = plan;
      rec.example_index = ei;
      rec.outcome = outcome;
      rec.correct = faulty.correct;
      rec.output_matches_baseline = (faulty.output == base.output);
      if (!spec.metrics.empty()) {
        auto it = faulty.metrics.find(spec.metrics.front().name);
        if (it != faulty.metrics.end()) rec.primary_metric = it->second;
      }
      rec.output = faulty.output;
      result.records.push_back(std::move(rec));
    }
  }

  result.total_runtime_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg) {
  model::InferenceModel engine(zoo.get(model_name), precision);
  const auto& eval_set = zoo.task(spec.kind).eval;
  return run_campaign_on(engine, zoo.vocab(), eval_set, spec, cfg);
}

}  // namespace llmfi::eval
