#include "eval/runner.h"

#include <stdexcept>

#include "obs/trace.h"

namespace llmfi::eval {

std::vector<tok::TokenId> build_prompt(const tok::Vocab& vocab,
                                       const data::Example& ex,
                                       bool direct_prompt) {
  const std::string& prompt_text =
      (direct_prompt && !ex.prompt_direct.empty()) ? ex.prompt_direct
                                                   : ex.prompt;
  std::vector<tok::TokenId> prompt = {vocab.bos()};
  const auto body = vocab.encode(prompt_text);
  prompt.insert(prompt.end(), body.begin(), body.end());
  return prompt;
}

void score_generative(const tok::Vocab& vocab, const WorkloadSpec& spec,
                      const data::Example& ex, ExampleResult& result) {
  result.output = vocab.decode(result.tokens);

  if (spec.kind == data::TaskKind::MathGsm) {
    const std::string answer = data::extract_final_answer(result.output);
    result.correct = !answer.empty() && answer == ex.final_answer;
    result.metrics["accuracy"] = result.correct ? 1.0 : 0.0;
    return;
  }

  for (const auto& metric : spec.metrics) {
    result.metrics[metric.name] = metric.fn(result.output, ex.reference);
  }
  // "Correct" for generative quality tasks = exact reference match; only
  // used for diagnostics, the campaign aggregates the metric values.
  result.correct = (result.output == ex.reference);
}

ExampleResult run_example(model::InferenceModel& m, const tok::Vocab& vocab,
                          const WorkloadSpec& spec, const data::Example& ex,
                          const RunOptions& opt) {
  obs::TraceScope example_span("example");
  ExampleResult result;

  if (spec.style == data::TaskStyle::MultipleChoice) {
    std::vector<tok::TokenId> prompt = {vocab.bos()};
    const auto body = vocab.encode(ex.prompt);
    prompt.insert(prompt.end(), body.begin(), body.end());
    std::vector<std::vector<tok::TokenId>> options;
    options.reserve(ex.options.size());
    for (const auto& o : ex.options) options.push_back(vocab.encode(o));
    const auto mc = gen::score_options(m, prompt, options, opt.gen.detector,
                                       opt.gen.max_recoveries, opt.capture,
                                       opt.resume, opt.start_pass);
    result.chosen_option = mc.chosen;
    result.passes = mc.passes;
    result.skipped_passes = mc.skipped_passes;
    result.output = ex.options[static_cast<size_t>(mc.chosen)];
    result.correct = (mc.chosen == ex.correct);
    result.nonfinite_logits = m.saw_nonfinite_logits();
    result.detections = mc.detections;
    result.recoveries = mc.recoveries;
    result.recovery_passes = mc.recovery_passes;
    result.unrecovered_detection = mc.unrecovered_detection;
    result.metrics["accuracy"] = result.correct ? 1.0 : 0.0;
    return result;
  }

  // Generative path.
  const auto prompt = build_prompt(vocab, ex, opt.direct_prompt);

  gen::GenerationConfig gen_cfg = opt.gen;
  gen_cfg.capture = opt.capture;
  gen_cfg.resume = opt.resume;
  gen_cfg.start_pass = opt.start_pass;
  const auto gr = gen::generate(m, prompt, gen_cfg);
  result.tokens = gr.tokens;
  result.passes = gr.passes;
  result.skipped_passes = gr.skipped_passes;
  result.hit_max_tokens = gr.hit_max_tokens;
  result.nonfinite_logits = gr.nonfinite_logits;
  result.detections = gr.detections;
  result.recoveries = gr.recoveries;
  result.recovery_passes = gr.recovery_passes;
  result.unrecovered_detection = gr.unrecovered_detection;
  score_generative(vocab, spec, ex, result);
  return result;
}

}  // namespace llmfi::eval
