#pragma once
// The workload matrix of the paper's Table 1: dataset -> task kind,
// evaluation metrics, and default model assignments.

#include <functional>
#include <string>
#include <vector>

#include "data/tasks.h"

namespace llmfi::eval {

using MetricFn = std::function<double(const std::string& hypothesis,
                                      const std::string& reference)>;

struct MetricSpec {
  std::string name;
  MetricFn fn;  // unused for multiple-choice/math accuracy
};

struct WorkloadSpec {
  std::string dataset;           // e.g. "wmt16-syn"
  data::TaskKind kind;
  data::TaskStyle style;
  std::vector<MetricSpec> metrics;  // first entry is the primary metric
  std::vector<std::string> default_models;  // per Table 1
};

// All nine workloads. Deterministic order matching the paper's Table 1.
const std::vector<WorkloadSpec>& all_workloads();

const WorkloadSpec& workload(const std::string& dataset);
const WorkloadSpec& workload(data::TaskKind kind);

}  // namespace llmfi::eval
