#pragma once
// Runs one evaluation example through the engine (generation for
// generative tasks, option scoring for multiple-choice) and scores the
// result with the workload's metrics.

#include <map>
#include <string>

#include "data/tasks.h"
#include "data/world.h"
#include "eval/workloads.h"
#include "gen/generate.h"
#include "model/transformer.h"

namespace llmfi::eval {

struct RunOptions {
  gen::GenerationConfig gen;
  // MathGsm only: use the direct-answer prompt (CoT disabled, §4.3.2).
  bool direct_prompt = false;
  // Prefix-fork plumbing (DESIGN.md §9), forwarded to gen: `capture`
  // records a baseline run's snapshot; `resume` + `start_pass` skips the
  // fault-free prefix of a trial run against that snapshot.
  gen::PrefixSnapshot* capture = nullptr;
  const gen::PrefixSnapshot* resume = nullptr;
  int start_pass = 0;
};

struct ExampleResult {
  // Generative: decoded output text. Multiple-choice: chosen option text.
  std::string output;
  std::vector<tok::TokenId> tokens;  // generated tokens (generative only)
  int chosen_option = -1;
  bool correct = false;        // discrete tasks (MC, math final answer)
  int passes = 0;              // forward passes executed
  int skipped_passes = 0;      // of which skipped via prefix fork
  bool hit_max_tokens = false;
  bool nonfinite_logits = false;
  // --- detection/recovery accounting (opt.gen.detector set) ---
  int detections = 0;
  int recoveries = 0;
  int recovery_passes = 0;
  bool unrecovered_detection = false;
  // metric name -> value for every metric of the workload; discrete
  // tasks report {"accuracy": 0/1}.
  std::map<std::string, double> metrics;
};

ExampleResult run_example(model::InferenceModel& m, const tok::Vocab& vocab,
                          const WorkloadSpec& spec, const data::Example& ex,
                          const RunOptions& opt);

// The generative-task prompt encoding (BOS + tokenized prompt text,
// honoring the MathGsm direct-answer variant) — shared by run_example
// and the batched campaign driver, which builds serve::Requests without
// going through run_example.
std::vector<tok::TokenId> build_prompt(const tok::Vocab& vocab,
                                       const data::Example& ex,
                                       bool direct_prompt);

// Scores a generative run whose token/pass/diagnostic fields are already
// filled in `result`: decodes the output text and computes correctness
// and the workload metrics, exactly as run_example's generative tail.
void score_generative(const tok::Vocab& vocab, const WorkloadSpec& spec,
                      const data::Example& ex, ExampleResult& result);

}  // namespace llmfi::eval
