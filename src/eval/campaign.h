#pragma once
// Statistical fault-injection campaigns (paper §3.2): N trials, each a
// single uniformly-sampled fault during one inference, compared against
// the fault-free baseline on the same inputs.

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/fault_model.h"
#include "core/fault_plan.h"
#include "core/outcome.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "metrics/stats.h"

namespace llmfi::eval {

struct CampaignConfig {
  core::FaultModel fault = core::FaultModel::Comp1Bit;
  int trials = 100;
  int n_inputs = 10;  // evaluation inputs cycled over trials
  std::uint64_t seed = 2025;
  RunOptions run;
  // Restrict fault sites (e.g. Router layers only for Fig 15).
  std::function<bool(const nn::LinearId&)> layer_filter;
  // Fig 20 (CoT): sample computational faults only from the first
  // (passes - exclude_final_passes) forward passes, i.e. the reasoning
  // segment, excluding final-answer generation.
  int exclude_final_passes = 0;
  bool keep_trial_records = false;
};

struct TrialRecord {
  core::FaultPlan plan;
  int example_index = 0;
  core::OutcomeClass outcome = core::OutcomeClass::Masked;
  double primary_metric = 0.0;
  // Discrete tasks: final answer matches the reference. Together with
  // output_matches_baseline this identifies *recoveries* — the paper's
  // CoT mechanism (output text changed, answer still correct).
  bool correct = false;
  bool output_matches_baseline = false;
  std::string output;  // only when keep_trial_records
};

struct CampaignResult {
  CampaignConfig config;
  // Fault-free reference on the same inputs.
  std::map<std::string, metrics::Accumulator> baseline_metrics;
  std::map<std::string, metrics::Accumulator> faulty_metrics;
  int masked = 0;
  int sdc_subtle = 0;
  int sdc_distorted = 0;
  // Outcome counts keyed by the highest flipped bit (Figs 9-10).
  std::map<int, std::array<int, 3>> by_highest_bit;
  double total_runtime_sec = 0.0;
  std::vector<TrialRecord> records;  // when keep_trial_records

  int trials() const { return masked + sdc_subtle + sdc_distorted; }
  double sdc_rate() const;
  // Normalized performance (faulty / fault-free) of the named metric
  // with its 95% CI; discrete metrics use the Katz binomial form.
  metrics::Ratio normalized(const std::string& metric) const;
  double baseline_mean(const std::string& metric) const;
  double faulty_mean(const std::string& metric) const;
};

// Runs the campaign for `model_name` on `spec`'s dataset. The engine is
// rebuilt from the zoo checkpoint with `precision`.
CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg);

// Same, against an already-constructed engine (used by tests and by
// benches that reuse one engine across campaigns).
CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg);

}  // namespace llmfi::eval
