#pragma once
// Statistical fault-injection campaigns (paper §3.2): N trials, each a
// single uniformly-sampled fault during one inference, compared against
// the fault-free baseline on the same inputs.

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/fault_model.h"
#include "core/fault_plan.h"
#include "core/outcome.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "metrics/stats.h"

namespace llmfi::eval {

struct CampaignConfig {
  core::FaultModel fault = core::FaultModel::Comp1Bit;
  int trials = 100;
  int n_inputs = 10;  // evaluation inputs cycled over trials
  std::uint64_t seed = 2025;
  // Worker threads for the trial loop. Each worker owns a private engine
  // replica (clone of the caller's engine), trials are handed out via an
  // atomic counter, and outcomes are reduced in trial order — so the
  // result is bit-identical for any value, including 1 (serial, no
  // replicas). Baseline evaluation always runs serially: it seeds the
  // trial loop. Values < 1 are treated as 1.
  int threads = 1;
  RunOptions run;
  // Restrict fault sites (e.g. Router layers only for Fig 15).
  std::function<bool(const nn::LinearId&)> layer_filter;
  // Fig 20 (CoT): sample computational faults only from the first
  // (passes - exclude_final_passes) forward passes, i.e. the reasoning
  // segment, excluding final-answer generation.
  int exclude_final_passes = 0;
  bool keep_trial_records = false;
};

struct TrialRecord {
  core::FaultPlan plan;
  int example_index = 0;
  core::OutcomeClass outcome = core::OutcomeClass::Masked;
  double primary_metric = 0.0;
  // Discrete tasks: final answer matches the reference. Together with
  // output_matches_baseline this identifies *recoveries* — the paper's
  // CoT mechanism (output text changed, answer still correct).
  bool correct = false;
  bool output_matches_baseline = false;
  std::string output;  // only when keep_trial_records
};

// Everything one trial produces, before any shared state is touched.
// Workers fill these independently; the driver folds them into the
// CampaignResult in trial order, so the reduction (Welford accumulators,
// outcome counters, bit buckets, records) is scheduling-independent.
struct TrialOutcome {
  core::FaultPlan plan;
  int example_index = 0;
  core::OutcomeClass outcome = core::OutcomeClass::Masked;
  std::map<std::string, double> metrics;  // faulty run's metric values
  bool correct = false;
  bool output_matches_baseline = false;
  std::string output;
};

// Runs exactly one fault-injection trial against `engine`: forks the
// trial's private RNG stream from `campaign_rng`, samples the fault,
// applies it under an RAII guard (WeightCorruption or LinearHookGuard),
// runs the example, and classifies the outcome. Pure with respect to
// campaign state: everything it needs is passed in, everything it
// produces is returned — which is what makes trials embarrassingly
// parallel across engine replicas.
TrialOutcome run_trial(model::InferenceModel& engine, const tok::Vocab& vocab,
                       const std::vector<data::Example>& eval_set,
                       const std::vector<ExampleResult>& baselines,
                       const WorkloadSpec& spec, const CampaignConfig& cfg,
                       const num::Rng& campaign_rng, int trial);

struct CampaignResult {
  CampaignConfig config;
  // Fault-free reference on the same inputs.
  std::map<std::string, metrics::Accumulator> baseline_metrics;
  std::map<std::string, metrics::Accumulator> faulty_metrics;
  int masked = 0;
  int sdc_subtle = 0;
  int sdc_distorted = 0;
  // Outcome counts keyed by the highest flipped bit (Figs 9-10).
  std::map<int, std::array<int, 3>> by_highest_bit;
  double total_runtime_sec = 0.0;
  std::vector<TrialRecord> records;  // when keep_trial_records

  int trials() const { return masked + sdc_subtle + sdc_distorted; }
  double sdc_rate() const;
  // Normalized performance (faulty / fault-free) of the named metric
  // with its 95% CI; discrete metrics use the Katz binomial form.
  metrics::Ratio normalized(const std::string& metric) const;
  double baseline_mean(const std::string& metric) const;
  double faulty_mean(const std::string& metric) const;
};

// Runs the campaign for `model_name` on `spec`'s dataset. The engine is
// rebuilt from the zoo checkpoint with `precision`.
CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg);

// Same, against an already-constructed engine (used by tests and by
// benches that reuse one engine across campaigns).
CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg);

}  // namespace llmfi::eval
