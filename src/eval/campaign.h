#pragma once
// Statistical fault-injection campaigns (paper §3.2): N trials, each a
// single uniformly-sampled fault during one inference, compared against
// the fault-free baseline on the same inputs.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/fault_model.h"
#include "core/fault_plan.h"
#include "core/outcome.h"
#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "metrics/stats.h"

namespace llmfi::eval {

// Online detection/recovery policy for a campaign. Detectors are
// composed into a per-trial DetectorStack behind the fault injector;
// recovery is recompute-the-pass for computational faults and
// weight-rescreen-and-restore for memory faults.
struct DetectionConfig {
  bool range = false;     // ActivationDetector (profiled envelope)
  bool checksum = false;  // ChecksumDetector (statistical ABFT)
  bool recover = false;   // apply recovery policies on detection
  int max_retries = 2;    // recompute budget per detection (comp faults)
  float range_margin = 2.0f;
  float checksum_margin = 4.0f;
  float screen_bound = 4.0f;  // WeightScreen bound multiple (mem faults)

  bool enabled() const { return range || checksum; }
};

// Fault-free profiles the detectors check against. Built once per
// campaign (serially, before the trial loop) and shared read-only by
// every worker replica — checksum profiles are LinearId-keyed, so they
// are valid for any clone() of the profiled engine.
struct DetectionContext {
  core::ActivationProfile activation;
  core::ChecksumProfile checksum;
};

struct CampaignConfig {
  core::FaultModel fault = core::FaultModel::Comp1Bit;
  int trials = 100;
  int n_inputs = 10;  // evaluation inputs cycled over trials
  std::uint64_t seed = 2025;
  // Worker threads for the trial loop. Each worker owns a private engine
  // replica (clone of the caller's engine), trials are handed out via an
  // atomic counter, and outcomes are reduced in trial order — so the
  // result is bit-identical for any value, including 1 (serial, no
  // replicas). Baseline evaluation always runs serially: it seeds the
  // trial loop. Values < 1 are treated as 1.
  int threads = 1;
  RunOptions run;
  // Restrict fault sites (e.g. Router layers only for Fig 15).
  std::function<bool(const nn::LinearId&)> layer_filter;
  // Fig 20 (CoT): sample computational faults only from the first
  // (passes - exclude_final_passes) forward passes, i.e. the reasoning
  // segment, excluding final-answer generation.
  int exclude_final_passes = 0;
  bool keep_trial_records = false;
  DetectionConfig detection;
  // Prefix-fork fast path (DESIGN.md §9): capture one PrefixSnapshot per
  // example alongside the baselines and start each transient-compute
  // trial at its sampled injection pass by forking the baseline's KV
  // prefix — exact because the trial is bit-identical to the baseline on
  // every pass before the fault arms. 2bits-mem (persistent from pass
  // 0), beam search, and detector-enabled campaigns always recompute in
  // full. The env knob LLMFI_PREFIX_FORK overrides when set ("0"
  // disables, anything else enables); llmfi_cli exposes
  // --no-prefix-fork. Results are bit-identical either way — the fork
  // only skips work whose outputs are already known.
  bool prefix_fork = true;
  // Batched trial execution (DESIGN.md §10): values > 1 route trials
  // through one continuous-batching serve::Scheduler per worker, with up
  // to `batch` trials decoding together per forward_batch pass (fault
  // arming stays scoped to the owning trial's row via its per-request
  // hook, and fork-eligible trials join the batch at their injection
  // pass). Results are bit-identical to batch == 1 for any value.
  // Campaigns the batch rows cannot express exactly — memory faults
  // (weight corruption is engine-global), detection-enabled runs, beam
  // search, and multiple-choice workloads — fall back to the sequential
  // trial loop with a one-time warning, like the prefix-fork fallbacks.
  // The env knob LLMFI_BATCH overrides when set to an integer >= 1;
  // llmfi_cli exposes --batch.
  int batch = 1;
  // Paged KV cache (DESIGN.md §12): values > 0 back every generation
  // cache — baselines, snapshots, trials, and batched serve slots — with
  // one shared fixed-size PagePool of that many pages, so prefix forks
  // alias pages instead of copying rows. Undersized budgets are clamped
  // up to the campaign's worst-case working set with a one-time warning
  // (the sequential trial loop must never die of pool exhaustion; the
  // serve scheduler exercises queue-when-dry on its own admission
  // budget). 0 keeps the contiguous layout — the bit-exact oracle:
  // results are byte-identical either way. Env knob LLMFI_KV_PAGES
  // overrides when set (0 disables); llmfi_cli exposes --kv-pages.
  int kv_pages = 0;
  // Tensor parallelism (DESIGN.md §14): every engine in the campaign —
  // the caller's and each worker replica — shards its per-block
  // projections across this many threads. Results are byte-identical for
  // any value (the reduction order is pinned by the segmented-product
  // contract), so like `threads` this is purely a wall-clock knob; the
  // two multiply (threads * tp concurrent compute threads), and the
  // campaign warns once when the product oversubscribes the hardware.
  // The env knob LLMFI_TP overrides when set to an integer >= 1;
  // llmfi_cli exposes --tp. The caller's engine is restored to its prior
  // TP degree when the campaign returns. tp-partial / tp-reduce
  // campaigns run at any tp value, including 1 — the row-parallel
  // products (their injection surface) always execute.
  int tp = 1;
  // Periodic campaign progress line on stderr (done/total, trials/s,
  // ETA, outcome tallies), safe under the parallel worker pool. The env
  // knob LLMFI_PROGRESS overrides when set ("0" disables, anything else
  // enables); llmfi_cli exposes --progress. Progress output never
  // touches results — it is excluded from the determinism contract the
  // same way total_runtime_sec is.
  bool progress = false;
};

struct TrialRecord {
  core::FaultPlan plan;
  int example_index = 0;
  core::OutcomeClass outcome = core::OutcomeClass::Masked;
  double primary_metric = 0.0;
  // Discrete tasks: final answer matches the reference. Together with
  // output_matches_baseline this identifies *recoveries* — the paper's
  // CoT mechanism (output text changed, answer still correct).
  bool correct = false;
  bool output_matches_baseline = false;
  // Detector trips observed during the trial and the extra forward
  // passes its recovery attempts cost (0 with detection disabled).
  int detections = 0;
  int recovery_passes = 0;
  std::string output;  // only when keep_trial_records
};

// Everything one trial produces, before any shared state is touched.
// Workers fill these independently; the driver folds them into the
// CampaignResult in trial order, so the reduction (Welford accumulators,
// outcome counters, bit buckets, records) is scheduling-independent.
struct TrialOutcome {
  core::FaultPlan plan;
  int example_index = 0;
  core::OutcomeClass outcome = core::OutcomeClass::Masked;
  std::map<std::string, double> metrics;  // faulty run's metric values
  bool correct = false;
  bool output_matches_baseline = false;
  int detections = 0;       // detector trips during the faulty run
  int recovery_passes = 0;  // extra forward passes spent recovering
  int passes = 0;           // total forward passes of the faulty run
                            // (prefix-forked trials count skipped passes
                            // as executed, so this matches a full run)
  int skipped_passes = 0;   // passes skipped via the prefix fork
  bool unrecovered = false;
  std::string output;
};

// Runs exactly one fault-injection trial against `engine`: forks the
// trial's private RNG stream from `campaign_rng`, samples the fault,
// applies it under an RAII guard (WeightCorruption or LinearHookGuard),
// runs the example, and classifies the outcome. Pure with respect to
// campaign state: everything it needs is passed in, everything it
// produces is returned — which is what makes trials embarrassingly
// parallel across engine replicas.
// `detect` supplies the shared fault-free profiles when cfg.detection is
// enabled (nullptr disables detection regardless of the config).
// `snapshots` supplies the per-example PrefixSnapshots captured with the
// baselines (nullptr, or an invalid entry, disables the prefix-fork fast
// path for the trial). They are shared read-only across the worker pool;
// the forked cache copy is per-trial, so the bit-identical-across-
// thread-counts guarantee of the parallel driver is preserved.
// `kv_pool`, when set, backs the trial's generation caches (the paged
// layout; the snapshots must have been captured on the same pool for
// forks to alias pages).
TrialOutcome run_trial(model::InferenceModel& engine, const tok::Vocab& vocab,
                       const std::vector<data::Example>& eval_set,
                       const std::vector<ExampleResult>& baselines,
                       const WorkloadSpec& spec, const CampaignConfig& cfg,
                       const num::Rng& campaign_rng, int trial,
                       const DetectionContext* detect = nullptr,
                       const std::vector<gen::PrefixSnapshot>* snapshots =
                           nullptr,
                       std::shared_ptr<nn::PagePool> kv_pool = nullptr);

struct CampaignResult {
  CampaignConfig config;
  // Fault-free reference on the same inputs.
  std::map<std::string, metrics::Accumulator> baseline_metrics;
  std::map<std::string, metrics::Accumulator> faulty_metrics;
  // Exact integer hit counts for the proportion metrics (accuracy /
  // exact_match), tracked alongside the accumulators so the Katz CI sees
  // true counts instead of a lossy lround(mean * n) reconstruction.
  std::map<std::string, long long> baseline_hits;
  std::map<std::string, long long> faulty_hits;
  int masked = 0;
  int sdc_subtle = 0;
  int sdc_distorted = 0;
  int detected_recovered = 0;
  int detected_unrecovered = 0;
  // Outcome counts keyed by the highest flipped bit (Figs 9-10), indexed
  // by static_cast<size_t>(OutcomeClass).
  std::map<int, std::array<int, 5>> by_highest_bit;
  // --- detection/recovery accounting (zero when detection disabled) ---
  int trials_detected = 0;  // trials with >= 1 detector trip
  long long faulty_passes = 0;    // forward passes across all faulty runs
  long long recovery_passes = 0;  // of which spent on recovery retries
  // Baseline (fault-free) examples that tripped the detector: the
  // numerator of the campaign's false-positive rate.
  int baseline_false_positives = 0;
  // Forward passes skipped by the prefix-fork fast path. Like
  // total_runtime_sec this is a runtime diagnostic, NOT part of the
  // determinism contract: it differs between fork-enabled and
  // fork-disabled runs of the same campaign while every result field
  // above stays bit-identical.
  long long prefix_skipped_passes = 0;
  double total_runtime_sec = 0.0;
  // Continuous-batching counters summed over the per-worker schedulers
  // when batch > 1 (all zero otherwise; `active` marks a batched run).
  // Runtime diagnostics like total_runtime_sec — the per-trial totals
  // (admitted, completed, generated_tokens) are deterministic, but
  // decode_batches / decode_rows / backfills / max_active depend on how
  // trials interleave across scheduler slots, so the whole struct is
  // excluded from the determinism contract.
  struct ServeStats {
    bool active = false;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t backfills = 0;
    std::uint64_t admitted = 0;
    std::uint64_t forked_admissions = 0;
    std::uint64_t admission_passes = 0;
    std::uint64_t decode_batches = 0;
    std::uint64_t decode_rows = 0;
    std::uint64_t generated_tokens = 0;
    int max_active = 0;  // peak per-worker concurrently-active slots
    double mean_batch_occupancy() const {
      return decode_batches > 0
                 ? static_cast<double>(decode_rows) /
                       static_cast<double>(decode_batches)
                 : 0.0;
    }
  };
  ServeStats serve_stats;
  std::vector<TrialRecord> records;  // when keep_trial_records

  int trials() const {
    return masked + sdc_subtle + sdc_distorted + detected_recovered +
           detected_unrecovered;
  }
  double sdc_rate() const;
  // Normalized performance (faulty / fault-free) of the named metric
  // with its 95% CI; discrete metrics use the Katz binomial form.
  metrics::Ratio normalized(const std::string& metric) const;
  double baseline_mean(const std::string& metric) const;
  double faulty_mean(const std::string& metric) const;
};

// Runs the campaign for `model_name` on `spec`'s dataset. The engine is
// rebuilt from the zoo checkpoint with `precision`.
CampaignResult run_campaign(Zoo& zoo, const std::string& model_name,
                            const model::PrecisionConfig& precision,
                            const WorkloadSpec& spec,
                            const CampaignConfig& cfg);

// Same, against an already-constructed engine (used by tests and by
// benches that reuse one engine across campaigns).
CampaignResult run_campaign_on(model::InferenceModel& engine,
                               const tok::Vocab& vocab,
                               const std::vector<data::Example>& eval_set,
                               const WorkloadSpec& spec,
                               const CampaignConfig& cfg);

}  // namespace llmfi::eval
