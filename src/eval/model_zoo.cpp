#include "eval/model_zoo.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "train/trainer.h"

namespace llmfi::eval {

namespace {

// Bump when any training recipe changes (invalidates disk caches).
constexpr const char* kZooVersion = "v1";

double train_scale() {
  if (const char* env = std::getenv("LLMFI_TRAIN_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

std::vector<std::pair<data::TaskKind, float>> balanced_mix() {
  using data::TaskKind;
  // Math/QA/translation carry extra weight: they are the entropy-heavy
  // tasks (arithmetic table, content-addressed copying) that the tiny
  // models need the most gradient signal on.
  return {
      {TaskKind::McFact, 1.0f},      {TaskKind::McScience, 1.0f},
      {TaskKind::McTruthful, 1.0f},  {TaskKind::McCoref, 1.0f},
      {TaskKind::McCompletion, 1.0f},{TaskKind::MathGsm, 2.0f},
      {TaskKind::Translation, 1.6f}, {TaskKind::Summarization, 1.0f},
      {TaskKind::QA, 2.0f},
  };
}

// The 4-dataset mix of the MoE/dense and scale studies (Figs 14-16).
std::vector<std::pair<data::TaskKind, float>> compact_mix() {
  using data::TaskKind;
  return {
      {TaskKind::McFact, 1.0f},
      {TaskKind::McScience, 1.0f},
      {TaskKind::Translation, 1.5f},
      {TaskKind::QA, 2.0f},
  };
}

}  // namespace

Zoo::Zoo(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  if (cache_dir_.empty()) {
    if (const char* env = std::getenv("LLMFI_MODEL_CACHE")) {
      cache_dir_ = env;
    } else {
      cache_dir_ = "model_cache";
    }
  }
  std::filesystem::create_directories(cache_dir_);
  world_ = std::make_unique<data::World>();
}

const std::vector<std::string>& Zoo::model_names() {
  static const std::vector<std::string> names = {
      "aquila",   "qilin",       "falco",   "alma",    "summarizer",
      "qilin-moe","qilin-dense", "scale-xs","scale-s", "scale-m",
      "scale-l",  "scale-xl",
  };
  return names;
}

const data::TaskData& Zoo::task(data::TaskKind kind) {
  auto it = tasks_.find(kind);
  if (it == tasks_.end()) {
    data::GenOptions opt;
    opt.train_n = 1200;  // corpus variety matters for the copy tasks
    it = tasks_.emplace(kind, data::make_task(*world_, kind, opt)).first;
  }
  return it->second;
}

std::vector<data::TrainSeq> Zoo::build_mix(
    const std::vector<std::pair<data::TaskKind, float>>& mix) {
  std::vector<data::TrainSeq> corpus;
  for (const auto& [kind, weight] : mix) {
    const auto& td = task(kind);
    const auto n = static_cast<size_t>(
        weight * static_cast<float>(td.train.size()));
    for (size_t i = 0; i < n; ++i) {
      corpus.push_back(td.train[i % td.train.size()]);
    }
  }
  return corpus;
}

const model::ModelWeights& Zoo::get(const std::string& name) {
  auto it = models_.find(name);
  if (it != models_.end()) return it->second;

  const std::string path = cache_dir_ + "/" + name + "_" + kZooVersion +
                           ".bin";
  if (std::filesystem::exists(path)) {
    auto loaded = model::ModelWeights::load(path);
    return models_.emplace(name, std::move(loaded)).first->second;
  }

  std::fprintf(stderr, "[zoo] training model '%s' (cached at %s)...\n",
               name.c_str(), path.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  model::ModelWeights trained = train_model(name);
  const auto secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "[zoo] trained '%s' in %.1fs (%lld params)\n",
               name.c_str(), secs,
               static_cast<long long>(trained.num_params()));
  trained.save(path);
  return models_.emplace(name, std::move(trained)).first->second;
}

model::ModelWeights Zoo::train_model(const std::string& name) {
  using data::TaskKind;
  const int vocab = world_->vocab().size();
  const double scale = train_scale();

  train::TrainConfig tc;
  tc.steps = static_cast<int>(12000 * scale);
  tc.batch_size = 8;
  tc.lr = 5e-3f;
  tc.log_every = 0;

  auto train_fresh = [&](model::ModelConfig cfg,
                         const std::vector<std::pair<TaskKind, float>>& mix,
                         train::TrainConfig t) {
    model::ModelWeights w = model::ModelWeights::init(cfg);
    train::Trainer trainer(w, t);
    const double loss = trainer.train(build_mix(mix));
    std::fprintf(stderr, "[zoo]   final loss %.4f\n", loss);
    return w;
  };

  if (name == "aquila" || name == "qilin" || name == "falco") {
    model::ModelConfig cfg = model::family_config(name, vocab);
    cfg.d_model = 64;
    cfg.n_layers = 3;
    cfg.d_ff = 128;
    train::TrainConfig t = tc;
    t.seed = cfg.seed;
    // Family-specific regularization drives the Fig 13 weight-spread
    // differences: falco trains with no decay (widest), qilin with the
    // strongest (narrowest).
    if (name == "aquila") t.weight_decay = 0.01f;
    if (name == "qilin") t.weight_decay = 0.02f;
    if (name == "falco") t.weight_decay = 0.0f;
    return train_fresh(cfg, balanced_mix(), t);
  }

  if (name == "alma" || name == "summarizer") {
    // Fine-tune from the aquila base on the single target task.
    model::ModelWeights w = get("aquila");  // copy
    w.config.family = name;
    train::TrainConfig t = tc;
    t.steps = static_cast<int>(2500 * scale);
    t.lr = 1.5e-3f;
    t.seed = 7000 + (name == "alma" ? 1 : 2);
    const TaskKind kind = (name == "alma") ? TaskKind::Translation
                                           : TaskKind::Summarization;
    train::Trainer trainer(w, t);
    const double loss = trainer.train(build_mix({{kind, 1.0f}}));
    std::fprintf(stderr, "[zoo]   final loss %.4f\n", loss);
    return w;
  }

  if (name == "qilin-moe" || name == "qilin-dense") {
    model::ModelConfig cfg = model::family_config("qilin", vocab);
    cfg.family = name;
    cfg.seed = (name == "qilin-moe") ? 404 : 505;
    cfg.d_model = 64;
    cfg.n_layers = 3;
    if (name == "qilin-moe") {
      cfg.moe = true;
      cfg.n_experts = 8;
      cfg.top_k = 2;
      cfg.d_ff = 64;  // per-expert width
    } else {
      cfg.d_ff = 64;  // matches one expert (the paper's dense counterpart)
    }
    train::TrainConfig t = tc;
    t.steps = static_cast<int>(8000 * scale);
    t.seed = cfg.seed;
    t.weight_decay = 0.02f;
    // The MoE/dense comparison (Fig 14) evaluates MMLU/ARC/WMT16/SQuAD.
    return train_fresh(cfg, compact_mix(), t);
  }

  if (name.rfind("scale-", 0) == 0) {
    // Qwen2.5 scale sweep analog (Fig 16): same family recipe, widths
    // 32..80.
    model::ModelConfig cfg = model::family_config("qilin", vocab);
    cfg.family = name;
    const std::string size = name.substr(6);
    if (size == "xs") {
      cfg.d_model = 32;
      cfg.n_layers = 2;
      cfg.d_ff = 64;
    } else if (size == "s") {
      cfg.d_model = 48;
      cfg.n_layers = 2;
      cfg.d_ff = 96;
    } else if (size == "m") {
      cfg.d_model = 64;
      cfg.n_layers = 3;
      cfg.d_ff = 128;
    } else if (size == "l") {
      cfg.d_model = 80;
      cfg.n_layers = 3;
      cfg.d_ff = 160;
    } else if (size == "xl") {
      cfg.d_model = 96;
      cfg.n_layers = 3;
      cfg.d_ff = 192;
    } else {
      throw std::invalid_argument("unknown scale size: " + name);
    }
    cfg.seed = 600 + cfg.d_model;
    train::TrainConfig t = tc;
    t.steps = static_cast<int>(5000 * scale);
    t.seed = cfg.seed;
    t.weight_decay = 0.02f;
    return train_fresh(cfg, compact_mix(), t);
  }

  throw std::invalid_argument("unknown zoo model: " + name);
}

}  // namespace llmfi::eval
