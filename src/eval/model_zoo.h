#pragma once
// The model zoo: every named model of the study, trained on demand from
// the shared synthetic world and cached as a checkpoint on disk so each
// test/bench binary is independently runnable.
//
// Names (see DESIGN.md §2 for the paper mapping):
//   aquila / qilin / falco   — the three general-purpose families
//   alma                      — translation fine-tune of aquila
//   summarizer                — summarization fine-tune of aquila
//   qilin-moe                 — 8-expert top-2 MoE
//   qilin-dense               — dense counterpart (same active size)
//   scale-xs / -s / -m / -l / -xl — model-scale sweep (qilin recipe)

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "data/world.h"
#include "model/weights.h"

namespace llmfi::eval {

class Zoo {
 public:
  // `cache_dir` defaults to $LLMFI_MODEL_CACHE or "./model_cache".
  explicit Zoo(std::string cache_dir = "");

  const data::World& world() const { return *world_; }
  const tok::Vocab& vocab() const { return world_->vocab(); }

  // Trained weights for a named model; trains (and writes the cache) on
  // first use. Training steps scale with $LLMFI_TRAIN_SCALE (default 1.0).
  const model::ModelWeights& get(const std::string& name);

  // Dataset for `kind` (train corpus + the fixed 100-input eval subset).
  const data::TaskData& task(data::TaskKind kind);

  static const std::vector<std::string>& model_names();

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  model::ModelWeights train_model(const std::string& name);
  std::vector<data::TrainSeq> build_mix(
      const std::vector<std::pair<data::TaskKind, float>>& mix);

  std::string cache_dir_;
  std::unique_ptr<data::World> world_;
  std::map<data::TaskKind, data::TaskData> tasks_;
  std::map<std::string, model::ModelWeights> models_;
};

}  // namespace llmfi::eval
