#pragma once
// Stable identity for every linear layer in the model — the coordinate
// system of fault injection (paper §3.2: a fault location is block ID +
// layer ID + weight/neuron position + bit positions).

#include <string>

namespace llmfi::nn {

enum class LayerKind {
  QProj,
  KProj,
  VProj,
  OProj,
  GateProj,
  UpProj,
  DownProj,
  Router,      // MoE gate layer (paper §4.2.3, Fig 15)
  ExpertGate,  // per-expert MLP projections
  ExpertUp,
  ExpertDown,
};

std::string_view layer_kind_name(LayerKind k);

// True for the per-expert projections of an MoE block.
constexpr bool is_expert_layer(LayerKind k) {
  return k == LayerKind::ExpertGate || k == LayerKind::ExpertUp ||
         k == LayerKind::ExpertDown;
}

struct LinearId {
  int block = 0;        // transformer block index
  LayerKind kind = LayerKind::QProj;
  int expert = -1;      // expert index for Expert* kinds, else -1

  bool operator==(const LinearId&) const = default;
  // Lexicographic (block, kind, expert) order so LinearId can key the
  // per-layer maps of the checksum-detection profiles.
  bool operator<(const LinearId& o) const {
    if (block != o.block) return block < o.block;
    if (kind != o.kind) return kind < o.kind;
    return expert < o.expert;
  }
};

std::string to_string(const LinearId& id);

}  // namespace llmfi::nn
