#include "nn/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>

namespace llmfi::nn {

KvCache::KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model)
    : max_seq_(max_seq) {
  k_.reserve(static_cast<size_t>(n_blocks));
  v_.reserve(static_cast<size_t>(n_blocks));
  for (int b = 0; b < n_blocks; ++b) {
    k_.emplace_back(tn::Tensor({max_seq, d_model}));
    v_.emplace_back(tn::Tensor({max_seq, d_model}));
  }
}

void KvCache::append(int block, const tn::Tensor& k, const tn::Tensor& v) {
  assert(k.rows() == v.rows() && k.cols() == v.cols());
  auto& kb = k_.at(static_cast<size_t>(block));
  auto& vb = v_.at(static_cast<size_t>(block));
  if (length_ + k.rows() > max_seq_) {
    throw std::runtime_error("KvCache overflow: sequence exceeds max_seq");
  }
  // Rows are contiguous on both sides, so each row is one memcpy-able
  // span copy instead of a scalar element loop.
  for (tn::Index t = 0; t < k.rows(); ++t) {
    auto ksrc = k.row(t);
    auto vsrc = v.row(t);
    std::copy(ksrc.begin(), ksrc.end(), kb.row(length_ + t).begin());
    std::copy(vsrc.begin(), vsrc.end(), vb.row(length_ + t).begin());
  }
}

void KvCache::append_row(int block, std::span<const float> k,
                         std::span<const float> v) {
  auto& kb = k_.at(static_cast<size_t>(block));
  auto& vb = v_.at(static_cast<size_t>(block));
  assert(static_cast<tn::Index>(k.size()) == kb.cols());
  assert(static_cast<tn::Index>(v.size()) == vb.cols());
  if (length_ + 1 > max_seq_) {
    throw std::runtime_error("KvCache overflow: sequence exceeds max_seq");
  }
  std::copy(k.begin(), k.end(), kb.row(length_).begin());
  std::copy(v.begin(), v.end(), vb.row(length_).begin());
}

bool KvCache::fork_compatible(const KvCache& src) const {
  return src.k_.size() == k_.size() && src.max_seq_ == max_seq_ &&
         src.d_model() == d_model();
}

void KvCache::fork_from(const KvCache& src, tn::Index prefix_len) {
  if (!fork_compatible(src)) {
    throw std::invalid_argument(
        "KvCache::fork_from: block count / max_seq / d_model mismatch");
  }
  if (prefix_len < 0 || prefix_len > src.length_) {
    throw std::invalid_argument(
        "KvCache::fork_from: prefix_len outside [0, src.length()]");
  }
  // Both caches store [max_seq, d_model] row-major, so the first
  // prefix_len rows of each block are one contiguous span.
  const size_t n = static_cast<size_t>(prefix_len) *
                   static_cast<size_t>(d_model());
  for (size_t b = 0; b < k_.size(); ++b) {
    auto ksrc = src.k_[b].flat();
    auto vsrc = src.v_[b].flat();
    std::copy(ksrc.begin(), ksrc.begin() + static_cast<std::ptrdiff_t>(n),
              k_[b].flat().begin());
    std::copy(vsrc.begin(), vsrc.begin() + static_cast<std::ptrdiff_t>(n),
              v_[b].flat().begin());
  }
  length_ = prefix_len;
}

void KvCache::truncate(tn::Index new_length) {
  if (new_length < 0 || new_length > length_) {
    throw std::invalid_argument("KvCache::truncate: bad length");
  }
  length_ = new_length;
}

void KvCache::reset() { length_ = 0; }

}  // namespace llmfi::nn
