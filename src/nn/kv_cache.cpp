#include "nn/kv_cache.h"

#include <cassert>
#include <stdexcept>

namespace llmfi::nn {

KvCache::KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model)
    : max_seq_(max_seq) {
  k_.reserve(static_cast<size_t>(n_blocks));
  v_.reserve(static_cast<size_t>(n_blocks));
  for (int b = 0; b < n_blocks; ++b) {
    k_.emplace_back(tn::Tensor({max_seq, d_model}));
    v_.emplace_back(tn::Tensor({max_seq, d_model}));
  }
}

void KvCache::append(int block, const tn::Tensor& k, const tn::Tensor& v) {
  assert(k.rows() == v.rows() && k.cols() == v.cols());
  auto& kb = k_.at(static_cast<size_t>(block));
  auto& vb = v_.at(static_cast<size_t>(block));
  if (length_ + k.rows() > max_seq_) {
    throw std::runtime_error("KvCache overflow: sequence exceeds max_seq");
  }
  for (tn::Index t = 0; t < k.rows(); ++t) {
    auto kdst = kb.row(length_ + t);
    auto vdst = vb.row(length_ + t);
    auto ksrc = k.row(t);
    auto vsrc = v.row(t);
    for (tn::Index j = 0; j < k.cols(); ++j) {
      kdst[j] = ksrc[j];
      vdst[j] = vsrc[j];
    }
  }
}

void KvCache::truncate(tn::Index new_length) {
  if (new_length < 0 || new_length > length_) {
    throw std::invalid_argument("KvCache::truncate: bad length");
  }
  length_ = new_length;
}

void KvCache::reset() { length_ = 0; }

}  // namespace llmfi::nn
