#include "nn/kv_cache.h"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace llmfi::nn {

namespace {

void check_block(int block, int n_blocks) {
  if (block < 0 || block >= n_blocks) {
    throw std::invalid_argument("KvCache: block index out of range");
  }
}

}  // namespace

KvCache::KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model)
    : n_blocks_(n_blocks), max_seq_(max_seq), d_model_(d_model) {
  k_.reserve(static_cast<size_t>(n_blocks));
  v_.reserve(static_cast<size_t>(n_blocks));
  for (int b = 0; b < n_blocks; ++b) {
    k_.emplace_back(tn::Tensor({max_seq, d_model}));
    v_.emplace_back(tn::Tensor({max_seq, d_model}));
  }
}

KvCache::KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model,
                 std::shared_ptr<PagePool> pool)
    : n_blocks_(n_blocks),
      max_seq_(max_seq),
      d_model_(d_model),
      pool_(std::move(pool)) {
  if (!pool_) {
    throw std::invalid_argument("KvCache: paged constructor needs a pool");
  }
  if (pool_->d_model() != d_model_) {
    throw std::invalid_argument("KvCache: pool d_model mismatch");
  }
  pages_.resize(static_cast<size_t>(n_blocks));
}

KvCache::KvCache(const KvCache& other)
    : n_blocks_(other.n_blocks_),
      max_seq_(other.max_seq_),
      d_model_(other.d_model_),
      length_(other.length_),
      k_(other.k_),
      v_(other.v_),
      pool_(other.pool_),
      pages_(other.pages_) {
  add_ref_all();
}

KvCache& KvCache::operator=(const KvCache& other) {
  if (this == &other) return *this;
  KvCache tmp(other);
  *this = std::move(tmp);
  return *this;
}

KvCache::KvCache(KvCache&& other) noexcept
    : n_blocks_(other.n_blocks_),
      max_seq_(other.max_seq_),
      d_model_(other.d_model_),
      length_(other.length_),
      k_(std::move(other.k_)),
      v_(std::move(other.v_)),
      pool_(std::move(other.pool_)),
      pages_(std::move(other.pages_)) {
  other.pages_.clear();
  other.length_ = 0;
}

KvCache& KvCache::operator=(KvCache&& other) noexcept {
  if (this == &other) return *this;
  release_all();
  n_blocks_ = other.n_blocks_;
  max_seq_ = other.max_seq_;
  d_model_ = other.d_model_;
  length_ = other.length_;
  k_ = std::move(other.k_);
  v_ = std::move(other.v_);
  pool_ = std::move(other.pool_);
  pages_ = std::move(other.pages_);
  other.pages_.clear();
  other.length_ = 0;
  return *this;
}

KvCache::~KvCache() { release_all(); }

void KvCache::release_all() {
  if (!pool_) return;
  for (auto& table : pages_) {
    for (int page : table) pool_->release(page);
    table.clear();
  }
}

void KvCache::add_ref_all() {
  if (!pool_) return;
  for (const auto& table : pages_) {
    for (int page : table) pool_->add_ref(page);
  }
}

void KvCache::throw_pool_dry() {
  throw std::runtime_error(
      "KvCache: page pool exhausted (raise --kv-pages / LLMFI_KV_PAGES)");
}

int KvCache::ensure_page(int block, tn::Index page_idx) {
  auto& table = pages_[static_cast<size_t>(block)];
  while (static_cast<tn::Index>(table.size()) <= page_idx) {
    const int page = pool_->acquire();
    if (page < 0) throw_pool_dry();
    table.push_back(page);
  }
  return table[static_cast<size_t>(page_idx)];
}

int KvCache::ensure_writable(int block, tn::Index page_idx) {
  auto& table = pages_[static_cast<size_t>(block)];
  const int page = table[static_cast<size_t>(page_idx)];
  if (pool_->ref_count(page) <= 1) return page;
  // Copy-on-write: the page is shared with a fork/copy of this cache.
  // Privatize it before the write so the other owners keep reading the
  // original rows. (A concurrent owner dropping its ref just makes this
  // copy unnecessary, never wrong.)
  const int fresh = pool_->acquire();
  if (fresh < 0) throw_pool_dry();
  const std::size_t elems = static_cast<std::size_t>(pool_->page_rows()) *
                            static_cast<std::size_t>(d_model_);
  std::copy(pool_->key_page(page), pool_->key_page(page) + elems,
            pool_->key_page(fresh));
  std::copy(pool_->value_page(page), pool_->value_page(page) + elems,
            pool_->value_page(fresh));
  table[static_cast<size_t>(page_idx)] = fresh;
  pool_->release(page);
  return fresh;
}

void KvCache::write_row(int block, tn::Index pos, std::span<const float> k,
                        std::span<const float> v) {
  const tn::Index pr = pool_->page_rows();
  const tn::Index page_idx = pos / pr;
  ensure_page(block, page_idx);
  const int page = ensure_writable(block, page_idx);
  const std::size_t off = static_cast<std::size_t>(pos % pr) *
                          static_cast<std::size_t>(d_model_);
  std::copy(k.begin(), k.end(), pool_->key_page(page) + off);
  std::copy(v.begin(), v.end(), pool_->value_page(page) + off);
}

void KvCache::append(int block, const tn::Tensor& k, const tn::Tensor& v) {
  check_block(block, n_blocks_);
  if (k.rows() != v.rows() || k.cols() != d_model_ || v.cols() != d_model_) {
    throw std::invalid_argument(
        "KvCache::append: k/v shape mismatch (expect [*, d_model])");
  }
  if (length_ + k.rows() > max_seq_) {
    throw std::invalid_argument(
        "KvCache overflow: sequence exceeds max_seq");
  }
  if (pool_) {
    for (tn::Index t = 0; t < k.rows(); ++t) {
      write_row(block, length_ + t, k.row(t), v.row(t));
    }
    return;
  }
  auto& kb = k_[static_cast<size_t>(block)];
  auto& vb = v_[static_cast<size_t>(block)];
  // Rows are contiguous on both sides, so each row is one memcpy-able
  // span copy instead of a scalar element loop.
  for (tn::Index t = 0; t < k.rows(); ++t) {
    auto ksrc = k.row(t);
    auto vsrc = v.row(t);
    std::copy(ksrc.begin(), ksrc.end(), kb.row(length_ + t).begin());
    std::copy(vsrc.begin(), vsrc.end(), vb.row(length_ + t).begin());
  }
}

void KvCache::append_row(int block, std::span<const float> k,
                         std::span<const float> v) {
  check_block(block, n_blocks_);
  if (static_cast<tn::Index>(k.size()) != d_model_ ||
      static_cast<tn::Index>(v.size()) != d_model_) {
    throw std::invalid_argument(
        "KvCache::append_row: k/v size mismatch (expect d_model)");
  }
  if (length_ + 1 > max_seq_) {
    throw std::invalid_argument(
        "KvCache overflow: sequence exceeds max_seq");
  }
  if (pool_) {
    write_row(block, length_, k, v);
    return;
  }
  auto& kb = k_[static_cast<size_t>(block)];
  auto& vb = v_[static_cast<size_t>(block)];
  std::copy(k.begin(), k.end(), kb.row(length_).begin());
  std::copy(v.begin(), v.end(), vb.row(length_).begin());
}

const tn::Tensor& KvCache::keys(int block) const {
  if (pool_) {
    throw std::logic_error(
        "KvCache::keys: contiguous layout only (use key_view)");
  }
  return k_.at(static_cast<size_t>(block));
}

const tn::Tensor& KvCache::values(int block) const {
  if (pool_) {
    throw std::logic_error(
        "KvCache::values: contiguous layout only (use value_view)");
  }
  return v_.at(static_cast<size_t>(block));
}

KvView KvCache::key_view(int block) const {
  check_block(block, n_blocks_);
  KvView view;
  view.stride = d_model_;
  if (pool_) {
    view.pool_base = pool_->key_base();
    view.pages = pages_[static_cast<size_t>(block)].data();
    view.page_rows = pool_->page_rows();
  } else {
    view.base = k_[static_cast<size_t>(block)].flat().data();
  }
  return view;
}

KvView KvCache::value_view(int block) const {
  check_block(block, n_blocks_);
  KvView view;
  view.stride = d_model_;
  if (pool_) {
    view.pool_base = pool_->value_base();
    view.pages = pages_[static_cast<size_t>(block)].data();
    view.page_rows = pool_->page_rows();
  } else {
    view.base = v_[static_cast<size_t>(block)].flat().data();
  }
  return view;
}

float KvCache::key_at(int block, tn::Index pos, tn::Index dim) const {
  check_block(block, n_blocks_);
  if (pos < 0 || pos >= length_ || dim < 0 || dim >= d_model_) {
    throw std::invalid_argument("KvCache::key_at: pos/dim out of range");
  }
  return key_view(block).row(pos)[dim];
}

float KvCache::value_at(int block, tn::Index pos, tn::Index dim) const {
  check_block(block, n_blocks_);
  if (pos < 0 || pos >= length_ || dim < 0 || dim >= d_model_) {
    throw std::invalid_argument("KvCache::value_at: pos/dim out of range");
  }
  return value_view(block).row(pos)[dim];
}

void KvCache::set_key_at(int block, tn::Index pos, tn::Index dim,
                         float value) {
  check_block(block, n_blocks_);
  if (pos < 0 || pos >= length_ || dim < 0 || dim >= d_model_) {
    throw std::invalid_argument("KvCache::set_key_at: pos/dim out of range");
  }
  if (pool_) {
    const int page = ensure_writable(block, pos / pool_->page_rows());
    pool_->key_page(page)[static_cast<std::size_t>(pos % pool_->page_rows()) *
                              static_cast<std::size_t>(d_model_) +
                          static_cast<std::size_t>(dim)] = value;
    return;
  }
  k_[static_cast<size_t>(block)].row(pos)[static_cast<size_t>(dim)] = value;
}

void KvCache::set_value_at(int block, tn::Index pos, tn::Index dim,
                           float value) {
  check_block(block, n_blocks_);
  if (pos < 0 || pos >= length_ || dim < 0 || dim >= d_model_) {
    throw std::invalid_argument(
        "KvCache::set_value_at: pos/dim out of range");
  }
  if (pool_) {
    const int page = ensure_writable(block, pos / pool_->page_rows());
    pool_->value_page(page)[static_cast<std::size_t>(
                                pos % pool_->page_rows()) *
                                static_cast<std::size_t>(d_model_) +
                            static_cast<std::size_t>(dim)] = value;
    return;
  }
  v_[static_cast<size_t>(block)].row(pos)[static_cast<size_t>(dim)] = value;
}

bool KvCache::fork_compatible(const KvCache& src) const {
  return src.n_blocks_ == n_blocks_ && src.max_seq_ == max_seq_ &&
         src.d_model_ == d_model_;
}

void KvCache::fork_from(const KvCache& src, tn::Index prefix_len) {
  if (!fork_compatible(src)) {
    throw std::invalid_argument(
        "KvCache::fork_from: block count / max_seq / d_model mismatch");
  }
  if (prefix_len < 0 || prefix_len > src.length_) {
    throw std::invalid_argument(
        "KvCache::fork_from: prefix_len outside [0, src.length()]");
  }
  if (&src == this) {
    // Self-fork: the prefix rows are already in place; just drop the
    // tail (releasing any pages past the boundary).
    truncate(prefix_len);
    return;
  }
  if (pool_ && src.pool_ == pool_) {
    // Paged aliasing fast path: share the fully covered prefix pages
    // (refcount bump per page, no row copies) and deep-copy only the
    // partially filled boundary page, which this sequence will keep
    // appending into. Boundary pages are acquired and filled before the
    // old tables are released, so exhaustion rolls back cleanly.
    const tn::Index pr = pool_->page_rows();
    const tn::Index full = prefix_len / pr;
    const tn::Index rem = prefix_len % pr;
    const std::size_t elems = static_cast<std::size_t>(pr) *
                              static_cast<std::size_t>(d_model_);
    std::vector<int> boundary;
    if (rem > 0) {
      boundary.reserve(static_cast<size_t>(n_blocks_));
      for (int b = 0; b < n_blocks_; ++b) {
        const int fresh = pool_->acquire();
        if (fresh < 0) {
          for (int page : boundary) pool_->release(page);
          throw_pool_dry();
        }
        const int sp =
            src.pages_[static_cast<size_t>(b)][static_cast<size_t>(full)];
        std::copy(pool_->key_page(sp), pool_->key_page(sp) + elems,
                  pool_->key_page(fresh));
        std::copy(pool_->value_page(sp), pool_->value_page(sp) + elems,
                  pool_->value_page(fresh));
        boundary.push_back(fresh);
      }
    }
    std::vector<std::vector<int>> fresh_tables(
        static_cast<size_t>(n_blocks_));
    for (int b = 0; b < n_blocks_; ++b) {
      const auto& st = src.pages_[static_cast<size_t>(b)];
      auto& table = fresh_tables[static_cast<size_t>(b)];
      table.reserve(static_cast<size_t>(full + (rem > 0 ? 1 : 0)));
      for (tn::Index p = 0; p < full; ++p) {
        const int page = st[static_cast<size_t>(p)];
        pool_->add_ref(page);
        table.push_back(page);
      }
      if (rem > 0) table.push_back(boundary[static_cast<size_t>(b)]);
    }
    release_all();
    pages_ = std::move(fresh_tables);
    length_ = prefix_len;
    return;
  }
  if (!pool_ && !src.pool_) {
    // Contiguous-to-contiguous: both caches store [max_seq, d_model]
    // row-major, so the first prefix_len rows of each block are one
    // contiguous span.
    const size_t n = static_cast<size_t>(prefix_len) *
                     static_cast<size_t>(d_model_);
    for (size_t b = 0; b < k_.size(); ++b) {
      auto ksrc = src.k_[b].flat();
      auto vsrc = src.v_[b].flat();
      std::copy(ksrc.begin(),
                ksrc.begin() + static_cast<std::ptrdiff_t>(n),
                k_[b].flat().begin());
      std::copy(vsrc.begin(),
                vsrc.begin() + static_cast<std::ptrdiff_t>(n),
                v_[b].flat().begin());
    }
    length_ = prefix_len;
    return;
  }
  // Mixed layouts (or distinct pools): generic row copy. Values are
  // identical either way — only the aliasing optimization is lost.
  if (pool_) release_all();
  length_ = 0;
  for (int b = 0; b < n_blocks_; ++b) {
    const KvView kv = src.key_view(b);
    const KvView vv = src.value_view(b);
    for (tn::Index pos = 0; pos < prefix_len; ++pos) {
      const std::span<const float> krow(kv.row(pos),
                                        static_cast<size_t>(d_model_));
      const std::span<const float> vrow(vv.row(pos),
                                        static_cast<size_t>(d_model_));
      if (pool_) {
        write_row(b, pos, krow, vrow);
      } else {
        auto kdst = k_[static_cast<size_t>(b)].row(pos);
        auto vdst = v_[static_cast<size_t>(b)].row(pos);
        std::copy(krow.begin(), krow.end(), kdst.begin());
        std::copy(vrow.begin(), vrow.end(), vdst.begin());
      }
    }
  }
  length_ = prefix_len;
}

void KvCache::truncate(tn::Index new_length) {
  if (new_length < 0 || new_length > length_) {
    throw std::invalid_argument("KvCache::truncate: bad length");
  }
  if (pool_) {
    const tn::Index keep = PagePool::pages_for(new_length,
                                               pool_->page_rows());
    for (auto& table : pages_) {
      while (static_cast<tn::Index>(table.size()) > keep) {
        pool_->release(table.back());
        table.pop_back();
      }
    }
  }
  length_ = new_length;
}

void KvCache::reset() {
  release_all();
  length_ = 0;
}

int KvCache::pages_held() const {
  int total = 0;
  for (const auto& table : pages_) {
    total += static_cast<int>(table.size());
  }
  return total;
}

}  // namespace llmfi::nn
