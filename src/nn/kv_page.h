#pragma once
// Fixed-size page pool backing the paged KvCache layout (DESIGN.md §12).
//
// A pool owns N pages; each page stores `page_rows` rows of one block's
// K plane plus the matching V plane (a row is d_model floats). Caches
// hold pages by index through per-block page tables and share them by
// refcount: forking a prefix aliases whole pages instead of copying
// rows, and copy-on-write isolates a sequence the moment it writes into
// a shared page. The pool is the serve/campaign memory budget — when
// the free list is dry, acquire() fails and the scheduler queues
// instead of admitting.
//
// Thread safety: acquire/release/add_ref are safe to call concurrently
// (campaign workers fork from one shared baseline snapshot). Refcounts
// are atomics and the free list is mutex-protected; page *data* access
// is deliberately unsynchronized — a page is either exclusively owned
// (single writer) or shared read-only (COW copies before any write), so
// readers never race a writer.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace llmfi::nn {

class PagePool {
 public:
  static constexpr tn::Index kDefaultPageRows = 16;

  PagePool(int n_pages, tn::Index page_rows, tn::Index d_model);
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  // Pops a free page with refcount 1, or returns -1 when the pool is
  // dry. Free pages are handed out LIFO; page identity never affects
  // numerics, only which storage backs a row.
  int acquire();
  // Registers one more shared owner of `page`.
  void add_ref(int page);
  // Drops one owner; the last release returns the page to the free list.
  void release(int page);
  int ref_count(int page) const;

  int n_pages() const { return n_pages_; }
  // Approximate under concurrent acquire/release; exact when quiescent.
  int free_pages() const;

  tn::Index page_rows() const { return page_rows_; }
  tn::Index d_model() const { return d_model_; }

  // Base pointer of one page's K (resp. V) plane: page_rows x d_model
  // floats, row-major. Stable for as long as the page is held.
  float* key_page(int page) {
    return k_data_.data() + static_cast<std::size_t>(page) * page_elems_;
  }
  const float* key_page(int page) const {
    return k_data_.data() + static_cast<std::size_t>(page) * page_elems_;
  }
  float* value_page(int page) {
    return v_data_.data() + static_cast<std::size_t>(page) * page_elems_;
  }
  const float* value_page(int page) const {
    return v_data_.data() + static_cast<std::size_t>(page) * page_elems_;
  }
  // Whole-plane base pointers, for the branch-once KvView row lookup.
  const float* key_base() const { return k_data_.data(); }
  const float* value_base() const { return v_data_.data(); }

  // Pages needed to hold `rows` rows at `page_rows` rows per page.
  static tn::Index pages_for(tn::Index rows, tn::Index page_rows) {
    return (rows + page_rows - 1) / page_rows;
  }

 private:
  int n_pages_;
  tn::Index page_rows_;
  tn::Index d_model_;
  std::size_t page_elems_;  // page_rows * d_model
  std::vector<float> k_data_;
  std::vector<float> v_data_;
  std::unique_ptr<std::atomic<int>[]> refs_;
  mutable std::mutex free_mu_;
  std::vector<int> free_;  // LIFO free list
};

}  // namespace llmfi::nn
