#pragma once
// Per-block key/value cache for autoregressive decoding.

#include <memory>
#include <span>
#include <vector>

#include "nn/kv_page.h"
#include "tensor/tensor.h"

namespace llmfi::nn {

// Read-only view over one block's cached K (or V) rows, produced by
// KvCache::key_view()/value_view(). row(pos) branches once on the
// layout: contiguous caches resolve to base + pos*stride, paged caches
// indirect through the block's page table. A view is valid until the
// next mutating call on the owning cache (append/fork/truncate can
// remap paged storage via copy-on-write).
struct KvView {
  const float* base = nullptr;       // contiguous: block storage
  const float* pool_base = nullptr;  // paged: K or V plane of the pool
  const int* pages = nullptr;        // paged: block page table
  tn::Index stride = 0;              // d_model
  tn::Index page_rows = 0;           // paged: rows per page

  const float* row(tn::Index pos) const {
    if (base != nullptr) return base + pos * stride;
    const auto page = static_cast<std::size_t>(pages[pos / page_rows]);
    return pool_base + (page * static_cast<std::size_t>(page_rows) +
                        static_cast<std::size_t>(pos % page_rows)) *
                           static_cast<std::size_t>(stride);
  }
};

class KvCache {
 public:
  // Storage invariant, per layout:
  //  - Contiguous (no pool): every per-block tensor is allocated at its
  //    full [max_seq, d_model] size up front and never resized, so row
  //    pointers stay stable for the cache's whole lifetime and a retired
  //    serve slot reuses its cache via reset() instead of reconstructing
  //    it. This is the bit-exact oracle layout.
  //  - Paged (pool given): rows live in pool pages addressed through a
  //    per-block page table. Pointers are stable *per page* while the
  //    page is held — never across a whole block — and a write into a
  //    shared page first remaps it via copy-on-write. Pages return to
  //    the pool on truncate()/reset()/destruction.
  // Both layouts store the same values in the same row order, so the
  // attention reduction (KvView::row) is bit-identical either way.
  KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model);
  // Paged layout: rows are backed by `pool` (whose d_model must match).
  KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model,
          std::shared_ptr<PagePool> pool);

  // Copying a paged cache shares every page (refcounted); copy-on-write
  // keeps the copies independent from the first divergent write. Needed
  // by beam search, which clones the prompt cache per beam.
  KvCache(const KvCache& other);
  KvCache& operator=(const KvCache& other);
  KvCache(KvCache&& other) noexcept;
  KvCache& operator=(KvCache&& other) noexcept;
  ~KvCache();

  // Appends the rows of k/v (shape [new_tokens, d_model]) for `block`.
  // Throws std::invalid_argument on shape mismatch or overflow past
  // max_seq (checked in every build type, not assert-only).
  void append(int block, const tn::Tensor& k, const tn::Tensor& v);

  // Single-row append for batched decode: k/v are one token's [d_model]
  // span for `block`. Identical effect to append() with 1-row tensors,
  // without materializing them.
  void append_row(int block, std::span<const float> k,
                  std::span<const float> v);

  // Whole-matrix access to one block's cached keys/values. Contiguous
  // layout only (paged rows are not one tensor); throws std::logic_error
  // on a paged cache. The engine uses key_view()/value_view() instead.
  const tn::Tensor& keys(int block) const;
  const tn::Tensor& values(int block) const;

  // Layout-independent row access for the attention kernel.
  KvView key_view(int block) const;
  KvView value_view(int block) const;

  // Scalar element access in either layout (pos < length()). The
  // setters are the kv-bit fault-injection surface and are COW-aware:
  // writing into a shared page isolates this cache first, so corrupting
  // a forked sequence never touches the baseline snapshot it forked
  // from.
  float key_at(int block, tn::Index pos, tn::Index dim) const;
  float value_at(int block, tn::Index pos, tn::Index dim) const;
  void set_key_at(int block, tn::Index pos, tn::Index dim, float value);
  void set_value_at(int block, tn::Index pos, tn::Index dim, float value);

  tn::Index length() const { return length_; }
  // Marks `new_tokens` more positions valid (call once per forward pass,
  // after all blocks appended).
  void advance(tn::Index new_tokens) { length_ += new_tokens; }
  // Rolls the valid length back to `new_length` (<= length()); the rows
  // beyond become junk again and the next append overwrites them. This
  // is the rewind primitive of pass-level fault recovery: truncate to the
  // pre-pass length, then recompute the pass. Paged caches release the
  // pages past the new boundary back to the pool.
  void truncate(tn::Index new_length);
  // Empties the cache. Contiguous: keeps the storage (serve slot reuse).
  // Paged: releases every page back to the pool.
  void reset();

  // True if fork_from(src, ...) would be shape-safe: same block count,
  // max_seq, and d_model (compared via the constructor geometry, so
  // zero-block caches with different d_model are correctly rejected). A
  // mismatch means the snapshot was captured on a differently-shaped
  // engine — forking would produce shape-valid-but-wrong caches, so
  // callers use this to fall back to a full recompute.
  bool fork_compatible(const KvCache& src) const;

  // Makes this cache hold exactly the first `prefix_len` rows of every
  // block of `src`. The cache is append-only, so src's *final* state
  // contains every intermediate pass state as a prefix — this is the
  // prefix-reuse primitive that lets a transient-fault trial skip the
  // passes it shares with the fault-free baseline (DESIGN.md §9).
  // Paged-to-paged forks on the same pool alias the full prefix pages
  // (O(n_pages) refcount bumps) and deep-copy only the partially filled
  // boundary page; any other layout combination falls back to a row
  // copy. Self-fork (fork_from(*this, n)) is valid in both layouts.
  // Throws std::invalid_argument on shape mismatch (fork_compatible) or
  // prefix_len outside [0, src.length()].
  void fork_from(const KvCache& src, tn::Index prefix_len);

  tn::Index max_seq() const { return max_seq_; }
  int n_blocks() const { return n_blocks_; }
  tn::Index d_model() const { return d_model_; }

  bool paged() const { return pool_ != nullptr; }
  const std::shared_ptr<PagePool>& pool() const { return pool_; }
  // Pages currently held across all blocks (0 for contiguous caches).
  int pages_held() const;

 private:
  // Paged helpers. ensure_page grows block `b`'s table to cover
  // `page_idx` (acquiring from the pool); ensure_writable remaps a
  // shared page via copy-on-write. Both return the resolved page id.
  int ensure_page(int block, tn::Index page_idx);
  int ensure_writable(int block, tn::Index page_idx);
  void write_row(int block, tn::Index pos, std::span<const float> k,
                 std::span<const float> v);
  void release_all();
  void add_ref_all();
  [[noreturn]] static void throw_pool_dry();

  int n_blocks_ = 0;
  tn::Index max_seq_ = 0;
  tn::Index d_model_ = 0;
  tn::Index length_ = 0;
  // Contiguous layout: [max_seq, d_model] tensors; rows beyond length()
  // are junk. Empty in paged mode.
  std::vector<tn::Tensor> k_;
  std::vector<tn::Tensor> v_;
  // Paged layout: pool + one page table per block. Null/empty in
  // contiguous mode.
  std::shared_ptr<PagePool> pool_;
  std::vector<std::vector<int>> pages_;
};

}  // namespace llmfi::nn
