#pragma once
// Per-block key/value cache for autoregressive decoding.

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace llmfi::nn {

class KvCache {
 public:
  // Capacity invariant: every per-block tensor is allocated at its full
  // [max_seq, d_model] size here, up front, and never resized afterwards.
  // append/append_row only write into that storage, so keys()/values()
  // data pointers stay stable for the cache's whole lifetime and batched
  // decode (src/serve/) never reallocates mid-pass. A retired serve slot
  // reuses its cache via reset() instead of reconstructing it.
  KvCache(int n_blocks, tn::Index max_seq, tn::Index d_model);

  // Appends the rows of k/v (shape [new_tokens, d_model]) for `block`.
  void append(int block, const tn::Tensor& k, const tn::Tensor& v);

  // Single-row append for batched decode: k/v are one token's [d_model]
  // span for `block`. Identical effect to append() with 1-row tensors,
  // without materializing them.
  void append_row(int block, std::span<const float> k,
                  std::span<const float> v);

  // Cached keys/values for `block` as [length, d_model] views copied into
  // tensors (the engine consumes whole matrices for the GEMMs).
  const tn::Tensor& keys(int block) const { return k_.at(static_cast<size_t>(block)); }
  const tn::Tensor& values(int block) const { return v_.at(static_cast<size_t>(block)); }

  tn::Index length() const { return length_; }
  // Marks `new_tokens` more positions valid (call once per forward pass,
  // after all blocks appended).
  void advance(tn::Index new_tokens) { length_ += new_tokens; }
  // Rolls the valid length back to `new_length` (<= length()); the rows
  // beyond become junk again and the next append overwrites them. This
  // is the rewind primitive of pass-level fault recovery: truncate to the
  // pre-pass length, then recompute the pass.
  void truncate(tn::Index new_length);
  void reset();

  // True if fork_from(src, ...) would be shape-safe: same block count,
  // max_seq, and d_model. A mismatch means the snapshot was captured on a
  // differently-shaped engine — forking would produce shape-valid-but-
  // wrong caches, so callers use this to fall back to a full recompute.
  bool fork_compatible(const KvCache& src) const;

  // Copies the first `prefix_len` rows of every block of `src` into this
  // cache and marks exactly those rows valid. The cache is append-only,
  // so src's *final* state contains every intermediate pass state as a
  // prefix — this is the prefix-reuse primitive that lets a transient-
  // fault trial skip the passes it shares with the fault-free baseline
  // (DESIGN.md §9). Throws std::invalid_argument on shape mismatch
  // (fork_compatible) or prefix_len outside [0, src.length()].
  void fork_from(const KvCache& src, tn::Index prefix_len);

  tn::Index max_seq() const { return max_seq_; }
  int n_blocks() const { return static_cast<int>(k_.size()); }
  tn::Index d_model() const { return k_.empty() ? 0 : k_.front().cols(); }

 private:
  tn::Index max_seq_;
  tn::Index length_ = 0;
  // Stored as [max_seq, d_model] tensors; rows beyond length() are junk.
  std::vector<tn::Tensor> k_;
  std::vector<tn::Tensor> v_;
};

}  // namespace llmfi::nn
