#include "nn/weight_matrix.h"

#include <algorithm>

#include "numerics/bitflip.h"
#include "numerics/half.h"

namespace llmfi::nn {

WeightMatrix::WeightMatrix(tn::Tensor w, num::DType dtype, int group_size)
    : values_(std::move(w)), dtype_(dtype) {
  switch (dtype) {
    case num::DType::F32:
      break;
    case num::DType::F16:
      for (float& v : values_.flat()) v = num::round_to_f16(v);
      break;
    case num::DType::BF16:
      for (float& v : values_.flat()) v = num::round_to_bf16(v);
      break;
    case num::DType::I8:
    case num::DType::I4:
      quantized_.emplace(values_, dtype, group_size);
      values_ = quantized_->dequantize();
      break;
  }
}

int WeightMatrix::storage_bits() const {
  return num::dtype_info(dtype_).total_bits;
}

void WeightMatrix::flip_bits(tn::Index r, tn::Index c,
                             std::span<const int> bits) {
  if (quantized_) {
    values_.at(r, c) = quantized_->flip_payload_bits(r, c, bits);
    return;
  }
  values_.at(r, c) = num::flip_float_bits(values_.at(r, c), dtype_, bits);
}

void WeightMatrix::refresh_group(tn::Index r, tn::Index c) {
  if (!quantized_) return;
  const int gs = quantized_->group_size();
  const tn::Index c0 = (c / gs) * gs;
  const tn::Index c1 = std::min(values_.cols(), c0 + gs);
  for (tn::Index cc = c0; cc < c1; ++cc) {
    values_.at(r, cc) = quantized_->dequant(r, cc);
  }
}

}  // namespace llmfi::nn
