#include "nn/rope.h"

#include <cassert>
#include <cmath>

namespace llmfi::nn {

void apply_rope(tn::Tensor& x, int n_heads, int pos_offset, float theta,
                bool inverse) {
  assert(x.rank() == 2);
  const tn::Index d_model = x.cols();
  assert(d_model % n_heads == 0);
  const tn::Index d_head = d_model / n_heads;
  assert(d_head % 2 == 0);

  for (tn::Index t = 0; t < x.rows(); ++t) {
    const auto pos = static_cast<float>(pos_offset + t);
    auto row = x.row(t);
    for (int h = 0; h < n_heads; ++h) {
      float* head = row.data() + static_cast<tn::Index>(h) * d_head;
      for (tn::Index i = 0; i < d_head / 2; ++i) {
        const float freq = std::pow(
            theta, -2.0f * static_cast<float>(i) / static_cast<float>(d_head));
        const float angle = pos * freq;
        const float c = std::cos(angle);
        const float s = inverse ? -std::sin(angle) : std::sin(angle);
        const float a = head[2 * i];
        const float b = head[2 * i + 1];
        head[2 * i] = a * c - b * s;
        head[2 * i + 1] = a * s + b * c;
      }
    }
  }
}

void apply_rope_rows(tn::Tensor& x, int n_heads,
                     std::span<const int> positions, float theta) {
  assert(x.rank() == 2);
  assert(static_cast<size_t>(x.rows()) == positions.size());
  const tn::Index d_model = x.cols();
  assert(d_model % n_heads == 0);
  const tn::Index d_head = d_model / n_heads;
  assert(d_head % 2 == 0);

  for (tn::Index t = 0; t < x.rows(); ++t) {
    const auto pos = static_cast<float>(positions[static_cast<size_t>(t)]);
    auto row = x.row(t);
    for (int h = 0; h < n_heads; ++h) {
      float* head = row.data() + static_cast<tn::Index>(h) * d_head;
      for (tn::Index i = 0; i < d_head / 2; ++i) {
        const float freq = std::pow(
            theta, -2.0f * static_cast<float>(i) / static_cast<float>(d_head));
        const float angle = pos * freq;
        const float c = std::cos(angle);
        const float s = std::sin(angle);
        const float a = head[2 * i];
        const float b = head[2 * i + 1];
        head[2 * i] = a * c - b * s;
        head[2 * i + 1] = a * s + b * c;
      }
    }
  }
}

}  // namespace llmfi::nn
