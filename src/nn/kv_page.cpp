#include "nn/kv_page.h"

#include <stdexcept>

namespace llmfi::nn {

PagePool::PagePool(int n_pages, tn::Index page_rows, tn::Index d_model)
    : n_pages_(n_pages),
      page_rows_(page_rows),
      d_model_(d_model),
      page_elems_(static_cast<std::size_t>(page_rows) *
                  static_cast<std::size_t>(d_model)) {
  if (n_pages <= 0 || page_rows <= 0 || d_model <= 0) {
    throw std::invalid_argument("PagePool: n_pages/page_rows/d_model must "
                                "be positive");
  }
  k_data_.resize(static_cast<std::size_t>(n_pages) * page_elems_);
  v_data_.resize(static_cast<std::size_t>(n_pages) * page_elems_);
  refs_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(n_pages));
  free_.reserve(static_cast<std::size_t>(n_pages));
  // LIFO pop order hands out page 0 first.
  for (int p = n_pages - 1; p >= 0; --p) {
    refs_[static_cast<std::size_t>(p)].store(0, std::memory_order_relaxed);
    free_.push_back(p);
  }
}

int PagePool::acquire() {
  std::lock_guard<std::mutex> lock(free_mu_);
  if (free_.empty()) return -1;
  const int page = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(page)].store(1, std::memory_order_relaxed);
  return page;
}

void PagePool::add_ref(int page) {
  refs_[static_cast<std::size_t>(page)].fetch_add(
      1, std::memory_order_relaxed);
}

void PagePool::release(int page) {
  // acq_rel: the last owner may have written page data; the next
  // acquirer must see those writes (and the free-list mutex pairs with
  // this on the reuse path).
  const int prev = refs_[static_cast<std::size_t>(page)].fetch_sub(
      1, std::memory_order_acq_rel);
  if (prev == 1) {
    std::lock_guard<std::mutex> lock(free_mu_);
    free_.push_back(page);
  }
}

int PagePool::ref_count(int page) const {
  return refs_[static_cast<std::size_t>(page)].load(
      std::memory_order_relaxed);
}

int PagePool::free_pages() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return static_cast<int>(free_.size());
}

}  // namespace llmfi::nn
