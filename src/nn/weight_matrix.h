#pragma once
// Weight storage honoring a reduced-precision dtype, with bit-exact
// memory-fault semantics.
//
// The GEMM always reads an fp32 buffer whose values are *exactly
// representable* in the storage dtype (mirroring GPU pipelines that load
// fp16/bf16/int operands into fp32 accumulators). A memory fault flips
// bits in the storage representation and refreshes the fp32 buffer;
// because XOR is an involution, applying the same flip again restores the
// original weight — the paper's flip-then-flip-back protocol (§3.2).

#include <optional>
#include <span>

#include "numerics/dtype.h"
#include "quant/quantized_matrix.h"
#include "tensor/tensor.h"

namespace llmfi::nn {

class WeightMatrix {
 public:
  // `w` holds master fp32 weights [out_features, in_features].
  // For quantized dtypes, `group_size` sets the quantization group.
  WeightMatrix(tn::Tensor w, num::DType dtype, int group_size = 32);

  const tn::Tensor& values() const { return values_; }
  num::DType dtype() const { return dtype_; }
  tn::Index rows() const { return values_.rows(); }
  tn::Index cols() const { return values_.cols(); }

  // Bits per element eligible for memory faults (payload width for
  // quantized dtypes, full float width otherwise).
  int storage_bits() const;

  // Flip storage bits of element (r, c). Calling twice with the same bits
  // restores the original value exactly.
  void flip_bits(tn::Index r, tn::Index c, std::span<const int> bits);

  // Present only for quantized dtypes (scale-bit fault ablation).
  quant::QuantizedMatrix* quantized() {
    return quantized_ ? &*quantized_ : nullptr;
  }
  const quant::QuantizedMatrix* quantized() const {
    return quantized_ ? &*quantized_ : nullptr;
  }

  // Re-derives the fp32 buffer for the group containing (r, c) after a
  // scale-bit flip.
  void refresh_group(tn::Index r, tn::Index c);

 private:
  tn::Tensor values_;  // fp32 compute buffer (dtype-exact values)
  num::DType dtype_;
  std::optional<quant::QuantizedMatrix> quantized_;
};

}  // namespace llmfi::nn
