#include "nn/layer_id.h"

namespace llmfi::nn {

std::string_view layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::QProj: return "q_proj";
    case LayerKind::KProj: return "k_proj";
    case LayerKind::VProj: return "v_proj";
    case LayerKind::OProj: return "o_proj";
    case LayerKind::GateProj: return "gate_proj";
    case LayerKind::UpProj: return "up_proj";
    case LayerKind::DownProj: return "down_proj";
    case LayerKind::Router: return "router";
    case LayerKind::ExpertGate: return "expert_gate";
    case LayerKind::ExpertUp: return "expert_up";
    case LayerKind::ExpertDown: return "expert_down";
  }
  return "?";
}

std::string to_string(const LinearId& id) {
  std::string s = "block" + std::to_string(id.block) + "." +
                  std::string(layer_kind_name(id.kind));
  if (id.expert >= 0) s += "[" + std::to_string(id.expert) + "]";
  return s;
}

}  // namespace llmfi::nn
