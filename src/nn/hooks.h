#pragma once
// Observation/injection hooks on the inference engine — the C++
// equivalent of the PyTorch forward hooks the paper uses (§3.2).

#include <string_view>

#include "nn/layer_id.h"
#include "tensor/tensor.h"

namespace llmfi::nn {

class WeightMatrix;
class KvCache;

// Called after every linear layer of every transformer block, *after* the
// output has been rounded into the activation dtype. `y` is mutable: a
// computational-fault injector flips bits in it and the modified tensor
// flows into the rest of the data path, exactly like a PyTorchFI hook.
//
// `pass_index` counts forward passes within one inference (prefill is
// pass 0, each subsequent decode step increments it). `row_offset` is the
// absolute token position of y's first row.
class LinearHook {
 public:
  virtual ~LinearHook() = default;
  virtual void on_linear_output(const LinearId& id, tn::Tensor& y,
                                int pass_index, int row_offset) = 0;

  // Full-operand variant, fired by the engine with the GEMM input `x`
  // and weight matrix `w` alongside the output. Hooks that only observe
  // or perturb `y` inherit this forwarding default; ABFT-style checksum
  // detectors override it to verify y against x and w.
  virtual void on_linear(const LinearId& id, const tn::Tensor& x,
                         const WeightMatrix& w, tn::Tensor& y, int pass_index,
                         int row_offset) {
    (void)x;
    (void)w;
    on_linear_output(id, y, pass_index, row_offset);
  }

  // Install-lifecycle reset: LinearHookGuard invokes this when the hook
  // is installed on an engine. Per-trial state (trip latches, correction
  // counters, fired records) must clear here — and chained hooks must
  // forward to their `next` — so no detector/injector state leaks from
  // one trial into the next when callers forget an explicit reset().
  virtual void on_install() {}
};

// A LinearHook that additionally reports whether it observed a fault
// symptom — the contract the generation-level recovery loop polls
// between forward passes (recompute-the-pass on a trip).
class DetectorHook : public LinearHook {
 public:
  virtual bool triggered() const = 0;
  // Site/pass of the first trip (valid while triggered()).
  virtual const LinearId& trip_site() const = 0;
  virtual int trip_pass() const = 0;
  // Clears the trip latch so the next pass is judged fresh.
  virtual void reset() = 0;
  virtual std::string_view name() const = 0;
};

// Injection surface inside the segmented row-parallel product (the
// attention-output and MLP-down projections, DESIGN.md §14). The
// product is computed as a fixed grid of K-range partial sums folded by
// a deterministic binary tree; this hook observes (and may corrupt)
// that intermediate state before it is rounded into the activation
// dtype — the tensor-parallel analogue of LinearHook's post-GEMM view.
//
// `partials[g]` is segment g's partial C (shape [rows, cols], fp32
// register state). on_partials fires once per product after the partial
// GEMMs complete and before any reduction; on_reduce_level fires after
// each tree level folds, with `survivors` listing the segment indices
// still live (level `level` of `n_levels`; survivors of the last level
// == {0}, the finished product). While a shard hook is armed the engine
// runs the reduction serially on the driver thread so every level is
// observable; the fold order — and therefore the output bits — is the
// same one the sharded and serial paths always use.
class ShardHook {
 public:
  virtual ~ShardHook() = default;
  virtual void on_partials(const LinearId& id, std::span<tn::Tensor> partials,
                           int pass_index, int row_offset) = 0;
  virtual void on_reduce_level(const LinearId& id, int level, int n_levels,
                               std::span<tn::Tensor> partials,
                               std::span<const int> survivors, int pass_index,
                               int row_offset) {
    (void)id;
    (void)level;
    (void)n_levels;
    (void)partials;
    (void)survivors;
    (void)pass_index;
    (void)row_offset;
  }
  // Same install-lifecycle contract as LinearHook::on_install.
  virtual void on_install() {}
};

// Fired once at the start of every checked forward pass, before the
// pass reads the cache, with the live KvCache and the pass index. This
// is the kv-bit fault-injection surface: an injector flips a bit in an
// already-cached K/V element at its sampled pass, and the corruption
// persists for the rest of the sequence (every later pass attends over
// the flipped row). Pass-level recovery rewinds *appends*, not prior
// rows, so a tripped detector cannot scrub it — only a cache
// flush-and-refill can. The hook fires once per logical pass: detector
// recompute loops re-run the pass body without re-firing it.
class KvPassHook {
 public:
  virtual ~KvPassHook() = default;
  virtual void on_pass_begin(KvCache& cache, int pass_index) = 0;
};

// Observes MoE routing decisions (Fig 15: gate-layer faults change expert
// selections). Fired once per token per MoE block, with the chosen
// expert indices in rank order.
class ExpertObserver {
 public:
  virtual ~ExpertObserver() = default;
  virtual void on_expert_selection(int block, int token_position,
                                   std::span<const int> experts) = 0;
};

}  // namespace llmfi::nn
