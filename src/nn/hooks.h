#pragma once
// Observation/injection hooks on the inference engine — the C++
// equivalent of the PyTorch forward hooks the paper uses (§3.2).

#include "nn/layer_id.h"
#include "tensor/tensor.h"

namespace llmfi::nn {

// Called after every linear layer of every transformer block, *after* the
// output has been rounded into the activation dtype. `y` is mutable: a
// computational-fault injector flips bits in it and the modified tensor
// flows into the rest of the data path, exactly like a PyTorchFI hook.
//
// `pass_index` counts forward passes within one inference (prefill is
// pass 0, each subsequent decode step increments it). `row_offset` is the
// absolute token position of y's first row.
class LinearHook {
 public:
  virtual ~LinearHook() = default;
  virtual void on_linear_output(const LinearId& id, tn::Tensor& y,
                                int pass_index, int row_offset) = 0;
};

// Observes MoE routing decisions (Fig 15: gate-layer faults change expert
// selections). Fired once per token per MoE block, with the chosen
// expert indices in rank order.
class ExpertObserver {
 public:
  virtual ~ExpertObserver() = default;
  virtual void on_expert_selection(int block, int token_position,
                                   std::span<const int> experts) = 0;
};

}  // namespace llmfi::nn
