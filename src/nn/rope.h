#pragma once
// Rotary position embeddings (Llama-style), applied in place to Q/K.

#include <span>

#include "tensor/tensor.h"

namespace llmfi::nn {

// x is [tokens, d_model] laid out as n_heads contiguous heads per row.
// Row i corresponds to absolute position pos_offset + i. Rotates each
// consecutive (even, odd) dimension pair within every head. `inverse`
// rotates by the negated angle — since rotations are orthogonal, this is
// exactly the transposed Jacobian, i.e. the backward pass.
void apply_rope(tn::Tensor& x, int n_heads, int pos_offset,
                float theta = 10000.0f, bool inverse = false);

// Batched-decode variant: row i corresponds to absolute position
// positions[i] (each row is one token of a *different* sequence). Row i
// is rotated exactly as apply_rope would rotate a [1, d_model] tensor
// with pos_offset == positions[i], so a batched pass stays bit-identical
// to the per-sequence path.
void apply_rope_rows(tn::Tensor& x, int n_heads,
                     std::span<const int> positions,
                     float theta = 10000.0f);

}  // namespace llmfi::nn
