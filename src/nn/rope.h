#pragma once
// Rotary position embeddings (Llama-style), applied in place to Q/K.

#include "tensor/tensor.h"

namespace llmfi::nn {

// x is [tokens, d_model] laid out as n_heads contiguous heads per row.
// Row i corresponds to absolute position pos_offset + i. Rotates each
// consecutive (even, odd) dimension pair within every head. `inverse`
// rotates by the negated angle — since rotations are orthogonal, this is
// exactly the transposed Jacobian, i.e. the backward pass.
void apply_rope(tn::Tensor& x, int n_heads, int pos_offset,
                float theta = 10000.0f, bool inverse = false);

}  // namespace llmfi::nn
