#include "tensor/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/ops.h"

namespace llmfi::tn {

namespace {

KernelTier tier_from_env() {
  const char* v = std::getenv("LLMFI_KERNEL");
  if (v == nullptr || *v == '\0') return KernelTier::Reference;
  KernelTier t;
  if (!parse_kernel_tier(v, &t)) {
    std::fprintf(stderr,
                 "llmfi: LLMFI_KERNEL=\"%s\" is not one of "
                 "reference|portable|avx2|auto\n",
                 v);
    std::exit(2);
  }
  if (t == KernelTier::Avx2 && !cpu_supports_avx2()) {
    std::fprintf(stderr,
                 "llmfi: LLMFI_KERNEL=avx2 but this CPU lacks AVX2/FMA; "
                 "falling back to portable\n");
    return KernelTier::Portable;
  }
  return t;
}

std::atomic<KernelTier>& tier_slot() {
  static std::atomic<KernelTier> slot{tier_from_env()};
  return slot;
}

}  // namespace

const char* kernel_tier_name(KernelTier t) {
  switch (t) {
    case KernelTier::Reference:
      return "reference";
    case KernelTier::Portable:
      return "portable";
    case KernelTier::Avx2:
      return "avx2";
  }
  return "?";
}

bool parse_kernel_tier(const std::string& name, KernelTier* out) {
  if (name == "reference") {
    *out = KernelTier::Reference;
  } else if (name == "portable") {
    *out = KernelTier::Portable;
  } else if (name == "avx2") {
    *out = KernelTier::Avx2;
  } else if (name == "auto") {
    *out = best_supported_tier();
  } else {
    return false;
  }
  return true;
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelTier best_supported_tier() {
  return cpu_supports_avx2() ? KernelTier::Avx2 : KernelTier::Portable;
}

KernelTier kernel_tier() {
  return tier_slot().load(std::memory_order_relaxed);
}

void set_kernel_tier(KernelTier t) {
  if (t == KernelTier::Avx2 && !cpu_supports_avx2()) {
    throw std::invalid_argument(
        "set_kernel_tier: this CPU lacks AVX2/FMA support");
  }
  tier_slot().store(t, std::memory_order_relaxed);
}

namespace detail {

// Portable microkernel: 4 B-rows per block, 8 source-level accumulator
// lanes per row. The independent lanes make the reduction reassociation
// explicit in the source, so -O2/-O3 vectorizes it without -ffast-math;
// without SIMD hardware it still wins on instruction-level parallelism.
void gemm_bt_portable(const float* pa, Index m, Index k, const float* pb,
                      Index n, float* pc) {
  constexpr Index kLanes = 8;
  for (Index i = 0; i < m; ++i) {
    const float* a = pa + i * k;
    float* c = pc + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0[kLanes] = {0}, acc1[kLanes] = {0};
      float acc2[kLanes] = {0}, acc3[kLanes] = {0};
      Index l = 0;
      for (; l + kLanes <= k; l += kLanes) {
        for (Index u = 0; u < kLanes; ++u) {
          const float av = a[l + u];
          acc0[u] += av * b0[l + u];
          acc1[u] += av * b1[l + u];
          acc2[u] += av * b2[l + u];
          acc3[u] += av * b3[l + u];
        }
      }
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (Index u = 0; u < kLanes; ++u) {
        s0 += acc0[u];
        s1 += acc1[u];
        s2 += acc2[u];
        s3 += acc3[u];
      }
      for (; l < k; ++l) {
        const float av = a[l];
        s0 += av * b0[l];
        s1 += av * b1[l];
        s2 += av * b2[l];
        s3 += av * b3[l];
      }
      c[j] = s0;
      c[j + 1] = s1;
      c[j + 2] = s2;
      c[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* b = pb + j * k;
      float acc[kLanes] = {0};
      Index l = 0;
      for (; l + kLanes <= k; l += kLanes) {
        for (Index u = 0; u < kLanes; ++u) acc[u] += a[l + u] * b[l + u];
      }
      float s = 0.0f;
      for (Index u = 0; u < kLanes; ++u) s += acc[u];
      for (; l < k; ++l) s += a[l] * b[l];
      c[j] = s;
    }
  }
}

__attribute__((noinline)) void gemm_bt_reference_range(
    const float* pa, Index m, Index lda, Index k0, Index k1, const float* pb,
    Index ldb, Index j0, Index j1, float* pc, Index ldc) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = pa + i * lda;
    float* crow = pc + i * ldc;
    for (Index j = j0; j < j1; ++j) {
      const float* brow = pb + j * ldb;
      float acc = 0.0f;
      for (Index l = k0; l < k1; ++l) acc += arow[l] * brow[l];
      crow[j] = acc;
    }
  }
}

void gemm_bt_krange_portable(const float* pa, Index m, Index lda, Index k0,
                             Index k1, const float* pb, Index ldb, Index n,
                             float* pc, Index ldc) {
  constexpr Index kLanes = 8;
  for (Index i = 0; i < m; ++i) {
    const float* a = pa + i * lda;
    float* c = pc + i * ldc;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + j * ldb;
      const float* b1 = b0 + ldb;
      const float* b2 = b1 + ldb;
      const float* b3 = b2 + ldb;
      float acc0[kLanes] = {0}, acc1[kLanes] = {0};
      float acc2[kLanes] = {0}, acc3[kLanes] = {0};
      Index l = k0;
      for (; l + kLanes <= k1; l += kLanes) {
        for (Index u = 0; u < kLanes; ++u) {
          const float av = a[l + u];
          acc0[u] += av * b0[l + u];
          acc1[u] += av * b1[l + u];
          acc2[u] += av * b2[l + u];
          acc3[u] += av * b3[l + u];
        }
      }
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (Index u = 0; u < kLanes; ++u) {
        s0 += acc0[u];
        s1 += acc1[u];
        s2 += acc2[u];
        s3 += acc3[u];
      }
      for (; l < k1; ++l) {
        const float av = a[l];
        s0 += av * b0[l];
        s1 += av * b1[l];
        s2 += av * b2[l];
        s3 += av * b3[l];
      }
      c[j] = s0;
      c[j + 1] = s1;
      c[j + 2] = s2;
      c[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* b = pb + j * ldb;
      float acc[kLanes] = {0};
      Index l = k0;
      for (; l + kLanes <= k1; l += kLanes) {
        for (Index u = 0; u < kLanes; ++u) acc[u] += a[l + u] * b[l + u];
      }
      float s = 0.0f;
      for (Index u = 0; u < kLanes; ++u) s += acc[u];
      for (; l < k1; ++l) s += a[l] * b[l];
      c[j] = s;
    }
  }
}

void qgemm_bt_portable(const float* pa, Index m, Index k,
                       const std::int8_t* pw, const float* pscales,
                       Index groups_per_row, int group_size, Index n,
                       float* pc) {
  constexpr Index kLanes = 8;
  for (Index i = 0; i < m; ++i) {
    const float* a = pa + i * k;
    float* c = pc + i * n;
    for (Index j = 0; j < n; ++j) {
      const std::int8_t* w = pw + j * k;
      const float* scales = pscales + j * groups_per_row;
      float y = 0.0f;
      for (Index g = 0; g < groups_per_row; ++g) {
        const Index l0 = g * group_size;
        const Index l1 = std::min(k, l0 + group_size);
        float acc[kLanes] = {0};
        Index l = l0;
        for (; l + kLanes <= l1; l += kLanes) {
          for (Index u = 0; u < kLanes; ++u) {
            acc[u] += a[l + u] * static_cast<float>(w[l + u]);
          }
        }
        float partial = 0.0f;
        for (Index u = 0; u < kLanes; ++u) partial += acc[u];
        for (; l < l1; ++l) partial += a[l] * static_cast<float>(w[l]);
        y += partial * scales[g];
      }
      c[j] = y;
    }
  }
}

}  // namespace detail

Tensor matmul_bt_tier(const Tensor& a, const Tensor& b, KernelTier tier) {
  if (tier == KernelTier::Reference) return matmul_bt_reference(a, b);
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument("matmul_bt: tensors must be 2-D");
  }
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) {
    throw std::invalid_argument("matmul_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  if (tier == KernelTier::Avx2) {
    detail::gemm_bt_avx2(a.data(), m, k, b.data(), n, c.data());
  } else {
    detail::gemm_bt_portable(a.data(), m, k, b.data(), n, c.data());
  }
  return c;
}

void matmul_bt_cols(const float* a, Index m, Index k, const float* b, Index j0,
                    Index j1, float* c, Index ldc, KernelTier tier) {
  if (j0 >= j1) return;
  if (tier == KernelTier::Reference) {
    detail::gemm_bt_reference_range(a, m, k, 0, k, b, k, j0, j1, c, ldc);
    return;
  }
  // Per-row calls into the full-K kernels on the packed B-row subrange:
  // the slice reuses the exact kernel bodies matmul_bt_tier runs, and a
  // 4-aligned j0 keeps the block/remainder grouping in phase with the
  // full product (the bit-identity precondition — see kernels.h).
  for (Index i = 0; i < m; ++i) {
    float* crow = c + i * ldc + j0;
    if (tier == KernelTier::Avx2) {
      detail::gemm_bt_avx2(a + i * k, 1, k, b + j0 * k, j1 - j0, crow);
    } else {
      detail::gemm_bt_portable(a + i * k, 1, k, b + j0 * k, j1 - j0, crow);
    }
  }
}

void matmul_bt_krange(const float* a, Index m, Index lda, Index k0, Index k1,
                      const float* b, Index ldb, Index n, float* c, Index ldc,
                      KernelTier tier) {
  switch (tier) {
    case KernelTier::Reference:
      detail::gemm_bt_reference_range(a, m, lda, k0, k1, b, ldb, 0, n, c, ldc);
      break;
    case KernelTier::Portable:
      detail::gemm_bt_krange_portable(a, m, lda, k0, k1, b, ldb, n, c, ldc);
      break;
    case KernelTier::Avx2:
      detail::gemm_bt_krange_avx2(a, m, lda, k0, k1, b, ldb, n, c, ldc);
      break;
  }
}

std::vector<Tensor> fused_rmsnorm_matmul_bt(const Tensor& x,
                                            const Tensor& gain, float eps,
                                            std::span<const Tensor* const> ws,
                                            KernelTier tier) {
  if (x.rank() != 2) {
    throw std::invalid_argument("fused_rmsnorm_matmul_bt: x must be 2-D");
  }
  const Index m = x.rows(), k = x.cols();
  if (gain.numel() != k) {
    throw std::invalid_argument("fused_rmsnorm_matmul_bt: gain size mismatch");
  }
  std::vector<Tensor> ys;
  ys.reserve(ws.size());
  for (const Tensor* w : ws) {
    if (w->rank() != 2 || w->cols() != k) {
      throw std::invalid_argument(
          "fused_rmsnorm_matmul_bt: weight inner dim mismatch");
    }
    ys.emplace_back(std::vector<Index>{m, w->rows()});
  }

  // One normalized row at a time, feeding every projection while the row
  // is hot. The normalization replicates rmsnorm_rows float-for-float
  // (sequential ss accumulation, in[j] * inv * gain[j]) so the fusion is
  // bit-identical to the unfused pair at any tier — including the IEEE
  // corruption semantics (inf input -> ss inf -> NaN out; huge finite
  // input -> collapse toward 0) the fault studies rely on.
  std::vector<float> h(static_cast<size_t>(k));
  for (Index i = 0; i < m; ++i) {
    auto in = x.row(i);
    float ss = 0.0f;
    for (float v : in) ss += v * v;
    const float rms = std::sqrt(ss / static_cast<float>(k) + eps);
    const float inv = 1.0f / rms;
    for (Index j = 0; j < k; ++j) {
      h[static_cast<size_t>(j)] = in[static_cast<size_t>(j)] * inv * gain[j];
    }
    for (size_t wi = 0; wi < ws.size(); ++wi) {
      const Tensor& w = *ws[wi];
      const Index n = w.rows();
      float* crow = ys[wi].data() + i * n;
      switch (tier) {
        case KernelTier::Reference:
          // The naive dot loop of matmul_bt_reference, row-at-a-time —
          // the same out-of-line body, so the fused/unfused/sharded
          // Reference paths share one codegen of the reduction loop.
          detail::gemm_bt_reference_range(h.data(), 1, k, 0, k, w.data(), k, 0,
                                          n, crow, n);
          break;
        case KernelTier::Portable:
          detail::gemm_bt_portable(h.data(), 1, k, w.data(), n, crow);
          break;
        case KernelTier::Avx2:
          detail::gemm_bt_avx2(h.data(), 1, k, w.data(), n, crow);
          break;
      }
    }
  }
  return ys;
}

void fused_rmsnorm_matmul_bt_cols(const Tensor& x, const Tensor& gain,
                                  float eps, std::span<const Tensor* const> ws,
                                  KernelTier tier, Index j0, Index j1,
                                  std::span<float* const> cs, Index ldc) {
  if (x.rank() != 2) {
    throw std::invalid_argument("fused_rmsnorm_matmul_bt_cols: x must be 2-D");
  }
  const Index m = x.rows(), k = x.cols();
  if (gain.numel() != k) {
    throw std::invalid_argument(
        "fused_rmsnorm_matmul_bt_cols: gain size mismatch");
  }
  if (cs.size() != ws.size()) {
    throw std::invalid_argument(
        "fused_rmsnorm_matmul_bt_cols: output count mismatch");
  }
  // Each shard normalizes every row itself (identical float ops, so
  // identical bits — cheaper than a barrier between the norm and the
  // projections) and computes its column slice of each projection.
  std::vector<float> h(static_cast<size_t>(k));
  for (Index i = 0; i < m; ++i) {
    auto in = x.row(i);
    float ss = 0.0f;
    for (float v : in) ss += v * v;
    const float rms = std::sqrt(ss / static_cast<float>(k) + eps);
    const float inv = 1.0f / rms;
    for (Index j = 0; j < k; ++j) {
      h[static_cast<size_t>(j)] = in[static_cast<size_t>(j)] * inv * gain[j];
    }
    for (size_t wi = 0; wi < ws.size(); ++wi) {
      const Tensor& w = *ws[wi];
      if (w.rank() != 2 || w.cols() != k || j1 > w.rows()) {
        throw std::invalid_argument(
            "fused_rmsnorm_matmul_bt_cols: weight shape mismatch");
      }
      matmul_bt_cols(h.data(), 1, k, w.data(), j0, j1, cs[wi] + i * ldc, ldc,
                     tier);
    }
  }
}

KernelGateResult check_matmul_bt_gate(const Tensor& a, const Tensor& b,
                                      const Tensor& ref, const Tensor& fast,
                                      double term_factor) {
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  if (ref.rows() != m || ref.cols() != n || fast.rows() != m ||
      fast.cols() != n || b.cols() != k) {
    throw std::invalid_argument("check_matmul_bt_gate: shape mismatch");
  }
  constexpr double kEps = std::numeric_limits<float>::epsilon();
  KernelGateResult res;
  for (Index i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (Index j = 0; j < n; ++j) {
      const float r = ref.at(i, j);
      const float f = fast.at(i, j);
      if (!std::isfinite(r)) {
        // Reordering may legally turn inf into NaN (inf - inf) but must
        // never bring a corrupted element back to a finite value.
        if (std::isfinite(f)) {
          ++res.violations;
          res.worst_excess = std::numeric_limits<double>::infinity();
        }
        continue;
      }
      const float* brow = b.data() + j * k;
      double terms = 0.0;
      for (Index l = 0; l < k; ++l) {
        terms += std::fabs(static_cast<double>(arow[l]) * brow[l]);
      }
      const double bound = term_factor * kEps * terms + 1e-30;
      const double diff = std::fabs(static_cast<double>(f) - r);
      if (!(diff <= bound)) {  // catches NaN in `fast` too
        ++res.violations;
        res.worst_excess = std::max(
            res.worst_excess, std::isfinite(diff) ? diff / bound
                                                  : std::numeric_limits<double>::infinity());
      } else if (bound > 0.0) {
        res.worst_excess = std::max(res.worst_excess, diff / bound);
      }
    }
  }
  return res;
}

}  // namespace llmfi::tn
