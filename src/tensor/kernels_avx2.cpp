// AVX2/FMA microkernels behind tn::detail. Compiled with per-function
// target attributes so the translation unit builds (and links) on any
// x86-64 toolchain without changing global codegen flags; callers gate
// on cpu_supports_avx2() before dispatching here. On non-x86 targets
// these symbols abort — best_supported_tier() never selects them.

#include "tensor/kernels.h"

#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace llmfi::tn::detail {

#if defined(__x86_64__) || defined(__i386__)

namespace {

// Horizontal fold of four 8-lane accumulators into [s0, s1, s2, s3].
__attribute__((target("avx2,fma"))) inline __m128 hsum4(__m256 acc0,
                                                        __m256 acc1,
                                                        __m256 acc2,
                                                        __m256 acc3) {
  const __m256 h01 = _mm256_hadd_ps(acc0, acc1);
  const __m256 h0123 = _mm256_hadd_ps(h01, _mm256_hadd_ps(acc2, acc3));
  return _mm_add_ps(_mm256_castps256_ps128(h0123),
                    _mm256_extractf128_ps(h0123, 1));
}

__attribute__((target("avx2,fma"))) inline float hsum1(__m256 acc) {
  const __m128 lo = _mm_add_ps(_mm256_castps256_ps128(acc),
                               _mm256_extractf128_ps(acc, 1));
  const __m128 sh = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  const __m128 s = _mm_add_ss(sh, _mm_shuffle_ps(sh, sh, 0x55));
  return _mm_cvtss_f32(s);
}

// One A row against 4-wide blocks of B rows; fixed reduction order per
// output element (8-lane FMA partials, hadd fold, then the scalar tail).
__attribute__((target("avx2,fma"))) void gemm_bt_row_avx2(const float* a,
                                                          Index k,
                                                          const float* pb,
                                                          Index n, float* c) {
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = pb + j * k;
    const float* b1 = b0 + k;
    const float* b2 = b1 + k;
    const float* b3 = b2 + k;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    Index l = 0;
    for (; l + 8 <= k; l += 8) {
      const __m256 va = _mm256_loadu_ps(a + l);
      acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + l), acc0);
      acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + l), acc1);
      acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + l), acc2);
      acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + l), acc3);
    }
    float s[4];
    _mm_storeu_ps(s, hsum4(acc0, acc1, acc2, acc3));
    for (; l < k; ++l) {
      const float av = a[l];
      s[0] += av * b0[l];
      s[1] += av * b1[l];
      s[2] += av * b2[l];
      s[3] += av * b3[l];
    }
    c[j] = s[0];
    c[j + 1] = s[1];
    c[j + 2] = s[2];
    c[j + 3] = s[3];
  }
  for (; j < n; ++j) {
    const float* b = pb + j * k;
    __m256 acc = _mm256_setzero_ps();
    Index l = 0;
    for (; l + 8 <= k; l += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + l), _mm256_loadu_ps(b + l),
                            acc);
    }
    float s = hsum1(acc);
    for (; l < k; ++l) s += a[l] * b[l];
    c[j] = s;
  }
}

__attribute__((target("avx2,fma"))) void qgemm_bt_row_avx2(
    const float* a, Index k, const std::int8_t* pw, const float* pscales,
    Index groups_per_row, int group_size, Index n, float* c) {
  for (Index j = 0; j < n; ++j) {
    const std::int8_t* w = pw + j * k;
    const float* scales = pscales + j * groups_per_row;
    float y = 0.0f;
    for (Index g = 0; g < groups_per_row; ++g) {
      const Index l0 = g * group_size;
      const Index l1 = l0 + group_size < k ? l0 + group_size : k;
      __m256 acc = _mm256_setzero_ps();
      Index l = l0;
      for (; l + 8 <= l1; l += 8) {
        // 8 sign-extended int8 payloads -> fp32 lanes, FMA with the
        // activation row: the weight is consumed in its integer storage
        // form, never materialized as an fp32 matrix.
        const __m128i bytes =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + l));
        const __m256 wf =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + l), wf, acc);
      }
      float partial = hsum1(acc);
      for (; l < l1; ++l) partial += a[l] * static_cast<float>(w[l]);
      y += partial * scales[g];
    }
    c[j] = y;
  }
}

// K-range partial for the segmented row-parallel product: identical
// blocking and fold order to gemm_bt_row_avx2 but restricted to
// l in [k0, k1), with B rows read at their full stride ldb.
__attribute__((target("avx2,fma"))) void gemm_bt_krange_row_avx2(
    const float* a, Index k0, Index k1, const float* pb, Index ldb, Index n,
    float* c) {
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const float* b0 = pb + j * ldb;
    const float* b1 = b0 + ldb;
    const float* b2 = b1 + ldb;
    const float* b3 = b2 + ldb;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    Index l = k0;
    for (; l + 8 <= k1; l += 8) {
      const __m256 va = _mm256_loadu_ps(a + l);
      acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + l), acc0);
      acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + l), acc1);
      acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + l), acc2);
      acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + l), acc3);
    }
    float s[4];
    _mm_storeu_ps(s, hsum4(acc0, acc1, acc2, acc3));
    for (; l < k1; ++l) {
      const float av = a[l];
      s[0] += av * b0[l];
      s[1] += av * b1[l];
      s[2] += av * b2[l];
      s[3] += av * b3[l];
    }
    c[j] = s[0];
    c[j + 1] = s[1];
    c[j + 2] = s[2];
    c[j + 3] = s[3];
  }
  for (; j < n; ++j) {
    const float* b = pb + j * ldb;
    __m256 acc = _mm256_setzero_ps();
    Index l = k0;
    for (; l + 8 <= k1; l += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + l), _mm256_loadu_ps(b + l),
                            acc);
    }
    float s = hsum1(acc);
    for (; l < k1; ++l) s += a[l] * b[l];
    c[j] = s;
  }
}

}  // namespace

void gemm_bt_avx2(const float* a, Index m, Index k, const float* b, Index n,
                  float* c) {
  for (Index i = 0; i < m; ++i) {
    gemm_bt_row_avx2(a + i * k, k, b, n, c + i * n);
  }
}

void gemm_bt_krange_avx2(const float* a, Index m, Index lda, Index k0,
                         Index k1, const float* b, Index ldb, Index n, float* c,
                         Index ldc) {
  for (Index i = 0; i < m; ++i) {
    gemm_bt_krange_row_avx2(a + i * lda, k0, k1, b, ldb, n, c + i * ldc);
  }
}

void qgemm_bt_avx2(const float* a, Index m, Index k, const std::int8_t* w,
                   const float* scales, Index groups_per_row, int group_size,
                   Index n, float* c) {
  for (Index i = 0; i < m; ++i) {
    qgemm_bt_row_avx2(a + i * k, k, w, scales, groups_per_row, group_size, n,
                      c + i * n);
  }
}

#else  // non-x86: unreachable stubs (cpu_supports_avx2() is false)

void gemm_bt_avx2(const float*, Index, Index, const float*, Index, float*) {
  std::fprintf(stderr, "llmfi: AVX2 kernel called on a non-x86 build\n");
  std::abort();
}

void gemm_bt_krange_avx2(const float*, Index, Index, Index, Index,
                         const float*, Index, Index, float*, Index) {
  std::fprintf(stderr, "llmfi: AVX2 kernel called on a non-x86 build\n");
  std::abort();
}

void qgemm_bt_avx2(const float*, Index, Index, const std::int8_t*,
                   const float*, Index, int, Index, float*) {
  std::fprintf(stderr, "llmfi: AVX2 kernel called on a non-x86 build\n");
  std::abort();
}

#endif

}  // namespace llmfi::tn::detail
