#pragma once
// Math kernels over fp32 tensors: GEMM (OpenMP-parallel), elementwise
// activations, normalization, softmax, and value-distribution statistics
// used by the propagation tracer and Fig 13.

#include <span>

#include "tensor/tensor.h"

namespace llmfi::tn {

// C[m,n] = A[m,k] @ B[k,n]. Zero elements of A may skip their update
// only when the corresponding B row is all-finite: 0 * inf and 0 * NaN
// are NaN contributions under IEEE semantics, and dropping them would
// mask corruption the fault studies need to see propagate.
Tensor matmul(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] @ B[n,k]^T. This is the Linear-layer form: weights are
// stored [out_features, in_features] so a memory fault in weight row `o`
// corrupts output column `o` for every token (the paper's Fig 5 pattern).
// Dispatches to the active kernel tier (tensor/kernels.h); the default
// Reference tier is matmul_bt_reference below.
Tensor matmul_bt(const Tensor& a, const Tensor& b);

// The naive sequential-reduction dot loop: the oracle tier every fast
// kernel is gated against ("fast ≡ reference", DESIGN.md §13).
Tensor matmul_bt_reference(const Tensor& a, const Tensor& b);

// C[n,k] = A[m,n]^T @ B[m,k]. Used by backward passes (dW = dY^T @ X).
// Same zero-skip-only-when-finite rule as matmul.
Tensor matmul_at(const Tensor& a, const Tensor& b);

// y += bias broadcast over rows. bias has b.numel() == y.cols().
void add_bias_rows(Tensor& y, const Tensor& bias);

// Elementwise helpers (shapes must match exactly).
void add_inplace(Tensor& y, const Tensor& x);
void mul_inplace(Tensor& y, const Tensor& x);
void scale_inplace(Tensor& y, float s);
Tensor add(const Tensor& a, const Tensor& b);

// SiLU (x * sigmoid(x)) applied elementwise, as in the Llama MLP.
void silu_inplace(Tensor& x);
float silu(float x);

// Numerically-stable softmax over each row, in place. Rows whose maximum
// is -inf (fully masked) become uniform-zero rows rather than NaN.
void softmax_rows_inplace(Tensor& x);

// RMSNorm over each row: y = x / rms(x) * gain. `gain` has cols entries.
// Non-finite inputs saturate the rms, which is exactly the error-masking
// behaviour the paper attributes to normalization layers (Fig 6).
Tensor rmsnorm_rows(const Tensor& x, const Tensor& gain, float eps = 1e-5f);

// Index of the max element of a row (ties -> lowest index).
Index argmax_row(const Tensor& x, Index r);

// log(sum(exp(row))) with the max-subtraction trick.
float logsumexp_row(const Tensor& x, Index r);

struct ValueStats {
  float min = 0.0f;
  float max = 0.0f;
  double mean = 0.0;
  double stddev = 0.0;
  Index non_finite = 0;
  Index extreme = 0;  // |v| > extreme_threshold or non-finite
};

// Summary statistics over all elements; `extreme_threshold` feeds the
// corruption maps of Figs 5-6.
ValueStats value_stats(const Tensor& x, float extreme_threshold = 1e4f);

// Histogram of values into `bins` equal-width buckets over [lo, hi];
// out-of-range values clamp to the edge buckets. Used for Fig 13.
std::vector<Index> histogram(std::span<const float> values, float lo,
                             float hi, int bins);

}  // namespace llmfi::tn
