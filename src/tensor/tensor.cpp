#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace llmfi::tn {

namespace {

Index checked_numel(const std::vector<Index>& shape) {
  Index n = 1;
  for (Index d : shape) {
    if (d < 0) throw std::invalid_argument("negative tensor dimension");
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<Index> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(checked_numel(shape_)), 0.0f) {}

Tensor Tensor::from_rows(Index rows, Index cols, std::vector<float> values) {
  if (static_cast<Index>(values.size()) != rows * cols) {
    throw std::invalid_argument("from_rows: value count does not match shape");
  }
  Tensor t({rows, cols});
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<Index> new_shape) const {
  if (checked_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

}  // namespace llmfi::tn
