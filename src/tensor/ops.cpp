#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "tensor/kernels.h"

namespace llmfi::tn {

namespace {

void check_2d(const Tensor& t, const char* what) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(what) + ": tensor must be 2-D");
  }
}

// Parallelize only when the work amortizes thread startup.
constexpr Index kParallelFlops = 1 << 16;

// Per-row all-finite flags for the accumulating GEMMs' zero-skip fast
// path. Skipping `0 * row` is only IEEE-legal when the row is known
// finite: 0 * inf and 0 * NaN are NaN contributions that the skip would
// silently drop, breaking the fault-propagation semantics documented on
// softmax_rows_inplace (a masked corruption would look like a masked
// fault in the campaign data).
std::vector<unsigned char> finite_rows(const float* p, Index rows,
                                       Index cols) {
  std::vector<unsigned char> finite(static_cast<size_t>(rows), 1);
  for (Index r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    for (Index j = 0; j < cols; ++j) {
      if (!std::isfinite(row[j])) {
        finite[static_cast<size_t>(r)] = 0;
        break;
      }
    }
  }
  return finite;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul lhs");
  check_2d(b, "matmul rhs");
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const auto b_finite = finite_rows(pb, k, n);
  const bool parallel = m * n * k >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (Index i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (Index l = 0; l < k; ++l) {
      const float av = pa[i * k + l];
      if (av == 0.0f && b_finite[static_cast<size_t>(l)]) continue;
      const float* brow = pb + l * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  return matmul_bt_tier(a, b, kernel_tier());
}

Tensor matmul_bt_reference(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_bt lhs");
  check_2d(b, "matmul_bt rhs");
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) {
    throw std::invalid_argument("matmul_bt: inner dim mismatch");
  }
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool parallel = m * n * k >= kParallelFlops;
  // Rows go through the shared out-of-line reference kernel so this
  // oracle, the fused Reference branch, and the tensor-parallel slices
  // all run one codegen of the same sequential reduction loop
  // (per-row results are scheduling-independent, so the OpenMP split
  // never changes bits).
#pragma omp parallel for schedule(static) if (parallel)
  for (Index i = 0; i < m; ++i) {
    detail::gemm_bt_reference_range(pa + i * k, 1, k, 0, k, pb, k, 0, n,
                                    pc + i * n, n);
  }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_at lhs");
  check_2d(b, "matmul_at rhs");
  const Index m = a.rows(), n = a.cols(), k = b.cols();
  if (b.rows() != m) {
    throw std::invalid_argument("matmul_at: inner dim mismatch");
  }
  Tensor c({n, k});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const auto b_finite = finite_rows(pb, m, k);
  const bool parallel = m * n * k >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (Index j = 0; j < n; ++j) {
    float* crow = pc + j * k;
    for (Index i = 0; i < m; ++i) {
      const float av = pa[i * n + j];
      if (av == 0.0f && b_finite[static_cast<size_t>(i)]) continue;
      const float* brow = pb + i * k;
      for (Index l = 0; l < k; ++l) crow[l] += av * brow[l];
    }
  }
  return c;
}

void add_bias_rows(Tensor& y, const Tensor& bias) {
  check_2d(y, "add_bias_rows");
  if (bias.numel() != y.cols()) {
    throw std::invalid_argument("add_bias_rows: bias size mismatch");
  }
  const Index m = y.rows(), n = y.cols();
  for (Index i = 0; i < m; ++i) {
    auto row = y.row(i);
    for (Index j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void add_inplace(Tensor& y, const Tensor& x) {
  if (y.numel() != x.numel()) {
    throw std::invalid_argument("add_inplace: size mismatch");
  }
  auto yf = y.flat();
  auto xf = x.flat();
  for (size_t i = 0; i < yf.size(); ++i) yf[i] += xf[i];
}

void mul_inplace(Tensor& y, const Tensor& x) {
  if (y.numel() != x.numel()) {
    throw std::invalid_argument("mul_inplace: size mismatch");
  }
  auto yf = y.flat();
  auto xf = x.flat();
  for (size_t i = 0; i < yf.size(); ++i) yf[i] *= xf[i];
}

void scale_inplace(Tensor& y, float s) {
  for (float& v : y.flat()) v *= s;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

float silu(float x) {
  // x / (1 + e^-x); for very negative x the result underflows to 0.
  return x / (1.0f + std::exp(-x));
}

void silu_inplace(Tensor& x) {
  for (float& v : x.flat()) v = silu(v);
}

void softmax_rows_inplace(Tensor& x) {
  check_2d(x, "softmax_rows");
  // IEEE-faithful semantics (matching PyTorch): a NaN anywhere in a row,
  // or a +inf (exp(inf - inf) = NaN), poisons the entire row with NaN.
  // Fault propagation through corrupted attention depends on this — see
  // the paper's distorted-output analysis (Fig 8).
  const Index m = x.rows();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (Index i = 0; i < m; ++i) {
    auto row = x.row(i);
    float mx = -std::numeric_limits<float>::infinity();
    bool poisoned = false;
    for (float v : row) {
      if (std::isnan(v)) poisoned = true;
      mx = std::max(mx, v);
    }
    if (poisoned || !std::isfinite(mx)) {
      std::fill(row.begin(), row.end(), nan);
      continue;
    }
    float sum = 0.0f;
    for (float& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (float& v : row) v *= inv;
  }
}

Tensor rmsnorm_rows(const Tensor& x, const Tensor& gain, float eps) {
  check_2d(x, "rmsnorm_rows");
  if (gain.numel() != x.cols()) {
    throw std::invalid_argument("rmsnorm_rows: gain size mismatch");
  }
  const Index m = x.rows(), n = x.cols();
  Tensor y({m, n});
  // Sum of squares accumulates in fp32, as GPU kernels do: a huge
  // corrupted element overflows ss to inf, 1/rms becomes 0, and finite
  // elements collapse to 0 (the Fig 6 masking effect) while inf/NaN
  // inputs propagate NaN (inf * 0 = NaN), as in PyTorch.
  for (Index i = 0; i < m; ++i) {
    auto in = x.row(i);
    auto out = y.row(i);
    float ss = 0.0f;
    for (float v : in) ss += v * v;
    const float rms = std::sqrt(ss / static_cast<float>(n) + eps);
    const float inv = 1.0f / rms;
    for (Index j = 0; j < n; ++j) {
      out[j] = in[j] * inv * gain[j];
    }
  }
  return y;
}

Index argmax_row(const Tensor& x, Index r) {
  auto row = x.row(r);
  // PyTorch argmax semantics: NaN compares as the greatest value, so a
  // NaN-poisoned logit row deterministically yields the first NaN index
  // — the mechanism behind "repeated meaningless tokens" distortions.
  Index best = 0;
  float best_v = row[0];
  for (Index j = 0; j < static_cast<Index>(row.size()); ++j) {
    const float v = row[static_cast<size_t>(j)];
    if (std::isnan(v)) return j;
    if (j > 0 && v > best_v) {
      best_v = v;
      best = j;
    }
  }
  return best;
}

float logsumexp_row(const Tensor& x, Index r) {
  auto row = x.row(r);
  float mx = -std::numeric_limits<float>::infinity();
  for (float v : row) mx = std::max(mx, v);
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (float v : row) sum += std::exp(static_cast<double>(v - mx));
  return mx + static_cast<float>(std::log(sum));
}

ValueStats value_stats(const Tensor& x, float extreme_threshold) {
  ValueStats s;
  if (x.numel() == 0) return s;
  s.min = std::numeric_limits<float>::infinity();
  s.max = -std::numeric_limits<float>::infinity();
  // Welford's online moments. The textbook sumsq/n - mean^2 form
  // cancels catastrophically when mean^2 >> variance — exactly the
  // large-mean corrupted-activation regime the range detector profiles
  // (a tensor shifted to ~1e6 by a fault would report stddev 0 or even
  // a negative variance clamped to 0). Welford subtracts the running
  // mean before squaring, so the accumulated m2 stays well-scaled.
  double mean = 0.0, m2 = 0.0;
  Index finite_count = 0;
  for (float v : x.flat()) {
    if (!std::isfinite(v)) {
      ++s.non_finite;
      ++s.extreme;
      continue;
    }
    if (std::fabs(v) > extreme_threshold) ++s.extreme;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    ++finite_count;
    const double delta = static_cast<double>(v) - mean;
    mean += delta / static_cast<double>(finite_count);
    m2 += delta * (static_cast<double>(v) - mean);
  }
  if (finite_count > 0) {
    s.mean = mean;
    s.stddev = std::sqrt(std::max(0.0, m2 / static_cast<double>(finite_count)));
  }
  return s;
}

std::vector<Index> histogram(std::span<const float> values, float lo,
                             float hi, int bins) {
  if (bins <= 0 || !(hi > lo)) {
    throw std::invalid_argument("histogram: invalid bin spec");
  }
  std::vector<Index> counts(static_cast<size_t>(bins), 0);
  const float width = (hi - lo) / static_cast<float>(bins);
  for (float v : values) {
    if (!std::isfinite(v)) continue;
    int b = static_cast<int>((v - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    ++counts[static_cast<size_t>(b)];
  }
  return counts;
}

}  // namespace llmfi::tn
