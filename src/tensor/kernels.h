#pragma once
// Tiered GEMM kernels (DESIGN.md §13).
//
// Three tiers compute the Linear-layer product C = A @ B^T:
//
//   Reference — the naive dot-product loop in ops.cpp. Fixed sequential
//               reduction order; the oracle every fault-injection
//               campaign runs on and every fast tier is gated against.
//   Portable  — register-blocked (4 B-rows x 8 source-level lanes)
//               C++ a vectorizing compiler turns into SIMD without any
//               target-specific intrinsics.
//   Avx2      — the same blocking written in AVX2/FMA intrinsics
//               (runtime CPUID-gated; compiled per-function with
//               __attribute__((target))), 8-wide FMA accumulators and a
//               4-way horizontal reduction per output block.
//
// The fast tiers change the reduction order (lane-parallel partial sums
// folded at the end), so their outputs drift from Reference by bounded
// rounding error; check_matmul_bt_gate() is the "fast ≡ reference"
// tolerance gate asserted by tests/test_kernels.cpp and the micro_perf
// kernel harness. The fused RMSNorm+matmul entry point preserves the
// per-element reduction order of its unfused pair exactly, so its gate
// is bit-identity at every tier.
//
// The process-wide active tier (kernel_tier()) defaults to Reference:
// campaigns inject faults on the reference tier so trial outcomes stay
// exactly reproducible across hosts with different SIMD capabilities.
// LLMFI_KERNEL=reference|portable|avx2|auto overrides at startup;
// set_kernel_tier() overrides at runtime (benches, serving).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace llmfi::tn {

enum class KernelTier : std::uint8_t { Reference = 0, Portable = 1, Avx2 = 2 };

const char* kernel_tier_name(KernelTier t);

// Parses "reference" | "portable" | "avx2" | "auto" into a tier ("auto"
// resolves to best_supported_tier()). Returns false on anything else.
bool parse_kernel_tier(const std::string& name, KernelTier* out);

// True when the CPU executing this process supports AVX2 and FMA.
bool cpu_supports_avx2();

// Fastest tier this host can execute: Avx2 when supported, else Portable.
KernelTier best_supported_tier();

// Process-wide tier used by tn::matmul_bt (and therefore every Linear
// layer). Initialized once from LLMFI_KERNEL (unset/empty -> Reference;
// junk aborts loudly, mirroring benchutil::env_int; "avx2" on a host
// without AVX2 warns and falls back to Portable).
KernelTier kernel_tier();

// Overrides the active tier. Throws std::invalid_argument for Avx2 on a
// host without AVX2/FMA support.
void set_kernel_tier(KernelTier t);

// RAII tier pin for tests and benches.
class ScopedKernelTier {
 public:
  explicit ScopedKernelTier(KernelTier t) : prev_(kernel_tier()) {
    set_kernel_tier(t);
  }
  ~ScopedKernelTier() { set_kernel_tier(prev_); }
  ScopedKernelTier(const ScopedKernelTier&) = delete;
  ScopedKernelTier& operator=(const ScopedKernelTier&) = delete;

 private:
  KernelTier prev_;
};

// C[m,n] = A[m,k] @ B[n,k]^T computed at a forced tier (ignores the
// process-wide setting; tn::matmul_bt is this at kernel_tier()).
Tensor matmul_bt_tier(const Tensor& a, const Tensor& b, KernelTier tier);

// Fused RMSNorm + input projections: ys[w] = rmsnorm(x, gain, eps) @
// ws[w]^T without materializing the normalized activation tensor. Each
// row is normalized once (identical float ops to rmsnorm_rows) into a
// scratch row that feeds every weight matrix while hot in cache — the
// block input-projection shape (norm1 -> wq/wk/wv, norm2 -> gate/up).
// Bit-identical to rmsnorm_rows followed by matmul_bt_tier at the same
// tier, which is exactly what the fusion gate asserts.
std::vector<Tensor> fused_rmsnorm_matmul_bt(const Tensor& x,
                                            const Tensor& gain, float eps,
                                            std::span<const Tensor* const> ws,
                                            KernelTier tier);

// "fast ≡ reference" tolerance gate. For every output element the
// reordered fp32 sum must stay inside the forward-error envelope of
// float summation:
//   |fast - ref| <= term_factor * eps * sum_l |A[i,l]| * |B[j,l]|
// (the condition-number bound: any summation order of k fp32 terms is
// within ~k*eps of any other, relative to the sum of |terms|). Elements
// where the reference is non-finite must be non-finite in fast too —
// SIMD reordering may turn inf into NaN but must never mask corruption.
struct KernelGateResult {
  Index violations = 0;     // elements outside the envelope
  double worst_excess = 0;  // worst |diff| / bound ratio observed
  bool ok() const { return violations == 0; }
};
KernelGateResult check_matmul_bt_gate(const Tensor& a, const Tensor& b,
                                      const Tensor& ref, const Tensor& fast,
                                      double term_factor = 64.0);

// Tensor-parallel kernel entry points (DESIGN.md §14). Both preserve
// the per-element reduction-order contract that makes sharded forward
// passes byte-identical to the serial oracle:
//
//   matmul_bt_cols computes the output-column slice [j0, j1) of
//   A @ B^T by calling the *same* per-tier kernel bodies as
//   matmul_bt_tier on the packed B-row subrange. When j0 is 4-aligned
//   the fast tiers' 4-row block grouping lands on the same elements as
//   in the full product, so the slice is bit-identical to those columns
//   of matmul_bt_tier — the column-parallel all-gather invariant.
//
//   matmul_bt_krange computes a partial product over the K-range
//   [k0, k1) into a caller-provided [m, n] buffer (B rows read at their
//   full stride ldb, so corrupted weight storage stays visible). Its
//   reduction order depends only on (tier, k-range): the segmented
//   row-parallel product calls it once per grid segment at every TP
//   degree, sharded or serial, and folds the partials in a fixed tree.
void matmul_bt_cols(const float* a, Index m, Index k, const float* b, Index j0,
                    Index j1, float* c, Index ldc, KernelTier tier);
void matmul_bt_krange(const float* a, Index m, Index lda, Index k0, Index k1,
                      const float* b, Index ldb, Index n, float* c, Index ldc,
                      KernelTier tier);

// Column slice of fused_rmsnorm_matmul_bt: computes output columns
// [j0, j1) of every projection, writing into cs[w] (row stride ldc) at
// column offset j0. Row normalization replicates the fused kernel
// float-for-float; the products go through matmul_bt_cols, so with
// 4-aligned j0 the slice is bit-identical to those columns of the full
// fused product.
void fused_rmsnorm_matmul_bt_cols(const Tensor& x, const Tensor& gain,
                                  float eps, std::span<const Tensor* const> ws,
                                  KernelTier tier, Index j0, Index j1,
                                  std::span<float* const> cs, Index ldc);

namespace detail {
// Raw-pointer kernels shared with the quantized matmul (qmatmul builds
// its AVX2 path on the same per-group primitives; raw signatures keep
// the tensor library free of quant types). All are single-row-
// deterministic: output element (i, j) has one fixed reduction order.
void gemm_bt_portable(const float* a, Index m, Index k, const float* b,
                      Index n, float* c);
void gemm_bt_avx2(const float* a, Index m, Index k, const float* b, Index n,
                  float* c);

// The Reference tier's naive sequential dot loop over an arbitrary
// K-range [k0, k1) and B-row range [j0, j1), with explicit strides.
// matmul_bt_reference, the fused Reference branch, and every sharded
// Reference slice/partial all route through this one (noinline) body,
// so the campaign oracle has exactly one codegen of its reduction loop.
void gemm_bt_reference_range(const float* a, Index m, Index lda, Index k0,
                             Index k1, const float* b, Index ldb, Index j0,
                             Index j1, float* c, Index ldc);

// K-range variants of the fast-tier kernels: same lane blocking as
// gemm_bt_portable / gemm_bt_avx2 but summing only l in [k0, k1), with
// A rows at stride lda and B rows at stride ldb. Used exclusively for
// the segmented row-parallel partials — their reduction order is fixed
// per (tier, k-range) and never compared against the full-K kernels.
void gemm_bt_krange_portable(const float* a, Index m, Index lda, Index k0,
                             Index k1, const float* b, Index ldb, Index n,
                             float* c, Index ldc);
void gemm_bt_krange_avx2(const float* a, Index m, Index lda, Index k0,
                         Index k1, const float* b, Index ldb, Index n, float* c,
                         Index ldc);

// Group-scaled integer GEMM: for each output (i, j),
//   c[i,j] = sum_g scales[j * groups_per_row + g] *
//            (sum_{l in group g} a[i,l] * w[j,l])
// with int8 payloads w (int4 payloads are stored sign-extended in int8).
void qgemm_bt_portable(const float* a, Index m, Index k,
                       const std::int8_t* w, const float* scales,
                       Index groups_per_row, int group_size, Index n,
                       float* c);
void qgemm_bt_avx2(const float* a, Index m, Index k, const std::int8_t* w,
                   const float* scales, Index groups_per_row, int group_size,
                   Index n, float* c);
}  // namespace detail

}  // namespace llmfi::tn
