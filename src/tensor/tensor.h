#pragma once
// Dense row-major fp32 tensor.
//
// All model math runs in fp32; reduced-precision storage (fp16/bf16/int8/
// int4) lives at module boundaries (weight storage, activation rounding)
// where the fault models operate. Keeping compute in fp32 mirrors GPU
// tensor-core pipelines (low-precision operands, fp32 accumulate).

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace llmfi::tn {

using Index = std::int64_t;

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<Index> shape);
  Tensor(std::initializer_list<Index> shape)
      : Tensor(std::vector<Index>(shape)) {}
  // 2-D convenience with explicit contents (row-major).
  static Tensor from_rows(Index rows, Index cols, std::vector<float> values);

  const std::vector<Index>& shape() const { return shape_; }
  Index dim(int axis) const { return shape_.at(static_cast<size_t>(axis)); }
  int rank() const { return static_cast<int>(shape_.size()); }
  Index numel() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  // 2-D accessors (the dominant case: [tokens, features] and
  // [out_features, in_features]).
  Index rows() const {
    assert(rank() == 2);
    return shape_[0];
  }
  Index cols() const {
    assert(rank() == 2);
    return shape_[1];
  }
  float& at(Index r, Index c) {
    assert(rank() == 2 && r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(Index r, Index c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  // 1-D / flat accessors.
  float& operator[](Index i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](Index i) const {
    return (*const_cast<Tensor*>(this))[i];
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Mutable view of row r of a 2-D tensor.
  std::span<float> row(Index r) {
    assert(rank() == 2 && r >= 0 && r < shape_[0]);
    return {data_.data() + r * shape_[1], static_cast<size_t>(shape_[1])};
  }
  std::span<const float> row(Index r) const {
    return const_cast<Tensor*>(this)->row(r);
  }

  void fill(float value);
  void zero() { fill(0.0f); }

  // Reinterpret the flat buffer with a new shape of equal element count.
  Tensor reshaped(std::vector<Index> new_shape) const;

  std::string shape_str() const;

 private:
  std::vector<Index> shape_;
  std::vector<float> data_;
};

}  // namespace llmfi::tn
