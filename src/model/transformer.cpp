#include "model/transformer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "numerics/half.h"
#include "nn/rope.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "quant/qmatmul.h"
#include "shard/parallel_linear.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace llmfi::model {

namespace {

// Stable softmax over a raw span with IEEE-faithful corruption
// semantics (see tn::softmax_rows_inplace): NaN or +inf anywhere
// poisons the whole distribution with NaN, exactly as PyTorch does.
void softmax_span(std::span<float> v) {
  float mx = -std::numeric_limits<float>::infinity();
  bool poisoned = false;
  for (float x : v) {
    if (std::isnan(x)) poisoned = true;
    mx = std::max(mx, x);
  }
  if (poisoned || !std::isfinite(mx)) {
    std::fill(v.begin(), v.end(),
              std::numeric_limits<float>::quiet_NaN());
    return;
  }
  float sum = 0.0f;
  for (float& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  const float inv = 1.0f / sum;
  for (float& x : v) x *= inv;
}

// Multi-head attention for ONE query row against `ctx` cached positions,
// restricted to heads [h0, h1). This is the shared per-row kernel of the
// sequential attention() loop, forward_batch(), and the tensor-parallel
// head-range split: one fixed reduction order per (head, output dim),
// independent of how many other rows — or shards — share the pass.
void attend_row(std::span<const float> qrow, std::span<float> orow,
                const nn::KvView& keys, const nn::KvView& values,
                tn::Index ctx, int h0, int h1, tn::Index d_head,
                std::vector<float>& scores) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
  scores.resize(static_cast<size_t>(ctx));
  for (int h = h0; h < h1; ++h) {
    const tn::Index off = static_cast<tn::Index>(h) * d_head;
    for (tn::Index j = 0; j < ctx; ++j) {
      const float* krow = keys.row(j);
      float acc = 0.0f;
      for (tn::Index i = 0; i < d_head; ++i) {
        acc += qrow[off + i] * krow[off + i];
      }
      scores[static_cast<size_t>(j)] = acc * scale;
    }
    softmax_span(scores);
    for (tn::Index i = 0; i < d_head; ++i) orow[off + i] = 0.0f;
    for (tn::Index j = 0; j < ctx; ++j) {
      const float p = scores[static_cast<size_t>(j)];
      if (p == 0.0f) continue;
      const float* vrow = values.row(j);
      for (tn::Index i = 0; i < d_head; ++i) {
        orow[off + i] += p * vrow[off + i];
      }
    }
  }
}

}  // namespace

InferenceModel::InferenceModel(const ModelWeights& w,
                               const PrecisionConfig& prec)
    : config_(w.config), prec_(prec) {
  embedding_ = w.embedding;
  round_activations(embedding_);
  final_norm_ = w.final_norm;

  const int group = prec.quant_group;
  blocks_.reserve(w.blocks.size());
  for (const auto& src : w.blocks) {
    BlockStorage blk{
        .norm1 = src.norm1,
        .norm2 = src.norm2,
        .wq = nn::WeightMatrix(src.wq, prec.weight_dtype, group),
        .wk = nn::WeightMatrix(src.wk, prec.weight_dtype, group),
        .wv = nn::WeightMatrix(src.wv, prec.weight_dtype, group),
        .wo = nn::WeightMatrix(src.wo, prec.weight_dtype, group),
        .mlp = {},
        .router = {},
        .experts = {},
    };
    if (config_.moe) {
      blk.router.emplace_back(src.router, prec.weight_dtype, group);
      blk.experts.reserve(src.experts.size());
      for (const auto& ex : src.experts) {
        blk.experts.push_back(ExpertStorage{
            nn::WeightMatrix(ex.gate, prec.weight_dtype, group),
            nn::WeightMatrix(ex.up, prec.weight_dtype, group),
            nn::WeightMatrix(ex.down, prec.weight_dtype, group)});
      }
    } else {
      blk.mlp.emplace_back(src.gate, prec.weight_dtype, group);
      blk.mlp.emplace_back(src.up, prec.weight_dtype, group);
      blk.mlp.emplace_back(src.down, prec.weight_dtype, group);
    }
    blocks_.push_back(std::move(blk));
  }

  build_linear_refs();
}

InferenceModel InferenceModel::clone() const {
  InferenceModel copy;
  copy.config_ = config_;
  copy.prec_ = prec_;
  copy.embedding_ = embedding_;
  copy.final_norm_ = final_norm_;
  copy.blocks_ = blocks_;
  copy.build_linear_refs();
  // Replicas keep the TP degree (with their own worker pool) — outputs
  // are TP-invariant, so this only preserves the perf shape.
  if (tp_ > 1) copy.set_tensor_parallel(tp_);
  return copy;
}

void InferenceModel::set_tensor_parallel(int n) {
  if (n < 1) n = 1;
  if (n > 1 && num::is_quantized_dtype(prec_.weight_dtype)) {
    std::fprintf(stderr,
                 "llmfi: tensor parallelism is unavailable for quantized "
                 "weight storage (the grouped integer product has no sharded "
                 "form); keeping TP=1\n");
    n = 1;
  }
  if (n == tp_ && (n == 1 || group_ != nullptr)) return;
  tp_ = n;
  group_ = n > 1 ? std::make_unique<shard::ShardGroup>(n) : nullptr;
}

// FI target registry (order: block-major, layer kind within block).
void InferenceModel::build_linear_refs() {
  linear_refs_.clear();
  for (int b = 0; b < static_cast<int>(blocks_.size()); ++b) {
    auto& blk = blocks_[static_cast<size_t>(b)];
    linear_refs_.push_back({{b, nn::LayerKind::QProj, -1}, &blk.wq});
    linear_refs_.push_back({{b, nn::LayerKind::KProj, -1}, &blk.wk});
    linear_refs_.push_back({{b, nn::LayerKind::VProj, -1}, &blk.wv});
    linear_refs_.push_back({{b, nn::LayerKind::OProj, -1}, &blk.wo});
    if (config_.moe) {
      linear_refs_.push_back({{b, nn::LayerKind::Router, -1}, &blk.router[0]});
      for (int e = 0; e < static_cast<int>(blk.experts.size()); ++e) {
        auto& ex = blk.experts[static_cast<size_t>(e)];
        linear_refs_.push_back({{b, nn::LayerKind::ExpertGate, e}, &ex.gate});
        linear_refs_.push_back({{b, nn::LayerKind::ExpertUp, e}, &ex.up});
        linear_refs_.push_back({{b, nn::LayerKind::ExpertDown, e}, &ex.down});
      }
    } else {
      linear_refs_.push_back({{b, nn::LayerKind::GateProj, -1}, &blk.mlp[0]});
      linear_refs_.push_back({{b, nn::LayerKind::UpProj, -1}, &blk.mlp[1]});
      linear_refs_.push_back({{b, nn::LayerKind::DownProj, -1}, &blk.mlp[2]});
    }
  }
}

nn::KvCache InferenceModel::make_cache() const {
  return nn::KvCache(config_.n_layers, config_.max_seq, config_.d_model);
}

nn::KvCache InferenceModel::make_cache(
    std::shared_ptr<nn::PagePool> pool) const {
  return nn::KvCache(config_.n_layers, config_.max_seq, config_.d_model,
                     std::move(pool));
}

void InferenceModel::round_activations(tn::Tensor& x) const {
  switch (prec_.act_dtype) {
    case num::DType::F32:
      return;
    case num::DType::F16:
      for (float& v : x.flat()) v = num::round_to_f16(v);
      return;
    case num::DType::BF16:
      for (float& v : x.flat()) v = num::round_to_bf16(v);
      return;
    default:
      return;  // quantized activations are not modeled
  }
}

tn::Tensor InferenceModel::project(const nn::WeightMatrix& w,
                                   const tn::Tensor& x) const {
  const tn::KernelTier tier = tn::kernel_tier();
  if (tier != tn::KernelTier::Reference && w.quantized() != nullptr) {
    return quant::qmatmul_bt(x, *w.quantized(), tier);
  }
  return tn::matmul_bt_tier(x, w.values(), tier);
}

tn::Tensor InferenceModel::project_tp(const nn::WeightMatrix& w,
                                      const tn::Tensor& x,
                                      const nn::LinearId& id, int pass_index,
                                      int row_offset,
                                      nn::ShardHook* shard_hook) {
  const tn::KernelTier tier = tn::kernel_tier();
  if (tier != tn::KernelTier::Reference && w.quantized() != nullptr) {
    // Quantized fast-tier products keep the grouped integer kernel.
    // Engines with quantized storage never shard (set_tensor_parallel
    // refuses), and tp faults observe only the fp32 product — campaigns
    // run the Reference tier, which takes the segmented path below.
    return quant::qmatmul_bt(x, *w.quantized(), tier);
  }
  switch (id.kind) {
    case nn::LayerKind::OProj:
    case nn::LayerKind::DownProj:
      // Row-parallel at *every* TP degree: the segmented K-split and
      // its fixed-order tree reduce ARE the engine's numerics for these
      // two products (DESIGN.md §14) — sharding only reassigns which
      // thread computes each segment, so TP never changes bits.
      return shard::RowParallelLinear::run(group_.get(), x, w.values(), tier,
                                           shard_hook, id, pass_index,
                                           row_offset);
    case nn::LayerKind::QProj:
    case nn::LayerKind::KProj:
    case nn::LayerKind::VProj:
    case nn::LayerKind::GateProj:
    case nn::LayerKind::UpProj:
      // Column-parallel when a group is attached; the slice kernels are
      // bit-identical to the unsharded product.
      if (group_ != nullptr) {
        return shard::ColumnParallelLinear::run(group_.get(), x, w.values(),
                                                tier);
      }
      return tn::matmul_bt_tier(x, w.values(), tier);
    default:
      // Router and expert MLPs stay replicated: expert products are
      // tiny per-token [1, d] slices where a barrier would dominate.
      return tn::matmul_bt_tier(x, w.values(), tier);
  }
}

bool InferenceModel::fuse_eligible() const {
  // Quantized weights are excluded so the fast tiers keep routing them
  // through the integer qmatmul path rather than the fused fp32 product.
  // An armed shard hook also disables fusion: tp faults need the
  // unfused per-layer dispatch to fire inside the down projection.
  return hook_ == nullptr && !tracer_ && shard_hook_ == nullptr &&
         prec_.act_dtype == num::DType::F32 &&
         !num::is_quantized_dtype(prec_.weight_dtype);
}

void InferenceModel::qkv_fused(BlockStorage& blk, const tn::Tensor& x,
                               tn::Tensor* q, tn::Tensor* k,
                               tn::Tensor* v) const {
  const tn::Tensor* ws[3] = {&blk.wq.values(), &blk.wk.values(),
                             &blk.wv.values()};
  auto ys = shard::ColumnParallelLinear::run_fused(
      group_.get(), x, blk.norm1, config_.norm_eps, ws, tn::kernel_tier());
  *q = std::move(ys[0]);
  *k = std::move(ys[1]);
  *v = std::move(ys[2]);
}

tn::Tensor InferenceModel::dense_mlp_fused(BlockStorage& blk, int block_idx,
                                           const tn::Tensor& x) {
  const tn::Tensor* ws[2] = {&blk.mlp[0].values(), &blk.mlp[1].values()};
  auto ys = shard::ColumnParallelLinear::run_fused(
      group_.get(), x, blk.norm2, config_.norm_eps, ws, tn::kernel_tier());
  tn::Tensor& g = ys[0];
  tn::silu_inplace(g);
  tn::mul_inplace(g, ys[1]);
  // Fusion requires shard_hook_ == nullptr (fuse_eligible), so the down
  // product here never fires it.
  return project_tp(blk.mlp[2], g, {block_idx, nn::LayerKind::DownProj, -1}, 0,
                    0, nullptr);
}

tn::Tensor InferenceModel::linear(const nn::WeightMatrix& w,
                                  const tn::Tensor& x, const nn::LinearId& id,
                                  int pass_index, int row_offset) {
  tn::Tensor y = project_tp(w, x, id, pass_index, row_offset, shard_hook_);
  round_activations(y);
  if (hook_ != nullptr) hook_->on_linear(id, x, w, y, pass_index, row_offset);
  if (tracer_) tracer_(id, y);
  return y;
}

tn::Tensor InferenceModel::linear_hooked(const nn::WeightMatrix& w,
                                         const tn::Tensor& x,
                                         const nn::LinearId& id,
                                         int pass_index, int row_offset,
                                         nn::LinearHook* hook) {
  tn::Tensor y = project_tp(w, x, id, pass_index, row_offset, nullptr);
  round_activations(y);
  if (hook != nullptr) hook->on_linear(id, x, w, y, pass_index, row_offset);
  return y;
}

tn::Tensor InferenceModel::linear_batch(const nn::WeightMatrix& w,
                                        const tn::Tensor& x,
                                        const nn::LinearId& id,
                                        std::span<BatchRow> rows,
                                        std::span<const int> pos) {
  // The engine shard hook is NOT fired on the batch path (mirroring the
  // engine linear hook/tracer): tp-fault campaigns run sequential
  // trials. The product itself is the same segmented/sharded dispatch,
  // so batch rows stay bit-identical to sequential decode.
  tn::Tensor y = project_tp(w, x, id, 0, 0, nullptr);
  round_activations(y);
  // Per-row hook dispatch: each hooked row is copied into 1-row scratch
  // tensors so the hook sees the same shapes, pass_index, and row_offset
  // as in a single-sequence decode pass (rows()==1 makes the injector's
  // row_frac resolution land on row 0 either way). Mutations the hook
  // makes to its y view are copied back into the batch.
  for (size_t r = 0; r < rows.size(); ++r) {
    nn::LinearHook* hook = rows[r].hook;
    if (hook == nullptr) continue;
    // Attribute anything the hook records (injections, detector trips)
    // to the request owning row r — see obs::RowContextGuard in the
    // serve layer. Observation-only: never read by the dispatch itself.
    obs::RowContextScope rctx(static_cast<int>(r));
    const auto t = static_cast<tn::Index>(r);
    tn::Tensor xrow({1, x.cols()});
    tn::Tensor yrow({1, y.cols()});
    auto xs = x.row(t);
    auto ys = y.row(t);
    std::copy(xs.begin(), xs.end(), xrow.row(0).begin());
    std::copy(ys.begin(), ys.end(), yrow.row(0).begin());
    hook->on_linear(id, xrow, w, yrow, rows[r].pass_index,
                    pos[r]);
    auto yd = yrow.row(0);
    std::copy(yd.begin(), yd.end(), y.row(t).begin());
  }
  return y;
}

tn::Tensor InferenceModel::attention(const tn::Tensor& q, int block,
                                     const nn::KvCache& cache,
                                     tn::Index prev_len) const {
  const tn::Index t_new = q.rows();
  // Views are taken after this block's appends: a paged append may have
  // acquired or copy-on-write-remapped pages.
  const nn::KvView keys = cache.key_view(block);
  const nn::KvView values = cache.value_view(block);

  tn::Tensor out({t_new, q.cols()});
  if (group_ == nullptr || group_->size() < 2) {
    std::vector<float> scores;
    for (tn::Index t = 0; t < t_new; ++t) {
      const tn::Index ctx = prev_len + t + 1;  // causal: positions 0..abs
      attend_row(q.row(t), out.row(t), keys, values, ctx, 0, config_.n_heads,
                 config_.d_head(), scores);
    }
  } else {
    // Head-parallel: shard s computes heads [hb[s], hb[s+1]) of every
    // row — per-head math is untouched, so the split is bit-exact.
    const std::vector<int> hb =
        shard::head_bounds(config_.n_heads, group_->size());
    group_->run([&](int s) {
      std::vector<float> scores;
      for (tn::Index t = 0; t < t_new; ++t) {
        const tn::Index ctx = prev_len + t + 1;
        attend_row(q.row(t), out.row(t), keys, values, ctx,
                   hb[static_cast<size_t>(s)], hb[static_cast<size_t>(s) + 1],
                   config_.d_head(), scores);
      }
    });
  }
  return out;
}

tn::Tensor InferenceModel::dense_mlp(BlockStorage& blk, int block_idx,
                                     const tn::Tensor& h, int pass_index,
                                     int row_offset) {
  tn::Tensor g = linear(blk.mlp[0], h, {block_idx, nn::LayerKind::GateProj, -1},
                        pass_index, row_offset);
  tn::Tensor u = linear(blk.mlp[1], h, {block_idx, nn::LayerKind::UpProj, -1},
                        pass_index, row_offset);
  tn::silu_inplace(g);
  tn::mul_inplace(g, u);
  round_activations(g);
  return linear(blk.mlp[2], g, {block_idx, nn::LayerKind::DownProj, -1},
                pass_index, row_offset);
}

tn::Tensor InferenceModel::moe_mlp(BlockStorage& blk, int block_idx,
                                   const tn::Tensor& h, int pass_index,
                                   int row_offset) {
  const int n_experts = config_.n_experts;
  const int top_k = config_.top_k;
  tn::Tensor router_logits =
      linear(blk.router[0], h, {block_idx, nn::LayerKind::Router, -1},
             pass_index, row_offset);

  tn::Tensor out({h.rows(), h.cols()});
  std::vector<float> probs(static_cast<size_t>(n_experts));
  std::vector<int> order(static_cast<size_t>(n_experts));
  std::vector<int> chosen;
  for (tn::Index t = 0; t < h.rows(); ++t) {
    auto lrow = router_logits.row(t);
    std::copy(lrow.begin(), lrow.end(), probs.begin());
    softmax_span(probs);
    for (int e = 0; e < n_experts; ++e) order[static_cast<size_t>(e)] = e;
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&probs](int a, int b) {
                        return probs[static_cast<size_t>(a)] >
                               probs[static_cast<size_t>(b)];
                      });
    chosen.assign(order.begin(), order.begin() + top_k);
    if (expert_obs_ != nullptr) {
      expert_obs_->on_expert_selection(
          block_idx, row_offset + static_cast<int>(t), chosen);
    }
    float mass = 0.0f;
    for (int e : chosen) mass += probs[static_cast<size_t>(e)];
    if (mass <= 0.0f) mass = 1.0f;

    // Single-token view of h for the expert MLPs.
    tn::Tensor hrow({1, h.cols()});
    auto hsrc = h.row(t);
    std::copy(hsrc.begin(), hsrc.end(), hrow.row(0).begin());

    auto orow = out.row(t);
    for (int rank = 0; rank < top_k; ++rank) {
      const int e = chosen[static_cast<size_t>(rank)];
      auto& ex = blk.experts[static_cast<size_t>(e)];
      const float weight = probs[static_cast<size_t>(e)] / mass;
      tn::Tensor g =
          linear(ex.gate, hrow, {block_idx, nn::LayerKind::ExpertGate, e},
                 pass_index, row_offset + static_cast<int>(t));
      tn::Tensor u =
          linear(ex.up, hrow, {block_idx, nn::LayerKind::ExpertUp, e},
                 pass_index, row_offset + static_cast<int>(t));
      tn::silu_inplace(g);
      tn::mul_inplace(g, u);
      round_activations(g);
      tn::Tensor d =
          linear(ex.down, g, {block_idx, nn::LayerKind::ExpertDown, e},
                 pass_index, row_offset + static_cast<int>(t));
      auto drow = d.row(0);
      for (tn::Index j = 0; j < h.cols(); ++j) orow[j] += weight * drow[j];
    }
  }
  round_activations(out);
  return out;
}

tn::Tensor InferenceModel::dense_mlp_batch(BlockStorage& blk, int block_idx,
                                           const tn::Tensor& h,
                                           std::span<BatchRow> rows,
                                           std::span<const int> pos) {
  tn::Tensor g = linear_batch(blk.mlp[0], h,
                              {block_idx, nn::LayerKind::GateProj, -1}, rows,
                              pos);
  tn::Tensor u = linear_batch(blk.mlp[1], h,
                              {block_idx, nn::LayerKind::UpProj, -1}, rows,
                              pos);
  tn::silu_inplace(g);
  tn::mul_inplace(g, u);
  round_activations(g);
  return linear_batch(blk.mlp[2], g,
                      {block_idx, nn::LayerKind::DownProj, -1}, rows, pos);
}

tn::Tensor InferenceModel::moe_mlp_batch(BlockStorage& blk, int block_idx,
                                         const tn::Tensor& h,
                                         std::span<BatchRow> rows,
                                         std::span<const int> pos) {
  const int n_experts = config_.n_experts;
  const int top_k = config_.top_k;
  tn::Tensor router_logits = linear_batch(
      blk.router[0], h, {block_idx, nn::LayerKind::Router, -1}, rows, pos);

  // From here the sequential path is already per-row (router softmax,
  // top-k, and every expert linear run on single-token views), so the
  // batch variant only swaps in each row's own hook and position.
  tn::Tensor out({h.rows(), h.cols()});
  std::vector<float> probs(static_cast<size_t>(n_experts));
  std::vector<int> order(static_cast<size_t>(n_experts));
  std::vector<int> chosen;
  for (tn::Index t = 0; t < h.rows(); ++t) {
    const auto r = static_cast<size_t>(t);
    // Row context for the per-row expert linears below (same contract as
    // the linear_batch per-row dispatch).
    obs::RowContextScope rctx(static_cast<int>(t));
    auto lrow = router_logits.row(t);
    std::copy(lrow.begin(), lrow.end(), probs.begin());
    softmax_span(probs);
    for (int e = 0; e < n_experts; ++e) order[static_cast<size_t>(e)] = e;
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&probs](int a, int b) {
                        return probs[static_cast<size_t>(a)] >
                               probs[static_cast<size_t>(b)];
                      });
    chosen.assign(order.begin(), order.begin() + top_k);
    if (expert_obs_ != nullptr) {
      expert_obs_->on_expert_selection(block_idx, pos[r], chosen);
    }
    float mass = 0.0f;
    for (int e : chosen) mass += probs[static_cast<size_t>(e)];
    if (mass <= 0.0f) mass = 1.0f;

    tn::Tensor hrow({1, h.cols()});
    auto hsrc = h.row(t);
    std::copy(hsrc.begin(), hsrc.end(), hrow.row(0).begin());

    auto orow = out.row(t);
    for (int rank = 0; rank < top_k; ++rank) {
      const int e = chosen[static_cast<size_t>(rank)];
      auto& ex = blk.experts[static_cast<size_t>(e)];
      const float weight = probs[static_cast<size_t>(e)] / mass;
      tn::Tensor g = linear_hooked(ex.gate, hrow,
                                   {block_idx, nn::LayerKind::ExpertGate, e},
                                   rows[r].pass_index, pos[r], rows[r].hook);
      tn::Tensor u = linear_hooked(ex.up, hrow,
                                   {block_idx, nn::LayerKind::ExpertUp, e},
                                   rows[r].pass_index, pos[r], rows[r].hook);
      tn::silu_inplace(g);
      tn::mul_inplace(g, u);
      round_activations(g);
      tn::Tensor d = linear_hooked(ex.down, g,
                                   {block_idx, nn::LayerKind::ExpertDown, e},
                                   rows[r].pass_index, pos[r], rows[r].hook);
      auto drow = d.row(0);
      for (tn::Index j = 0; j < h.cols(); ++j) orow[j] += weight * drow[j];
    }
  }
  round_activations(out);
  return out;
}

tn::Tensor InferenceModel::forward_batch(std::span<BatchRow> rows) {
  const auto t_new = static_cast<tn::Index>(rows.size());
  assert(t_new > 0);
  const tn::Index d = config_.d_model;

  // Row r's absolute position is its own cache length; captured once
  // because appends below do not advance the caches until the pass ends.
  std::vector<int> pos(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    pos[r] = static_cast<int>(rows[r].cache->length());
  }

  tn::Tensor x({t_new, d});
  for (tn::Index t = 0; t < t_new; ++t) {
    const auto id = rows[static_cast<size_t>(t)].token;
    assert(id >= 0 && id < config_.vocab_size);
    auto src = embedding_.row(id);
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  // Batched fusion eligibility is per-pass: every row must be unhooked
  // (a single armed fault hook needs the unfused per-row dispatch).
  bool any_hook = false;
  for (const auto& r : rows) any_hook = any_hook || r.hook != nullptr;
  const bool fuse = !any_hook && shard_hook_ == nullptr &&
                    prec_.act_dtype == num::DType::F32 &&
                    !num::is_quantized_dtype(prec_.weight_dtype);
  for (int b = 0; b < config_.n_layers; ++b) {
    auto& blk = blocks_[static_cast<size_t>(b)];
    {
      obs::TraceScope attn_span("attn", b);
      tn::Tensor q, k, v;
      if (fuse) {
        qkv_fused(blk, x, &q, &k, &v);
      } else {
        tn::Tensor h = tn::rmsnorm_rows(x, blk.norm1, config_.norm_eps);
        round_activations(h);
        q = linear_batch(blk.wq, h, {b, nn::LayerKind::QProj, -1}, rows, pos);
        k = linear_batch(blk.wk, h, {b, nn::LayerKind::KProj, -1}, rows, pos);
        v = linear_batch(blk.wv, h, {b, nn::LayerKind::VProj, -1}, rows, pos);
      }
      nn::apply_rope_rows(q, config_.n_heads, pos, config_.rope_theta);
      nn::apply_rope_rows(k, config_.n_heads, pos, config_.rope_theta);
      for (tn::Index t = 0; t < t_new; ++t) {
        rows[static_cast<size_t>(t)].cache->append_row(b, k.row(t), v.row(t));
      }

      // Views are captured once on the driver (the appends above may
      // have remapped pages); shards then read them concurrently.
      std::vector<nn::KvView> kviews, vviews;
      kviews.reserve(rows.size());
      vviews.reserve(rows.size());
      for (const auto& r : rows) {
        kviews.push_back(r.cache->key_view(b));
        vviews.push_back(r.cache->value_view(b));
      }
      tn::Tensor attn({t_new, d});
      if (group_ == nullptr || group_->size() < 2) {
        std::vector<float> scores;
        for (tn::Index t = 0; t < t_new; ++t) {
          const auto r = static_cast<size_t>(t);
          const tn::Index ctx = static_cast<tn::Index>(pos[r]) + 1;
          attend_row(q.row(t), attn.row(t), kviews[r], vviews[r], ctx, 0,
                     config_.n_heads, config_.d_head(), scores);
        }
      } else {
        const std::vector<int> hb =
            shard::head_bounds(config_.n_heads, group_->size());
        group_->run([&](int s) {
          std::vector<float> scores;
          for (tn::Index t = 0; t < t_new; ++t) {
            const auto r = static_cast<size_t>(t);
            const tn::Index ctx = static_cast<tn::Index>(pos[r]) + 1;
            attend_row(q.row(t), attn.row(t), kviews[r], vviews[r], ctx,
                       hb[static_cast<size_t>(s)],
                       hb[static_cast<size_t>(s) + 1], config_.d_head(),
                       scores);
          }
        });
      }
      round_activations(attn);
      tn::Tensor o =
          linear_batch(blk.wo, attn, {b, nn::LayerKind::OProj, -1}, rows, pos);
      tn::add_inplace(x, o);
    }

    {
      obs::TraceScope ffn_span("ffn", b);
      tn::Tensor m;
      if (fuse && !config_.moe) {
        m = dense_mlp_fused(blk, b, x);
      } else {
        tn::Tensor h2 = tn::rmsnorm_rows(x, blk.norm2, config_.norm_eps);
        round_activations(h2);
        m = config_.moe ? moe_mlp_batch(blk, b, h2, rows, pos)
                        : dense_mlp_batch(blk, b, h2, rows, pos);
      }
      tn::add_inplace(x, m);
    }
  }
  for (auto& r : rows) r.cache->advance(1);

  tn::Tensor xf = tn::rmsnorm_rows(x, final_norm_, config_.norm_eps);
  round_activations(xf);
  tn::Tensor logits = tn::matmul_bt(xf, embedding_);
  for (tn::Index t = 0; t < t_new; ++t) {
    for (float v2 : logits.row(t)) {
      if (!std::isfinite(v2)) {
        rows[static_cast<size_t>(t)].nonfinite = true;
        break;
      }
    }
  }
  return logits;
}

tn::Tensor InferenceModel::forward(std::span<const tok::TokenId> tokens,
                                   nn::KvCache& cache, int pass_index) {
  const auto t_new = static_cast<tn::Index>(tokens.size());
  assert(t_new > 0);
  const tn::Index d = config_.d_model;
  const tn::Index prev_len = cache.length();
  const int row_offset = static_cast<int>(prev_len);

  tn::Tensor x({t_new, d});
  for (tn::Index t = 0; t < t_new; ++t) {
    const auto id = tokens[static_cast<size_t>(t)];
    assert(id >= 0 && id < config_.vocab_size);
    auto src = embedding_.row(id);
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  // When nothing observes the normalized intermediates, norm1/norm2 fuse
  // with their input projections (bit-identical to the unfused pair at
  // every kernel tier — see fused_rmsnorm_matmul_bt).
  const bool fuse = fuse_eligible();
  for (int b = 0; b < config_.n_layers; ++b) {
    auto& blk = blocks_[static_cast<size_t>(b)];
    {
      obs::TraceScope attn_span("attn", b);
      tn::Tensor q, k, v;
      if (fuse) {
        qkv_fused(blk, x, &q, &k, &v);
      } else {
        tn::Tensor h = tn::rmsnorm_rows(x, blk.norm1, config_.norm_eps);
        round_activations(h);
        q = linear(blk.wq, h, {b, nn::LayerKind::QProj, -1}, pass_index,
                   row_offset);
        k = linear(blk.wk, h, {b, nn::LayerKind::KProj, -1}, pass_index,
                   row_offset);
        v = linear(blk.wv, h, {b, nn::LayerKind::VProj, -1}, pass_index,
                   row_offset);
      }
      nn::apply_rope(q, config_.n_heads, static_cast<int>(prev_len),
                     config_.rope_theta);
      nn::apply_rope(k, config_.n_heads, static_cast<int>(prev_len),
                     config_.rope_theta);
      cache.append(b, k, v);

      tn::Tensor attn = attention(q, b, cache, prev_len);
      round_activations(attn);
      tn::Tensor o = linear(blk.wo, attn, {b, nn::LayerKind::OProj, -1},
                            pass_index, row_offset);
      tn::add_inplace(x, o);
    }

    {
      obs::TraceScope ffn_span("ffn", b);
      tn::Tensor m;
      if (fuse && !config_.moe) {
        m = dense_mlp_fused(blk, b, x);
      } else {
        tn::Tensor h2 = tn::rmsnorm_rows(x, blk.norm2, config_.norm_eps);
        round_activations(h2);
        m = config_.moe ? moe_mlp(blk, b, h2, pass_index, row_offset)
                        : dense_mlp(blk, b, h2, pass_index, row_offset);
      }
      tn::add_inplace(x, m);
    }
  }
  cache.advance(t_new);

  tn::Tensor xf = tn::rmsnorm_rows(x, final_norm_, config_.norm_eps);
  round_activations(xf);
  tn::Tensor logits = tn::matmul_bt(xf, embedding_);
  for (float v2 : logits.flat()) {
    if (!std::isfinite(v2)) {
      saw_nonfinite_logits_ = true;
      break;
    }
  }
  return logits;
}

}  // namespace llmfi::model
