#pragma once
// Model architecture configuration and the "model family" presets that
// stand in for the paper's general-purpose LLMs.

#include <cstdint>
#include <string>

#include "numerics/dtype.h"

namespace llmfi::model {

enum class InitStyle : std::uint8_t {
  Normal002,    // N(0, 0.02)  — family "aquila" (Llama3.1 analog)
  Normal003,    // N(0, 0.03)  — family "qilin"  (Qwen2.5 analog)
  UniformWide,  // U(-0.06, 0.06) — family "falco" (Falcon3 analog)
};

struct ModelConfig {
  int vocab_size = 0;
  int d_model = 48;
  int n_layers = 2;
  int n_heads = 4;
  int d_ff = 96;
  // MoE (paper §4.2.3). When enabled the MLP of every block is replaced
  // by a router + n_experts expert MLPs with top_k routing.
  bool moe = false;
  int n_experts = 8;
  int top_k = 2;
  float rope_theta = 10000.0f;
  int max_seq = 160;
  float norm_eps = 1e-5f;

  // Provenance (not architectural): family tag and training seed; they
  // participate in the cache key so differently-trained models never
  // collide.
  std::string family = "aquila";
  InitStyle init = InitStyle::Normal002;
  std::uint64_t seed = 11;

  int d_head() const { return d_model / n_heads; }
  // Total fp32 parameter count (embedding is tied to the LM head).
  std::int64_t num_params() const;
  // Stable content hash for checkpoint caching.
  std::uint64_t config_hash() const;
};

// Inference-time storage options (orthogonal to trained weights).
struct PrecisionConfig {
  num::DType weight_dtype = num::DType::F32;
  num::DType act_dtype = num::DType::F32;
  int quant_group = 32;

  static PrecisionConfig for_dtype(num::DType t) {
    PrecisionConfig p;
    p.weight_dtype = t;
    // Quantized weights pair with fp16 activations, as in GPTQ serving.
    p.act_dtype = num::is_quantized_dtype(t) ? num::DType::F16 : t;
    return p;
  }
};

// The three general-purpose families of the study.
ModelConfig family_config(const std::string& family, int vocab_size);

}  // namespace llmfi::model
