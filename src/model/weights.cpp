#include "model/weights.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace llmfi::model {

namespace {

constexpr std::uint64_t kMagic = 0x4C4C4D46492D4B31ull;  // "LLMFI-K1"

void init_tensor(tn::Tensor& t, InitStyle style, num::Rng& rng) {
  switch (style) {
    case InitStyle::Normal002:
      for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 0.02));
      break;
    case InitStyle::Normal003:
      for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 0.03));
      break;
    case InitStyle::UniformWide:
      for (float& v : t.flat()) {
        v = static_cast<float>((rng.uniform() * 2.0 - 1.0) * 0.06);
      }
      break;
  }
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_tensor(std::ostream& os, const tn::Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    write_u64(os, static_cast<std::uint64_t>(t.dim(i)));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

tn::Tensor read_tensor(std::istream& is) {
  const auto rank = static_cast<int>(read_u64(is));
  std::vector<tn::Index> shape(static_cast<size_t>(rank));
  for (auto& d : shape) d = static_cast<tn::Index>(read_u64(is));
  tn::Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("checkpoint truncated");
  return t;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_u64(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

}  // namespace

ModelWeights ModelWeights::init(const ModelConfig& cfg) {
  ModelWeights w;
  w.config = cfg;
  num::Rng rng(cfg.seed * 0x9E3779B9ull + 7);
  const tn::Index d = cfg.d_model, ff = cfg.d_ff, v = cfg.vocab_size;

  w.embedding = tn::Tensor({v, d});
  init_tensor(w.embedding, cfg.init, rng);

  w.blocks.resize(static_cast<size_t>(cfg.n_layers));
  for (auto& blk : w.blocks) {
    blk.norm1 = tn::Tensor({d});
    blk.norm1.fill(1.0f);
    blk.norm2 = tn::Tensor({d});
    blk.norm2.fill(1.0f);
    for (tn::Tensor* m : {&blk.wq, &blk.wk, &blk.wv, &blk.wo}) {
      *m = tn::Tensor({d, d});
      init_tensor(*m, cfg.init, rng);
    }
    if (cfg.moe) {
      blk.router = tn::Tensor({static_cast<tn::Index>(cfg.n_experts), d});
      init_tensor(blk.router, cfg.init, rng);
      blk.experts.resize(static_cast<size_t>(cfg.n_experts));
      for (auto& ex : blk.experts) {
        ex.gate = tn::Tensor({ff, d});
        ex.up = tn::Tensor({ff, d});
        ex.down = tn::Tensor({d, ff});
        init_tensor(ex.gate, cfg.init, rng);
        init_tensor(ex.up, cfg.init, rng);
        init_tensor(ex.down, cfg.init, rng);
      }
    } else {
      blk.gate = tn::Tensor({ff, d});
      blk.up = tn::Tensor({ff, d});
      blk.down = tn::Tensor({d, ff});
      init_tensor(blk.gate, cfg.init, rng);
      init_tensor(blk.up, cfg.init, rng);
      init_tensor(blk.down, cfg.init, rng);
    }
  }
  w.final_norm = tn::Tensor({d});
  w.final_norm.fill(1.0f);
  return w;
}

void ModelWeights::for_each_param(
    const std::function<void(const std::string&, tn::Tensor&)>& fn) {
  fn("embedding", embedding);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const std::string p = "blk" + std::to_string(b) + ".";
    auto& blk = blocks[b];
    fn(p + "norm1", blk.norm1);
    fn(p + "wq", blk.wq);
    fn(p + "wk", blk.wk);
    fn(p + "wv", blk.wv);
    fn(p + "wo", blk.wo);
    fn(p + "norm2", blk.norm2);
    if (config.moe) {
      fn(p + "router", blk.router);
      for (size_t e = 0; e < blk.experts.size(); ++e) {
        const std::string ep = p + "ex" + std::to_string(e) + ".";
        fn(ep + "gate", blk.experts[e].gate);
        fn(ep + "up", blk.experts[e].up);
        fn(ep + "down", blk.experts[e].down);
      }
    } else {
      fn(p + "gate", blk.gate);
      fn(p + "up", blk.up);
      fn(p + "down", blk.down);
    }
  }
  fn("final_norm", final_norm);
}

void ModelWeights::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open checkpoint for write: " + path);
  write_u64(os, kMagic);
  write_u64(os, static_cast<std::uint64_t>(config.vocab_size));
  write_u64(os, static_cast<std::uint64_t>(config.d_model));
  write_u64(os, static_cast<std::uint64_t>(config.n_layers));
  write_u64(os, static_cast<std::uint64_t>(config.n_heads));
  write_u64(os, static_cast<std::uint64_t>(config.d_ff));
  write_u64(os, config.moe ? 1 : 0);
  write_u64(os, static_cast<std::uint64_t>(config.n_experts));
  write_u64(os, static_cast<std::uint64_t>(config.top_k));
  write_u64(os, static_cast<std::uint64_t>(config.init));
  write_u64(os, config.seed);
  write_string(os, config.family);
  auto* self = const_cast<ModelWeights*>(this);
  self->for_each_param(
      [&os](const std::string&, tn::Tensor& t) { write_tensor(os, t); });
  if (!os) throw std::runtime_error("checkpoint write failed: " + path);
}

ModelWeights ModelWeights::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open checkpoint: " + path);
  if (read_u64(is) != kMagic) {
    throw std::runtime_error("bad checkpoint magic: " + path);
  }
  ModelConfig cfg;
  cfg.vocab_size = static_cast<int>(read_u64(is));
  cfg.d_model = static_cast<int>(read_u64(is));
  cfg.n_layers = static_cast<int>(read_u64(is));
  cfg.n_heads = static_cast<int>(read_u64(is));
  cfg.d_ff = static_cast<int>(read_u64(is));
  cfg.moe = read_u64(is) != 0;
  cfg.n_experts = static_cast<int>(read_u64(is));
  cfg.top_k = static_cast<int>(read_u64(is));
  cfg.init = static_cast<InitStyle>(read_u64(is));
  cfg.seed = read_u64(is);
  cfg.family = read_string(is);

  ModelWeights w = ModelWeights::init(cfg);
  w.for_each_param([&is](const std::string&, tn::Tensor& t) {
    tn::Tensor loaded = read_tensor(is);
    if (loaded.shape() != t.shape()) {
      throw std::runtime_error("checkpoint shape mismatch");
    }
    t = std::move(loaded);
  });
  return w;
}

}  // namespace llmfi::model
