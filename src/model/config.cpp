#include "model/config.h"

#include <stdexcept>

namespace llmfi::model {

std::int64_t ModelConfig::num_params() const {
  const std::int64_t d = d_model;
  const std::int64_t ff = d_ff;
  std::int64_t per_block = 4 * d * d + 2 * d;  // attention + two norms
  if (moe) {
    per_block += static_cast<std::int64_t>(n_experts) * 3 * d * ff +
                 static_cast<std::int64_t>(n_experts) * d;  // experts+router
  } else {
    per_block += 3 * d * ff;
  }
  return static_cast<std::int64_t>(vocab_size) * d  // tied embedding
         + n_layers * per_block + d;                // final norm
}

std::uint64_t ModelConfig::config_hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(vocab_size));
  mix(static_cast<std::uint64_t>(d_model));
  mix(static_cast<std::uint64_t>(n_layers));
  mix(static_cast<std::uint64_t>(n_heads));
  mix(static_cast<std::uint64_t>(d_ff));
  mix(moe ? 1u : 0u);
  mix(static_cast<std::uint64_t>(n_experts));
  mix(static_cast<std::uint64_t>(top_k));
  mix(static_cast<std::uint64_t>(init));
  mix(seed);
  for (char c : family) mix(static_cast<std::uint64_t>(c));
  return h;
}

ModelConfig family_config(const std::string& family, int vocab_size) {
  ModelConfig c;
  c.vocab_size = vocab_size;
  c.family = family;
  if (family == "aquila") {  // Llama3.1-8B analog
    c.init = InitStyle::Normal002;
    c.seed = 101;
  } else if (family == "qilin") {  // Qwen2.5-7B analog
    c.init = InitStyle::Normal003;
    c.seed = 202;
  } else if (family == "falco") {  // Falcon3-7B analog
    c.init = InitStyle::UniformWide;
    c.seed = 303;
  } else {
    throw std::invalid_argument("unknown model family: " + family);
  }
  return c;
}

}  // namespace llmfi::model
