#pragma once
// The inference engine: a Llama-architecture decoder-only transformer
// (Fig 1 of the paper) with reduced-precision weight storage, an
// activation-rounding pipeline, KV-cached autoregressive decoding, and
// the hook surface used by the fault injector and the propagation tracer.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "model/config.h"
#include "model/weights.h"
#include "nn/hooks.h"
#include "nn/kv_cache.h"
#include "nn/layer_id.h"
#include "nn/weight_matrix.h"
#include "shard/shard_group.h"
#include "tokenizer/vocab.h"

namespace llmfi::model {

class InferenceModel {
 public:
  // Builds dtype-typed weight storage from fp32 master weights. The
  // engine keeps no reference to `w` afterwards.
  InferenceModel(const ModelWeights& w, const PrecisionConfig& prec);

  // Copying would silently leave linear_layers() pointing into the
  // source engine; replicate explicitly with clone() instead. Moves are
  // fine: the weight storage lives on vector heap buffers, so the
  // registry pointers stay valid.
  InferenceModel(const InferenceModel&) = delete;
  InferenceModel& operator=(const InferenceModel&) = delete;
  InferenceModel(InferenceModel&&) = default;
  InferenceModel& operator=(InferenceModel&&) = default;

  // Deep replica with private weight buffers (the parallel campaign's
  // per-worker engines: WeightCorruption and the linear hook never touch
  // another worker's storage). Copies the dtype-exact storage bit-for-bit
  // — no re-rounding — so a replica's outputs are bit-identical to the
  // source's. Hooks, tracer, and diagnostics start clean.
  InferenceModel clone() const;

  const ModelConfig& config() const { return config_; }
  const PrecisionConfig& precision() const { return prec_; }

  nn::KvCache make_cache() const;
  // Paged variant: the cache draws its rows from `pool` (shared with
  // every other sequence on the same budget). Bit-identical numerics to
  // the contiguous layout — only the storage map differs.
  nn::KvCache make_cache(std::shared_ptr<nn::PagePool> pool) const;

  // Runs the model over `tokens` (appended after whatever the cache
  // already holds) and returns logits [tokens.size(), vocab].
  // `pass_index` identifies this forward pass within the current
  // inference (prefill = 0, decode steps = 1, 2, ...); it is forwarded to
  // hooks so computational faults can target one generation iteration.
  tn::Tensor forward(std::span<const tok::TokenId> tokens, nn::KvCache& cache,
                     int pass_index);

  // --- batched decode ----------------------------------------------------
  // One active sequence's slice of a batched decode pass. Each row brings
  // its own KV cache (so its attention context is private), its own
  // per-sequence pass index, and optionally its own fault hook (serve
  // scopes fault arming to the owning request's row this way).
  // `nonfinite` is an output: set if this row's logits contained NaN/inf.
  struct BatchRow {
    nn::KvCache* cache = nullptr;
    tok::TokenId token = 0;
    int pass_index = 0;
    nn::LinearHook* hook = nullptr;
    bool nonfinite = false;
  };

  // Runs ONE decode pass — one new token per sequence — over all rows at
  // once and returns logits [rows.size(), vocab]. Every op in the stack
  // (matmul_bt dot loops, rmsnorm, silu/mul, rounding, RoPE, attention,
  // argmax downstream) treats rows independently with a fixed per-row
  // reduction order, so row r's logits are bit-identical to what
  // forward({rows[r].token}, *rows[r].cache, rows[r].pass_index) would
  // produce on that cache — for any batch size or row order. Appends one
  // position to (and advances) every row's cache.
  //
  // Per-row semantics replace the engine-level surfaces here: the
  // engine's set_linear_hook()/tracer are NOT fired (each row's
  // rows[r].hook is, with that row's pass_index and position, on a 1-row
  // view exactly as the sequential decode path shows it), and nonfinite
  // logits set rows[r].nonfinite instead of saw_nonfinite_logits().
  tn::Tensor forward_batch(std::span<BatchRow> rows);

  // --- tensor parallelism ------------------------------------------------
  // Shards the per-block projections and attention across `n` threads
  // (DESIGN.md §14): qkv/gate/up column-parallel, attention by head
  // ranges, attn-out/down row-parallel on the fixed segment grid.
  // Outputs are byte-identical to TP=1 at every kernel tier — the
  // reduction order is pinned by the segmented-product contract, so TP
  // only changes wall-clock time, never bits. n <= 1 (the default)
  // releases the worker pool. Quantized weight storage keeps TP at 1
  // (the grouped-int product has no sharded form); a warning is printed
  // once per engine.
  void set_tensor_parallel(int n);
  int tensor_parallel() const { return tp_; }

  // Injection surface inside the row-parallel products (tp-partial /
  // tp-reduce fault models). While armed, fused paths are disabled and
  // the partial-sum reduction runs serially so every tree level is
  // observable; outputs without an injecting hook remain byte-identical.
  // Fired only by the sequential forward() path — tp-fault campaigns
  // fall back to sequential trials, like detection does.
  void set_shard_hook(nn::ShardHook* hook) { shard_hook_ = hook; }
  nn::ShardHook* shard_hook() const { return shard_hook_; }

  // --- hook surface ----------------------------------------------------
  void set_linear_hook(nn::LinearHook* hook) { hook_ = hook; }
  nn::LinearHook* linear_hook() const { return hook_; }
  void set_expert_observer(nn::ExpertObserver* obs) { expert_obs_ = obs; }

  // Observation-only tracer fired with every linear layer's (post-round,
  // post-hook) output; used to build the Fig 5/6 propagation maps.
  using TraceFn =
      std::function<void(const nn::LinearId&, const tn::Tensor&)>;
  void set_tracer(TraceFn fn) { tracer_ = std::move(fn); }

  // --- fault-injection target enumeration -------------------------------
  struct LinearRef {
    nn::LinearId id;
    nn::WeightMatrix* weights;
  };
  // Every linear layer inside the transformer blocks (the paper's FI
  // scope: embedding and the LM head are excluded).
  std::span<LinearRef> linear_layers() { return linear_refs_; }

  // --- diagnostics -------------------------------------------------------
  // True if any logit produced since the last reset was NaN/inf (an input
  // signal to the distorted-output classifier).
  bool saw_nonfinite_logits() const { return saw_nonfinite_logits_; }
  void reset_diagnostics() { saw_nonfinite_logits_ = false; }

 private:
  InferenceModel() = default;  // empty shell filled by clone()

  struct ExpertStorage {
    nn::WeightMatrix gate, up, down;
  };
  struct BlockStorage {
    tn::Tensor norm1, norm2;
    nn::WeightMatrix wq, wk, wv, wo;
    // Dense path:
    std::vector<nn::WeightMatrix> mlp;  // gate, up, down
    // MoE path:
    std::vector<nn::WeightMatrix> router;  // singleton when MoE
    std::vector<ExpertStorage> experts;
  };

  void build_linear_refs();

  // The weight product behind every linear layer: dispatches on the
  // active kernel tier (tensor/kernels.h). On the fast tiers, quantized
  // weights route through quant::qmatmul_bt — the int8/int4 payloads are
  // consumed directly, no dequantized fp32 matrix in the product. The
  // Reference tier always reads w.values() so campaign numerics stay on
  // the naive oracle loop.
  tn::Tensor project(const nn::WeightMatrix& w, const tn::Tensor& x) const;
  // project() with the tensor-parallel split applied by layer kind:
  // OProj/DownProj go through the segmented row-parallel product (which
  // also fires `shard_hook` when non-null), the other block projections
  // are column-parallel when a group is attached, and everything else
  // (router, experts, quantized fast-tier products) stays replicated.
  tn::Tensor project_tp(const nn::WeightMatrix& w, const tn::Tensor& x,
                        const nn::LinearId& id, int pass_index,
                        int row_offset, nn::ShardHook* shard_hook);
  // True when the fused RMSNorm+projection entry point may replace the
  // rmsnorm -> linear pair: nothing observes the normalized intermediate
  // (no engine hook, no tracer) and activation rounding is a no-op
  // (fp32). The fusion is bit-identical to the unfused pair at every
  // kernel tier, so eligibility is about observability, not numerics.
  bool fuse_eligible() const;
  // Fused norm1 + wq/wk/wv input projections for one pass.
  void qkv_fused(BlockStorage& blk, const tn::Tensor& x, tn::Tensor* q,
                 tn::Tensor* k, tn::Tensor* v) const;
  // Fused norm2 + gate/up, then SiLU-gate and the down projection.
  tn::Tensor dense_mlp_fused(BlockStorage& blk, int block_idx,
                             const tn::Tensor& x);

  tn::Tensor linear(const nn::WeightMatrix& w, const tn::Tensor& x,
                    const nn::LinearId& id, int pass_index, int row_offset);
  // linear() minus the engine hook/tracer: fires only the explicit
  // per-row `hook` (may be null). The batched expert path uses this so a
  // request's fault hook never sees another request's rows.
  tn::Tensor linear_hooked(const nn::WeightMatrix& w, const tn::Tensor& x,
                           const nn::LinearId& id, int pass_index,
                           int row_offset, nn::LinearHook* hook);
  // Batched linear with per-row hook dispatch: one matmul over the whole
  // batch, then each hooked row is shown to its hook as a [1, n] view
  // (copied out and back) so hook row resolution matches sequential
  // decode bit-for-bit. `pos[r]` is row r's absolute position.
  tn::Tensor linear_batch(const nn::WeightMatrix& w, const tn::Tensor& x,
                          const nn::LinearId& id, std::span<BatchRow> rows,
                          std::span<const int> pos);
  tn::Tensor attention(const tn::Tensor& q, int block,
                       const nn::KvCache& cache, tn::Index prev_len) const;
  tn::Tensor dense_mlp(BlockStorage& blk, int block_idx, const tn::Tensor& h,
                       int pass_index, int row_offset);
  tn::Tensor moe_mlp(BlockStorage& blk, int block_idx, const tn::Tensor& h,
                     int pass_index, int row_offset);
  tn::Tensor dense_mlp_batch(BlockStorage& blk, int block_idx,
                             const tn::Tensor& h, std::span<BatchRow> rows,
                             std::span<const int> pos);
  tn::Tensor moe_mlp_batch(BlockStorage& blk, int block_idx,
                           const tn::Tensor& h, std::span<BatchRow> rows,
                           std::span<const int> pos);
  void round_activations(tn::Tensor& x) const;

  ModelConfig config_;
  PrecisionConfig prec_;
  tn::Tensor embedding_;   // rounded through act dtype; FI-excluded
  tn::Tensor final_norm_;  // fp32
  std::vector<BlockStorage> blocks_;
  std::vector<LinearRef> linear_refs_;

  nn::LinearHook* hook_ = nullptr;
  nn::ExpertObserver* expert_obs_ = nullptr;
  nn::ShardHook* shard_hook_ = nullptr;
  TraceFn tracer_;
  bool saw_nonfinite_logits_ = false;

  // Tensor-parallel state: group_ is live iff tp_ > 1. unique_ptr keeps
  // the engine movable (ShardGroup owns threads and is not).
  int tp_ = 1;
  std::unique_ptr<shard::ShardGroup> group_;
};

}  // namespace llmfi::model
