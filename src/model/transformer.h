#pragma once
// The inference engine: a Llama-architecture decoder-only transformer
// (Fig 1 of the paper) with reduced-precision weight storage, an
// activation-rounding pipeline, KV-cached autoregressive decoding, and
// the hook surface used by the fault injector and the propagation tracer.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "model/config.h"
#include "model/weights.h"
#include "nn/hooks.h"
#include "nn/kv_cache.h"
#include "nn/layer_id.h"
#include "nn/weight_matrix.h"
#include "tokenizer/vocab.h"

namespace llmfi::model {

class InferenceModel {
 public:
  // Builds dtype-typed weight storage from fp32 master weights. The
  // engine keeps no reference to `w` afterwards.
  InferenceModel(const ModelWeights& w, const PrecisionConfig& prec);

  // Copying would silently leave linear_layers() pointing into the
  // source engine; replicate explicitly with clone() instead. Moves are
  // fine: the weight storage lives on vector heap buffers, so the
  // registry pointers stay valid.
  InferenceModel(const InferenceModel&) = delete;
  InferenceModel& operator=(const InferenceModel&) = delete;
  InferenceModel(InferenceModel&&) = default;
  InferenceModel& operator=(InferenceModel&&) = default;

  // Deep replica with private weight buffers (the parallel campaign's
  // per-worker engines: WeightCorruption and the linear hook never touch
  // another worker's storage). Copies the dtype-exact storage bit-for-bit
  // — no re-rounding — so a replica's outputs are bit-identical to the
  // source's. Hooks, tracer, and diagnostics start clean.
  InferenceModel clone() const;

  const ModelConfig& config() const { return config_; }
  const PrecisionConfig& precision() const { return prec_; }

  nn::KvCache make_cache() const;

  // Runs the model over `tokens` (appended after whatever the cache
  // already holds) and returns logits [tokens.size(), vocab].
  // `pass_index` identifies this forward pass within the current
  // inference (prefill = 0, decode steps = 1, 2, ...); it is forwarded to
  // hooks so computational faults can target one generation iteration.
  tn::Tensor forward(std::span<const tok::TokenId> tokens, nn::KvCache& cache,
                     int pass_index);

  // --- hook surface ----------------------------------------------------
  void set_linear_hook(nn::LinearHook* hook) { hook_ = hook; }
  nn::LinearHook* linear_hook() const { return hook_; }
  void set_expert_observer(nn::ExpertObserver* obs) { expert_obs_ = obs; }

  // Observation-only tracer fired with every linear layer's (post-round,
  // post-hook) output; used to build the Fig 5/6 propagation maps.
  using TraceFn =
      std::function<void(const nn::LinearId&, const tn::Tensor&)>;
  void set_tracer(TraceFn fn) { tracer_ = std::move(fn); }

  // --- fault-injection target enumeration -------------------------------
  struct LinearRef {
    nn::LinearId id;
    nn::WeightMatrix* weights;
  };
  // Every linear layer inside the transformer blocks (the paper's FI
  // scope: embedding and the LM head are excluded).
  std::span<LinearRef> linear_layers() { return linear_refs_; }

  // --- diagnostics -------------------------------------------------------
  // True if any logit produced since the last reset was NaN/inf (an input
  // signal to the distorted-output classifier).
  bool saw_nonfinite_logits() const { return saw_nonfinite_logits_; }
  void reset_diagnostics() { saw_nonfinite_logits_ = false; }

 private:
  InferenceModel() = default;  // empty shell filled by clone()

  struct ExpertStorage {
    nn::WeightMatrix gate, up, down;
  };
  struct BlockStorage {
    tn::Tensor norm1, norm2;
    nn::WeightMatrix wq, wk, wv, wo;
    // Dense path:
    std::vector<nn::WeightMatrix> mlp;  // gate, up, down
    // MoE path:
    std::vector<nn::WeightMatrix> router;  // singleton when MoE
    std::vector<ExpertStorage> experts;
  };

  void build_linear_refs();

  tn::Tensor linear(const nn::WeightMatrix& w, const tn::Tensor& x,
                    const nn::LinearId& id, int pass_index, int row_offset);
  tn::Tensor attention(const tn::Tensor& q, int block,
                       const nn::KvCache& cache, tn::Index prev_len) const;
  tn::Tensor dense_mlp(BlockStorage& blk, int block_idx, const tn::Tensor& h,
                       int pass_index, int row_offset);
  tn::Tensor moe_mlp(BlockStorage& blk, int block_idx, const tn::Tensor& h,
                     int pass_index, int row_offset);
  void round_activations(tn::Tensor& x) const;

  ModelConfig config_;
  PrecisionConfig prec_;
  tn::Tensor embedding_;   // rounded through act dtype; FI-excluded
  tn::Tensor final_norm_;  // fp32
  std::vector<BlockStorage> blocks_;
  std::vector<LinearRef> linear_refs_;

  nn::LinearHook* hook_ = nullptr;
  nn::ExpertObserver* expert_obs_ = nullptr;
  TraceFn tracer_;
  bool saw_nonfinite_logits_ = false;
};

}  // namespace llmfi::model
