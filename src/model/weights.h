#pragma once
// Master fp32 model weights: initialization, (de)serialization, and the
// parameter registry the trainer iterates over.

#include <functional>
#include <string>
#include <vector>

#include "model/config.h"
#include "numerics/rng.h"
#include "tensor/tensor.h"

namespace llmfi::model {

struct ExpertWeights {
  tn::Tensor gate;  // [d_ff, d_model]
  tn::Tensor up;    // [d_ff, d_model]
  tn::Tensor down;  // [d_model, d_ff]
};

struct BlockWeights {
  tn::Tensor norm1;  // [d_model]
  tn::Tensor wq, wk, wv, wo;  // [d_model, d_model]
  tn::Tensor norm2;  // [d_model]
  // Dense path:
  tn::Tensor gate, up;  // [d_ff, d_model]
  tn::Tensor down;      // [d_model, d_ff]
  // MoE path:
  tn::Tensor router;  // [n_experts, d_model]
  std::vector<ExpertWeights> experts;
};

struct ModelWeights {
  ModelConfig config;
  tn::Tensor embedding;  // [vocab, d_model]; tied LM head
  std::vector<BlockWeights> blocks;
  tn::Tensor final_norm;  // [d_model]

  // Random initialization per the family's InitStyle; norms start at 1.
  static ModelWeights init(const ModelConfig& cfg);

  // Visits every trainable tensor with a stable name ("blk0.wq", ...).
  void for_each_param(
      const std::function<void(const std::string&, tn::Tensor&)>& fn);

  std::int64_t num_params() const { return config.num_params(); }

  // Binary checkpoint I/O. Throws std::runtime_error on mismatch or I/O
  // failure. The file embeds the full ModelConfig.
  void save(const std::string& path) const;
  static ModelWeights load(const std::string& path);
};

}  // namespace llmfi::model
