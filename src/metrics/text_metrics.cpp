#include "metrics/text_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace llmfi::metrics {

namespace {

using Counts = std::map<std::vector<std::string>, int>;

Counts ngram_counts(const std::vector<std::string>& words, int n) {
  Counts counts;
  if (static_cast<int>(words.size()) < n) return counts;
  for (size_t i = 0; i + static_cast<size_t>(n) <= words.size(); ++i) {
    std::vector<std::string> gram(words.begin() + static_cast<long>(i),
                                  words.begin() + static_cast<long>(i) + n);
    ++counts[std::move(gram)];
  }
  return counts;
}

// Clipped overlap between hypothesis and reference n-gram counts.
int clipped_matches(const Counts& hyp, const Counts& ref) {
  int matches = 0;
  for (const auto& [gram, count] : hyp) {
    auto it = ref.find(gram);
    if (it != ref.end()) matches += std::min(count, it->second);
  }
  return matches;
}

int total_count(const Counts& c) {
  int total = 0;
  for (const auto& [gram, count] : c) total += count;
  return total;
}

// Byte length of the UTF-8 sequence starting at `lead`. Invalid lead
// bytes (stray continuations, 0xF8+) degrade to single-byte units, so
// malformed input still yields a total ordering instead of UB.
size_t utf8_unit_len(unsigned char lead) {
  if (lead < 0x80) return 1;
  if ((lead & 0xE0) == 0xC0) return 2;
  if ((lead & 0xF0) == 0xE0) return 3;
  if ((lead & 0xF8) == 0xF0) return 4;
  return 1;
}

// Splits `text` into UTF-8 codepoint units, dropping ASCII spaces. A
// sequence truncated by the end of the string degrades to its leading
// byte as a unit.
std::vector<std::string> utf8_units(const std::string& text) {
  std::vector<std::string> units;
  for (size_t i = 0; i < text.size();) {
    const size_t len =
        std::min(utf8_unit_len(static_cast<unsigned char>(text[i])),
                 text.size() - i);
    if (text[i] != ' ') units.push_back(text.substr(i, len));
    i += len;
  }
  return units;
}

// Character n-grams over the de-spaced string (standard chrF), counted
// in *codepoints*: byte-based n-grams would split multibyte UTF-8
// characters mid-sequence and inflate the mismatch between texts that
// differ in one accented character.
std::map<std::string, int> char_ngrams(const std::string& text, int n) {
  const std::vector<std::string> units = utf8_units(text);
  std::map<std::string, int> counts;
  if (static_cast<int>(units.size()) < n) return counts;
  for (size_t i = 0; i + static_cast<size_t>(n) <= units.size(); ++i) {
    std::string gram;
    for (size_t j = 0; j < static_cast<size_t>(n); ++j) gram += units[i + j];
    ++counts[std::move(gram)];
  }
  return counts;
}

struct PR {
  double precision = 0.0;
  double recall = 0.0;
  bool valid = false;
};

template <typename Map>
PR overlap_pr(const Map& hyp, const Map& ref) {
  int matches = 0, hyp_total = 0, ref_total = 0;
  for (const auto& [k, v] : hyp) {
    hyp_total += v;
    auto it = ref.find(k);
    if (it != ref.end()) matches += std::min(v, it->second);
  }
  for (const auto& [k, v] : ref) ref_total += v;
  PR pr;
  if (hyp_total == 0 || ref_total == 0) return pr;
  pr.precision = static_cast<double>(matches) / hyp_total;
  pr.recall = static_cast<double>(matches) / ref_total;
  pr.valid = true;
  return pr;
}

double f_beta(const PR& pr, double beta) {
  if (!pr.valid) return 0.0;
  const double b2 = beta * beta;
  const double denom = b2 * pr.precision + pr.recall;
  if (denom <= 0.0) return 0.0;
  return (1.0 + b2) * pr.precision * pr.recall / denom;
}

}  // namespace

std::vector<std::string> split_words(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream iss(text);
  std::string w;
  while (iss >> w) out.push_back(std::move(w));
  return out;
}

double bleu(const std::string& hypothesis, const std::string& reference,
            int max_n) {
  const auto hyp = split_words(hypothesis);
  const auto ref = split_words(reference);
  if (hyp.empty() || ref.empty()) return 0.0;

  double log_precision_sum = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    const Counts hc = ngram_counts(hyp, n);
    const Counts rc = ngram_counts(ref, n);
    const int total = total_count(hc);
    const int matches = clipped_matches(hc, rc);
    double p;
    if (n == 1) {
      if (total == 0 || matches == 0) return 0.0;
      p = static_cast<double>(matches) / total;
    } else {
      // Add-1 smoothing for higher orders (Lin & Och).
      p = (static_cast<double>(matches) + 1.0) /
          (static_cast<double>(total) + 1.0);
    }
    log_precision_sum += std::log(p);
  }
  const double geo_mean = std::exp(log_precision_sum / max_n);
  const double bp =
      hyp.size() >= ref.size()
          ? 1.0
          : std::exp(1.0 - static_cast<double>(ref.size()) / hyp.size());
  return bp * geo_mean;
}

double chrf_pp(const std::string& hypothesis, const std::string& reference,
               int char_n, int word_n, double beta) {
  double f_sum = 0.0;
  int orders = 0;
  // Orders where *both* sides lack n-grams (e.g. 6-grams of a 5-char
  // pair) are skipped, as in the reference chrF implementation;
  // otherwise short perfect matches could not reach 1.0.
  auto add_order = [&](const auto& hyp, const auto& ref) {
    if (hyp.empty() && ref.empty()) return;
    f_sum += f_beta(overlap_pr(hyp, ref), beta);
    ++orders;
  };
  for (int n = 1; n <= char_n; ++n) {
    add_order(char_ngrams(hypothesis, n), char_ngrams(reference, n));
  }
  const auto hyp_words = split_words(hypothesis);
  const auto ref_words = split_words(reference);
  for (int n = 1; n <= word_n; ++n) {
    add_order(ngram_counts(hyp_words, n), ngram_counts(ref_words, n));
  }
  return orders > 0 ? f_sum / orders : 0.0;
}

double rouge1_f(const std::string& hypothesis, const std::string& reference) {
  const auto hyp = split_words(hypothesis);
  const auto ref = split_words(reference);
  return f_beta(overlap_pr(ngram_counts(hyp, 1), ngram_counts(ref, 1)), 1.0);
}

double rougeL_f(const std::string& hypothesis, const std::string& reference) {
  const auto hyp = split_words(hypothesis);
  const auto ref = split_words(reference);
  if (hyp.empty() || ref.empty()) return 0.0;
  // LCS via DP.
  const size_t n = hyp.size(), m = ref.size();
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      cur[j] = (hyp[i - 1] == ref[j - 1])
                   ? prev[j - 1] + 1
                   : std::max(prev[j], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  const double lcs = prev[m];
  PR pr{lcs / static_cast<double>(n), lcs / static_cast<double>(m), true};
  return f_beta(pr, 1.0);
}

double exact_match(const std::string& hypothesis,
                   const std::string& reference) {
  return split_words(hypothesis) == split_words(reference) ? 1.0 : 0.0;
}

double token_f1(const std::string& hypothesis, const std::string& reference) {
  const auto hyp = split_words(hypothesis);
  const auto ref = split_words(reference);
  return f_beta(overlap_pr(ngram_counts(hyp, 1), ngram_counts(ref, 1)), 1.0);
}

}  // namespace llmfi::metrics
