#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace llmfi::metrics {

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ > 0 ? mean_ : 0.0; }

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / (n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Ratio katz_ratio_ci(int fault_hits, int fault_n, int free_hits, int free_n,
                    double z) {
  Ratio r;
  if (fault_n <= 0 || free_n <= 0 || free_hits <= 0) {
    // Undefined baseline: report a degenerate ratio of 1 with a wide CI.
    r.lo = 0.0;
    r.hi = 2.0;
    return r;
  }
  // Haldane-Anscombe style continuity correction when either count is 0.
  double a = fault_hits, b = free_hits;
  double n1 = fault_n, n2 = free_n;
  if (fault_hits == 0) {
    a += 0.5;
    b += 0.5;
    n1 += 0.5;
    n2 += 0.5;
  }
  const double p1 = a / n1;
  const double p2 = b / n2;
  const double se =
      std::sqrt(std::max(0.0, (1.0 - p1) / (n1 * p1)) +
                std::max(0.0, (1.0 - p2) / (n2 * p2)));
  // Point estimate and CI both use the (possibly corrected) ratio, so
  // lo <= value <= hi always holds. Reporting the raw ratio while the CI
  // used the corrected one put value = 0 below lo when fault_hits == 0.
  r.value = p1 / p2;
  r.lo = r.value * std::exp(-z * se);
  r.hi = r.value * std::exp(z * se);
  return r;
}

Ratio log_ratio_ci(double fault_mean, double fault_sd, int fault_n,
                   double free_mean, double free_sd, int free_n, double z) {
  Ratio r;
  if (fault_n <= 0 || free_n <= 0 || free_mean <= 0.0) {
    r.lo = 0.0;
    r.hi = 2.0;
    return r;
  }
  r.value = fault_mean / free_mean;
  if (fault_mean <= 0.0) {
    r.lo = 0.0;
    r.hi = r.value;
    return r;
  }
  // Var(ln(m1/m2)) ~= s1^2/(n1 m1^2) + s2^2/(n2 m2^2) by the delta method.
  const double se = std::sqrt(
      fault_sd * fault_sd / (fault_n * fault_mean * fault_mean) +
      free_sd * free_sd / (free_n * free_mean * free_mean));
  r.lo = r.value * std::exp(-z * se);
  r.hi = r.value * std::exp(z * se);
  return r;
}

}  // namespace llmfi::metrics
