#pragma once
// Statistical machinery: normalized performance (paper §3.3.3) and the
// Katz log-transform 95% confidence intervals the paper applies to its
// error bars.

#include <cstdint>

namespace llmfi::metrics {

// Streaming mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  int n() const { return n_; }
  double mean() const;
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;

 private:
  int n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

struct Ratio {
  double value = 1.0;
  double lo = 1.0;  // 95% CI bounds
  double hi = 1.0;
};

// Normalized performance = P_fault / P_free for *proportion* metrics
// (accuracy, EM): Katz (1978) log-transform CI for a ratio of two
// binomial proportions. `hits` out of `n` per arm.
Ratio katz_ratio_ci(int fault_hits, int fault_n, int free_hits, int free_n,
                    double z = 1.96);

// Normalized performance for continuous metrics (BLEU, ROUGE, ...):
// delta-method log-transform CI from per-arm sample means/SDs.
Ratio log_ratio_ci(double fault_mean, double fault_sd, int fault_n,
                   double free_mean, double free_sd, int free_n,
                   double z = 1.96);

}  // namespace llmfi::metrics
