#pragma once
// Output-quality metrics matching the paper's Table 1: BLEU and chrF++
// for translation, ROUGE-1/ROUGE-L for summarization, Exact Match and
// token F1 for QA, plus accuracy helpers. All operate on whitespace-
// tokenized text (our vocabulary is word-level, so this is lossless).

#include <string>
#include <vector>

namespace llmfi::metrics {

std::vector<std::string> split_words(const std::string& text);

// Smoothed corpus-style sentence BLEU (n-grams up to max_n, add-1
// smoothing on higher orders, brevity penalty). Returns [0, 1].
double bleu(const std::string& hypothesis, const std::string& reference,
            int max_n = 4);

// chrF++ (Popovic 2017): character n-grams (1..char_n) plus word n-grams
// (1..word_n), F-beta with beta = 2. Returns [0, 1].
double chrf_pp(const std::string& hypothesis, const std::string& reference,
               int char_n = 6, int word_n = 2, double beta = 2.0);

// ROUGE-1 F1: unigram overlap.
double rouge1_f(const std::string& hypothesis, const std::string& reference);

// ROUGE-L F1: longest common subsequence.
double rougeL_f(const std::string& hypothesis, const std::string& reference);

// SQuAD-style exact match (1.0 or 0.0 after whitespace normalization).
double exact_match(const std::string& hypothesis,
                   const std::string& reference);

// SQuAD-style token F1 (bag-of-words overlap).
double token_f1(const std::string& hypothesis, const std::string& reference);

}  // namespace llmfi::metrics
