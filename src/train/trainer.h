#pragma once
// Next-token language-model training over synthetic task corpora:
// AdamW with warmup+cosine schedule, per-sequence graphs, batched by
// gradient accumulation. Produces the trained tiny models that stand in
// for the paper's pretrained LLMs (and their fine-tuned variants).

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "data/tasks.h"
#include "model/weights.h"

namespace llmfi::train {

struct TrainConfig {
  int steps = 400;
  int batch_size = 8;
  float lr = 3e-3f;
  float weight_decay = 0.01f;   // decoupled, matrices only
  float warmup_frac = 0.05f;
  float final_lr_frac = 0.1f;   // cosine decays to lr * this
  std::uint64_t seed = 42;
  int log_every = 0;            // 0 = silent
};

class Trainer {
 public:
  // Holds a reference to `weights`; trained values are synced back on
  // every `train()` return.
  Trainer(model::ModelWeights& weights, TrainConfig cfg);

  // Runs cfg.steps optimization steps sampling uniformly from `corpus`.
  // Callable repeatedly (fine-tuning continues from current weights with
  // fresh optimizer state). Returns the mean loss over the last 10% of
  // steps.
  double train(const std::vector<data::TrainSeq>& corpus);

  // Mean loss of `corpus` under the current weights (no updates).
  double evaluate(const std::vector<data::TrainSeq>& corpus);

 private:
  struct GraphBlock {
    ag::Var norm1, wq, wk, wv, wo, norm2;
    ag::Var gate, up, down;   // dense
    ag::MoeParams moe;        // MoE
  };

  ag::Var forward_loss(const data::TrainSeq& seq);
  void rebuild_graph_params();
  void sync_back();
  float lr_at(int step) const;

  model::ModelWeights& weights_;
  TrainConfig cfg_;

  ag::Var embedding_;
  std::vector<GraphBlock> blocks_;
  ag::Var final_norm_;
  std::vector<ag::Var> params_;      // flat list for the optimizer
  std::vector<bool> decay_mask_;     // weight decay applies (2-D matrices)
  std::vector<tn::Tensor> adam_m_, adam_v_;
};

}  // namespace llmfi::train
