#include "train/trainer.h"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "numerics/rng.h"

namespace llmfi::train {

namespace {
constexpr float kAdamBeta1 = 0.9f;
constexpr float kAdamBeta2 = 0.95f;
constexpr float kAdamEps = 1e-8f;
}  // namespace

Trainer::Trainer(model::ModelWeights& weights, TrainConfig cfg)
    : weights_(weights), cfg_(cfg) {
  rebuild_graph_params();
}

void Trainer::rebuild_graph_params() {
  params_.clear();
  decay_mask_.clear();
  auto reg = [this](tn::Tensor t, bool decay) {
    ag::Var v = ag::leaf(std::move(t));
    params_.push_back(v);
    decay_mask_.push_back(decay);
    return v;
  };

  embedding_ = reg(weights_.embedding, true);
  blocks_.clear();
  blocks_.reserve(weights_.blocks.size());
  for (auto& src : weights_.blocks) {
    GraphBlock gb;
    gb.norm1 = reg(src.norm1, false);
    gb.wq = reg(src.wq, true);
    gb.wk = reg(src.wk, true);
    gb.wv = reg(src.wv, true);
    gb.wo = reg(src.wo, true);
    gb.norm2 = reg(src.norm2, false);
    if (weights_.config.moe) {
      gb.moe.router = reg(src.router, true);
      gb.moe.top_k = weights_.config.top_k;
      for (auto& ex : src.experts) {
        gb.moe.experts.push_back({reg(ex.gate, true), reg(ex.up, true),
                                  reg(ex.down, true)});
      }
    } else {
      gb.gate = reg(src.gate, true);
      gb.up = reg(src.up, true);
      gb.down = reg(src.down, true);
    }
    blocks_.push_back(std::move(gb));
  }
  final_norm_ = reg(weights_.final_norm, false);

  adam_m_.clear();
  adam_v_.clear();
  for (const auto& p : params_) {
    adam_m_.emplace_back(tn::Tensor(p->value.shape()));
    adam_v_.emplace_back(tn::Tensor(p->value.shape()));
  }
}

void Trainer::sync_back() {
  size_t i = 0;
  auto take = [this, &i]() { return params_[i++]->value; };
  weights_.embedding = take();
  for (auto& dst : weights_.blocks) {
    dst.norm1 = take();
    dst.wq = take();
    dst.wk = take();
    dst.wv = take();
    dst.wo = take();
    dst.norm2 = take();
    if (weights_.config.moe) {
      dst.router = take();
      for (auto& ex : dst.experts) {
        ex.gate = take();
        ex.up = take();
        ex.down = take();
      }
    } else {
      dst.gate = take();
      dst.up = take();
      dst.down = take();
    }
  }
  weights_.final_norm = take();
}

ag::Var Trainer::forward_loss(const data::TrainSeq& seq) {
  const auto& cfg = weights_.config;
  const auto len = static_cast<int>(seq.tokens.size());
  if (len < 2 || seq.loss_start < 1 || seq.loss_start >= len) {
    throw std::invalid_argument("forward_loss: degenerate sequence");
  }
  std::vector<tok::TokenId> inputs(seq.tokens.begin(), seq.tokens.end() - 1);
  std::vector<tok::TokenId> targets(seq.tokens.begin() + 1, seq.tokens.end());

  ag::Var x = ag::embedding(embedding_, inputs);
  for (auto& gb : blocks_) {
    ag::Var h = ag::rmsnorm(x, gb.norm1, cfg.norm_eps);
    ag::Var q = ag::rope(ag::matmul_bt(h, gb.wq), cfg.n_heads, 0,
                         cfg.rope_theta);
    ag::Var k = ag::rope(ag::matmul_bt(h, gb.wk), cfg.n_heads, 0,
                         cfg.rope_theta);
    ag::Var v = ag::matmul_bt(h, gb.wv);
    ag::Var attn = ag::causal_attention(q, k, v, cfg.n_heads);
    x = ag::add(x, ag::matmul_bt(attn, gb.wo));

    ag::Var h2 = ag::rmsnorm(x, gb.norm2, cfg.norm_eps);
    ag::Var m = cfg.moe
                    ? ag::moe_layer(h2, gb.moe)
                    : ag::matmul_bt(
                          ag::mul(ag::silu(ag::matmul_bt(h2, gb.gate)),
                                  ag::matmul_bt(h2, gb.up)),
                          gb.down);
    x = ag::add(x, m);
  }
  ag::Var xf = ag::rmsnorm(x, final_norm_, cfg.norm_eps);
  ag::Var logits = ag::matmul_bt(xf, embedding_);  // tied LM head
  return ag::cross_entropy_lm(logits, std::move(targets), seq.loss_start - 1);
}

float Trainer::lr_at(int step) const {
  const auto total = static_cast<float>(cfg_.steps);
  const auto warmup = std::max(1.0f, cfg_.warmup_frac * total);
  const auto s = static_cast<float>(step);
  if (s < warmup) return cfg_.lr * (s + 1.0f) / warmup;
  const float progress = (s - warmup) / std::max(1.0f, total - warmup);
  const float cosine =
      0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * progress));
  return cfg_.lr * (cfg_.final_lr_frac + (1.0f - cfg_.final_lr_frac) * cosine);
}

double Trainer::train(const std::vector<data::TrainSeq>& corpus) {
  if (corpus.empty()) throw std::invalid_argument("train: empty corpus");
  num::Rng rng(cfg_.seed);
  // Fresh optimizer state per train() call (fine-tuning semantics).
  for (size_t i = 0; i < params_.size(); ++i) {
    adam_m_[i].zero();
    adam_v_[i].zero();
  }

  double tail_loss = 0.0;
  int tail_count = 0;
  const int tail_start = cfg_.steps - std::max(1, cfg_.steps / 10);

  for (int step = 0; step < cfg_.steps; ++step) {
    for (auto& p : params_) p->zero_grad();
    std::vector<ag::Var> losses;
    losses.reserve(static_cast<size_t>(cfg_.batch_size));
    for (int b = 0; b < cfg_.batch_size; ++b) {
      const auto& seq = corpus[rng.uniform_u64(corpus.size())];
      losses.push_back(forward_loss(seq));
    }
    ag::Var total =
        ag::scaled_sum(losses, 1.0f / static_cast<float>(cfg_.batch_size));
    ag::backward(total);

    const float lr = lr_at(step);
    const float bc1 =
        1.0f - std::pow(kAdamBeta1, static_cast<float>(step + 1));
    const float bc2 =
        1.0f - std::pow(kAdamBeta2, static_cast<float>(step + 1));
    for (size_t i = 0; i < params_.size(); ++i) {
      auto& p = params_[i];
      if (!p->has_grad()) continue;
      auto pv = p->value.flat();
      auto g = p->grad.flat();
      auto m = adam_m_[i].flat();
      auto v = adam_v_[i].flat();
      const bool decay = decay_mask_[i];
      for (size_t j = 0; j < pv.size(); ++j) {
        m[j] = kAdamBeta1 * m[j] + (1.0f - kAdamBeta1) * g[j];
        v[j] = kAdamBeta2 * v[j] + (1.0f - kAdamBeta2) * g[j] * g[j];
        const float mhat = m[j] / bc1;
        const float vhat = v[j] / bc2;
        pv[j] -= lr * (mhat / (std::sqrt(vhat) + kAdamEps));
        if (decay) pv[j] -= lr * cfg_.weight_decay * pv[j];
      }
    }

    const double loss_value = total->value[0];
    if (step >= tail_start) {
      tail_loss += loss_value;
      ++tail_count;
    }
    if (cfg_.log_every > 0 && (step % cfg_.log_every == 0)) {
      std::printf("  step %4d  lr %.4f  loss %.4f\n", step,
                  static_cast<double>(lr), loss_value);
      std::fflush(stdout);
    }
  }
  sync_back();
  return tail_count > 0 ? tail_loss / tail_count : 0.0;
}

double Trainer::evaluate(const std::vector<data::TrainSeq>& corpus) {
  double total = 0.0;
  for (const auto& seq : corpus) {
    total += forward_loss(seq)->value[0];
  }
  return corpus.empty() ? 0.0 : total / static_cast<double>(corpus.size());
}

}  // namespace llmfi::train
