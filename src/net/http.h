#pragma once
// Dependency-free HTTP/1.1 plumbing for the serving front-end
// (DESIGN.md §15): an incremental request parser (the server side), an
// incremental response parser with chunked-transfer decoding (the
// client / loadgen side), response serialization, SSE event framing,
// and the minimal JSON field extraction the completion endpoint needs.
//
// Both parsers are push-style state machines: feed() consumes bytes in
// any fragmentation — one byte at a time is a tested case — and
// `done()` flips when one full message has been assembled. Leftover
// bytes after a message (pipelined requests, the next response on a
// kept-alive connection) stay buffered; reset() re-arms the machine on
// the residue. Hard limits (header bytes, body bytes) turn pathological
// inputs into typed errors instead of unbounded buffering.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llmfi::net {

// Parse outcome of one feed() call. Ok means "made progress, need more
// bytes or done() is now true"; everything else is terminal for the
// connection (the server maps these onto 4xx responses).
enum class HttpError {
  Ok,
  BadRequest,       // malformed request line / header / chunk framing
  BadMethod,        // method token is not GET or POST
  HeadersTooLarge,  // request line + headers exceed max_header_bytes
  BodyTooLarge,     // Content-Length (or accumulated body) exceeds limit
  LengthRequired,   // POST without a Content-Length header
};

// HTTP status line text for the subset of codes the server emits.
std::string_view status_text(int code);

// Case-insensitive ASCII string compare (header field names).
bool iequals(std::string_view a, std::string_view b);

struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 1 << 20;
};

// --- server side: requests ----------------------------------------------

struct HttpRequest {
  std::string method;   // "GET" / "POST"
  std::string target;   // origin-form, e.g. "/v1/completions"
  std::string version;  // "HTTP/1.1"
  // Lower-cased field name -> value (last occurrence wins; the server
  // never needs list-valued headers).
  std::map<std::string, std::string> headers;
  std::string body;

  std::string_view header(std::string_view name) const;
  bool keep_alive() const;  // Connection / HTTP-version default
};

class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  // Consumes `data`. Returns Ok while the message is incomplete or just
  // completed; any other value is a protocol error and the parser stays
  // in the error state until reset().
  HttpError feed(std::string_view data);

  bool done() const { return state_ == State::Done; }
  const HttpRequest& request() const { return req_; }

  // Re-arms for the next message on the same connection, preserving any
  // bytes fed beyond the previous message (HTTP pipelining): those are
  // re-parsed immediately, so done() may be true again on return.
  HttpError reset();

 private:
  enum class State { RequestLine, Headers, Body, Done, Error };

  HttpError parse_buffered();
  HttpError fail(HttpError e) {
    state_ = State::Error;
    return e;
  }

  HttpLimits limits_;
  State state_ = State::RequestLine;
  std::string buf_;          // unconsumed input
  std::size_t header_bytes_ = 0;
  std::size_t content_length_ = 0;
  HttpRequest req_;
};

// --- client side: responses ---------------------------------------------

struct HttpResponse {
  int status = 0;
  std::string version;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;  // de-chunked when Transfer-Encoding: chunked

  std::string_view header(std::string_view name) const;
};

// Incremental response parser. For streaming (SSE) responses the caller
// polls body_delta(): bytes appended to `body` since the last poll, so
// a loadgen session can timestamp tokens as they arrive rather than at
// message end.
class HttpResponseParser {
 public:
  explicit HttpResponseParser(HttpLimits limits = {}) : limits_(limits) {}

  HttpError feed(std::string_view data);
  bool done() const { return state_ == State::Done; }
  // True once the status line + headers have been parsed (body may
  // still be streaming).
  bool headers_done() const {
    return state_ == State::Body || state_ == State::Chunked ||
           state_ == State::Done;
  }
  const HttpResponse& response() const { return resp_; }

  // Body bytes appended since the previous body_delta() call.
  std::string_view body_delta() {
    std::string_view d(resp_.body);
    d.remove_prefix(delta_mark_);
    delta_mark_ = resp_.body.size();
    return d;
  }

  HttpError reset();  // next response on the same connection

 private:
  enum class State { StatusLine, Headers, Body, Chunked, Done, Error };
  enum class ChunkPhase { Size, Data, DataCrlf, Trailer };

  HttpError parse_buffered();
  HttpError fail(HttpError e) {
    state_ = State::Error;
    return e;
  }

  HttpLimits limits_;
  State state_ = State::StatusLine;
  ChunkPhase chunk_phase_ = ChunkPhase::Size;
  std::size_t chunk_remaining_ = 0;
  std::string buf_;
  std::size_t header_bytes_ = 0;
  std::size_t content_length_ = 0;
  bool until_close_ = false;  // no length, no chunking: body ends at EOF
  std::size_t delta_mark_ = 0;
  HttpResponse resp_;
};

// --- serialization -------------------------------------------------------

// Fixed-length response: status line, standard headers, Content-Length,
// body. `content_type` may be empty for bodyless responses.
std::string make_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive = true);

// Header block opening a chunked streaming response (SSE): no
// Content-Length; the body is emitted as chunks and closed by
// last_chunk(). Includes no-cache headers per the SSE convention.
std::string make_stream_headers(int status, std::string_view content_type,
                                bool keep_alive = true);

// One chunk of a chunked transfer body (hex size line + payload + CRLF).
std::string chunk(std::string_view payload);
// The terminating zero chunk.
std::string_view last_chunk();

// --- SSE -----------------------------------------------------------------

// Frames one payload as a Server-Sent Event: "data: <payload>\n\n".
// Multi-line payloads get one "data:" line each, per the SSE spec.
std::string sse_event(std::string_view payload);

// Incremental SSE stream splitter: feed body bytes, get back the data
// payloads of every complete event (joined with '\n' for multi-line
// data). Non-"data" fields (comments, event names) are ignored.
class SseParser {
 public:
  // Returns the payloads completed by this feed, in order.
  std::vector<std::string> feed(std::string_view data);

 private:
  std::string buf_;     // partial line carried across feeds
  std::string event_;   // accumulated data lines of the open event
  bool have_data_ = false;
};

// --- minimal JSON field extraction --------------------------------------
// Tolerant single-level field lookup over a JSON object: enough for the
// completion endpoint's request body ({"prompt": ..., "prompt_ids":
// [...], "max_new_tokens": N}) and the loadgen's event payloads, not a
// general parser. Nested objects are not searched; a key appearing only
// inside a nested object or array is not found.

std::optional<std::string> json_string_field(std::string_view json,
                                             std::string_view key);
std::optional<std::int64_t> json_int_field(std::string_view json,
                                           std::string_view key);
std::optional<bool> json_bool_field(std::string_view json,
                                    std::string_view key);
std::optional<std::vector<std::int64_t>> json_int_array_field(
    std::string_view json, std::string_view key);

// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace llmfi::net
