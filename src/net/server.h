#pragma once
// epoll HTTP/SSE front-end over the continuous-batching scheduler
// (DESIGN.md §15). Two threads split the work:
//
//   * io thread     — non-blocking epoll loop: accepts connections,
//                     drives the incremental request parser, routes
//                     (/v1/completions, /metrics, /healthz), flushes
//                     per-connection write buffers, and turns engine
//                     events into SSE frames. Woken from blocking
//                     epoll_wait by an eventfd whenever the engine
//                     thread publishes events.
//   * engine thread — sole owner of the serve::Scheduler (which is
//                     single-threaded by design): drains a command
//                     inbox (submit / cancel / drain), runs tick()
//                     decode passes while work is active, and batches
//                     token/done events back to the io thread.
//
// Token flow: Request::on_token fires inside tick() on the engine
// thread, appends to a per-tick event batch, and one outbox push + one
// eventfd write per tick hands the batch to the io thread, which frames
// each event as an SSE chunk on the owning connection. A client that
// disconnects mid-stream triggers a Cancel command; the scheduler
// retires the slot immediately and its paged KV goes back to the pool
// before the next admission check. Connections whose write buffer
// exceeds the backpressure cap are treated the same way (cancel +
// close) — an unread stream must not buffer without bound.
//
// Drain: request_drain() is async-signal-safe (one atomic store + one
// eventfd write). The io thread stops accepting, completion POSTs get
// 503, in-flight streams finish, and both threads exit once the
// scheduler is idle and every outbuf has flushed. wait() joins.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "serve/scheduler.h"
#include "tokenizer/vocab.h"

namespace llmfi::net {

// Per-request fault / detector context, created on the engine thread at
// admission and destroyed after the request retires. The tool layer
// implements this with a ComputationalFaultInjector plus an optional
// detector stack; the server only knows the two touchpoints.
class RequestHookCtx {
 public:
  virtual ~RequestHookCtx() = default;
  // Installed as Request::hook for this request's rows (may be null).
  virtual nn::LinearHook* linear_hook() { return nullptr; }
  // Runs on the engine thread after the request retires. The returned
  // string (e.g. a detector verdict) is embedded verbatim as the
  // "detector" field of the SSE done event; empty = field omitted.
  virtual std::string on_complete(const serve::Completion& c) {
    (void)c;
    return {};
  }
};
using HookFactory =
    std::function<std::unique_ptr<RequestHookCtx>(std::uint64_t request_id)>;

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = bind an ephemeral port; Server::port() reports it
  // Server-side clamp on a request's max_new_tokens (and the default
  // when the body omits the field).
  int max_new_tokens = 64;
  // Per-connection write-buffer cap: a streaming connection whose
  // unflushed bytes exceed this is cancelled and closed (backpressure).
  std::size_t max_outbuf_bytes = 1 << 20;
  HttpLimits limits;
};

// Front-end counters, all atomics — readable from any thread at any
// time (tests assert on them after wait()).
struct ServerStats {
  std::atomic<std::uint64_t> accepted{0};        // connections accepted
  std::atomic<std::uint64_t> requests{0};        // HTTP requests parsed
  std::atomic<std::uint64_t> completions{0};     // streams admitted
  std::atomic<std::uint64_t> bad_requests{0};    // 4xx responses
  std::atomic<std::uint64_t> rejected_draining{0};  // 503 during drain
  std::atomic<std::uint64_t> disconnect_cancels{0};
  std::atomic<std::uint64_t> backpressure_closes{0};
};

class Server {
 public:
  // Everything the engine thread needs. `sched` must not be touched by
  // any other thread between start() and wait()/stop() — the engine
  // thread is its sole owner. `vocab` is read-only shared state (text
  // decode of streamed tokens, text-prompt encode).
  struct Backend {
    serve::Scheduler& sched;
    const tok::Vocab& vocab;
    // Applied when the request body omits max_new_tokens; bodies that
    // set it are clamped to ServerConfig::max_new_tokens.
    int default_max_new_tokens = 32;
    HookFactory hook_factory;  // null = no per-request fault context
    // GET /varz body provider (JSON build/config snapshot — model shape,
    // kernel tier, SLO thresholds...). Must be thread-safe: the io
    // thread calls it per scrape. Null = a minimal built-in body.
    std::function<std::string()> varz;
  };

  Server(ServerConfig cfg, Backend backend);
  ~Server();  // stop() + join if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens (throws std::runtime_error on failure), then spawns
  // the io and engine threads. port() is valid once start() returns.
  void start();
  int port() const { return bound_port_; }

  // Graceful shutdown trigger; async-signal-safe (atomic store + one
  // eventfd write), so SIGTERM handlers may call it directly.
  void request_drain();

  // Blocks until both threads exit (for a drain-triggered shutdown,
  // until in-flight work finishes and flushes).
  void wait();

  // Hard stop: abandons in-flight work, closes every fd, joins.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServerStats& stats() const { return stats_; }

  // Snapshot published by the engine thread after every loop iteration
  // (for /healthz and tests; reads never touch the scheduler).
  int active() const { return active_pub_.load(std::memory_order_relaxed); }
  std::size_t queued() const {
    return queued_pub_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  // io -> engine commands.
  struct Cmd {
    enum class Kind { Submit, Cancel, Drain } kind;
    std::uint64_t conn_id = 0;
    std::vector<tok::TokenId> prompt;
    int max_new_tokens = 0;
  };

  // engine -> io events (one outbox push + eventfd write per tick).
  struct Event {
    enum class Kind { Token, Done, EngineExit } kind;
    std::uint64_t conn_id = 0;
    std::string payload;  // JSON body of the SSE data line
  };

  void io_main();
  void engine_main();

  // --- io-thread helpers (only the io thread touches Conn state) ---
  void accept_ready();
  void read_ready(Conn& c);
  void write_ready(Conn& c);
  void process_parsed(Conn& c);
  void route(Conn& c, const HttpRequest& req);
  void queue_write(Conn& c, std::string_view data);
  void flush(Conn& c);
  void close_conn(std::uint64_t conn_id, bool cancel_stream);
  void update_epoll(Conn& c);
  void apply_events(std::vector<Event>& events);
  void finish_stream(Conn& c, const Event& ev);

  void push_cmd(Cmd cmd);
  void wake_io();

  ServerConfig cfg_;
  Backend backend_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: engine events + request_drain wakeups
  int bound_port_ = 0;

  std::thread io_thread_;
  std::thread engine_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> engine_done_{false};

  // Engine-published snapshot for /healthz.
  std::atomic<int> active_pub_{0};
  std::atomic<std::size_t> queued_pub_{0};
  std::atomic<bool> draining_pub_{false};

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<Cmd> inbox_;

  std::mutex outbox_mu_;
  std::deque<Event> outbox_;

  // io-thread-only state.
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace llmfi::net
