#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <random>
#include <thread>

#include "net/client.h"

namespace llmfi::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Exact nearest-rank percentile over a sample set (sorts in place).
double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

// Precomputed arrival offsets (seconds from arm start) for open-loop
// modes; deterministic in the arm seed.
std::vector<double> arrival_schedule(const LoadArmConfig& cfg) {
  std::vector<double> at;
  if (cfg.mode == ArrivalMode::Closed) return at;
  at.reserve(static_cast<std::size_t>(cfg.requests));
  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> exp(std::max(cfg.rate_hz, 1e-9));
  double t = 0.0;
  if (cfg.mode == ArrivalMode::Poisson) {
    while (at.size() < static_cast<std::size_t>(cfg.requests)) {
      t += exp(rng);
      at.push_back(t);
    }
  } else {  // Bursty: Poisson while ON, silent OFF gaps between phases
    double phase_end = cfg.on_sec;
    while (at.size() < static_cast<std::size_t>(cfg.requests)) {
      t += exp(rng);
      if (t >= phase_end) {
        t = phase_end + cfg.off_sec;  // jump the OFF gap
        phase_end = t + cfg.on_sec;
        continue;
      }
      at.push_back(t);
    }
  }
  return at;
}

std::string completion_body(const LoadPrompt& p, int max_new) {
  std::string body = "{\"prompt_ids\":[";
  for (std::size_t i = 0; i < p.ids.size(); ++i) {
    if (i > 0) body += ',';
    body += std::to_string(p.ids[i]);
  }
  body += "],\"max_new_tokens\":";
  body += std::to_string(max_new);
  body += "}";
  return body;
}

struct Sample {
  bool completed = false;
  bool mismatch = false;
  bool error = false;
  int n_tokens = 0;
  std::int64_t server_id = -1;  // engine request id from the done event
  double sched_sec = 0.0;       // arrival offset from arm start
  double ttft_ms = 0.0;
  double e2e_ms = 0.0;
  std::vector<double> gaps_ms;  // inter-token arrival gaps
};

}  // namespace

std::string LoadArmResult::json() const {
  std::string out = "{";
  out += "\"name\":\"" + name + "\",\"mode\":\"" + mode + "\"";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"requests\":%d,\"completed\":%d,\"errors\":%d,"
                "\"mismatches\":%d,\"wall_sec\":%.3f,\"tokens\":%llu",
                requests, completed, errors, mismatches, wall_sec,
                static_cast<unsigned long long>(tokens));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"ttft_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}",
                ttft_ms_p50, ttft_ms_p95, ttft_ms_p99);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"token_gap_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}",
                token_gap_ms_p50, token_gap_ms_p95, token_gap_ms_p99);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"e2e_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}",
                e2e_ms_p50, e2e_ms_p95, e2e_ms_p99);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"slo_attainment\":%.4f,\"goodput_rps\":%.3f,"
                "\"throughput_tok_s\":%.3f",
                slo_attainment, goodput_rps, throughput_tok_s);
  out += buf;
  out += ",\"worst_ttft\":[";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    const RequestRecord& w = worst[i];
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"index\":%d,\"server_id\":%lld,\"sched_sec\":%.3f,"
                  "\"ttft_ms\":%.3f,\"gap_p99_ms\":%.3f,\"e2e_ms\":%.3f}",
                  w.index, static_cast<long long>(w.server_id), w.sched_sec,
                  w.ttft_ms, w.gap_p99_ms, w.e2e_ms);
    out += buf;
  }
  out += "]}";
  return out;
}

LoadArmResult run_load_arm(const std::string& host, int port,
                           const std::vector<LoadPrompt>& prompts,
                           const LoadArmConfig& cfg) {
  const std::vector<double> arrivals = arrival_schedule(cfg);
  std::vector<Sample> samples(static_cast<std::size_t>(cfg.requests));
  std::atomic<int> next{0};
  const Clock::time_point t0 = Clock::now();

  auto worker = [&] {
    HttpClient client;
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= cfg.requests) break;
      Sample& s = samples[static_cast<std::size_t>(i)];
      const LoadPrompt& p =
          prompts[static_cast<std::size_t>(i) % prompts.size()];

      // Open loop: latency is measured from the scheduled arrival, and
      // the worker waits out any schedule slack before sending.
      Clock::time_point base = t0;
      if (cfg.mode != ArrivalMode::Closed) {
        base = t0 + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            arrivals[static_cast<std::size_t>(i)]));
        std::this_thread::sleep_until(base);
      }
      if (!client.connected() && !client.connect(host, port)) {
        s.error = true;
        continue;
      }
      if (cfg.mode == ArrivalMode::Closed) base = Clock::now();
      s.sched_sec =
          std::chrono::duration<double>(base - t0).count();

      std::vector<tok::TokenId> got;
      Clock::time_point prev = base;
      bool first = true;
      bool saw_done = false;
      bool saw_cancelled = false;
      const auto on_event = [&](const std::string& ev) {
        if (ev == "[DONE]") return true;
        if (json_bool_field(ev, "done").value_or(false)) {
          saw_done = true;
          saw_cancelled = json_bool_field(ev, "cancelled").value_or(false);
          s.server_id = json_int_field(ev, "id").value_or(-1);
          return true;
        }
        if (const auto tid = json_int_field(ev, "token_id")) {
          const Clock::time_point now = Clock::now();
          if (first) {
            s.ttft_ms = ms_between(base, now);
            first = false;
          } else {
            s.gaps_ms.push_back(ms_between(prev, now));
          }
          prev = now;
          got.push_back(static_cast<tok::TokenId>(*tid));
        }
        return true;
      };
      const auto resp = client.post_sse(
          "/v1/completions", completion_body(p, cfg.max_new_tokens),
          on_event);
      const Clock::time_point end = Clock::now();
      if (!resp || resp->status != 200 || !saw_done || saw_cancelled) {
        s.error = true;
        client.close();
        continue;
      }
      s.completed = true;
      s.n_tokens = static_cast<int>(got.size());
      s.e2e_ms = ms_between(base, end);
      if (cfg.verify && !p.expect.empty()) s.mismatch = (got != p.expect);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.sessions));
  for (int i = 0; i < cfg.sessions; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadArmResult r;
  r.name = cfg.name;
  r.mode = cfg.mode == ArrivalMode::Closed
               ? "closed"
               : (cfg.mode == ArrivalMode::Poisson ? "poisson" : "bursty");
  r.requests = cfg.requests;
  r.wall_sec = wall;
  std::vector<double> ttfts, gaps, e2es;
  int slo_met = 0;
  for (std::size_t si = 0; si < samples.size(); ++si) {
    const Sample& s = samples[si];
    if (s.error) ++r.errors;
    if (!s.completed) continue;
    ++r.completed;
    if (s.mismatch) ++r.mismatches;
    r.tokens += static_cast<std::uint64_t>(s.n_tokens);
    ttfts.push_back(s.ttft_ms);
    e2es.push_back(s.e2e_ms);
    {
      RequestRecord rec;
      rec.index = static_cast<int>(si);
      rec.server_id = s.server_id;
      rec.sched_sec = s.sched_sec;
      rec.ttft_ms = s.ttft_ms;
      std::vector<double> own = s.gaps_ms;
      rec.gap_p99_ms = percentile(own, 0.99);
      rec.e2e_ms = s.e2e_ms;
      r.worst.push_back(rec);
    }
    double gap_sum = 0.0;
    for (const double g : s.gaps_ms) {
      gaps.push_back(g);
      gap_sum += g;
    }
    const double mean_gap =
        s.gaps_ms.empty() ? 0.0
                          : gap_sum / static_cast<double>(s.gaps_ms.size());
    if (s.ttft_ms <= cfg.slo_ttft_ms && mean_gap <= cfg.slo_token_ms) {
      ++slo_met;
    }
  }
  r.ttft_ms_p50 = percentile(ttfts, 0.50);
  r.ttft_ms_p95 = percentile(ttfts, 0.95);
  r.ttft_ms_p99 = percentile(ttfts, 0.99);
  r.token_gap_ms_p50 = percentile(gaps, 0.50);
  r.token_gap_ms_p95 = percentile(gaps, 0.95);
  r.token_gap_ms_p99 = percentile(gaps, 0.99);
  r.e2e_ms_p50 = percentile(e2es, 0.50);
  r.e2e_ms_p95 = percentile(e2es, 0.95);
  r.e2e_ms_p99 = percentile(e2es, 0.99);
  r.slo_attainment =
      r.completed > 0
          ? static_cast<double>(slo_met) / static_cast<double>(r.completed)
          : 0.0;
  r.goodput_rps = wall > 0.0 ? static_cast<double>(slo_met) / wall : 0.0;
  r.throughput_tok_s =
      wall > 0.0 ? static_cast<double>(r.tokens) / wall : 0.0;
  // Worst-TTFT dump: keep the 10 slowest-to-first-token requests (ties
  // broken by arm index for a stable order).
  std::sort(r.worst.begin(), r.worst.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              if (a.ttft_ms != b.ttft_ms) return a.ttft_ms > b.ttft_ms;
              return a.index < b.index;
            });
  if (r.worst.size() > 10) r.worst.resize(10);
  return r;
}

}  // namespace llmfi::net
