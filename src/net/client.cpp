#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace llmfi::net {

HttpClient::~HttpClient() { close(); }

bool HttpClient::connect(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  parser_ = HttpResponseParser{};
  return true;
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::send_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::optional<HttpResponse> HttpClient::fail() {
  close();
  parser_ = HttpResponseParser{};
  return std::nullopt;
}

std::optional<HttpResponse> HttpClient::request(std::string_view method,
                                                std::string_view target,
                                                std::string_view content_type,
                                                std::string_view body) {
  if (fd_ < 0) return std::nullopt;
  std::string req(method);
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: llmfi\r\n";
  if (!content_type.empty()) {
    req += "Content-Type: ";
    req += content_type;
    req += "\r\n";
  }
  if (!body.empty() || method == "POST") {
    req += "Content-Length: ";
    req += std::to_string(body.size());
    req += "\r\n";
  }
  req += "\r\n";
  req += body;
  if (!send_all(req)) return fail();

  char buf[8192];
  while (!parser_.done()) {
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return fail();
    }
    if (parser_.feed(std::string_view(buf, static_cast<std::size_t>(r))) !=
        HttpError::Ok) {
      return fail();
    }
  }
  HttpResponse resp = parser_.response();
  if (parser_.reset() != HttpError::Ok) return fail();
  return resp;
}

std::optional<HttpResponse> HttpClient::post_sse(
    std::string_view target, std::string_view body,
    const std::function<bool(const std::string&)>& on_event) {
  if (fd_ < 0) return std::nullopt;
  std::string req = "POST ";
  req += target;
  req += " HTTP/1.1\r\nHost: llmfi\r\nContent-Type: application/json\r\n";
  req += "Content-Length: ";
  req += std::to_string(body.size());
  req += "\r\n\r\n";
  req += body;
  if (!send_all(req)) return fail();

  SseParser sse;
  char buf[8192];
  while (!parser_.done()) {
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return fail();
    }
    if (parser_.feed(std::string_view(buf, static_cast<std::size_t>(r))) !=
        HttpError::Ok) {
      return fail();
    }
    if (!parser_.headers_done()) continue;
    for (std::string& ev : sse.feed(parser_.body_delta())) {
      if (!on_event(ev)) return fail();  // caller-requested disconnect
    }
  }
  // Flush any events completed by the final read.
  for (std::string& ev : sse.feed(parser_.body_delta())) {
    if (!on_event(ev)) return fail();
  }
  HttpResponse resp = parser_.response();
  if (parser_.reset() != HttpError::Ok) return fail();
  return resp;
}

}  // namespace llmfi::net
