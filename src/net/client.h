#pragma once
// Blocking HTTP/1.1 client connection for the load generator, the
// loopback tests, and CI smoke runs. One instance = one TCP connection;
// requests are issued sequentially over it (keep-alive), and SSE
// responses stream their events through a callback as bytes arrive so
// callers can timestamp tokens mid-download.

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/http.h"

namespace llmfi::net {

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  bool connect(const std::string& host, int port);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Sends one request and blocks until the full response is parsed.
  // `content_type` may be empty for bodyless GETs. nullopt on
  // transport or parse failure (the connection is closed then).
  std::optional<HttpResponse> request(std::string_view method,
                                      std::string_view target,
                                      std::string_view content_type = {},
                                      std::string_view body = {});

  // POSTs `body` and streams the SSE response: `on_event` fires once
  // per complete SSE data payload, in arrival order, while the response
  // is still downloading. Returning false from the callback aborts the
  // stream (the connection closes — the server sees a mid-stream
  // disconnect), and post_sse returns nullopt. Otherwise returns the
  // response with the full de-chunked body.
  std::optional<HttpResponse> post_sse(
      std::string_view target, std::string_view body,
      const std::function<bool(const std::string&)>& on_event);

 private:
  bool send_all(std::string_view data);
  std::optional<HttpResponse> fail();  // close + reset + nullopt

  int fd_ = -1;
  HttpResponseParser parser_;
};

}  // namespace llmfi::net
