#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"

namespace llmfi::net {

namespace {

// epoll user-data keys for the two non-connection fds; connection ids
// start at 1 and never reuse, so no collision is possible.
constexpr std::uint64_t kListenKey = ~std::uint64_t{0};
constexpr std::uint64_t kWakeKey = ~std::uint64_t{0} - 1;

std::string error_body(std::string_view msg) {
  return std::string("{\"error\":\"") + std::string(msg) + "\"}";
}

// Maps a parser error onto the 4xx response the connection dies with.
int error_status(HttpError e) {
  switch (e) {
    case HttpError::BadMethod: return 405;
    case HttpError::HeadersTooLarge: return 431;
    case HttpError::BodyTooLarge: return 413;
    case HttpError::LengthRequired: return 411;
    default: return 400;
  }
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Parses the <id> tail of /v1/requests/<id>; nullopt on empty or
// non-numeric tails (404, matching an unknown request id).
std::optional<std::uint64_t> parse_request_id(std::string_view tail) {
  if (tail.empty() || tail.size() > 20) return std::nullopt;
  std::uint64_t id = 0;
  for (const char ch : tail) {
    if (ch < '0' || ch > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return id;
}

}  // namespace

// Per-connection state; owned and touched exclusively by the io thread.
struct Server::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  HttpRequestParser parser;
  std::string outbuf;
  std::size_t out_off = 0;
  bool want_write = false;  // EPOLLOUT currently armed
  bool streaming = false;   // an SSE completion stream is in flight
  bool stream_keep_alive = true;
  bool closing = false;  // close as soon as the outbuf drains

  explicit Conn(HttpLimits limits) : parser(limits) {}
};

Server::Server(ServerConfig cfg, Backend backend)
    : cfg_(std::move(cfg)), backend_(std::move(backend)) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("Server: bad host " + cfg_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error(std::string("Server: bind failed: ") +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error("Server: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("Server: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  engine_thread_ = std::thread([this] { engine_main(); });
  io_thread_ = std::thread([this] { io_main(); });
}

void Server::request_drain() {
  drain_requested_.store(true);
  wake_io();  // one write(2) — async-signal-safe
}

void Server::wake_io() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::push_cmd(Cmd cmd) {
  {
    std::lock_guard<std::mutex> lk(inbox_mu_);
    inbox_.push_back(std::move(cmd));
  }
  inbox_cv_.notify_one();
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
  if (engine_thread_.joinable()) engine_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void Server::stop() {
  if (!io_thread_.joinable() && !engine_thread_.joinable()) return;
  stop_requested_.store(true);
  inbox_cv_.notify_all();
  wake_io();
  wait();
}

// --- engine thread -------------------------------------------------------

void Server::engine_main() {
  serve::Scheduler& sched = backend_.sched;
  std::map<std::uint64_t, std::uint64_t> req_conn;  // request -> connection
  std::map<std::uint64_t, std::uint64_t> conn_req;  // connection -> request
  std::map<std::uint64_t, std::unique_ptr<RequestHookCtx>> ctxs;
  std::uint64_t next_req_id = 1;
  std::vector<Event> batch;  // events accumulated this iteration

  const auto token_payload = [this](int index, tok::TokenId t) {
    std::string text;
    if (t >= 0 && t < backend_.vocab.size() && !backend_.vocab.is_special(t)) {
      text = backend_.vocab.word(t);
    }
    std::string p = "{\"index\":";
    p += std::to_string(index);
    p += ",\"token_id\":";
    p += std::to_string(t);
    p += ",\"text\":\"";
    p += json_escape(text);
    p += "\"}";
    return p;
  };
  const auto done_payload = [&](const serve::Completion& c) {
    std::string det;
    if (const auto it = ctxs.find(c.id); it != ctxs.end() && it->second) {
      det = it->second->on_complete(c);
    }
    std::string p = "{\"done\":true,\"id\":";
    p += std::to_string(c.id);
    p += ",\"tokens\":";
    p += std::to_string(c.tokens.size());
    p += ",\"cancelled\":";
    p += c.cancelled ? "true" : "false";
    p += ",\"hit_max_tokens\":";
    p += c.hit_max_tokens ? "true" : "false";
    p += ",\"nonfinite\":";
    p += c.nonfinite_logits ? "true" : "false";
    if (!det.empty()) {
      p += ",\"detector\":\"";
      p += json_escape(det);
      p += "\"";
    }
    p += "}";
    return p;
  };

  for (;;) {
    std::deque<Cmd> cmds;
    {
      std::unique_lock<std::mutex> lk(inbox_mu_);
      // Park only when truly idle: with active sequences the loop must
      // keep ticking, commands or not.
      inbox_cv_.wait(lk, [&] {
        return stop_requested_.load() || !inbox_.empty() || !sched.idle();
      });
      cmds.swap(inbox_);
    }
    if (stop_requested_.load()) break;

    for (Cmd& cmd : cmds) {
      switch (cmd.kind) {
        case Cmd::Kind::Submit: {
          const std::uint64_t conn = cmd.conn_id;
          if (sched.draining()) {
            // Raced with drain after the io thread's 503 check: the
            // stream headers are already on the wire, so terminate the
            // stream with a cancelled done event instead of throwing.
            serve::Completion c;
            c.id = 0;
            c.cancelled = true;
            batch.push_back(
                {Event::Kind::Done, conn, done_payload(c)});
            break;
          }
          serve::Request r;
          r.id = next_req_id++;
          r.prompt = std::move(cmd.prompt);
          r.max_new_tokens = cmd.max_new_tokens;
          r.eos = backend_.vocab.eos();
          // Observability identity, minted once at HTTP accept time:
          // the connection id as the trace (one client interaction can
          // pipeline several requests) and the engine request id — the
          // same id the SSE done event reports — as the request, so a
          // client can fetch GET /v1/requests/<id> afterwards.
          r.ctx.trace_id = cmd.conn_id;
          r.ctx.request_id = r.id;
          if (backend_.hook_factory) {
            auto ctx = backend_.hook_factory(r.id);
            if (ctx) {
              r.hook = ctx->linear_hook();
              ctxs[r.id] = std::move(ctx);
            }
          }
          req_conn[r.id] = conn;
          conn_req[conn] = r.id;
          r.on_token = [&batch, conn, &token_payload](
                           std::uint64_t, int index, tok::TokenId t) {
            batch.push_back(
                {Event::Kind::Token, conn, token_payload(index, t)});
          };
          r.on_done = [&batch, conn, &done_payload](
                          const serve::Completion& c) {
            batch.push_back({Event::Kind::Done, conn, done_payload(c)});
          };
          sched.submit(std::move(r));
          break;
        }
        case Cmd::Kind::Cancel: {
          const auto it = conn_req.find(cmd.conn_id);
          if (it == conn_req.end()) break;  // already retired: benign race
          std::vector<serve::Completion> done;
          sched.cancel(it->second, done);  // on_done queues the Done event
          break;
        }
        case Cmd::Kind::Drain: {
          if (!sched.draining()) sched.drain();
          draining_pub_.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }

    std::vector<serve::Completion> done;
    if (!sched.idle()) sched.tick(done);

    // Retired-request bookkeeping happens outside the callbacks: the
    // hook context must stay alive for the whole decode pass that
    // retires its request.
    for (const serve::Completion& c : done) {
      ctxs.erase(c.id);
      if (const auto it = req_conn.find(c.id); it != req_conn.end()) {
        if (const auto cit = conn_req.find(it->second);
            cit != conn_req.end() && cit->second == c.id) {
          conn_req.erase(cit);
        }
        req_conn.erase(it);
      }
    }

    active_pub_.store(sched.active(), std::memory_order_relaxed);
    queued_pub_.store(sched.queued(), std::memory_order_relaxed);

    if (!batch.empty()) {
      {
        std::lock_guard<std::mutex> lk(outbox_mu_);
        for (Event& e : batch) outbox_.push_back(std::move(e));
      }
      batch.clear();
      wake_io();
    }

    if (draining_pub_.load(std::memory_order_relaxed) && sched.idle()) {
      std::lock_guard<std::mutex> lk(inbox_mu_);
      if (inbox_.empty()) break;  // drained: nothing queued, nothing active
    }
  }

  {
    std::lock_guard<std::mutex> lk(outbox_mu_);
    outbox_.push_back({Event::Kind::EngineExit, 0, {}});
  }
  engine_done_.store(true, std::memory_order_release);
  wake_io();
}

// --- io thread -----------------------------------------------------------

void Server::io_main() {
  bool engine_exited = false;
  epoll_event evs[64];

  for (;;) {
    if (stop_requested_.load()) break;

    if (drain_requested_.load() && listen_fd_ >= 0) {
      // Stop accepting; existing connections keep running. The engine
      // learns about the drain through the command inbox so ordering
      // with in-flight submits stays well-defined.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      push_cmd({Cmd::Kind::Drain, 0, {}, 0});
    }

    const int n = ::epoll_wait(epoll_fd_, evs, 64, 100);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = evs[i].data.u64;
      if (key == kWakeKey) {
        std::uint64_t drainv = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drainv, sizeof(drainv));
        continue;
      }
      if (key == kListenKey) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        if (c.streaming) stats_.disconnect_cancels.fetch_add(1);
        close_conn(c.id, /*cancel_stream=*/true);
        continue;
      }
      if (evs[i].events & EPOLLIN) read_ready(c);
      // read_ready may have closed the connection; re-validate.
      if (const auto it2 = conns_.find(key); it2 != conns_.end()) {
        if (evs[i].events & EPOLLOUT) write_ready(*it2->second);
      }
    }

    // Apply whatever the engine published (checked every iteration, not
    // only on eventfd wakeups, so a missed edge can cost 100ms at most).
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lk(outbox_mu_);
      while (!outbox_.empty()) {
        events.push_back(std::move(outbox_.front()));
        outbox_.pop_front();
      }
    }
    for (const Event& e : events) {
      if (e.kind == Event::Kind::EngineExit) engine_exited = true;
    }
    apply_events(events);

    if (engine_exited) {
      // No more events will ever arrive: close every connection whose
      // outbuf has drained, exit once none remain.
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::uint64_t id = it->first;
        const bool flushed = it->second->out_off >= it->second->outbuf.size();
        ++it;
        if (flushed) close_conn(id, /*cancel_stream=*/false);
      }
      if (conns_.empty()) break;
    }
  }

  for (auto& [id, c] : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  obs::gauge_set("net_open_connections", 0.0);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>(cfg_.limits);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[conn->id] = std::move(conn);
    stats_.accepted.fetch_add(1);
    obs::gauge_set("net_open_connections",
                   static_cast<double>(conns_.size()));
  }
}

void Server::read_ready(Conn& c) {
  const std::uint64_t id = c.id;
  char buf[8192];
  for (;;) {
    const ssize_t r = ::recv(c.fd, buf, sizeof(buf), 0);
    if (r > 0) {
      const HttpError e =
          c.parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
      if (e != HttpError::Ok) {
        stats_.bad_requests.fetch_add(1);
        queue_write(c, make_response(error_status(e), "application/json",
                                     error_body("malformed request"),
                                     /*keep_alive=*/false));
        if (conns_.count(id) == 0) return;  // backpressure close
        c.closing = true;
        flush(c);
        return;
      }
      process_parsed(c);
      if (conns_.count(id) == 0) return;
      continue;
    }
    if (r == 0) {  // peer closed
      if (c.streaming) stats_.disconnect_cancels.fetch_add(1);
      close_conn(id, /*cancel_stream=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    if (c.streaming) stats_.disconnect_cancels.fetch_add(1);
    close_conn(id, /*cancel_stream=*/true);
    return;
  }
}

void Server::process_parsed(Conn& c) {
  const std::uint64_t id = c.id;
  // A streaming connection defers its next pipelined request until the
  // done event flushes (finish_stream resets the parser then).
  while (!c.streaming && !c.closing && c.parser.done()) {
    stats_.requests.fetch_add(1);
    obs::count("net_http_requests_total");
    route(c, c.parser.request());
    if (conns_.count(id) == 0) return;  // closed by backpressure
    if (c.streaming || c.closing) break;
    const HttpError e = c.parser.reset();
    if (e != HttpError::Ok) {
      stats_.bad_requests.fetch_add(1);
      queue_write(c, make_response(error_status(e), "application/json",
                                   error_body("malformed request"),
                                   /*keep_alive=*/false));
      if (conns_.count(id) == 0) return;
      c.closing = true;
      break;
    }
  }
  flush(c);
}

void Server::route(Conn& c, const HttpRequest& req) {
  const std::uint64_t id = c.id;
  std::string_view target = req.target;
  if (const auto q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);
  }
  const bool ka = req.keep_alive();

  if (req.method == "GET" && target == "/healthz") {
    std::string body = "{\"status\":\"";
    body += draining_pub_.load(std::memory_order_relaxed) ||
                    drain_requested_.load()
                ? "draining"
                : "ok";
    body += "\",\"active\":";
    body += std::to_string(active_pub_.load(std::memory_order_relaxed));
    body += ",\"queued\":";
    body += std::to_string(queued_pub_.load(std::memory_order_relaxed));
    body += "}";
    queue_write(c, make_response(200, "application/json", body, ka));
  } else if (req.method == "GET" && target == "/metrics") {
    // Fold the SLO windows into gauges at scrape time so every scrape
    // sees attainment/burn over the seconds that just elapsed (no-op
    // unless a front-end armed the monitor).
    obs::SloMonitor::global().publish(
        static_cast<std::uint64_t>(steady_now_us()));
    queue_write(c, make_response(200, "text/plain; version=0.0.4",
                                 obs::Registry::global().prometheus(), ka));
  } else if (req.method == "GET" && target == "/varz") {
    std::string body =
        backend_.varz ? backend_.varz()
                      : std::string("{\"server\":\"llmfi_serve\"}");
    queue_write(c, make_response(200, "application/json", body, ka));
  } else if (req.method == "GET" && target == "/v1/requests") {
    // Full flight-recorder dump (the CI artifact): every event currently
    // held in the per-thread rings, merged and time-ordered.
    queue_write(c, make_response(200, "application/json",
                                 obs::recorder_json(), ka));
  } else if (req.method == "GET" &&
             target.size() > 13 &&
             target.substr(0, 13) == "/v1/requests/") {
    const auto rid = parse_request_id(target.substr(13));
    std::optional<std::string> timeline;
    if (rid.has_value()) {
      timeline = obs::recorder_request_timeline_json(*rid);
    }
    if (timeline.has_value()) {
      queue_write(c, make_response(200, "application/json", *timeline, ka));
    } else {
      stats_.bad_requests.fetch_add(1);
      queue_write(c, make_response(404, "application/json",
                                   error_body("unknown request id"), ka));
    }
  } else if (req.method == "POST" && target == "/v1/completions") {
    if (draining_pub_.load(std::memory_order_relaxed) ||
        drain_requested_.load()) {
      stats_.rejected_draining.fetch_add(1);
      queue_write(c, make_response(503, "application/json",
                                   error_body("draining"), ka));
    } else {
      std::vector<tok::TokenId> prompt;
      bool bad = false;
      if (const auto ids = json_int_array_field(req.body, "prompt_ids")) {
        prompt.reserve(ids->size());
        for (const std::int64_t v : *ids) {
          if (v < 0 || v >= backend_.vocab.size()) {
            bad = true;
            break;
          }
          prompt.push_back(static_cast<tok::TokenId>(v));
        }
      } else if (const auto text = json_string_field(req.body, "prompt")) {
        prompt.push_back(backend_.vocab.bos());
        for (const tok::TokenId t : backend_.vocab.encode(*text)) {
          prompt.push_back(t);
        }
      }
      if (bad || prompt.empty()) {
        stats_.bad_requests.fetch_add(1);
        queue_write(c,
                    make_response(400, "application/json",
                                  error_body("need prompt or prompt_ids"),
                                  ka));
      } else {
        int max_new = backend_.default_max_new_tokens;
        if (const auto m = json_int_field(req.body, "max_new_tokens")) {
          max_new = static_cast<int>(*m);
        }
        max_new = std::min(std::max(max_new, 1), cfg_.max_new_tokens);
        stats_.completions.fetch_add(1);
        c.streaming = true;
        c.stream_keep_alive = ka;
        queue_write(c, make_stream_headers(200, "text/event-stream", ka));
        push_cmd({Cmd::Kind::Submit, c.id, std::move(prompt), max_new});
      }
    }
  } else {
    stats_.bad_requests.fetch_add(1);
    queue_write(c, make_response(404, "application/json",
                                 error_body("not found"), ka));
  }
  if (const auto it = conns_.find(id); it != conns_.end()) {
    Conn& alive = *it->second;
    if (!alive.streaming && !ka) alive.closing = true;
  }
}

void Server::apply_events(std::vector<Event>& events) {
  for (Event& e : events) {
    if (e.kind == Event::Kind::EngineExit) continue;
    const auto it = conns_.find(e.conn_id);
    if (it == conns_.end()) continue;  // client went away: drop the event
    Conn& c = *it->second;
    if (!c.streaming) continue;
    if (e.kind == Event::Kind::Token) {
      obs::count("net_sse_events_total");
      queue_write(c, chunk(sse_event(e.payload)));
      if (conns_.count(e.conn_id)) flush(c);
    } else {
      finish_stream(c, e);
    }
  }
}

void Server::finish_stream(Conn& c, const Event& ev) {
  const std::uint64_t id = c.id;
  obs::count("net_sse_events_total");
  std::string tail = chunk(sse_event(ev.payload));
  tail += chunk(sse_event("[DONE]"));
  tail += last_chunk();
  queue_write(c, tail);
  if (conns_.count(id) == 0) return;
  c.streaming = false;
  if (!c.stream_keep_alive) {
    c.closing = true;
    flush(c);
    return;
  }
  // Pipelined bytes may already hold the next request.
  const HttpError e = c.parser.reset();
  if (e != HttpError::Ok) {
    stats_.bad_requests.fetch_add(1);
    queue_write(c, make_response(error_status(e), "application/json",
                                 error_body("malformed request"),
                                 /*keep_alive=*/false));
    if (conns_.count(id) == 0) return;
    c.closing = true;
    flush(c);
    return;
  }
  process_parsed(c);
}

void Server::queue_write(Conn& c, std::string_view data) {
  c.outbuf.append(data);
  if (c.outbuf.size() - c.out_off > cfg_.max_outbuf_bytes) {
    // The peer is not reading fast enough (or at all): cancel the
    // stream rather than buffering without bound.
    stats_.backpressure_closes.fetch_add(1);
    close_conn(c.id, /*cancel_stream=*/true);
  }
}

void Server::flush(Conn& c) {
  if (c.out_off > 0) {
    c.outbuf.erase(0, c.out_off);
    c.out_off = 0;
  }
  while (c.out_off < c.outbuf.size()) {
    const ssize_t w = ::send(c.fd, c.outbuf.data() + c.out_off,
                             c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      c.out_off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    if (c.streaming) stats_.disconnect_cancels.fetch_add(1);
    close_conn(c.id, /*cancel_stream=*/true);
    return;
  }
  if (c.out_off >= c.outbuf.size()) {
    c.outbuf.clear();
    c.out_off = 0;
    if (c.want_write) {
      c.want_write = false;
      update_epoll(c);
    }
    if (c.closing) close_conn(c.id, /*cancel_stream=*/false);
  } else if (!c.want_write) {
    c.want_write = true;
    update_epoll(c);
  }
}

void Server::write_ready(Conn& c) { flush(c); }

void Server::update_epoll(Conn& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::close_conn(std::uint64_t conn_id, bool cancel_stream) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (cancel_stream && c.streaming) {
    push_cmd({Cmd::Kind::Cancel, conn_id, {}, 0});
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  conns_.erase(it);
  obs::gauge_set("net_open_connections", static_cast<double>(conns_.size()));
}

}  // namespace llmfi::net
