#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace llmfi::net {

namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Pops one line (terminated by '\n', optional preceding '\r' stripped)
// off the front of `buf`. Returns nullopt when no full line is buffered.
std::optional<std::string> pop_line(std::string& buf) {
  const auto nl = buf.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::string line = buf.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(0, nl + 1);
  return line;
}

// Splits "Name: value" into the headers map (lower-cased name, trimmed
// value). Returns false on a malformed header line.
bool parse_header_line(const std::string& line,
                       std::map<std::string, std::string>& headers) {
  const auto colon = line.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  std::string name = to_lower(trim(std::string_view(line).substr(0, colon)));
  if (name.empty()) return false;
  headers[std::move(name)] =
      std::string(trim(std::string_view(line).substr(colon + 1)));
  return true;
}

bool parse_size(std::string_view s, std::size_t& out, int base = 10) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::string tmp(s);
  errno = 0;
  const unsigned long long v = std::strtoull(tmp.c_str(), &end, base);
  if (errno != 0 || end == tmp.c_str() || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

std::string_view status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

// --- HttpRequest ---------------------------------------------------------

std::string_view HttpRequest::header(std::string_view name) const {
  const auto it = headers.find(to_lower(name));
  return it == headers.end() ? std::string_view{}
                             : std::string_view(it->second);
}

bool HttpRequest::keep_alive() const {
  const auto conn = header("connection");
  if (iequals(conn, "close")) return false;
  if (version == "HTTP/1.0") return iequals(conn, "keep-alive");
  return true;  // HTTP/1.1 default
}

// --- HttpRequestParser ---------------------------------------------------

HttpError HttpRequestParser::feed(std::string_view data) {
  if (state_ == State::Error) return HttpError::BadRequest;
  buf_.append(data);
  return parse_buffered();
}

HttpError HttpRequestParser::reset() {
  state_ = State::RequestLine;
  header_bytes_ = 0;
  content_length_ = 0;
  req_ = HttpRequest{};
  return parse_buffered();  // pipelined bytes already buffered
}

HttpError HttpRequestParser::parse_buffered() {
  for (;;) {
    switch (state_) {
      case State::RequestLine: {
        if (header_bytes_ + buf_.size() > limits_.max_header_bytes &&
            buf_.find('\n') == std::string::npos) {
          return fail(HttpError::HeadersTooLarge);
        }
        auto line = pop_line(buf_);
        if (!line) return HttpError::Ok;
        header_bytes_ += line->size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return fail(HttpError::HeadersTooLarge);
        }
        if (line->empty()) continue;  // tolerate leading blank line(s)
        const auto sp1 = line->find(' ');
        const auto sp2 = line->rfind(' ');
        if (sp1 == std::string::npos || sp2 == sp1) {
          return fail(HttpError::BadRequest);
        }
        req_.method = line->substr(0, sp1);
        req_.target = line->substr(sp1 + 1, sp2 - sp1 - 1);
        req_.version = line->substr(sp2 + 1);
        if (req_.method != "GET" && req_.method != "POST") {
          return fail(HttpError::BadMethod);
        }
        if (req_.target.empty() || req_.target.front() != '/' ||
            req_.version.rfind("HTTP/", 0) != 0) {
          return fail(HttpError::BadRequest);
        }
        state_ = State::Headers;
        break;
      }
      case State::Headers: {
        if (header_bytes_ + buf_.size() > limits_.max_header_bytes &&
            buf_.find('\n') == std::string::npos) {
          return fail(HttpError::HeadersTooLarge);
        }
        auto line = pop_line(buf_);
        if (!line) return HttpError::Ok;
        header_bytes_ += line->size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return fail(HttpError::HeadersTooLarge);
        }
        if (!line->empty()) {
          if (!parse_header_line(*line, req_.headers)) {
            return fail(HttpError::BadRequest);
          }
          break;
        }
        // Blank line: headers complete. Resolve the body length.
        const auto cl = req_.header("content-length");
        if (cl.empty()) {
          if (req_.method == "POST") return fail(HttpError::LengthRequired);
          content_length_ = 0;
        } else if (!parse_size(cl, content_length_)) {
          return fail(HttpError::BadRequest);
        }
        if (content_length_ > limits_.max_body_bytes) {
          return fail(HttpError::BodyTooLarge);
        }
        state_ = content_length_ == 0 ? State::Done : State::Body;
        break;
      }
      case State::Body: {
        if (buf_.size() < content_length_) return HttpError::Ok;
        req_.body = buf_.substr(0, content_length_);
        buf_.erase(0, content_length_);
        state_ = State::Done;
        break;
      }
      case State::Done:
        return HttpError::Ok;
      case State::Error:
        return HttpError::BadRequest;
    }
  }
}

// --- HttpResponseParser --------------------------------------------------

std::string_view HttpResponse::header(std::string_view name) const {
  const auto it = headers.find(to_lower(name));
  return it == headers.end() ? std::string_view{}
                             : std::string_view(it->second);
}

HttpError HttpResponseParser::feed(std::string_view data) {
  if (state_ == State::Error) return HttpError::BadRequest;
  buf_.append(data);
  return parse_buffered();
}

HttpError HttpResponseParser::reset() {
  state_ = State::StatusLine;
  chunk_phase_ = ChunkPhase::Size;
  chunk_remaining_ = 0;
  header_bytes_ = 0;
  content_length_ = 0;
  until_close_ = false;
  delta_mark_ = 0;
  resp_ = HttpResponse{};
  return parse_buffered();
}

HttpError HttpResponseParser::parse_buffered() {
  for (;;) {
    switch (state_) {
      case State::StatusLine: {
        auto line = pop_line(buf_);
        if (!line) return HttpError::Ok;
        header_bytes_ += line->size() + 2;
        if (line->empty()) continue;
        const auto sp1 = line->find(' ');
        if (sp1 == std::string::npos || line->rfind("HTTP/", 0) != 0) {
          return fail(HttpError::BadRequest);
        }
        resp_.version = line->substr(0, sp1);
        resp_.status = std::atoi(line->c_str() + sp1 + 1);
        if (resp_.status < 100 || resp_.status > 599) {
          return fail(HttpError::BadRequest);
        }
        state_ = State::Headers;
        break;
      }
      case State::Headers: {
        auto line = pop_line(buf_);
        if (!line) {
          return header_bytes_ + buf_.size() > limits_.max_header_bytes
                     ? fail(HttpError::HeadersTooLarge)
                     : HttpError::Ok;
        }
        header_bytes_ += line->size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return fail(HttpError::HeadersTooLarge);
        }
        if (!line->empty()) {
          if (!parse_header_line(*line, resp_.headers)) {
            return fail(HttpError::BadRequest);
          }
          break;
        }
        if (iequals(resp_.header("transfer-encoding"), "chunked")) {
          state_ = State::Chunked;
          chunk_phase_ = ChunkPhase::Size;
        } else if (const auto cl = resp_.header("content-length");
                   !cl.empty()) {
          if (!parse_size(cl, content_length_)) {
            return fail(HttpError::BadRequest);
          }
          if (content_length_ > limits_.max_body_bytes) {
            return fail(HttpError::BodyTooLarge);
          }
          state_ = content_length_ == 0 ? State::Done : State::Body;
        } else {
          until_close_ = true;  // body runs to connection close
          state_ = State::Body;
        }
        break;
      }
      case State::Body: {
        if (until_close_) {
          resp_.body.append(buf_);
          buf_.clear();
          if (resp_.body.size() > limits_.max_body_bytes) {
            return fail(HttpError::BodyTooLarge);
          }
          return HttpError::Ok;  // finalized by feed_eof semantics upstream
        }
        const std::size_t need = content_length_ - resp_.body.size();
        const std::size_t take = std::min(need, buf_.size());
        resp_.body.append(buf_, 0, take);
        buf_.erase(0, take);
        if (resp_.body.size() == content_length_) state_ = State::Done;
        if (state_ != State::Done) return HttpError::Ok;
        break;
      }
      case State::Chunked: {
        switch (chunk_phase_) {
          case ChunkPhase::Size: {
            auto line = pop_line(buf_);
            if (!line) return HttpError::Ok;
            // Drop chunk extensions (";...") per RFC 7230 §4.1.
            const auto semi = line->find(';');
            if (semi != std::string::npos) line->erase(semi);
            std::size_t sz = 0;
            if (!parse_size(trim(*line), sz, 16)) {
              return fail(HttpError::BadRequest);
            }
            chunk_remaining_ = sz;
            chunk_phase_ = sz == 0 ? ChunkPhase::Trailer : ChunkPhase::Data;
            break;
          }
          case ChunkPhase::Data: {
            const std::size_t take = std::min(chunk_remaining_, buf_.size());
            resp_.body.append(buf_, 0, take);
            buf_.erase(0, take);
            chunk_remaining_ -= take;
            if (resp_.body.size() > limits_.max_body_bytes) {
              return fail(HttpError::BodyTooLarge);
            }
            if (chunk_remaining_ > 0) return HttpError::Ok;
            chunk_phase_ = ChunkPhase::DataCrlf;
            break;
          }
          case ChunkPhase::DataCrlf: {
            auto line = pop_line(buf_);
            if (!line) return HttpError::Ok;
            if (!line->empty()) return fail(HttpError::BadRequest);
            chunk_phase_ = ChunkPhase::Size;
            break;
          }
          case ChunkPhase::Trailer: {
            auto line = pop_line(buf_);
            if (!line) return HttpError::Ok;
            if (line->empty()) state_ = State::Done;
            break;
          }
        }
        break;
      }
      case State::Done:
        return HttpError::Ok;
      case State::Error:
        return HttpError::BadRequest;
    }
  }
}

// --- serialization -------------------------------------------------------

std::string make_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string make_stream_headers(int status, std::string_view content_type,
                                bool keep_alive) {
  std::string out;
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\n";
  out += "Connection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  return out;
}

std::string chunk(std::string_view payload) {
  char size_line[24];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", payload.size());
  std::string out(size_line);
  out += payload;
  out += "\r\n";
  return out;
}

std::string_view last_chunk() { return "0\r\n\r\n"; }

// --- SSE -----------------------------------------------------------------

std::string sse_event(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  std::size_t start = 0;
  for (;;) {
    const auto nl = payload.find('\n', start);
    out += "data: ";
    out += payload.substr(start, nl == std::string_view::npos
                                     ? std::string_view::npos
                                     : nl - start);
    out += '\n';
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  out += '\n';
  return out;
}

std::vector<std::string> SseParser::feed(std::string_view data) {
  buf_.append(data);
  std::vector<std::string> out;
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl == std::string::npos) break;
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      // Event boundary: emit accumulated data lines, if any.
      if (!event_.empty()) {
        out.push_back(std::move(event_));
        event_.clear();
        have_data_ = false;
      } else if (have_data_) {
        out.emplace_back();  // explicit empty "data:" event
        have_data_ = false;
      }
      continue;
    }
    if (line.rfind("data:", 0) == 0) {
      std::string_view v(line);
      v.remove_prefix(5);
      if (!v.empty() && v.front() == ' ') v.remove_prefix(1);
      if (have_data_) event_ += '\n';
      event_.append(v);
      have_data_ = true;
    }
    // Other fields (event:, id:, retry:, comments) are ignored.
  }
  return out;
}

// --- minimal JSON --------------------------------------------------------

namespace {

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i;
}

// Parses the JSON string starting at s[i] == '"'. Returns the decoded
// text and the index one past the closing quote.
std::optional<std::pair<std::string, std::size_t>> parse_json_string(
    std::string_view s, std::size_t i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  std::string out;
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') return std::make_pair(std::move(out), i + 1);
    if (c != '\\') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 >= s.size()) return std::nullopt;
    const char e = s[i + 1];
    i += 2;
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 > s.size()) return std::nullopt;
        unsigned cp = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[i + static_cast<std::size_t>(k)];
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return std::nullopt;
        }
        i += 4;
        // BMP-only UTF-8 encoding; surrogates come out as-is (the
        // word-level vocab never produces them).
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

// Index one past the value starting at s[i] (string / number / literal /
// object / array), or nullopt on malformed input.
std::optional<std::size_t> value_end(std::string_view s, std::size_t i) {
  if (i >= s.size()) return std::nullopt;
  const char c = s[i];
  if (c == '"') {
    const auto str = parse_json_string(s, i);
    if (!str) return std::nullopt;
    return str->second;
  }
  if (c == '{' || c == '[') {
    int depth = 0;
    bool in_str = false;
    while (i < s.size()) {
      const char d = s[i];
      if (in_str) {
        if (d == '\\') ++i;
        else if (d == '"') in_str = false;
      } else if (d == '"') {
        in_str = true;
      } else if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return std::nullopt;
  }
  // number / true / false / null: scan to the next delimiter
  std::size_t j = i;
  while (j < s.size() && s[j] != ',' && s[j] != '}' && s[j] != ']' &&
         s[j] != ' ' && s[j] != '\t' && s[j] != '\n' && s[j] != '\r') {
    ++j;
  }
  return j == i ? std::nullopt : std::optional<std::size_t>(j);
}

// Raw text of the value for top-level `key` in the object `json`.
std::optional<std::string_view> find_raw(std::string_view json,
                                         std::string_view key) {
  std::size_t i = skip_ws(json, 0);
  if (i >= json.size() || json[i] != '{') return std::nullopt;
  i = skip_ws(json, i + 1);
  if (i < json.size() && json[i] == '}') return std::nullopt;
  for (;;) {
    const auto k = parse_json_string(json, i);
    if (!k) return std::nullopt;
    i = skip_ws(json, k->second);
    if (i >= json.size() || json[i] != ':') return std::nullopt;
    i = skip_ws(json, i + 1);
    const auto ve = value_end(json, i);
    if (!ve) return std::nullopt;
    if (k->first == key) return json.substr(i, *ve - i);
    i = skip_ws(json, *ve);
    if (i >= json.size()) return std::nullopt;
    if (json[i] == '}') return std::nullopt;
    if (json[i] != ',') return std::nullopt;
    i = skip_ws(json, i + 1);
  }
}

}  // namespace

std::optional<std::string> json_string_field(std::string_view json,
                                             std::string_view key) {
  const auto raw = find_raw(json, key);
  if (!raw || raw->empty() || raw->front() != '"') return std::nullopt;
  const auto str = parse_json_string(*raw, 0);
  if (!str) return std::nullopt;
  return str->first;
}

std::optional<std::int64_t> json_int_field(std::string_view json,
                                           std::string_view key) {
  const auto raw = find_raw(json, key);
  if (!raw) return std::nullopt;
  std::string tmp(*raw);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno != 0 || end == tmp.c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<bool> json_bool_field(std::string_view json,
                                    std::string_view key) {
  const auto raw = find_raw(json, key);
  if (!raw) return std::nullopt;
  if (*raw == "true") return true;
  if (*raw == "false") return false;
  return std::nullopt;
}

std::optional<std::vector<std::int64_t>> json_int_array_field(
    std::string_view json, std::string_view key) {
  const auto raw = find_raw(json, key);
  if (!raw || raw->empty() || raw->front() != '[') return std::nullopt;
  std::vector<std::int64_t> out;
  std::string_view s = *raw;
  std::size_t i = skip_ws(s, 1);
  if (i < s.size() && s[i] == ']') return out;
  for (;;) {
    std::size_t j = i;
    while (j < s.size() && (s[j] == '-' || (s[j] >= '0' && s[j] <= '9'))) {
      ++j;
    }
    if (j == i) return std::nullopt;
    std::string tmp(s.substr(i, j - i));
    out.push_back(std::strtoll(tmp.c_str(), nullptr, 10));
    i = skip_ws(s, j);
    if (i >= s.size()) return std::nullopt;
    if (s[i] == ']') return out;
    if (s[i] != ',') return std::nullopt;
    i = skip_ws(s, i + 1);
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace llmfi::net
