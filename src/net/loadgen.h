#pragma once
// Closed- and open-loop load generator over the HTTP/SSE client
// (DESIGN.md §15): N concurrent sessions drive /v1/completions on a
// running server, timestamp every streamed token at arrival, verify
// token identity against a caller-supplied oracle, and reduce the
// per-request samples to exact (order-statistic) tail percentiles plus
// SLO attainment and goodput.
//
// Open-loop arms measure latency from each request's *scheduled*
// arrival time, not its send time, so a stalled server inflates the
// tail instead of silently thinning the arrival process (the
// coordinated-omission trap). Arrival schedules are precomputed from
// the arm's seed, so an arm is reproducible load-shape-wise even
// though wall-clock latencies vary run to run.

#include <cstdint>
#include <string>
#include <vector>

#include "tokenizer/vocab.h"

namespace llmfi::net {

struct LoadPrompt {
  std::vector<tok::TokenId> ids;     // sent as prompt_ids
  std::vector<tok::TokenId> expect;  // sequential-oracle tokens; empty =
                                     // skip identity verification
};

enum class ArrivalMode {
  Closed,   // each session fires its next request on completion
  Poisson,  // open loop: exponential inter-arrivals at rate_hz
  Bursty,   // open loop: ON/OFF phases, Poisson at rate_hz while ON
};

struct LoadArmConfig {
  std::string name = "arm";
  ArrivalMode mode = ArrivalMode::Closed;
  int sessions = 8;       // concurrent connections (worker threads)
  int requests = 64;      // total requests issued by the arm
  double rate_hz = 32.0;  // open-loop mean arrival rate (while ON)
  double on_sec = 0.5;    // bursty: ON phase length
  double off_sec = 0.5;   // bursty: OFF gap length
  int max_new_tokens = 16;
  double slo_ttft_ms = 200.0;   // per-request TTFT SLO
  double slo_token_ms = 100.0;  // per-request mean inter-token gap SLO
  std::uint64_t seed = 1234;    // arrival schedule + prompt ordering
  bool verify = true;           // compare streamed ids to the oracle
};

// One completed request's identity + latency record, kept for the
// worst-TTFT dump: `server_id` is the engine-assigned request id the SSE
// done event reported, so a tail outlier here can be joined against the
// server's GET /v1/requests/<id> flight-recorder timeline.
struct RequestRecord {
  int index = 0;            // arm-side request index
  std::int64_t server_id = -1;  // server request id (-1 = not reported)
  double sched_sec = 0.0;   // scheduled arrival, seconds from arm start
  double ttft_ms = 0.0;
  double gap_p99_ms = 0.0;  // p99 inter-token gap within this request
  double e2e_ms = 0.0;
};

struct LoadArmResult {
  std::string name;
  std::string mode;
  int requests = 0;
  int completed = 0;   // streams that finished with a done event
  int errors = 0;      // transport/parse failures
  int mismatches = 0;  // requests whose tokens diverged from the oracle
  double wall_sec = 0.0;
  double ttft_ms_p50 = 0.0, ttft_ms_p95 = 0.0, ttft_ms_p99 = 0.0;
  double token_gap_ms_p50 = 0.0, token_gap_ms_p95 = 0.0,
         token_gap_ms_p99 = 0.0;
  double e2e_ms_p50 = 0.0, e2e_ms_p95 = 0.0, e2e_ms_p99 = 0.0;
  double slo_attainment = 0.0;  // fraction of completed meeting both SLOs
  double goodput_rps = 0.0;     // SLO-met completions per wall second
  double throughput_tok_s = 0.0;
  std::uint64_t tokens = 0;
  // The (up to) 10 completed requests with the worst TTFT, worst first —
  // the outliers a tail-latency postmortem starts from.
  std::vector<RequestRecord> worst;

  std::string json() const;  // one JSON object (BENCH_net.json arm entry)
};

// Runs one arm against host:port. Prompts are assigned round-robin by
// request index. Blocks until every request resolved.
LoadArmResult run_load_arm(const std::string& host, int port,
                           const std::vector<LoadPrompt>& prompts,
                           const LoadArmConfig& cfg);

}  // namespace llmfi::net
