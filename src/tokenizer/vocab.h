#pragma once
// Word-level vocabulary and tokenizer shared by every synthetic task.
//
// The study replaces HuggingFace BPE tokenizers with a closed word-level
// vocabulary: all synthetic datasets are generated from a known lexicon,
// so word-level tokens lose nothing, keep sequences short (critical on a
// single CPU core), and make "garbage token" detection exact.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace llmfi::tok {

using TokenId = std::int32_t;

class Vocab {
 public:
  Vocab();

  // Adds `word` if absent; returns its id either way. Words must be
  // whitespace-free and non-empty.
  TokenId add(std::string_view word);

  std::optional<TokenId> find(std::string_view word) const;

  // Lookup that maps unknown words to <unk>.
  TokenId id_or_unk(std::string_view word) const;

  const std::string& word(TokenId id) const;
  TokenId size() const { return static_cast<TokenId>(words_.size()); }

  // Special tokens, created in the constructor in this order.
  TokenId pad() const { return 0; }
  TokenId bos() const { return 1; }
  TokenId eos() const { return 2; }
  TokenId unk() const { return 3; }

  bool is_special(TokenId id) const { return id >= 0 && id <= 3; }

  // Whitespace-splitting encode; no <bos>/<eos> added (callers place
  // them explicitly so prompt layouts stay visible at call sites).
  std::vector<TokenId> encode(std::string_view text) const;

  // Space-joined decode; special tokens are skipped.
  std::string decode(const std::vector<TokenId>& ids) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, TokenId, std::hash<std::string>,
                     std::equal_to<>>
      index_;
};

}  // namespace llmfi::tok
