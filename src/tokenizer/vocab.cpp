#include "tokenizer/vocab.h"

#include <stdexcept>

namespace llmfi::tok {

Vocab::Vocab() {
  add("<pad>");
  add("<bos>");
  add("<eos>");
  add("<unk>");
}

TokenId Vocab::add(std::string_view word) {
  if (word.empty()) throw std::invalid_argument("empty vocab word");
  for (char c : word) {
    if (c == ' ' || c == '\t' || c == '\n') {
      throw std::invalid_argument("vocab word contains whitespace");
    }
  }
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

std::optional<TokenId> Vocab::find(std::string_view word) const {
  auto it = index_.find(std::string(word));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

TokenId Vocab::id_or_unk(std::string_view word) const {
  return find(word).value_or(unk());
}

const std::string& Vocab::word(TokenId id) const {
  if (id < 0 || id >= size()) throw std::out_of_range("token id out of range");
  return words_[static_cast<size_t>(id)];
}

std::vector<TokenId> Vocab::encode(std::string_view text) const {
  std::vector<TokenId> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) out.push_back(id_or_unk(text.substr(i, j - i)));
    i = j;
  }
  return out;
}

std::string Vocab::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (TokenId id : ids) {
    if (id < 0 || id >= size() || is_special(id)) continue;
    if (!out.empty()) out += ' ';
    out += words_[static_cast<size_t>(id)];
  }
  return out;
}

}  // namespace llmfi::tok
