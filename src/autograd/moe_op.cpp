// Fused top-k Mixture-of-Experts layer with manual backward.
//
// Forward, per token x_t:
//   p     = softmax(router @ x_t)
//   C     = top_k experts by p, gate weights w_e = p_e / sum_{c in C} p_c
//   y_e   = W_down ( silu(W_gate x_t) * (W_up x_t) )
//   out_t = sum_{e in C} w_e * y_e
//
// Backward propagates through the chosen experts and — via the
// renormalized gate weights — into the router, so routing itself is
// trained (the paper's Fig 15 targets exactly this router layer).

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace llmfi::ag {

namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float silu_prime(float x) {
  const float s = sigmoid(x);
  return s * (1.0f + x * (1.0f - s));
}

struct TokenSave {
  std::vector<float> probs;              // full softmax over experts
  std::vector<int> chosen;               // top_k expert ids (rank order)
  std::vector<std::vector<float>> g, u;  // pre-activation gate/up, per rank
  std::vector<std::vector<float>> act;   // silu(g)*u, per rank
  std::vector<std::vector<float>> y;     // expert outputs, per rank
};

}  // namespace

Var moe_layer(const Var& x, const MoeParams& params) {
  const tn::Index t_len = x->value.rows();
  const tn::Index d = x->value.cols();
  const int n_experts = static_cast<int>(params.experts.size());
  const int top_k = params.top_k;
  if (top_k <= 0 || top_k > n_experts) {
    throw std::invalid_argument("moe_layer: invalid top_k");
  }
  const tn::Index ff = params.experts[0][0]->value.rows();

  auto saved = std::make_shared<std::vector<TokenSave>>(
      static_cast<size_t>(t_len));

  tn::Tensor out({t_len, d});
  for (tn::Index t = 0; t < t_len; ++t) {
    auto& save = (*saved)[static_cast<size_t>(t)];
    auto xrow = x->value.row(t);

    // Router softmax.
    save.probs.resize(static_cast<size_t>(n_experts));
    float mx = -std::numeric_limits<float>::infinity();
    for (int e = 0; e < n_experts; ++e) {
      auto rrow = params.router->value.row(e);
      float acc = 0.0f;
      for (tn::Index c = 0; c < d; ++c) acc += rrow[c] * xrow[c];
      save.probs[static_cast<size_t>(e)] = acc;
      mx = std::max(mx, acc);
    }
    float sum = 0.0f;
    for (float& p : save.probs) {
      p = std::exp(p - mx);
      sum += p;
    }
    for (float& p : save.probs) p /= sum;

    // Top-k selection.
    std::vector<int> order(static_cast<size_t>(n_experts));
    for (int e = 0; e < n_experts; ++e) order[static_cast<size_t>(e)] = e;
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&save](int a, int b) {
                        return save.probs[static_cast<size_t>(a)] >
                               save.probs[static_cast<size_t>(b)];
                      });
    save.chosen.assign(order.begin(), order.begin() + top_k);
    float mass = 0.0f;
    for (int e : save.chosen) mass += save.probs[static_cast<size_t>(e)];

    auto orow = out.row(t);
    for (int rank = 0; rank < top_k; ++rank) {
      const int e = save.chosen[static_cast<size_t>(rank)];
      const auto& wg = params.experts[static_cast<size_t>(e)][0]->value;
      const auto& wu = params.experts[static_cast<size_t>(e)][1]->value;
      const auto& wd = params.experts[static_cast<size_t>(e)][2]->value;
      std::vector<float> g(static_cast<size_t>(ff)),
          u(static_cast<size_t>(ff)), act(static_cast<size_t>(ff)),
          y(static_cast<size_t>(d));
      for (tn::Index f = 0; f < ff; ++f) {
        auto grow = wg.row(f);
        auto urow = wu.row(f);
        float gacc = 0.0f, uacc = 0.0f;
        for (tn::Index c = 0; c < d; ++c) {
          gacc += grow[c] * xrow[c];
          uacc += urow[c] * xrow[c];
        }
        g[static_cast<size_t>(f)] = gacc;
        u[static_cast<size_t>(f)] = uacc;
        act[static_cast<size_t>(f)] = gacc * sigmoid(gacc) * uacc;
      }
      const float weight = save.probs[static_cast<size_t>(e)] / mass;
      for (tn::Index c = 0; c < d; ++c) {
        auto drow = wd.row(c);
        float acc = 0.0f;
        for (tn::Index f = 0; f < ff; ++f) {
          acc += drow[f] * act[static_cast<size_t>(f)];
        }
        y[static_cast<size_t>(c)] = acc;
        orow[c] += weight * acc;
      }
      save.g.push_back(std::move(g));
      save.u.push_back(std::move(u));
      save.act.push_back(std::move(act));
      save.y.push_back(std::move(y));
    }
  }

  // Parents: x, router, then (gate, up, down) per expert.
  auto node = std::make_shared<Node>();
  node->value = std::move(out);
  node->parents = {x, params.router};
  for (const auto& ex : params.experts) {
    node->parents.push_back(ex[0]);
    node->parents.push_back(ex[1]);
    node->parents.push_back(ex[2]);
  }
  node->requires_grad = false;
  for (const auto& p : node->parents) {
    if (p->requires_grad) node->requires_grad = true;
  }
  if (!node->requires_grad) return node;

  const int top_k2 = top_k;
  node->backward_fn = [saved, n_experts, d, ff, top_k2](Node& n) {
    auto& x2 = n.parents[0];
    auto& router = n.parents[1];
    auto expert_w = [&n](int e, int which) -> Node& {
      return *n.parents[static_cast<size_t>(2 + 3 * e + which)];
    };

    tn::Tensor dx(x2->value.shape());
    tn::Tensor drouter(router->value.shape());
    std::vector<tn::Tensor> dexp;
    dexp.reserve(static_cast<size_t>(3 * n_experts));
    for (int e = 0; e < n_experts; ++e) {
      for (int w = 0; w < 3; ++w) {
        dexp.emplace_back(tn::Tensor(expert_w(e, w).value.shape()));
      }
    }

    std::vector<float> da(static_cast<size_t>(ff)),
        du(static_cast<size_t>(ff)), dgpre(static_cast<size_t>(ff)),
        dw_hat(static_cast<size_t>(top_k2)),
        dp(static_cast<size_t>(n_experts));

    const tn::Index t_len = n.value.rows();
    for (tn::Index t = 0; t < t_len; ++t) {
      const auto& save = (*saved)[static_cast<size_t>(t)];
      auto xrow = x2->value.row(t);
      auto dout = n.grad.row(t);
      auto dxrow = dx.row(t);
      float mass = 0.0f;
      for (int e : save.chosen) mass += save.probs[static_cast<size_t>(e)];

      for (int rank = 0; rank < top_k2; ++rank) {
        const int e = save.chosen[static_cast<size_t>(rank)];
        const float weight = save.probs[static_cast<size_t>(e)] / mass;
        const auto& g = save.g[static_cast<size_t>(rank)];
        const auto& u = save.u[static_cast<size_t>(rank)];
        const auto& act = save.act[static_cast<size_t>(rank)];
        const auto& y = save.y[static_cast<size_t>(rank)];
        const auto& wg = expert_w(e, 0).value;
        const auto& wu = expert_w(e, 1).value;
        const auto& wd = expert_w(e, 2).value;
        auto& dwg = dexp[static_cast<size_t>(3 * e + 0)];
        auto& dwu = dexp[static_cast<size_t>(3 * e + 1)];
        auto& dwd = dexp[static_cast<size_t>(3 * e + 2)];

        // dw_hat_e = dOut . y_e
        float dwacc = 0.0f;
        for (tn::Index c = 0; c < d; ++c) {
          dwacc += dout[c] * y[static_cast<size_t>(c)];
        }
        dw_hat[static_cast<size_t>(rank)] = dwacc;

        // Through W_down: dy = weight * dOut.
        std::fill(da.begin(), da.end(), 0.0f);
        for (tn::Index c = 0; c < d; ++c) {
          const float dyc = weight * dout[c];
          if (dyc == 0.0f) continue;
          auto wdrow = wd.row(c);
          auto dwdrow = dwd.row(c);
          for (tn::Index f = 0; f < ff; ++f) {
            dwdrow[f] += dyc * act[static_cast<size_t>(f)];
            da[static_cast<size_t>(f)] += dyc * wdrow[f];
          }
        }
        // Through the gated activation.
        for (tn::Index f = 0; f < ff; ++f) {
          const float gf = g[static_cast<size_t>(f)];
          const float af = da[static_cast<size_t>(f)];
          du[static_cast<size_t>(f)] = af * gf * sigmoid(gf);
          dgpre[static_cast<size_t>(f)] =
              af * u[static_cast<size_t>(f)] * silu_prime(gf);
        }
        // Into W_gate / W_up and the input row.
        for (tn::Index f = 0; f < ff; ++f) {
          const float dgf = dgpre[static_cast<size_t>(f)];
          const float duf = du[static_cast<size_t>(f)];
          auto wgrow = wg.row(f);
          auto wurow = wu.row(f);
          auto dwgrow = dwg.row(f);
          auto dwurow = dwu.row(f);
          for (tn::Index c = 0; c < d; ++c) {
            dwgrow[c] += dgf * xrow[c];
            dwurow[c] += duf * xrow[c];
            dxrow[c] += dgf * wgrow[c] + duf * wurow[c];
          }
        }
      }

      // Router gradient through the renormalized top-k gate weights.
      std::fill(dp.begin(), dp.end(), 0.0f);
      double cross = 0.0;  // sum_{c in C} dw_hat_c * p_c
      for (int rank = 0; rank < top_k2; ++rank) {
        const int e = save.chosen[static_cast<size_t>(rank)];
        cross += static_cast<double>(dw_hat[static_cast<size_t>(rank)]) *
                 save.probs[static_cast<size_t>(e)];
      }
      for (int rank = 0; rank < top_k2; ++rank) {
        const int e = save.chosen[static_cast<size_t>(rank)];
        dp[static_cast<size_t>(e)] =
            dw_hat[static_cast<size_t>(rank)] / mass -
            static_cast<float>(cross) / (mass * mass);
      }
      double dots = 0.0;  // sum_j dp_j * p_j
      for (int e = 0; e < n_experts; ++e) {
        dots += static_cast<double>(dp[static_cast<size_t>(e)]) *
                save.probs[static_cast<size_t>(e)];
      }
      for (int e = 0; e < n_experts; ++e) {
        const float dr = save.probs[static_cast<size_t>(e)] *
                         (dp[static_cast<size_t>(e)] -
                          static_cast<float>(dots));
        if (dr == 0.0f) continue;
        auto rrow = router->value.row(e);
        auto drrow = drouter.row(e);
        for (tn::Index c = 0; c < d; ++c) {
          drrow[c] += dr * xrow[c];
          dxrow[c] += dr * rrow[c];
        }
      }
    }

    if (x2->requires_grad) x2->accumulate(dx);
    if (router->requires_grad) router->accumulate(drouter);
    for (int e = 0; e < n_experts; ++e) {
      for (int w = 0; w < 3; ++w) {
        auto& parent = expert_w(e, w);
        if (parent.requires_grad) {
          parent.accumulate(dexp[static_cast<size_t>(3 * e + w)]);
        }
      }
    }
  };
  return node;
}

}  // namespace llmfi::ag
