#include "autograd/var.h"

#include <stdexcept>
#include <unordered_set>

#include "tensor/ops.h"

namespace llmfi::ag {

void Node::accumulate(const tn::Tensor& g) {
  if (grad.empty()) {
    grad = tn::Tensor(value.shape());
  }
  tn::add_inplace(grad, g);
}

void Node::zero_grad() {
  if (!grad.empty()) grad.zero();
}

Var leaf(tn::Tensor value, bool requires_grad) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

void backward(const Var& root) {
  if (root->value.numel() != 1) {
    throw std::invalid_argument("backward: root must be scalar");
  }
  // Iterative post-order DFS for topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is post-order (parents before children); reverse for the
  // child-to-parent sweep.
  root->grad = tn::Tensor(root->value.shape());
  root->grad.fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad()) n->backward_fn(*n);
  }
}

}  // namespace llmfi::ag
