#include "autograd/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/rope.h"
#include "tensor/ops.h"

namespace llmfi::ag {

namespace {

Var make_op(tn::Tensor value, std::vector<Var> parents,
            std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->parents = std::move(parents);
  n->requires_grad = false;
  for (const auto& p : n->parents) {
    if (p->requires_grad) n->requires_grad = true;
  }
  if (n->requires_grad) n->backward_fn = std::move(backward_fn);
  return n;
}

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Var matmul_bt(const Var& x, const Var& w) {
  tn::Tensor y = tn::matmul_bt(x->value, w->value);
  return make_op(std::move(y), {x, w}, [](Node& n) {
    const auto& x2 = n.parents[0];
    const auto& w2 = n.parents[1];
    if (x2->requires_grad) x2->accumulate(tn::matmul(n.grad, w2->value));
    if (w2->requires_grad) w2->accumulate(tn::matmul_at(n.grad, x2->value));
  });
}

Var add(const Var& a, const Var& b) {
  return make_op(tn::add(a->value, b->value), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->accumulate(n.grad);
    if (n.parents[1]->requires_grad) n.parents[1]->accumulate(n.grad);
  });
}

Var mul(const Var& a, const Var& b) {
  tn::Tensor y = a->value;
  tn::mul_inplace(y, b->value);
  return make_op(std::move(y), {a, b}, [](Node& n) {
    const auto& a2 = n.parents[0];
    const auto& b2 = n.parents[1];
    if (a2->requires_grad) {
      tn::Tensor g = n.grad;
      tn::mul_inplace(g, b2->value);
      a2->accumulate(g);
    }
    if (b2->requires_grad) {
      tn::Tensor g = n.grad;
      tn::mul_inplace(g, a2->value);
      b2->accumulate(g);
    }
  });
}

Var silu(const Var& x) {
  tn::Tensor y = x->value;
  tn::silu_inplace(y);
  return make_op(std::move(y), {x}, [](Node& n) {
    const auto& x2 = n.parents[0];
    if (!x2->requires_grad) return;
    tn::Tensor g(n.grad.shape());
    auto xin = x2->value.flat();
    auto gout = g.flat();
    auto gin = n.grad.flat();
    for (size_t i = 0; i < gout.size(); ++i) {
      const float s = sigmoid(xin[i]);
      gout[i] = gin[i] * s * (1.0f + xin[i] * (1.0f - s));
    }
    x2->accumulate(g);
  });
}

Var rmsnorm(const Var& x, const Var& gain, float eps) {
  const tn::Index rows = x->value.rows();
  const tn::Index cols = x->value.cols();
  // Save per-row 1/rms for the backward pass.
  auto inv_rms = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows));
  tn::Tensor y({rows, cols});
  for (tn::Index r = 0; r < rows; ++r) {
    auto in = x->value.row(r);
    double ss = 0.0;
    for (float v : in) ss += static_cast<double>(v) * v;
    const float inv = static_cast<float>(
        1.0 / std::sqrt(ss / static_cast<double>(cols) + eps));
    (*inv_rms)[static_cast<size_t>(r)] = inv;
    auto out = y.row(r);
    for (tn::Index c = 0; c < cols; ++c) {
      out[c] = in[c] * inv * gain->value[c];
    }
  }
  return make_op(std::move(y), {x, gain}, [inv_rms, cols](Node& n) {
    const auto& x2 = n.parents[0];
    const auto& g2 = n.parents[1];
    const tn::Index rows2 = n.value.rows();
    tn::Tensor dx({rows2, cols});
    tn::Tensor dg({cols});
    for (tn::Index r = 0; r < rows2; ++r) {
      const float inv = (*inv_rms)[static_cast<size_t>(r)];
      auto xin = x2->value.row(r);
      auto dy = n.grad.row(r);
      auto dxr = dx.row(r);
      // dgain_c += dy_c * x_c * inv
      double dot = 0.0;  // sum_i dy_i * gain_i * x_i
      for (tn::Index c = 0; c < cols; ++c) {
        dg[c] += dy[c] * xin[c] * inv;
        dot += static_cast<double>(dy[c]) * g2->value[c] * xin[c];
      }
      const float k =
          static_cast<float>(dot) * inv * inv * inv / static_cast<float>(cols);
      for (tn::Index c = 0; c < cols; ++c) {
        dxr[c] = dy[c] * g2->value[c] * inv - k * xin[c];
      }
    }
    if (x2->requires_grad) x2->accumulate(dx);
    if (g2->requires_grad) g2->accumulate(dg);
  });
}

Var embedding(const Var& table, std::vector<tok::TokenId> ids) {
  const tn::Index d = table->value.cols();
  tn::Tensor y({static_cast<tn::Index>(ids.size()), d});
  for (size_t t = 0; t < ids.size(); ++t) {
    auto src = table->value.row(ids[t]);
    std::copy(src.begin(), src.end(),
              y.row(static_cast<tn::Index>(t)).begin());
  }
  auto ids_shared = std::make_shared<std::vector<tok::TokenId>>(std::move(ids));
  return make_op(std::move(y), {table}, [ids_shared](Node& n) {
    const auto& t2 = n.parents[0];
    if (!t2->requires_grad) return;
    tn::Tensor g(t2->value.shape());
    for (size_t t = 0; t < ids_shared->size(); ++t) {
      auto dst = g.row((*ids_shared)[t]);
      auto src = n.grad.row(static_cast<tn::Index>(t));
      for (size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
    }
    t2->accumulate(g);
  });
}

Var rope(const Var& x, int n_heads, int pos_offset, float theta) {
  tn::Tensor y = x->value;
  nn::apply_rope(y, n_heads, pos_offset, theta, /*inverse=*/false);
  return make_op(std::move(y), {x},
                 [n_heads, pos_offset, theta](Node& n) {
                   const auto& x2 = n.parents[0];
                   if (!x2->requires_grad) return;
                   tn::Tensor g = n.grad;
                   nn::apply_rope(g, n_heads, pos_offset, theta,
                                  /*inverse=*/true);
                   x2->accumulate(g);
                 });
}

Var causal_attention(const Var& q, const Var& k, const Var& v, int n_heads) {
  const tn::Index t_len = q->value.rows();
  const tn::Index d_model = q->value.cols();
  assert(d_model % n_heads == 0);
  const tn::Index d_head = d_model / n_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));

  // Saved softmax probabilities per head: [n_heads][T, T] (lower
  // triangular rows, upper entries zero).
  auto probs = std::make_shared<std::vector<tn::Tensor>>();
  probs->reserve(static_cast<size_t>(n_heads));
  tn::Tensor out({t_len, d_model});

  for (int h = 0; h < n_heads; ++h) {
    const tn::Index off = static_cast<tn::Index>(h) * d_head;
    tn::Tensor p({t_len, t_len});
    for (tn::Index i = 0; i < t_len; ++i) {
      auto qrow = q->value.row(i);
      // Scores for j <= i, softmax, then aggregate V.
      float mx = -std::numeric_limits<float>::infinity();
      auto prow = p.row(i);
      for (tn::Index j = 0; j <= i; ++j) {
        auto krow = k->value.row(j);
        float acc = 0.0f;
        for (tn::Index c = 0; c < d_head; ++c) {
          acc += qrow[off + c] * krow[off + c];
        }
        prow[j] = acc * scale;
        mx = std::max(mx, prow[j]);
      }
      float sum = 0.0f;
      for (tn::Index j = 0; j <= i; ++j) {
        prow[j] = std::exp(prow[j] - mx);
        sum += prow[j];
      }
      const float inv = 1.0f / sum;
      auto orow = out.row(i);
      for (tn::Index j = 0; j <= i; ++j) {
        prow[j] *= inv;
        auto vrow = v->value.row(j);
        for (tn::Index c = 0; c < d_head; ++c) {
          orow[off + c] += prow[j] * vrow[off + c];
        }
      }
    }
    probs->push_back(std::move(p));
  }

  return make_op(
      std::move(out), {q, k, v}, [probs, n_heads, d_head, scale](Node& n) {
        const auto& q2 = n.parents[0];
        const auto& k2 = n.parents[1];
        const auto& v2 = n.parents[2];
        const tn::Index t2 = n.value.rows();
        tn::Tensor dq(q2->value.shape());
        tn::Tensor dk(k2->value.shape());
        tn::Tensor dv(v2->value.shape());
        std::vector<float> dp(static_cast<size_t>(t2));
        for (int h = 0; h < n_heads; ++h) {
          const tn::Index off = static_cast<tn::Index>(h) * d_head;
          const tn::Tensor& p = (*probs)[static_cast<size_t>(h)];
          for (tn::Index i = 0; i < t2; ++i) {
            auto prow = p.row(i);
            auto dout = n.grad.row(i);
            // dP_ij = dO_i . V_j ; dV_j += P_ij dO_i
            double dot_pp = 0.0;  // sum_j dP_ij * P_ij
            for (tn::Index j = 0; j <= i; ++j) {
              auto vrow = v2->value.row(j);
              float acc = 0.0f;
              for (tn::Index c = 0; c < d_head; ++c) {
                acc += dout[off + c] * vrow[off + c];
              }
              dp[static_cast<size_t>(j)] = acc;
              dot_pp += static_cast<double>(acc) * prow[j];
              auto dvrow = dv.row(j);
              for (tn::Index c = 0; c < d_head; ++c) {
                dvrow[off + c] += prow[j] * dout[off + c];
              }
            }
            // dS_ij = P_ij (dP_ij - sum); dQ_i += scale dS_ij K_j;
            // dK_j += scale dS_ij Q_i.
            auto dqrow = dq.row(i);
            auto qrow = q2->value.row(i);
            for (tn::Index j = 0; j <= i; ++j) {
              const float ds =
                  prow[j] * (dp[static_cast<size_t>(j)] -
                             static_cast<float>(dot_pp));
              if (ds == 0.0f) continue;
              auto krow = k2->value.row(j);
              auto dkrow = dk.row(j);
              for (tn::Index c = 0; c < d_head; ++c) {
                dqrow[off + c] += scale * ds * krow[off + c];
                dkrow[off + c] += scale * ds * qrow[off + c];
              }
            }
          }
        }
        if (q2->requires_grad) q2->accumulate(dq);
        if (k2->requires_grad) k2->accumulate(dk);
        if (v2->requires_grad) v2->accumulate(dv);
      });
}

Var cross_entropy_lm(const Var& logits, std::vector<tok::TokenId> targets,
                     int first_loss_pos) {
  const tn::Index t_len = logits->value.rows();
  const tn::Index vocab = logits->value.cols();
  if (static_cast<tn::Index>(targets.size()) != t_len) {
    throw std::invalid_argument("cross_entropy_lm: target length mismatch");
  }
  int count = 0;
  double total = 0.0;
  // Save softmax rows for the backward pass (only loss positions).
  auto soft = std::make_shared<tn::Tensor>(tn::Tensor({t_len, vocab}));
  for (tn::Index t = first_loss_pos; t < t_len; ++t) {
    auto row = logits->value.row(t);
    float mx = -std::numeric_limits<float>::infinity();
    for (float x : row) mx = std::max(mx, x);
    double sum = 0.0;
    for (float x : row) sum += std::exp(static_cast<double>(x - mx));
    const double log_z = mx + std::log(sum);
    const tok::TokenId y = targets[static_cast<size_t>(t)];
    total += log_z - row[y];
    auto srow = soft->row(t);
    for (tn::Index c = 0; c < vocab; ++c) {
      srow[c] = static_cast<float>(
          std::exp(static_cast<double>(row[c]) - log_z));
    }
    ++count;
  }
  if (count == 0) throw std::invalid_argument("cross_entropy_lm: empty loss");
  tn::Tensor value({1, 1});
  value[0] = static_cast<float>(total / count);
  auto tgt = std::make_shared<std::vector<tok::TokenId>>(std::move(targets));
  return make_op(
      std::move(value), {logits},
      [soft, tgt, first_loss_pos, count](Node& n) {
        const auto& l2 = n.parents[0];
        if (!l2->requires_grad) return;
        const float upstream = n.grad[0] / static_cast<float>(count);
        tn::Tensor g(l2->value.shape());
        for (tn::Index t = first_loss_pos; t < g.rows(); ++t) {
          auto srow = soft->row(t);
          auto grow = g.row(t);
          for (tn::Index c = 0; c < g.cols(); ++c) {
            grow[c] = upstream * srow[c];
          }
          grow[(*tgt)[static_cast<size_t>(t)]] -= upstream;
        }
        l2->accumulate(g);
      });
}

Var sum(const Var& x) {
  tn::Tensor value({1, 1});
  double total = 0.0;
  for (float v : x->value.flat()) total += v;
  value[0] = static_cast<float>(total);
  return make_op(std::move(value), {x}, [](Node& n) {
    const auto& x2 = n.parents[0];
    if (!x2->requires_grad) return;
    tn::Tensor g(x2->value.shape());
    g.fill(n.grad[0]);
    x2->accumulate(g);
  });
}

Var scaled_sum(const std::vector<Var>& terms, float scale) {
  if (terms.empty()) throw std::invalid_argument("scaled_sum: no terms");
  tn::Tensor value({1, 1});
  double total = 0.0;
  for (const auto& t : terms) {
    if (t->value.numel() != 1) {
      throw std::invalid_argument("scaled_sum: non-scalar term");
    }
    total += t->value[0];
  }
  value[0] = static_cast<float>(total * scale);
  return make_op(std::move(value), terms, [scale](Node& n) {
    tn::Tensor g({1, 1});
    g[0] = n.grad[0] * scale;
    for (auto& p : n.parents) {
      if (p->requires_grad) p->accumulate(g);
    }
  });
}

}  // namespace llmfi::ag
