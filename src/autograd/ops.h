#pragma once
// Differentiable operations: exactly the set needed for Llama-style
// transformer training (including a fused causal attention and a fused
// top-k MoE layer with router gradients).

#include <array>
#include <vector>

#include "autograd/var.h"
#include "tokenizer/vocab.h"

namespace llmfi::ag {

// y = x @ w^T (Linear with weights [out, in]).
Var matmul_bt(const Var& x, const Var& w);

// Elementwise (shapes must match).
Var add(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var silu(const Var& x);

// RMSNorm over rows with learnable gain.
Var rmsnorm(const Var& x, const Var& gain, float eps = 1e-5f);

// Gathers table rows for `ids`; grad scatter-adds back into the table.
Var embedding(const Var& table, std::vector<tok::TokenId> ids);

// Rotary position embedding (orthogonal map; backward = inverse rotation).
Var rope(const Var& x, int n_heads, int pos_offset, float theta = 10000.0f);

// Fused causal multi-head self-attention for one sequence: q,k,v are
// [T, d_model] with n_heads contiguous head slices per row.
Var causal_attention(const Var& q, const Var& k, const Var& v, int n_heads);

// Mean next-token cross-entropy. logits is [T, vocab]; targets[t] is the
// token that position t should predict; positions < first_loss_pos are
// excluded (prompt tokens carry no loss). Returns a scalar ([1,1]) node.
Var cross_entropy_lm(const Var& logits, std::vector<tok::TokenId> targets,
                     int first_loss_pos);

// Fused top-k Mixture-of-Experts MLP (router + SiLU-gated experts) over
// [T, d_model]. Gradients flow into the chosen experts and, through the
// renormalized top-k gate weights, into the router.
struct MoeParams {
  Var router;                             // [n_experts, d_model]
  std::vector<std::array<Var, 3>> experts;  // {gate, up, down} per expert
  int top_k = 2;
};
Var moe_layer(const Var& x, const MoeParams& params);

// Scalar sum of a set of scalar losses (for averaging over a batch).
Var scaled_sum(const std::vector<Var>& terms, float scale);

// Sum of all elements -> scalar [1,1] node (reduction head for tests and
// auxiliary losses).
Var sum(const Var& x);

}  // namespace llmfi::ag
