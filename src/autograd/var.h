#pragma once
// Minimal tape-based reverse-mode autodiff over fp32 tensors — the
// training substrate. The paper uses pre-trained HuggingFace models; we
// train our tiny models from scratch, so baseline outputs are *correct*
// and Masked-vs-SDC classification is meaningful.
//
// Graphs are built dynamically per training step on top of persistent
// leaf nodes (the parameters); `backward()` runs a topological sweep and
// accumulates gradients into `Node::grad`.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace llmfi::ag {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  tn::Tensor value;
  tn::Tensor grad;  // allocated lazily, same shape as value
  std::vector<Var> parents;
  // Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward_fn;
  bool requires_grad = true;

  // Accumulation helper: ensures grad is allocated, then adds `g`.
  void accumulate(const tn::Tensor& g);
  bool has_grad() const { return !grad.empty(); }
  void zero_grad();
};

// Leaf holding a (trainable) tensor. The tensor is moved in; the
// optimizer mutates `node->value` in place across steps.
Var leaf(tn::Tensor value, bool requires_grad = true);

// Seeds d(root)/d(root) = 1 (root must be scalar-shaped, numel == 1) and
// runs reverse-mode accumulation in topological order.
void backward(const Var& root);

}  // namespace llmfi::ag
