#pragma once
// Continuous-batching scheduler over one BatchEngine: requests queue up,
// free slots admit greedily, every step() retires finished sequences and
// the freed slots backfill from the queue before the next pass — the
// standard continuous-batching loop (ScaleLLM/vLLM) in its deterministic
// single-threaded form. Completion order is a pure function of the
// request sequence: slots fill lowest-index-first and retire in slot
// order within a pass, so repeated runs are byte-identical.
//
// Two driving modes share the same admission logic:
//   * run()  — batch mode: drain a queue (plus an optional lazy source)
//              to completion. The campaign layer's entry point.
//   * tick() — server mode: admit what fits, run ONE decode pass, and
//              return to the caller, which interleaves ticks with
//              network work (submit/cancel between passes). The net
//              event loop's entry point (DESIGN.md §15).

#include <deque>
#include <functional>
#include <optional>

#include "serve/batch_engine.h"

namespace llmfi::serve {

struct SchedulerStats {
  std::uint64_t submitted = 0;  // submit() calls + source pulls
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;  // cancel() exits (queued or active)
  std::uint64_t backfills = 0;  // admissions after the first decode step
                                // (slots freed mid-run and refilled)
  // fill() rounds that stopped short because the engine's KV page budget
  // (BatchEngine::can_admit) could not cover the next request — the
  // request waited in queue for retiring sequences to release pages.
  // One deferral per fill round, so a request stuck across many decode
  // steps counts once per step it sat out. Always 0 without a page pool.
  std::uint64_t deferred_admissions = 0;
};

class Scheduler {
 public:
  explicit Scheduler(BatchEngine& engine) : engine_(engine) {}

  // Enqueues a request for the next run()/tick() (no admission happens
  // here). Throws std::logic_error after drain() — callers gate new
  // work on draining() and reject it upstream (the server's 503).
  void submit(Request req);

  // Lazy request feed: pulled once per free slot until it returns
  // nullopt (then never again within this run). This is how the campaign
  // layer streams trials from its shared atomic counter without
  // materializing them all up front.
  using Source = std::function<std::optional<Request>()>;

  // Drains the queue and `source` to completion: fill free slots, run
  // one batched decode pass, retire + backfill, repeat until idle.
  // Returns every completion in retirement order (per-request callbacks
  // fire from inside, as documented on Request::on_done).
  std::vector<Completion> run(Source source = nullptr);

  // Server-mode step: backfill free slots from the queue (page-budget
  // gated like run()), then execute one batched decode pass if anything
  // is active. Completions append to `done` (callbacks fire from
  // inside). Returns false when the scheduler is idle — queue empty and
  // no active slot — so the event loop can park until the next submit.
  bool tick(std::vector<Completion>& done);

  // Cancels one request wherever it currently lives. Queued: the
  // request leaves the queue without ever touching the engine and a
  // synthetic Completion (cancelled, no tokens) fires its on_done and
  // appends to `done`; its pending queue-wait stamp is consumed here —
  // observed into the queue-wait histogram and cleared — so no enqueue
  // stamp ever exits the scheduler unconsumed (the admission path is no
  // longer the only stamp sink). Active: forwards to
  // BatchEngine::cancel, which retires the slot immediately and
  // releases its paged KV. Returns false for unknown ids (already
  // completed or never submitted) — the normal race with retirement,
  // not an error.
  bool cancel(std::uint64_t id, std::vector<Completion>& done);

  // Graceful-shutdown latch: after drain() new submit() calls throw,
  // while queued and active requests keep running to completion via
  // tick()/run(). The caller decides when drained (idle() true) means
  // exit. Irreversible for this scheduler's lifetime.
  void drain() { draining_ = true; }
  bool draining() const { return draining_; }

  bool idle() const { return queue_.empty() && engine_.active() == 0; }
  std::size_t queued() const { return queue_.size(); }
  int active() const { return engine_.active(); }

  const SchedulerStats& stats() const { return stats_; }
  const EngineStats& engine_stats() const { return engine_.stats(); }

 private:
  // Shared admission loop: pull from `source` (when non-null) then the
  // queue into free slots until the engine is full, the page budget
  // defers, or both feeds are dry. `count_backfill` marks admissions
  // that land after a decode step already ran.
  void fill(Source* source, bool* source_dry, bool count_backfill,
            std::vector<Completion>& done);

  BatchEngine& engine_;
  std::deque<Request> queue_;
  SchedulerStats stats_;
  bool draining_ = false;
  bool ticked_ = false;  // tick() ran a decode pass (backfill accounting)
};

}  // namespace llmfi::serve
