#pragma once
// Continuous-batching scheduler over one BatchEngine: requests queue up,
// free slots admit greedily, every step() retires finished sequences and
// the freed slots backfill from the queue before the next pass — the
// standard continuous-batching loop (ScaleLLM/vLLM) in its deterministic
// single-threaded form. Completion order is a pure function of the
// request sequence: slots fill lowest-index-first and retire in slot
// order within a pass, so repeated runs are byte-identical.

#include <deque>
#include <functional>
#include <optional>

#include "serve/batch_engine.h"

namespace llmfi::serve {

struct SchedulerStats {
  std::uint64_t submitted = 0;  // submit() calls + source pulls
  std::uint64_t completed = 0;
  std::uint64_t backfills = 0;  // admissions after the first decode step
                                // (slots freed mid-run and refilled)
  // fill() rounds that stopped short because the engine's KV page budget
  // (BatchEngine::can_admit) could not cover the next request — the
  // request waited in queue for retiring sequences to release pages.
  // One deferral per fill round, so a request stuck across many decode
  // steps counts once per step it sat out. Always 0 without a page pool.
  std::uint64_t deferred_admissions = 0;
};

class Scheduler {
 public:
  explicit Scheduler(BatchEngine& engine) : engine_(engine) {}

  // Enqueues a request for the next run() (no admission happens here).
  void submit(Request req);

  // Lazy request feed: pulled once per free slot until it returns
  // nullopt (then never again within this run). This is how the campaign
  // layer streams trials from its shared atomic counter without
  // materializing them all up front.
  using Source = std::function<std::optional<Request>()>;

  // Drains the queue and `source` to completion: fill free slots, run
  // one batched decode pass, retire + backfill, repeat until idle.
  // Returns every completion in retirement order (per-request callbacks
  // fire from inside, as documented on Request::on_done).
  std::vector<Completion> run(Source source = nullptr);

  const SchedulerStats& stats() const { return stats_; }
  const EngineStats& engine_stats() const { return engine_.stats(); }

 private:
  BatchEngine& engine_;
  std::deque<Request> queue_;
  SchedulerStats stats_;
};

}  // namespace llmfi::serve
