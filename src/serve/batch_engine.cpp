#include "serve/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/injector.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace llmfi::serve {

namespace {

// Steady-clock µs for obs latency metrics; only called when metrics are
// enabled, so the disabled path stays clock-free.
std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BatchEngine::BatchEngine(model::InferenceModel& m, int max_batch)
    : model_(m) {
  if (max_batch < 1) {
    throw std::invalid_argument("BatchEngine: max_batch must be >= 1");
  }
  slots_.reserve(static_cast<size_t>(max_batch));
  for (int i = 0; i < max_batch; ++i) slots_.emplace_back(m.make_cache());
}

BatchEngine::BatchEngine(model::InferenceModel& m, int max_batch,
                         std::shared_ptr<nn::PagePool> pool)
    : model_(m), pool_(std::move(pool)) {
  if (max_batch < 1) {
    throw std::invalid_argument("BatchEngine: max_batch must be >= 1");
  }
  slots_.reserve(static_cast<size_t>(max_batch));
  for (int i = 0; i < max_batch; ++i) {
    slots_.emplace_back(pool_ ? m.make_cache(pool_) : m.make_cache());
  }
}

bool BatchEngine::can_admit(const Request& req) const {
  if (active_ >= capacity()) return false;
  if (!pool_) return true;
  const nn::KvCache& probe = slots_.front().cache;
  const tn::Index worst_len = std::min<tn::Index>(
      probe.max_seq(), static_cast<tn::Index>(req.prompt.size()) +
                           static_cast<tn::Index>(std::max(req.max_new_tokens,
                                                           0)));
  const tn::Index need =
      static_cast<tn::Index>(probe.n_blocks()) *
      nn::PagePool::pages_for(worst_len, pool_->page_rows());
  return need <= static_cast<tn::Index>(pool_->free_pages());
}

void BatchEngine::retire(Slot& slot, bool hit_max,
                         std::vector<Completion>& done, bool cancelled) {
  Completion c;
  c.id = slot.req.id;
  c.tokens = std::move(slot.tokens);
  c.passes = slot.passes;
  c.skipped_passes = slot.skipped;
  c.hit_max_tokens = hit_max;
  c.nonfinite_logits = slot.nonfinite;
  c.cancelled = cancelled;
  if (cancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.completed;
  }
  stats_.generated_tokens += c.tokens.size();
  slot.active = false;
  --active_;
  // Paged slots hand their pages back immediately so a retiring sequence
  // frees budget for the scheduler's next can_admit() check; contiguous
  // slots keep their storage (reset() on reuse is enough and cheaper).
  if (slot.cache.paged()) slot.cache.reset();
  // Retirement (and the on_done callback chain it drives — SSE done
  // events, campaign classification) runs under the request's context so
  // downstream spans/events attribute correctly.
  obs::ContextScope cscope(slot.req.ctx);
  obs::trace_instant("retire", static_cast<std::int64_t>(c.id));
  if (obs::recorder_enabled()) {
    if (cancelled) obs::record_event(obs::RecType::Cancel, c.passes);
    if (c.nonfinite_logits) {
      obs::record_event(obs::RecType::Nonfinite, c.passes);
    }
    obs::record_event(obs::RecType::RequestRetire, c.passes,
                      static_cast<std::int64_t>(c.tokens.size()),
                      cancelled ? 1 : 0);
  }
  if (slot.req.on_done) slot.req.on_done(c);
  done.push_back(std::move(c));
}

bool BatchEngine::accept_or_retire(Slot& slot, std::vector<Completion>& done) {
  // Mirrors gen::generate()'s greedy loop-top for `next` at step_idx,
  // check for check — any divergence here would break the bit-identity
  // contract with the sequential path.
  if (slot.step_idx >= slot.req.max_new_tokens) {
    retire(slot, /*hit_max=*/false, done);  // zero-budget: loop never ran
    return false;
  }
  if (slot.next == slot.req.eos) {
    retire(slot, /*hit_max=*/false, done);
    return false;
  }
  slot.tokens.push_back(slot.next);
  if (slot.req.on_token) {
    slot.req.on_token(slot.req.id,
                      static_cast<int>(slot.tokens.size()) - 1, slot.next);
  }
  if (slot.step_idx + 1 == slot.req.max_new_tokens) {
    retire(slot, /*hit_max=*/true, done);
    return false;
  }
  if (slot.cache.length() + 1 > slot.cache.max_seq()) {
    retire(slot, /*hit_max=*/true, done);
    return false;
  }
  return true;  // decode pass step_idx + 1 on `next` is pending
}

void BatchEngine::admit(Request req, std::vector<Completion>& done) {
  if (active_ >= capacity()) {
    throw std::runtime_error("BatchEngine::admit: no free slot");
  }
  Slot* slot = nullptr;
  for (auto& s : slots_) {
    if (!s.active) {
      slot = &s;
      break;
    }
  }
  slot->active = true;
  ++active_;
  slot->req = std::move(req);
  slot->tokens.clear();
  slot->cache.reset();
  slot->passes = 0;
  slot->skipped = 0;
  slot->nonfinite = false;
  ++stats_.admitted;
  stats_.max_active = std::max(stats_.max_active, active_);

  const gen::PrefixSnapshot* snap = gen::check_greedy_resume(
      slot->req.prompt, slot->req.resume, slot->req.start_pass, slot->cache);

  // The admission pass runs single-sequence on the shared engine, so the
  // request's hook is scoped with the same RAII guard the sequential
  // campaign path uses (on_install() re-arms it), and the engine-level
  // nonfinite latch is isolated into this slot.
  obs::ContextScope cscope(slot->req.ctx);
  obs::TraceScope admit_span("admission",
                             static_cast<std::int64_t>(slot->req.id));
  if (obs::recorder_enabled()) {
    obs::record_event(obs::RecType::RequestAdmit,
                      /*pass=*/snap != nullptr ? slot->req.start_pass : 0,
                      static_cast<std::int64_t>(slot->req.prompt.size()),
                      /*a1=*/snap != nullptr ? 1 : 0);
  }
  const std::int64_t admit_t0 = obs::metrics_enabled() ? steady_us() : 0;
  tn::Tensor logits;
  {
    core::LinearHookGuard guard(model_, slot->req.hook);
    model_.reset_diagnostics();
    if (snap != nullptr) {
      // Forked admission: passes 0..start_pass-1 are bit-identical to
      // the captured baseline — fork the KV prefix, seed its tokens, and
      // make pass start_pass the admission forward.
      const int t = slot->req.start_pass;
      {
        obs::TraceScope fork("prefix_fork_resume", t);
        const tn::Index fork_len =
            snap->cache_len_before_pass[static_cast<size_t>(t)];
        slot->cache.fork_from(*snap->cache, fork_len);
        if (obs::recorder_enabled()) {
          obs::record_event(obs::RecType::KvFork, t,
                            static_cast<std::int64_t>(fork_len));
        }
      }
      slot->tokens.assign(snap->tokens.begin(), snap->tokens.begin() + t);
      slot->passes = t;
      slot->skipped = t;
      const tok::TokenId input = snap->tokens[static_cast<size_t>(t - 1)];
      logits = model_.forward(std::span(&input, 1), slot->cache, t);
      ++slot->passes;
      slot->next = static_cast<tok::TokenId>(tn::argmax_row(logits, 0));
      slot->step_idx = t;
      ++stats_.forked_admissions;
    } else {
      logits = model_.forward(slot->req.prompt, slot->cache, /*pass_index=*/0);
      ++slot->passes;
      slot->next =
          static_cast<tok::TokenId>(tn::argmax_row(logits, logits.rows() - 1));
      slot->step_idx = 0;
    }
    slot->nonfinite = model_.saw_nonfinite_logits();
    model_.reset_diagnostics();
  }
  ++stats_.admission_passes;
  if (obs::metrics_enabled()) {
    const std::int64_t now = steady_us();
    // Time to first token: queue wait (when stamped) + admission pass.
    // Strictly positive stamps only: -1 is the unstamped default and 0
    // is the stale zero-initialized stamp a caller-built Request carries
    // when metrics were off at submit time — observing either would fold
    // a bogus multi-decade "wait" into the histograms.
    const std::int64_t from =
        slot->req.enqueue_us > 0 ? slot->req.enqueue_us : admit_t0;
    obs::observe("serve_ttft_us", obs::latency_us_buckets(),
                 static_cast<double>(now - from));
    obs::SloMonitor::global().record_ttft(
        now, static_cast<double>(now - from) / 1000.0);
    if (slot->req.enqueue_us > 0) {
      obs::observe("serve_queue_wait_us", obs::latency_us_buckets(),
                   static_cast<double>(admit_t0 - slot->req.enqueue_us));
    }
  }
  accept_or_retire(*slot, done);
}

bool BatchEngine::cancel(std::uint64_t id, std::vector<Completion>& done) {
  for (auto& s : slots_) {
    if (s.active && s.req.id == id) {
      retire(s, /*hit_max=*/false, done, /*cancelled=*/true);
      return true;
    }
  }
  return false;
}

void BatchEngine::step(std::vector<Completion>& done) {
  std::vector<Slot*> live;
  std::vector<model::InferenceModel::BatchRow> rows;
  live.reserve(slots_.size());
  rows.reserve(slots_.size());
  row_ctxs_.clear();
  for (auto& s : slots_) {
    if (!s.active) continue;
    live.push_back(&s);
    rows.push_back({.cache = &s.cache,
                    .token = s.next,
                    .pass_index = s.step_idx + 1,
                    .hook = s.req.hook,
                    .nonfinite = false});
    row_ctxs_.push_back(s.req.ctx);
  }
  if (rows.empty()) return;

  obs::TraceScope step_span("decode_step",
                            static_cast<std::int64_t>(rows.size()));
  const std::int64_t step_t0 = obs::metrics_enabled() ? steady_us() : 0;
  tn::Tensor logits;
  {
    // Per-row contexts: hooks dispatched for row r inside forward_batch
    // (injections, detector trips) stamp their events with request r's
    // identity via obs::RowContextScope in the model layer.
    obs::RowContextGuard row_guard(row_ctxs_.data(),
                                   static_cast<int>(row_ctxs_.size()));
    logits = model_.forward_batch(rows);
  }
  ++stats_.decode_batches;
  stats_.decode_rows += rows.size();
  if (obs::metrics_enabled()) {
    const std::int64_t now = steady_us();
    const double us = static_cast<double>(now - step_t0);
    obs::observe("serve_decode_token_us", obs::latency_us_buckets(),
                 us / static_cast<double>(rows.size()));
    obs::observe("serve_batch_occupancy", obs::small_count_buckets(),
                 static_cast<double>(rows.size()));
    // Each live request observed one inter-token gap of (roughly) the
    // whole step's wall time — batched decode serializes rows into one
    // forward, so the step duration is what a streaming client sees
    // between tokens.
    for (size_t r = 0; r < rows.size(); ++r) {
      obs::SloMonitor::global().record_gap(now, us / 1000.0);
    }
  }

  for (size_t r = 0; r < live.size(); ++r) {
    Slot& s = *live[r];
    ++s.passes;
    s.nonfinite = s.nonfinite || rows[r].nonfinite;
    s.next = static_cast<tok::TokenId>(
        tn::argmax_row(logits, static_cast<tn::Index>(r)));
    ++s.step_idx;
    accept_or_retire(s, done);
  }
}

}  // namespace llmfi::serve
