#include "serve/scheduler.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace llmfi::serve {

namespace {

// Queue-wait stamping is metrics-only: the decode path never reads
// enqueue_us, so clock reads stay off the disabled hot path.
void stamp_enqueue(Request& req) {
  if (obs::metrics_enabled()) {
    req.enqueue_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  }
}

}  // namespace

void Scheduler::submit(Request req) {
  stamp_enqueue(req);
  queue_.push_back(std::move(req));
  ++stats_.submitted;
}

std::vector<Completion> Scheduler::run(Source source) {
  std::vector<Completion> done;
  bool source_dry = (source == nullptr);
  bool stepped = false;

  const auto fill = [&] {
    while (engine_.active() < engine_.capacity()) {
      if (queue_.empty() && !source_dry) {
        if (auto r = source()) {
          stamp_enqueue(*r);
          queue_.push_back(std::move(*r));
          ++stats_.submitted;
        } else {
          source_dry = true;
        }
      }
      if (queue_.empty()) break;
      Request r = std::move(queue_.front());
      queue_.pop_front();
      if (stepped) ++stats_.backfills;
      engine_.admit(std::move(r), done);
    }
  };

  for (;;) {
    fill();
    // fill() only returns with no active slot once the queue and source
    // are both exhausted (instantly-retiring admissions keep it pulling).
    if (engine_.active() == 0) break;
    engine_.step(done);
    stepped = true;
  }
  stats_.completed += done.size();
  return done;
}

}  // namespace llmfi::serve
