#include "serve/scheduler.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace llmfi::serve {

namespace {

// Queue-wait stamping is metrics-only: the decode path never reads
// enqueue_us, so clock reads stay off the disabled hot path. When
// metrics are off the field keeps whatever the caller left in it — -1
// (the Request default) or a stale 0 from zero-initialization — which is
// why the observe sites in batch_engine.cpp only trust stamps > 0.
void stamp_enqueue(Request& req) {
  if (obs::metrics_enabled()) {
    req.enqueue_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  }
}

}  // namespace

void Scheduler::submit(Request req) {
  stamp_enqueue(req);
  queue_.push_back(std::move(req));
  ++stats_.submitted;
}

std::vector<Completion> Scheduler::run(Source source) {
  std::vector<Completion> done;
  bool source_dry = (source == nullptr);
  bool stepped = false;

  const auto fill = [&] {
    while (engine_.active() < engine_.capacity()) {
      if (queue_.empty() && !source_dry) {
        if (auto r = source()) {
          stamp_enqueue(*r);
          queue_.push_back(std::move(*r));
          ++stats_.submitted;
        } else {
          source_dry = true;
        }
      }
      if (queue_.empty()) break;
      // Page-budget gate (DESIGN.md §12): when the pool cannot cover the
      // head request's worst case, leave it queued and let the active
      // sequences retire pages — unless the engine is idle, where
      // waiting would deadlock (run() exits on active == 0 and nothing
      // else frees pages). The idle force-admit relies on can_admit
      // being conservative: the request may still fit, and if it truly
      // cannot, the pool-exhausted error surfaces at the caller instead
      // of a silent hang.
      if (!engine_.can_admit(queue_.front()) && engine_.active() > 0) {
        ++stats_.deferred_admissions;
        break;
      }
      Request r = std::move(queue_.front());
      queue_.pop_front();
      if (stepped) ++stats_.backfills;
      engine_.admit(std::move(r), done);
    }
  };

  for (;;) {
    fill();
    // fill() only returns with no active slot once the queue and source
    // are both exhausted (instantly-retiring admissions keep it pulling).
    if (engine_.active() == 0) break;
    engine_.step(done);
    stepped = true;
  }
  stats_.completed += done.size();
  return done;
}

}  // namespace llmfi::serve
