#include "serve/scheduler.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace llmfi::serve {

namespace {

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Queue-wait stamping is metrics-only: the decode path never reads
// enqueue_us, so clock reads stay off the disabled hot path. When
// metrics are off the field keeps whatever the caller left in it — -1
// (the Request default) or a stale 0 from zero-initialization — which is
// why the observe sites in batch_engine.cpp only trust stamps > 0.
void stamp_enqueue(Request& req) {
  if (obs::metrics_enabled()) {
    req.enqueue_us = steady_us();
  }
}

}  // namespace

void Scheduler::submit(Request req) {
  if (draining_) {
    throw std::logic_error("Scheduler::submit: scheduler is draining");
  }
  stamp_enqueue(req);
  queue_.push_back(std::move(req));
  ++stats_.submitted;
}

void Scheduler::fill(Source* source, bool* source_dry, bool count_backfill,
                     std::vector<Completion>& done) {
  while (engine_.active() < engine_.capacity()) {
    if (queue_.empty() && source != nullptr && !*source_dry) {
      if (auto r = (*source)()) {
        stamp_enqueue(*r);
        queue_.push_back(std::move(*r));
        ++stats_.submitted;
      } else {
        *source_dry = true;
      }
    }
    if (queue_.empty()) break;
    // Page-budget gate (DESIGN.md §12): when the pool cannot cover the
    // head request's worst case, leave it queued and let the active
    // sequences retire pages — unless the engine is idle, where
    // waiting would deadlock (run() exits on active == 0 and nothing
    // else frees pages). The idle force-admit relies on can_admit
    // being conservative: the request may still fit, and if it truly
    // cannot, the pool-exhausted error surfaces at the caller instead
    // of a silent hang.
    if (!engine_.can_admit(queue_.front()) && engine_.active() > 0) {
      ++stats_.deferred_admissions;
      break;
    }
    Request r = std::move(queue_.front());
    queue_.pop_front();
    if (count_backfill) ++stats_.backfills;
    engine_.admit(std::move(r), done);
  }
}

std::vector<Completion> Scheduler::run(Source source) {
  std::vector<Completion> done;
  bool source_dry = (source == nullptr);
  bool stepped = false;

  for (;;) {
    fill(source ? &source : nullptr, &source_dry, stepped, done);
    // fill() only returns with no active slot once the queue and source
    // are both exhausted (instantly-retiring admissions keep it pulling).
    if (engine_.active() == 0) break;
    engine_.step(done);
    stepped = true;
  }
  stats_.completed += done.size();
  return done;
}

bool Scheduler::tick(std::vector<Completion>& done) {
  const std::size_t before = done.size();
  fill(nullptr, nullptr, ticked_, done);
  if (engine_.active() > 0) {
    engine_.step(done);
    ticked_ = true;
  }
  // Per-tick completion accounting (run() sums once at exit instead;
  // the two driving modes must not be mixed on one scheduler).
  for (std::size_t i = before; i < done.size(); ++i) {
    if (!done[i].cancelled) ++stats_.completed;
  }
  return !idle();
}

bool Scheduler::cancel(std::uint64_t id, std::vector<Completion>& done) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    // Consume the enqueue stamp on this non-admission exit path: the
    // request really did wait in queue, so the sample is legitimate —
    // and clearing the stamp afterwards guarantees no path can observe
    // it twice (admission was previously the only sink, so a cancelled
    // request's stamp would otherwise leak out of the scheduler live).
    if (obs::metrics_enabled() && it->enqueue_us > 0) {
      obs::observe("serve_queue_wait_us", obs::latency_us_buckets(),
                   static_cast<double>(steady_us() - it->enqueue_us));
    }
    it->enqueue_us = -1;
    // Queued-cancel never reaches the engine, so this is the only place
    // its Cancel event (pass -1: no forward ever ran) can be recorded.
    if (obs::recorder_enabled()) {
      obs::ContextScope cscope(it->ctx);
      obs::record_event(obs::RecType::Cancel, /*pass=*/-1, /*a0=*/1);
    }
    Completion c;
    c.id = id;
    c.cancelled = true;
    if (it->on_done) it->on_done(c);
    queue_.erase(it);
    ++stats_.cancelled;
    done.push_back(std::move(c));
    return true;
  }
  if (engine_.cancel(id, done)) {
    ++stats_.cancelled;
    return true;
  }
  return false;
}

}  // namespace llmfi::serve
