#include "serve/scheduler.h"

#include <utility>

namespace llmfi::serve {

void Scheduler::submit(Request req) {
  queue_.push_back(std::move(req));
  ++stats_.submitted;
}

std::vector<Completion> Scheduler::run(Source source) {
  std::vector<Completion> done;
  bool source_dry = (source == nullptr);
  bool stepped = false;

  const auto fill = [&] {
    while (engine_.active() < engine_.capacity()) {
      if (queue_.empty() && !source_dry) {
        if (auto r = source()) {
          queue_.push_back(std::move(*r));
          ++stats_.submitted;
        } else {
          source_dry = true;
        }
      }
      if (queue_.empty()) break;
      Request r = std::move(queue_.front());
      queue_.pop_front();
      if (stepped) ++stats_.backfills;
      engine_.admit(std::move(r), done);
    }
  };

  for (;;) {
    fill();
    // fill() only returns with no active slot once the queue and source
    // are both exhausted (instantly-retiring admissions keep it pulling).
    if (engine_.active() == 0) break;
    engine_.step(done);
    stepped = true;
  }
  stats_.completed += done.size();
  return done;
}

}  // namespace llmfi::serve
