#pragma once
// Batched greedy decoding over one InferenceModel: up to `max_batch`
// sequences advance one token per step() through a single
// forward_batch() pass. Each active sequence owns a slot with its own
// KV cache and optional per-request fault hook, so every token it emits
// is bit-identical to a single-sequence gen::generate() greedy run of
// the same request — batching changes wall-clock, never outputs
// (DESIGN.md §10).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gen/generate.h"
#include "model/transformer.h"
#include "obs/context.h"

namespace llmfi::serve {

// Terminal state of one request, delivered via Request::on_done and the
// `done` out-params. Field semantics match gen::GenerationResult so the
// campaign layer can reuse its classification path unchanged.
struct Completion {
  std::uint64_t id = 0;
  std::vector<tok::TokenId> tokens;  // generated tokens (prompt excluded)
  int passes = 0;                    // forward passes, skipped included
  int skipped_passes = 0;            // seeded via prefix-fork admission
  bool hit_max_tokens = false;
  bool nonfinite_logits = false;
  // Retired via cancel() (client disconnect, shutdown) rather than
  // EOS / budget: `tokens` holds whatever was decoded before the cut.
  bool cancelled = false;
};

struct Request {
  std::uint64_t id = 0;
  std::vector<tok::TokenId> prompt;
  int max_new_tokens = 40;
  tok::TokenId eos = 2;
  // Per-request fault hook (e.g. a ComputationalFaultInjector): fired
  // only on this request's rows — during the admission pass via
  // LinearHookGuard, during batched decode via BatchRow::hook — with
  // this request's own pass indices. Caller owns the lifetime; it must
  // outlive the request's completion.
  nn::LinearHook* hook = nullptr;
  // Prefix-fork admission (DESIGN.md §9): when set with start_pass >= 1
  // and every gen::check_greedy_resume precondition holds, admission
  // forks the snapshot's KV prefix and the request joins the batch at
  // pass start_pass; otherwise it falls back to a full prefill with the
  // shared one-time warning. Skipped passes count in Completion::passes.
  const gen::PrefixSnapshot* resume = nullptr;
  int start_pass = 0;
  // Streaming callback, fired once per *newly decoded* accepted token
  // (index counts from 0) — the serve front-end turns these into SSE
  // events. Tokens seeded by a prefix-fork admission replay baseline
  // output and do not fire; live serving never forks, so a network
  // client sees every token. Observation-only: firing order and token
  // values are identical whether or not the callback is set.
  std::function<void(std::uint64_t id, int index, tok::TokenId tok)> on_token;
  // Invoked exactly once, when the request retires (from admit() if it
  // completes immediately, else from step() / cancel()).
  std::function<void(const Completion&)> on_done;
  // Steady-clock enqueue stamp (µs), set by Scheduler::submit / source
  // pulls only while obs metrics are enabled; feeds the queue-wait
  // histogram. Never read by the decode path, so it cannot perturb
  // outputs. -1 = unstamped.
  std::int64_t enqueue_us = -1;
  // Observability identity (DESIGN.md §16): pushed as the current
  // obs::RequestContext for the request's admission pass, decode rows,
  // and retirement, so trace spans, flight-recorder events, and SLO
  // samples attribute to this request. Never read by the decode path —
  // outputs are identical with or without a context.
  obs::RequestContext ctx;
};

struct EngineStats {
  std::uint64_t admitted = 0;
  std::uint64_t forked_admissions = 0;  // admissions that forked a prefix
  std::uint64_t admission_passes = 0;   // prefill / fork catch-up passes
  std::uint64_t decode_batches = 0;     // forward_batch() calls
  std::uint64_t decode_rows = 0;        // rows summed over those calls
  std::uint64_t completed = 0;  // EOS / budget retirements (not cancels)
  std::uint64_t cancelled = 0;  // cancel() retirements
  std::uint64_t generated_tokens = 0;
  int max_active = 0;  // peak concurrently-active slots
};

class BatchEngine {
 public:
  // The engine reference must outlive this object. While requests are in
  // flight the BatchEngine owns the engine's linear-hook slot and
  // nonfinite-diagnostics latch (admission passes scope per-request
  // hooks with LinearHookGuard and reset diagnostics around the pass);
  // callers must not install their own concurrently.
  BatchEngine(model::InferenceModel& m, int max_batch);
  // Paged slots: every slot cache draws rows from `pool` (DESIGN.md §12),
  // so forked admissions alias the snapshot's prefix pages instead of
  // copying them. Outputs stay bit-identical to the contiguous layout;
  // only the admission budget (can_admit) changes.
  BatchEngine(model::InferenceModel& m, int max_batch,
              std::shared_ptr<nn::PagePool> pool);

  int capacity() const { return static_cast<int>(slots_.size()); }
  int active() const { return active_; }

  // True when admitting `req` now cannot exhaust the page pool: a free
  // slot exists and the pool holds the request's worst-case page count
  // (every block paged out to min(max_seq, prompt + max_new_tokens)
  // rows). Deliberately conservative — prefix forks that would alias
  // most of those pages still reserve the full count — so a true return
  // is a guarantee, not an estimate. Always true on a free slot for
  // contiguous (non-pooled) engines.
  bool can_admit(const Request& req) const;

  // Admits one request into a free slot (throws std::runtime_error when
  // full) and runs its admission pass — prefill pass 0, or the forked
  // pass start_pass. A request that terminates immediately (EOS as its
  // first decoded token, zero token budget, cache exhausted) retires
  // straight into `done` without ever occupying a decode row.
  void admit(Request req, std::vector<Completion>& done);

  // Runs one batched decode pass over every active slot (ascending slot
  // order) and retires rows that hit EOS or a budget/cache limit,
  // appending their completions to `done` in that same slot order.
  void step(std::vector<Completion>& done);

  // Cancels the active request with this id: the slot retires
  // immediately with Completion::cancelled set (on_done still fires,
  // with the tokens decoded so far) and a paged slot hands its KV pages
  // back to the pool before returning — the client-disconnect path must
  // free budget for queued requests right away, not at the next reuse.
  // Returns false when no active slot carries the id. Must not be
  // called from inside a step() callback (retirement mutates the slot
  // the pass may still reference).
  bool cancel(std::uint64_t id, std::vector<Completion>& done);

  const EngineStats& stats() const { return stats_; }

 private:
  struct Slot {
    nn::KvCache cache;  // constructed once, reset() on reuse. Contiguous
                        // caches keep their allocation for the engine's
                        // whole lifetime (the storage invariant in
                        // kv_cache.h); paged caches instead release every
                        // page on reset()/retire so idle slots never
                        // starve the shared pool.
    bool active = false;
    Request req;
    std::vector<tok::TokenId> tokens;
    tok::TokenId next = 0;  // decoded, not yet accepted (greedy `next`)
    int step_idx = 0;       // greedy loop variable for `next`
    int passes = 0;
    int skipped = 0;
    bool nonfinite = false;

    explicit Slot(nn::KvCache c) : cache(std::move(c)) {}
  };

  // The greedy loop-top on `slot.next`: EOS / token-budget / cache-limit
  // checks and token acceptance, in exactly gen::generate()'s order.
  // Returns false (after retiring the slot into `done`) when the request
  // terminated, true when a decode pass for `next` is pending.
  bool accept_or_retire(Slot& slot, std::vector<Completion>& done);
  void retire(Slot& slot, bool hit_max, std::vector<Completion>& done,
              bool cancelled = false);

  model::InferenceModel& model_;
  std::shared_ptr<nn::PagePool> pool_;  // null for contiguous slots
  std::vector<Slot> slots_;
  int active_ = 0;
  EngineStats stats_;
  // Scratch: per-row request contexts for the current decode batch,
  // registered via obs::RowContextGuard so per-row hook events (detector
  // trips, injections) attribute to the right request. Rebuilt alongside
  // `rows` every step; kept as a member only to reuse the allocation.
  std::vector<obs::RequestContext> row_ctxs_;
};

}  // namespace llmfi::serve
