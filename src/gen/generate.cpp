#include "gen/generate.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace llmfi::gen {

namespace {

// Log-softmax value of token `id` in logits row `r`. Corrupted
// (NaN/inf) logit rows map to a large negative sentinel so that beam
// bookkeeping and sorting stay well-defined; such paths score so badly
// that they only surface when every alternative is equally corrupted —
// which then yields the distorted outputs the study classifies.
constexpr double kPoisonedLogProb = -1e30;

double token_logprob(const tn::Tensor& logits, tn::Index r, tok::TokenId id) {
  const float lse = tn::logsumexp_row(logits, r);
  const double lp = static_cast<double>(logits.at(r, id)) - lse;
  return std::isfinite(lp) ? lp : kPoisonedLogProb;
}

// Detection/recovery tallies shared by the decode strategies.
struct RecoveryStats {
  int detections = 0;
  int recoveries = 0;
  int recovery_passes = 0;
  bool unrecovered = false;
};

// One forward pass with the detect → recompute-the-pass recovery loop.
// If the detector trips during the pass, the KV cache is rewound to its
// pre-pass length and the same pass is recomputed, up to max_recoveries
// times. A transient (single-shot) fault does not re-fire, so the first
// recomputation is already clean; a persistent fault trips again and the
// detection is reported unrecovered once the budget is exhausted.
tn::Tensor forward_checked(model::InferenceModel& m,
                           std::span<const tok::TokenId> tokens,
                           nn::KvCache& cache, int pass_index,
                           nn::DetectorHook* det, int max_recoveries,
                           int& passes, RecoveryStats& stats,
                           const char* span_name,
                           nn::KvPassHook* kv_hook = nullptr) {
  obs::TraceScope span(span_name, pass_index);
  // The KV pass hook fires once per *logical* pass, before the forward
  // reads the cache; the recovery loop below re-runs the pass without
  // re-firing it. A kv-bit flip therefore lands in rows older than the
  // rewind point (truncate only drops this pass's appends), which is
  // exactly why recompute-the-pass cannot scrub it.
  if (kv_hook != nullptr) kv_hook->on_pass_begin(cache, pass_index);
  const tn::Index len0 = cache.length();
  // A detector latched by an earlier pass (detect-only mode, or an
  // unrecoverable fault) must not be counted again for this pass.
  const bool was_triggered = det != nullptr && det->triggered();
  const bool nonfinite_before = m.saw_nonfinite_logits();
  tn::Tensor logits = m.forward(tokens, cache, pass_index);
  ++passes;
  if (det == nullptr || was_triggered || !det->triggered()) return logits;
  ++stats.detections;
  obs::trace_instant("detector_trip", pass_index);
  for (int attempt = 0; attempt < max_recoveries && det->triggered();
       ++attempt) {
    obs::TraceScope rewind("recovery_rewind", pass_index);
    obs::record_event(obs::RecType::RecoveryRewind, pass_index, attempt + 1);
    cache.truncate(len0);
    det->reset();
    // Discard the poisoned pass's diagnostics, but never clear a latch
    // that predates this pass.
    if (!nonfinite_before) m.reset_diagnostics();
    logits = m.forward(tokens, cache, pass_index);
    ++passes;
    ++stats.recovery_passes;
  }
  if (det->triggered()) {
    stats.unrecovered = true;
    obs::record_event(obs::RecType::DetectorVerdict, pass_index, /*a0=*/0,
                      stats.detections);
  } else {
    ++stats.recoveries;
    obs::record_event(obs::RecType::DetectorVerdict, pass_index, /*a0=*/1,
                      stats.detections);
  }
  return logits;
}

void fold_stats(const RecoveryStats& stats, int& detections, int& recoveries,
                int& recovery_passes, bool& unrecovered) {
  detections = stats.detections;
  recoveries = stats.recoveries;
  recovery_passes = stats.recovery_passes;
  unrecovered = stats.unrecovered;
}

// A refused prefix-fork resume is a correctness event worth one loud
// line (it usually means snapshot/config drift), but campaigns run
// thousands of trials — warn once per process, then fall back silently.
std::atomic<bool> g_fork_fallback_warned{false};

void warn_fork_fallback(const char* why) {
  if (!g_fork_fallback_warned.exchange(true)) {
    std::fprintf(stderr,
                 "llmfi: prefix-fork resume refused (%s); "
                 "falling back to full recompute\n",
                 why);
  }
}

bool same_prompt(std::span<const tok::TokenId> prompt,
                 const std::vector<tok::TokenId>& snap_prompt) {
  return std::equal(prompt.begin(), prompt.end(), snap_prompt.begin(),
                    snap_prompt.end());
}

// Validates every precondition of the greedy resume fast path; returns
// nullptr (after a one-time warning) when any fails, which sends the
// caller down the bit-identical full-recompute path.
const PrefixSnapshot* usable_greedy_resume(
    std::span<const tok::TokenId> prompt, const GenerationConfig& cfg,
    const nn::KvCache& target_cache) {
  if (cfg.resume == nullptr || cfg.start_pass < 1) return nullptr;
  if (cfg.num_beams != 1 || cfg.detector != nullptr) {
    warn_fork_fallback("resume requires greedy decoding without a detector");
    return nullptr;
  }
  return check_greedy_resume(prompt, cfg.resume, cfg.start_pass, target_cache);
}

}  // namespace

const PrefixSnapshot* check_greedy_resume(
    std::span<const tok::TokenId> prompt, const PrefixSnapshot* resume,
    int start_pass, const nn::KvCache& target_cache) {
  const PrefixSnapshot* snap = resume;
  if (snap == nullptr || start_pass < 1) return nullptr;
  if (!snap->valid) {
    warn_fork_fallback("snapshot was never captured");
    return nullptr;
  }
  if (snap->nonfinite_logits) {
    warn_fork_fallback("baseline saw non-finite logits");
    return nullptr;
  }
  if (!same_prompt(prompt, snap->prompt)) {
    warn_fork_fallback("prompt differs from the captured run");
    return nullptr;
  }
  const int t = start_pass;
  if (t >= snap->passes || t > static_cast<int>(snap->tokens.size()) ||
      t >= static_cast<int>(snap->cache_len_before_pass.size())) {
    warn_fork_fallback("start_pass beyond the captured trajectory");
    return nullptr;
  }
  if (!snap->cache.has_value() ||
      !target_cache.fork_compatible(*snap->cache) ||
      snap->cache_len_before_pass[static_cast<size_t>(t)] >
          snap->cache->length()) {
    warn_fork_fallback("snapshot/engine cache shape mismatch");
    return nullptr;
  }
  return snap;
}

namespace {

GenerationResult greedy(model::InferenceModel& m,
                        std::span<const tok::TokenId> prompt,
                        const GenerationConfig& cfg) {
  GenerationResult result;
  RecoveryStats stats;
  auto cache = cfg.kv_pool ? m.make_cache(cfg.kv_pool) : m.make_cache();
  const PrefixSnapshot* snap = usable_greedy_resume(prompt, cfg, cache);
  // Recovery retries rewind and recompute passes, so the recorded
  // per-pass cache lengths would not describe a straight-line replay;
  // capture is therefore detector-free only. Resumed runs skip passes,
  // so their capture would be incomplete — ignored as documented.
  PrefixSnapshot* cap =
      (cfg.detector == nullptr && snap == nullptr) ? cfg.capture : nullptr;
  if (cap != nullptr) {
    *cap = PrefixSnapshot{};
    cap->prompt.assign(prompt.begin(), prompt.end());
  }

  tn::Tensor logits;
  tok::TokenId next;
  int start_step = 0;
  if (snap != nullptr) {
    // Passes 0..start_pass-1 of this run are bit-identical to the
    // captured baseline: fork its KV prefix, seed its tokens, and run
    // pass start_pass as the first real forward. The skipped passes
    // still count in `passes` so accounting matches a full run.
    const int t = cfg.start_pass;
    {
      obs::TraceScope fork("prefix_fork_resume", t);
      const auto fork_len =
          snap->cache_len_before_pass[static_cast<size_t>(t)];
      obs::record_event(obs::RecType::KvFork, t, fork_len);
      cache.fork_from(*snap->cache, fork_len);
    }
    result.tokens.assign(snap->tokens.begin(), snap->tokens.begin() + t);
    result.passes = t;
    result.skipped_passes = t;
    const tok::TokenId input = snap->tokens[static_cast<size_t>(t - 1)];
    logits = forward_checked(m, std::span(&input, 1), cache,
                             /*pass_index=*/t, cfg.detector,
                             cfg.max_recoveries, result.passes, stats,
                             "decode", cfg.kv_hook);
    next = static_cast<tok::TokenId>(tn::argmax_row(logits, 0));
    start_step = t;
  } else {
    if (cap != nullptr) cap->cache_len_before_pass.push_back(cache.length());
    logits = forward_checked(m, prompt, cache, /*pass_index=*/0,
                             cfg.detector, cfg.max_recoveries, result.passes,
                             stats, "prefill", cfg.kv_hook);
    next =
        static_cast<tok::TokenId>(tn::argmax_row(logits, logits.rows() - 1));
  }
  for (int step = start_step; step < cfg.max_new_tokens; ++step) {
    if (next == cfg.eos) break;
    result.tokens.push_back(next);
    if (step + 1 == cfg.max_new_tokens) {
      result.hit_max_tokens = true;
      break;
    }
    if (cache.length() + 1 > cache.max_seq()) {
      result.hit_max_tokens = true;
      break;
    }
    const tok::TokenId input = next;
    if (cap != nullptr) cap->cache_len_before_pass.push_back(cache.length());
    logits = forward_checked(m, std::span(&input, 1), cache,
                             /*pass_index=*/step + 1, cfg.detector,
                             cfg.max_recoveries, result.passes, stats,
                             "decode", cfg.kv_hook);
    next = static_cast<tok::TokenId>(tn::argmax_row(logits, 0));
  }
  result.nonfinite_logits = m.saw_nonfinite_logits();
  if (result.nonfinite_logits) {
    obs::record_event(obs::RecType::Nonfinite, result.passes);
  }
  fold_stats(stats, result.detections, result.recoveries,
             result.recovery_passes, result.unrecovered_detection);
  if (cap != nullptr) {
    obs::TraceScope capture("prefix_capture",
                            static_cast<std::int64_t>(result.passes));
    cap->tokens = result.tokens;
    cap->passes = result.passes;
    cap->nonfinite_logits = result.nonfinite_logits;
    cap->cache.emplace(std::move(cache));
    cap->valid = true;
  }
  return result;
}

struct Beam {
  nn::KvCache cache;
  std::vector<tok::TokenId> tokens;  // generated so far
  double logprob = 0.0;
  bool finished = false;
};

// (logprob desc, token id asc): HF's lowest-index tie-break, so tied
// log-probs order identically on every platform instead of falling back
// to std::pair's id-descending order.
bool better_token(const std::pair<double, tok::TokenId>& a,
                  const std::pair<double, tok::TokenId>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

double beam_score(const Beam& b, float length_penalty) {
  if (length_penalty == 0.0f || b.tokens.empty()) return b.logprob;
  return b.logprob /
         std::pow(static_cast<double>(b.tokens.size()),
                  static_cast<double>(length_penalty));
}

GenerationResult beam_search(model::InferenceModel& m,
                             std::span<const tok::TokenId> prompt,
                             const GenerationConfig& cfg) {
  GenerationResult result;
  RecoveryStats stats;
  const int n_beams = cfg.num_beams;
  if (cfg.resume != nullptr && cfg.start_pass >= 1) {
    // Beams diverge from the greedy trajectory from pass 1 on, so the
    // captured prefix is not this run's prefix — always recompute.
    warn_fork_fallback("resume requires greedy decoding without a detector");
  }

  // Prefill once, then replicate the cache across beams (paged beams
  // share the prefill pages copy-on-write).
  auto cache0 = cfg.kv_pool ? m.make_cache(cfg.kv_pool) : m.make_cache();
  tn::Tensor logits = forward_checked(m, prompt, cache0, /*pass_index=*/0,
                                      cfg.detector, cfg.max_recoveries,
                                      result.passes, stats, "prefill",
                                      cfg.kv_hook);

  // Seed beams with the top-n first tokens.
  const tn::Index vocab = logits.cols();
  const tn::Index last = logits.rows() - 1;
  std::vector<std::pair<double, tok::TokenId>> first;
  first.reserve(static_cast<size_t>(vocab));
  for (tn::Index v = 0; v < vocab; ++v) {
    first.emplace_back(token_logprob(logits, last, static_cast<tok::TokenId>(v)),
                       static_cast<tok::TokenId>(v));
  }
  std::partial_sort(first.begin(),
                    first.begin() + std::min<size_t>(first.size(),
                                                     static_cast<size_t>(n_beams)),
                    first.end(), better_token);

  std::vector<Beam> beams;
  for (int b = 0; b < n_beams && b < static_cast<int>(first.size()); ++b) {
    Beam beam{cache0, {}, first[static_cast<size_t>(b)].first, false};
    const tok::TokenId t = first[static_cast<size_t>(b)].second;
    if (t == cfg.eos) {
      beam.finished = true;
    } else {
      beam.tokens.push_back(t);
    }
    beams.push_back(std::move(beam));
  }

  for (int step = 1; step < cfg.max_new_tokens; ++step) {
    bool all_done = true;
    for (const auto& b : beams) {
      if (!b.finished) all_done = false;
    }
    if (all_done) break;

    struct Candidate {
      size_t beam;
      tok::TokenId token;  // -1 marks a carried-over finished beam
      double logprob;
    };
    std::vector<Candidate> candidates;
    std::vector<tn::Tensor> beam_logits(beams.size());
    for (size_t bi = 0; bi < beams.size(); ++bi) {
      Beam& b = beams[bi];
      if (b.finished) {
        candidates.push_back({bi, -1, b.logprob});
        continue;
      }
      if (b.cache.length() + 1 > b.cache.max_seq()) {
        b.finished = true;
        candidates.push_back({bi, -1, b.logprob});
        continue;
      }
      const tok::TokenId input = b.tokens.back();
      // kv_hook is single-shot across beams: like a comp fault, one
      // pass of one beam takes the flip (its cache is privatized via
      // COW before the write when pages are shared).
      beam_logits[bi] =
          forward_checked(m, std::span(&input, 1), b.cache,
                          /*pass_index=*/step, cfg.detector,
                          cfg.max_recoveries, result.passes, stats, "decode",
                          cfg.kv_hook);
      // Expand with the per-beam top (n_beams + 1) tokens; that is always
      // enough to fill the global top n_beams even if one is <eos>.
      std::vector<std::pair<double, tok::TokenId>> top;
      top.reserve(static_cast<size_t>(vocab));
      for (tn::Index v = 0; v < vocab; ++v) {
        top.emplace_back(
            token_logprob(beam_logits[bi], 0, static_cast<tok::TokenId>(v)),
            static_cast<tok::TokenId>(v));
      }
      const size_t keep = std::min<size_t>(top.size(),
                                           static_cast<size_t>(n_beams) + 1);
      std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                        better_token);
      for (size_t k = 0; k < keep; ++k) {
        candidates.push_back({bi, top[k].second, b.logprob + top[k].first});
      }
    }

    // Stable on ties: candidates were pushed in (beam asc, token-rank
    // asc) order, so equal log-probs resolve to the lowest beam and then
    // the lowest token id — reproducible across platforms and stdlibs.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.logprob > b.logprob;
                     });
    std::vector<Beam> next;
    for (const auto& c : candidates) {
      if (static_cast<int>(next.size()) >= n_beams) break;
      const Beam& src = beams[c.beam];
      if (c.token < 0) {
        next.push_back(src);  // finished beam carried over
        continue;
      }
      Beam nb{src.cache, src.tokens, c.logprob, false};
      if (c.token == cfg.eos) {
        nb.finished = true;
      } else {
        nb.tokens.push_back(c.token);
      }
      next.push_back(std::move(nb));
    }
    beams = std::move(next);
  }

  // Pick the best beam by (length-normalized) score.
  size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t bi = 0; bi < beams.size(); ++bi) {
    const double s = beam_score(beams[bi], cfg.length_penalty);
    if (s > best_score) {
      best_score = s;
      best = bi;
    }
  }
  result.tokens = beams[best].tokens;
  result.hit_max_tokens = !beams[best].finished;
  result.nonfinite_logits = m.saw_nonfinite_logits();
  fold_stats(stats, result.detections, result.recoveries,
             result.recovery_passes, result.unrecovered_detection);
  return result;
}

}  // namespace

GenerationResult generate(model::InferenceModel& m,
                          std::span<const tok::TokenId> prompt,
                          const GenerationConfig& cfg) {
  if (prompt.empty()) throw std::invalid_argument("generate: empty prompt");
  if (cfg.num_beams < 1) {
    throw std::invalid_argument("generate: num_beams must be >= 1");
  }
  m.reset_diagnostics();
  return cfg.num_beams == 1 ? greedy(m, prompt, cfg)
                            : beam_search(m, prompt, cfg);
}

namespace {

// Resume preconditions for option scoring: the snapshot must hold one
// score per option of the same prompt, and the skipped options must have
// been fault-free and finite — mirrors usable_greedy_resume.
const PrefixSnapshot* usable_mc_resume(
    std::span<const tok::TokenId> prompt, size_t n_options,
    nn::DetectorHook* detector, const PrefixSnapshot* resume,
    int start_pass) {
  if (resume == nullptr || start_pass < 1) return nullptr;
  if (detector != nullptr) {
    warn_fork_fallback("resume requires greedy decoding without a detector");
    return nullptr;
  }
  if (!resume->valid) {
    warn_fork_fallback("snapshot was never captured");
    return nullptr;
  }
  if (resume->nonfinite_logits) {
    warn_fork_fallback("baseline saw non-finite logits");
    return nullptr;
  }
  if (!same_prompt(prompt, resume->prompt)) {
    warn_fork_fallback("prompt differs from the captured run");
    return nullptr;
  }
  if (resume->option_scores.size() != n_options ||
      start_pass >= static_cast<int>(n_options)) {
    warn_fork_fallback("start_pass beyond the captured trajectory");
    return nullptr;
  }
  return resume;
}

}  // namespace

McResult score_options(
    model::InferenceModel& m, std::span<const tok::TokenId> prompt,
    const std::vector<std::vector<tok::TokenId>>& options,
    nn::DetectorHook* detector, int max_recoveries,
    PrefixSnapshot* capture, const PrefixSnapshot* resume, int start_pass) {
  if (options.empty()) {
    throw std::invalid_argument("score_options: no options");
  }
  m.reset_diagnostics();
  McResult result;
  RecoveryStats stats;
  const PrefixSnapshot* snap =
      usable_mc_resume(prompt, options.size(), detector, resume, start_pass);
  size_t first = 0;
  if (snap != nullptr) {
    // Options [0, start_pass) run before the armed pass, so they are
    // bit-identical to the baseline — seed their scores and count their
    // passes as executed, exactly like the greedy prefix skip.
    first = static_cast<size_t>(start_pass);
    result.scores.assign(snap->option_scores.begin(),
                         snap->option_scores.begin() + start_pass);
    result.passes = start_pass;
    result.skipped_passes = start_pass;
  }
  for (size_t oi = first; oi < options.size(); ++oi) {
    const auto& opt = options[oi];
    if (opt.empty()) {
      throw std::invalid_argument("score_options: empty option");
    }
    std::vector<tok::TokenId> full(prompt.begin(), prompt.end());
    full.insert(full.end(), opt.begin(), opt.end());
    auto cache = m.make_cache();
    tn::Tensor logits =
        forward_checked(m, full, cache, /*pass_index=*/static_cast<int>(oi),
                        detector, max_recoveries, result.passes, stats,
                        "score_option");
    // Position prompt_len - 1 + i predicts option token i.
    double score = 0.0;
    const auto p_len = static_cast<tn::Index>(prompt.size());
    for (size_t i = 0; i < opt.size(); ++i) {
      score += token_logprob(logits, p_len - 1 + static_cast<tn::Index>(i),
                             opt[i]);
    }
    result.scores.push_back(score);
  }
  result.chosen = static_cast<int>(
      std::max_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());
  fold_stats(stats, result.detections, result.recoveries,
             result.recovery_passes, result.unrecovered_detection);
  if (capture != nullptr && detector == nullptr && snap == nullptr) {
    *capture = PrefixSnapshot{};
    capture->prompt.assign(prompt.begin(), prompt.end());
    capture->option_scores = result.scores;
    capture->passes = result.passes;
    capture->nonfinite_logits = m.saw_nonfinite_logits();
    capture->valid = true;
  }
  return result;
}

}  // namespace llmfi::gen
