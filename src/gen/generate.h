#pragma once
// Decoding strategies over the inference engine: deterministic greedy
// search, beam search (the paper's §4.3.1 resilience comparison), and
// the option log-likelihood scoring used by multiple-choice tasks.

#include <span>
#include <vector>

#include "model/transformer.h"
#include "tokenizer/vocab.h"

namespace llmfi::gen {

struct GenerationConfig {
  int max_new_tokens = 40;
  // 1 = greedy search; >1 = beam search with that many beams, as in the
  // HuggingFace generate(num_beams=...) setting the paper uses.
  int num_beams = 1;
  // Beam score = logprob / length^length_penalty (0 disables).
  float length_penalty = 0.0f;
  tok::TokenId eos = 2;
  // Online fault detection: when set, the detector is polled after every
  // forward pass; a trip triggers recompute-the-pass recovery (rewind the
  // KV cache to the pre-pass length and rerun the same pass), up to
  // `max_recoveries` attempts per detection. With max_recoveries == 0 the
  // detector only observes (detect-only mode). The detector must already
  // be installed on the engine; the caller owns its lifetime.
  nn::DetectorHook* detector = nullptr;
  int max_recoveries = 0;
};

struct GenerationResult {
  std::vector<tok::TokenId> tokens;  // generated tokens (prompt excluded)
  int passes = 0;                    // forward passes executed
  bool hit_max_tokens = false;       // stopped by budget, not <eos>
  bool nonfinite_logits = false;     // engine saw NaN/inf logits
  // --- detection/recovery accounting (zero when cfg.detector unset) ---
  int detections = 0;       // detector trips observed
  int recoveries = 0;       // trips cleared by recomputation
  int recovery_passes = 0;  // extra forward passes spent on retries
  bool unrecovered_detection = false;  // some trip survived its retries
};

// Runs autoregressive decoding. Pass indices are 0 for prefill and
// 1, 2, ... per decode iteration (all beams of one iteration share the
// pass index; a single-shot computational fault therefore hits exactly
// one beam, mirroring a one-row corruption of a batched GEMM).
GenerationResult generate(model::InferenceModel& m,
                          std::span<const tok::TokenId> prompt,
                          const GenerationConfig& cfg);

struct McResult {
  int chosen = -1;
  std::vector<double> scores;  // sum log P(option tokens | prompt)
  int passes = 0;
  // --- detection/recovery accounting (see GenerationResult) ---
  int detections = 0;
  int recoveries = 0;
  int recovery_passes = 0;
  bool unrecovered_detection = false;
};

// Scores each candidate continuation by summed token log-likelihood and
// picks the argmax — the standard lm-eval multiple-choice protocol.
// Option i is evaluated in its own forward pass with pass_index == i.
// `detector`/`max_recoveries` enable the same per-pass detection and
// recompute-recovery loop as GenerationConfig.
McResult score_options(
    model::InferenceModel& m, std::span<const tok::TokenId> prompt,
    const std::vector<std::vector<tok::TokenId>>& options,
    nn::DetectorHook* detector = nullptr, int max_recoveries = 0);

}  // namespace llmfi::gen
