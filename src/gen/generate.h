#pragma once
// Decoding strategies over the inference engine: deterministic greedy
// search, beam search (the paper's §4.3.1 resilience comparison), and
// the option log-likelihood scoring used by multiple-choice tasks.

#include <optional>
#include <span>
#include <vector>

#include "model/transformer.h"
#include "tokenizer/vocab.h"

namespace llmfi::gen {

// Everything a fault-free greedy (or option-scoring) run leaves behind
// that a later run over the same prompt can reuse: the final KV cache
// (append-only, so it contains every intermediate pass state as a
// prefix), the greedy token trajectory, the cache length at entry of
// each pass, and — for score_options — the per-option scores. A
// transient-fault trial armed at pass `t` is bit-identical to the
// baseline on passes 0..t-1, so it can fork the cache prefix, seed the
// already-decoded tokens, and start its loop at pass t (DESIGN.md §9).
struct PrefixSnapshot {
  bool valid = false;  // capture completed on a greedy, detector-free run
  std::vector<tok::TokenId> prompt;  // the captured run's prompt
  std::vector<tok::TokenId> tokens;  // greedy trajectory (generative)
  // cache.length() immediately before each forward pass, indexed by pass.
  std::vector<tn::Index> cache_len_before_pass;
  std::optional<nn::KvCache> cache;  // final KV state (generative)
  std::vector<double> option_scores;  // per-option scores (score_options)
  int passes = 0;                     // forward passes the capture ran
  bool nonfinite_logits = false;      // baseline latch; true forbids resume
};

struct GenerationConfig {
  int max_new_tokens = 40;
  // 1 = greedy search; >1 = beam search with that many beams, as in the
  // HuggingFace generate(num_beams=...) setting the paper uses.
  int num_beams = 1;
  // Beam score = logprob / length^length_penalty (0 disables).
  float length_penalty = 0.0f;
  tok::TokenId eos = 2;
  // Online fault detection: when set, the detector is polled after every
  // forward pass; a trip triggers recompute-the-pass recovery (rewind the
  // KV cache to the pre-pass length and rerun the same pass), up to
  // `max_recoveries` attempts per detection. With max_recoveries == 0 the
  // detector only observes (detect-only mode). The detector must already
  // be installed on the engine; the caller owns its lifetime.
  nn::DetectorHook* detector = nullptr;
  int max_recoveries = 0;
  // --- prefix-fork (DESIGN.md §9) --------------------------------------
  // When set, a greedy detector-free run records its snapshot here (the
  // capture is skipped, leaving valid == false, for beam search and
  // detector-enabled runs). Ignored on resumed runs.
  PrefixSnapshot* capture = nullptr;
  // When set with start_pass >= 1, the run forks `resume`'s KV prefix and
  // begins at pass start_pass instead of pass 0. Only exact for greedy
  // decoding without a detector over the same prompt; any precondition
  // or snapshot/shape mismatch falls back to a full run with a one-time
  // warning. Skipped passes still count in GenerationResult::passes so
  // accounting matches a full run bit-for-bit.
  const PrefixSnapshot* resume = nullptr;
  int start_pass = 0;
  // --- paged KV (DESIGN.md §12) ----------------------------------------
  // When set, generation caches draw their rows from this pool instead
  // of allocating contiguous [max_seq, d_model] blocks. Numerics are
  // bit-identical either way; with the snapshot captured on the same
  // pool, a resume fork aliases the prefix pages instead of copying
  // rows.
  std::shared_ptr<nn::PagePool> kv_pool;
  // When set, fired once at the start of every logical forward pass with
  // the live cache — the kv-bit fault-injection surface. Detector
  // recompute retries re-run a pass without re-firing it. The caller
  // owns the hook's lifetime and per-trial re-arming.
  nn::KvPassHook* kv_hook = nullptr;
};

struct GenerationResult {
  std::vector<tok::TokenId> tokens;  // generated tokens (prompt excluded)
  int passes = 0;                    // forward passes executed
  int skipped_passes = 0;            // of which skipped via prefix fork
  bool hit_max_tokens = false;       // stopped by budget, not <eos>
  bool nonfinite_logits = false;     // engine saw NaN/inf logits
  // --- detection/recovery accounting (zero when cfg.detector unset) ---
  int detections = 0;       // detector trips observed
  int recoveries = 0;       // trips cleared by recomputation
  int recovery_passes = 0;  // extra forward passes spent on retries
  bool unrecovered_detection = false;  // some trip survived its retries
};

// Validates the snapshot/trajectory/cache-shape preconditions of the
// greedy prefix-fork resume, shared by generate() and the serve-layer
// BatchEngine (which forks baseline prefixes at request admission).
// Returns the snapshot when resuming at `start_pass` over `prompt` into
// `target_cache` is exact, else nullptr after a one-time warning. The
// caller must separately guarantee greedy decoding without a detector.
const PrefixSnapshot* check_greedy_resume(
    std::span<const tok::TokenId> prompt, const PrefixSnapshot* resume,
    int start_pass, const nn::KvCache& target_cache);

// Runs autoregressive decoding. Pass indices are 0 for prefill and
// 1, 2, ... per decode iteration (all beams of one iteration share the
// pass index; a single-shot computational fault therefore hits exactly
// one beam, mirroring a one-row corruption of a batched GEMM).
GenerationResult generate(model::InferenceModel& m,
                          std::span<const tok::TokenId> prompt,
                          const GenerationConfig& cfg);

struct McResult {
  int chosen = -1;
  std::vector<double> scores;  // sum log P(option tokens | prompt)
  int passes = 0;
  int skipped_passes = 0;  // option passes seeded from a snapshot
  // --- detection/recovery accounting (see GenerationResult) ---
  int detections = 0;
  int recoveries = 0;
  int recovery_passes = 0;
  bool unrecovered_detection = false;
};

// Scores each candidate continuation by summed token log-likelihood and
// picks the argmax — the standard lm-eval multiple-choice protocol.
// Option i is evaluated in its own forward pass with pass_index == i.
// `detector`/`max_recoveries` enable the same per-pass detection and
// recompute-recovery loop as GenerationConfig. `capture` records the
// per-option scores; `resume` + `start_pass` seeds options
// [0, start_pass) from the snapshot and scores only the rest (each
// option runs in a private cache, so no KV forking is involved here —
// the skipped prefix is the earlier, fault-free option passes).
McResult score_options(
    model::InferenceModel& m, std::span<const tok::TokenId> prompt,
    const std::vector<std::vector<tok::TokenId>>& options,
    nn::DetectorHook* detector = nullptr, int max_recoveries = 0,
    PrefixSnapshot* capture = nullptr,
    const PrefixSnapshot* resume = nullptr, int start_pass = 0);

}  // namespace llmfi::gen
