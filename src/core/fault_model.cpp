#include "core/fault_model.h"

#include <stdexcept>
#include <string>

namespace llmfi::core {

std::string_view fault_model_name(FaultModel m) {
  switch (m) {
    case FaultModel::Comp1Bit: return "1bit-comp";
    case FaultModel::Comp2Bit: return "2bits-comp";
    case FaultModel::Mem2Bit: return "2bits-mem";
    case FaultModel::KvBit: return "kv-bit";
    case FaultModel::TpPartial: return "tp-partial";
    case FaultModel::TpReduce: return "tp-reduce";
  }
  return "?";
}

FaultModel parse_fault_model(std::string_view name) {
  if (name == "1bit-comp") return FaultModel::Comp1Bit;
  if (name == "2bits-comp") return FaultModel::Comp2Bit;
  if (name == "2bits-mem") return FaultModel::Mem2Bit;
  if (name == "kv-bit") return FaultModel::KvBit;
  if (name == "tp-partial") return FaultModel::TpPartial;
  if (name == "tp-reduce") return FaultModel::TpReduce;
  throw std::invalid_argument("unknown fault model: " + std::string(name));
}

}  // namespace llmfi::core
