#include "core/injector.h"

#include <algorithm>
#include <cassert>

#include "numerics/bitflip.h"

namespace llmfi::core {

ComputationalFaultInjector::ComputationalFaultInjector(FaultPlan plan,
                                                       num::DType act_dtype)
    : plan_(std::move(plan)), act_dtype_(act_dtype) {
  assert(!is_memory_fault(plan_.model));
}

void ComputationalFaultInjector::on_linear_output(const nn::LinearId& id,
                                                  tn::Tensor& y,
                                                  int pass_index,
                                                  int row_offset) {
  (void)row_offset;
  if (record_.has_value()) return;               // single shot
  if (pass_index != plan_.pass_index) return;
  if (!(id == plan_.layer)) return;

  FiredRecord rec;
  rec.pass_index = pass_index;
  rec.row = std::min<tn::Index>(
      y.rows() - 1,
      static_cast<tn::Index>(plan_.row_frac * static_cast<double>(y.rows())));
  rec.col = std::min<tn::Index>(plan_.out_col, y.cols() - 1);
  rec.old_value = y.at(rec.row, rec.col);
  // Activations already carry dtype-exact values (the engine rounds the
  // output after every linear), so flipping in the activation dtype's
  // representation is lossless.
  y.at(rec.row, rec.col) =
      num::flip_float_bits(rec.old_value, act_dtype_, plan_.bits);
  rec.new_value = y.at(rec.row, rec.col);
  record_ = rec;
}

WeightCorruption::WeightCorruption(model::InferenceModel& m,
                                   const FaultPlan& plan)
    : model_(m), plan_(plan) {
  assert(is_memory_fault(plan_.model));
  auto layers = model_.linear_layers();
  auto& w = *layers[static_cast<size_t>(plan_.layer_index)].weights;
  old_value_ = w.values().at(plan_.weight_row, plan_.weight_col);
  w.flip_bits(plan_.weight_row, plan_.weight_col, plan_.bits);
  new_value_ = w.values().at(plan_.weight_row, plan_.weight_col);
}

WeightCorruption::~WeightCorruption() {
  auto layers = model_.linear_layers();
  auto& w = *layers[static_cast<size_t>(plan_.layer_index)].weights;
  w.flip_bits(plan_.weight_row, plan_.weight_col, plan_.bits);
}

}  // namespace llmfi::core
