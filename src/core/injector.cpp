#include "core/injector.h"

#include <algorithm>
#include <cassert>

#include "nn/kv_cache.h"
#include "numerics/bitflip.h"
#include "obs/recorder.h"

namespace llmfi::core {

namespace {

// Flight-recorder stamp for the moment a planned flip actually lands.
// Fires after the tensor is already mutated and reads nothing back.
void record_fired(const FiredRecord& rec) {
  obs::record_event(obs::RecType::InjectFired, rec.pass_index, rec.row,
                    rec.col);
}

}  // namespace

ComputationalFaultInjector::ComputationalFaultInjector(FaultPlan plan,
                                                       num::DType act_dtype)
    : plan_(std::move(plan)), act_dtype_(act_dtype) {
  assert(!is_memory_fault(plan_.model));
}

void ComputationalFaultInjector::on_linear_output(const nn::LinearId& id,
                                                  tn::Tensor& y,
                                                  int pass_index,
                                                  int row_offset) {
  (void)row_offset;
  if (record_.has_value()) return;               // single shot
  if (pass_index != plan_.pass_index) return;
  if (!(id == plan_.layer)) return;

  FiredRecord rec;
  rec.pass_index = pass_index;
  rec.row = std::min<tn::Index>(
      y.rows() - 1,
      static_cast<tn::Index>(plan_.row_frac * static_cast<double>(y.rows())));
  rec.col = std::min<tn::Index>(plan_.out_col, y.cols() - 1);
  rec.old_value = y.at(rec.row, rec.col);
  // Activations already carry dtype-exact values (the engine rounds the
  // output after every linear), so flipping in the activation dtype's
  // representation is lossless.
  y.at(rec.row, rec.col) =
      num::flip_float_bits(rec.old_value, act_dtype_, plan_.bits);
  rec.new_value = y.at(rec.row, rec.col);
  record_ = rec;
  record_fired(rec);
}

KvBitFaultInjector::KvBitFaultInjector(FaultPlan plan, num::DType act_dtype)
    : plan_(std::move(plan)), act_dtype_(act_dtype) {
  assert(is_kv_fault(plan_.model));
}

void KvBitFaultInjector::on_pass_begin(nn::KvCache& cache, int pass_index) {
  if (record_.has_value()) return;  // single shot
  if (pass_index != plan_.pass_index) return;
  const tn::Index len = cache.length();
  if (len <= 0) return;  // nothing cached yet: the flip lands in
                         // unused storage and is masked by definition
  const int block = std::min(plan_.layer.block, cache.n_blocks() - 1);
  const bool value_plane = plan_.layer.kind == nn::LayerKind::VProj;

  FiredRecord rec;
  rec.pass_index = pass_index;
  rec.row = std::min<tn::Index>(
      len - 1,
      static_cast<tn::Index>(plan_.row_frac * static_cast<double>(len)));
  rec.col = std::min<tn::Index>(plan_.out_col, cache.d_model() - 1);
  rec.old_value = value_plane ? cache.value_at(block, rec.row, rec.col)
                              : cache.key_at(block, rec.row, rec.col);
  // Cached K/V rows hold post-RoPE fp32 values; the flip models storage
  // at the serving dtype, so the element is rounded into act_dtype,
  // flipped there, and decoded back.
  rec.new_value = num::flip_float_bits(rec.old_value, act_dtype_,
                                       plan_.bits);
  if (value_plane) {
    cache.set_value_at(block, rec.row, rec.col, rec.new_value);
  } else {
    cache.set_key_at(block, rec.row, rec.col, rec.new_value);
  }
  record_ = rec;
  record_fired(rec);
}

TpFaultInjector::TpFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  assert(is_tp_fault(plan_.model));
}

void TpFaultInjector::flip_in(tn::Tensor& partial, int pass_index) {
  FiredRecord rec;
  rec.pass_index = pass_index;
  rec.row = std::min<tn::Index>(
      partial.rows() - 1,
      static_cast<tn::Index>(plan_.row_frac *
                             static_cast<double>(partial.rows())));
  rec.col = std::min<tn::Index>(plan_.out_col, partial.cols() - 1);
  rec.old_value = partial.at(rec.row, rec.col);
  // Partials are accumulated in fp32 regardless of the serving dtype —
  // they are pre-rounding register state — so the flip always acts on
  // the fp32 representation.
  partial.at(rec.row, rec.col) =
      num::flip_float_bits(rec.old_value, num::DType::F32, plan_.bits);
  rec.new_value = partial.at(rec.row, rec.col);
  record_ = rec;
  record_fired(rec);
}

void TpFaultInjector::on_partials(const nn::LinearId& id,
                                  std::span<tn::Tensor> partials,
                                  int pass_index, int row_offset) {
  (void)row_offset;
  if (plan_.model != FaultModel::TpPartial) return;
  if (record_.has_value()) return;  // single shot
  if (pass_index != plan_.pass_index) return;
  if (!(id == plan_.layer)) return;
  if (partials.empty()) return;
  const auto g = std::min<size_t>(static_cast<size_t>(std::max(0, plan_.segment)),
                                  partials.size() - 1);
  flip_in(partials[g], pass_index);
}

void TpFaultInjector::on_reduce_level(const nn::LinearId& id, int level,
                                      int n_levels,
                                      std::span<tn::Tensor> partials,
                                      std::span<const int> survivors,
                                      int pass_index, int row_offset) {
  (void)row_offset;
  if (plan_.model != FaultModel::TpReduce) return;
  if (record_.has_value()) return;  // single shot
  if (pass_index != plan_.pass_index) return;
  if (!(id == plan_.layer)) return;
  if (survivors.empty()) return;
  // Clamp the planned level into this product's actual depth (the plan
  // was sampled against the target layer's grid, but small K widths can
  // shrink the tree), then resolve the planned segment as a rank into
  // the level's surviving nodes.
  const int target_level = std::min(plan_.reduce_level, n_levels - 1);
  if (level != target_level) return;
  const auto rank = static_cast<size_t>(std::max(0, plan_.segment)) %
                    survivors.size();
  flip_in(partials[static_cast<size_t>(survivors[rank])], pass_index);
}

WeightCorruption::WeightCorruption(model::InferenceModel& m,
                                   const FaultPlan& plan)
    : model_(m), plan_(plan) {
  assert(is_memory_fault(plan_.model));
  auto layers = model_.linear_layers();
  auto& w = *layers[static_cast<size_t>(plan_.layer_index)].weights;
  old_value_ = w.values().at(plan_.weight_row, plan_.weight_col);
  w.flip_bits(plan_.weight_row, plan_.weight_col, plan_.bits);
  new_value_ = w.values().at(plan_.weight_row, plan_.weight_col);
  // Lifetime corruption lands before any forward runs, so the fired
  // event is not pass-scoped (pass -1); row/col name the weight element.
  obs::record_event(obs::RecType::InjectFired, /*pass=*/-1,
                    plan_.weight_row, plan_.weight_col);
}

WeightCorruption::~WeightCorruption() {
  auto layers = model_.linear_layers();
  auto& w = *layers[static_cast<size_t>(plan_.layer_index)].weights;
  w.flip_bits(plan_.weight_row, plan_.weight_col, plan_.bits);
}

}  // namespace llmfi::core
