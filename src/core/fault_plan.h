#pragma once
// A sampled fault location — the unit of one statistical FI trial.

#include <functional>
#include <vector>

#include "core/fault_model.h"
#include "model/transformer.h"
#include "nn/layer_id.h"
#include "numerics/rng.h"

namespace llmfi::core {

struct FaultPlan {
  FaultModel model = FaultModel::Comp1Bit;
  nn::LinearId layer;
  int layer_index = -1;  // index into InferenceModel::linear_layers()

  // Memory faults: target weight element.
  tn::Index weight_row = 0;
  tn::Index weight_col = 0;

  // Computational faults: target (pass, row, neuron). The row is sampled
  // as a fraction and resolved against the actual output height when the
  // hook fires, so the fault always lands regardless of prompt length.
  int pass_index = 0;
  double row_frac = 0.0;
  tn::Index out_col = 0;

  // Tensor-parallel faults (pass/row_frac/out_col above still place the
  // flip in (pass, row, neuron) terms). For tp-partial, `segment` is the
  // K-grid segment whose partial sum is hit. For tp-reduce,
  // `reduce_level` picks the tree level (clamped to the product's depth
  // at fire time) and `segment` becomes a rank into that level's
  // surviving nodes — sampled as a rank so the plan stays valid for any
  // K width's grid.
  int segment = -1;
  int reduce_level = -1;

  // Bit positions within the storage representation (1 or 2, distinct).
  std::vector<int> bits;

  // Highest flipped bit (the grouping key of Figs 9-10).
  int highest_bit() const;
};

// Sampling scope: which layers are eligible and how many forward passes
// the upcoming inference will run (needed to place computational faults
// uniformly over generation iterations, paper §3.2).
struct SamplerScope {
  // Default: every linear layer in the transformer blocks.
  std::function<bool(const nn::LinearId&)> layer_filter;
  int max_passes = 1;
};

// Mirrors the paper's two-stage sampling: uniform over (block, layer)
// entries passing the filter, then uniform over elements/bits. Bits are
// drawn within the dtype's storage width (payload width for quantized).
FaultPlan sample_fault(FaultModel model, model::InferenceModel& m,
                       const SamplerScope& scope, num::Rng& rng);

}  // namespace llmfi::core
