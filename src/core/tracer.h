#pragma once
// Error-propagation tracing (paper Figs 5-6): capture every linear
// layer's output during a clean and a faulty forward pass, then diff to
// see how far the corruption spread — a memory fault corrupts an entire
// output *column* and then the whole next layer; a computational fault
// corrupts one *row* and is largely masked by the next normalization.
//
// NOT to be confused with the *runtime* tracer (src/obs/trace.h), which
// records wall-clock phase spans as Chrome trace-event JSON. core::
// traces corruption spread through activations; obs:: traces time.
// See the README glossary.

#include <span>
#include <vector>

#include "model/transformer.h"
#include "nn/layer_id.h"
#include "tokenizer/vocab.h"

namespace llmfi::core {

struct CapturedLayer {
  nn::LinearId id;
  tn::Tensor output;
};

// Runs one forward pass (fresh cache, pass 0) recording every linear
// output. Any hook already installed on the engine stays active, so a
// computational-fault injector can corrupt the "faulty" capture.
std::vector<CapturedLayer> capture_layer_outputs(
    model::InferenceModel& m, std::span<const tok::TokenId> prompt);

struct LayerDiff {
  nn::LinearId id;
  tn::Index rows = 0;
  tn::Index cols = 0;
  tn::Index corrupted_elems = 0;
  tn::Index corrupted_rows = 0;  // rows containing any corrupted element
  tn::Index corrupted_cols = 0;  // columns containing any corrupted element
  float max_abs_delta = 0.0f;

  double row_fraction() const {
    return rows ? static_cast<double>(corrupted_rows) / rows : 0.0;
  }
  double col_fraction() const {
    return cols ? static_cast<double>(corrupted_cols) / cols : 0.0;
  }
};

// Element (i,j) counts as corrupted when |clean - faulty| > tol or the
// faulty value is non-finite.
std::vector<LayerDiff> diff_captures(const std::vector<CapturedLayer>& clean,
                                     const std::vector<CapturedLayer>& faulty,
                                     float tol = 1e-4f);

}  // namespace llmfi::core
