#include "core/tracer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace llmfi::core {

std::vector<CapturedLayer> capture_layer_outputs(
    model::InferenceModel& m, std::span<const tok::TokenId> prompt) {
  std::vector<CapturedLayer> captured;
  m.set_tracer([&captured](const nn::LinearId& id, const tn::Tensor& y) {
    captured.push_back({id, y});
  });
  auto cache = m.make_cache();
  (void)m.forward(prompt, cache, /*pass_index=*/0);
  m.set_tracer(nullptr);
  return captured;
}

std::vector<LayerDiff> diff_captures(const std::vector<CapturedLayer>& clean,
                                     const std::vector<CapturedLayer>& faulty,
                                     float tol) {
  if (clean.size() != faulty.size()) {
    throw std::invalid_argument("diff_captures: capture length mismatch");
  }
  std::vector<LayerDiff> diffs;
  diffs.reserve(clean.size());
  for (size_t l = 0; l < clean.size(); ++l) {
    const auto& a = clean[l];
    const auto& b = faulty[l];
    if (!(a.id == b.id) || a.output.shape() != b.output.shape()) {
      throw std::invalid_argument("diff_captures: layer mismatch");
    }
    LayerDiff d;
    d.id = a.id;
    d.rows = a.output.rows();
    d.cols = a.output.cols();
    std::vector<bool> row_hit(static_cast<size_t>(d.rows), false);
    std::vector<bool> col_hit(static_cast<size_t>(d.cols), false);
    for (tn::Index i = 0; i < d.rows; ++i) {
      for (tn::Index j = 0; j < d.cols; ++j) {
        const float cv = a.output.at(i, j);
        const float fv = b.output.at(i, j);
        const float delta = std::fabs(cv - fv);
        const bool corrupted = !std::isfinite(fv) || delta > tol;
        if (!corrupted) continue;
        ++d.corrupted_elems;
        row_hit[static_cast<size_t>(i)] = true;
        col_hit[static_cast<size_t>(j)] = true;
        if (std::isfinite(delta)) {
          d.max_abs_delta = std::max(d.max_abs_delta, delta);
        } else {
          d.max_abs_delta = std::numeric_limits<float>::infinity();
        }
      }
    }
    for (bool h : row_hit) d.corrupted_rows += h ? 1 : 0;
    for (bool h : col_hit) d.corrupted_cols += h ? 1 : 0;
    diffs.push_back(d);
  }
  return diffs;
}

}  // namespace llmfi::core
