#include "core/outcome.h"

namespace llmfi::core {

std::string_view outcome_name(OutcomeClass c) {
  switch (c) {
    case OutcomeClass::Masked: return "masked";
    case OutcomeClass::SdcSubtle: return "sdc-subtle";
    case OutcomeClass::SdcDistorted: return "sdc-distorted";
    case OutcomeClass::DetectedRecovered: return "detected-recovered";
    case OutcomeClass::DetectedUnrecovered: return "detected-unrecovered";
  }
  return "?";
}

namespace {

constexpr int kRepeatRun = 5;

bool has_long_repeat(std::span<const tok::TokenId> tokens) {
  int run = 1;
  for (size_t i = 1; i < tokens.size(); ++i) {
    run = (tokens[i] == tokens[i - 1]) ? run + 1 : 1;
    if (run >= kRepeatRun) return true;
  }
  return false;
}

// Detects a short cycle (period 2..4) covering at least ~70% of the tail
// of the output — the "repeated token pattern" class of distortion.
bool has_ngram_loop(std::span<const tok::TokenId> tokens) {
  const size_t n = tokens.size();
  if (n < 8) return false;
  for (size_t period = 2; period <= 4; ++period) {
    size_t matches = 0;
    size_t comparisons = 0;
    for (size_t i = period; i < n; ++i) {
      ++comparisons;
      if (tokens[i] == tokens[i - period]) ++matches;
    }
    if (comparisons > 0 &&
        static_cast<double>(matches) / comparisons >= 0.7) {
      return true;
    }
  }
  return false;
}

}  // namespace

DistortionSignals analyze_distortion(std::span<const tok::TokenId> tokens,
                                     bool nonfinite_logits,
                                     bool hit_max_tokens, bool baseline_ended,
                                     bool baseline_empty) {
  DistortionSignals s;
  s.nonfinite_logits = nonfinite_logits;
  s.runaway_length = hit_max_tokens && baseline_ended;
  s.empty_output = tokens.empty() && !baseline_empty;
  s.long_repeat = has_long_repeat(tokens);
  s.ngram_loop = has_ngram_loop(tokens);
  return s;
}

OutcomeClass classify_direct(bool answer_correct,
                             const DistortionSignals& signals) {
  if (answer_correct) return OutcomeClass::Masked;
  return signals.any() ? OutcomeClass::SdcDistorted : OutcomeClass::SdcSubtle;
}

OutcomeClass classify_generative(const std::string& output,
                                 const std::string& baseline_output,
                                 const DistortionSignals& signals) {
  if (output == baseline_output) return OutcomeClass::Masked;
  return signals.any() ? OutcomeClass::SdcDistorted : OutcomeClass::SdcSubtle;
}

}  // namespace llmfi::core
