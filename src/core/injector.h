#pragma once
// Fault application machinery: a single-shot computational-fault hook
// (PyTorchFI-style output perturbation), an RAII weight corruption
// guard for memory faults (flip on construction, flip back on
// destruction — the paper's fresh-execution protocol, §3.2), and an RAII
// guard scoping a linear hook's installation to one inference.

#include <optional>

#include "core/fault_plan.h"
#include "nn/hooks.h"

namespace llmfi::core {

// What actually happened when a fault landed.
struct FiredRecord {
  tn::Index row = 0;  // resolved output row (absolute token position)
  tn::Index col = 0;
  float old_value = 0.0f;
  float new_value = 0.0f;
  int pass_index = 0;
};

// Flips plan.bits in one element of the output of the target layer, the
// first time the (pass_index, layer) site executes. Single-shot: in beam
// search several beams share a pass index, but only one row of one beam
// is corrupted — matching a one-row corruption of a batched GEMM.
class ComputationalFaultInjector : public nn::LinearHook {
 public:
  // `act_dtype` is the representation the flip happens in — pass the
  // engine's precision().act_dtype so 16-bit flips act on fp16/bf16 bits.
  ComputationalFaultInjector(FaultPlan plan, num::DType act_dtype);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;

  bool fired() const { return record_.has_value(); }
  const FiredRecord& record() const { return *record_; }
  // Re-arm for another inference with the same plan.
  void reset() { record_.reset(); }
  void on_install() override { reset(); }

 private:
  FaultPlan plan_;
  num::DType act_dtype_;
  std::optional<FiredRecord> record_;
};

// Flips plan.bits in one already-cached K/V element at the start of the
// planned pass, before the pass reads the cache. The victim is resolved
// at fire time against the live cache: block and K-vs-V plane from
// plan.layer (KProj/VProj), position = row_frac scaled over the current
// length, dim = out_col. Persistent by construction — the cache re-reads
// the flipped row on every later pass — and single-shot: recovery reruns
// that flush the cache start clean (FiredRecord.row is the position,
// .col the dim). A pass that finds the cache empty fires nothing (the
// fault lands in unused storage: masked).
class KvBitFaultInjector : public nn::KvPassHook {
 public:
  // `act_dtype` is the representation the flip happens in: the cached
  // element is rounded into the serving dtype, bit-flipped there, and
  // decoded back — the KV cache is stored at activation precision.
  KvBitFaultInjector(FaultPlan plan, num::DType act_dtype);

  void on_pass_begin(nn::KvCache& cache, int pass_index) override;

  bool fired() const { return record_.has_value(); }
  const FiredRecord& record() const { return *record_; }
  // Re-arm for another inference with the same plan.
  void reset() { record_.reset(); }

 private:
  FaultPlan plan_;
  num::DType act_dtype_;
  std::optional<FiredRecord> record_;
};

// Flips plan.bits in the fp32 partial-sum state of a row-parallel
// product (tp-partial / tp-reduce, DESIGN.md §14). tp-partial corrupts
// one segment's partial after the partial GEMMs and before any fold;
// tp-reduce corrupts a surviving node after one tree level, so the flip
// enters midway through the reduction. Single-shot like the
// computational injector; the victim (row, col) resolves from
// row_frac/out_col at fire time, the segment/node from plan.segment
// clamped (or rank-resolved) against the product's actual grid.
class TpFaultInjector : public nn::ShardHook {
 public:
  explicit TpFaultInjector(FaultPlan plan);

  void on_partials(const nn::LinearId& id, std::span<tn::Tensor> partials,
                   int pass_index, int row_offset) override;
  void on_reduce_level(const nn::LinearId& id, int level, int n_levels,
                       std::span<tn::Tensor> partials,
                       std::span<const int> survivors, int pass_index,
                       int row_offset) override;

  bool fired() const { return record_.has_value(); }
  const FiredRecord& record() const { return *record_; }
  // Re-arm for another inference with the same plan.
  void reset() { record_.reset(); }
  void on_install() override { reset(); }

 private:
  void flip_in(tn::Tensor& partial, int pass_index);

  FaultPlan plan_;
  std::optional<FiredRecord> record_;
};

// RAII hook installation: installs `hook` on construction and restores
// the previously installed hook (usually none) on destruction, so a
// throwing inference cannot leak a dangling hook pointer into the next
// trial. Mirrors WeightCorruption's scoping discipline. Installation
// invokes the hook's on_install() lifecycle reset, so trip latches and
// correction counters can never leak across trials that reuse a hook.
class LinearHookGuard {
 public:
  LinearHookGuard(model::InferenceModel& m, nn::LinearHook* hook)
      : model_(m), previous_(m.linear_hook()) {
    if (hook != nullptr) hook->on_install();
    model_.set_linear_hook(hook);
  }
  ~LinearHookGuard() { model_.set_linear_hook(previous_); }

  LinearHookGuard(const LinearHookGuard&) = delete;
  LinearHookGuard& operator=(const LinearHookGuard&) = delete;

 private:
  model::InferenceModel& model_;
  nn::LinearHook* previous_;
};

// RAII shard-hook installation, mirroring LinearHookGuard: installs the
// hook (arming the engine's serial/observable reduce mode) and restores
// the previous hook on destruction, with the same on_install() lifecycle
// reset.
class ShardHookGuard {
 public:
  ShardHookGuard(model::InferenceModel& m, nn::ShardHook* hook)
      : model_(m), previous_(m.shard_hook()) {
    if (hook != nullptr) hook->on_install();
    model_.set_shard_hook(hook);
  }
  ~ShardHookGuard() { model_.set_shard_hook(previous_); }

  ShardHookGuard(const ShardHookGuard&) = delete;
  ShardHookGuard& operator=(const ShardHookGuard&) = delete;

 private:
  model::InferenceModel& model_;
  nn::ShardHook* previous_;
};

// RAII weight corruption: applies the plan's bit flips to the stored
// weight on construction and restores them on destruction (XOR flips are
// involutive). Keeps a reference to the engine — keep it alive.
class WeightCorruption {
 public:
  WeightCorruption(model::InferenceModel& m, const FaultPlan& plan);
  ~WeightCorruption();

  WeightCorruption(const WeightCorruption&) = delete;
  WeightCorruption& operator=(const WeightCorruption&) = delete;

  float old_value() const { return old_value_; }
  float new_value() const { return new_value_; }

 private:
  model::InferenceModel& model_;
  FaultPlan plan_;
  float old_value_ = 0.0f;
  float new_value_ = 0.0f;
};

}  // namespace llmfi::core
