#pragma once
// Online SDC detection via activation monitoring (Dr.DNA / Ranger-style
// detection without correction): a LinearHook that *observes* every
// linear output and raises a flag when values leave a profiled envelope
// or go non-finite. The ablation bench measures detection coverage
// (fraction of SDC trials flagged) and the false-positive rate on
// fault-free runs — the trade-off an HPC operator cares about.

#include "core/mitigation.h"

namespace llmfi::core {

class ActivationDetector : public nn::LinearHook {
 public:
  // `profile` bounds come from profile_activations(); `next` (optional)
  // is invoked first so an injector upstream still fires.
  explicit ActivationDetector(ActivationProfile profile,
                              nn::LinearHook* next = nullptr);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;

  bool triggered() const { return triggered_; }
  // The first layer that tripped the detector (valid when triggered()).
  const nn::LinearId& trip_site() const { return trip_site_; }
  int trip_pass() const { return trip_pass_; }
  void reset();
  void set_next(nn::LinearHook* next) { next_ = next; }

 private:
  ActivationProfile profile_;
  nn::LinearHook* next_;
  bool triggered_ = false;
  nn::LinearId trip_site_;
  int trip_pass_ = -1;
};

}  // namespace llmfi::core
