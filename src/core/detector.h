#pragma once
// Online SDC detection: LinearHooks that *observe* every linear output
// and raise a latched flag when something looks corrupted. Two schemes,
// composable through DetectorStack and polled by the generation-level
// recovery loop (gen::GenerationConfig::detector):
//
//  * ActivationDetector (Dr.DNA / Ranger-style): trips when any output
//    value leaves a profiled per-layer-kind envelope or goes non-finite.
//    Cheap, but blind to flips that stay inside the envelope.
//
//  * ChecksumDetector (ReaLM-style statistical ABFT): verifies each GEMM
//    y = x·Wᵀ against a precomputed column checksum s[i] = Σ_o W[o][i].
//    For every output row, Σ_o y[r][o] must equal dot(x_r, s) up to a
//    tolerance calibrated from fault-free runs (reduced-precision
//    rounding makes the residual nonzero even without faults — hence
//    "statistical" ABFT). Catches low-magnitude flips range detection
//    misses; costs one extra dot product per row.
//
// The ablation benches measure the coverage / false-positive / overhead
// trade-off an HPC operator cares about.

#include "core/mitigation.h"

namespace llmfi::core {

class ActivationDetector : public nn::DetectorHook {
 public:
  // `profile` bounds come from profile_activations(); `next` (optional)
  // is invoked first so an injector upstream still fires.
  explicit ActivationDetector(ActivationProfile profile,
                              nn::LinearHook* next = nullptr);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;

  bool triggered() const override { return triggered_; }
  // The first layer that tripped the detector (valid when triggered()).
  const nn::LinearId& trip_site() const override { return trip_site_; }
  int trip_pass() const override { return trip_pass_; }
  void reset() override;
  std::string_view name() const override { return "range"; }
  void on_install() override {
    reset();
    if (next_ != nullptr) next_->on_install();
  }
  void set_next(nn::LinearHook* next) { next_ = next; }

 private:
  ActivationProfile profile_;
  nn::LinearHook* next_;
  bool triggered_ = false;
  nn::LinearId trip_site_;
  int trip_pass_ = -1;
};

// Per-layer column checksums plus per-kind residual tolerances, both
// collected fault-free. Built once per campaign (serially) and shared
// read-only across worker replicas — LinearId-keyed, so it is valid for
// any clone() of the profiled engine.
struct ChecksumProfile {
  std::map<nn::LinearId, std::vector<float>> col_sum;
  // layer kind -> max clean |Σy − x·s| residual, inflated by margin.
  std::map<nn::LayerKind, float> tolerance;

  bool empty() const { return col_sum.empty(); }
};

// Precomputes column checksums for every FI-eligible linear layer and
// calibrates per-kind tolerances by running `prompts` fault-free and
// recording the maximum checksum residual, inflated by `margin`. Layer
// kinds never exercised by the prompts get an infinite tolerance.
ChecksumProfile profile_checksums(model::InferenceModel& engine,
                                  const tok::Vocab& vocab,
                                  const std::vector<std::string>& prompts,
                                  float margin = 4.0f);

class ChecksumDetector : public nn::DetectorHook {
 public:
  // Keeps a reference to `profile` — it must outlive the detector (the
  // campaign's DetectionContext owns it). `next` is invoked first.
  explicit ChecksumDetector(const ChecksumProfile& profile,
                            nn::LinearHook* next = nullptr);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;
  void on_linear(const nn::LinearId& id, const tn::Tensor& x,
                 const nn::WeightMatrix& w, tn::Tensor& y, int pass_index,
                 int row_offset) override;

  bool triggered() const override { return triggered_; }
  const nn::LinearId& trip_site() const override { return trip_site_; }
  int trip_pass() const override { return trip_pass_; }
  void reset() override;
  std::string_view name() const override { return "checksum"; }
  void on_install() override {
    reset();
    if (next_ != nullptr) next_->on_install();
  }
  void set_next(nn::LinearHook* next) { next_ = next; }

 private:
  const ChecksumProfile& profile_;
  nn::LinearHook* next_;
  bool triggered_ = false;
  nn::LinearId trip_site_;
  int trip_pass_ = -1;
};

// Composes several detectors behind one DetectorHook: forwards each
// linear event to `next` (the injector) first, then to every child, and
// latches the first child that trips. Children must be constructed with
// next = nullptr — the stack owns the forwarding order.
class DetectorStack : public nn::DetectorHook {
 public:
  explicit DetectorStack(std::vector<nn::DetectorHook*> detectors,
                         nn::LinearHook* next = nullptr);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;
  void on_linear(const nn::LinearId& id, const tn::Tensor& x,
                 const nn::WeightMatrix& w, tn::Tensor& y, int pass_index,
                 int row_offset) override;

  bool triggered() const override { return triggered_; }
  const nn::LinearId& trip_site() const override { return trip_site_; }
  int trip_pass() const override { return trip_pass_; }
  void reset() override;
  // Name of the child that tripped first, or "stack" while clean.
  std::string_view name() const override { return tripped_name_; }
  void on_install() override;
  void set_next(nn::LinearHook* next) { next_ = next; }

 private:
  void latch();

  std::vector<nn::DetectorHook*> detectors_;
  nn::LinearHook* next_;
  bool triggered_ = false;
  nn::LinearId trip_site_;
  int trip_pass_ = -1;
  std::string_view tripped_name_ = "stack";
};

}  // namespace llmfi::core
