#include "core/detector.h"

#include <cmath>
#include <limits>

#include "obs/recorder.h"

namespace llmfi::core {

namespace {

// First-trip flight-recorder event, shared by every detector scheme.
// Observation-only: fires after triggered_ is latched and reads nothing
// back, so detection verdicts are identical with the recorder on/off.
void record_trip(const nn::LinearId& site, int pass_index) {
  obs::record_event(obs::RecType::DetectorTrip, pass_index,
                    static_cast<std::int64_t>(site.kind), site.block);
}

// Checksum residual of one output row: |Σ_o y[r][o] − dot(x_r, s)|.
// y = x·Wᵀ means Σ_o y[r][o] = Σ_i x[r][i]·(Σ_o W[o][i]) = dot(x_r, s)
// up to activation rounding and accumulation-order differences — the
// residual a clean run leaves behind. Accumulated in double so the
// tolerance calibration and the online check agree bit-for-bit.
double checksum_residual(std::span<const float> x_row,
                         std::span<const float> y_row,
                         std::span<const float> col_sum) {
  double sum_y = 0.0;
  for (float v : y_row) sum_y += v;
  double expect = 0.0;
  for (size_t i = 0; i < col_sum.size(); ++i) {
    expect += static_cast<double>(x_row[i]) * col_sum[i];
  }
  return std::fabs(sum_y - expect);
}

float kind_tolerance(const ChecksumProfile& profile, nn::LayerKind kind) {
  const auto it = profile.tolerance.find(kind);
  return it != profile.tolerance.end()
             ? it->second
             : std::numeric_limits<float>::infinity();
}

}  // namespace

ActivationDetector::ActivationDetector(ActivationProfile profile,
                                       nn::LinearHook* next)
    : profile_(std::move(profile)), next_(next) {}

void ActivationDetector::on_linear_output(const nn::LinearId& id,
                                          tn::Tensor& y, int pass_index,
                                          int row_offset) {
  if (next_ != nullptr) {
    next_->on_linear_output(id, y, pass_index, row_offset);
  }
  if (triggered_) return;  // first trip is enough
  const auto it = profile_.bound.find(id.kind);
  const float bound = (it != profile_.bound.end())
                          ? it->second
                          : std::numeric_limits<float>::infinity();
  for (float v : y.flat()) {
    if (!std::isfinite(v) || std::fabs(v) > bound) {
      triggered_ = true;
      trip_site_ = id;
      trip_pass_ = pass_index;
      record_trip(id, pass_index);
      return;
    }
  }
}

void ActivationDetector::reset() {
  triggered_ = false;
  trip_pass_ = -1;
  trip_site_ = {};
}

ChecksumProfile profile_checksums(model::InferenceModel& engine,
                                  const tok::Vocab& vocab,
                                  const std::vector<std::string>& prompts,
                                  float margin) {
  ChecksumProfile profile;
  for (const auto& ref : engine.linear_layers()) {
    const tn::Tensor& w = ref.weights->values();
    std::vector<float> sums(static_cast<size_t>(w.cols()), 0.0f);
    std::vector<double> acc(static_cast<size_t>(w.cols()), 0.0);
    for (tn::Index r = 0; r < w.rows(); ++r) {
      auto row = w.row(r);
      for (tn::Index c = 0; c < w.cols(); ++c) {
        acc[static_cast<size_t>(c)] += row[c];
      }
    }
    for (size_t c = 0; c < sums.size(); ++c) {
      sums[c] = static_cast<float>(acc[c]);
    }
    profile.col_sum[ref.id] = std::move(sums);
  }

  // Calibrate tolerances: run the prompts clean and record the worst
  // residual per layer kind, then inflate by margin.
  class ResidualProbe : public nn::LinearHook {
   public:
    explicit ResidualProbe(ChecksumProfile& p) : profile_(p) {}
    void on_linear_output(const nn::LinearId&, tn::Tensor&, int,
                          int) override {}
    void on_linear(const nn::LinearId& id, const tn::Tensor& x,
                   const nn::WeightMatrix&, tn::Tensor& y, int,
                   int) override {
      const auto it = profile_.col_sum.find(id);
      if (it == profile_.col_sum.end()) return;
      float& tol = profile_.tolerance[id.kind];
      for (tn::Index r = 0; r < y.rows(); ++r) {
        const double resid = checksum_residual(x.row(r), y.row(r), it->second);
        tol = std::max(tol, static_cast<float>(resid));
      }
    }

   private:
    ChecksumProfile& profile_;
  };

  ResidualProbe probe(profile);
  nn::LinearHook* previous = engine.linear_hook();
  engine.set_linear_hook(&probe);
  for (const auto& prompt : prompts) {
    std::vector<tok::TokenId> ids = {vocab.bos()};
    const auto body = vocab.encode(prompt);
    ids.insert(ids.end(), body.begin(), body.end());
    auto cache = engine.make_cache();
    (void)engine.forward(ids, cache, /*pass_index=*/0);
  }
  engine.set_linear_hook(previous);
  for (auto& [kind, tol] : profile.tolerance) {
    // Small absolute floor so a perfectly-exact calibration run (tiny
    // models in fp32) does not produce a zero tolerance that trips on
    // the first accumulation-order wobble.
    tol = margin * std::max(tol, 1e-6f);
  }
  return profile;
}

ChecksumDetector::ChecksumDetector(const ChecksumProfile& profile,
                                   nn::LinearHook* next)
    : profile_(profile), next_(next) {}

void ChecksumDetector::on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                                        int pass_index, int row_offset) {
  // Without the GEMM operands there is nothing to verify — just keep the
  // chain alive.
  if (next_ != nullptr) {
    next_->on_linear_output(id, y, pass_index, row_offset);
  }
}

void ChecksumDetector::on_linear(const nn::LinearId& id, const tn::Tensor& x,
                                 const nn::WeightMatrix& w, tn::Tensor& y,
                                 int pass_index, int row_offset) {
  // Let the fault land first, then verify the corrupted tensor.
  if (next_ != nullptr) {
    next_->on_linear(id, x, w, y, pass_index, row_offset);
  }
  if (triggered_) return;
  const auto it = profile_.col_sum.find(id);
  if (it == profile_.col_sum.end()) return;
  const float tol = kind_tolerance(profile_, id.kind);
  for (tn::Index r = 0; r < y.rows(); ++r) {
    const double resid = checksum_residual(x.row(r), y.row(r), it->second);
    // NaN residual (non-finite y) must trip: written as !(resid <= tol).
    if (!(resid <= tol)) {
      triggered_ = true;
      trip_site_ = id;
      trip_pass_ = pass_index;
      record_trip(id, pass_index);
      return;
    }
  }
}

void ChecksumDetector::reset() {
  triggered_ = false;
  trip_pass_ = -1;
  trip_site_ = {};
}

DetectorStack::DetectorStack(std::vector<nn::DetectorHook*> detectors,
                             nn::LinearHook* next)
    : detectors_(std::move(detectors)), next_(next) {}

void DetectorStack::on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                                     int pass_index, int row_offset) {
  if (next_ != nullptr) {
    next_->on_linear_output(id, y, pass_index, row_offset);
  }
  for (auto* d : detectors_) {
    d->on_linear_output(id, y, pass_index, row_offset);
  }
  latch();
}

void DetectorStack::on_linear(const nn::LinearId& id, const tn::Tensor& x,
                              const nn::WeightMatrix& w, tn::Tensor& y,
                              int pass_index, int row_offset) {
  if (next_ != nullptr) {
    next_->on_linear(id, x, w, y, pass_index, row_offset);
  }
  for (auto* d : detectors_) {
    d->on_linear(id, x, w, y, pass_index, row_offset);
  }
  latch();
}

void DetectorStack::latch() {
  if (triggered_) return;
  for (auto* d : detectors_) {
    if (d->triggered()) {
      triggered_ = true;
      trip_site_ = d->trip_site();
      trip_pass_ = d->trip_pass();
      tripped_name_ = d->name();
      return;
    }
  }
}

void DetectorStack::reset() {
  triggered_ = false;
  trip_pass_ = -1;
  trip_site_ = {};
  tripped_name_ = "stack";
  for (auto* d : detectors_) d->reset();
}

void DetectorStack::on_install() {
  reset();
  if (next_ != nullptr) next_->on_install();
}

}  // namespace llmfi::core
