#include "core/detector.h"

#include <cmath>
#include <limits>

namespace llmfi::core {

ActivationDetector::ActivationDetector(ActivationProfile profile,
                                       nn::LinearHook* next)
    : profile_(std::move(profile)), next_(next) {}

void ActivationDetector::on_linear_output(const nn::LinearId& id,
                                          tn::Tensor& y, int pass_index,
                                          int row_offset) {
  if (next_ != nullptr) {
    next_->on_linear_output(id, y, pass_index, row_offset);
  }
  if (triggered_) return;  // first trip is enough
  const auto it = profile_.bound.find(id.kind);
  const float bound = (it != profile_.bound.end())
                          ? it->second
                          : std::numeric_limits<float>::infinity();
  for (float v : y.flat()) {
    if (!std::isfinite(v) || std::fabs(v) > bound) {
      triggered_ = true;
      trip_site_ = id;
      trip_pass_ = pass_index;
      return;
    }
  }
}

void ActivationDetector::reset() {
  triggered_ = false;
  trip_pass_ = -1;
  trip_site_ = {};
}

}  // namespace llmfi::core
