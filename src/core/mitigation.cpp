#include "core/mitigation.h"

#include <algorithm>
#include <cmath>

namespace llmfi::core {

ActivationProfile profile_activations(
    model::InferenceModel& engine, const tok::Vocab& vocab,
    const std::vector<std::string>& prompts, float margin) {
  ActivationProfile profile;
  engine.set_tracer([&profile](const nn::LinearId& id, const tn::Tensor& y) {
    float& bound = profile.bound[id.kind];
    for (float v : y.flat()) {
      if (std::isfinite(v)) bound = std::max(bound, std::fabs(v));
    }
  });
  for (const auto& prompt : prompts) {
    std::vector<tok::TokenId> ids = {vocab.bos()};
    const auto body = vocab.encode(prompt);
    ids.insert(ids.end(), body.begin(), body.end());
    auto cache = engine.make_cache();
    (void)engine.forward(ids, cache, /*pass_index=*/0);
  }
  engine.set_tracer(nullptr);
  for (auto& [kind, bound] : profile.bound) bound *= margin;
  return profile;
}

RangeRestrictionHook::RangeRestrictionHook(ActivationProfile profile,
                                           nn::LinearHook* next)
    : profile_(std::move(profile)), next_(next) {}

void RangeRestrictionHook::on_linear_output(const nn::LinearId& id,
                                            tn::Tensor& y, int pass_index,
                                            int row_offset) {
  // Let the fault land first, then restrict — the restriction must see
  // the corrupted tensor, just like it would on real hardware.
  if (next_ != nullptr) {
    next_->on_linear_output(id, y, pass_index, row_offset);
  }
  const auto it = profile_.bound.find(id.kind);
  if (it == profile_.bound.end()) return;
  const float bound = it->second;
  for (float& v : y.flat()) {
    if (!std::isfinite(v)) {
      v = 0.0f;
      ++corrections_;
    } else if (v > bound) {
      v = bound;
      ++corrections_;
    } else if (v < -bound) {
      v = -bound;
      ++corrections_;
    }
  }
}

WeightScreen::WeightScreen(model::InferenceModel& engine) : engine_(engine) {
  for (auto& ref : engine.linear_layers()) {
    float mx = 0.0f;
    for (float v : ref.weights->values().flat()) {
      if (std::isfinite(v)) mx = std::max(mx, std::fabs(v));
    }
    profiled_max_.push_back(mx);
  }
}

std::int64_t WeightScreen::scan(float bound_multiple) const {
  std::int64_t suspicious = 0;
  auto layers = engine_.linear_layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const float bound = profiled_max_[l] * bound_multiple;
    for (float v : layers[l].weights->values().flat()) {
      if (!std::isfinite(v) || std::fabs(v) > bound) ++suspicious;
    }
  }
  return suspicious;
}

}  // namespace llmfi::core
