#pragma once
// Low-cost fault-mitigation techniques, implementing the direction the
// paper's conclusions point at ("future work could focus on developing
// inference algorithms that reduce fault propagation, i.e. fault
// isolation"). Two classic schemes, both evaluated by ablation benches:
//
//  * Activation range restriction (Ranger / Chen et al. DSN'21 style):
//    a LinearHook that clamps every linear output into a per-layer-kind
//    bound learned from fault-free profiling runs. A bit flip that
//    produces 1e38 is clipped back into the profiled envelope before it
//    can propagate.
//
//  * Weight range screening: a one-shot scan that detects stored
//    weights outside a profiled bound (the memory-fault signature) —
//    the software analog of a background scrubber.

#include <map>
#include <memory>

#include "model/transformer.h"
#include "nn/hooks.h"

namespace llmfi::core {

// Per-layer-kind activation envelope collected from clean runs.
struct ActivationProfile {
  // layer kind -> max |activation| observed, with safety margin applied.
  std::map<nn::LayerKind, float> bound;

  bool empty() const { return bound.empty(); }
};

// Runs the given prompts through the engine fault-free and records the
// maximum absolute activation per layer kind, inflated by `margin`
// (e.g. 2.0 doubles the observed bound so natural out-of-distribution
// inputs are not clipped).
ActivationProfile profile_activations(
    model::InferenceModel& engine, const tok::Vocab& vocab,
    const std::vector<std::string>& prompts, float margin = 2.0f);

// A LinearHook that clamps outputs into the profiled envelope and
// replaces non-finite values with 0 — the paper's "fault isolation".
// Chain-able: forwards to `next` (e.g. the fault injector) FIRST, so the
// restriction acts on the corrupted tensor exactly as it would on
// corrupted hardware output.
class RangeRestrictionHook : public nn::LinearHook {
 public:
  RangeRestrictionHook(ActivationProfile profile,
                       nn::LinearHook* next = nullptr);

  void on_linear_output(const nn::LinearId& id, tn::Tensor& y,
                        int pass_index, int row_offset) override;

  // Number of elements clipped/zeroed since construction or reset.
  std::int64_t corrections() const { return corrections_; }
  void reset_counters() { corrections_ = 0; }
  void on_install() override {
    reset_counters();
    if (next_ != nullptr) next_->on_install();
  }
  void set_next(nn::LinearHook* next) { next_ = next; }

 private:
  ActivationProfile profile_;
  nn::LinearHook* next_;
  std::int64_t corrections_ = 0;
};

// Scans every FI-eligible weight matrix for elements whose magnitude
// exceeds `bound_multiple` times the matrix's own max-|w| profile taken
// at construction. Returns the number of suspicious weights — nonzero
// while a WeightCorruption with an exponent-MSB flip is active.
class WeightScreen {
 public:
  explicit WeightScreen(model::InferenceModel& engine);

  // Re-scan; counts weights outside bound_multiple * profiled max.
  std::int64_t scan(float bound_multiple = 4.0f) const;

 private:
  model::InferenceModel& engine_;
  std::vector<float> profiled_max_;  // per linear layer
};

}  // namespace llmfi::core
