#include "core/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "shard/parallel_linear.h"

namespace llmfi::core {

int FaultPlan::highest_bit() const {
  int hi = -1;
  for (int b : bits) hi = std::max(hi, b);
  return hi;
}

FaultPlan sample_fault(FaultModel model, model::InferenceModel& m,
                       const SamplerScope& scope, num::Rng& rng) {
  if (is_kv_fault(model)) {
    // KV faults target a cache plane, not a weight matrix. The sites
    // are the per-block K and V planes, labeled with the block's
    // KProj/VProj ids so site-keyed metrics aggregate naturally;
    // layer_index stays -1 (there is no linear_layers entry to index).
    std::vector<nn::LinearId> sites;
    for (int b = 0; b < m.config().n_layers; ++b) {
      for (auto kind : {nn::LayerKind::KProj, nn::LayerKind::VProj}) {
        const nn::LinearId id{b, kind, -1};
        if (!scope.layer_filter || scope.layer_filter(id)) {
          sites.push_back(id);
        }
      }
    }
    if (sites.empty()) {
      throw std::invalid_argument("sample_fault: no eligible KV planes");
    }
    FaultPlan plan;
    plan.model = model;
    plan.layer = sites[rng.uniform_u64(sites.size())];
    plan.layer_index = -1;
    const int width = num::dtype_info(m.precision().act_dtype).total_bits;
    plan.bits.push_back(static_cast<int>(
        rng.uniform_u64(static_cast<std::uint64_t>(width))));
    // Pass >= 1: the flip lands at the start of a decode pass, once the
    // prefill rows are cached. The victim (position, dim) resolves
    // against the live cache length at fire time via row_frac/out_col.
    plan.pass_index = 1 + static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(std::max(1, scope.max_passes - 1))));
    plan.row_frac = rng.uniform();
    plan.out_col = static_cast<tn::Index>(rng.uniform_u64(
        static_cast<std::uint64_t>(m.config().d_model)));
    return plan;
  }

  auto layers = m.linear_layers();
  std::vector<int> eligible;
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    const auto& id = layers[static_cast<size_t>(i)].id;
    if (is_tp_fault(model)) {
      // Only the row-parallel products retain partial sums: the
      // attention-output projection and the dense MLP down projection
      // (expert MLPs stay replicated — see project_tp).
      if (id.kind != nn::LayerKind::OProj &&
          id.kind != nn::LayerKind::DownProj) {
        continue;
      }
    }
    if (!scope.layer_filter || scope.layer_filter(id)) eligible.push_back(i);
  }
  if (eligible.empty()) {
    throw std::invalid_argument("sample_fault: no eligible layers");
  }

  FaultPlan plan;
  plan.model = model;
  plan.layer_index = eligible[rng.uniform_u64(eligible.size())];
  const auto& ref = layers[static_cast<size_t>(plan.layer_index)];
  plan.layer = ref.id;

  const int n_bits = fault_bit_count(model);
  // Memory faults flip stored weight bits (storage width incl. quantized
  // payload); computational faults flip activation bits (activation
  // dtype width); tensor-parallel faults flip partial-sum bits, which
  // are fp32 register state regardless of the activation dtype (the
  // rounding happens after the reduction completes).
  const int width =
      is_memory_fault(model) ? ref.weights->storage_bits()
      : is_tp_fault(model)
          ? 32
          : num::dtype_info(m.precision().act_dtype).total_bits;
  while (static_cast<int>(plan.bits.size()) < n_bits) {
    const int b = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(width)));
    if (std::find(plan.bits.begin(), plan.bits.end(), b) == plan.bits.end()) {
      plan.bits.push_back(b);
    }
  }

  if (is_memory_fault(model)) {
    plan.weight_row = static_cast<tn::Index>(
        rng.uniform_u64(static_cast<std::uint64_t>(ref.weights->rows())));
    plan.weight_col = static_cast<tn::Index>(
        rng.uniform_u64(static_cast<std::uint64_t>(ref.weights->cols())));
  } else {
    plan.pass_index = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(std::max(1, scope.max_passes))));
    plan.row_frac = rng.uniform();
    plan.out_col = static_cast<tn::Index>(
        rng.uniform_u64(static_cast<std::uint64_t>(ref.weights->rows())));
    if (is_tp_fault(model)) {
      const int segments =
          shard::RowParallelLinear::segment_count(ref.weights->cols());
      plan.segment =
          static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(
              std::max(1, segments))));
      if (model == FaultModel::TpReduce) {
        int levels = 0;
        for (int stride = 1; stride < segments; stride *= 2) ++levels;
        plan.reduce_level =
            static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(
                std::max(1, levels))));
      }
    }
  }
  return plan;
}

}  // namespace llmfi::core
