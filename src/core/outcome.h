#pragma once
// Outcome taxonomy of one FI trial (paper §3.2 & Fig 8): Masked vs SDC,
// with SDCs split into *subtly wrong* (plausible but incorrect content)
// and *distorted* (repeated/meaningless tokens, runaway generation,
// non-finite logits).

#include <span>
#include <string>

#include "tokenizer/vocab.h"

namespace llmfi::core {

enum class OutcomeClass {
  Masked,
  SdcSubtle,
  SdcDistorted,
  // Online detection (checksum/range DetectorStack) flagged the trial and
  // the recovery policy restored the fault-free output...
  DetectedRecovered,
  // ...or failed to: flagged, retries exhausted (or recovery disabled by
  // policy), output still differs from the fault-free run.
  DetectedUnrecovered,
};

std::string_view outcome_name(OutcomeClass c);

struct DistortionSignals {
  bool nonfinite_logits = false;
  bool runaway_length = false;  // hit the token budget while baseline ended
  bool empty_output = false;    // baseline produced text, faulty run none
  bool long_repeat = false;     // >= 5 consecutive identical tokens
  bool ngram_loop = false;      // short cycle covering most of the output

  bool any() const {
    return nonfinite_logits || runaway_length || empty_output ||
           long_repeat || ngram_loop;
  }
};

// Inspects a generated token stream for the paper's "distorted output"
// symptoms. `baseline_ended` / `baseline_empty` describe the fault-free
// run on the same input, so ordinary long outputs are not misflagged.
DistortionSignals analyze_distortion(std::span<const tok::TokenId> tokens,
                                     bool nonfinite_logits,
                                     bool hit_max_tokens, bool baseline_ended,
                                     bool baseline_empty);

// Direct-answer tasks (multiple-choice, math): Masked iff the final
// answer matches the reference (paper's definition).
OutcomeClass classify_direct(bool answer_correct,
                             const DistortionSignals& signals);

// Open-ended generative tasks: Masked iff the output text equals the
// fault-free output.
OutcomeClass classify_generative(const std::string& output,
                                 const std::string& baseline_output,
                                 const DistortionSignals& signals);

}  // namespace llmfi::core
