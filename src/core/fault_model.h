#pragma once
// The study's fault models (paper §3.1):
//   1bit-comp — single-bit flip in a linear layer's output activation,
//               at one random forward pass (transient ALU fault),
//   2bits-comp — double-bit flip, same site,
//   2bits-mem — double-bit flip in one stored weight, persisting for the
//               whole inference (the ECC-uncorrectable memory fault).

#include <string_view>

namespace llmfi::core {

enum class FaultModel {
  Comp1Bit,
  Comp2Bit,
  Mem2Bit,
};

constexpr bool is_memory_fault(FaultModel m) {
  return m == FaultModel::Mem2Bit;
}

constexpr int fault_bit_count(FaultModel m) {
  return m == FaultModel::Comp1Bit ? 1 : 2;
}

std::string_view fault_model_name(FaultModel m);
FaultModel parse_fault_model(std::string_view name);

}  // namespace llmfi::core
