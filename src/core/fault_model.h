#pragma once
// The study's fault models (paper §3.1):
//   1bit-comp — single-bit flip in a linear layer's output activation,
//               at one random forward pass (transient ALU fault),
//   2bits-comp — double-bit flip, same site,
//   2bits-mem — double-bit flip in one stored weight, persisting for the
//               whole inference (the ECC-uncorrectable memory fault).
// Plus one model beyond the paper's scope (motivated by the KV-resident
// soft-error findings in PAPERS.md):
//   kv-bit   — single-bit flip in one already-cached K/V element at a
//              sampled (block, position, dim), landing at the start of a
//              sampled decode pass and persisting for the rest of the
//              sequence: every later pass attends over the flipped row.
// And the tensor-parallel pair (DESIGN.md §14): production serving
// shards the attention-output / MLP-down products into per-shard
// partial sums folded by a reduction — two new places for a transient
// flip to land that single-device models cannot express:
//   tp-partial — single-bit flip in one segment's partial sum (fp32
//                register state) after the partial GEMMs, before any
//                reduction: the corruption rides one shard's
//                contribution through the whole fold.
//   tp-reduce  — single-bit flip in a surviving node after one tree
//                level of the reduction: the corruption enters midway,
//                skipping the earlier folds.

#include <string_view>

namespace llmfi::core {

enum class FaultModel {
  Comp1Bit,
  Comp2Bit,
  Mem2Bit,
  KvBit,
  TpPartial,
  TpReduce,
};

constexpr bool is_memory_fault(FaultModel m) {
  return m == FaultModel::Mem2Bit;
}

// KV faults are their own class: transient in origin (one flip at one
// pass, like comp faults) but persistent in effect (the corrupted state
// is re-read every later pass, like mem faults). Recovery must flush
// and refill the cache, not recompute the pass.
constexpr bool is_kv_fault(FaultModel m) { return m == FaultModel::KvBit; }

// Tensor-parallel faults are transient like comp faults (one flip at
// one pass) but land in the pre-rounding fp32 partial/reduction state
// of the row-parallel products rather than in a layer's rounded output.
// Recovery therefore composes exactly like comp: recompute the pass.
constexpr bool is_tp_fault(FaultModel m) {
  return m == FaultModel::TpPartial || m == FaultModel::TpReduce;
}

constexpr int fault_bit_count(FaultModel m) {
  return m == FaultModel::Comp1Bit || m == FaultModel::KvBit || is_tp_fault(m)
             ? 1
             : 2;
}

std::string_view fault_model_name(FaultModel m);
FaultModel parse_fault_model(std::string_view name);

}  // namespace llmfi::core
