#pragma once
// Quantized matmul: y = x @ W^T where W stays in its GPTQ-style group
// storage (int8/int4 payloads + fp16-rounded per-group scales). The
// weight is consumed in integer form — no dequantized fp32 matrix is
// materialized — mirroring real W8A16/W4A16 serving kernels where the
// dequantization happens inside the dot product, per group:
//
//   y[t, o] = sum_g scale(o, g) * (sum_{c in g} x[t, c] * payload(o, c))
//
// Fault semantics fall out naturally: a payload-bit flip lands in the
// integer operand the kernel reads (bounded by scale * 2^bits, the Fig
// 17 / Observation #8 mechanism), and a scale-bit flip perturbs exactly
// one group's multiplier. The per-group factored reduction differs from
// dequantize-then-GEMM by bounded rounding drift; the "fast ≡ reference"
// gate for this path compares against matmul_bt_reference on
// QuantizedMatrix::dequantize() (see tests/test_quant.cpp).

#include "quant/quantized_matrix.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace llmfi::quant {

// y[m, rows] = x[m, cols] @ Q^T at the given kernel tier. Reference is
// the scalar grouped loop; Portable/Avx2 vectorize the in-group partial
// dot (the AVX2 path widens 8 int8 payloads to fp32 lanes per FMA).
// Each tier has one fixed reduction order per output element.
tn::Tensor qmatmul_bt(const tn::Tensor& x, const QuantizedMatrix& q,
                      tn::KernelTier tier);

}  // namespace llmfi::quant
