#include "quant/quantized_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "numerics/bitflip.h"
#include "numerics/half.h"

namespace llmfi::quant {

QuantizedMatrix::QuantizedMatrix(const tn::Tensor& w, num::DType dtype,
                                 int group_size)
    : dtype_(dtype),
      rows_(w.rows()),
      cols_(w.cols()),
      group_size_(group_size) {
  if (!num::is_quantized_dtype(dtype)) {
    throw std::invalid_argument("QuantizedMatrix requires I8 or I4");
  }
  if (group_size <= 0) throw std::invalid_argument("group_size must be > 0");
  qmax_ = (dtype == num::DType::I8) ? 127 : 7;
  groups_per_row_ = (cols_ + group_size_ - 1) / group_size_;
  payload_.resize(static_cast<size_t>(rows_ * cols_));
  scales_.resize(static_cast<size_t>(rows_ * groups_per_row_));

  for (tn::Index r = 0; r < rows_; ++r) {
    for (tn::Index g = 0; g < groups_per_row_; ++g) {
      const tn::Index c0 = g * group_size_;
      const tn::Index c1 = std::min(cols_, c0 + group_size_);
      float max_abs = 0.0f;
      for (tn::Index c = c0; c < c1; ++c) {
        max_abs = std::max(max_abs, std::fabs(w.at(r, c)));
      }
      // Scale stored in fp16; avoid a zero scale so dequant stays exact
      // for all-zero groups.
      float s = (max_abs > 0.0f) ? max_abs / static_cast<float>(qmax_)
                                 : 1.0f;
      s = num::round_to_f16(s);
      if (s <= 0.0f) s = num::round_to_f16(6.1e-5f);  // smallest normal fp16
      scales_[static_cast<size_t>(r * groups_per_row_ + g)] = s;
      for (tn::Index c = c0; c < c1; ++c) {
        const float q = std::round(w.at(r, c) / s);
        const auto clamped = static_cast<std::int32_t>(
            std::clamp(q, static_cast<float>(-qmax_ - 1),
                       static_cast<float>(qmax_)));
        payload_[static_cast<size_t>(r * cols_ + c)] =
            static_cast<std::int8_t>(clamped);
      }
    }
  }
}

tn::Index QuantizedMatrix::scale_index(tn::Index r, tn::Index c) const {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return r * groups_per_row_ + c / group_size_;
}

std::int32_t QuantizedMatrix::payload(tn::Index r, tn::Index c) const {
  return payload_[static_cast<size_t>(r * cols_ + c)];
}

float QuantizedMatrix::scale(tn::Index r, tn::Index c) const {
  return scales_[static_cast<size_t>(scale_index(r, c))];
}

float QuantizedMatrix::dequant(tn::Index r, tn::Index c) const {
  return static_cast<float>(payload(r, c)) * scale(r, c);
}

float QuantizedMatrix::flip_payload_bits(tn::Index r, tn::Index c,
                                         std::span<const int> bits) {
  const int total_bits = num::dtype_info(dtype_).total_bits;
  auto& cell = payload_[static_cast<size_t>(r * cols_ + c)];
  cell = static_cast<std::int8_t>(num::flip_int_bits(cell, total_bits, bits));
  return dequant(r, c);
}

float QuantizedMatrix::flip_scale_bits(tn::Index r, tn::Index c,
                                       std::span<const int> bits) {
  auto& s = scales_[static_cast<size_t>(scale_index(r, c))];
  s = num::flip_float_bits(s, num::DType::F16, bits);
  return s;
}

tn::Tensor QuantizedMatrix::dequantize() const {
  tn::Tensor out({rows_, cols_});
  for (tn::Index r = 0; r < rows_; ++r) {
    for (tn::Index c = 0; c < cols_; ++c) {
      out.at(r, c) = dequant(r, c);
    }
  }
  return out;
}

double QuantizedMatrix::mean_abs_error(const tn::Tensor& reference) const {
  if (reference.rows() != rows_ || reference.cols() != cols_) {
    throw std::invalid_argument("mean_abs_error: shape mismatch");
  }
  double sum = 0.0;
  for (tn::Index r = 0; r < rows_; ++r) {
    for (tn::Index c = 0; c < cols_; ++c) {
      sum += std::fabs(reference.at(r, c) - dequant(r, c));
    }
  }
  return sum / static_cast<double>(rows_ * cols_);
}

}  // namespace llmfi::quant
