#include "quant/qmatmul.h"

#include <algorithm>
#include <stdexcept>

namespace llmfi::quant {

namespace {

// Scalar grouped loop: the reference reduction order for the quantized
// compute path (sequential within each group, groups folded in order).
void qgemm_bt_reference(const float* pa, tn::Index m, tn::Index k,
                        const std::int8_t* pw, const float* pscales,
                        tn::Index groups_per_row, int group_size,
                        tn::Index n, float* pc) {
  for (tn::Index i = 0; i < m; ++i) {
    const float* a = pa + i * k;
    float* c = pc + i * n;
    for (tn::Index j = 0; j < n; ++j) {
      const std::int8_t* w = pw + j * k;
      const float* scales = pscales + j * groups_per_row;
      float y = 0.0f;
      for (tn::Index g = 0; g < groups_per_row; ++g) {
        const tn::Index l0 = g * group_size;
        const tn::Index l1 = std::min(k, l0 + group_size);
        float partial = 0.0f;
        for (tn::Index l = l0; l < l1; ++l) {
          partial += a[l] * static_cast<float>(w[l]);
        }
        y += partial * scales[g];
      }
      c[j] = y;
    }
  }
}

}  // namespace

tn::Tensor qmatmul_bt(const tn::Tensor& x, const QuantizedMatrix& q,
                      tn::KernelTier tier) {
  if (x.rank() != 2) {
    throw std::invalid_argument("qmatmul_bt: x must be 2-D");
  }
  const tn::Index m = x.rows(), k = x.cols(), n = q.rows();
  if (q.cols() != k) {
    throw std::invalid_argument("qmatmul_bt: inner dim mismatch");
  }
  tn::Tensor y({m, n});
  const std::int8_t* pw = q.payloads().data();
  const float* pscales = q.scales().data();
  switch (tier) {
    case tn::KernelTier::Reference:
      qgemm_bt_reference(x.data(), m, k, pw, pscales, q.groups_per_row(),
                         q.group_size(), n, y.data());
      break;
    case tn::KernelTier::Portable:
      tn::detail::qgemm_bt_portable(x.data(), m, k, pw, pscales,
                                    q.groups_per_row(), q.group_size(), n,
                                    y.data());
      break;
    case tn::KernelTier::Avx2:
      tn::detail::qgemm_bt_avx2(x.data(), m, k, pw, pscales,
                                q.groups_per_row(), q.group_size(), n,
                                y.data());
      break;
  }
  return y;
}

}  // namespace llmfi::quant
