#pragma once
// Group-wise symmetric integer quantization of weight matrices
// (GPTQ-style storage: per-group fp16 scale + int4/int8 payloads).
//
// Fig 17 / Observation #8 hinge on this representation: a bit flip inside
// an int payload moves the weight by at most `scale * 2^(bits-1)` (a few
// quantization steps), while a flip in a bf16 exponent bit can scale a
// weight by 2^128. Both payload-bit and scale-bit faults are supported.

#include <cstdint>
#include <span>
#include <vector>

#include "numerics/dtype.h"
#include "tensor/tensor.h"

namespace llmfi::quant {

class QuantizedMatrix {
 public:
  // Quantizes fp32 weights [rows, cols] with groups of `group_size`
  // consecutive elements along the column (input) dimension. `dtype`
  // must be I8 or I4. Scales are rounded through fp16 (their storage
  // format). cols need not be a multiple of group_size.
  QuantizedMatrix(const tn::Tensor& w, num::DType dtype, int group_size);

  num::DType dtype() const { return dtype_; }
  tn::Index rows() const { return rows_; }
  tn::Index cols() const { return cols_; }
  int group_size() const { return group_size_; }
  tn::Index groups_per_row() const { return groups_per_row_; }

  // Payload of element (r, c), sign-extended (I4 range [-8, 7]).
  std::int32_t payload(tn::Index r, tn::Index c) const;
  // Dequantized value of element (r, c).
  float dequant(tn::Index r, tn::Index c) const;
  // Scale of the group containing column c of row r.
  float scale(tn::Index r, tn::Index c) const;

  // Flip bits in the payload of (r, c); XOR is an involution, so calling
  // again with the same bits restores the original (the paper's
  // flip-then-flip-back protocol, §3.2). Returns the new dequantized value.
  float flip_payload_bits(tn::Index r, tn::Index c, std::span<const int> bits);

  // Flip bits in the fp16 scale of the group containing (r, c); affects
  // every element of that group. Returns the new scale.
  float flip_scale_bits(tn::Index r, tn::Index c, std::span<const int> bits);

  // Full dequantized matrix.
  tn::Tensor dequantize() const;

  // Raw storage views for the quantized matmul kernels (quant/qmatmul.h):
  // row-major sign-extended payloads [rows, cols] and per-group scales
  // [rows, groups_per_row]. The kernels consume these directly — no fp32
  // weight copy is materialized on the quantized compute path.
  std::span<const std::int8_t> payloads() const { return payload_; }
  std::span<const float> scales() const { return scales_; }

  // Mean |w - dequant(w)| against reference weights (test/diagnostic aid).
  double mean_abs_error(const tn::Tensor& reference) const;

 private:
  tn::Index scale_index(tn::Index r, tn::Index c) const;

  num::DType dtype_;
  tn::Index rows_ = 0;
  tn::Index cols_ = 0;
  int group_size_ = 0;
  tn::Index groups_per_row_ = 0;
  int qmax_ = 0;  // 127 for I8, 7 for I4
  std::vector<std::int8_t> payload_;
  std::vector<float> scales_;  // fp16-rounded values held as fp32
};

}  // namespace llmfi::quant
