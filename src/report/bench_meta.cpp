#include "report/bench_meta.h"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>
#include <string_view>

#include "tensor/kernels.h"

namespace llmfi::report {

namespace {

// Trimmed first line of `cmd`'s stdout, or "" on any failure. Used only
// for `git rev-parse` — bench binaries run from a checkout.
std::string capture_line(const char* cmd) {
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return "";
  std::array<char, 128> buf{};
  std::string out;
  if (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    out = buf.data();
  }
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r' ||
                          out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string resolve_git_sha() {
  // CI exports the SHA directly; fall back to asking git, then give up.
  if (const char* sha = std::getenv("GITHUB_SHA");
      sha != nullptr && *sha != '\0') {
    return sha;
  }
  std::string sha = capture_line("git rev-parse HEAD 2>/dev/null");
  return sha.empty() ? "unknown" : sha;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string resolve_hostname() {
  char buf[256];
  if (::gethostname(buf, sizeof(buf)) != 0) return "unknown";
  buf[sizeof(buf) - 1] = '\0';
  return buf;
}

int env_int_or(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 1 || parsed > 1 << 20) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

BenchMetadata bench_metadata(double wall_clock_sec) {
  BenchMetadata meta;
  meta.git_sha = resolve_git_sha();
  meta.timestamp = utc_timestamp();
  meta.hostname = resolve_hostname();
  meta.threads = env_int_or("LLMFI_THREADS", 1);
  meta.batch = env_int_or("LLMFI_BATCH", 1);
  if (const char* v = std::getenv("LLMFI_PREFIX_FORK");
      v != nullptr && *v != '\0') {
    meta.prefix_fork = std::string_view(v) != "0";
  }
  meta.kernel_tier = tn::kernel_tier_name(tn::kernel_tier());
  meta.tp = env_int_or("LLMFI_TP", 1);
  // kv_pages legitimately parses to 0 (contiguous caches), which
  // env_int_or's >= 1 floor rejects — parse it directly.
  if (const char* v = std::getenv("LLMFI_KV_PAGES");
      v != nullptr && *v != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed >= 0 && parsed <= 1 << 20) {
      meta.kv_pages = static_cast<int>(parsed);
    }
  }
  meta.wall_clock_sec = wall_clock_sec;
  return meta;
}

std::string BenchMetadata::json() const {
  std::ostringstream os;
  os << "{\"git_sha\": \"" << json_escape(git_sha) << "\", "
     << "\"timestamp\": \"" << json_escape(timestamp) << "\", "
     << "\"hostname\": \"" << json_escape(hostname) << "\", "
     << "\"threads\": " << threads << ", "
     << "\"batch\": " << batch << ", "
     << "\"prefix_fork\": " << (prefix_fork ? "true" : "false") << ", "
     << "\"kernel_tier\": \"" << json_escape(kernel_tier) << "\", "
     << "\"tp\": " << tp << ", "
     << "\"kv_pages\": " << kv_pages << ", "
     << "\"wall_clock_sec\": " << wall_clock_sec << "}";
  return os.str();
}

}  // namespace llmfi::report
