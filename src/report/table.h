#pragma once
// Plain-text table/series emitters used by every bench binary to print
// the paper's figures and tables as aligned rows (and optional CSV).

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/stats.h"

namespace llmfi::report {

class Table {
 public:
  explicit Table(std::string title = "");

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  // Comma-separated dump (header first); no alignment padding.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string fmt(double v, int precision = 4);
std::string fmt_pct(double fraction, int precision = 2);  // 0.1234 -> "12.34%"
// "0.9731 [0.9644, 0.9812]"
std::string fmt_ratio(const metrics::Ratio& r, int precision = 4);
// Count over total with the percentage, e.g. "17/60 (28.33%)" — the shape
// of the detection coverage / false-positive columns. A zero denominator
// prints as "k/0 (-)".
std::string fmt_frac(long long count, long long total, int precision = 2);

}  // namespace llmfi::report
