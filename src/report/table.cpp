#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace llmfi::report {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) {
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_ratio(const metrics::Ratio& r, int precision) {
  return fmt(r.value, precision) + " [" + fmt(r.lo, precision) + ", " +
         fmt(r.hi, precision) + "]";
}

std::string fmt_frac(long long count, long long total, int precision) {
  const std::string head =
      std::to_string(count) + "/" + std::to_string(total);
  if (total <= 0) return head + " (-)";
  return head + " (" +
         fmt_pct(static_cast<double>(count) / static_cast<double>(total),
                 precision) +
         ")";
}

}  // namespace llmfi::report
