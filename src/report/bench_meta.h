#pragma once
// Provenance metadata stamped into every bench_logs/BENCH_*.json: git
// SHA, ISO-8601 UTC timestamp, hostname, the campaign-execution env
// knobs in force (threads / batch / prefix-fork), and the bench's own
// wall-clock. Makes a bench log self-describing — a number without the
// commit and knobs that produced it is not reproducible evidence.

#include <string>

namespace llmfi::report {

struct BenchMetadata {
  std::string git_sha;       // "unknown" when git/CI metadata is absent
  std::string timestamp;     // ISO-8601 UTC, e.g. "2026-08-06T12:34:56Z"
  std::string hostname;      // "unknown" when unavailable
  int threads = 1;           // LLMFI_THREADS in force (1 when unset)
  int batch = 1;             // LLMFI_BATCH in force (1 when unset)
  bool prefix_fork = true;   // LLMFI_PREFIX_FORK in force
  // Execution-surface knobs that change which code paths a number was
  // measured on, even though outputs are bit-identical across them.
  std::string kernel_tier;   // active tn::KernelTier at collection time
  int tp = 1;                // LLMFI_TP in force (1 when unset)
  int kv_pages = 0;          // LLMFI_KV_PAGES in force (0 = contiguous)
  double wall_clock_sec = 0.0;

  // The metadata block as a JSON object (no trailing newline), for
  // splicing into a hand-built bench log under a "meta" key.
  std::string json() const;
};

// Collects the metadata at call time. `wall_clock_sec` is the bench's
// own measured duration — metadata collection does not time anything.
BenchMetadata bench_metadata(double wall_clock_sec);

}  // namespace llmfi::report
