#include "shard/parallel_linear.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace llmfi::shard {

std::vector<tn::Index> column_bounds(tn::Index n, int shards) {
  if (shards < 1) shards = 1;
  std::vector<tn::Index> bounds(static_cast<size_t>(shards) + 1);
  for (int s = 0; s <= shards; ++s) {
    // Interior bounds round down to the fast-tier block width so every
    // slice keeps the 4-row block grouping of the full product.
    tn::Index b = n * s / shards;
    bounds[static_cast<size_t>(s)] = (s == 0 || s == shards) ? b : b & ~tn::Index{3};
  }
  return bounds;
}

std::vector<int> head_bounds(int n_heads, int shards) {
  if (shards < 1) shards = 1;
  std::vector<int> bounds(static_cast<size_t>(shards) + 1);
  for (int s = 0; s <= shards; ++s) {
    bounds[static_cast<size_t>(s)] = n_heads * s / shards;
  }
  return bounds;
}

tn::Tensor ColumnParallelLinear::run(ShardGroup* group, const tn::Tensor& x,
                                     const tn::Tensor& w,
                                     tn::KernelTier tier) {
  if (group == nullptr || group->size() < 2) {
    return tn::matmul_bt_tier(x, w, tier);
  }
  if (x.rank() != 2 || w.rank() != 2 || w.cols() != x.cols()) {
    throw std::invalid_argument("ColumnParallelLinear: shape mismatch");
  }
  const tn::Index m = x.rows(), k = x.cols(), n = w.rows();
  tn::Tensor y({m, n});
  const std::vector<tn::Index> bounds = column_bounds(n, group->size());
  group->run([&](int s) {
    tn::matmul_bt_cols(x.data(), m, k, w.data(), bounds[static_cast<size_t>(s)],
                       bounds[static_cast<size_t>(s) + 1], y.data(), n, tier);
  });
  return y;
}

std::vector<tn::Tensor> ColumnParallelLinear::run_fused(
    ShardGroup* group, const tn::Tensor& x, const tn::Tensor& gain, float eps,
    std::span<const tn::Tensor* const> ws, tn::KernelTier tier) {
  if (group == nullptr || group->size() < 2) {
    return tn::fused_rmsnorm_matmul_bt(x, gain, eps, ws, tier);
  }
  const tn::Index m = x.rows(), n = ws.empty() ? 0 : ws[0]->rows();
  std::vector<tn::Tensor> ys;
  std::vector<float*> cs;
  ys.reserve(ws.size());
  cs.reserve(ws.size());
  for (const tn::Tensor* w : ws) {
    if (w->rows() != n) {
      // The fused shape always projects to one width (wq/wk/wv or
      // gate/up); a mixed set would need per-weight bounds.
      throw std::invalid_argument(
          "ColumnParallelLinear: fused projections must share an output "
          "width");
    }
    ys.emplace_back(std::vector<tn::Index>{m, n});
    cs.push_back(ys.back().data());
  }
  const std::vector<tn::Index> bounds = column_bounds(n, group->size());
  group->run([&](int s) {
    tn::fused_rmsnorm_matmul_bt_cols(x, gain, eps, ws, tier,
                                     bounds[static_cast<size_t>(s)],
                                     bounds[static_cast<size_t>(s) + 1],
                                     std::span<float* const>(cs), n);
  });
  return ys;
}

namespace {

// One tree level restricted to a column range [c0, c1): fold src into
// dst elementwise, row-major. The per-element add order depends only on
// the level sequence, never on how columns are split across shards.
void fold_cols(tn::Tensor& dst, const tn::Tensor& src, tn::Index c0,
               tn::Index c1) {
  const tn::Index m = dst.rows(), n = dst.cols();
  float* d = dst.data();
  const float* s = src.data();
  for (tn::Index i = 0; i < m; ++i) {
    for (tn::Index c = c0; c < c1; ++c) d[i * n + c] += s[i * n + c];
  }
}

int reduce_levels(int segments) {
  int levels = 0;
  for (int stride = 1; stride < segments; stride *= 2) ++levels;
  return levels;
}

}  // namespace

void RowParallelLinear::reduce_tree(std::span<tn::Tensor> partials,
                                    nn::ShardHook* hook,
                                    const nn::LinearId& id, int pass_index,
                                    int row_offset) {
  const int segments = static_cast<int>(partials.size());
  const int n_levels = reduce_levels(segments);
  int level = 0;
  for (int stride = 1; stride < segments; stride *= 2, ++level) {
    for (int g = 0; g + stride < segments; g += 2 * stride) {
      fold_cols(partials[static_cast<size_t>(g)],
                partials[static_cast<size_t>(g + stride)], 0,
                partials[static_cast<size_t>(g)].cols());
    }
    if (hook != nullptr) {
      std::vector<int> survivors;
      for (int g = 0; g < segments; g += 2 * stride) survivors.push_back(g);
      hook->on_reduce_level(id, level, n_levels, partials,
                            std::span<const int>(survivors), pass_index,
                            row_offset);
    }
  }
}

tn::Tensor RowParallelLinear::run(ShardGroup* group, const tn::Tensor& x,
                                  const tn::Tensor& w, tn::KernelTier tier,
                                  nn::ShardHook* hook, const nn::LinearId& id,
                                  int pass_index, int row_offset) {
  if (x.rank() != 2 || w.rank() != 2 || w.cols() != x.cols()) {
    throw std::invalid_argument("RowParallelLinear: shape mismatch");
  }
  const tn::Index m = x.rows(), k = x.cols(), n = w.rows();
  const int segments = segment_count(k);
  const bool sharded = group != nullptr && group->size() > 1;

  // The partials live on the fixed segment grid whether or not a group
  // is attached: the serial path below *is* the oracle, and sharding
  // only reassigns which thread computes each segment.
  std::vector<tn::Tensor> partials;
  partials.reserve(static_cast<size_t>(segments));
  for (int g = 0; g < segments; ++g) {
    partials.emplace_back(std::vector<tn::Index>{m, n});
  }
  auto compute_segment = [&](int g) {
    const tn::Index k0 = segment_begin(k, g);
    const tn::Index k1 = segment_begin(k, g + 1);
    tn::matmul_bt_krange(x.data(), m, k, k0, k1, w.data(), k, n,
                         partials[static_cast<size_t>(g)].data(), n, tier);
  };
  if (sharded) {
    const int shards = group->size();
    group->run([&](int s) {
      const int g0 = segments * s / shards;
      const int g1 = segments * (s + 1) / shards;
      for (int g = g0; g < g1; ++g) compute_segment(g);
    });
  } else {
    for (int g = 0; g < segments; ++g) compute_segment(g);
  }

  if (hook != nullptr) {
    hook->on_partials(id, std::span<tn::Tensor>(partials), pass_index,
                      row_offset);
  }

  {
    obs::TraceScope span("shard_reduce", segments);
    if (hook != nullptr || !sharded) {
      // Hooked reduces run serially so every tree level is observable;
      // the fold order is the same one the sharded path uses.
      reduce_tree(std::span<tn::Tensor>(partials), hook, id, pass_index,
                  row_offset);
    } else {
      const std::vector<tn::Index> bounds = column_bounds(n, group->size());
      group->run([&](int s) {
        const tn::Index c0 = bounds[static_cast<size_t>(s)];
        const tn::Index c1 = bounds[static_cast<size_t>(s) + 1];
        for (int stride = 1; stride < segments; stride *= 2) {
          for (int g = 0; g + stride < segments; g += 2 * stride) {
            fold_cols(partials[static_cast<size_t>(g)],
                      partials[static_cast<size_t>(g + stride)], c0, c1);
          }
        }
      });
    }
  }
  return std::move(partials[0]);
}

}  // namespace llmfi::shard
