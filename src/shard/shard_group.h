#pragma once
// Persistent tensor-parallel worker pool (DESIGN.md §14).
//
// A ShardGroup of size N owns N-1 worker threads, spawned once; the
// calling thread participates as shard 0 so TP=N uses exactly N cores.
// Each run() is one collective op: every shard executes fn(shard_index)
// and run() returns after all shards finish. Dispatch is an epoch
// counter under a mutex/condvar; completion is an atomic countdown the
// driver spins on briefly before parking — a per-op barrier must cost
// microseconds, not a scheduler round-trip, because a decode pass
// dispatches dozens of collective ops per token.
//
// run() never runs concurrently with itself (the engine issues ops
// sequentially from the driver thread) and exceptions thrown by any
// shard are captured and rethrown on the caller, lowest shard first.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llmfi::shard {

class ShardGroup {
 public:
  // n_shards < 2 still builds a valid (worker-less) group; run() then
  // just calls fn(0) inline.
  explicit ShardGroup(int n_shards);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int size() const { return n_; }

  // Executes fn(s) for every shard s in [0, size()), shard 0 on the
  // calling thread, and returns once all shards complete. Rethrows the
  // lowest-numbered shard's exception if any shard threw. Not
  // reentrant.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_loop(int shard);

  int n_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // driver -> workers: new op posted
  std::condition_variable done_cv_;  // workers -> driver: op finished
  const std::function<void(int)>* op_ = nullptr;
  std::uint64_t epoch_ = 0;      // bumps once per posted op
  std::atomic<int> pending_{0};  // workers still inside the op
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace llmfi::shard
