#include "shard/shard_group.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace llmfi::shard {

namespace {

// Spin budget before the driver parks on the condition variable. The
// collective ops are tens of microseconds, so the barrier usually
// resolves within the spin window and the CV path only covers preempted
// workers.
constexpr int kSpinIters = 20000;

}  // namespace

ShardGroup::ShardGroup(int n_shards) : n_(n_shards < 1 ? 1 : n_shards) {
  errors_.resize(static_cast<size_t>(n_));
  workers_.reserve(static_cast<size_t>(n_ - 1));
  for (int s = 1; s < n_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardGroup::~ShardGroup() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardGroup::worker_loop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* op = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ > seen; });
      if (stop_) return;
      seen = epoch_;
      op = op_;
    }
    try {
      (*op)(shard);
    } catch (...) {
      // Published before the countdown's release decrement, so the
      // driver reads it safely after the barrier.
      errors_[static_cast<size_t>(shard)] = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out. Acquiring mu_ before the notify closes the
      // driver's check-then-park window: the driver evaluates its wait
      // predicate under mu_, so it either sees pending_ == 0 there or
      // is already parked when this notify fires.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

void ShardGroup::run(const std::function<void(int)>& fn) {
  if (n_ == 1) {
    fn(0);
    return;
  }
  obs::TraceScope span("shard_dispatch", n_);

  // Per-op shard imbalance (max-min wall time across shards) is the
  // load-balance health signal; timing costs two clock reads per shard,
  // so it is captured only when the metrics registry is armed.
  const bool timed = obs::metrics_enabled();
  std::vector<double> shard_us(timed ? static_cast<size_t>(n_) : 0, 0.0);
  const std::function<void(int)> op = [&](int s) {
    if (!timed) {
      fn(s);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn(s);
    const auto t1 = std::chrono::steady_clock::now();
    shard_us[static_cast<size_t>(s)] =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : errors_) e = nullptr;
    op_ = &op;
    pending_.store(n_ - 1, std::memory_order_release);
    ++epoch_;
  }
  work_cv_.notify_all();

  // Shard 0 is the caller.
  try {
    op(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  // Barrier: spin briefly for the common fast case, then park.
  if (pending_.load(std::memory_order_acquire) != 0) {
    bool done = false;
    for (int i = 0; i < kSpinIters && !done; ++i) {
      done = pending_.load(std::memory_order_acquire) == 0;
    }
    if (!done) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }

  if (timed) {
    double lo = shard_us[0], hi = shard_us[0];
    for (double v : shard_us) {
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
    obs::gauge_set("shard_imbalance_us", hi - lo);
  }

  for (int s = 0; s < n_; ++s) {
    if (errors_[static_cast<size_t>(s)]) {
      std::rethrow_exception(errors_[static_cast<size_t>(s)]);
    }
  }
}

}  // namespace llmfi::shard
