#pragma once
// Column/row-parallel linear products over a ShardGroup (DESIGN.md
// §14) — the ScaleLLM-style tensor-parallel split, specialized for the
// resilience study's one non-negotiable invariant: every TP degree
// (including "no group at all", the serial oracle) produces
// byte-identical outputs.
//
//   ColumnParallelLinear splits B^T's output columns: shard s computes
//   y[:, bounds[s]:bounds[s+1]) through the same per-tier kernel bodies
//   matmul_bt_tier runs, writing disjoint slices of one shared output
//   (the all-gather is the shared buffer). Bounds are 4-aligned so the
//   fast tiers' block grouping stays in phase with the full product.
//
//   RowParallelLinear splits the K dimension — but on a *fixed* segment
//   grid (kSegments, independent of TP degree), with the partial sums
//   folded by a deterministic binary tree. Sharding only changes which
//   thread computes a segment, never the grid or the fold order, so the
//   reduction is bit-identical regardless of worker count or timing.
//   The retained partials and the tree levels are the tp-partial /
//   tp-reduce fault-injection surface (nn::ShardHook).

#include <span>
#include <vector>

#include "nn/hooks.h"
#include "nn/layer_id.h"
#include "shard/shard_group.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace llmfi::shard {

// Even split of n output columns over `shards`, every interior bound
// rounded down to a multiple of 4 (the fast-tier block width; see
// tn::matmul_bt_cols), first bound 0, last bound n.
std::vector<tn::Index> column_bounds(tn::Index n, int shards);

// Even split of attention heads over `shards` for sharding the
// attend-per-head loop; ragged head counts spread the remainder.
std::vector<int> head_bounds(int n_heads, int shards);

class ColumnParallelLinear {
 public:
  // y = x @ w^T with the output columns computed in shard slices;
  // group == nullptr (or size 1) computes every slice on the caller.
  // Bit-identical to tn::matmul_bt_tier(x, w, tier) at any shard count.
  static tn::Tensor run(ShardGroup* group, const tn::Tensor& x,
                        const tn::Tensor& w, tn::KernelTier tier);

  // Fused RMSNorm + multi-projection variant (the block input shape,
  // norm -> wq/wk/wv or norm -> gate/up). Bit-identical to
  // tn::fused_rmsnorm_matmul_bt at any shard count.
  static std::vector<tn::Tensor> run_fused(ShardGroup* group,
                                           const tn::Tensor& x,
                                           const tn::Tensor& gain, float eps,
                                           std::span<const tn::Tensor* const> ws,
                                           tn::KernelTier tier);
};

class RowParallelLinear {
 public:
  // The fixed K-split grid. Must be >= the largest supported TP degree
  // and a power of two (the tree reduce strides through it); changing
  // it changes the oracle's bits, so it is part of the numeric contract.
  static constexpr int kSegments = 8;

  static int segment_count(tn::Index k) {
    return k < kSegments ? static_cast<int>(k < 1 ? 1 : k) : kSegments;
  }
  static tn::Index segment_begin(tn::Index k, int g) {
    return k * g / segment_count(k);
  }

  // y = x @ w^T computed as segment_count(k) K-range partials folded by
  // the fixed-order tree. `hook` (nullable) fires on_partials after the
  // partial GEMMs and on_reduce_level after each tree level; while
  // hooked the reduce runs serially on the caller so level state is
  // observable — the fold order (and therefore the bits) is unchanged.
  // `id`/`pass_index`/`row_offset` only label the hook callbacks.
  static tn::Tensor run(ShardGroup* group, const tn::Tensor& x,
                        const tn::Tensor& w, tn::KernelTier tier,
                        nn::ShardHook* hook, const nn::LinearId& id,
                        int pass_index, int row_offset);

  // The deterministic tree fold over already-computed partials, serial,
  // firing `hook` per level; leaves the result in partials[0]. Exposed
  // for the reduce-determinism tests and the tp-reduce injector spec.
  static void reduce_tree(std::span<tn::Tensor> partials, nn::ShardHook* hook,
                          const nn::LinearId& id, int pass_index,
                          int row_offset);
};

}  // namespace llmfi::shard
