// Unit tests for the tensor substrate: GEMM variants, activations,
// normalization (including its error-masking behaviour), statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numerics/rng.h"
#include "tensor/ops.h"

namespace llmfi::tn {
namespace {

Tensor random_matrix(Index r, Index c, std::uint64_t seed) {
  num::Rng rng(seed);
  Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t[5], 5.0f);  // row-major layout
}

TEST(Tensor, FromRowsValidatesCount) {
  EXPECT_NO_THROW(Tensor::from_rows(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_rows(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Ops, MatmulGolden) {
  Tensor a = Tensor::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulVariantsAgree) {
  // matmul_bt(A, B) == matmul(A, B^T) and matmul_at(A, B) == matmul(A^T, B).
  Tensor a = random_matrix(5, 7, 1);
  Tensor b = random_matrix(4, 7, 2);
  Tensor bt({7, 4});
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 7; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c1 = matmul_bt(a, b);
  Tensor c2 = matmul(a, bt);
  ASSERT_EQ(c1.shape(), c2.shape());
  for (Index i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);

  Tensor d = random_matrix(5, 6, 3);
  Tensor at({7, 5});
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 7; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor e1 = matmul_at(a, d);
  Tensor e2 = matmul(at, d);
  ASSERT_EQ(e1.shape(), e2.shape());
  for (Index i = 0; i < e1.numel(); ++i) EXPECT_NEAR(e1[i], e2[i], 1e-4);
}

TEST(Ops, MatmulZeroTimesNonFiniteIsNaN) {
  // IEEE semantics the zero-skip optimization must not break: 0 * inf
  // and 0 * NaN are NaN, so a zero activation multiplied into a
  // corrupted (non-finite) weight row still poisons the output. The skip
  // is only legal when the B row is verified all-finite.
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();

  Tensor a = Tensor::from_rows(1, 2, {0.0f, 1.0f});
  Tensor b = Tensor::from_rows(2, 2, {inf, 1.0f, 1.0f, 1.0f});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*inf + 1*1
  EXPECT_FLOAT_EQ(c.at(0, 1), 1.0f);    // 0*1 + 1*1 — finite column intact

  Tensor b2 = Tensor::from_rows(2, 2, {nan, 1.0f, 1.0f, 1.0f});
  Tensor c2 = matmul(a, b2);
  EXPECT_TRUE(std::isnan(c2.at(0, 0)));  // 0*NaN + 1*1

  // Skipping genuinely all-finite rows must still be exact: a zero
  // activation contributes exactly nothing.
  Tensor b3 = Tensor::from_rows(2, 2, {3.0f, 4.0f, 5.0f, 6.0f});
  Tensor c3 = matmul(a, b3);
  EXPECT_FLOAT_EQ(c3.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(c3.at(0, 1), 6.0f);
}

TEST(Ops, MatmulAtZeroTimesNonFiniteIsNaN) {
  // Same IEEE rule for the transposed variant (gradient accumulation
  // path): c[j,l] = sum_i a[i,j] * b[i,l] must not skip a[i,j] == 0 when
  // b's row i holds inf/NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::from_rows(2, 1, {0.0f, 1.0f});
  Tensor b = Tensor::from_rows(2, 2, {nan, 2.0f, 3.0f, 4.0f});
  Tensor c = matmul_at(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*NaN + 1*3
  // Column 1 pairs the zero with the finite b.at(0, 1) = 2; the 0*2 term
  // contributes nothing: 0*2 + 1*4 = 4.
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
}

TEST(Ops, ValueStatsStddevStableAtLargeMean) {
  // The sumsq/n - mean^2 formulation catastrophically cancels when the
  // mean dwarfs the spread — exactly the corrupted-activation regime
  // (values ~1e6 after an exponent flip) the Fig 5/6 maps summarize.
  // Welford keeps full precision.
  Tensor x = Tensor::from_rows(1, 3, {1e6f, 1e6f + 1.0f, 1e6f + 2.0f});
  const auto s = value_stats(x, 1e9f);
  EXPECT_NEAR(s.mean, 1e6 + 1.0, 1e-3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0), 1e-6);

  // And an even harsher mean where the naive formula returns garbage
  // (or NaN from a negative variance).
  Tensor y = Tensor::from_rows(1, 2, {1e8f, 1e8f + 8.0f});
  const auto sy = value_stats(y, 1e9f);
  EXPECT_NEAR(sy.stddev, 4.0, 1e-5);
  EXPECT_FALSE(std::isnan(sy.stddev));
}

TEST(Ops, MatmulShapeChecks) {
  Tensor a({2, 3}), b({4, 5});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_THROW(matmul_bt(a, b), std::invalid_argument);
  EXPECT_THROW(matmul_at(a, b), std::invalid_argument);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor x = random_matrix(4, 9, 5);
  softmax_rows_inplace(x);
  for (Index r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (float v : x.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Ops, SoftmaxPoisonedRowPropagatesNaN) {
  // IEEE/PyTorch semantics: NaN or +inf in a row poisons the whole
  // softmax output — the propagation channel for distorted outputs.
  Tensor x = Tensor::from_rows(
      1, 3, {1.0f, std::numeric_limits<float>::quiet_NaN(), 2.0f});
  softmax_rows_inplace(x);
  for (float v : x.row(0)) EXPECT_TRUE(std::isnan(v));

  Tensor inf_row = Tensor::from_rows(
      1, 3, {1.0f, std::numeric_limits<float>::infinity(), 2.0f});
  softmax_rows_inplace(inf_row);
  for (float v : inf_row.row(0)) EXPECT_TRUE(std::isnan(v));
}

TEST(Ops, RmsNormUnitGainNormalizes) {
  Tensor x = random_matrix(3, 16, 6);
  Tensor gain({16});
  gain.fill(1.0f);
  Tensor y = rmsnorm_rows(x, gain);
  for (Index r = 0; r < 3; ++r) {
    double ss = 0.0;
    for (float v : y.row(r)) ss += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(ss / 16.0), 1.0, 1e-3);
  }
}

TEST(Ops, RmsNormPropagatesNaNFromInfInput) {
  // IEEE semantics: an inf element makes ss = inf, 1/rms = 0, and
  // inf * 0 = NaN for that element while finite elements collapse to 0.
  Tensor x = Tensor::from_rows(
      1, 4, {1.0f, std::numeric_limits<float>::infinity(), 2.0f, 3.0f});
  Tensor gain({4});
  gain.fill(1.0f);
  Tensor y = rmsnorm_rows(x, gain);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_TRUE(std::isnan(y.at(0, 1)));
  EXPECT_FLOAT_EQ(y.at(0, 2), 0.0f);
}

TEST(Ops, RmsNormShrinksHugeValues) {
  // A huge-but-finite corrupted element dominates the norm, so all other
  // elements of the row shrink toward zero — the containment effect.
  Tensor x({1, 4});
  x.at(0, 0) = 1e18f;  // (1e18)^2 still fits in fp32
  x.at(0, 1) = 1.0f;
  x.at(0, 2) = -2.0f;
  x.at(0, 3) = 0.5f;
  Tensor gain({4});
  gain.fill(1.0f);
  Tensor y = rmsnorm_rows(x, gain);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-6);
  EXPECT_NEAR(y.at(0, 0), 2.0f, 0.1f);  // the spike itself caps at ~sqrt(n)
}

TEST(Ops, RmsNormSumOfSquaresOverflowZerosRow) {
  // When ss overflows fp32 (the GPU kernel behaviour), 1/rms becomes 0
  // and every finite element collapses to exactly 0.
  Tensor x({1, 4});
  x.at(0, 0) = 3e38f;
  x.at(0, 1) = 1.0f;
  Tensor gain({4});
  gain.fill(1.0f);
  Tensor y = rmsnorm_rows(x, gain);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
}

TEST(Ops, SiluGolden) {
  EXPECT_FLOAT_EQ(silu(0.0f), 0.0f);
  EXPECT_NEAR(silu(1.0f), 0.7310586f, 1e-6);
  EXPECT_NEAR(silu(-1.0f), -0.2689414f, 1e-6);
  EXPECT_NEAR(silu(20.0f), 20.0f, 1e-3);   // saturates to identity
  EXPECT_NEAR(silu(-30.0f), 0.0f, 1e-6);   // underflows to zero
}

TEST(Ops, ElementwiseAndBias) {
  Tensor a = Tensor::from_rows(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from_rows(2, 2, {10, 20, 30, 40});
  Tensor c = add(a, b);
  EXPECT_FLOAT_EQ(c.at(1, 1), 44.0f);
  mul_inplace(c, a);
  EXPECT_FLOAT_EQ(c.at(1, 1), 176.0f);
  scale_inplace(c, 0.5f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 88.0f);
  Tensor bias({2});
  bias[0] = 1.0f;
  bias[1] = -1.0f;
  add_bias_rows(c, bias);
  EXPECT_FLOAT_EQ(c.at(1, 1), 87.0f);
}

TEST(Ops, ArgmaxTreatsNaNAsGreatest) {
  // PyTorch argmax semantics over corrupted logits.
  Tensor x = Tensor::from_rows(
      1, 4, {0.5f, std::numeric_limits<float>::quiet_NaN(), 9.0f,
             std::numeric_limits<float>::quiet_NaN()});
  EXPECT_EQ(argmax_row(x, 0), 1);
}

TEST(Ops, ArgmaxAndLogsumexp) {
  Tensor x = Tensor::from_rows(2, 3, {0.1f, 5.0f, 2.0f, -1.0f, -2.0f, -0.5f});
  EXPECT_EQ(argmax_row(x, 0), 1);
  EXPECT_EQ(argmax_row(x, 1), 2);
  // logsumexp is invariant to shifting then adding back.
  const float lse = logsumexp_row(x, 0);
  EXPECT_NEAR(lse,
              std::log(std::exp(0.1) + std::exp(5.0) + std::exp(2.0)), 1e-4);
}

TEST(Ops, ValueStatsCountsExtremesAndNonFinite) {
  Tensor x = Tensor::from_rows(
      1, 5,
      {1.0f, -2.0f, 5e4f, std::numeric_limits<float>::quiet_NaN(), 0.5f});
  const auto s = value_stats(x, 1e4f);
  EXPECT_EQ(s.non_finite, 1);
  EXPECT_EQ(s.extreme, 2);  // the NaN and the 5e4
  EXPECT_FLOAT_EQ(s.max, 5e4f);
  EXPECT_FLOAT_EQ(s.min, -2.0f);
}

TEST(Ops, HistogramClampsAndCounts) {
  std::vector<float> vals = {-10.0f, -0.4f, 0.0f, 0.4f, 10.0f};
  auto h = histogram(vals, -0.5f, 0.5f, 5);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0], 2);  // -10 clamps into the first bucket with -0.4
  EXPECT_EQ(h[2], 1);
  EXPECT_EQ(h[4], 2);
  EXPECT_THROW(histogram(vals, 1.0f, -1.0f, 5), std::invalid_argument);
}

}  // namespace
}  // namespace llmfi::tn
