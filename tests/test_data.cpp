// Tests for the synthetic world and all nine task generators: world
// determinism, reference correctness, and structural invariants of every
// training sequence and evaluation example.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/tasks.h"
#include "data/world.h"

namespace llmfi::data {
namespace {

const World& shared_world() {
  static World w;
  return w;
}

TEST(World, DeterministicForSameSeed) {
  World a(7), b(7);
  EXPECT_EQ(a.vocab().size(), b.vocab().size());
  for (int e = 0; e < World::kEntities; ++e) {
    EXPECT_EQ(a.fact_value(e), b.fact_value(e));
  }
  for (int s = 0; s < World::kTranslationPairs; ++s) {
    EXPECT_EQ(a.translation_of(s), b.translation_of(s));
  }
}

TEST(World, SeedChangesKnowledge) {
  World a(7), c(8);
  int differing = 0;
  for (int e = 0; e < World::kEntities; ++e) {
    if (a.fact_value(e) != c.fact_value(e)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(World, MythsDifferFromFacts) {
  const auto& w = shared_world();
  for (int e = World::kFactEntities; e < World::kEntities; ++e) {
    EXPECT_NE(w.myth_value(e), w.fact_value(e)) << "entity " << e;
  }
}

TEST(World, TranslationIsAPermutation) {
  const auto& w = shared_world();
  std::set<int> targets;
  for (int s = 0; s < World::kTranslationPairs; ++s) {
    targets.insert(w.translation_of(s));
  }
  EXPECT_EQ(targets.size(),
            static_cast<size_t>(World::kTranslationPairs));
}

TEST(World, EventChainPrefixesAreUnique) {
  const auto& w = shared_world();
  std::set<std::tuple<int, int, int>> prefixes;
  for (int c = 0; c < World::kEventChains; ++c) {
    const auto& chain = w.event_chain(c);
    prefixes.insert({chain[0], chain[1], chain[2]});
  }
  EXPECT_EQ(prefixes.size(), static_cast<size_t>(World::kEventChains));
}

TEST(World, SpellNumber) {
  EXPECT_EQ(World::spell_number(0), "0");
  EXPECT_EQ(World::spell_number(7), "7");
  EXPECT_EQ(World::spell_number(207), "2 0 7");
}

TEST(World, AllWordsAreInVocab) {
  const auto& w = shared_world();
  EXPECT_TRUE(w.vocab().find(w.src_word(0)).has_value());
  EXPECT_TRUE(w.vocab().find(w.tgt_word(39)).has_value());
  EXPECT_TRUE(w.vocab().find(w.entity(23)).has_value());
  EXPECT_TRUE(w.vocab().find(w.noun_plural(15)).has_value());
  EXPECT_TRUE(w.vocab().find(w.verb_rules().front().verb).has_value());
}

// ---- task generators, parameterized over every kind ----------------------

class TaskGenerator : public ::testing::TestWithParam<TaskKind> {};

TEST_P(TaskGenerator, ProducesRequestedCounts) {
  GenOptions opt;
  opt.train_n = 50;
  opt.eval_n = 20;
  const TaskData td = make_task(shared_world(), GetParam(), opt);
  EXPECT_EQ(td.kind, GetParam());
  EXPECT_EQ(td.train.size(), 50u);
  EXPECT_EQ(td.eval.size(), 20u);
}

TEST_P(TaskGenerator, TrainSequencesAreWellFormed) {
  GenOptions opt;
  opt.train_n = 60;
  opt.eval_n = 5;
  const auto& vocab = shared_world().vocab();
  const TaskData td = make_task(shared_world(), GetParam(), opt);
  for (const auto& seq : td.train) {
    ASSERT_GE(seq.tokens.size(), 3u);
    EXPECT_EQ(seq.tokens.front(), vocab.bos());
    EXPECT_EQ(seq.tokens.back(), vocab.eos());
    EXPECT_GE(seq.loss_start, 1);
    EXPECT_LT(seq.loss_start, static_cast<int>(seq.tokens.size()));
    for (auto id : seq.tokens) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, vocab.size());
      EXPECT_NE(id, vocab.unk()) << "training data must not contain <unk>";
    }
  }
}

TEST_P(TaskGenerator, EvalExamplesEncodeCleanly) {
  GenOptions opt;
  opt.train_n = 5;
  opt.eval_n = 30;
  const auto& vocab = shared_world().vocab();
  const TaskData td = make_task(shared_world(), GetParam(), opt);
  for (const auto& ex : td.eval) {
    for (auto id : vocab.encode(ex.prompt)) EXPECT_NE(id, vocab.unk());
    if (task_style(GetParam()) == TaskStyle::MultipleChoice) {
      ASSERT_GE(ex.options.size(), 2u);
      ASSERT_GE(ex.correct, 0);
      ASSERT_LT(ex.correct, static_cast<int>(ex.options.size()));
      EXPECT_EQ(ex.reference, ex.options[static_cast<size_t>(ex.correct)]);
      // Options must be pairwise distinct, else scoring is ill-defined.
      std::set<std::string> uniq(ex.options.begin(), ex.options.end());
      EXPECT_EQ(uniq.size(), ex.options.size());
    } else {
      EXPECT_FALSE(ex.reference.empty());
    }
  }
}

TEST_P(TaskGenerator, DeterministicForSameSeed) {
  GenOptions opt;
  opt.train_n = 20;
  opt.eval_n = 10;
  const TaskData a = make_task(shared_world(), GetParam(), opt);
  const TaskData b = make_task(shared_world(), GetParam(), opt);
  ASSERT_EQ(a.eval.size(), b.eval.size());
  for (size_t i = 0; i < a.eval.size(); ++i) {
    EXPECT_EQ(a.eval[i].prompt, b.eval[i].prompt);
    EXPECT_EQ(a.eval[i].reference, b.eval[i].reference);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, TaskGenerator,
    ::testing::Values(TaskKind::McFact, TaskKind::McScience,
                      TaskKind::McTruthful, TaskKind::McCoref,
                      TaskKind::McCompletion, TaskKind::MathGsm,
                      TaskKind::Translation, TaskKind::Summarization,
                      TaskKind::QA),
    [](const ::testing::TestParamInfo<TaskKind>& info) {
      std::string n(task_name(info.param));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---- semantic checks per task ---------------------------------------------

TEST(MathTask, ReferencesAreArithmeticallyCorrect) {
  GenOptions opt;
  opt.eval_n = 50;
  const TaskData td = make_task(shared_world(), TaskKind::MathGsm, opt);
  for (const auto& ex : td.eval) {
    // Re-evaluate the expression in the prompt: "solve : <digits ops> = ?"
    std::istringstream iss(ex.prompt);
    std::string tok;
    iss >> tok;  // solve
    iss >> tok;  // :
    long acc = 0;
    long current = 0;
    int sign = +1;
    bool have_current = false;
    while (iss >> tok && tok != "=") {
      if (tok == "+" || tok == "-") {
        acc += sign * current;
        current = 0;
        have_current = false;
        sign = (tok == "+") ? +1 : -1;
      } else if (tok.size() == 1 && isdigit(tok[0])) {
        current = current * 10 + (tok[0] - '0');
        have_current = true;
      }
    }
    ASSERT_TRUE(have_current);
    acc += sign * current;
    // The reference's final answer must match.
    std::string digits = extract_final_answer(ex.reference);
    std::string compact;
    for (char c : digits) {
      if (c != ' ') compact += c;
    }
    ASSERT_FALSE(compact.empty()) << ex.reference;
    EXPECT_EQ(std::stol(compact), acc) << ex.prompt;
    EXPECT_EQ(digits, ex.final_answer);
    EXPECT_FALSE(ex.prompt_direct.empty());
  }
}

TEST(TranslationTask, ReferencesFollowLexiconAndReversal) {
  GenOptions opt;
  opt.eval_n = 30;
  const auto& w = shared_world();
  const TaskData td = make_task(w, TaskKind::Translation, opt);
  for (const auto& ex : td.eval) {
    // prompt: "translate : <src...> ="
    std::istringstream iss(ex.prompt);
    std::string tok;
    iss >> tok >> tok;  // translate :
    std::vector<std::string> src;
    while (iss >> tok && tok != "=") src.push_back(tok);
    std::istringstream ref(ex.reference);
    std::vector<std::string> tgt;
    while (ref >> tok) tgt.push_back(tok);
    ASSERT_EQ(src.size(), tgt.size());
    for (size_t i = 0; i < src.size(); ++i) {
      const int si = std::stoi(src[i].substr(2));
      // Reversed order: src word i maps to tgt word (n-1-i).
      EXPECT_EQ(tgt[src.size() - 1 - i],
                w.tgt_word(w.translation_of(si)));
    }
  }
}

TEST(QaTask, AnswerAppearsInContext) {
  GenOptions opt;
  opt.eval_n = 40;
  const TaskData td = make_task(shared_world(), TaskKind::QA, opt);
  for (const auto& ex : td.eval) {
    EXPECT_NE(ex.prompt.find(" is " + ex.reference + " ."),
              std::string::npos)
        << ex.prompt << " / " << ex.reference;
  }
}

TEST(SummarizationTask, ReferenceIsLeadSentence) {
  GenOptions opt;
  opt.eval_n = 20;
  const TaskData td = make_task(shared_world(), TaskKind::Summarization, opt);
  for (const auto& ex : td.eval) {
    // prompt: "summarize : <doc> ="; reference must be its first sentence.
    const auto start = std::string("summarize : ").size();
    EXPECT_EQ(ex.prompt.substr(start, ex.reference.size()), ex.reference);
  }
}

TEST(CorefTask, CorrectOptionFollowsVerbRule) {
  GenOptions opt;
  opt.eval_n = 40;
  const auto& w = shared_world();
  const TaskData td = make_task(w, TaskKind::McCoref, opt);
  for (const auto& ex : td.eval) {
    // prompt: "the A <verb> the B . it is the"
    std::istringstream iss(ex.prompt);
    std::string the1, a, verb, the2, b;
    iss >> the1 >> a >> verb >> the2 >> b;
    bool subject = false;
    bool found = false;
    for (const auto& rule : w.verb_rules()) {
      if (rule.verb == verb) {
        subject = rule.refers_to_subject;
        found = true;
      }
    }
    ASSERT_TRUE(found) << verb;
    EXPECT_EQ(ex.reference, subject ? a : b);
  }
}

TEST(TruthfulTask, MythIsAlwaysADistractor) {
  GenOptions opt;
  opt.eval_n = 36;
  const auto& w = shared_world();
  const TaskData td = make_task(w, TaskKind::McTruthful, opt);
  for (const auto& ex : td.eval) {
    // Extract the entity from "truth : entX is".
    std::istringstream iss(ex.prompt);
    std::string t, colon, ent;
    iss >> t >> colon >> ent;
    const int e = std::stoi(ent.substr(3));
    const std::string myth = w.value(w.myth_value(e));
    EXPECT_NE(std::find(ex.options.begin(), ex.options.end(), myth),
              ex.options.end());
    EXPECT_EQ(ex.reference, w.value(w.fact_value(e)));
  }
}

TEST(ExtractAnswer, ParsesTrailingDigits) {
  EXPECT_EQ(extract_final_answer("step 3 + 4 = 7 ; answer 7"), "7");
  EXPECT_EQ(extract_final_answer("answer 1 5"), "1 5");
  EXPECT_EQ(extract_final_answer("step a ; answer 1 2 then junk"), "1 2");
  EXPECT_EQ(extract_final_answer("no final token"), "");
  EXPECT_EQ(extract_final_answer(""), "");
  // Uses the LAST "answer" keyword.
  EXPECT_EQ(extract_final_answer("answer 9 ; answer 8"), "8");
}

}  // namespace
}  // namespace llmfi::data
