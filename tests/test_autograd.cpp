// Numerical gradient checks for every autograd op. These guard the whole
// training substrate: if any analytic backward drifts from the finite-
// difference gradient, model training (and thus every experiment) breaks.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "numerics/rng.h"

namespace llmfi {
namespace {

tn::Tensor random_tensor(std::vector<tn::Index> shape, num::Rng& rng,
                         double scale = 0.5) {
  tn::Tensor t(std::move(shape));
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Checks d(scalar)/d(leaf) against central finite differences. `build`
// must construct a fresh scalar graph from the (mutated) leaf values.
void check_gradients(const std::vector<ag::Var>& leaves,
                     const std::function<ag::Var()>& build,
                     double tol = 3e-2, double eps = 1e-3) {
  ag::Var loss = build();
  for (const auto& leaf : leaves) leaf->zero_grad();
  ag::backward(loss);

  for (size_t li = 0; li < leaves.size(); ++li) {
    const auto& leaf = leaves[li];
    ASSERT_TRUE(leaf->has_grad()) << "leaf " << li << " got no gradient";
    num::Rng probe_rng(li * 977 + 13);
    const tn::Index n = leaf->value.numel();
    const int probes = static_cast<int>(std::min<tn::Index>(n, 10));
    for (int p = 0; p < probes; ++p) {
      const auto idx = static_cast<tn::Index>(
          probe_rng.uniform_u64(static_cast<std::uint64_t>(n)));
      const float original = leaf->value[idx];
      leaf->value[idx] = original + static_cast<float>(eps);
      const double up = build()->value[0];
      leaf->value[idx] = original - static_cast<float>(eps);
      const double down = build()->value[0];
      leaf->value[idx] = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = leaf->grad[idx];
      const double denom =
          std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * denom)
          << "leaf " << li << " element " << idx;
    }
  }
}

TEST(Autograd, MatmulBtGradients) {
  num::Rng rng(1);
  ag::Var x = ag::leaf(random_tensor({3, 4}, rng));
  ag::Var w = ag::leaf(random_tensor({5, 4}, rng));
  check_gradients({x, w}, [&] {
    return ag::sum(ag::mul(ag::matmul_bt(x, w), ag::matmul_bt(x, w)));
  });
}

TEST(Autograd, AddMulSiluGradients) {
  num::Rng rng(2);
  ag::Var a = ag::leaf(random_tensor({4, 6}, rng));
  ag::Var b = ag::leaf(random_tensor({4, 6}, rng));
  check_gradients({a, b}, [&] {
    return ag::sum(ag::mul(ag::silu(a), ag::add(a, b)));
  });
}

TEST(Autograd, RmsNormGradients) {
  num::Rng rng(3);
  ag::Var x = ag::leaf(random_tensor({3, 8}, rng));
  ag::Var g = ag::leaf(random_tensor({8}, rng, 0.2));
  for (float& v : g->value.flat()) v += 1.0f;  // around the trained regime
  check_gradients({x, g}, [&] {
    ag::Var y = ag::rmsnorm(x, g);
    return ag::sum(ag::mul(y, y));
  });
}

TEST(Autograd, EmbeddingGradients) {
  num::Rng rng(4);
  ag::Var table = ag::leaf(random_tensor({7, 5}, rng));
  const std::vector<tok::TokenId> ids = {1, 3, 3, 6, 0};
  check_gradients({table}, [&] {
    ag::Var e = ag::embedding(table, ids);
    return ag::sum(ag::mul(e, e));
  });
}

TEST(Autograd, RopeGradients) {
  num::Rng rng(5);
  ag::Var x = ag::leaf(random_tensor({4, 8}, rng));
  check_gradients({x}, [&] {
    ag::Var y = ag::rope(x, /*n_heads=*/2, /*pos_offset=*/3);
    return ag::sum(ag::mul(y, y));
  });
}

TEST(Autograd, RopeIsOrthogonal) {
  // Rotations preserve norms, so sum of squares must be invariant.
  num::Rng rng(6);
  ag::Var x = ag::leaf(random_tensor({5, 12}, rng));
  ag::Var y = ag::rope(x, 3, 7);
  double before = 0.0, after = 0.0;
  for (float v : x->value.flat()) before += static_cast<double>(v) * v;
  for (float v : y->value.flat()) after += static_cast<double>(v) * v;
  EXPECT_NEAR(before, after, 1e-3 * before);
}

TEST(Autograd, CausalAttentionGradients) {
  num::Rng rng(7);
  ag::Var q = ag::leaf(random_tensor({4, 8}, rng));
  ag::Var k = ag::leaf(random_tensor({4, 8}, rng));
  ag::Var v = ag::leaf(random_tensor({4, 8}, rng));
  check_gradients({q, k, v}, [&] {
    ag::Var o = ag::causal_attention(q, k, v, /*n_heads=*/2);
    return ag::sum(ag::mul(o, o));
  });
}

TEST(Autograd, CrossEntropyGradients) {
  num::Rng rng(8);
  ag::Var logits = ag::leaf(random_tensor({5, 9}, rng, 1.0));
  const std::vector<tok::TokenId> targets = {2, 0, 7, 4, 4};
  check_gradients({logits}, [&] {
    return ag::cross_entropy_lm(logits, targets, /*first_loss_pos=*/1);
  });
}

TEST(Autograd, CrossEntropyMasksPromptPositions) {
  num::Rng rng(9);
  ag::Var logits = ag::leaf(random_tensor({5, 9}, rng, 1.0));
  const std::vector<tok::TokenId> targets = {2, 0, 7, 4, 4};
  ag::Var loss = ag::cross_entropy_lm(logits, targets, 2);
  ag::backward(loss);
  // Positions before first_loss_pos must receive zero gradient.
  for (tn::Index c = 0; c < 9; ++c) {
    EXPECT_EQ(logits->grad.at(0, c), 0.0f);
    EXPECT_EQ(logits->grad.at(1, c), 0.0f);
  }
  // And at least one later position must be non-zero.
  double later = 0.0;
  for (tn::Index c = 0; c < 9; ++c) later += std::fabs(logits->grad.at(3, c));
  EXPECT_GT(later, 0.0);
}

TEST(Autograd, MoeLayerGradients) {
  num::Rng rng(10);
  const tn::Index d = 6, ff = 8;
  const int n_experts = 4;
  ag::Var x = ag::leaf(random_tensor({3, d}, rng));
  ag::MoeParams params;
  params.top_k = 2;
  params.router = ag::leaf(random_tensor({n_experts, d}, rng));
  for (int e = 0; e < n_experts; ++e) {
    params.experts.push_back({ag::leaf(random_tensor({ff, d}, rng)),
                              ag::leaf(random_tensor({ff, d}, rng)),
                              ag::leaf(random_tensor({d, ff}, rng))});
  }
  std::vector<ag::Var> leaves = {x, params.router};
  for (auto& ex : params.experts) {
    leaves.push_back(ex[0]);
    leaves.push_back(ex[1]);
    leaves.push_back(ex[2]);
  }
  // Note: finite differences can flip the top-k selection at the
  // boundary; a slightly looser tolerance plus small eps keeps the check
  // meaningful without false positives.
  check_gradients(
      leaves,
      [&] {
        ag::Var y = ag::moe_layer(x, params);
        return ag::sum(ag::mul(y, y));
      },
      /*tol=*/6e-2, /*eps=*/5e-4);
}

TEST(Autograd, BackwardAccumulatesSharedSubgraphs) {
  num::Rng rng(11);
  ag::Var x = ag::leaf(random_tensor({2, 3}, rng));
  ag::Var y = ag::add(x, x);  // dy/dx = 2
  ag::Var loss = ag::sum(y);
  ag::backward(loss);
  for (tn::Index i = 0; i < x->value.numel(); ++i) {
    EXPECT_FLOAT_EQ(x->grad[i], 2.0f);
  }
}

TEST(Autograd, ScaledSumGradients) {
  num::Rng rng(12);
  ag::Var a = ag::leaf(random_tensor({2, 2}, rng));
  ag::Var s1 = ag::sum(a);
  ag::Var s2 = ag::sum(ag::mul(a, a));
  ag::Var total = ag::scaled_sum({s1, s2}, 0.5f);
  EXPECT_NEAR(total->value[0], 0.5f * (s1->value[0] + s2->value[0]), 1e-5);
  ag::backward(total);
  for (tn::Index i = 0; i < a->value.numel(); ++i) {
    EXPECT_NEAR(a->grad[i], 0.5f * (1.0f + 2.0f * a->value[i]), 1e-4);
  }
}

}  // namespace
}  // namespace llmfi
