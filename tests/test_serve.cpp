// Serve-layer tests: forward_batch bit-identity against the sequential
// forward, BatchEngine-vs-generate token identity across batch sizes
// with ragged prompts and staggered EOS, scheduler admission/retirement/
// backfill invariants, prefix-fork admission, the KvCache capacity
// invariant, and batched-campaign determinism against the sequential
// trial loop at several thread counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "eval/campaign.h"
#include "numerics/half.h"
#include "obs/metrics.h"
#include "serve/scheduler.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 48;
  cfg.seed = 55;
  return cfg;
}

model::InferenceModel make_engine() {
  return model::InferenceModel(model::ModelWeights::init(tiny_config()), {});
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

void expect_rows_bitwise_equal(const tn::Tensor& a, tn::Index ra,
                               const tn::Tensor& b, tn::Index rb) {
  ASSERT_EQ(a.cols(), b.cols());
  auto sa = a.row(ra);
  auto sb = b.row(rb);
  for (tn::Index i = 0; i < a.cols(); ++i) {
    ASSERT_EQ(num::f32_bits(sa[i]), num::f32_bits(sb[i])) << "col " << i;
  }
}

// --- KvCache capacity invariant (serve depends on it) -------------------

TEST(KvCacheServe, StorageStableAndAppendRowMatchesAppend) {
  nn::KvCache a(2, 8, 4);
  nn::KvCache b(2, 8, 4);
  const float* ka = a.keys(0).flat().data();
  const float* va = a.values(1).flat().data();

  for (int t = 0; t < 8; ++t) {
    tn::Tensor k({1, 4});
    tn::Tensor v({1, 4});
    for (tn::Index i = 0; i < 4; ++i) {
      k.row(0)[i] = static_cast<float>(t * 10 + i);
      v.row(0)[i] = static_cast<float>(-t * 10 - i);
    }
    for (int blk = 0; blk < 2; ++blk) {
      a.append(blk, k, v);
      b.append_row(blk, k.row(0), v.row(0));
    }
    a.advance(1);
    b.advance(1);
  }
  // Full allocation at construction: appends never reallocate, so the
  // storage pointers batched decode holds across a pass stay valid.
  EXPECT_EQ(a.keys(0).flat().data(), ka);
  EXPECT_EQ(a.values(1).flat().data(), va);
  EXPECT_EQ(a.length(), b.length());
  for (int blk = 0; blk < 2; ++blk) {
    for (tn::Index t = 0; t < a.length(); ++t) {
      expect_rows_bitwise_equal(a.keys(blk), t, b.keys(blk), t);
      expect_rows_bitwise_equal(a.values(blk), t, b.values(blk), t);
    }
  }
  // Both flavors throw on overflow instead of growing (invalid_argument,
  // like every other cache-misuse error).
  tn::Tensor k({1, 4});
  tn::Tensor v({1, 4});
  EXPECT_THROW(a.append(0, k, v), std::invalid_argument);
  EXPECT_THROW(b.append_row(0, k.row(0), v.row(0)), std::invalid_argument);
}

// --- forward_batch ------------------------------------------------------

TEST(ForwardBatch, RowsBitIdenticalToSequentialForward) {
  auto m = make_engine();
  const std::vector<std::vector<tok::TokenId>> prompts = {
      tokens({1, 4, 7}), tokens({2}), tokens({3, 5, 9, 11, 6}),
      tokens({8, 2, 2, 1})};

  // Sequential prefill per sequence, then one decode pass each.
  std::vector<nn::KvCache> seq_caches;
  std::vector<tok::TokenId> next;
  for (const auto& p : prompts) {
    auto cache = m.make_cache();
    auto logits = m.forward(p, cache, 0);
    next.push_back(
        static_cast<tok::TokenId>(tn::argmax_row(logits, logits.rows() - 1)));
    seq_caches.push_back(std::move(cache));
  }
  std::vector<nn::KvCache> batch_caches = seq_caches;  // same prefill state

  std::vector<model::InferenceModel::BatchRow> rows;
  for (size_t i = 0; i < prompts.size(); ++i) {
    rows.push_back({.cache = &batch_caches[i],
                    .token = next[i],
                    .pass_index = 1,
                    .hook = nullptr,
                    .nonfinite = false});
  }
  const tn::Tensor batch_logits = m.forward_batch(rows);
  ASSERT_EQ(batch_logits.rows(), static_cast<tn::Index>(prompts.size()));

  for (size_t i = 0; i < prompts.size(); ++i) {
    const tok::TokenId input = next[i];
    const tn::Tensor ref = m.forward(std::span(&input, 1), seq_caches[i], 1);
    expect_rows_bitwise_equal(batch_logits, static_cast<tn::Index>(i), ref, 0);
    EXPECT_EQ(batch_caches[i].length(), seq_caches[i].length());
    // The cached K/V the batch wrote must be bitwise what sequential wrote.
    for (int blk = 0; blk < m.config().n_layers; ++blk) {
      const tn::Index last = seq_caches[i].length() - 1;
      expect_rows_bitwise_equal(batch_caches[i].keys(blk), last,
                                seq_caches[i].keys(blk), last);
      expect_rows_bitwise_equal(batch_caches[i].values(blk), last,
                                seq_caches[i].values(blk), last);
    }
  }
}

// --- BatchEngine vs gen::generate ---------------------------------------

TEST(BatchEngine, MatchesGenerateAcrossBatchSizesRaggedPromptsStaggeredEos) {
  auto m = make_engine();
  const std::vector<std::vector<tok::TokenId>> prompts = {
      tokens({1, 4, 7}),          tokens({2}),
      tokens({3, 5, 9, 11, 6}),   tokens({8, 2, 2, 1}),
      tokens({10, 12}),           tokens({7, 7, 7, 7, 7, 7}),
      tokens({14, 3, 1}),         tokens({5})};
  constexpr int kMaxNew = 10;

  // References: first an unreachable EOS to harvest each trajectory, then
  // a per-request EOS chosen from a *different* position of each
  // trajectory, so the batched requests retire at staggered steps.
  std::vector<tok::TokenId> eos(prompts.size());
  std::vector<gen::GenerationResult> ref(prompts.size());
  for (size_t i = 0; i < prompts.size(); ++i) {
    gen::GenerationConfig cfg;
    cfg.max_new_tokens = kMaxNew;
    cfg.eos = 1000;  // unreachable
    const auto traj = gen::generate(m, prompts[i], cfg);
    ASSERT_FALSE(traj.tokens.empty());
    eos[i] = traj.tokens[i % traj.tokens.size()];
    cfg.eos = eos[i];
    ref[i] = gen::generate(m, prompts[i], cfg);
  }

  for (int batch : {1, 2, 4, 8}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    serve::BatchEngine engine(m, batch);
    serve::Scheduler sched(engine);
    for (size_t i = 0; i < prompts.size(); ++i) {
      serve::Request req;
      req.id = i;
      req.prompt = prompts[i];
      req.max_new_tokens = kMaxNew;
      req.eos = eos[i];
      sched.submit(std::move(req));
    }
    const auto done = sched.run();
    ASSERT_EQ(done.size(), prompts.size());
    std::map<std::uint64_t, const serve::Completion*> by_id;
    for (const auto& c : done) by_id[c.id] = &c;
    for (size_t i = 0; i < prompts.size(); ++i) {
      ASSERT_TRUE(by_id.count(i));
      const auto& c = *by_id[i];
      EXPECT_EQ(c.tokens, ref[i].tokens) << "request " << i;
      EXPECT_EQ(c.passes, ref[i].passes) << "request " << i;
      EXPECT_EQ(c.skipped_passes, 0) << "request " << i;
      EXPECT_EQ(c.hit_max_tokens, ref[i].hit_max_tokens) << "request " << i;
      EXPECT_EQ(c.nonfinite_logits, ref[i].nonfinite_logits)
          << "request " << i;
    }
    EXPECT_EQ(engine.stats().completed, prompts.size());
    EXPECT_LE(engine.stats().max_active, batch);
  }
}

// --- scheduler invariants ------------------------------------------------

TEST(Scheduler, AdmissionRetirementBackfillInvariants) {
  auto m = make_engine();
  constexpr int kCapacity = 3;
  constexpr size_t kRequests = 9;

  const auto run_once = [&m] {
    serve::BatchEngine engine(m, kCapacity);
    serve::Scheduler sched(engine);
    for (size_t i = 0; i < kRequests; ++i) {
      serve::Request req;
      req.id = i;
      req.prompt = tokens({static_cast<int>(1 + i), 4, 7});
      req.max_new_tokens = 4 + static_cast<int>(i % 3);
      req.eos = 1000;
      sched.submit(std::move(req));
    }
    auto done = sched.run();
    return std::make_pair(std::move(done), engine.stats());
  };

  auto [done, stats] = run_once();
  ASSERT_EQ(done.size(), kRequests);
  EXPECT_EQ(stats.admitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_LE(stats.max_active, kCapacity);
  EXPECT_EQ(stats.max_active, kCapacity);  // 9 requests saturate 3 slots
  EXPECT_GE(stats.decode_batches, 1u);
  std::uint64_t total_tokens = 0;
  for (const auto& c : done) total_tokens += c.tokens.size();
  EXPECT_EQ(stats.generated_tokens, total_tokens);

  // Everything beyond the first wave is a backfill into a freed slot.
  EXPECT_EQ(stats.admitted - kCapacity,
            static_cast<std::uint64_t>(kRequests) - kCapacity);

  // On-done callbacks fire exactly once per request, in retirement order.
  serve::BatchEngine engine2(m, kCapacity);
  serve::Scheduler sched2(engine2);
  std::vector<std::uint64_t> callback_order;
  for (size_t i = 0; i < kRequests; ++i) {
    serve::Request req;
    req.id = i;
    req.prompt = tokens({static_cast<int>(1 + i), 4, 7});
    req.max_new_tokens = 4 + static_cast<int>(i % 3);
    req.eos = 1000;
    req.on_done = [&callback_order](const serve::Completion& c) {
      callback_order.push_back(c.id);
    };
    sched2.submit(std::move(req));
  }
  const auto done2 = sched2.run();
  EXPECT_GE(sched2.stats().backfills, 1u);
  ASSERT_EQ(callback_order.size(), kRequests);
  ASSERT_EQ(done2.size(), done.size());
  for (size_t i = 0; i < done.size(); ++i) {
    // Deterministic completion order and payloads across identical runs.
    EXPECT_EQ(done2[i].id, done[i].id);
    EXPECT_EQ(done2[i].tokens, done[i].tokens);
    EXPECT_EQ(callback_order[i], done[i].id);
  }
}

TEST(BatchEngine, AdmitThrowsWhenFullAndZeroBudgetRetiresInstantly) {
  auto m = make_engine();
  serve::BatchEngine engine(m, 1);
  std::vector<serve::Completion> done;
  serve::Request req;
  req.id = 7;
  req.prompt = tokens({1, 4, 7});
  req.max_new_tokens = 8;
  req.eos = 1000;
  engine.admit(std::move(req), done);
  ASSERT_EQ(engine.active(), 1);
  serve::Request second;
  second.prompt = tokens({2});
  EXPECT_THROW(engine.admit(std::move(second), done), std::runtime_error);

  // A zero-token budget mirrors generate(): no loop iteration, no
  // hit_max, empty output — and the slot never occupies a decode row.
  serve::BatchEngine engine2(m, 1);
  std::vector<serve::Completion> done2;
  serve::Request zero;
  zero.id = 9;
  zero.prompt = tokens({1, 4, 7});
  zero.max_new_tokens = 0;
  engine2.admit(std::move(zero), done2);
  ASSERT_EQ(done2.size(), 1u);
  EXPECT_EQ(engine2.active(), 0);
  EXPECT_TRUE(done2[0].tokens.empty());
  EXPECT_FALSE(done2[0].hit_max_tokens);
  EXPECT_EQ(done2[0].passes, 1);

  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 0;
  cfg.eos = 1000;
  const auto ref = gen::generate(m, tokens({1, 4, 7}), cfg);
  EXPECT_EQ(ref.tokens, done2[0].tokens);
  EXPECT_EQ(ref.passes, done2[0].passes);
  EXPECT_EQ(ref.hit_max_tokens, done2[0].hit_max_tokens);
}

// --- prefix-fork admission ----------------------------------------------

TEST(BatchEngine, ForkedAdmissionMatchesFullRun) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 10;
  cfg.eos = 1000;
  gen::PrefixSnapshot snap;
  cfg.capture = &snap;
  const auto full = gen::generate(m, prompt, cfg);
  ASSERT_TRUE(snap.valid);
  ASSERT_GE(full.passes, 3);

  for (int t : {1, full.passes - 1}) {
    SCOPED_TRACE("start_pass=" + std::to_string(t));
    serve::BatchEngine engine(m, 2);
    std::vector<serve::Completion> done;
    serve::Request req;
    req.id = 1;
    req.prompt = prompt;
    req.max_new_tokens = 10;
    req.eos = 1000;
    req.resume = &snap;
    req.start_pass = t;
    engine.admit(std::move(req), done);
    while (engine.active() > 0) engine.step(done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tokens, full.tokens);
    EXPECT_EQ(done[0].passes, full.passes);
    EXPECT_EQ(done[0].skipped_passes, t);
    EXPECT_EQ(done[0].hit_max_tokens, full.hit_max_tokens);
    EXPECT_EQ(engine.stats().forked_admissions, 1u);
  }

  // A snapshot for a different prompt fails the resume preconditions and
  // falls back to a full (still bit-identical) prefill.
  serve::BatchEngine engine(m, 2);
  std::vector<serve::Completion> done;
  serve::Request req;
  req.id = 2;
  req.prompt = tokens({2, 4, 7});
  req.max_new_tokens = 10;
  req.eos = 1000;
  req.resume = &snap;
  req.start_pass = 2;
  engine.admit(std::move(req), done);
  while (engine.active() > 0) engine.step(done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].skipped_passes, 0);
  EXPECT_EQ(engine.stats().forked_admissions, 0u);
  gen::GenerationConfig ref_cfg;
  ref_cfg.max_new_tokens = 10;
  ref_cfg.eos = 1000;
  const auto ref = gen::generate(m, tokens({2, 4, 7}), ref_cfg);
  EXPECT_EQ(done[0].tokens, ref.tokens);
}

// --- batched campaigns ---------------------------------------------------

// One small model trained once and shared by the campaign tests.
struct Fixture {
  data::World world;
  model::ModelWeights weights;
  std::map<data::TaskKind, data::TaskData> tasks;

  Fixture() : weights(model::ModelWeights::init(config())) {
    // The campaign layer honors these env knobs; tests pin the config
    // fields directly, so an inherited environment must not interfere.
    unsetenv("LLMFI_BATCH");
    unsetenv("LLMFI_PREFIX_FORK");
    data::GenOptions opt;
    opt.train_n = 300;
    opt.eval_n = 20;
    for (auto kind : {data::TaskKind::McFact, data::TaskKind::QA,
                      data::TaskKind::MathGsm}) {
      tasks.emplace(kind, data::make_task(world, kind, opt));
    }
    std::vector<data::TrainSeq> corpus;
    for (auto& [kind, td] : tasks) {
      corpus.insert(corpus.end(), td.train.begin(), td.train.end());
    }
    train::TrainConfig tc;
    tc.steps = 350;
    tc.batch_size = 8;
    tc.lr = 5e-3f;
    train::Trainer trainer(weights, tc);
    trainer.train(corpus);
  }

  model::ModelConfig config() const {
    model::ModelConfig cfg;
    cfg.vocab_size = world.vocab().size();
    cfg.d_model = 32;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.d_ff = 64;
    cfg.max_seq = 160;
    cfg.seed = 13;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

eval::CampaignConfig small_campaign(core::FaultModel fault) {
  eval::CampaignConfig cfg;
  cfg.fault = fault;
  cfg.trials = 24;
  cfg.n_inputs = 4;
  cfg.seed = 99;
  cfg.keep_trial_records = true;
  return cfg;
}

// Bit-identical equality of two campaign results (the comparison the
// parallel-driver tests use, applied to the batch mode): counts,
// buckets, accumulators, and the full per-trial records.
void expect_identical_results(const eval::CampaignResult& a,
                              const eval::CampaignResult& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc_subtle, b.sdc_subtle);
  EXPECT_EQ(a.sdc_distorted, b.sdc_distorted);
  EXPECT_EQ(a.detected_recovered, b.detected_recovered);
  EXPECT_EQ(a.detected_unrecovered, b.detected_unrecovered);
  EXPECT_EQ(a.trials_detected, b.trials_detected);
  EXPECT_EQ(a.faulty_passes, b.faulty_passes);
  EXPECT_EQ(a.recovery_passes, b.recovery_passes);
  EXPECT_EQ(a.baseline_false_positives, b.baseline_false_positives);
  EXPECT_EQ(a.baseline_hits, b.baseline_hits);
  EXPECT_EQ(a.faulty_hits, b.faulty_hits);
  EXPECT_EQ(a.by_highest_bit, b.by_highest_bit);
  const auto expect_identical_metrics =
      [](const std::map<std::string, metrics::Accumulator>& ma,
         const std::map<std::string, metrics::Accumulator>& mb) {
        ASSERT_EQ(ma.size(), mb.size());
        for (const auto& [name, acc] : ma) {
          auto it = mb.find(name);
          ASSERT_TRUE(it != mb.end()) << name;
          EXPECT_EQ(acc.n(), it->second.n()) << name;
          EXPECT_EQ(acc.mean(), it->second.mean()) << name;
          EXPECT_EQ(acc.stddev(), it->second.stddev()) << name;
        }
      };
  expect_identical_metrics(a.baseline_metrics, b.baseline_metrics);
  expect_identical_metrics(a.faulty_metrics, b.faulty_metrics);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_TRUE(ra.plan.layer == rb.plan.layer) << "trial " << i;
    EXPECT_EQ(ra.plan.layer_index, rb.plan.layer_index);
    EXPECT_EQ(ra.plan.bits, rb.plan.bits);
    EXPECT_EQ(ra.plan.weight_row, rb.plan.weight_row);
    EXPECT_EQ(ra.plan.weight_col, rb.plan.weight_col);
    EXPECT_EQ(ra.plan.pass_index, rb.plan.pass_index);
    EXPECT_EQ(ra.plan.row_frac, rb.plan.row_frac);
    EXPECT_EQ(ra.plan.out_col, rb.plan.out_col);
    EXPECT_EQ(ra.example_index, rb.example_index);
    EXPECT_EQ(ra.outcome, rb.outcome);
    EXPECT_EQ(ra.correct, rb.correct);
    EXPECT_EQ(ra.output_matches_baseline, rb.output_matches_baseline);
    EXPECT_EQ(ra.detections, rb.detections);
    EXPECT_EQ(ra.recovery_passes, rb.recovery_passes);
    EXPECT_EQ(ra.primary_metric, rb.primary_metric);
    EXPECT_EQ(ra.output, rb.output) << "trial " << i;
  }
}

// The tentpole guarantee of the batch mode: routing trials through the
// continuous-batching scheduler reproduces the sequential campaign
// byte-for-byte, at every batch size and thread count, with the prefix
// fork on or off.
TEST(ServeParallelCampaign, BatchedMatchesSequential) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  for (bool fork : {false, true}) {
    auto cfg = small_campaign(core::FaultModel::Comp1Bit);
    cfg.prefix_fork = fork;
    cfg.threads = 1;
    cfg.batch = 1;
    const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
    for (int threads : {1, 2, 4}) {
      for (int batch : {2, 4}) {
        cfg.threads = threads;
        cfg.batch = batch;
        const auto batched = eval::run_campaign_on(engine, f.world.vocab(),
                                                   eval_set, spec, cfg);
        SCOPED_TRACE("fork=" + std::to_string(fork) +
                     " threads=" + std::to_string(threads) +
                     " batch=" + std::to_string(batch));
        expect_identical_results(serial, batched);
      }
    }
  }
}

TEST(ServeParallelCampaign, BatchedMathCampaignMatchesSequential) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& eval_set = f.tasks.at(data::TaskKind::MathGsm).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.threads = 1;
  cfg.batch = 1;
  const auto serial = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                            spec, cfg);
  cfg.threads = 2;
  cfg.batch = 4;
  const auto batched = eval::run_campaign_on(engine, f.world.vocab(),
                                             eval_set, spec, cfg);
  expect_identical_results(serial, batched);
}

// Ineligible configs (memory faults corrupt the shared weights; option
// scoring has no decode loop) downgrade to the sequential trial loop —
// same results, one warning, no crash.
TEST(ServeParallelCampaign, IneligibleConfigsFallBackToSequential) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  {
    const auto& spec = eval::workload(data::TaskKind::QA);
    const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
    auto cfg = small_campaign(core::FaultModel::Mem2Bit);
    cfg.threads = 2;
    cfg.batch = 1;
    const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
    cfg.batch = 4;
    const auto fallback = eval::run_campaign_on(engine, f.world.vocab(),
                                                eval_set, spec, cfg);
    expect_identical_results(serial, fallback);
  }
  {
    const auto& spec = eval::workload(data::TaskKind::McFact);
    const auto& eval_set = f.tasks.at(data::TaskKind::McFact).eval;
    auto cfg = small_campaign(core::FaultModel::Comp1Bit);
    cfg.threads = 1;
    cfg.batch = 1;
    const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
    cfg.batch = 4;
    const auto fallback = eval::run_campaign_on(engine, f.world.vocab(),
                                                eval_set, spec, cfg);
    expect_identical_results(serial, fallback);
  }
}

// --- server-mode lifecycle: tick / cancel / drain / on_token -------------

TEST(SchedulerLifecycle, OnTokenStreamsEveryDecodedTokenInOrder) {
  auto m = make_engine();
  serve::BatchEngine engine(m, 2);
  serve::Scheduler sched(engine);
  std::vector<std::pair<int, tok::TokenId>> streamed;
  serve::Request req;
  req.id = 3;
  req.prompt = tokens({1, 4, 7});
  req.max_new_tokens = 6;
  req.eos = 1000;
  req.on_token = [&streamed](std::uint64_t id, int index, tok::TokenId t) {
    EXPECT_EQ(id, 3u);
    streamed.emplace_back(index, t);
  };
  sched.submit(std::move(req));
  const auto done = sched.run();
  ASSERT_EQ(done.size(), 1u);

  // Every accepted token streamed exactly once, indices dense from 0,
  // values identical to the completion and the sequential oracle.
  ASSERT_EQ(streamed.size(), done[0].tokens.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].first, static_cast<int>(i));
    EXPECT_EQ(streamed[i].second, done[0].tokens[i]);
  }
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 6;
  cfg.eos = 1000;
  EXPECT_EQ(done[0].tokens, gen::generate(m, tokens({1, 4, 7}), cfg).tokens);
}

TEST(SchedulerLifecycle, CancelQueuedAndActiveReleasesPagesImmediately) {
  auto m = make_engine();
  auto pool = std::make_shared<nn::PagePool>(
      64, nn::PagePool::kDefaultPageRows, tiny_config().d_model);
  const int total_pages = pool->free_pages();
  serve::BatchEngine engine(m, 2, pool);
  serve::Scheduler sched(engine);
  std::vector<std::uint64_t> done_ids;
  const auto mk = [&done_ids](std::uint64_t id) {
    serve::Request r;
    r.id = id;
    r.prompt = tokens({static_cast<int>(4 + id), 5});
    r.max_new_tokens = 12;
    r.eos = 1000;
    r.on_done = [&done_ids](const serve::Completion& c) {
      done_ids.push_back(c.id);
    };
    return r;
  };
  for (std::uint64_t id = 0; id < 4; ++id) sched.submit(mk(id));

  std::vector<serve::Completion> out;
  ASSERT_TRUE(sched.tick(out));  // admits 0 and 1; 2 and 3 wait in queue
  EXPECT_EQ(sched.active(), 2);
  EXPECT_EQ(sched.queued(), 2u);
  const int pages_during = pool->free_pages();
  EXPECT_LT(pages_during, total_pages);

  // Queued cancel: synthetic completion, the engine never sees it.
  ASSERT_TRUE(sched.cancel(3, out));
  EXPECT_EQ(sched.queued(), 1u);
  // Active cancel: the slot retires now and its pages return to the
  // pool now, not at the next slot reuse.
  ASSERT_TRUE(sched.cancel(0, out));
  EXPECT_EQ(sched.active(), 1);
  EXPECT_GT(pool->free_pages(), pages_during);
  // Unknown id: the benign race with retirement, not an error.
  EXPECT_FALSE(sched.cancel(99, out));

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_TRUE(out[0].cancelled);
  EXPECT_TRUE(out[0].tokens.empty());
  EXPECT_EQ(out[1].id, 0u);
  EXPECT_TRUE(out[1].cancelled);

  // Drain: new work throws, existing work runs to completion.
  sched.drain();
  EXPECT_TRUE(sched.draining());
  EXPECT_THROW(sched.submit(mk(7)), std::logic_error);
  while (sched.tick(out)) {
  }
  EXPECT_TRUE(sched.idle());
  EXPECT_EQ(pool->free_pages(), total_pages);
  EXPECT_EQ(sched.stats().cancelled, 2u);
  EXPECT_EQ(sched.stats().completed, 2u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
  EXPECT_EQ(done_ids.size(), 4u);
}

TEST(SchedulerLifecycle, QueuedCancelConsumesQueueWaitStamp) {
  obs::metrics_start();
  auto m = make_engine();
  serve::BatchEngine engine(m, 1);
  serve::Scheduler sched(engine);
  auto& hist = obs::Registry::global().histogram("serve_queue_wait_us",
                                                 obs::latency_us_buckets());
  for (std::uint64_t id = 0; id < 2; ++id) {
    serve::Request r;
    r.id = id;
    r.prompt = tokens({static_cast<int>(5 + id)});
    r.max_new_tokens = 4;
    r.eos = 1000;
    sched.submit(std::move(r));
  }
  EXPECT_EQ(hist.count(), 0u);  // stamps are consumed on exit, not entry
  std::vector<serve::Completion> out;
  ASSERT_TRUE(sched.tick(out));  // admits request 0 (capacity 1)
  EXPECT_EQ(hist.count(), 1u);
  // A request cancelled while queued must still surface its queue wait —
  // admission is no longer the only stamp sink.
  ASSERT_TRUE(sched.cancel(1, out));
  EXPECT_EQ(hist.count(), 2u);
  while (sched.tick(out)) {
  }
  EXPECT_EQ(hist.count(), 2u);
  obs::metrics_stop();
}

}  // namespace
}  // namespace llmfi
