// Campaign-level integration tests on a small trained model: replay
// determinism, weight-restoration across a whole campaign, outcome
// bookkeeping, normalized-performance plumbing, and the runner paths
// (generative, multiple-choice, direct-prompt math).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "eval/campaign.h"
#include "numerics/half.h"
#include "obs/obs.h"
#include "tensor/kernels.h"
#include "train/trainer.h"

namespace llmfi {
namespace {

// One small model trained once and shared by all tests in this file.
struct Fixture {
  data::World world;
  model::ModelWeights weights;
  std::map<data::TaskKind, data::TaskData> tasks;

  Fixture() : weights(model::ModelWeights::init(config())) {
    data::GenOptions opt;
    opt.train_n = 300;
    opt.eval_n = 20;
    for (auto kind : {data::TaskKind::McFact, data::TaskKind::QA,
                      data::TaskKind::MathGsm}) {
      tasks.emplace(kind, data::make_task(world, kind, opt));
    }
    std::vector<data::TrainSeq> corpus;
    for (auto& [kind, td] : tasks) {
      corpus.insert(corpus.end(), td.train.begin(), td.train.end());
    }
    train::TrainConfig tc;
    tc.steps = 350;
    tc.batch_size = 8;
    tc.lr = 5e-3f;
    train::Trainer trainer(weights, tc);
    trainer.train(corpus);
  }

  model::ModelConfig config() const {
    model::ModelConfig cfg;
    cfg.vocab_size = world.vocab().size();
    cfg.d_model = 32;
    cfg.n_layers = 2;
    cfg.n_heads = 4;
    cfg.d_ff = 64;
    cfg.max_seq = 160;
    cfg.seed = 13;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

eval::CampaignConfig small_campaign(core::FaultModel fault) {
  eval::CampaignConfig cfg;
  cfg.fault = fault;
  cfg.trials = 24;
  cfg.n_inputs = 4;
  cfg.seed = 99;
  return cfg;
}

TEST(Campaign, SameSeedReplaysIdentically) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Mem2Bit);
  cfg.keep_trial_records = true;
  const auto a = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  const auto b = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc_subtle, b.sdc_subtle);
  EXPECT_EQ(a.sdc_distorted, b.sdc_distorted);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].output, b.records[i].output);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_TRUE(a.records[i].plan.layer == b.records[i].plan.layer);
    EXPECT_EQ(a.records[i].plan.bits, b.records[i].plan.bits);
  }
}

TEST(Campaign, DifferentSeedsDiffer) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg1 = small_campaign(core::FaultModel::Mem2Bit);
  cfg1.keep_trial_records = true;
  auto cfg2 = cfg1;
  cfg2.seed = 100;
  const auto a = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg1);
  const auto b = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg2);
  bool any_plan_differs = false;
  for (size_t i = 0; i < a.records.size(); ++i) {
    if (!(a.records[i].plan.layer == b.records[i].plan.layer) ||
        a.records[i].plan.bits != b.records[i].plan.bits) {
      any_plan_differs = true;
    }
  }
  EXPECT_TRUE(any_plan_differs);
}

TEST(Campaign, WeightsAreBitIdenticalAfterMemCampaign) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  std::vector<tn::Tensor> before;
  for (auto& ref : engine.linear_layers()) {
    before.push_back(ref.weights->values());
  }
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto& eval_set = f.tasks.at(data::TaskKind::McFact).eval;
  (void)eval::run_campaign_on(engine, f.world.vocab(), eval_set, spec,
                              small_campaign(core::FaultModel::Mem2Bit));
  auto layers = engine.linear_layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const auto& now = layers[l].weights->values();
    for (tn::Index i = 0; i < now.numel(); ++i) {
      ASSERT_EQ(num::f32_bits(now.flat()[i]),
                num::f32_bits(before[l].flat()[i]));
    }
  }
}

TEST(Campaign, OutcomeCountsSumToTrials) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  for (auto fault : {core::FaultModel::Comp1Bit, core::FaultModel::Comp2Bit,
                     core::FaultModel::Mem2Bit}) {
    const auto& spec = eval::workload(data::TaskKind::QA);
    const auto r = eval::run_campaign_on(
        engine, f.world.vocab(), f.tasks.at(data::TaskKind::QA).eval, spec,
        small_campaign(fault));
    EXPECT_EQ(r.trials(), 24);
    int bit_total = 0;
    for (const auto& [bit, counts] : r.by_highest_bit) {
      for (int c : counts) bit_total += c;
    }
    EXPECT_EQ(bit_total, 24);
    EXPECT_GE(r.sdc_rate(), 0.0);
    EXPECT_LE(r.sdc_rate(), 1.0);
  }
}

TEST(Campaign, BaselineMetricsPopulated) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto r = eval::run_campaign_on(
      engine, f.world.vocab(), f.tasks.at(data::TaskKind::QA).eval, spec,
      small_campaign(core::FaultModel::Comp1Bit));
  EXPECT_EQ(r.baseline_metrics.at("f1").n(), 4);          // n_inputs
  EXPECT_EQ(r.faulty_metrics.at("f1").n(), 24);           // trials
  const auto norm = r.normalized("f1");
  EXPECT_GE(norm.value, 0.0);
  EXPECT_LE(norm.lo, norm.hi);
  EXPECT_GT(r.total_runtime_sec, 0.0);
}

TEST(Campaign, McTaskRunsAndClassifiesDirect) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto r = eval::run_campaign_on(
      engine, f.world.vocab(), f.tasks.at(data::TaskKind::McFact).eval,
      spec, small_campaign(core::FaultModel::Comp2Bit));
  EXPECT_EQ(r.trials(), 24);
  EXPECT_GT(r.baseline_mean("accuracy"), 0.5);  // model learned the task
}

TEST(Campaign, DirectPromptUsesDirectPath) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::MathGsm);
  const auto& ex = f.tasks.at(data::TaskKind::MathGsm).eval.front();
  eval::RunOptions cot, direct;
  direct.direct_prompt = true;
  const auto rc = eval::run_example(engine, f.world.vocab(), spec, ex, cot);
  const auto rd = eval::run_example(engine, f.world.vocab(), spec, ex,
                                    direct);
  // Direct mode must generate far fewer tokens than chain-of-thought.
  EXPECT_LT(rd.tokens.size() + 2, rc.tokens.size());
}

// Bit-identical equality of two campaign results: counts, buckets,
// accumulators (Welford state compared through mean/stddev/n), and the
// full per-trial records. Used to pin the parallel driver to the serial
// semantics.
void expect_identical_results(const eval::CampaignResult& a,
                              const eval::CampaignResult& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc_subtle, b.sdc_subtle);
  EXPECT_EQ(a.sdc_distorted, b.sdc_distorted);
  EXPECT_EQ(a.detected_recovered, b.detected_recovered);
  EXPECT_EQ(a.detected_unrecovered, b.detected_unrecovered);
  EXPECT_EQ(a.trials_detected, b.trials_detected);
  EXPECT_EQ(a.faulty_passes, b.faulty_passes);
  EXPECT_EQ(a.recovery_passes, b.recovery_passes);
  EXPECT_EQ(a.baseline_false_positives, b.baseline_false_positives);
  EXPECT_EQ(a.baseline_hits, b.baseline_hits);
  EXPECT_EQ(a.faulty_hits, b.faulty_hits);
  EXPECT_EQ(a.by_highest_bit, b.by_highest_bit);
  const auto expect_identical_metrics =
      [](const std::map<std::string, metrics::Accumulator>& ma,
         const std::map<std::string, metrics::Accumulator>& mb) {
        ASSERT_EQ(ma.size(), mb.size());
        for (const auto& [name, acc] : ma) {
          auto it = mb.find(name);
          ASSERT_TRUE(it != mb.end()) << name;
          EXPECT_EQ(acc.n(), it->second.n()) << name;
          EXPECT_EQ(acc.mean(), it->second.mean()) << name;
          EXPECT_EQ(acc.stddev(), it->second.stddev()) << name;
        }
      };
  expect_identical_metrics(a.baseline_metrics, b.baseline_metrics);
  expect_identical_metrics(a.faulty_metrics, b.faulty_metrics);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_TRUE(ra.plan.layer == rb.plan.layer) << "trial " << i;
    EXPECT_EQ(ra.plan.layer_index, rb.plan.layer_index);
    EXPECT_EQ(ra.plan.bits, rb.plan.bits);
    EXPECT_EQ(ra.plan.weight_row, rb.plan.weight_row);
    EXPECT_EQ(ra.plan.weight_col, rb.plan.weight_col);
    EXPECT_EQ(ra.plan.pass_index, rb.plan.pass_index);
    EXPECT_EQ(ra.plan.row_frac, rb.plan.row_frac);
    EXPECT_EQ(ra.plan.out_col, rb.plan.out_col);
    EXPECT_EQ(ra.example_index, rb.example_index);
    EXPECT_EQ(ra.outcome, rb.outcome);
    EXPECT_EQ(ra.correct, rb.correct);
    EXPECT_EQ(ra.output_matches_baseline, rb.output_matches_baseline);
    EXPECT_EQ(ra.detections, rb.detections);
    EXPECT_EQ(ra.recovery_passes, rb.recovery_passes);
    EXPECT_EQ(ra.primary_metric, rb.primary_metric);
    EXPECT_EQ(ra.output, rb.output) << "trial " << i;
  }
}

// The tentpole guarantee: the worker-pool driver with engine replicas
// reduces to exactly the serial result, for both fault classes (memory
// faults corrupt per-replica weight buffers; computational faults
// install per-replica hooks).
TEST(CampaignParallel, CompFaultMatchesSerial) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp2Bit);
  cfg.keep_trial_records = true;
  cfg.threads = 1;
  const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  for (int threads : {2, 4}) {
    cfg.threads = threads;
    const auto parallel = eval::run_campaign_on(engine, f.world.vocab(),
                                                eval_set, spec, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical_results(serial, parallel);
  }
}

TEST(CampaignParallel, MemFaultMatchesSerial) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Mem2Bit);
  cfg.keep_trial_records = true;
  cfg.threads = 1;
  const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  cfg.threads = 4;
  const auto parallel = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
  expect_identical_results(serial, parallel);

  // The caller's engine (replica 0) must come back bit-identical too —
  // every worker restored its own weight flips.
  model::InferenceModel reference(f.weights, {});
  auto ref_layers = reference.linear_layers();
  auto layers = engine.linear_layers();
  ASSERT_EQ(layers.size(), ref_layers.size());
  for (size_t l = 0; l < layers.size(); ++l) {
    const auto& now = layers[l].weights->values();
    const auto& ref = ref_layers[l].weights->values();
    for (tn::Index i = 0; i < now.numel(); ++i) {
      ASSERT_EQ(num::f32_bits(now.flat()[i]), num::f32_bits(ref.flat()[i]));
    }
  }
}

// Detection and recovery keep the bit-identical parallel guarantee: the
// detector stack and retry state are per-trial, the profiles are shared
// read-only, so any thread count folds to the serial result.
TEST(CampaignParallel, DetectionRecoveryMatchesSerial) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto& eval_set = f.tasks.at(data::TaskKind::McFact).eval;
  for (auto fault :
       {core::FaultModel::Comp1Bit, core::FaultModel::Mem2Bit}) {
    auto cfg = small_campaign(fault);
    cfg.keep_trial_records = true;
    cfg.detection.range = true;
    cfg.detection.checksum = true;
    cfg.detection.recover = true;
    cfg.threads = 1;
    const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
    for (int threads : {2, 4}) {
      cfg.threads = threads;
      const auto parallel = eval::run_campaign_on(engine, f.world.vocab(),
                                                  eval_set, spec, cfg);
      SCOPED_TRACE("fault=" +
                   std::string(core::fault_model_name(fault)) +
                   " threads=" + std::to_string(threads));
      expect_identical_results(serial, parallel);
    }
  }
}

TEST(CampaignParallel, MoreThreadsThanTrialsWorks) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto& eval_set = f.tasks.at(data::TaskKind::McFact).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 3;
  cfg.threads = 16;  // clamped to the trial count
  const auto r = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  EXPECT_EQ(r.trials(), 3);
}

// Satellite regression: the Katz CI must consume the integer hit counts
// tracked at fold time, never a lround(mean * n) reconstruction. Here the
// accumulator state yields mean * n == 16.5, which lround drags up to 17
// — the old reconstruction — while the tracked count says 16.
TEST(Campaign, NormalizedUsesTrackedHitCounts) {
  eval::CampaignResult r;
  for (int i = 0; i < 33; ++i) r.faulty_metrics["accuracy"].add(0.5);
  for (int i = 0; i < 10; ++i) {
    r.baseline_metrics["accuracy"].add(i < 8 ? 1.0 : 0.0);
  }
  r.faulty_hits["accuracy"] = 16;
  r.baseline_hits["accuracy"] = 8;
  const auto norm = r.normalized("accuracy");
  const auto want = metrics::katz_ratio_ci(16, 33, 8, 10);
  const auto drifted = metrics::katz_ratio_ci(17, 33, 8, 10);
  EXPECT_EQ(norm.value, want.value);
  EXPECT_EQ(norm.lo, want.lo);
  EXPECT_EQ(norm.hi, want.hi);
  EXPECT_NE(norm.value, drifted.value);
}

TEST(Campaign, HitCountsMatchAccumulatedProportions) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto r = eval::run_campaign_on(
      engine, f.world.vocab(), f.tasks.at(data::TaskKind::McFact).eval,
      spec, small_campaign(core::FaultModel::Comp1Bit));
  // With exact 0/1 inputs the accumulator and the tracked counts agree;
  // both maps must be populated even when every value is 0.
  ASSERT_TRUE(r.baseline_hits.count("accuracy"));
  ASSERT_TRUE(r.faulty_hits.count("accuracy"));
  const auto& b = r.baseline_metrics.at("accuracy");
  const auto& ft = r.faulty_metrics.at("accuracy");
  EXPECT_EQ(r.baseline_hits.at("accuracy"),
            std::llround(b.mean() * b.n()));
  EXPECT_EQ(r.faulty_hits.at("accuracy"),
            std::llround(ft.mean() * ft.n()));
}

TEST(Campaign, HookClearedAfterCompCampaign) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  (void)eval::run_campaign_on(engine, f.world.vocab(), eval_set, spec,
                              small_campaign(core::FaultModel::Comp1Bit));
  EXPECT_EQ(engine.linear_hook(), nullptr);
}

TEST(Campaign, RejectsEmptyInputs) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  EXPECT_THROW(
      eval::run_campaign_on(engine, f.world.vocab(), {}, spec, cfg),
      std::invalid_argument);
}

// --- prefix-fork fast path (DESIGN.md §9) -------------------------------
// The contract: CampaignResult is bit-identical with the fork enabled vs
// disabled — the fork only skips passes whose outputs the baseline
// already produced. prefix_skipped_passes is the one field allowed to
// differ (a runtime diagnostic, like total_runtime_sec).

TEST(CampaignPrefixFork, ForkMatchesFullRecomputeAcrossFaultsAndThreads) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  for (auto fault : {core::FaultModel::Comp1Bit, core::FaultModel::Comp2Bit,
                     core::FaultModel::Mem2Bit}) {
    auto cfg = small_campaign(fault);
    cfg.keep_trial_records = true;
    cfg.threads = 1;
    cfg.prefix_fork = false;
    const auto reference = eval::run_campaign_on(engine, f.world.vocab(),
                                                 eval_set, spec, cfg);
    EXPECT_EQ(reference.prefix_skipped_passes, 0);
    cfg.prefix_fork = true;
    for (int threads : {1, 2, 4}) {
      cfg.threads = threads;
      const auto forked = eval::run_campaign_on(engine, f.world.vocab(),
                                                eval_set, spec, cfg);
      SCOPED_TRACE("fault=" + std::string(core::fault_model_name(fault)) +
                   " threads=" + std::to_string(threads));
      expect_identical_results(reference, forked);
      if (core::is_memory_fault(fault)) {
        // Persistent faults corrupt pass 0 onward: nothing to skip.
        EXPECT_EQ(forked.prefix_skipped_passes, 0);
      } else {
        // Trials with pass_index >= 1 exist in this campaign, so the
        // fast path must actually have skipped work.
        EXPECT_GT(forked.prefix_skipped_passes, 0);
      }
    }
  }
}

TEST(CampaignPrefixFork, BeamSearchFallsBackToFullRecompute) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.keep_trial_records = true;
  cfg.run.gen.num_beams = 2;
  cfg.prefix_fork = false;
  const auto reference = eval::run_campaign_on(engine, f.world.vocab(),
                                               eval_set, spec, cfg);
  cfg.prefix_fork = true;
  const auto forked = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  expect_identical_results(reference, forked);
  // Beams diverge from the greedy baseline trajectory: no snapshots are
  // built and no passes are skipped.
  EXPECT_EQ(forked.prefix_skipped_passes, 0);
}

TEST(CampaignPrefixFork, McOptionScoringForksAndMatches) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  const auto& eval_set = f.tasks.at(data::TaskKind::McFact).eval;
  auto cfg = small_campaign(core::FaultModel::Comp2Bit);
  cfg.keep_trial_records = true;
  cfg.prefix_fork = false;
  const auto reference = eval::run_campaign_on(engine, f.world.vocab(),
                                               eval_set, spec, cfg);
  cfg.prefix_fork = true;
  for (int threads : {1, 4}) {
    cfg.threads = threads;
    const auto forked = eval::run_campaign_on(engine, f.world.vocab(),
                                              eval_set, spec, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical_results(reference, forked);
    EXPECT_GT(forked.prefix_skipped_passes, 0);
  }
}

TEST(CampaignPrefixFork, DetectionDisablesFork) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.detection.range = true;
  cfg.detection.checksum = true;
  cfg.prefix_fork = true;
  const auto r = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  // Per-pass detector baselines must execute: nothing may be skipped.
  EXPECT_EQ(r.prefix_skipped_passes, 0);
}

// --- observability (DESIGN.md §11) --------------------------------------
// The obs contract: tracing, metrics, and the progress reporter watch
// the campaign without touching it. One reference run with every
// collector off must be reproduced byte-for-byte by obs-on runs across
// the whole execution matrix — threads x batch x prefix fork.

TEST(ObsParallel, CampaignIdenticalWithObsOnAcrossThreadsBatchFork) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  // Transient greedy campaign: eligible for both the prefix fork and the
  // batched serve driver, so every cell of the matrix takes its real path.
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 12;
  cfg.keep_trial_records = true;

  ASSERT_FALSE(obs::trace_enabled());
  ASSERT_FALSE(obs::metrics_enabled());
  ASSERT_FALSE(obs::recorder_enabled());
  const auto reference = eval::run_campaign_on(engine, f.world.vocab(),
                                               eval_set, spec, cfg);

  for (bool fork : {false, true}) {
    for (int batch : {1, 4}) {
      for (int threads : {1, 2, 4}) {
        cfg.prefix_fork = fork;
        cfg.batch = batch;
        cfg.threads = threads;
        cfg.progress = false;  // reporter exercised separately in test_obs
        obs::trace_start();
        obs::metrics_start();
        obs::recorder_clear();
        obs::recorder_start();
        const auto observed = eval::run_campaign_on(engine, f.world.vocab(),
                                                    eval_set, spec, cfg);
        obs::trace_stop();
        obs::metrics_stop();
        obs::recorder_stop();
        SCOPED_TRACE("fork=" + std::to_string(fork) +
                     " batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads));
        expect_identical_results(reference, observed);
        // The collectors actually collected: spans from every trial, the
        // per-trial outcome tallies, and one armed-injection recorder
        // event per trial, each stamped with its own trial id.
        EXPECT_GT(obs::trace_event_count(), 0u);
        EXPECT_EQ(obs::Registry::global().counter("campaign_trials_total")
                      .value(),
                  static_cast<std::uint64_t>(cfg.trials));
        int armed = 0;
        std::set<std::int32_t> armed_trials;
        for (const auto& e : obs::recorder_snapshot()) {
          if (e.type == obs::RecType::InjectArmed) {
            ++armed;
            armed_trials.insert(e.trial_id);
          }
        }
        EXPECT_EQ(armed, cfg.trials);
        EXPECT_EQ(armed_trials.size(), static_cast<std::size_t>(cfg.trials));
        obs::recorder_clear();
      }
    }
  }
  obs::trace_clear();
}

// DetectedUnrecovered postmortem (DESIGN.md §16): the flight recorder
// must yield the trial's full causal chain — armed plan, landed flip,
// detector trips, final unrecovered verdict — with pass indices that
// match the trial's FaultPlan, and the first anomaly must eagerly write
// the dump file.
TEST(Campaign, DetectedUnrecoveredTrialYieldsCausalRecorderTimeline) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  // Persistent weight corruption with recovery on but the weight screen
  // bound too loose to localize anything: the detector trips, the
  // rescreen finds no culprit, so the corrupted output stands and the
  // trial classifies DetectedUnrecovered — detection without repair.
  auto cfg = small_campaign(core::FaultModel::Mem2Bit);
  cfg.keep_trial_records = true;
  cfg.threads = 1;  // records[i] is trial i
  cfg.detection.range = true;
  cfg.detection.checksum = true;
  cfg.detection.recover = true;
  cfg.detection.screen_bound = 1e30f;  // screen never localizes the flip

  const std::string dump_path =
      ::testing::TempDir() + "campaign_anomaly_dump.json";
  // Whether a given seed's 24 trials include a detected-unrecoverable one
  // depends on where the sampled flips land, so scan a small fixed seed
  // range; the first hit is deterministic for a given model/workload.
  int trial = -1;
  eval::CampaignResult r;
  for (unsigned seed = 99; seed < 99 + 16 && trial < 0; ++seed) {
    cfg.seed = seed;
    std::remove(dump_path.c_str());
    obs::recorder_clear();
    obs::recorder_start();
    obs::recorder_set_dump_path(dump_path);
    r = eval::run_campaign_on(engine, f.world.vocab(), eval_set, spec, cfg);
    obs::recorder_stop();
    ASSERT_EQ(static_cast<int>(r.records.size()), cfg.trials);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      if (r.records[i].outcome == core::OutcomeClass::DetectedUnrecovered) {
        trial = static_cast<int>(i);
        break;
      }
    }
  }
  ASSERT_GE(trial, 0)
      << "no DetectedUnrecovered trial in any scanned campaign seed";
  const auto& rec = r.records[static_cast<std::size_t>(trial)];
  ASSERT_GT(rec.detections, 0);

  const auto events = obs::recorder_events_for_trial(trial);
  ASSERT_FALSE(events.empty());
  // Positions of each link in the chain, in merged (time, seq) order.
  int armed_at = -1, fired_at = -1, first_trip_at = -1, verdict_at = -1;
  std::int64_t verdict_clean = -1, verdict_trips = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    EXPECT_EQ(e.trial_id, trial);
    switch (e.type) {
      case obs::RecType::InjectArmed:
        armed_at = static_cast<int>(i);
        EXPECT_EQ(e.pass, rec.plan.pass_index);
        EXPECT_EQ(e.a0, static_cast<std::int64_t>(rec.plan.model));
        break;
      case obs::RecType::InjectFired:
        fired_at = static_cast<int>(i);
        // Lifetime corruption is not pass-scoped; the args name the
        // flipped weight element.
        EXPECT_EQ(e.pass, -1);
        EXPECT_EQ(e.a0, rec.plan.weight_row);
        EXPECT_EQ(e.a1, rec.plan.weight_col);
        break;
      case obs::RecType::DetectorTrip:
        if (first_trip_at < 0) first_trip_at = static_cast<int>(i);
        EXPECT_GE(e.pass, 0);
        break;
      case obs::RecType::DetectorVerdict:
        verdict_at = static_cast<int>(i);
        verdict_clean = e.a0;
        verdict_trips = e.a1;
        break;
      default:
        break;
    }
  }
  // The chain is present and causally ordered: armed -> fired -> first
  // trip -> last verdict, and the last verdict says unrecovered with at
  // least one trip observed.
  ASSERT_GE(armed_at, 0);
  ASSERT_GE(fired_at, 0);
  ASSERT_GE(first_trip_at, 0);
  ASSERT_GE(verdict_at, 0);
  EXPECT_LT(armed_at, fired_at);
  EXPECT_LT(fired_at, first_trip_at);
  EXPECT_LT(first_trip_at, verdict_at);
  EXPECT_EQ(verdict_clean, 0);
  EXPECT_GT(verdict_trips, 0);

  // The first anomalous trial eagerly wrote the dump file.
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "no anomaly dump at " << dump_path;
  std::stringstream buf;
  buf << dump.rdbuf();
  EXPECT_NE(buf.str().find("\"ring_capacity\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"inject_fired\""), std::string::npos);
  obs::recorder_clear();
  std::remove(dump_path.c_str());
}

// Serve stats are runtime diagnostics outside the determinism contract,
// but when the batched driver runs they must be populated and coherent.
TEST(Campaign, BatchedRunPopulatesServeStats) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 12;
  cfg.batch = 4;
  const auto r = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  ASSERT_TRUE(r.serve_stats.active);
  EXPECT_EQ(r.serve_stats.completed, static_cast<std::uint64_t>(cfg.trials));
  EXPECT_GT(r.serve_stats.decode_batches, 0u);
  EXPECT_GE(r.serve_stats.decode_rows, r.serve_stats.decode_batches);
  EXPECT_GT(r.serve_stats.mean_batch_occupancy(), 0.0);
  EXPECT_LE(r.serve_stats.mean_batch_occupancy(), 4.0);
  EXPECT_GE(r.serve_stats.max_active, 1);

  // The sequential loop leaves them inactive.
  cfg.batch = 1;
  const auto seq = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                         spec, cfg);
  EXPECT_FALSE(seq.serve_stats.active);
}

// --- paged KV cache (DESIGN.md §12) -------------------------------------
// The tentpole contract: kv_pages > 0 changes where cache rows live,
// never what they hold. One contiguous-oracle run must be reproduced
// byte-for-byte by paged runs across the whole execution matrix —
// threads x batch x prefix fork — where forks alias shared pages across
// worker threads and COW isolates every trial's writes.

TEST(CampaignParallelPaged, PagingIsByteIdenticalAcrossThreadsBatchFork) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 12;
  cfg.keep_trial_records = true;
  cfg.kv_pages = 0;  // the contiguous oracle
  const auto oracle = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  for (bool fork : {false, true}) {
    for (int batch : {1, 4}) {
      for (int threads : {1, 2, 4}) {
        cfg.prefix_fork = fork;
        cfg.batch = batch;
        cfg.threads = threads;
        cfg.kv_pages = 4096;  // ample: no clamp, no queue-when-dry
        const auto paged = eval::run_campaign_on(engine, f.world.vocab(),
                                                 eval_set, spec, cfg);
        SCOPED_TRACE("fork=" + std::to_string(fork) +
                     " batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads));
        expect_identical_results(oracle, paged);
      }
    }
  }
}

TEST(CampaignParallelPaged, ByteIdenticalWithFastKernelsEnabled) {
  // The paging/threads/batch identity matrix must hold at ANY pinned
  // kernel tier, not just the Reference default: the tier changes the
  // numbers a trial computes, but every execution shape at one tier must
  // still agree byte-for-byte. Pin the fastest tier this host has and
  // re-run a slice of the matrix against a same-tier oracle.
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  tn::ScopedKernelTier pin(tn::best_supported_tier());
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 12;
  cfg.keep_trial_records = true;
  cfg.kv_pages = 0;
  const auto oracle = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  for (int threads : {2, 4}) {
    cfg.prefix_fork = true;
    cfg.batch = 4;
    cfg.threads = threads;
    cfg.kv_pages = 4096;
    const auto paged = eval::run_campaign_on(engine, f.world.vocab(),
                                             eval_set, spec, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical_results(oracle, paged);
  }
}

TEST(CampaignParallelPaged, UndersizedBudgetClampsUpAndStaysIdentical) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::Comp1Bit);
  cfg.trials = 12;
  cfg.keep_trial_records = true;
  cfg.kv_pages = 0;
  const auto oracle = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  // 1 page cannot hold one sequence, let alone snapshots + workers: the
  // campaign must clamp the pool up (with a warning) rather than die of
  // exhaustion mid-trial — and still reproduce the oracle exactly.
  cfg.kv_pages = 1;
  cfg.threads = 2;
  const auto paged = eval::run_campaign_on(engine, f.world.vocab(),
                                           eval_set, spec, cfg);
  expect_identical_results(oracle, paged);
}

// --- kv-bit fault model --------------------------------------------------

TEST(Campaign, KvBitCampaignRunsEndToEnd) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::KvBit);
  cfg.keep_trial_records = true;
  const auto r = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  EXPECT_EQ(r.trials(), cfg.trials);
  ASSERT_EQ(r.records.size(), static_cast<size_t>(cfg.trials));
  for (const auto& rec : r.records) {
    // Sites are K/V cache planes, labeled through the projection that
    // produced them; the flip always lands at a decode pass (>= 1).
    EXPECT_TRUE(rec.plan.layer.kind == nn::LayerKind::KProj ||
                rec.plan.layer.kind == nn::LayerKind::VProj);
    EXPECT_EQ(rec.plan.layer_index, -1);
    EXPECT_GE(rec.plan.pass_index, 1);
    EXPECT_EQ(rec.plan.bits.size(), 1u);
  }
  // kv-bit trials are fork-eligible (the flip fires at the start of its
  // pass, after the forked prefix is in place).
  EXPECT_GT(r.prefix_skipped_passes, 0);
  // The cache hook never rides the engine's linear-hook slot.
  EXPECT_EQ(engine.linear_hook(), nullptr);
}

TEST(CampaignParallel, KvBitMatchesSerialAndPagedOracle) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::KvBit);
  cfg.keep_trial_records = true;
  cfg.threads = 1;
  const auto serial = eval::run_campaign_on(engine, f.world.vocab(),
                                            eval_set, spec, cfg);
  for (int threads : {2, 4}) {
    for (int kv_pages : {0, 4096}) {
      cfg.threads = threads;
      cfg.kv_pages = kv_pages;
      const auto parallel = eval::run_campaign_on(engine, f.world.vocab(),
                                                  eval_set, spec, cfg);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " kv_pages=" + std::to_string(kv_pages));
      expect_identical_results(serial, parallel);
    }
  }
}

TEST(Campaign, KvBitBatchedModeFallsBackToSequential) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::KvBit);
  cfg.keep_trial_records = true;
  const auto sequential = eval::run_campaign_on(engine, f.world.vocab(),
                                                eval_set, spec, cfg);
  // Batch rows never fire the per-pass cache hook, so kv-bit campaigns
  // must take the sequential fallback — and match it exactly.
  cfg.batch = 4;
  const auto batched = eval::run_campaign_on(engine, f.world.vocab(),
                                             eval_set, spec, cfg);
  EXPECT_FALSE(batched.serve_stats.active);
  expect_identical_results(sequential, batched);
}

TEST(Campaign, KvBitDetectionAndFlushRefillRecovery) {
  auto& f = fixture();
  model::InferenceModel engine(f.weights, {});
  const auto& spec = eval::workload(data::TaskKind::QA);
  const auto& eval_set = f.tasks.at(data::TaskKind::QA).eval;
  auto cfg = small_campaign(core::FaultModel::KvBit);
  cfg.keep_trial_records = true;
  cfg.detection.range = true;
  cfg.detection.checksum = true;
  cfg.detection.recover = true;
  const auto r = eval::run_campaign_on(engine, f.world.vocab(), eval_set,
                                       spec, cfg);
  EXPECT_EQ(r.trials(), cfg.trials);
  // Detection disables the prefix fork (per-pass detector baselines).
  EXPECT_EQ(r.prefix_skipped_passes, 0);
  // Flush-and-refill accounting: a detected trial reran from scratch, so
  // its recovery cost is a whole fresh inference; undetected trials keep
  // the base taxonomy.
  int detected = 0;
  for (const auto& rec : r.records) {
    if (rec.detections > 0) {
      ++detected;
      EXPECT_TRUE(rec.outcome == core::OutcomeClass::DetectedRecovered ||
                  rec.outcome == core::OutcomeClass::DetectedUnrecovered);
      EXPECT_GT(rec.recovery_passes, 0);
    } else {
      EXPECT_TRUE(rec.outcome == core::OutcomeClass::Masked ||
                  rec.outcome == core::OutcomeClass::SdcSubtle ||
                  rec.outcome == core::OutcomeClass::SdcDistorted);
      EXPECT_EQ(rec.recovery_passes, 0);
    }
  }
  EXPECT_EQ(r.trials_detected, detected);
  EXPECT_EQ(r.detected_recovered + r.detected_unrecovered, detected);
  // The single-shot injector must not refire on the rerun: a recovered
  // trial's output matched the fault-free baseline.
  // (Checksum ABFT is largely blind to KV corruption — it verifies each
  // linear against its own inputs, and a corrupted cache row is just
  // another input — so detections here come from the range detector.
  // Zero detections is a legitimate result on this small model.)
}

}  // namespace
}  // namespace llmfi
