// Observability subsystem tests (DESIGN.md §11): trace files must be
// valid JSON with well-nested B/E spans per thread, metrics exports are
// pinned by goldens in both formats, histogram quantiles follow the
// bucket-interpolation semantics, and the progress reporter stays
// monotone under concurrent add()s. The ObsParallel suite runs under
// ThreadSanitizer via the tsan_campaign target.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace llmfi {
namespace {

// --- minimal JSON validator ---------------------------------------------
// Recursive-descent syntax check — no DOM, just "is this parseable".
// Enough to guarantee chrome://tracing / Perfetto will load the file.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* kw) {
    const std::size_t len = std::char_traits<char>::length(kw);
    if (s_.compare(pos_, len, kw) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- trace event extraction ---------------------------------------------
// trace_write_json emits one event per line; pull the fields the nesting
// checks need with plain string scans.
struct Ev {
  std::string name;
  char ph = '?';
  long long ts = 0;
  int tid = 0;
};

std::string field(const std::string& line, const std::string& key) {
  const auto k = line.find("\"" + key + "\":");
  if (k == std::string::npos) return "";
  std::size_t v = k + key.size() + 3;
  std::size_t end = v;
  if (line[v] == '"') {
    ++v;
    end = line.find('"', v);
  } else {
    end = line.find_first_of(",}", v);
  }
  return line.substr(v, end - v);
}

std::vector<Ev> parse_events(const std::string& json) {
  std::vector<Ev> events;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    Ev e;
    e.name = field(line, "name");
    e.ph = field(line, "ph")[0];
    e.ts = std::atoll(field(line, "ts").c_str());
    e.tid = std::atoi(field(line, "tid").c_str());
    events.push_back(std::move(e));
  }
  return events;
}

// Every tid's B/E events must pair up like parentheses, and timestamps
// must be non-decreasing within a tid (per-thread order is preserved).
void expect_well_nested(const std::vector<Ev>& events) {
  std::map<int, int> depth;
  std::map<int, long long> last_ts;
  for (const auto& e : events) {
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, e.ts);
    }
    last_ts[e.tid] = e.ts;
    if (e.ph == 'B') {
      ++depth[e.tid];
    } else if (e.ph == 'E') {
      ASSERT_GT(depth[e.tid], 0) << "E without matching B on tid " << e.tid;
      --depth[e.tid];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
}

// --- tracer --------------------------------------------------------------

TEST(Trace, DisabledByDefaultRecordsNothing) {
  obs::trace_clear();
  ASSERT_FALSE(obs::trace_enabled());
  {
    obs::TraceScope s("phantom");
    obs::trace_instant("ghost", 7);
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, JsonIsValidAndSpansWellNested) {
  obs::trace_start();
  {
    obs::TraceScope outer("trial", 0);
    {
      obs::TraceScope inner("prefill");
      obs::trace_instant("detector_trip", 3);
    }
    obs::TraceScope tail("decode", 1);
  }
  obs::trace_stop();
  const std::string json = obs::trace_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;

  const auto events = parse_events(json);
  // trial B, prefill B, instant, prefill E, decode B, decode E, trial E.
  ASSERT_EQ(events.size(), 7u);
  expect_well_nested(events);
  EXPECT_EQ(events[0].name, "trial");
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[2].ph, 'i');
  EXPECT_EQ(events[2].name, "detector_trip");
  obs::trace_clear();
}

TEST(Trace, ClearDropsBufferedEvents) {
  obs::trace_start();
  { obs::TraceScope s("span"); }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  obs::trace_clear();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  obs::trace_stop();
}

TEST(ObsParallel, ThreadedSpansStayWellNestedPerTid) {
  obs::trace_start();
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        obs::TraceScope trial("trial", i);
        {
          obs::TraceScope attn("attn", i);
          obs::trace_instant("retire", i);
        }
        obs::trace_flush_thread();  // mid-stream flush, as campaigns do
      }
      obs::trace_flush_thread();
    });
  }
  for (auto& w : workers) w.join();
  obs::trace_stop();

  const std::string json = obs::trace_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  const auto events = parse_events(json);
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kIters * 5);
  expect_well_nested(events);
  std::map<int, int> per_tid;
  for (const auto& e : events) ++per_tid[e.tid];
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  obs::trace_clear();
}

// --- metrics -------------------------------------------------------------

TEST(Metrics, DisabledShorthandsAreNoOps) {
  obs::metrics_start();
  obs::metrics_stop();  // registry now empty and disabled
  obs::count("ghost_total");
  obs::gauge_set("ghost_gauge", 1.0);
  obs::observe("ghost_us", {1, 2}, 1.5);
  EXPECT_EQ(obs::Registry::global().json(), "{\n\n}\n");
}

TEST(Metrics, GoldenJsonExport) {
  obs::metrics_start();
  obs::count("campaign_trials_total", 3);
  obs::gauge_set("campaign_runtime_sec", 1.5);
  // Labeled name: the embedded quotes must come out escaped in the key.
  obs::count("outcome_total{outcome=\"masked\"}", 2);
  obs::observe("lat_us", {10, 20, 50}, 5);
  obs::observe("lat_us", {10, 20, 50}, 15);
  obs::observe("lat_us", {10, 20, 50}, 100);
  obs::metrics_stop();

  const std::string json = obs::Registry::global().json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_EQ(json,
            "{\n"
            "  \"campaign_runtime_sec\": 1.5,\n"
            "  \"campaign_trials_total\": 3,\n"
            "  \"lat_us\": {\"count\": 3, \"sum\": 120, \"mean\": 40, "
            "\"p50\": 15, \"p95\": 50, \"p99\": 50, \"buckets\": "
            "[{\"le\": \"10\", \"n\": 1}, {\"le\": \"20\", \"n\": 1}, "
            "{\"le\": \"50\", \"n\": 0}, {\"le\": \"+Inf\", \"n\": 1}]},\n"
            "  \"outcome_total{outcome=\\\"masked\\\"}\": 2\n"
            "}\n");
}

TEST(Metrics, GoldenPrometheusExport) {
  obs::metrics_start();
  obs::count("outcome_total{outcome=\"masked\"}", 2);
  obs::observe("lat_us", {10, 20}, 5);
  obs::observe("lat_us", {10, 20}, 15);
  obs::observe("lat_us", {10, 20}, 30);
  obs::metrics_stop();

  // Histogram buckets are cumulative; the name-embedded label block is
  // carried through and merged with `le`.
  EXPECT_EQ(obs::Registry::global().prometheus(),
            "lat_us_bucket{le=\"10\"} 1\n"
            "lat_us_bucket{le=\"20\"} 2\n"
            "lat_us_bucket{le=\"+Inf\"} 3\n"
            "lat_us_sum 50\n"
            "lat_us_count 3\n"
            "outcome_total{outcome=\"masked\"} 2\n");
}

TEST(Metrics, HistogramQuantilesInterpolate) {
  obs::Histogram h({10.0, 20.0, 50.0});
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // all in (10, 20]
  // rank = q * 10 lands inside the (10, 20] bucket; interpolation maps
  // the in-bucket fraction linearly onto the bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  h.observe(1000.0);  // +inf bucket has no upper edge: reports lower edge
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_DOUBLE_EQ(h.mean(), (10 * 15.0 + 1000.0) / 11.0);
}

TEST(ObsParallel, CountersAggregateAcrossThreads) {
  obs::metrics_start();
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        obs::count("par_total");
        obs::observe("par_us", {10, 100}, static_cast<double>(i % 200));
      }
    });
  }
  for (auto& w : workers) w.join();
  obs::metrics_stop();
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("par_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("par_us", {10, 100}).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- progress ------------------------------------------------------------

// Pull "<done>/<total>" out of a progress line: digits immediately
// before the first '/'.
std::uint64_t parse_done(const std::string& line) {
  const auto slash = line.find('/');
  EXPECT_NE(slash, std::string::npos) << line;
  std::size_t start = slash;
  while (start > 0 &&
         std::isdigit(static_cast<unsigned char>(line[start - 1]))) {
    --start;
  }
  return std::strtoull(line.substr(start, slash - start).c_str(), nullptr,
                       10);
}

TEST(Progress, FinalLineReportsEveryItemAndTally) {
  std::vector<std::string> lines;
  {
    obs::ProgressReporter rep("unit", 6, {"ok", "bad"},
                              /*interval_sec=*/3600.0,
                              [&](const std::string& s) {
                                lines.push_back(s);
                              });
    for (int i = 0; i < 6; ++i) rep.add(static_cast<std::size_t>(i % 2));
    rep.finish();
    rep.finish();  // idempotent; destructor must not emit again either
  }
  ASSERT_EQ(lines.size(), 1u);  // interval never elapsed: final line only
  EXPECT_NE(lines[0].find("done: 6/6"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("ok 3"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("bad 3"), std::string::npos) << lines[0];
}

TEST(ObsParallel, ProgressCountsMonotoneUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::string> lines;  // sink calls are serialized by emit_mu_
  {
    obs::ProgressReporter rep(
        "par", static_cast<std::uint64_t>(kThreads) * kIters,
        {"a", "b", "c"}, /*interval_sec=*/0.0,
        [&](const std::string& s) { lines.push_back(s); });
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&rep] {
        for (int i = 0; i < kIters; ++i) {
          rep.add(static_cast<std::size_t>(i % 3));
        }
      });
    }
    for (auto& w : workers) w.join();
    rep.finish();
  }
  ASSERT_GE(lines.size(), 2u);
  std::uint64_t prev = 0;
  for (const auto& line : lines) {
    const std::uint64_t done = parse_done(line);
    EXPECT_GE(done, prev) << line;
    prev = done;
  }
  EXPECT_EQ(prev, static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- env knobs / file outputs -------------------------------------------

TEST(Obs, EnvKnobsArmCollectorsAndWriteFiles) {
  const std::string trace_path = ::testing::TempDir() + "obs_trace.json";
  const std::string prom_path = ::testing::TempDir() + "obs_metrics.prom";
  setenv("LLMFI_TRACE", trace_path.c_str(), 1);
  setenv("LLMFI_METRICS", prom_path.c_str(), 1);
  const obs::EnvConfig cfg = obs::init_from_env();
  unsetenv("LLMFI_TRACE");
  unsetenv("LLMFI_METRICS");
  ASSERT_TRUE(cfg.trace_path.has_value());
  ASSERT_TRUE(cfg.metrics_path.has_value());
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_TRUE(obs::metrics_enabled());

  { obs::TraceScope s("env_span", 1); }
  obs::count("env_total", 4);
  obs::trace_stop();
  obs::metrics_stop();
  EXPECT_TRUE(obs::write_outputs(cfg));

  std::ifstream tf(trace_path);
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  EXPECT_TRUE(JsonValidator(tbuf.str()).valid());
  expect_well_nested(parse_events(tbuf.str()));

  std::ifstream mf(prom_path);
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  EXPECT_NE(mbuf.str().find("env_total 4"), std::string::npos)
      << mbuf.str();
  obs::trace_clear();
  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(Obs, ProgressEnvOverridesFallback) {
  unsetenv("LLMFI_PROGRESS");
  EXPECT_FALSE(obs::progress_from_env(false));
  EXPECT_TRUE(obs::progress_from_env(true));
  setenv("LLMFI_PROGRESS", "0", 1);
  EXPECT_FALSE(obs::progress_from_env(true));
  setenv("LLMFI_PROGRESS", "1", 1);
  EXPECT_TRUE(obs::progress_from_env(false));
  unsetenv("LLMFI_PROGRESS");
}

}  // namespace
}  // namespace llmfi
