// Observability subsystem tests (DESIGN.md §11): trace files must be
// valid JSON with well-nested B/E spans per thread, metrics exports are
// pinned by goldens in both formats, histogram quantiles follow the
// bucket-interpolation semantics, and the progress reporter stays
// monotone under concurrent add()s. The ObsParallel suite runs under
// ThreadSanitizer via the tsan_campaign target.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "obs/slo.h"

namespace llmfi {
namespace {

// --- minimal JSON validator ---------------------------------------------
// Recursive-descent syntax check — no DOM, just "is this parseable".
// Enough to guarantee chrome://tracing / Perfetto will load the file.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* kw) {
    const std::size_t len = std::char_traits<char>::length(kw);
    if (s_.compare(pos_, len, kw) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- trace event extraction ---------------------------------------------
// trace_write_json emits one event per line; pull the fields the nesting
// checks need with plain string scans.
struct Ev {
  std::string name;
  char ph = '?';
  long long ts = 0;
  int tid = 0;
};

std::string field(const std::string& line, const std::string& key) {
  const auto k = line.find("\"" + key + "\":");
  if (k == std::string::npos) return "";
  std::size_t v = k + key.size() + 3;
  std::size_t end = v;
  if (line[v] == '"') {
    ++v;
    end = line.find('"', v);
  } else {
    end = line.find_first_of(",}", v);
  }
  return line.substr(v, end - v);
}

std::vector<Ev> parse_events(const std::string& json) {
  std::vector<Ev> events;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    Ev e;
    e.name = field(line, "name");
    e.ph = field(line, "ph")[0];
    e.ts = std::atoll(field(line, "ts").c_str());
    e.tid = std::atoi(field(line, "tid").c_str());
    events.push_back(std::move(e));
  }
  return events;
}

// Every tid's B/E events must pair up like parentheses, and timestamps
// must be non-decreasing within a tid (per-thread order is preserved).
void expect_well_nested(const std::vector<Ev>& events) {
  std::map<int, int> depth;
  std::map<int, long long> last_ts;
  for (const auto& e : events) {
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, e.ts);
    }
    last_ts[e.tid] = e.ts;
    if (e.ph == 'B') {
      ++depth[e.tid];
    } else if (e.ph == 'E') {
      ASSERT_GT(depth[e.tid], 0) << "E without matching B on tid " << e.tid;
      --depth[e.tid];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
}

// --- tracer --------------------------------------------------------------

TEST(Trace, DisabledByDefaultRecordsNothing) {
  obs::trace_clear();
  ASSERT_FALSE(obs::trace_enabled());
  {
    obs::TraceScope s("phantom");
    obs::trace_instant("ghost", 7);
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, JsonIsValidAndSpansWellNested) {
  obs::trace_start();
  {
    obs::TraceScope outer("trial", 0);
    {
      obs::TraceScope inner("prefill");
      obs::trace_instant("detector_trip", 3);
    }
    obs::TraceScope tail("decode", 1);
  }
  obs::trace_stop();
  const std::string json = obs::trace_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;

  const auto events = parse_events(json);
  // trial B, prefill B, instant, prefill E, decode B, decode E, trial E.
  ASSERT_EQ(events.size(), 7u);
  expect_well_nested(events);
  EXPECT_EQ(events[0].name, "trial");
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[2].ph, 'i');
  EXPECT_EQ(events[2].name, "detector_trip");
  obs::trace_clear();
}

TEST(Trace, ClearDropsBufferedEvents) {
  obs::trace_start();
  { obs::TraceScope s("span"); }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  obs::trace_clear();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  obs::trace_stop();
}

TEST(ObsParallel, ThreadedSpansStayWellNestedPerTid) {
  obs::trace_start();
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        obs::TraceScope trial("trial", i);
        {
          obs::TraceScope attn("attn", i);
          obs::trace_instant("retire", i);
        }
        obs::trace_flush_thread();  // mid-stream flush, as campaigns do
      }
      obs::trace_flush_thread();
    });
  }
  for (auto& w : workers) w.join();
  obs::trace_stop();

  const std::string json = obs::trace_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  const auto events = parse_events(json);
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kIters * 5);
  expect_well_nested(events);
  std::map<int, int> per_tid;
  for (const auto& e : events) ++per_tid[e.tid];
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  obs::trace_clear();
}

// --- metrics -------------------------------------------------------------

TEST(Metrics, DisabledShorthandsAreNoOps) {
  obs::metrics_start();
  obs::metrics_stop();  // registry now empty and disabled
  obs::count("ghost_total");
  obs::gauge_set("ghost_gauge", 1.0);
  obs::observe("ghost_us", {1, 2}, 1.5);
  EXPECT_EQ(obs::Registry::global().json(), "{\n\n}\n");
}

TEST(Metrics, GoldenJsonExport) {
  obs::metrics_start();
  obs::count("campaign_trials_total", 3);
  obs::gauge_set("campaign_runtime_sec", 1.5);
  // Labeled name: the embedded quotes must come out escaped in the key.
  obs::count("outcome_total{outcome=\"masked\"}", 2);
  obs::observe("lat_us", {10, 20, 50}, 5);
  obs::observe("lat_us", {10, 20, 50}, 15);
  obs::observe("lat_us", {10, 20, 50}, 100);
  obs::metrics_stop();

  const std::string json = obs::Registry::global().json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_EQ(json,
            "{\n"
            "  \"campaign_runtime_sec\": 1.5,\n"
            "  \"campaign_trials_total\": 3,\n"
            "  \"lat_us\": {\"count\": 3, \"sum\": 120, \"mean\": 40, "
            "\"p50\": 15, \"p95\": 50, \"p99\": 50, \"buckets\": "
            "[{\"le\": \"10\", \"n\": 1}, {\"le\": \"20\", \"n\": 1}, "
            "{\"le\": \"50\", \"n\": 0}, {\"le\": \"+Inf\", \"n\": 1}]},\n"
            "  \"outcome_total{outcome=\\\"masked\\\"}\": 2\n"
            "}\n");
}

TEST(Metrics, GoldenPrometheusExport) {
  obs::metrics_start();
  obs::count("outcome_total{outcome=\"masked\"}", 2);
  obs::observe("lat_us", {10, 20}, 5);
  obs::observe("lat_us", {10, 20}, 15);
  obs::observe("lat_us", {10, 20}, 30);
  obs::metrics_stop();

  // Histogram buckets are cumulative; the name-embedded label block is
  // carried through and merged with `le`.
  EXPECT_EQ(obs::Registry::global().prometheus(),
            "lat_us_bucket{le=\"10\"} 1\n"
            "lat_us_bucket{le=\"20\"} 2\n"
            "lat_us_bucket{le=\"+Inf\"} 3\n"
            "lat_us_sum 50\n"
            "lat_us_count 3\n"
            "outcome_total{outcome=\"masked\"} 2\n");
}

TEST(Metrics, HistogramQuantilesInterpolate) {
  obs::Histogram h({10.0, 20.0, 50.0});
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // all in (10, 20]
  // rank = q * 10 lands inside the (10, 20] bucket; interpolation maps
  // the in-bucket fraction linearly onto the bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  h.observe(1000.0);  // +inf bucket has no upper edge: reports lower edge
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_DOUBLE_EQ(h.mean(), (10 * 15.0 + 1000.0) / 11.0);
}

TEST(ObsParallel, CountersAggregateAcrossThreads) {
  obs::metrics_start();
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        obs::count("par_total");
        obs::observe("par_us", {10, 100}, static_cast<double>(i % 200));
      }
    });
  }
  for (auto& w : workers) w.join();
  obs::metrics_stop();
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("par_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("par_us", {10, 100}).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- progress ------------------------------------------------------------

// Pull "<done>/<total>" out of a progress line: digits immediately
// before the first '/'.
std::uint64_t parse_done(const std::string& line) {
  const auto slash = line.find('/');
  EXPECT_NE(slash, std::string::npos) << line;
  std::size_t start = slash;
  while (start > 0 &&
         std::isdigit(static_cast<unsigned char>(line[start - 1]))) {
    --start;
  }
  return std::strtoull(line.substr(start, slash - start).c_str(), nullptr,
                       10);
}

TEST(Progress, FinalLineReportsEveryItemAndTally) {
  std::vector<std::string> lines;
  {
    obs::ProgressReporter rep("unit", 6, {"ok", "bad"},
                              /*interval_sec=*/3600.0,
                              [&](const std::string& s) {
                                lines.push_back(s);
                              });
    for (int i = 0; i < 6; ++i) rep.add(static_cast<std::size_t>(i % 2));
    rep.finish();
    rep.finish();  // idempotent; destructor must not emit again either
  }
  ASSERT_EQ(lines.size(), 1u);  // interval never elapsed: final line only
  EXPECT_NE(lines[0].find("done: 6/6"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("ok 3"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("bad 3"), std::string::npos) << lines[0];
}

TEST(ObsParallel, ProgressCountsMonotoneUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::string> lines;  // sink calls are serialized by emit_mu_
  {
    obs::ProgressReporter rep(
        "par", static_cast<std::uint64_t>(kThreads) * kIters,
        {"a", "b", "c"}, /*interval_sec=*/0.0,
        [&](const std::string& s) { lines.push_back(s); });
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&rep] {
        for (int i = 0; i < kIters; ++i) {
          rep.add(static_cast<std::size_t>(i % 3));
        }
      });
    }
    for (auto& w : workers) w.join();
    rep.finish();
  }
  ASSERT_GE(lines.size(), 2u);
  std::uint64_t prev = 0;
  for (const auto& line : lines) {
    const std::uint64_t done = parse_done(line);
    EXPECT_GE(done, prev) << line;
    prev = done;
  }
  EXPECT_EQ(prev, static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- env knobs / file outputs -------------------------------------------

TEST(Obs, EnvKnobsArmCollectorsAndWriteFiles) {
  const std::string trace_path = ::testing::TempDir() + "obs_trace.json";
  const std::string prom_path = ::testing::TempDir() + "obs_metrics.prom";
  setenv("LLMFI_TRACE", trace_path.c_str(), 1);
  setenv("LLMFI_METRICS", prom_path.c_str(), 1);
  const obs::EnvConfig cfg = obs::init_from_env();
  unsetenv("LLMFI_TRACE");
  unsetenv("LLMFI_METRICS");
  ASSERT_TRUE(cfg.trace_path.has_value());
  ASSERT_TRUE(cfg.metrics_path.has_value());
  EXPECT_TRUE(obs::trace_enabled());
  EXPECT_TRUE(obs::metrics_enabled());

  { obs::TraceScope s("env_span", 1); }
  obs::count("env_total", 4);
  obs::trace_stop();
  obs::metrics_stop();
  EXPECT_TRUE(obs::write_outputs(cfg));

  std::ifstream tf(trace_path);
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  EXPECT_TRUE(JsonValidator(tbuf.str()).valid());
  expect_well_nested(parse_events(tbuf.str()));

  std::ifstream mf(prom_path);
  std::stringstream mbuf;
  mbuf << mf.rdbuf();
  EXPECT_NE(mbuf.str().find("env_total 4"), std::string::npos)
      << mbuf.str();
  obs::trace_clear();
  std::remove(trace_path.c_str());
  std::remove(prom_path.c_str());
}

// --- histogram bounds overrides (DESIGN.md §16) --------------------------

TEST(Metrics, HistogramBoundsOverrideRebindsEmptyAndWinsRegistration) {
  obs::metrics_start();
  auto& reg = obs::Registry::global();
  // Pre-registration override: the caller's default layout loses.
  reg.set_histogram_bounds("ovr_pre_us", {1.0, 2.0, 3.0});
  auto& pre = reg.histogram("ovr_pre_us", obs::latency_us_buckets());
  EXPECT_EQ(pre.bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Post-registration override on an empty histogram rebinds in place —
  // the handle callers already hold sees the new layout.
  auto& post = reg.histogram("ovr_post_us", {10.0, 20.0});
  reg.set_histogram_bounds("ovr_post_us", {5.0, 50.0, 500.0});
  EXPECT_EQ(post.bounds(), (std::vector<double>{5.0, 50.0, 500.0}));
  EXPECT_EQ(post.n_buckets(), 4u);
  // A populated histogram keeps its data and layout.
  auto& full = reg.histogram("ovr_full_us", {10.0, 20.0});
  full.observe(15.0);
  reg.set_histogram_bounds("ovr_full_us", {1.0});
  EXPECT_EQ(full.bounds(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(full.count(), 1u);
  obs::metrics_stop();
  // Overrides survive reset() so tools can install them before
  // metrics_start(); the next registration under the same name still
  // gets the override layout.
  obs::metrics_start();
  auto& again = reg.histogram("ovr_pre_us", obs::latency_us_buckets());
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  obs::metrics_stop();
}

TEST(Metrics, ServeLatencyBucketLayoutCoversSubMsToMinute) {
  const auto& b = obs::serve_latency_us_buckets();
  ASSERT_GE(b.size(), 30u);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "bounds must be strictly ascending";
    // Geometric-ish spacing: no step larger than 2.5x, so quantile
    // interpolation error stays bounded across the whole range.
    EXPECT_LE(b[i] / b[i - 1], 2.5 + 1e-9);
  }
  EXPECT_LE(b.front(), 10.0);  // resolves loopback microbenchmark TTFTs
  EXPECT_GE(b.back(), 60e6);   // resolves multi-second stalls out to 60s
  int sub_ms = 0;
  for (double x : b) sub_ms += x < 1000.0 ? 1 : 0;
  EXPECT_GE(sub_ms, 8) << "needs sub-millisecond resolution";
}

// --- request context -----------------------------------------------------

TEST(Context, ScopeStackPushPopRestores) {
  EXPECT_FALSE(obs::current_context().valid());
  obs::RequestContext outer;
  outer.trace_id = 11;
  outer.request_id = 22;
  outer.trial_id = 3;
  {
    obs::ContextScope a(outer);
    EXPECT_EQ(obs::current_context().request_id, 22u);
    obs::RequestContext inner;
    inner.request_id = 33;
    {
      obs::ContextScope b(inner);
      EXPECT_EQ(obs::current_context().request_id, 33u);
      EXPECT_EQ(obs::current_context().trial_id, -1);
    }
    EXPECT_EQ(obs::current_context().request_id, 22u);
    EXPECT_EQ(obs::current_context().trial_id, 3);
  }
  EXPECT_FALSE(obs::current_context().valid());
}

TEST(Context, OverflowBeyondFixedDepthDegradesGracefully) {
  std::vector<std::unique_ptr<obs::ContextScope>> scopes;
  for (int i = 1; i <= 12; ++i) {  // depth cap is 8
    obs::RequestContext ctx;
    ctx.request_id = static_cast<std::uint64_t>(i);
    scopes.push_back(std::make_unique<obs::ContextScope>(ctx));
  }
  // Pushes beyond the cap are ignored: the deepest retained entry wins.
  EXPECT_EQ(obs::current_context().request_id, 8u);
  scopes.clear();  // pops unwind without corruption
  EXPECT_FALSE(obs::current_context().valid());
}

TEST(Context, RowTableAttributesPerRow) {
  obs::RequestContext rows[3];
  for (int i = 0; i < 3; ++i) {
    rows[i].request_id = static_cast<std::uint64_t>(100 + i);
  }
  {
    obs::RowContextGuard guard(rows, 3);
    {
      obs::RowContextScope r1(1);
      EXPECT_EQ(obs::current_context().request_id, 101u);
    }
    EXPECT_FALSE(obs::current_context().valid());
    {
      obs::RowContextScope oob(7);  // out of range: no-op
      EXPECT_FALSE(obs::current_context().valid());
    }
  }
  // No table registered (single-sequence generate): no-op.
  obs::RowContextScope r0(0);
  EXPECT_FALSE(obs::current_context().valid());
}

// --- fault flight recorder -----------------------------------------------

TEST(Recorder, DisabledRecordsNothing) {
  obs::recorder_clear();
  ASSERT_FALSE(obs::recorder_enabled());
  obs::record_event(obs::RecType::InjectFired, 1, 2, 3);
  EXPECT_TRUE(obs::recorder_snapshot().empty());
}

TEST(Recorder, RingWraparoundKeepsNewestEvents) {
  obs::recorder_clear();
  obs::recorder_start(32);
  // Fresh thread -> fresh ring at the just-set capacity.
  std::thread writer([] {
    obs::RequestContext ctx;
    ctx.request_id = 9001;
    obs::ContextScope scope(ctx);
    for (int i = 0; i < 100; ++i) {
      obs::record_event(obs::RecType::KvCow, /*pass=*/i, /*a0=*/i);
    }
  });
  writer.join();
  obs::recorder_stop();
  const auto events = obs::recorder_events_for_request(9001);
  ASSERT_EQ(events.size(), 32u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest 68 events were overwritten; the survivors are 68..99 in
    // per-thread sequence order with contiguous indexes.
    EXPECT_EQ(events[i].a0, 68 + static_cast<std::int64_t>(i));
    EXPECT_EQ(events[i].index, 68 + i);
    EXPECT_EQ(events[i].type, obs::RecType::KvCow);
  }
  obs::recorder_clear();
}

TEST(Recorder, PerThreadMergeIsDeterministicAndStampsContext) {
  obs::recorder_clear();
  obs::recorder_start(1024);
  constexpr int kThreads = 4;
  constexpr int kEvents = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      obs::RequestContext ctx;
      ctx.trace_id = 7;
      ctx.request_id = static_cast<std::uint64_t>(1000 + t);
      ctx.trial_id = t;
      obs::ContextScope scope(ctx);
      for (int i = 0; i < kEvents; ++i) {
        obs::record_event(obs::RecType::DetectorTrip, i, 2 * i, t);
      }
    });
  }
  for (auto& w : workers) w.join();
  obs::recorder_stop();

  for (int t = 0; t < kThreads; ++t) {
    const auto per_req = obs::recorder_events_for_request(
        static_cast<std::uint64_t>(1000 + t));
    ASSERT_EQ(per_req.size(), static_cast<std::size_t>(kEvents)) << t;
    for (int i = 0; i < kEvents; ++i) {
      const auto& e = per_req[static_cast<std::size_t>(i)];
      EXPECT_EQ(e.index, static_cast<std::uint64_t>(i));
      EXPECT_EQ(e.pass, i);
      EXPECT_EQ(e.a0, 2 * i);
      EXPECT_EQ(e.trace_id, 7u);
      EXPECT_EQ(e.trial_id, t);
    }
    EXPECT_EQ(obs::recorder_events_for_trial(t).size(),
              static_cast<std::size_t>(kEvents));
  }
  // Merged snapshot: totally ordered by (ts, tid, index) — per-thread
  // sequences never interleave out of order.
  const auto all = obs::recorder_snapshot();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kEvents);
  std::map<int, std::uint64_t> next_index;
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].ts_us, all[i].ts_us);
  }
  for (const auto& e : all) {
    auto it = next_index.find(e.tid);
    if (it != next_index.end()) {
      EXPECT_EQ(e.index, it->second);
    }
    next_index[e.tid] = e.index + 1;
  }
  obs::recorder_clear();
}

TEST(Recorder, JsonDumpAndRequestTimeline) {
  obs::recorder_clear();
  obs::recorder_start(64);
  {
    obs::RequestContext ctx;
    ctx.request_id = 77;
    obs::ContextScope scope(ctx);
    obs::record_event(obs::RecType::InjectArmed, 5, 0, 2);
    obs::record_event(obs::RecType::DetectorTrip, 5, 1, 2);
    obs::record_event(obs::RecType::DetectorVerdict, -1, 0, 1);
  }
  {
    obs::RequestContext ctx;
    ctx.request_id = 78;
    obs::ContextScope scope(ctx);
    obs::record_event(obs::RecType::KvFork, 0, 12);
  }
  obs::recorder_stop();

  const std::string dump = obs::recorder_json();
  EXPECT_TRUE(JsonValidator(dump).valid()) << dump;
  EXPECT_NE(dump.find("\"inject_armed\""), std::string::npos);
  EXPECT_NE(dump.find("\"kv_fork\""), std::string::npos);

  const auto timeline = obs::recorder_request_timeline_json(77);
  ASSERT_TRUE(timeline.has_value());
  EXPECT_TRUE(JsonValidator(*timeline).valid()) << *timeline;
  EXPECT_NE(timeline->find("\"request_id\":77"), std::string::npos);
  EXPECT_NE(timeline->find("\"detector_verdict\""), std::string::npos);
  EXPECT_EQ(timeline->find("\"kv_fork\""), std::string::npos)
      << "other requests' events must not leak into the timeline";
  EXPECT_FALSE(obs::recorder_request_timeline_json(79).has_value());
  obs::recorder_clear();
}

TEST(Recorder, AnomalyDumpFirstWinsUntilCleared) {
  const std::string path = ::testing::TempDir() + "recorder_anomaly.json";
  std::remove(path.c_str());
  obs::recorder_clear();
  obs::recorder_start(64);
  obs::recorder_set_dump_path(path);
  {
    obs::RequestContext ctx;
    ctx.trial_id = 3;
    obs::ContextScope scope(ctx);
    obs::record_event(obs::RecType::Nonfinite, 4);
  }
  obs::recorder_note_anomaly(3);
  {
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_TRUE(JsonValidator(buf.str()).valid()) << buf.str();
    EXPECT_NE(buf.str().find("\"nonfinite\""), std::string::npos);
  }
  // First anomaly wins: later anomalies in the same run must not
  // overwrite the interesting dump.
  std::remove(path.c_str());
  obs::recorder_note_anomaly(4);
  EXPECT_FALSE(std::ifstream(path).good());
  // clear() re-arms the latch for the next campaign.
  obs::recorder_clear();
  obs::recorder_note_anomaly(5);
  EXPECT_TRUE(std::ifstream(path).good());
  obs::recorder_stop();
  obs::recorder_clear();
  std::remove(path.c_str());
}

TEST(ObsParallel, RecorderDumpWhileWriting) {
  obs::recorder_clear();
  obs::recorder_start(256);
  constexpr int kThreads = 4;
  constexpr int kEvents = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      obs::RequestContext ctx;
      ctx.request_id = static_cast<std::uint64_t>(100 + t);
      obs::ContextScope scope(ctx);
      for (int i = 0; i < kEvents; ++i) {
        obs::record_event(obs::RecType::InjectFired, i, i, i);
      }
    });
  }
  // Dump concurrently with the writers: torn or mid-write slots are
  // skipped, everything returned must be internally consistent.
  for (int round = 0; round < 25; ++round) {
    for (const auto& e : obs::recorder_snapshot()) {
      EXPECT_NE(e.type, obs::RecType::None);
      EXPECT_EQ(e.pass, e.a0);
    }
    EXPECT_TRUE(JsonValidator(obs::recorder_json()).valid());
  }
  for (auto& w : workers) w.join();
  obs::recorder_stop();
  // Quiesced: each writer's ring holds exactly its newest `capacity`
  // events regardless of how many dumps raced with it.
  for (int t = 0; t < kThreads; ++t) {
    const auto events = obs::recorder_events_for_request(
        static_cast<std::uint64_t>(100 + t));
    ASSERT_EQ(events.size(), 256u) << t;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].a0,
                kEvents - 256 + static_cast<std::int64_t>(i));
    }
  }
  obs::recorder_clear();
}

TEST(Recorder, ForkedChildFatalSignalDumpSmoke) {
  const std::string path = ::testing::TempDir() + "recorder_fatal.json";
  std::remove(path.c_str());
  obs::recorder_clear();
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: arm the recorder and the fatal handler, record one
    // recognizable event, then die the way a wild fault would. The
    // handler must get the dump out with only async-signal-safe calls.
    obs::install_fatal_dump_handler(path.c_str());
    obs::recorder_start(64);
    obs::RequestContext ctx;
    ctx.request_id = 4242;
    obs::ContextScope scope(ctx);
    obs::record_event(obs::RecType::InjectFired, 3, 1, 2);
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "fatal handler wrote no dump";
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_TRUE(JsonValidator(buf.str()).valid()) << buf.str();
  EXPECT_NE(buf.str().find("\"request\":4242"), std::string::npos)
      << buf.str();
  EXPECT_NE(buf.str().find("\"inject_fired\""), std::string::npos);
  std::remove(path.c_str());
}

// --- SLO window monitor --------------------------------------------------

TEST(Slo, WindowsAndBurnRateFollowDefinition) {
  obs::SloMonitor m;
  m.configure({100.0, 50.0, 0.9});
  const std::uint64_t now = 5000ull * 1000000ull;
  for (int i = 0; i < 8; ++i) m.record_ttft(now, 50.0);   // within SLO
  for (int i = 0; i < 2; ++i) m.record_ttft(now, 500.0);  // violations
  const auto snap = m.snapshot(now);
  EXPECT_EQ(snap.ttft_1s.total, 10u);
  EXPECT_DOUBLE_EQ(snap.ttft_1s.attainment, 0.8);
  // burn = (1 - attainment) / (1 - objective) = 0.2 / 0.1.
  EXPECT_NEAR(snap.ttft_1s.burn_rate, 2.0, 1e-12);
  EXPECT_EQ(snap.ttft_60s.total, 10u);
  // Untouched series / empty window: full attainment, zero burn.
  EXPECT_DOUBLE_EQ(snap.gap_1s.attainment, 1.0);
  EXPECT_DOUBLE_EQ(snap.gap_1s.burn_rate, 0.0);
  // A violation 5s old leaves the 1s window but stays in the 10s one.
  m.record_gap(now, 200.0);
  const auto shifted = m.snapshot(now + 5ull * 1000000ull);
  EXPECT_EQ(shifted.gap_1s.total, 0u);
  EXPECT_EQ(shifted.gap_10s.total, 1u);
  EXPECT_DOUBLE_EQ(shifted.gap_10s.attainment, 0.0);
  EXPECT_NEAR(shifted.gap_10s.burn_rate, 10.0, 1e-12);
  // Past the 60s horizon the budget fully recovers.
  const auto later = m.snapshot(now + 70ull * 1000000ull);
  EXPECT_EQ(later.ttft_60s.total, 0u);
  EXPECT_DOUBLE_EQ(later.ttft_60s.burn_rate, 0.0);
}

TEST(Slo, PublishIsGatedOnEnableAndExportsGauges) {
  obs::metrics_start();
  obs::SloMonitor m;
  m.configure({500.0, 250.0, 0.99});
  const std::uint64_t now = 1234ull * 1000000ull;
  m.record_ttft(now, 100.0);
  m.publish(now);  // not enabled: campaign registries stay slo-free
  EXPECT_EQ(obs::Registry::global().prometheus().find("slo_"),
            std::string::npos);
  m.enable();
  m.publish(now);
  const std::string prom = obs::Registry::global().prometheus();
  EXPECT_NE(prom.find("slo_attainment{slo=\"ttft\",window=\"1s\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("slo_burn_rate{slo=\"token_gap\",window=\"60s\"} 0"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("slo_objective 0.99"), std::string::npos) << prom;
  EXPECT_NE(prom.find("slo_ttft_ms 500"), std::string::npos) << prom;
  obs::metrics_stop();
}

TEST(ObsParallel, SloRecordWhileSnapshotting) {
  obs::SloMonitor m;
  m.configure({100.0, 50.0, 0.99});
  const std::uint64_t base = 9000ull * 1000000ull;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&m, base] {
      for (int i = 0; i < 2000; ++i) {
        m.record_ttft(base + static_cast<std::uint64_t>(i) * 500, 50.0);
        m.record_gap(base + static_cast<std::uint64_t>(i) * 500, 200.0);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const auto snap = m.snapshot(base + 500000);
    EXPECT_GE(snap.ttft_1s.attainment, 0.0);
    EXPECT_LE(snap.ttft_1s.attainment, 1.0);
  }
  for (auto& w : workers) w.join();
  const auto snap = m.snapshot(base + 500000);
  EXPECT_EQ(snap.ttft_1s.total, 6000u);
  EXPECT_DOUBLE_EQ(snap.ttft_1s.attainment, 1.0);
  EXPECT_EQ(snap.gap_1s.total, 6000u);
  EXPECT_DOUBLE_EQ(snap.gap_1s.attainment, 0.0);
}

TEST(Obs, ProgressEnvOverridesFallback) {
  unsetenv("LLMFI_PROGRESS");
  EXPECT_FALSE(obs::progress_from_env(false));
  EXPECT_TRUE(obs::progress_from_env(true));
  setenv("LLMFI_PROGRESS", "0", 1);
  EXPECT_FALSE(obs::progress_from_env(true));
  setenv("LLMFI_PROGRESS", "1", 1);
  EXPECT_TRUE(obs::progress_from_env(false));
  unsetenv("LLMFI_PROGRESS");
}

}  // namespace
}  // namespace llmfi
