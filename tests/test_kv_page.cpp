// Paged KV cache (DESIGN.md §12): PagePool acquire/release/refcount
// semantics, bit-identity of the paged layout against the contiguous
// oracle, copy-on-write isolation of forked caches, pool-exhaustion
// behavior, and the kv-bit fault injector's firing rules.

#include <gtest/gtest.h>

#include "core/injector.h"
#include "gen/generate.h"
#include "model/transformer.h"
#include "nn/kv_cache.h"
#include "nn/kv_page.h"
#include "numerics/bitflip.h"

namespace llmfi {
namespace {

std::shared_ptr<nn::PagePool> small_pool(int pages = 32,
                                         tn::Index page_rows = 4,
                                         tn::Index d = 4) {
  return std::make_shared<nn::PagePool>(pages, page_rows, d);
}

tn::Tensor marked_rows(tn::Index rows, tn::Index cols, int block,
                       tn::Index first_row) {
  tn::Tensor t({rows, cols});
  for (tn::Index r = 0; r < rows; ++r) {
    for (tn::Index c = 0; c < cols; ++c) {
      t.at(r, c) =
          static_cast<float>(block * 1000 + (first_row + r) * 10 + c);
    }
  }
  return t;
}

// Appends `filled` marked rows to every block (paged or contiguous).
void fill_cache(nn::KvCache& cache, tn::Index filled) {
  const tn::Index start = cache.length();
  for (int b = 0; b < cache.n_blocks(); ++b) {
    cache.append(b, marked_rows(filled, cache.d_model(), b, start),
                 marked_rows(filled, cache.d_model(), b + 7, start));
  }
  cache.advance(filled);
}

// --- PagePool ----------------------------------------------------------

TEST(PagePool, AcquireReleaseRoundTrip) {
  nn::PagePool pool(3, 4, 8);
  EXPECT_EQ(pool.n_pages(), 3);
  EXPECT_EQ(pool.free_pages(), 3);
  const int a = pool.acquire();
  const int b = pool.acquire();
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.free_pages(), 1);
  EXPECT_EQ(pool.ref_count(a), 1);
  pool.release(a);
  EXPECT_EQ(pool.free_pages(), 2);
  pool.release(b);
  EXPECT_EQ(pool.free_pages(), 3);
}

TEST(PagePool, SharedPagesReleaseOnLastRef) {
  nn::PagePool pool(2, 4, 8);
  const int p = pool.acquire();
  pool.add_ref(p);
  EXPECT_EQ(pool.ref_count(p), 2);
  pool.release(p);
  EXPECT_EQ(pool.ref_count(p), 1);
  EXPECT_EQ(pool.free_pages(), 1);  // still held by the other ref
  pool.release(p);
  EXPECT_EQ(pool.free_pages(), 2);
}

TEST(PagePool, AcquireReturnsMinusOneWhenDry) {
  nn::PagePool pool(1, 4, 8);
  EXPECT_GE(pool.acquire(), 0);
  EXPECT_EQ(pool.acquire(), -1);
}

TEST(PagePool, PagesForIsCeilDiv) {
  EXPECT_EQ(nn::PagePool::pages_for(0, 4), 0);
  EXPECT_EQ(nn::PagePool::pages_for(1, 4), 1);
  EXPECT_EQ(nn::PagePool::pages_for(4, 4), 1);
  EXPECT_EQ(nn::PagePool::pages_for(5, 4), 2);
  EXPECT_EQ(nn::PagePool::pages_for(160, 16), 10);
}

TEST(PagePool, RejectsBadGeometry) {
  EXPECT_THROW(nn::PagePool(0, 4, 8), std::invalid_argument);
  EXPECT_THROW(nn::PagePool(1, 0, 8), std::invalid_argument);
  EXPECT_THROW(nn::PagePool(1, 4, 0), std::invalid_argument);
}

// --- paged KvCache vs the contiguous oracle ----------------------------

TEST(KvPagedCache, RowsAreBitwiseIdenticalToContiguous) {
  auto pool = small_pool();
  nn::KvCache paged(2, 12, 4, pool);
  nn::KvCache flat(2, 12, 4);
  fill_cache(paged, 7);  // crosses a page boundary (page_rows = 4)
  fill_cache(flat, 7);
  ASSERT_EQ(paged.length(), flat.length());
  for (int b = 0; b < 2; ++b) {
    const auto pk = paged.key_view(b);
    const auto fk = flat.key_view(b);
    const auto pv = paged.value_view(b);
    const auto fv = flat.value_view(b);
    for (tn::Index r = 0; r < paged.length(); ++r) {
      for (tn::Index c = 0; c < 4; ++c) {
        EXPECT_EQ(pk.row(r)[c], fk.row(r)[c]) << b << " " << r << " " << c;
        EXPECT_EQ(pv.row(r)[c], fv.row(r)[c]);
        EXPECT_EQ(paged.key_at(b, r, c), flat.key_at(b, r, c));
        EXPECT_EQ(paged.value_at(b, r, c), flat.value_at(b, r, c));
      }
    }
  }
}

TEST(KvPagedCache, WholeMatrixAccessorsThrowOnPagedLayout) {
  auto pool = small_pool();
  nn::KvCache paged(1, 8, 4, pool);
  fill_cache(paged, 2);
  EXPECT_THROW(paged.keys(0), std::logic_error);
  EXPECT_THROW(paged.values(0), std::logic_error);
}

TEST(KvPagedCache, AppendPastPoolCapacityThrowsRuntimeError) {
  // 2 pages of 4 rows, 1 block: the 9th row has nowhere to live.
  auto pool = small_pool(/*pages=*/2);
  nn::KvCache paged(1, 32, 4, pool);
  fill_cache(paged, 8);
  tn::Tensor one = marked_rows(1, 4, 0, 8);
  EXPECT_THROW(paged.append(0, one, one), std::runtime_error);
}

TEST(KvPagedCache, TruncateAndResetReleasePages) {
  auto pool = small_pool();
  const int total = pool->free_pages();
  nn::KvCache paged(2, 16, 4, pool);
  fill_cache(paged, 9);  // 3 pages per block
  EXPECT_EQ(paged.pages_held(), 6);
  EXPECT_EQ(pool->free_pages(), total - 6);
  paged.truncate(4);  // 1 full + 0 partial rows per block → 1 page each
  EXPECT_EQ(paged.pages_held(), 2);
  EXPECT_EQ(pool->free_pages(), total - 2);
  // Satellite: truncate-then-append must reuse the boundary page, not
  // leak or re-acquire the released ones.
  fill_cache(paged, 3);
  EXPECT_EQ(paged.length(), 7);
  EXPECT_EQ(paged.pages_held(), 4);
  EXPECT_EQ(paged.key_at(0, 4, 1), marked_rows(1, 4, 0, 4).at(0, 1));
  paged.reset();
  EXPECT_EQ(paged.pages_held(), 0);
  EXPECT_EQ(pool->free_pages(), total);
}

TEST(KvPagedCache, DestructionReturnsPagesToThePool) {
  auto pool = small_pool();
  const int total = pool->free_pages();
  {
    nn::KvCache paged(1, 16, 4, pool);
    fill_cache(paged, 6);
    EXPECT_LT(pool->free_pages(), total);
  }
  EXPECT_EQ(pool->free_pages(), total);
}

// --- fork aliasing + copy-on-write -------------------------------------

TEST(KvPagedCache, ForkAliasesFullPrefixPages) {
  auto pool = small_pool();
  nn::KvCache src(2, 16, 4, pool);
  fill_cache(src, 10);  // 3 pages per block (4+4+2)
  const int free_before = pool->free_pages();
  nn::KvCache dst(2, 16, 4, pool);
  dst.fork_from(src, 8);  // exactly 2 full pages per block, no boundary
  // Aliased pages cost nothing: only a boundary page would be acquired.
  EXPECT_EQ(pool->free_pages(), free_before);
  EXPECT_EQ(dst.length(), 8);
  for (int b = 0; b < 2; ++b) {
    for (tn::Index r = 0; r < 8; ++r) {
      EXPECT_EQ(dst.key_at(b, r, 2), src.key_at(b, r, 2));
    }
  }

  // A fork ending mid-page deep-copies only that boundary page.
  nn::KvCache dst2(2, 16, 4, pool);
  dst2.fork_from(src, 6);  // 1 full page + 2 boundary rows per block
  EXPECT_EQ(pool->free_pages(), free_before - 2);
  for (int b = 0; b < 2; ++b) {
    for (tn::Index r = 0; r < 6; ++r) {
      EXPECT_EQ(dst2.value_at(b, r, 3), src.value_at(b, r, 3));
    }
  }
}

TEST(KvPagedCache, CowWriteIsolatesForkFromBaseline) {
  auto pool = small_pool();
  nn::KvCache src(1, 16, 4, pool);
  fill_cache(src, 8);
  nn::KvCache dst(1, 16, 4, pool);
  dst.fork_from(src, 8);  // both tables alias the same 2 pages
  const float original = src.key_at(0, 1, 1);
  dst.set_key_at(0, 1, 1, 555.0f);  // shared page → COW remap first
  EXPECT_EQ(dst.key_at(0, 1, 1), 555.0f);
  EXPECT_EQ(src.key_at(0, 1, 1), original) << "fork write leaked into src";
  // And appends into the forked cache never touch the source either.
  fill_cache(dst, 1);
  EXPECT_EQ(src.length(), 8);
}

TEST(KvPagedCache, SelfForkTruncatesWithoutReleasingLiveRows) {
  auto pool = small_pool();
  nn::KvCache cache(2, 16, 4, pool);
  fill_cache(cache, 9);
  const float keep = cache.key_at(0, 4, 0);
  cache.fork_from(cache, 5);  // satellite: self-fork must be valid
  EXPECT_EQ(cache.length(), 5);
  EXPECT_EQ(cache.key_at(0, 4, 0), keep);
  EXPECT_EQ(cache.pages_held(), 4);  // 2 pages per block cover 5 rows
}

TEST(KvPagedCache, ZeroPrefixForkReleasesEverything) {
  auto pool = small_pool();
  const int total = pool->free_pages();
  nn::KvCache src(1, 16, 4, pool);
  fill_cache(src, 6);
  nn::KvCache dst(1, 16, 4, pool);
  dst.fork_from(src, 6);
  dst.fork_from(src, 0);  // satellite: prefix_len == 0 degenerate
  EXPECT_EQ(dst.length(), 0);
  EXPECT_EQ(dst.pages_held(), 0);
  src.reset();
  EXPECT_EQ(pool->free_pages(), total);
}

TEST(KvPagedCache, CopySharesPagesAndMoveTransfersThem) {
  auto pool = small_pool();
  nn::KvCache a(1, 16, 4, pool);
  fill_cache(a, 5);
  const int held = a.pages_held();
  const int free_before = pool->free_pages();
  {
    nn::KvCache b(a);  // beam-search style copy: refcount, no data copy
    EXPECT_EQ(b.pages_held(), held);
    EXPECT_EQ(pool->free_pages(), free_before);
    EXPECT_EQ(b.key_at(0, 3, 2), a.key_at(0, 3, 2));
    nn::KvCache c(std::move(b));
    EXPECT_EQ(c.pages_held(), held);
  }
  EXPECT_EQ(pool->free_pages(), free_before);  // copies all released
  EXPECT_EQ(a.key_at(0, 3, 2), marked_rows(1, 4, 0, 3).at(0, 2));
}

TEST(KvPagedCache, ContiguousToPagedForkFallsBackToRowCopy) {
  const int d = 4;
  nn::KvCache flat(2, 16, d);
  fill_cache(flat, 6);
  auto pool = small_pool();
  nn::KvCache paged(2, 16, d, pool);
  ASSERT_TRUE(paged.fork_compatible(flat));
  paged.fork_from(flat, 5);
  EXPECT_EQ(paged.length(), 5);
  for (int b = 0; b < 2; ++b) {
    for (tn::Index r = 0; r < 5; ++r) {
      EXPECT_EQ(paged.key_at(b, r, 1), flat.key_at(b, r, 1));
      EXPECT_EQ(paged.value_at(b, r, 1), flat.value_at(b, r, 1));
    }
  }
}

// Satellite regression: fork_compatible on zero-length caches must
// compare the constructor geometry, not the (empty) storage — the old
// d_model() == 0 degenerate accepted any pairing.
TEST(KvPagedCache, ForkCompatibleUsesConstructorGeometryWhenEmpty) {
  nn::KvCache a(2, 8, 4);
  nn::KvCache b(2, 8, 16);  // same blocks/seq, different d_model
  EXPECT_FALSE(a.fork_compatible(b));
  EXPECT_FALSE(b.fork_compatible(a));
  nn::KvCache c(2, 8, 4);
  EXPECT_TRUE(a.fork_compatible(c));
  EXPECT_TRUE(a.fork_compatible(a));
}

// --- engine-level bit-identity -----------------------------------------

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 48;
  cfg.seed = 55;
  return cfg;
}

TEST(KvPagedGenerate, GreedyAndBeamMatchContiguousBitwise) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const std::vector<tok::TokenId> prompt = {3, 5, 7, 2, 11};
  for (int beams : {1, 3}) {
    gen::GenerationConfig flat_cfg;
    flat_cfg.max_new_tokens = 12;
    flat_cfg.num_beams = beams;
    flat_cfg.eos = 1000;  // force a long generation
    auto paged_cfg = flat_cfg;
    paged_cfg.kv_pool = std::make_shared<nn::PagePool>(
        /*n_pages=*/64, nn::PagePool::kDefaultPageRows,
        tiny_config().d_model);
    const auto a = gen::generate(m, prompt, flat_cfg);
    const auto b = gen::generate(m, prompt, paged_cfg);
    SCOPED_TRACE("beams=" + std::to_string(beams));
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.passes, b.passes);
    EXPECT_EQ(a.hit_max_tokens, b.hit_max_tokens);
  }
}

// --- kv-bit injector ---------------------------------------------------

core::FaultPlan kv_plan(int block, nn::LayerKind kind, int pass,
                        double row_frac, tn::Index dim) {
  core::FaultPlan plan;
  plan.model = core::FaultModel::KvBit;
  plan.layer = nn::LinearId{block, kind, -1};
  plan.pass_index = pass;
  plan.row_frac = row_frac;
  plan.out_col = dim;
  plan.bits = {30};  // high exponent bit: unmissable value change
  return plan;
}

TEST(KvBitInjector, FiresOnceAtThePlannedPass) {
  nn::KvCache cache(2, 16, 4);
  fill_cache(cache, 6);
  core::KvBitFaultInjector inj(kv_plan(1, nn::LayerKind::KProj, 2, 0.5, 3),
                               num::DType::F32);
  inj.on_pass_begin(cache, 1);  // wrong pass: no-op
  EXPECT_FALSE(inj.fired());
  const float before = cache.key_at(1, 3, 3);
  inj.on_pass_begin(cache, 2);
  ASSERT_TRUE(inj.fired());
  EXPECT_EQ(inj.record().pass_index, 2);
  EXPECT_EQ(inj.record().row, 3);  // row_frac 0.5 of length 6
  EXPECT_EQ(inj.record().col, 3);
  EXPECT_EQ(inj.record().old_value, before);
  EXPECT_EQ(cache.key_at(1, 3, 3), inj.record().new_value);
  EXPECT_NE(cache.key_at(1, 3, 3), before);
  // Single shot: a recovery rerun reaching the same pass index again
  // must not re-corrupt the refilled cache.
  const float after = cache.key_at(1, 3, 3);
  inj.on_pass_begin(cache, 2);
  EXPECT_EQ(cache.key_at(1, 3, 3), after);
  inj.reset();
  EXPECT_FALSE(inj.fired());
}

TEST(KvBitInjector, ValuePlaneAndEmptyCacheSemantics) {
  nn::KvCache cache(1, 16, 4);
  core::KvBitFaultInjector inj(kv_plan(0, nn::LayerKind::VProj, 1, 0.0, 2),
                               num::DType::F32);
  inj.on_pass_begin(cache, 1);  // empty cache: masked, nothing fired
  EXPECT_FALSE(inj.fired());
  fill_cache(cache, 4);
  const float before = cache.value_at(0, 0, 2);
  inj.on_pass_begin(cache, 1);
  ASSERT_TRUE(inj.fired());
  EXPECT_EQ(cache.value_at(0, 0, 2), inj.record().new_value);
  EXPECT_NE(cache.value_at(0, 0, 2), before);
  // Key plane untouched.
  EXPECT_EQ(cache.key_at(0, 0, 2), marked_rows(1, 4, 0, 0).at(0, 2));
}

TEST(KvBitInjector, CowIsolatesCorruptionFromForkSource) {
  auto pool = small_pool();
  nn::KvCache src(1, 16, 4, pool);
  fill_cache(src, 8);
  nn::KvCache trial(1, 16, 4, pool);
  trial.fork_from(src, 8);
  core::KvBitFaultInjector inj(kv_plan(0, nn::LayerKind::KProj, 1, 0.25, 1),
                               num::DType::F32);
  inj.on_pass_begin(trial, 1);
  ASSERT_TRUE(inj.fired());
  // The trial sees the flip; the shared baseline snapshot must not.
  EXPECT_EQ(trial.key_at(0, inj.record().row, 1), inj.record().new_value);
  EXPECT_EQ(src.key_at(0, inj.record().row, 1), inj.record().old_value);
}

}  // namespace
}  // namespace llmfi
