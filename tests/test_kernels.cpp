// Tests for the tiered GEMM kernel layer (DESIGN.md §13): tier
// parsing/dispatch, the "fast ≡ reference" tolerance gate on every
// dispatch path this host can execute, non-finite propagation (SIMD
// reordering must never mask corruption), and bit-identity of the fused
// RMSNorm+matmul entry point against its unfused pair.
//
// CI runs this binary three times — LLMFI_KERNEL unset, =portable, and
// =avx2 — so the env-knob test below pins the startup dispatch on both
// fast paths, not just whichever this build's default resolves to.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "numerics/rng.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace llmfi::tn {
namespace {

Tensor random_matrix(Index r, Index c, std::uint64_t seed) {
  num::Rng rng(seed);
  Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

std::vector<KernelTier> fast_tiers() {
  std::vector<KernelTier> tiers = {KernelTier::Portable};
  if (cpu_supports_avx2()) tiers.push_back(KernelTier::Avx2);
  return tiers;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

TEST(KernelTier, NamesAndParseRoundTrip) {
  for (KernelTier t :
       {KernelTier::Reference, KernelTier::Portable, KernelTier::Avx2}) {
    KernelTier parsed;
    ASSERT_TRUE(parse_kernel_tier(kernel_tier_name(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  KernelTier out;
  EXPECT_TRUE(parse_kernel_tier("auto", &out));
  EXPECT_EQ(out, best_supported_tier());
  EXPECT_FALSE(parse_kernel_tier("", &out));
  EXPECT_FALSE(parse_kernel_tier("sse9", &out));
  EXPECT_FALSE(parse_kernel_tier("Portable", &out));  // case-sensitive
}

TEST(KernelTier, BestSupportedIsExecutable) {
  const KernelTier best = best_supported_tier();
  EXPECT_NE(best, KernelTier::Reference);
  if (!cpu_supports_avx2()) EXPECT_EQ(best, KernelTier::Portable);
  // Must be settable without throwing.
  ScopedKernelTier pin(best);
  EXPECT_EQ(kernel_tier(), best);
}

TEST(KernelTier, HonorsEnvKnobAtStartup) {
  // The process-wide tier is initialized once from LLMFI_KERNEL. Every
  // tier change in this binary goes through ScopedKernelTier (restored),
  // so by the time this test runs kernel_tier() is the startup value.
  const char* env = std::getenv("LLMFI_KERNEL");
  if (env == nullptr || *env == '\0') {
    EXPECT_EQ(kernel_tier(), KernelTier::Reference);
  } else {
    KernelTier want;
    ASSERT_TRUE(parse_kernel_tier(env, &want));
    if (want == KernelTier::Avx2 && !cpu_supports_avx2()) {
      want = KernelTier::Portable;  // documented warn-and-fall-back
    }
    EXPECT_EQ(kernel_tier(), want);
  }
}

TEST(KernelTier, ScopedPinRestores) {
  const KernelTier before = kernel_tier();
  {
    ScopedKernelTier pin(KernelTier::Portable);
    EXPECT_EQ(kernel_tier(), KernelTier::Portable);
    {
      ScopedKernelTier inner(KernelTier::Reference);
      EXPECT_EQ(kernel_tier(), KernelTier::Reference);
    }
    EXPECT_EQ(kernel_tier(), KernelTier::Portable);
  }
  EXPECT_EQ(kernel_tier(), before);
}

TEST(KernelTier, SetThrowsForUnsupportedAvx2) {
  if (cpu_supports_avx2()) GTEST_SKIP() << "host supports AVX2";
  EXPECT_THROW(set_kernel_tier(KernelTier::Avx2), std::invalid_argument);
}

TEST(KernelDispatch, MatmulBtFollowsProcessTier) {
  const Tensor a = random_matrix(5, 19, 1);
  const Tensor b = random_matrix(7, 19, 2);
  for (KernelTier tier : fast_tiers()) {
    ScopedKernelTier pin(tier);
    EXPECT_TRUE(bit_equal(matmul_bt(a, b), matmul_bt_tier(a, b, tier)));
  }
  ScopedKernelTier pin(KernelTier::Reference);
  EXPECT_TRUE(bit_equal(matmul_bt(a, b), matmul_bt_reference(a, b)));
}

TEST(KernelGate, FastTiersStayInsideReferenceEnvelope) {
  // Ragged shapes on purpose: lane tails (k % 8), block tails (n % 4),
  // and the degenerate k=1 reduction all take different code paths.
  const struct {
    Index m, k, n;
  } shapes[] = {{3, 33, 5}, {4, 8, 4}, {2, 1, 3}, {8, 64, 8}, {1, 257, 9}};
  for (const auto& s : shapes) {
    const Tensor a = random_matrix(s.m, s.k, 11 + s.k);
    const Tensor b = random_matrix(s.n, s.k, 23 + s.n);
    const Tensor ref = matmul_bt_reference(a, b);
    for (KernelTier tier : fast_tiers()) {
      const Tensor fast = matmul_bt_tier(a, b, tier);
      const auto gate = check_matmul_bt_gate(a, b, ref, fast);
      EXPECT_TRUE(gate.ok())
          << kernel_tier_name(tier) << " m=" << s.m << " k=" << s.k
          << " n=" << s.n << ": " << gate.violations
          << " violations, worst excess " << gate.worst_excess;
    }
  }
}

TEST(KernelGate, CatchesACorruptedElement) {
  const Tensor a = random_matrix(4, 16, 3);
  const Tensor b = random_matrix(4, 16, 4);
  const Tensor ref = matmul_bt_reference(a, b);
  Tensor bad = ref;
  bad.at(2, 1) += 1.0f;  // far outside any rounding envelope
  const auto gate = check_matmul_bt_gate(a, b, ref, bad);
  EXPECT_FALSE(gate.ok());
  EXPECT_EQ(gate.violations, 1);
  EXPECT_GT(gate.worst_excess, 1.0);
  // NaN in fast where the reference is finite is corruption, not drift.
  Tensor nan_fast = ref;
  nan_fast.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(check_matmul_bt_gate(a, b, ref, nan_fast).ok());
}

TEST(KernelGate, NonFinitePropagatesOnEveryTier) {
  // A fault-poisoned activation (inf / NaN) must reach the output on the
  // fast tiers too: reordering may legally turn inf into NaN, but a
  // finite result where the reference is non-finite masks the fault.
  Tensor a = random_matrix(3, 12, 5);
  a.at(0, 4) = std::numeric_limits<float>::infinity();
  a.at(1, 7) = std::numeric_limits<float>::quiet_NaN();
  const Tensor b = random_matrix(5, 12, 6);
  const Tensor ref = matmul_bt_reference(a, b);
  for (Index j = 0; j < 5; ++j) {
    ASSERT_FALSE(std::isfinite(ref.at(0, j)));
    ASSERT_TRUE(std::isnan(ref.at(1, j)));
  }
  for (KernelTier tier : fast_tiers()) {
    const Tensor fast = matmul_bt_tier(a, b, tier);
    const auto gate = check_matmul_bt_gate(a, b, ref, fast);
    EXPECT_TRUE(gate.ok()) << kernel_tier_name(tier);
    for (Index j = 0; j < 5; ++j) {
      EXPECT_FALSE(std::isfinite(fast.at(0, j))) << kernel_tier_name(tier);
      EXPECT_FALSE(std::isfinite(fast.at(1, j))) << kernel_tier_name(tier);
    }
  }
}

TEST(FusedKernel, BitIdenticalToUnfusedPairAtEveryTier) {
  const Tensor x = random_matrix(3, 21, 7);  // ragged k on purpose
  const Tensor gain = random_matrix(1, 21, 8);
  const Tensor w0 = random_matrix(6, 21, 9);
  const Tensor w1 = random_matrix(4, 21, 10);
  const Tensor w2 = random_matrix(5, 21, 11);
  const Tensor* ws[] = {&w0, &w1, &w2};
  const float eps = 1e-5f;
  std::vector<KernelTier> tiers = {KernelTier::Reference};
  for (KernelTier t : fast_tiers()) tiers.push_back(t);
  for (KernelTier tier : tiers) {
    const Tensor h = rmsnorm_rows(x, gain, eps);
    const auto fused = fused_rmsnorm_matmul_bt(x, gain, eps, ws, tier);
    ASSERT_EQ(fused.size(), 3u);
    for (size_t w = 0; w < 3; ++w) {
      EXPECT_TRUE(bit_equal(fused[w], matmul_bt_tier(h, *ws[w], tier)))
          << kernel_tier_name(tier) << " weight " << w;
    }
  }
}

TEST(FusedKernel, ValidatesShapes) {
  const Tensor x = random_matrix(2, 8, 1);
  const Tensor gain = random_matrix(1, 8, 2);
  const Tensor w_ok = random_matrix(3, 8, 3);
  const Tensor w_bad = random_matrix(3, 9, 4);
  const Tensor* bad[] = {&w_ok, &w_bad};
  EXPECT_THROW(
      fused_rmsnorm_matmul_bt(x, gain, 1e-5f, bad, KernelTier::Reference),
      std::invalid_argument);
  const Tensor gain_bad = random_matrix(1, 7, 5);
  const Tensor* ok[] = {&w_ok};
  EXPECT_THROW(
      fused_rmsnorm_matmul_bt(x, gain_bad, 1e-5f, ok, KernelTier::Reference),
      std::invalid_argument);
}

}  // namespace
}  // namespace llmfi::tn
