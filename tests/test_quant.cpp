// Tests for group-wise INT8/INT4 quantization: reconstruction error
// bounds, payload/scale bit-flip semantics, and the bounded-deviation
// property behind Observation #8.

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/half.h"
#include "numerics/rng.h"
#include "quant/quantized_matrix.h"

namespace llmfi::quant {
namespace {

tn::Tensor random_weights(tn::Index r, tn::Index c, std::uint64_t seed,
                          double scale = 0.05) {
  num::Rng rng(seed);
  tn::Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

class QuantDtype : public ::testing::TestWithParam<num::DType> {};

TEST_P(QuantDtype, ReconstructionErrorBoundedByHalfStep) {
  const tn::Tensor w = random_weights(16, 64, 1);
  QuantizedMatrix q(w, GetParam(), 32);
  for (tn::Index r = 0; r < w.rows(); ++r) {
    for (tn::Index c = 0; c < w.cols(); ++c) {
      const float step = q.scale(r, c);
      // Round-to-nearest: |error| <= step/2 (+ fp16 scale rounding slack).
      EXPECT_LE(std::fabs(w.at(r, c) - q.dequant(r, c)), 0.51f * step + 1e-6f)
          << r << "," << c;
    }
  }
}

TEST_P(QuantDtype, PayloadsWithinRange) {
  const tn::Tensor w = random_weights(8, 40, 2, 0.2);
  QuantizedMatrix q(w, GetParam(), 16);
  const int qmax = (GetParam() == num::DType::I8) ? 127 : 7;
  for (tn::Index r = 0; r < w.rows(); ++r) {
    for (tn::Index c = 0; c < w.cols(); ++c) {
      EXPECT_GE(q.payload(r, c), -qmax - 1);
      EXPECT_LE(q.payload(r, c), qmax);
    }
  }
}

TEST_P(QuantDtype, PayloadFlipIsInvolution) {
  const tn::Tensor w = random_weights(6, 32, 3);
  QuantizedMatrix q(w, GetParam(), 8);
  const int bits_total = (GetParam() == num::DType::I8) ? 8 : 4;
  num::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = static_cast<tn::Index>(rng.uniform_u64(6));
    const auto c = static_cast<tn::Index>(rng.uniform_u64(32));
    const int bit = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(bits_total)));
    const auto before = q.payload(r, c);
    const int bits1[1] = {bit};
    q.flip_payload_bits(r, c, bits1);
    q.flip_payload_bits(r, c, bits1);
    EXPECT_EQ(q.payload(r, c), before);
  }
}

TEST_P(QuantDtype, PayloadFlipDeviationIsBounded) {
  // Observation #8's mechanism: a payload flip changes the weight by at
  // most (2^bits) * scale — no 2^128-style blowup is possible.
  const tn::Tensor w = random_weights(8, 32, 5);
  QuantizedMatrix q(w, GetParam(), 16);
  const int bits_total = (GetParam() == num::DType::I8) ? 8 : 4;
  num::Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto r = static_cast<tn::Index>(rng.uniform_u64(8));
    const auto c = static_cast<tn::Index>(rng.uniform_u64(32));
    const int bit = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(bits_total)));
    const float before = q.dequant(r, c);
    const int bits1[1] = {bit};
    const float after = q.flip_payload_bits(r, c, bits1);
    const float bound =
        q.scale(r, c) * static_cast<float>(1 << bits_total);
    EXPECT_LE(std::fabs(after - before), bound);
    q.flip_payload_bits(r, c, bits1);  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(Int8AndInt4, QuantDtype,
                         ::testing::Values(num::DType::I8, num::DType::I4),
                         [](const auto& info) {
                           return std::string(num::dtype_name(info.param));
                         });

TEST(Quant, RejectsFloatDtypes) {
  const tn::Tensor w = random_weights(2, 4, 7);
  EXPECT_THROW(QuantizedMatrix(w, num::DType::F16, 2), std::invalid_argument);
  EXPECT_THROW(QuantizedMatrix(w, num::DType::I8, 0), std::invalid_argument);
}

TEST(Quant, HandlesRaggedLastGroup) {
  // cols not a multiple of group_size.
  const tn::Tensor w = random_weights(3, 10, 8);
  QuantizedMatrix q(w, num::DType::I8, 4);
  EXPECT_EQ(q.groups_per_row(), 3);  // 4 + 4 + 2
  for (tn::Index c = 0; c < 10; ++c) {
    EXPECT_GT(q.scale(0, c), 0.0f);
  }
}

TEST(Quant, ZeroGroupStaysExact) {
  tn::Tensor w({2, 8});
  QuantizedMatrix q(w, num::DType::I4, 4);
  for (tn::Index c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(q.dequant(0, c), 0.0f);
    EXPECT_GT(q.scale(0, c), 0.0f);  // never a zero scale
  }
}

TEST(Quant, ScalesAreFp16Representable) {
  const tn::Tensor w = random_weights(4, 32, 9);
  QuantizedMatrix q(w, num::DType::I8, 8);
  for (tn::Index r = 0; r < 4; ++r) {
    for (tn::Index c = 0; c < 32; c += 8) {
      const float s = q.scale(r, c);
      EXPECT_FLOAT_EQ(s, num::round_to_f16(s));
    }
  }
}

TEST(Quant, ScaleFlipAffectsWholeGroup) {
  const tn::Tensor w = random_weights(2, 8, 10);
  QuantizedMatrix q(w, num::DType::I8, 4);
  const float before0 = q.dequant(0, 0);
  const float before3 = q.dequant(0, 3);
  const float before4 = q.dequant(0, 4);  // next group
  const int bits1[1] = {14};  // fp16 exponent MSB
  q.flip_scale_bits(0, 0, bits1);
  EXPECT_NE(q.dequant(0, 0), before0);
  EXPECT_NE(q.dequant(0, 3), before3);
  EXPECT_FLOAT_EQ(q.dequant(0, 4), before4);
  q.flip_scale_bits(0, 0, bits1);  // involution restores
  EXPECT_FLOAT_EQ(q.dequant(0, 0), before0);
}

TEST(Quant, DequantizeMatchesElementwise) {
  const tn::Tensor w = random_weights(5, 24, 11);
  QuantizedMatrix q(w, num::DType::I4, 8);
  const tn::Tensor d = q.dequantize();
  for (tn::Index r = 0; r < 5; ++r) {
    for (tn::Index c = 0; c < 24; ++c) {
      EXPECT_FLOAT_EQ(d.at(r, c), q.dequant(r, c));
    }
  }
  EXPECT_LT(q.mean_abs_error(w), 0.05);
  EXPECT_THROW(q.mean_abs_error(random_weights(2, 2, 1)),
               std::invalid_argument);
}

TEST(Quant, Int4CoarserThanInt8) {
  const tn::Tensor w = random_weights(8, 64, 12);
  QuantizedMatrix q8(w, num::DType::I8, 32);
  QuantizedMatrix q4(w, num::DType::I4, 32);
  EXPECT_LT(q8.mean_abs_error(w), q4.mean_abs_error(w));
}

}  // namespace
}  // namespace llmfi::quant
