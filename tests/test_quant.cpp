// Tests for group-wise INT8/INT4 quantization: reconstruction error
// bounds, payload/scale bit-flip semantics, and the bounded-deviation
// property behind Observation #8.

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/half.h"
#include "numerics/rng.h"
#include "quant/qmatmul.h"
#include "quant/quantized_matrix.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace llmfi::quant {
namespace {

tn::Tensor random_weights(tn::Index r, tn::Index c, std::uint64_t seed,
                          double scale = 0.05) {
  num::Rng rng(seed);
  tn::Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

class QuantDtype : public ::testing::TestWithParam<num::DType> {};

TEST_P(QuantDtype, ReconstructionErrorBoundedByHalfStep) {
  const tn::Tensor w = random_weights(16, 64, 1);
  QuantizedMatrix q(w, GetParam(), 32);
  for (tn::Index r = 0; r < w.rows(); ++r) {
    for (tn::Index c = 0; c < w.cols(); ++c) {
      const float step = q.scale(r, c);
      // Round-to-nearest: |error| <= step/2 (+ fp16 scale rounding slack).
      EXPECT_LE(std::fabs(w.at(r, c) - q.dequant(r, c)), 0.51f * step + 1e-6f)
          << r << "," << c;
    }
  }
}

TEST_P(QuantDtype, PayloadsWithinRange) {
  const tn::Tensor w = random_weights(8, 40, 2, 0.2);
  QuantizedMatrix q(w, GetParam(), 16);
  const int qmax = (GetParam() == num::DType::I8) ? 127 : 7;
  for (tn::Index r = 0; r < w.rows(); ++r) {
    for (tn::Index c = 0; c < w.cols(); ++c) {
      EXPECT_GE(q.payload(r, c), -qmax - 1);
      EXPECT_LE(q.payload(r, c), qmax);
    }
  }
}

TEST_P(QuantDtype, PayloadFlipIsInvolution) {
  const tn::Tensor w = random_weights(6, 32, 3);
  QuantizedMatrix q(w, GetParam(), 8);
  const int bits_total = (GetParam() == num::DType::I8) ? 8 : 4;
  num::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = static_cast<tn::Index>(rng.uniform_u64(6));
    const auto c = static_cast<tn::Index>(rng.uniform_u64(32));
    const int bit = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(bits_total)));
    const auto before = q.payload(r, c);
    const int bits1[1] = {bit};
    q.flip_payload_bits(r, c, bits1);
    q.flip_payload_bits(r, c, bits1);
    EXPECT_EQ(q.payload(r, c), before);
  }
}

TEST_P(QuantDtype, PayloadFlipDeviationIsBounded) {
  // Observation #8's mechanism: a payload flip changes the weight by at
  // most (2^bits) * scale — no 2^128-style blowup is possible.
  const tn::Tensor w = random_weights(8, 32, 5);
  QuantizedMatrix q(w, GetParam(), 16);
  const int bits_total = (GetParam() == num::DType::I8) ? 8 : 4;
  num::Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto r = static_cast<tn::Index>(rng.uniform_u64(8));
    const auto c = static_cast<tn::Index>(rng.uniform_u64(32));
    const int bit = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(bits_total)));
    const float before = q.dequant(r, c);
    const int bits1[1] = {bit};
    const float after = q.flip_payload_bits(r, c, bits1);
    const float bound =
        q.scale(r, c) * static_cast<float>(1 << bits_total);
    EXPECT_LE(std::fabs(after - before), bound);
    q.flip_payload_bits(r, c, bits1);  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(Int8AndInt4, QuantDtype,
                         ::testing::Values(num::DType::I8, num::DType::I4),
                         [](const auto& info) {
                           return std::string(num::dtype_name(info.param));
                         });

TEST(Quant, RejectsFloatDtypes) {
  const tn::Tensor w = random_weights(2, 4, 7);
  EXPECT_THROW(QuantizedMatrix(w, num::DType::F16, 2), std::invalid_argument);
  EXPECT_THROW(QuantizedMatrix(w, num::DType::I8, 0), std::invalid_argument);
}

TEST(Quant, HandlesRaggedLastGroup) {
  // cols not a multiple of group_size.
  const tn::Tensor w = random_weights(3, 10, 8);
  QuantizedMatrix q(w, num::DType::I8, 4);
  EXPECT_EQ(q.groups_per_row(), 3);  // 4 + 4 + 2
  for (tn::Index c = 0; c < 10; ++c) {
    EXPECT_GT(q.scale(0, c), 0.0f);
  }
}

TEST(Quant, ZeroGroupStaysExact) {
  tn::Tensor w({2, 8});
  QuantizedMatrix q(w, num::DType::I4, 4);
  for (tn::Index c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(q.dequant(0, c), 0.0f);
    EXPECT_GT(q.scale(0, c), 0.0f);  // never a zero scale
  }
}

TEST(Quant, ScalesAreFp16Representable) {
  const tn::Tensor w = random_weights(4, 32, 9);
  QuantizedMatrix q(w, num::DType::I8, 8);
  for (tn::Index r = 0; r < 4; ++r) {
    for (tn::Index c = 0; c < 32; c += 8) {
      const float s = q.scale(r, c);
      EXPECT_FLOAT_EQ(s, num::round_to_f16(s));
    }
  }
}

TEST(Quant, ScaleFlipAffectsWholeGroup) {
  const tn::Tensor w = random_weights(2, 8, 10);
  QuantizedMatrix q(w, num::DType::I8, 4);
  const float before0 = q.dequant(0, 0);
  const float before3 = q.dequant(0, 3);
  const float before4 = q.dequant(0, 4);  // next group
  const int bits1[1] = {14};  // fp16 exponent MSB
  q.flip_scale_bits(0, 0, bits1);
  EXPECT_NE(q.dequant(0, 0), before0);
  EXPECT_NE(q.dequant(0, 3), before3);
  EXPECT_FLOAT_EQ(q.dequant(0, 4), before4);
  q.flip_scale_bits(0, 0, bits1);  // involution restores
  EXPECT_FLOAT_EQ(q.dequant(0, 0), before0);
}

TEST(Quant, DequantizeMatchesElementwise) {
  const tn::Tensor w = random_weights(5, 24, 11);
  QuantizedMatrix q(w, num::DType::I4, 8);
  const tn::Tensor d = q.dequantize();
  for (tn::Index r = 0; r < 5; ++r) {
    for (tn::Index c = 0; c < 24; ++c) {
      EXPECT_FLOAT_EQ(d.at(r, c), q.dequant(r, c));
    }
  }
  EXPECT_LT(q.mean_abs_error(w), 0.05);
  EXPECT_THROW(q.mean_abs_error(random_weights(2, 2, 1)),
               std::invalid_argument);
}

TEST(Quant, Int4CoarserThanInt8) {
  const tn::Tensor w = random_weights(8, 64, 12);
  QuantizedMatrix q8(w, num::DType::I8, 32);
  QuantizedMatrix q4(w, num::DType::I4, 32);
  EXPECT_LT(q8.mean_abs_error(w), q4.mean_abs_error(w));
}

// --- quantized matmul (kernel layer) ------------------------------------

std::vector<tn::KernelTier> available_fast_tiers() {
  std::vector<tn::KernelTier> tiers = {tn::KernelTier::Portable};
  if (tn::cpu_supports_avx2()) tiers.push_back(tn::KernelTier::Avx2);
  return tiers;
}

tn::Tensor random_acts(tn::Index r, tn::Index c, std::uint64_t seed) {
  num::Rng rng(seed);
  tn::Tensor t({r, c});
  for (float& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST_P(QuantDtype, QMatmulReferenceMatchesDequantizedGemmWithinGate) {
  // The grouped factored reduction (partial * scale per group) differs
  // from dequantize-then-GEMM only by reordering/rounding; the kernel
  // tolerance gate bounds that drift. Ragged column count on purpose:
  // 50 = 3 full groups of 16 + a tail group of 2.
  const tn::Tensor w = random_weights(20, 50, 13);
  QuantizedMatrix q(w, GetParam(), 16);
  const tn::Tensor x = random_acts(5, 50, 14);
  const tn::Tensor deq = q.dequantize();
  const tn::Tensor flat = tn::matmul_bt_reference(x, deq);
  const tn::Tensor grouped = qmatmul_bt(x, q, tn::KernelTier::Reference);
  const auto gate = tn::check_matmul_bt_gate(x, deq, flat, grouped);
  EXPECT_TRUE(gate.ok()) << gate.violations << " violations, worst excess "
                         << gate.worst_excess;
}

TEST_P(QuantDtype, QMatmulFastTiersMatchReferenceWithinGate) {
  const tn::Tensor w = random_weights(12, 37, 15);  // ragged: 37 = 2*16+5
  QuantizedMatrix q(w, GetParam(), 16);
  const tn::Tensor x = random_acts(3, 37, 16);
  const tn::Tensor deq = q.dequantize();
  const tn::Tensor ref = qmatmul_bt(x, q, tn::KernelTier::Reference);
  for (tn::KernelTier tier : available_fast_tiers()) {
    const tn::Tensor fast = qmatmul_bt(x, q, tier);
    const auto gate = tn::check_matmul_bt_gate(x, deq, ref, fast);
    EXPECT_TRUE(gate.ok())
        << tn::kernel_tier_name(tier) << ": " << gate.violations
        << " violations, worst excess " << gate.worst_excess;
  }
}

TEST_P(QuantDtype, QMatmulSeesPayloadFlipOnEveryTier) {
  // The fault surface: the kernel reads the same int8 storage that
  // flip_payload_bits mutates, so a flipped payload must move exactly
  // the output column owned by that weight row — on every tier, without
  // any dequantized fp32 copy refreshing stale values.
  const tn::Tensor w = random_weights(6, 32, 17);
  QuantizedMatrix q(w, GetParam(), 8);
  const tn::Tensor x = random_acts(2, 32, 18);
  std::vector<tn::KernelTier> tiers = {tn::KernelTier::Reference};
  for (tn::KernelTier t : available_fast_tiers()) tiers.push_back(t);
  std::vector<tn::Tensor> before;
  for (tn::KernelTier t : tiers) before.push_back(qmatmul_bt(x, q, t));
  const int msb[1] = {(GetParam() == num::DType::I8) ? 6 : 3};
  q.flip_payload_bits(3, 5, msb);  // weight row 3 -> output column 3
  for (size_t i = 0; i < tiers.size(); ++i) {
    const tn::Tensor after = qmatmul_bt(x, q, tiers[i]);
    for (tn::Index r = 0; r < 2; ++r) {
      EXPECT_NE(after.at(r, 3), before[i].at(r, 3))
          << tn::kernel_tier_name(tiers[i]);
      for (tn::Index j = 0; j < 6; ++j) {
        if (j == 3) continue;
        EXPECT_EQ(after.at(r, j), before[i].at(r, j))
            << tn::kernel_tier_name(tiers[i]) << " col " << j;
      }
    }
  }
  q.flip_payload_bits(3, 5, msb);  // restore
}

TEST(QMatmul, ValidatesShapes) {
  const tn::Tensor w = random_weights(4, 16, 19);
  QuantizedMatrix q(w, num::DType::I8, 8);
  const tn::Tensor wrong_k = random_acts(2, 15, 20);
  EXPECT_THROW(qmatmul_bt(wrong_k, q, tn::KernelTier::Reference),
               std::invalid_argument);
}

}  // namespace
}  // namespace llmfi::quant
