// Tests for the text-quality metrics (BLEU, chrF++, ROUGE, EM/F1) and the
// statistical machinery (Welford accumulator, Katz/log-ratio CIs).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "metrics/stats.h"
#include "metrics/text_metrics.h"

namespace llmfi::metrics {
namespace {

// ---- identity / disjoint properties shared by all similarity metrics -----

using MetricFn = double (*)(const std::string&, const std::string&);

struct NamedMetric {
  const char* name;
  MetricFn fn;
};

class SimilarityMetric : public ::testing::TestWithParam<NamedMetric> {};

TEST_P(SimilarityMetric, PerfectMatchScoresOne) {
  const auto fn = GetParam().fn;
  EXPECT_NEAR(fn("a b c d e", "a b c d e"), 1.0, 1e-9);
}

TEST_P(SimilarityMetric, DisjointScoresZero) {
  const auto fn = GetParam().fn;
  EXPECT_NEAR(fn("aa bb cc", "xx yy zz"), 0.0, 1e-9);
}

TEST_P(SimilarityMetric, EmptyHypothesisScoresZero) {
  const auto fn = GetParam().fn;
  EXPECT_NEAR(fn("", "a b c"), 0.0, 1e-9);
}

TEST_P(SimilarityMetric, BoundedInUnitInterval) {
  const auto fn = GetParam().fn;
  const double v = fn("a b x y e", "a b c d e");
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

double bleu4(const std::string& h, const std::string& r) {
  return bleu(h, r);
}
double chrfpp(const std::string& h, const std::string& r) {
  return chrf_pp(h, r);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, SimilarityMetric,
    ::testing::Values(NamedMetric{"bleu", &bleu4},
                      NamedMetric{"chrf", &chrfpp},
                      NamedMetric{"rouge1", &rouge1_f},
                      NamedMetric{"rougeL", &rougeL_f},
                      NamedMetric{"em", &exact_match},
                      NamedMetric{"f1", &token_f1}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- metric-specific behaviour -------------------------------------------

TEST(Bleu, PenalizesShortHypotheses) {
  // Same matched unigrams, but the short one takes a brevity penalty.
  const double full = bleu("a b c d", "a b c d");
  const double half = bleu("a b", "a b c d");
  EXPECT_LT(half, full);
  EXPECT_GT(half, 0.0);
}

TEST(Bleu, OrderSensitivityViaNgrams) {
  const double ordered = bleu("a b c d e f", "a b c d e f");
  const double shuffled = bleu("f e d c b a", "a b c d e f");
  EXPECT_GT(ordered, shuffled);
  EXPECT_GT(shuffled, 0.0);  // unigrams still match (smoothed)
}

TEST(Bleu, ClipsRepeatedNgrams) {
  // "the the the the" must not farm unigram precision: clipping caps the
  // unigram match at 1/4 (smoothing keeps higher orders small but >0).
  const double spam = bleu("the the the the", "the cat sat down");
  EXPECT_LT(spam, 0.35);
  const double honest = bleu("the cat sat down", "the cat sat down");
  EXPECT_GT(honest, 2 * spam);
}

TEST(ChrfPP, PartialWordOverlapScoresBetweenZeroAndOne) {
  const double v = chrf_pp("translation", "translationes");
  EXPECT_GT(v, 0.4);
  EXPECT_LT(v, 1.0);
}

TEST(ChrfPP, CountsCodepointsNotBytes) {
  // "aé" vs "aè": one of two codepoints matches. Char 1-grams give
  // F2 = 0.5; char 2-grams and word 1-grams give 0; higher orders have
  // no n-grams on either side and are skipped -> 0.5 / 3 counted orders.
  // The old byte-based n-grams credited the shared UTF-8 lead byte 0xC3
  // of é/è as a match (~0.2917 over four orders).
  EXPECT_NEAR(chrf_pp("a\xC3\xA9", "a\xC3\xA8"), 1.0 / 6.0, 1e-9);
}

TEST(ChrfPP, MultibyteSelfMatchIsPerfect) {
  // 5 codepoints in 7 bytes; codepoint counting is what makes the char
  // 6-gram order empty on both sides (skipped) instead of mismatched.
  const std::string s = "h\xC3\xA9ll\xC3\xB8s";
  EXPECT_NEAR(chrf_pp(s, s), 1.0, 1e-9);
}

TEST(ChrfPP, MalformedUtf8DegradesToBytes) {
  // Stray continuation / truncated lead bytes fall back to single-byte
  // units: still a valid total ordering, identical strings score 1.
  const std::string truncated = "ab\xC3";
  EXPECT_NEAR(chrf_pp(truncated, truncated), 1.0, 1e-9);
  const std::string stray = "\xA9x";
  EXPECT_NEAR(chrf_pp(stray, stray), 1.0, 1e-9);
  EXPECT_GE(chrf_pp(truncated, "ab"), 0.0);
}

TEST(RougeL, RewardsLongestCommonSubsequence) {
  // LCS "a b c" of length 3; hyp len 4, ref len 4 -> P=R=F=0.75.
  EXPECT_NEAR(rougeL_f("a x b c", "a b y c"), 0.75, 1e-9);
  // ROUGE-1 sees 3 shared unigrams of 4 -> also 0.75; with reordering
  // ROUGE-L drops below ROUGE-1.
  EXPECT_LT(rougeL_f("c b a", "a b c"), rouge1_f("c b a", "a b c"));
}

TEST(ExactMatch, NormalizesWhitespaceOnly) {
  EXPECT_EQ(exact_match("a  b", "a b"), 1.0);
  EXPECT_EQ(exact_match("a b", "a c"), 0.0);
}

TEST(TokenF1, PartialOverlap) {
  // hyp {a,b}, ref {b,c}: P = 1/2, R = 1/2 -> F1 = 1/2.
  EXPECT_NEAR(token_f1("a b", "b c"), 0.5, 1e-9);
}

TEST(SplitWords, HandlesEdgeCases) {
  EXPECT_TRUE(split_words("").empty());
  EXPECT_EQ(split_words("  x   y ").size(), 2u);
}

// ---- statistics -----------------------------------------------------------

TEST(Accumulator, WelfordMeanAndVariance) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.n(), 8);
  EXPECT_NEAR(acc.mean(), 5.0, 1e-12);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  acc.add(3.0);
  EXPECT_EQ(acc.mean(), 3.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(KatzCI, EqualProportionsGiveRatioOne) {
  const Ratio r = katz_ratio_ci(80, 100, 80, 100);
  EXPECT_NEAR(r.value, 1.0, 1e-12);
  EXPECT_LT(r.lo, 1.0);
  EXPECT_GT(r.hi, 1.0);
  EXPECT_NEAR(r.lo * r.hi, r.value * r.value, 1e-6);  // symmetric in log
}

TEST(KatzCI, KnownValue) {
  // p1 = 0.7 (70/100), p2 = 0.9 (90/100): R = 7/9,
  // se = sqrt(0.3/70 + 0.1/90) ~= 0.07349.
  const Ratio r = katz_ratio_ci(70, 100, 90, 100);
  EXPECT_NEAR(r.value, 7.0 / 9.0, 1e-12);
  const double se = std::sqrt(0.3 / 70 + 0.1 / 90);
  EXPECT_NEAR(r.lo, r.value * std::exp(-1.96 * se), 1e-6);
  EXPECT_NEAR(r.hi, r.value * std::exp(1.96 * se), 1e-6);
}

TEST(KatzCI, DegenerateInputs) {
  // Zero baseline hits: degenerate wide interval, no crash.
  const Ratio none = katz_ratio_ci(5, 10, 0, 10);
  EXPECT_EQ(none.lo, 0.0);
  // Zero faulty hits: continuity correction keeps lo/hi finite and the
  // point estimate is the corrected ratio, not 0.
  const Ratio zf = katz_ratio_ci(0, 10, 8, 10);
  EXPECT_GT(zf.value, 0.0);
  EXPECT_GE(zf.lo, 0.0);
  EXPECT_TRUE(std::isfinite(zf.hi));
}

// Regression: with fault_hits == 0 the point estimate used to be the raw
// ratio (0) while lo/hi came from the continuity-corrected one, so the
// reported CI excluded its own point estimate (lo > value).
TEST(KatzCI, IntervalContainsPointEstimate) {
  for (const auto& [fh, fn, bh, bn] :
       {std::tuple{0, 10, 8, 10}, std::tuple{0, 500, 450, 500},
        std::tuple{3, 10, 9, 10}, std::tuple{10, 10, 10, 10},
        std::tuple{1, 1000, 999, 1000}}) {
    const Ratio r = katz_ratio_ci(fh, fn, bh, bn);
    EXPECT_LE(r.lo, r.value) << fh << "/" << fn << " vs " << bh << "/" << bn;
    EXPECT_LE(r.value, r.hi) << fh << "/" << fn << " vs " << bh << "/" << bn;
    // The correction must only kick in when needed: with nonzero counts
    // the point estimate is the plain ratio of proportions.
    if (fh > 0) {
      EXPECT_EQ(r.value, (static_cast<double>(fh) / fn) /
                             (static_cast<double>(bh) / bn));
    }
  }
}

TEST(LogRatioCI, ShrinksWithSampleSize) {
  const Ratio small = log_ratio_ci(0.45, 0.2, 20, 0.5, 0.2, 20);
  const Ratio big = log_ratio_ci(0.45, 0.2, 2000, 0.5, 0.2, 2000);
  EXPECT_NEAR(small.value, 0.9, 1e-9);
  EXPECT_NEAR(big.value, 0.9, 1e-9);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(LogRatioCI, ZeroVarianceCollapsesToPoint) {
  const Ratio r = log_ratio_ci(0.8, 0.0, 10, 1.0, 0.0, 10);
  EXPECT_NEAR(r.lo, 0.8, 1e-9);
  EXPECT_NEAR(r.hi, 0.8, 1e-9);
}

}  // namespace
}  // namespace llmfi::metrics
