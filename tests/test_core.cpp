// Tests for the fault-injection core: fault models, location sampling,
// single-shot computational injection, RAII weight corruption, outcome
// classification, and propagation tracing.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "core/fault_model.h"
#include "core/fault_plan.h"
#include "core/injector.h"
#include "core/outcome.h"
#include "core/tracer.h"
#include "numerics/half.h"

namespace llmfi::core {
namespace {

model::ModelConfig tiny_config(bool moe = false) {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.moe = moe;
  cfg.n_experts = 4;
  cfg.top_k = 2;
  cfg.max_seq = 48;
  cfg.seed = 77;
  return cfg;
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

TEST(FaultModel, NamesRoundTrip) {
  for (auto m : {FaultModel::Comp1Bit, FaultModel::Comp2Bit,
                 FaultModel::Mem2Bit}) {
    EXPECT_EQ(parse_fault_model(fault_model_name(m)), m);
  }
  EXPECT_THROW(parse_fault_model("3bits-mem"), std::invalid_argument);
  EXPECT_EQ(fault_bit_count(FaultModel::Comp1Bit), 1);
  EXPECT_EQ(fault_bit_count(FaultModel::Mem2Bit), 2);
  EXPECT_TRUE(is_memory_fault(FaultModel::Mem2Bit));
  EXPECT_FALSE(is_memory_fault(FaultModel::Comp2Bit));
}

TEST(Sampler, ProducesValidPlans) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  num::Rng rng(1);
  SamplerScope scope;
  scope.max_passes = 7;
  for (int i = 0; i < 300; ++i) {
    const auto plan = sample_fault(FaultModel::Mem2Bit, m, scope, rng);
    ASSERT_GE(plan.layer_index, 0);
    ASSERT_LT(plan.layer_index,
              static_cast<int>(m.linear_layers().size()));
    const auto& ref = m.linear_layers()[static_cast<size_t>(
        plan.layer_index)];
    EXPECT_TRUE(ref.id == plan.layer);
    EXPECT_GE(plan.weight_row, 0);
    EXPECT_LT(plan.weight_row, ref.weights->rows());
    EXPECT_GE(plan.weight_col, 0);
    EXPECT_LT(plan.weight_col, ref.weights->cols());
    ASSERT_EQ(plan.bits.size(), 2u);
    EXPECT_NE(plan.bits[0], plan.bits[1]);
    for (int b : plan.bits) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, 32);
    }
    EXPECT_EQ(plan.highest_bit(), std::max(plan.bits[0], plan.bits[1]));
  }
  for (int i = 0; i < 300; ++i) {
    const auto plan = sample_fault(FaultModel::Comp1Bit, m, scope, rng);
    EXPECT_EQ(plan.bits.size(), 1u);
    EXPECT_GE(plan.pass_index, 0);
    EXPECT_LT(plan.pass_index, 7);
    EXPECT_GE(plan.row_frac, 0.0);
    EXPECT_LT(plan.row_frac, 1.0);
  }
}

TEST(Sampler, CoversEveryLayerUniformly) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  num::Rng rng(2);
  SamplerScope scope;
  std::map<int, int> hits;
  const int n = 7000;
  for (int i = 0; i < n; ++i) {
    hits[sample_fault(FaultModel::Mem2Bit, m, scope, rng).layer_index]++;
  }
  const int n_layers = static_cast<int>(m.linear_layers().size());
  EXPECT_EQ(static_cast<int>(hits.size()), n_layers);
  const double expected = static_cast<double>(n) / n_layers;
  for (const auto& [layer, count] : hits) {
    EXPECT_NEAR(count, expected, 0.35 * expected) << "layer " << layer;
  }
}

TEST(Sampler, HonorsLayerFilter) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config(true)), {});
  num::Rng rng(3);
  SamplerScope scope;
  scope.layer_filter = [](const nn::LinearId& id) {
    return id.kind == nn::LayerKind::Router;
  };
  for (int i = 0; i < 100; ++i) {
    const auto plan = sample_fault(FaultModel::Mem2Bit, m, scope, rng);
    EXPECT_EQ(plan.layer.kind, nn::LayerKind::Router);
  }
  scope.layer_filter = [](const nn::LinearId&) { return false; };
  EXPECT_THROW(sample_fault(FaultModel::Mem2Bit, m, scope, rng),
               std::invalid_argument);
}

TEST(Sampler, QuantizedWeightsGetPayloadWidthBits) {
  model::InferenceModel m(
      model::ModelWeights::init(tiny_config()),
      model::PrecisionConfig::for_dtype(num::DType::I4));
  num::Rng rng(4);
  SamplerScope scope;
  for (int i = 0; i < 200; ++i) {
    const auto plan = sample_fault(FaultModel::Mem2Bit, m, scope, rng);
    for (int b : plan.bits) EXPECT_LT(b, 4);
  }
  // Computational faults use the activation dtype (fp16 for quantized).
  for (int i = 0; i < 200; ++i) {
    const auto plan = sample_fault(FaultModel::Comp2Bit, m, scope, rng);
    for (int b : plan.bits) EXPECT_LT(b, 16);
  }
}

TEST(Injector, FiresExactlyOnceAtTargetSite) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {1, nn::LayerKind::GateProj, -1};
  plan.pass_index = 1;
  plan.row_frac = 0.0;
  plan.out_col = 3;
  plan.bits = {30};
  ComputationalFaultInjector injector(plan, num::DType::F32);
  m.set_linear_hook(&injector);

  auto cache = m.make_cache();
  (void)m.forward(tokens({1, 2, 3}), cache, 0);  // wrong pass: no fire
  EXPECT_FALSE(injector.fired());
  (void)m.forward(tokens({4}), cache, 1);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.record().col, 3);
  EXPECT_EQ(injector.record().pass_index, 1);
  const float old_v = injector.record().old_value;
  const float new_v = injector.record().new_value;
  EXPECT_NE(old_v, new_v);
  // MSB exponent flip: magnitude changes by a huge factor (or to 0/inf).
  EXPECT_TRUE(std::fabs(new_v) > 1e10f * std::fabs(old_v) ||
              std::fabs(new_v) < 1e-10f * std::fabs(old_v) ||
              old_v == 0.0f);

  // Single-shot: a later matching pass must not re-fire.
  const auto rec_before = injector.record().new_value;
  (void)m.forward(tokens({5}), cache, 1);
  EXPECT_EQ(injector.record().new_value, rec_before);
  m.set_linear_hook(nullptr);

  // reset() re-arms.
  injector.reset();
  EXPECT_FALSE(injector.fired());
}

// A hook that throws mid-forward, standing in for any failure inside an
// instrumented inference (OOM, a metric error, a poisoned tensor check).
struct ThrowingHook : nn::LinearHook {
  void on_linear_output(const nn::LinearId&, tn::Tensor&, int,
                        int) override {
    throw std::runtime_error("hook failure");
  }
};

TEST(LinearHookGuard, InstallsAndRestores) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  ThrowingHook hook;
  EXPECT_EQ(m.linear_hook(), nullptr);
  {
    LinearHookGuard guard(m, &hook);
    EXPECT_EQ(m.linear_hook(), &hook);
  }
  EXPECT_EQ(m.linear_hook(), nullptr);
}

// Regression: before the guard existed, a throw between set_linear_hook
// and the manual reset left a dangling hook installed for the next trial.
TEST(LinearHookGuard, ClearsHookWhenInferenceThrows) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  ThrowingHook hook;
  EXPECT_THROW(
      {
        LinearHookGuard guard(m, &hook);
        auto cache = m.make_cache();
        (void)m.forward(tokens({1, 2, 3}), cache, 0);
      },
      std::runtime_error);
  EXPECT_EQ(m.linear_hook(), nullptr);

  // The engine is immediately usable again, hook-free.
  auto cache = m.make_cache();
  const auto logits = m.forward(tokens({1, 2, 3}), cache, 0);
  EXPECT_EQ(logits.rows(), 3);
}

TEST(LinearHookGuard, RestoresPreviousHookWhenNested) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  ThrowingHook outer_hook, inner_hook;
  LinearHookGuard outer(m, &outer_hook);
  {
    LinearHookGuard inner(m, &inner_hook);
    EXPECT_EQ(m.linear_hook(), &inner_hook);
  }
  EXPECT_EQ(m.linear_hook(), &outer_hook);
}

TEST(Injector, ChangesModelOutput) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  auto cache1 = m.make_cache();
  const auto clean = m.forward(tokens({1, 2, 3, 4}), cache1, 0);

  FaultPlan plan;
  plan.model = FaultModel::Comp2Bit;
  plan.layer = {0, nn::LayerKind::QProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.6;
  plan.out_col = 5;
  plan.bits = {30, 28};
  ComputationalFaultInjector injector(plan, num::DType::F32);
  m.set_linear_hook(&injector);
  auto cache2 = m.make_cache();
  const auto faulty = m.forward(tokens({1, 2, 3, 4}), cache2, 0);
  m.set_linear_hook(nullptr);
  ASSERT_TRUE(injector.fired());
  double diff = 0.0;
  for (tn::Index i = 0; i < clean.numel(); ++i) {
    diff += std::fabs(clean.flat()[i] - faulty.flat()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

class WeightCorruptionDtype : public ::testing::TestWithParam<num::DType> {};

TEST_P(WeightCorruptionDtype, RestoresWeightsBitExactly) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()),
                          model::PrecisionConfig::for_dtype(GetParam()));
  num::Rng rng(5);
  SamplerScope scope;
  // Snapshot all weights.
  std::vector<tn::Tensor> before;
  for (auto& ref : m.linear_layers()) before.push_back(ref.weights->values());
  for (int trial = 0; trial < 50; ++trial) {
    const auto plan = sample_fault(FaultModel::Mem2Bit, m, scope, rng);
    {
      WeightCorruption guard(m, plan);
      // While corrupted, the target element differs (unless NaN weirdness).
      if (!std::isnan(guard.new_value())) {
        EXPECT_NE(guard.new_value(), guard.old_value());
      }
    }
  }
  auto layers = m.linear_layers();
  for (size_t l = 0; l < layers.size(); ++l) {
    const auto& now = layers[l].weights->values();
    for (tn::Index i = 0; i < now.numel(); ++i) {
      ASSERT_EQ(num::f32_bits(now.flat()[i]),
                num::f32_bits(before[l].flat()[i]))
          << "layer " << l << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, WeightCorruptionDtype,
                         ::testing::Values(num::DType::F32, num::DType::F16,
                                           num::DType::BF16, num::DType::I8,
                                           num::DType::I4),
                         [](const auto& info) {
                           return std::string(num::dtype_name(info.param));
                         });

// ---- outcome classification ------------------------------------------------

TEST(Outcome, Names) {
  EXPECT_EQ(outcome_name(OutcomeClass::Masked), "masked");
  EXPECT_EQ(outcome_name(OutcomeClass::SdcSubtle), "sdc-subtle");
  EXPECT_EQ(outcome_name(OutcomeClass::SdcDistorted), "sdc-distorted");
}

TEST(Outcome, LongRepeatDetected) {
  const auto toks = std::vector<tok::TokenId>{4, 9, 9, 9, 9, 9, 7};
  const auto s = analyze_distortion(toks, false, false, true, false);
  EXPECT_TRUE(s.long_repeat);
  EXPECT_TRUE(s.any());
}

TEST(Outcome, AlternatingLoopDetected) {
  std::vector<tok::TokenId> toks;
  for (int i = 0; i < 10; ++i) {
    toks.push_back(5);
    toks.push_back(8);
  }
  const auto s = analyze_distortion(toks, false, false, true, false);
  EXPECT_TRUE(s.ngram_loop);
}

TEST(Outcome, NormalTextNotDistorted) {
  const auto toks = std::vector<tok::TokenId>{4, 9, 12, 7, 4, 15, 20, 11,
                                              6, 13, 9, 18};
  const auto s = analyze_distortion(toks, false, false, true, false);
  EXPECT_FALSE(s.any());
}

TEST(Outcome, RunawayAndEmptySignals) {
  const std::vector<tok::TokenId> some = {4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_TRUE(analyze_distortion(some, false, /*hit_max=*/true,
                                 /*baseline_ended=*/true, false)
                  .runaway_length);
  EXPECT_FALSE(analyze_distortion(some, false, true,
                                  /*baseline_ended=*/false, false)
                   .runaway_length);
  EXPECT_TRUE(analyze_distortion({}, false, false, true,
                                 /*baseline_empty=*/false)
                  .empty_output);
  EXPECT_FALSE(analyze_distortion({}, false, false, true, true)
                   .empty_output);
}

TEST(Outcome, ClassificationRules) {
  DistortionSignals clean{};
  DistortionSignals bad{};
  bad.nonfinite_logits = true;
  EXPECT_EQ(classify_direct(true, clean), OutcomeClass::Masked);
  EXPECT_EQ(classify_direct(false, clean), OutcomeClass::SdcSubtle);
  EXPECT_EQ(classify_direct(false, bad), OutcomeClass::SdcDistorted);
  EXPECT_EQ(classify_generative("same", "same", clean),
            OutcomeClass::Masked);
  EXPECT_EQ(classify_generative("a", "b", clean), OutcomeClass::SdcSubtle);
  EXPECT_EQ(classify_generative("a", "b", bad),
            OutcomeClass::SdcDistorted);
}

// ---- propagation tracer -----------------------------------------------------

TEST(Tracer, CleanRunsHaveZeroDiff) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const auto prompt = tokens({1, 2, 3});
  const auto a = capture_layer_outputs(m, prompt);
  const auto b = capture_layer_outputs(m, prompt);
  ASSERT_EQ(a.size(), 14u);  // 7 linears x 2 blocks
  for (const auto& d : diff_captures(a, b)) {
    EXPECT_EQ(d.corrupted_elems, 0);
  }
}

TEST(Tracer, MemoryFaultCorruptsColumnThenEverything) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const auto prompt = tokens({1, 2, 3, 4, 5});
  const auto clean = capture_layer_outputs(m, prompt);

  FaultPlan plan;
  plan.model = FaultModel::Mem2Bit;
  plan.layer = {0, nn::LayerKind::UpProj, -1};
  plan.weight_row = 2;  // output feature 2 -> output column 2
  plan.weight_col = 3;
  plan.bits = {30, 29};
  for (int i = 0; i < static_cast<int>(m.linear_layers().size()); ++i) {
    if (m.linear_layers()[static_cast<size_t>(i)].id == plan.layer) {
      plan.layer_index = i;
    }
  }
  WeightCorruption guard(m, plan);
  const auto faulty = capture_layer_outputs(m, prompt);
  const auto diffs = diff_captures(clean, faulty);

  for (const auto& d : diffs) {
    if (d.id == plan.layer) {
      // The fault corrupts exactly the column matching the weight row,
      // across (almost) all token rows.
      EXPECT_EQ(d.corrupted_cols, 1);
      EXPECT_GT(d.row_fraction(), 0.5);
    }
    if (d.id == nn::LinearId{0, nn::LayerKind::DownProj, -1}) {
      // The next layer sees broad corruption across columns.
      EXPECT_GT(d.col_fraction(), 0.5);
    }
  }
}

TEST(Tracer, MismatchedCapturesThrow) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const auto a = capture_layer_outputs(m, tokens({1, 2}));
  auto b = capture_layer_outputs(m, tokens({1, 2}));
  b.pop_back();
  EXPECT_THROW(diff_captures(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace llmfi::core
