// Tests for the model layer: weights init/serialization, dtype-typed
// weight storage, RoPE, KV-cache consistency, hook coverage, and the
// MoE forward path — all on small random models (no training needed).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "model/transformer.h"
#include "nn/rope.h"
#include "numerics/half.h"
#include "numerics/rng.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config(bool moe = false) {
  model::ModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.moe = moe;
  cfg.n_experts = 4;
  cfg.top_k = 2;
  cfg.max_seq = 64;
  cfg.seed = 99;
  return cfg;
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

TEST(ModelWeights, NumParamsMatchesActualTensorSizes) {
  for (bool moe : {false, true}) {
    auto w = model::ModelWeights::init(tiny_config(moe));
    std::int64_t total = 0;
    w.for_each_param([&total](const std::string&, tn::Tensor& t) {
      total += t.numel();
    });
    EXPECT_EQ(total, w.num_params()) << "moe=" << moe;
  }
}

TEST(ModelWeights, InitIsDeterministicPerSeed) {
  auto a = model::ModelWeights::init(tiny_config());
  auto b = model::ModelWeights::init(tiny_config());
  EXPECT_EQ(a.embedding.flat()[5], b.embedding.flat()[5]);
  auto cfg2 = tiny_config();
  cfg2.seed = 123;
  auto c = model::ModelWeights::init(cfg2);
  EXPECT_NE(a.embedding.flat()[5], c.embedding.flat()[5]);
}

TEST(ModelWeights, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "llmfi_test_ckpt.bin";
  auto w = model::ModelWeights::init(tiny_config(true));
  w.save(path);
  auto loaded = model::ModelWeights::load(path);
  EXPECT_EQ(loaded.config.vocab_size, w.config.vocab_size);
  EXPECT_EQ(loaded.config.moe, true);
  EXPECT_EQ(loaded.config.family, w.config.family);
  bool identical = true;
  loaded.for_each_param([&](const std::string& name, tn::Tensor& t) {
    w.for_each_param([&](const std::string& name2, tn::Tensor& t2) {
      if (name == name2) {
        for (tn::Index i = 0; i < t.numel(); ++i) {
          if (t[i] != t2[i]) identical = false;
        }
      }
    });
  });
  EXPECT_TRUE(identical);
  std::filesystem::remove(path);
}

TEST(ModelWeights, LoadRejectsGarbage) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "llmfi_bad_ckpt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  EXPECT_THROW(model::ModelWeights::load(path), std::runtime_error);
  EXPECT_THROW(model::ModelWeights::load("/nonexistent/x.bin"),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ModelConfig, HashDistinguishesConfigs) {
  auto a = tiny_config();
  auto b = tiny_config();
  EXPECT_EQ(a.config_hash(), b.config_hash());
  b.d_model = 24;
  EXPECT_NE(a.config_hash(), b.config_hash());
  auto c = tiny_config();
  c.family = "other";
  EXPECT_NE(a.config_hash(), c.config_hash());
}

TEST(WeightMatrix, DtypeRoundingIsExact) {
  num::Rng rng(1);
  tn::Tensor w({4, 8});
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.1));
  nn::WeightMatrix f16(w, num::DType::F16);
  nn::WeightMatrix bf16(w, num::DType::BF16);
  for (tn::Index i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(f16.values().flat()[i],
              num::round_to_f16(w.flat()[i]));
    EXPECT_EQ(bf16.values().flat()[i],
              num::round_to_bf16(w.flat()[i]));
  }
}

class WeightMatrixFlip : public ::testing::TestWithParam<num::DType> {};

TEST_P(WeightMatrixFlip, FlipTwiceRestoresExactly) {
  num::Rng rng(2);
  tn::Tensor w({6, 16});
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.05));
  nn::WeightMatrix m(w, GetParam(), 8);
  const tn::Tensor before = m.values();
  for (int trial = 0; trial < 60; ++trial) {
    const auto r = static_cast<tn::Index>(rng.uniform_u64(6));
    const auto c = static_cast<tn::Index>(rng.uniform_u64(16));
    int b0 = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(m.storage_bits())));
    int b1;
    do {
      b1 = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(m.storage_bits())));
    } while (b1 == b0);
    const int bits[2] = {b0, b1};
    m.flip_bits(r, c, bits);
    m.flip_bits(r, c, bits);
  }
  for (tn::Index i = 0; i < before.numel(); ++i) {
    EXPECT_EQ(m.values().flat()[i], before.flat()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, WeightMatrixFlip,
                         ::testing::Values(num::DType::F32, num::DType::F16,
                                           num::DType::BF16, num::DType::I8,
                                           num::DType::I4),
                         [](const auto& info) {
                           return std::string(num::dtype_name(info.param));
                         });

TEST(Rope, InverseUndoesRotation) {
  num::Rng rng(3);
  tn::Tensor x({5, 12});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  tn::Tensor y = x;
  nn::apply_rope(y, 3, 7);
  nn::apply_rope(y, 3, 7, 10000.0f, /*inverse=*/true);
  for (tn::Index i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y.flat()[i], x.flat()[i], 1e-4);
  }
}

TEST(Rope, PositionZeroIsIdentity) {
  tn::Tensor x({1, 8});
  for (tn::Index i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  tn::Tensor y = x;
  nn::apply_rope(y, 2, 0);
  for (tn::Index i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(KvCache, OverflowThrows) {
  nn::KvCache cache(1, 4, 8);
  tn::Tensor kv({3, 8});
  cache.append(0, kv, kv);
  cache.advance(3);
  tn::Tensor kv2({2, 8});
  // Cache misuse (overflow, shape mismatch, bad fork bounds) throws
  // std::invalid_argument uniformly; std::runtime_error is reserved for
  // environmental failures like page-pool exhaustion.
  EXPECT_THROW(cache.append(0, kv2, kv2), std::invalid_argument);
}

TEST(KvCache, ShapeMismatchThrowsInEveryBuildType) {
  // These used to be assert()s, which vanish under NDEBUG and let a
  // malformed append silently corrupt the cache in Release builds.
  nn::KvCache cache(2, 8, 8);
  tn::Tensor bad_cols({1, 4});
  tn::Tensor ok({1, 8});
  EXPECT_THROW(cache.append(0, bad_cols, ok), std::invalid_argument);
  EXPECT_THROW(cache.append(0, ok, bad_cols), std::invalid_argument);
  EXPECT_THROW(cache.append(0, tn::Tensor({2, 8}), ok),
               std::invalid_argument);  // k/v row mismatch
  EXPECT_THROW(cache.append(2, ok, ok), std::invalid_argument);  // bad block
  std::vector<float> short_row(4, 0.0f);
  std::vector<float> full_row(8, 0.0f);
  EXPECT_THROW(cache.append_row(0, short_row, full_row),
               std::invalid_argument);
  EXPECT_THROW(cache.append_row(0, full_row, short_row),
               std::invalid_argument);
}

TEST(InferenceModel, ForwardIsDeterministic) {
  auto w = model::ModelWeights::init(tiny_config());
  model::InferenceModel m1(w, {}), m2(w, {});
  auto c1 = m1.make_cache();
  auto c2 = m2.make_cache();
  const auto prompt = tokens({1, 5, 9, 20});
  auto l1 = m1.forward(prompt, c1, 0);
  auto l2 = m2.forward(prompt, c2, 0);
  for (tn::Index i = 0; i < l1.numel(); ++i) {
    EXPECT_EQ(l1.flat()[i], l2.flat()[i]);
  }
}

TEST(InferenceModel, KvCacheMatchesFullRecompute) {
  // Logits for the last token must be identical whether the prefix was
  // processed incrementally (KV cache) or in one pass.
  auto w = model::ModelWeights::init(tiny_config());
  model::InferenceModel m(w, {});

  auto full_cache = m.make_cache();
  const auto full = tokens({1, 5, 9, 20, 3});
  auto full_logits = m.forward(full, full_cache, 0);

  auto inc_cache = m.make_cache();
  const auto prefix = tokens({1, 5, 9, 20});
  (void)m.forward(prefix, inc_cache, 0);
  const auto last = tokens({3});
  auto inc_logits = m.forward(last, inc_cache, 1);

  for (tn::Index v = 0; v < full_logits.cols(); ++v) {
    EXPECT_NEAR(full_logits.at(4, v), inc_logits.at(0, v), 1e-4)
        << "vocab " << v;
  }
}

TEST(InferenceModel, KvCacheMatchesFullRecomputeMoe) {
  auto w = model::ModelWeights::init(tiny_config(true));
  model::InferenceModel m(w, {});
  auto full_cache = m.make_cache();
  const auto full = tokens({2, 7, 11, 4});
  auto full_logits = m.forward(full, full_cache, 0);
  auto inc_cache = m.make_cache();
  (void)m.forward(tokens({2, 7, 11}), inc_cache, 0);
  auto inc_logits = m.forward(tokens({4}), inc_cache, 1);
  for (tn::Index v = 0; v < full_logits.cols(); ++v) {
    EXPECT_NEAR(full_logits.at(3, v), inc_logits.at(0, v), 1e-4);
  }
}

TEST(InferenceModel, LinearLayerRegistryCoversArchitecture) {
  auto dense = model::ModelWeights::init(tiny_config(false));
  model::InferenceModel md(dense, {});
  // Dense: 7 linears per block (q,k,v,o,gate,up,down) x 2 blocks.
  EXPECT_EQ(md.linear_layers().size(), 14u);

  auto moe = model::ModelWeights::init(tiny_config(true));
  model::InferenceModel mm(moe, {});
  // MoE: q,k,v,o + router + 4 experts x 3 = 17 per block x 2 blocks.
  EXPECT_EQ(mm.linear_layers().size(), 34u);
  std::set<std::string> names;
  for (const auto& ref : mm.linear_layers()) {
    names.insert(nn::to_string(ref.id));
  }
  EXPECT_EQ(names.size(), 34u);  // all ids distinct
  EXPECT_TRUE(names.count("block0.router"));
  EXPECT_TRUE(names.count("block1.expert_down[3]"));
}

TEST(InferenceModel, HookSeesEveryDenseLinearOncePerPass) {
  auto w = model::ModelWeights::init(tiny_config(false));
  model::InferenceModel m(w, {});
  struct Counter : nn::LinearHook {
    std::map<std::string, int> counts;
    void on_linear_output(const nn::LinearId& id, tn::Tensor&, int,
                          int) override {
      ++counts[nn::to_string(id)];
    }
  } counter;
  m.set_linear_hook(&counter);
  auto cache = m.make_cache();
  (void)m.forward(tokens({1, 2, 3}), cache, 0);
  m.set_linear_hook(nullptr);
  EXPECT_EQ(counter.counts.size(), 14u);
  for (const auto& [name, count] : counter.counts) {
    EXPECT_EQ(count, 1) << name;
  }
}

TEST(InferenceModel, HookCanCorruptDataPath) {
  // A hook that zeroes the v_proj output must change the logits — proof
  // that the hook operates on the live data path, not a copy.
  auto w = model::ModelWeights::init(tiny_config(false));
  model::InferenceModel m(w, {});
  auto cache1 = m.make_cache();
  auto clean = m.forward(tokens({1, 2, 3}), cache1, 0);

  struct Zeroer : nn::LinearHook {
    void on_linear_output(const nn::LinearId& id, tn::Tensor& y, int,
                          int) override {
      if (id.kind == nn::LayerKind::VProj && id.block == 0) y.zero();
    }
  } zeroer;
  m.set_linear_hook(&zeroer);
  auto cache2 = m.make_cache();
  auto faulty = m.forward(tokens({1, 2, 3}), cache2, 0);
  m.set_linear_hook(nullptr);
  double diff = 0.0;
  for (tn::Index i = 0; i < clean.numel(); ++i) {
    diff += std::fabs(clean.flat()[i] - faulty.flat()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(InferenceModel, ActivationRoundingAppliesDtype) {
  auto w = model::ModelWeights::init(tiny_config(false));
  model::InferenceModel m(w, model::PrecisionConfig::for_dtype(
                                 num::DType::F16));
  struct Checker : nn::LinearHook {
    bool all_f16 = true;
    void on_linear_output(const nn::LinearId&, tn::Tensor& y, int,
                          int) override {
      for (float v : y.flat()) {
        if (v != num::round_to_f16(v)) all_f16 = false;
      }
    }
  } checker;
  m.set_linear_hook(&checker);
  auto cache = m.make_cache();
  (void)m.forward(tokens({1, 2, 3, 4}), cache, 0);
  m.set_linear_hook(nullptr);
  EXPECT_TRUE(checker.all_f16);
}

TEST(InferenceModel, ExpertObserverFiresPerTokenPerBlock) {
  auto w = model::ModelWeights::init(tiny_config(true));
  model::InferenceModel m(w, {});
  struct Obs : nn::ExpertObserver {
    int calls = 0;
    int max_expert = -1;
    void on_expert_selection(int, int, std::span<const int> experts)
        override {
      ++calls;
      for (int e : experts) max_expert = std::max(max_expert, e);
      EXPECT_EQ(experts.size(), 2u);  // top_k
    }
  } obs;
  m.set_expert_observer(&obs);
  auto cache = m.make_cache();
  (void)m.forward(tokens({1, 2, 3}), cache, 0);
  m.set_expert_observer(nullptr);
  EXPECT_EQ(obs.calls, 3 * 2);  // tokens x blocks
  EXPECT_LT(obs.max_expert, 4);
}

TEST(InferenceModel, NonFiniteLogitDiagnostics) {
  auto w = model::ModelWeights::init(tiny_config(false));
  model::InferenceModel m(w, {});
  EXPECT_FALSE(m.saw_nonfinite_logits());
  // Force an inf through a hook.
  struct Poison : nn::LinearHook {
    void on_linear_output(const nn::LinearId& id, tn::Tensor& y, int,
                          int) override {
      if (id.kind == nn::LayerKind::DownProj && id.block == 1) {
        y.at(0, 0) = std::numeric_limits<float>::infinity();
      }
    }
  } poison;
  m.set_linear_hook(&poison);
  auto cache = m.make_cache();
  (void)m.forward(tokens({1, 2}), cache, 0);
  m.set_linear_hook(nullptr);
  // The inf flows into the residual stream; the final norm may contain
  // it, so we only require that diagnostics do not crash and reset works.
  m.reset_diagnostics();
  EXPECT_FALSE(m.saw_nonfinite_logits());
}

TEST(FamilyConfig, ThreeFamilies) {
  auto a = model::family_config("aquila", 100);
  auto q = model::family_config("qilin", 100);
  auto f = model::family_config("falco", 100);
  EXPECT_NE(a.seed, q.seed);
  EXPECT_NE(q.init, f.init);
  EXPECT_THROW(model::family_config("gpt", 100), std::invalid_argument);
}

}  // namespace
}  // namespace llmfi
