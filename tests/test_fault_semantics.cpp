// Cross-cutting fault-semantics tests: how single-shot computational
// injection interacts with multiple-choice scoring and beam search, how
// pass restriction scopes sampling, and dtype-bounded activation flips.

#include <gtest/gtest.h>

#include <cmath>

#include "core/injector.h"
#include "eval/campaign.h"
#include "gen/generate.h"
#include "numerics/bitflip.h"
#include "numerics/half.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 64;
  cfg.seed = 321;
  return cfg;
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

TEST(FaultSemantics, McFaultHitsExactlyOneOption) {
  // pass_index == option index in score_options: a fault planned for
  // pass 1 must change option 1's score and leave the others bit-equal.
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const auto prompt = tokens({1, 4, 7});
  const std::vector<std::vector<tok::TokenId>> options = {
      tokens({5, 6}), tokens({8, 9}), tokens({10, 11})};
  const auto clean = gen::score_options(m, prompt, options);

  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp2Bit;
  plan.layer = {1, nn::LayerKind::DownProj, -1};
  plan.pass_index = 1;
  // 5 rows (3 prompt + 2 option tokens); row 3 is the first option
  // token, whose logits score the option's second token.
  plan.row_frac = 0.7;
  plan.out_col = 3;
  plan.bits = {30, 28};
  core::ComputationalFaultInjector injector(plan, num::DType::F32);
  m.set_linear_hook(&injector);
  const auto faulty = gen::score_options(m, prompt, options);
  m.set_linear_hook(nullptr);

  ASSERT_TRUE(injector.fired());
  EXPECT_DOUBLE_EQ(faulty.scores[0], clean.scores[0]);
  EXPECT_NE(faulty.scores[1], clean.scores[1]);
  EXPECT_DOUBLE_EQ(faulty.scores[2], clean.scores[2]);
}

TEST(FaultSemantics, BeamSearchFaultFiresOnceAcrossBeams) {
  // All beams share a pass index per iteration; the single-shot injector
  // must corrupt only the first matching beam's forward pass.
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::QProj, -1};
  plan.pass_index = 2;
  plan.row_frac = 0.0;
  plan.out_col = 2;
  plan.bits = {30};
  core::ComputationalFaultInjector injector(plan, num::DType::F32);
  m.set_linear_hook(&injector);
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 6;
  cfg.num_beams = 4;
  const auto r = gen::generate(m, tokens({1, 4, 7}), cfg);
  m.set_linear_hook(nullptr);
  (void)r;
  // With 4 beams, pass 2 executes up to 4 times; single-shot semantics
  // guarantee exactly one firing.
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(injector.record().pass_index, 2);
}

TEST(FaultSemantics, ExcludeFinalPassesNarrowsSampling) {
  // The Fig 20 scoping knob: with exclude_final_passes set, sampled
  // computational faults must avoid the trailing passes.
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  core::SamplerScope scope;
  scope.max_passes = 10 - 4;  // campaign computes base.passes - exclude
  num::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto plan =
        core::sample_fault(core::FaultModel::Comp1Bit, m, scope, rng);
    EXPECT_LT(plan.pass_index, 6);
  }
}

TEST(FaultSemantics, Fp16ActivationFlipIsBounded) {
  // With fp16 activations, no single flip can exceed the fp16 range —
  // the root cause of Fig 21's fp16 > bf16 resilience.
  num::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const float v = num::round_to_f16(
        static_cast<float>(rng.normal(0.0, 5.0)));
    const int bit = static_cast<int>(rng.uniform_u64(16));
    const float flipped = num::flip_float_bit(v, num::DType::F16, bit);
    if (std::isfinite(flipped)) {
      EXPECT_LE(std::fabs(flipped), 65504.0f);
    }
  }
}

TEST(FaultSemantics, Bf16MsbFlipEscapesFp16RangeRoutinely) {
  // Counterpart: a bf16 exponent-MSB flip of an ordinary value lands far
  // outside anything fp16 can represent — either a huge finite value
  // (|v| < 1: exponent jumps by +128) or inf/NaN (|v| in [1, 2):
  // exponent saturates). Only values with |v| >= 2 flip downward.
  int escaped = 0;
  num::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const float v = num::round_to_bf16(
        static_cast<float>(rng.normal(0.0, 1.0)));
    const float flipped = num::flip_float_bit(v, num::DType::BF16, 14);
    if (!std::isfinite(flipped) || std::fabs(flipped) > 65504.0f) ++escaped;
  }
  EXPECT_GT(escaped, 150);  // ~95% of N(0,1) has |v| < 2
}

TEST(FaultSemantics, MemFaultAffectsEveryPass) {
  // A memory fault must perturb both prefill and later decode passes
  // (persistence), unlike the single-shot computational fault.
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  auto run_pair = [&m]() {
    auto cache = m.make_cache();
    tn::Tensor l0 = m.forward(tokens({1, 2, 3}), cache, 0);
    tn::Tensor l1 = m.forward(tokens({4}), cache, 1);
    return std::pair<tn::Tensor, tn::Tensor>(std::move(l0), std::move(l1));
  };
  auto [c0, c1] = run_pair();

  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer_index = 2;  // block0 v_proj
  plan.layer = m.linear_layers()[2].id;
  plan.weight_row = 1;
  plan.weight_col = 2;
  plan.bits = {30, 27};
  core::WeightCorruption guard(m, plan);
  auto [f0, f1] = run_pair();

  auto differs = [](const tn::Tensor& a, const tn::Tensor& b) {
    for (tn::Index i = 0; i < a.numel(); ++i) {
      const float x = a.flat()[i], y = b.flat()[i];
      if (std::isnan(x) != std::isnan(y)) return true;
      if (!std::isnan(x) && x != y) return true;
    }
    return false;
  };
  EXPECT_TRUE(differs(c0, f0));  // prefill affected
  EXPECT_TRUE(differs(c1, f1));  // decode pass affected too
}

}  // namespace
}  // namespace llmfi
