// net-layer tests (DESIGN.md §15): incremental HTTP parsers under
// pathological fragmentation and malformed input, chunked/SSE framing
// goldens, the minimal JSON field extraction, and loopback end-to-end
// runs of the epoll server over a tiny in-test model — streamed tokens
// must be byte-identical to the sequential gen::generate() oracle,
// client disconnect must cancel the in-flight sequence and hand its KV
// pages back to the pool, and the NetParallel suite drives concurrent
// sessions for the TSan job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "gen/generate.h"
#include "net/client.h"
#include "net/http.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "serve/scheduler.h"

namespace llmfi {
namespace {

// --- HTTP request parser -------------------------------------------------

constexpr std::string_view kPost =
    "POST /v1/completions HTTP/1.1\r\n"
    "Host: llmfi\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 19\r\n"
    "\r\n"
    "{\"prompt_ids\":[42]}";

TEST(HttpRequestParser, OneByteAtATime) {
  net::HttpRequestParser p;
  for (size_t i = 0; i < kPost.size(); ++i) {
    ASSERT_EQ(p.feed(kPost.substr(i, 1)), net::HttpError::Ok) << "byte " << i;
    EXPECT_EQ(p.done(), i + 1 == kPost.size()) << "byte " << i;
  }
  const net::HttpRequest& r = p.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/v1/completions");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.header("content-type"), "application/json");
  EXPECT_EQ(r.header("CONTENT-LENGTH"), "19");  // case-insensitive lookup
  EXPECT_EQ(r.body, "{\"prompt_ids\":[42]}");
  EXPECT_TRUE(r.keep_alive());
}

TEST(HttpRequestParser, PipelinedRequestsSurviveReset) {
  net::HttpRequestParser p;
  std::string two(kPost);
  two += "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(p.feed(two), net::HttpError::Ok);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "POST");
  // reset() re-parses the residue: the second request completes without
  // another feed.
  ASSERT_EQ(p.reset(), net::HttpError::Ok);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/healthz");
  EXPECT_FALSE(p.request().keep_alive());
}

TEST(HttpRequestParser, PathologicalInputsMapToTypedErrors) {
  {
    net::HttpRequestParser p;
    EXPECT_EQ(p.feed("BREW /coffee HTTP/1.1\r\n\r\n"),
              net::HttpError::BadMethod);
  }
  {
    net::HttpRequestParser p;
    EXPECT_EQ(p.feed("GET nopath HTTP/1.1\r\n\r\n"),
              net::HttpError::BadRequest);
  }
  {
    net::HttpRequestParser p;
    EXPECT_EQ(p.feed("POST /v1/completions HTTP/1.1\r\nHost: x\r\n\r\n"),
              net::HttpError::LengthRequired);
  }
  {
    net::HttpLimits limits;
    limits.max_header_bytes = 64;
    net::HttpRequestParser p(limits);
    std::string big = "GET / HTTP/1.1\r\nX-Pad: ";
    big += std::string(128, 'a');
    big += "\r\n\r\n";
    EXPECT_EQ(p.feed(big), net::HttpError::HeadersTooLarge);
  }
  {
    net::HttpLimits limits;
    limits.max_body_bytes = 8;
    net::HttpRequestParser p(limits);
    EXPECT_EQ(p.feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
              net::HttpError::BodyTooLarge);
  }
  {
    // Errors are sticky until reset().
    net::HttpRequestParser p;
    ASSERT_EQ(p.feed("JUNK\r\n"), net::HttpError::BadRequest);
    EXPECT_FALSE(p.done());
  }
}

// --- HTTP response parser / chunked / SSE framing ------------------------

TEST(HttpResponseParser, ChunkedStreamOneByteAtATime) {
  std::string wire = net::make_stream_headers(200, "text/event-stream");
  wire += net::chunk("hello ");
  wire += net::chunk("world");
  wire += net::last_chunk();

  net::HttpResponseParser p;
  std::string body;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_EQ(p.feed(wire.substr(i, 1)), net::HttpError::Ok) << "byte " << i;
    if (p.headers_done()) body += p.body_delta();
  }
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.response().status, 200);
  EXPECT_EQ(p.response().header("content-type"), "text/event-stream");
  EXPECT_EQ(body, "hello world");
  EXPECT_EQ(p.response().body, "hello world");
}

TEST(SseFraming, GoldensAndRoundTrip) {
  EXPECT_EQ(net::sse_event("x"), "data: x\n\n");
  EXPECT_EQ(net::sse_event("[DONE]"), "data: [DONE]\n\n");
  // Multi-line payloads get one data: line each, per the SSE spec.
  EXPECT_EQ(net::sse_event("a\nb"), "data: a\ndata: b\n\n");
  EXPECT_EQ(net::chunk("abc"), "3\r\nabc\r\n");
  EXPECT_EQ(net::last_chunk(), "0\r\n\r\n");

  const std::string wire = net::sse_event("{\"token_id\":7}") +
                           ": comment line\n\n" + net::sse_event("a\nb") +
                           net::sse_event("[DONE]");
  net::SseParser sse;
  std::vector<std::string> events;
  for (size_t i = 0; i < wire.size(); ++i) {  // worst-case fragmentation
    for (std::string& ev : sse.feed(wire.substr(i, 1))) {
      events.push_back(std::move(ev));
    }
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "{\"token_id\":7}");
  EXPECT_EQ(events[1], "a\nb");
  EXPECT_EQ(events[2], "[DONE]");
}

TEST(JsonFields, TolerantTopLevelLookup) {
  const std::string body =
      "{\"prompt\": \"add 2 and 3\", \"prompt_ids\": [4, 5, 6], "
      "\"max_new_tokens\": 12, \"done\": true, "
      "\"nested\": {\"max_new_tokens\": 99}, \"esc\": \"a\\\"b\\n\"}";
  EXPECT_EQ(net::json_string_field(body, "prompt").value_or(""),
            "add 2 and 3");
  EXPECT_EQ(net::json_string_field(body, "esc").value_or(""), "a\"b\n");
  EXPECT_EQ(net::json_int_field(body, "max_new_tokens").value_or(0), 12);
  EXPECT_EQ(net::json_bool_field(body, "done").value_or(false), true);
  const auto ids = net::json_int_array_field(body, "prompt_ids");
  ASSERT_TRUE(ids.has_value());
  EXPECT_EQ(*ids, (std::vector<std::int64_t>{4, 5, 6}));
  // Missing keys and keys only inside nested objects are not found.
  EXPECT_FALSE(net::json_int_field(body, "absent").has_value());
  EXPECT_FALSE(net::json_string_field("{\"a\": {\"b\": \"x\"}}", "b")
                   .has_value());
  EXPECT_EQ(net::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// --- loopback end-to-end -------------------------------------------------

model::ModelConfig tiny_config(int max_seq = 48) {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = max_seq;
  cfg.seed = 55;
  return cfg;
}

tok::Vocab tiny_vocab() {
  tok::Vocab v;  // pad/bos/eos/unk preinstalled
  while (v.size() < 24) {
    std::string word = "w";
    word += std::to_string(v.size());
    v.add(word);
  }
  return v;
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

std::string ids_body(const std::vector<tok::TokenId>& ids, int max_new) {
  std::string body = "{\"prompt_ids\":[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) body += ',';
    body += std::to_string(ids[i]);
  }
  body += "],\"max_new_tokens\":" + std::to_string(max_new) + "}";
  return body;
}

// Streams one completion and returns the token ids in arrival order;
// asserts the stream terminated with done + [DONE].
std::vector<tok::TokenId> stream_ids(net::HttpClient& client,
                                     const std::vector<tok::TokenId>& prompt,
                                     int max_new) {
  std::vector<tok::TokenId> got;
  bool saw_done = false;
  bool saw_terminator = false;
  const auto resp = client.post_sse(
      "/v1/completions", ids_body(prompt, max_new),
      [&](const std::string& ev) {
        if (ev == "[DONE]") {
          saw_terminator = true;
        } else if (net::json_bool_field(ev, "done").value_or(false)) {
          saw_done = true;
        } else if (const auto t = net::json_int_field(ev, "token_id")) {
          got.push_back(static_cast<tok::TokenId>(*t));
        }
        return true;
      });
  EXPECT_TRUE(resp.has_value());
  if (resp) {
    EXPECT_EQ(resp->status, 200);
  }
  EXPECT_TRUE(saw_done);
  EXPECT_TRUE(saw_terminator);
  return got;
}

TEST(NetLoopback, StreamedTokensMatchSequentialOracle) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const tok::Vocab vocab = tiny_vocab();
  serve::BatchEngine engine(m, 2);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 10;
  net::Server server(scfg, {sched, vocab, 10, {}, {}});
  server.start();

  const std::vector<std::vector<tok::TokenId>> prompts = {
      tokens({1, 4, 7}), tokens({5}), tokens({8, 9, 10, 11})};
  net::HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // /healthz before load.
  const auto health = client.request("GET", "/healthz", "", "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);

  // Identity: streamed ids byte-identical to gen::generate, reusing one
  // kept-alive connection across requests.
  for (const auto& p : prompts) {
    gen::GenerationConfig gcfg;
    gcfg.max_new_tokens = 10;
    gcfg.eos = vocab.eos();
    const auto ref = gen::generate(m, p, gcfg).tokens;
    EXPECT_EQ(stream_ids(client, p, 10), ref);
  }

  // Error paths on the same connection: unknown target, empty prompt,
  // out-of-range ids.
  const auto miss = client.request("GET", "/nope", "", "");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->status, 404);
  const auto empty =
      client.request("POST", "/v1/completions", "application/json", "{}");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->status, 400);
  const auto oob = client.request("POST", "/v1/completions",
                                  "application/json",
                                  "{\"prompt_ids\":[9999]}");
  ASSERT_TRUE(oob.has_value());
  EXPECT_EQ(oob->status, 400);
  // The connection still serves after the 4xx round trips.
  gen::GenerationConfig gcfg4;
  gcfg4.max_new_tokens = 4;
  gcfg4.eos = vocab.eos();
  EXPECT_EQ(stream_ids(client, prompts[0], 4),
            gen::generate(m, prompts[0], gcfg4).tokens);

  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().bad_requests.load(), 3u);
  EXPECT_EQ(sched.stats().cancelled, 0u);
}

TEST(NetLoopback, DisconnectCancelsInFlightAndFreesKvPages) {
  // A roomy max_seq gives the aborted request a long remaining decode,
  // so the disconnect always lands while its slot is still active.
  model::InferenceModel m(model::ModelWeights::init(tiny_config(1024)), {});
  const tok::Vocab vocab = tiny_vocab();
  auto pool = std::make_shared<nn::PagePool>(
      1024, nn::PagePool::kDefaultPageRows, tiny_config().d_model);
  const int total_pages = pool->free_pages();
  serve::BatchEngine engine(m, 2, pool);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 900;
  net::Server server(scfg, {sched, vocab, 900, {}, {}});
  server.start();

  net::HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  int events = 0;
  const auto resp = client.post_sse(
      "/v1/completions", ids_body(tokens({1, 4, 7}), 900),
      [&events](const std::string&) { return ++events < 3; });
  EXPECT_FALSE(resp.has_value());  // aborted mid-stream: no final response
  EXPECT_GE(events, 3);

  // The server notices the disconnect (EOF on a streaming connection)
  // and cancels the in-flight sequence.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().disconnect_cancels.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().disconnect_cancels.load(), 1u);

  server.request_drain();
  server.wait();
  // Scheduler state is safe to read once the engine thread exited.
  EXPECT_EQ(sched.stats().cancelled, 1u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
  EXPECT_EQ(sched.stats().completed, 0u);
  // The cancelled slot's pages went back to the pool immediately; after
  // the drain the pool must be whole again.
  EXPECT_EQ(pool->free_pages(), total_pages);
}

// --- observability endpoints (DESIGN.md §16) ------------------------------

// Streams one completion and returns the server-assigned request id
// carried on the done event.
std::int64_t stream_and_get_id(net::HttpClient& client,
                               const std::vector<tok::TokenId>& prompt,
                               int max_new) {
  std::int64_t id = -1;
  const auto resp = client.post_sse(
      "/v1/completions", ids_body(prompt, max_new),
      [&](const std::string& ev) {
        if (ev != "[DONE]" &&
            net::json_bool_field(ev, "done").value_or(false)) {
          id = net::json_int_field(ev, "id").value_or(-1);
        }
        return true;
      });
  EXPECT_TRUE(resp.has_value());
  return id;
}

TEST(NetLoopback, RequestTimelineVarzAndSloEndpoints) {
  obs::recorder_clear();
  obs::recorder_start(512);
  obs::metrics_start();
  obs::SloMonitor::global().reset();
  obs::SloMonitor::global().configure({500.0, 250.0, 0.99});
  obs::SloMonitor::global().enable();

  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const tok::Vocab vocab = tiny_vocab();
  serve::BatchEngine engine(m, 2);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 8;
  net::Server server(scfg, {sched, vocab, 8, {}, [] {
                              return std::string(
                                  "{\"server\":\"test\",\"model\":\"tiny\"}");
                            }});
  server.start();

  net::HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  const std::int64_t id = stream_and_get_id(client, tokens({1, 4, 7}), 8);
  ASSERT_GT(id, 0);

  // Per-request timeline: the admit/retire events the engine recorded
  // under this request's context, and nothing from other requests.
  const auto timeline =
      client.request("GET", "/v1/requests/" + std::to_string(id), "", "");
  ASSERT_TRUE(timeline.has_value());
  EXPECT_EQ(timeline->status, 200);
  EXPECT_NE(timeline->body.find("\"request_id\":" + std::to_string(id)),
            std::string::npos)
      << timeline->body;
  EXPECT_NE(timeline->body.find("\"request_admit\""), std::string::npos);
  EXPECT_NE(timeline->body.find("\"request_retire\""), std::string::npos);

  // Unknown and malformed ids are 404s, not empty timelines.
  const auto miss = client.request("GET", "/v1/requests/986923", "", "");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->status, 404);
  const auto malformed = client.request("GET", "/v1/requests/12x", "", "");
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->status, 404);

  // The collection root serves the full flight-recorder dump.
  const auto full = client.request("GET", "/v1/requests", "", "");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->status, 200);
  EXPECT_NE(full->body.find("\"ring_capacity\""), std::string::npos);

  // /varz serves the backend's config snapshot verbatim.
  const auto varz = client.request("GET", "/varz", "", "");
  ASSERT_TRUE(varz.has_value());
  EXPECT_EQ(varz->status, 200);
  EXPECT_EQ(varz->body, "{\"server\":\"test\",\"model\":\"tiny\"}");

  // /metrics publishes the SLO gauges at scrape time, and the burn rate
  // printed must satisfy its own definition against the printed
  // attainment and objective.
  const auto metrics = client.request("GET", "/metrics", "", "");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("slo_attainment{slo=\"ttft\",window=\"60s\"}"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(
      metrics->body.find("slo_burn_rate{slo=\"token_gap\",window=\"1s\"}"),
      std::string::npos);
  EXPECT_NE(metrics->body.find("slo_objective 0.99"), std::string::npos);
  EXPECT_NE(metrics->body.find("serve_ttft_us_count"), std::string::npos);

  server.request_drain();
  server.wait();
  obs::metrics_stop();
  obs::recorder_stop();
  obs::recorder_clear();
}

TEST(NetLoopback, VarzWithoutCallbackServesMinimalBody) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const tok::Vocab vocab = tiny_vocab();
  serve::BatchEngine engine(m, 2);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 8;
  net::Server server(scfg, {sched, vocab, 8, {}, {}});
  server.start();

  net::HttpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  const auto varz = client.request("GET", "/varz", "", "");
  ASSERT_TRUE(varz.has_value());
  EXPECT_EQ(varz->status, 200);
  EXPECT_EQ(varz->body, "{\"server\":\"llmfi_serve\"}");
  // Without the recorder armed the timeline endpoint has nothing.
  obs::recorder_clear();
  const auto timeline = client.request("GET", "/v1/requests/1", "", "");
  ASSERT_TRUE(timeline.has_value());
  EXPECT_EQ(timeline->status, 404);

  server.request_drain();
  server.wait();
}

// --- concurrent sessions (TSan target) -----------------------------------

TEST(NetParallel, ConcurrentSessionsVerifyAgainstOracle) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config()), {});
  const tok::Vocab vocab = tiny_vocab();
  auto pool = std::make_shared<nn::PagePool>(
      256, nn::PagePool::kDefaultPageRows, tiny_config().d_model);
  serve::BatchEngine engine(m, 4, pool);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 8;
  net::Server server(scfg, {sched, vocab, 8, {}, {}});
  server.start();

  std::vector<net::LoadPrompt> prompts;
  for (int base : {4, 7, 10, 13}) {
    net::LoadPrompt p;
    p.ids = tokens({1, base, base + 1});
    gen::GenerationConfig gcfg;
    gcfg.max_new_tokens = 8;
    gcfg.eos = vocab.eos();
    p.expect = gen::generate(m, p.ids, gcfg).tokens;
    prompts.push_back(std::move(p));
  }

  net::LoadArmConfig cfg;
  cfg.name = "tsan";
  cfg.mode = net::ArrivalMode::Closed;
  cfg.sessions = 4;
  cfg.requests = 24;
  cfg.max_new_tokens = 8;
  const net::LoadArmResult r =
      net::run_load_arm("127.0.0.1", server.port(), prompts, cfg);
  EXPECT_EQ(r.completed, 24);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r.mismatches, 0);
  EXPECT_GT(r.tokens, 0u);

  server.request_drain();
  server.wait();
  EXPECT_EQ(sched.stats().completed, 24u);
}

TEST(NetParallel, SubmitCancelChurnDrainsClean) {
  model::InferenceModel m(model::ModelWeights::init(tiny_config(256)), {});
  const tok::Vocab vocab = tiny_vocab();
  auto pool = std::make_shared<nn::PagePool>(
      512, nn::PagePool::kDefaultPageRows, tiny_config().d_model);
  const int total_pages = pool->free_pages();
  serve::BatchEngine engine(m, 2, pool);
  serve::Scheduler sched(engine);
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.max_new_tokens = 200;
  net::Server server(scfg, {sched, vocab, 200, {}, {}});
  server.start();

  // Several client threads abort mid-stream concurrently while others
  // run to completion — the cancellation path under contention.
  std::atomic<int> finished{0};
  auto aborter = [&] {
    net::HttpClient c;
    if (!c.connect("127.0.0.1", server.port())) return;
    int events = 0;
    c.post_sse("/v1/completions", ids_body(tokens({1, 5, 9}), 200),
               [&events](const std::string&) { return ++events < 2; });
  };
  auto completer = [&] {
    net::HttpClient c;
    if (!c.connect("127.0.0.1", server.port())) return;
    stream_ids(c, tokens({1, 6, 11}), 6);  // asserts done + [DONE]
    finished.fetch_add(1);
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(aborter);
  for (int i = 0; i < 3; ++i) threads.emplace_back(completer);
  for (auto& t : threads) t.join();

  server.request_drain();
  server.wait();
  EXPECT_EQ(finished.load(), 3);
  // Every submitted request either completed or cancelled — none lost.
  EXPECT_GE(sched.stats().completed, 3u);
  EXPECT_EQ(sched.stats().completed + sched.stats().cancelled, 6u);
  // Cancelled or completed, every request's pages came back.
  EXPECT_EQ(pool->free_pages(), total_pages);
}

}  // namespace
}  // namespace llmfi
