// Tests for the bench binaries' shared environment-knob parsing
// (bench/common.h): seed 0 is honored, junk fails loudly instead of
// silently becoming the fallback, and LLMFI_THREADS reaches the
// campaign config.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common.h"

namespace llmfi {
namespace {

struct EnvVar {
  explicit EnvVar(const char* name) : name_(name) {}
  ~EnvVar() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, /*overwrite=*/1); }
  const char* name_;
};

TEST(EnvInt, UnsetAndEmptyFallBack) {
  EnvVar v("LLMFI_TEST_KNOB");
  EXPECT_EQ(benchutil::env_int("LLMFI_TEST_KNOB", 42), 42);
  v.set("");
  EXPECT_EQ(benchutil::env_int("LLMFI_TEST_KNOB", 42), 42);
}

TEST(EnvInt, ParsesPlainValues) {
  EnvVar v("LLMFI_TEST_KNOB");
  v.set("7");
  EXPECT_EQ(benchutil::env_int("LLMFI_TEST_KNOB", 42), 7);
  v.set("2025");
  EXPECT_EQ(benchutil::env_int("LLMFI_TEST_KNOB", 42), 2025);
}

// Regression: `parsed > 0 ? parsed : fallback` silently replaced an
// explicit LLMFI_SEED=0 with the default seed 2025.
TEST(EnvInt, ZeroIsAValidValue) {
  EnvVar v("LLMFI_TEST_KNOB");
  v.set("0");
  EXPECT_EQ(benchutil::env_int("LLMFI_TEST_KNOB", 42), 0);
}

// Regression: atoi turned junk into 0 and therefore into the fallback;
// a typo like LLMFI_TRIALS=1OO ran a completely different campaign than
// asked. Unparseable values must abort instead.
TEST(EnvIntDeathTest, JunkFailsLoudly) {
  EnvVar v("LLMFI_TEST_KNOB");
  v.set("abc");
  EXPECT_EXIT(benchutil::env_int("LLMFI_TEST_KNOB", 42),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
  v.set("12abc");
  EXPECT_EXIT(benchutil::env_int("LLMFI_TEST_KNOB", 42),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
  v.set("-3");
  EXPECT_EXIT(benchutil::env_int("LLMFI_TEST_KNOB", 42),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
  v.set("99999999999999999999");
  EXPECT_EXIT(benchutil::env_int("LLMFI_TEST_KNOB", 42),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(DefaultCampaign, ReadsThreadsSeedAndTrialsFromEnv) {
  EnvVar trials("LLMFI_TRIALS");
  EnvVar inputs("LLMFI_INPUTS");
  EnvVar seed("LLMFI_SEED");
  EnvVar threads("LLMFI_THREADS");
  trials.set("17");
  seed.set("0");
  threads.set("4");
  const auto cfg =
      benchutil::default_campaign(core::FaultModel::Comp1Bit, 60, 8);
  EXPECT_EQ(cfg.trials, 17);
  EXPECT_EQ(cfg.n_inputs, 8);  // unset: bench default
  EXPECT_EQ(cfg.seed, 0u);
  EXPECT_EQ(cfg.threads, 4);
}

}  // namespace
}  // namespace llmfi
