// Tests for the eval layer: the workload registry (Table 1), the example
// runner on both task styles, and the model-zoo checkpoint cache.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "eval/model_zoo.h"
#include "eval/runner.h"
#include "eval/workloads.h"

namespace llmfi::eval {
namespace {

TEST(Workloads, MatchesTable1) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 9u);
  int mc = 0, gen = 0;
  for (const auto& spec : all) {
    (spec.style == data::TaskStyle::MultipleChoice ? mc : gen)++;
    EXPECT_FALSE(spec.metrics.empty()) << spec.dataset;
    EXPECT_FALSE(spec.default_models.empty()) << spec.dataset;
  }
  EXPECT_EQ(mc, 5);
  EXPECT_EQ(gen, 4);

  EXPECT_EQ(workload("wmt16-syn").metrics.front().name, "bleu");
  EXPECT_EQ(workload("wmt16-syn").metrics.back().name, "chrf++");
  EXPECT_EQ(workload("xlsum-syn").metrics.front().name, "rouge1");
  EXPECT_EQ(workload("squad2-syn").metrics.front().name, "f1");
  EXPECT_EQ(workload(data::TaskKind::MathGsm).dataset, "gsm8k-syn");
  EXPECT_THROW(workload("imagenet"), std::invalid_argument);
}

TEST(Workloads, MetricFunctionsAreCallable) {
  for (const auto& spec : all_workloads()) {
    for (const auto& m : spec.metrics) {
      const double same = m.fn("a b c", "a b c");
      EXPECT_NEAR(same, 1.0, 1e-9) << spec.dataset << "/" << m.name;
    }
  }
}

// Runner behaviour on an untrained model: output contract, not quality.
TEST(Runner, MultipleChoiceContract) {
  data::World world;
  model::ModelConfig cfg;
  cfg.vocab_size = world.vocab().size();
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 160;
  model::InferenceModel engine(model::ModelWeights::init(cfg), {});

  data::GenOptions g;
  g.train_n = 1;
  g.eval_n = 5;
  const auto td = data::make_task(world, data::TaskKind::McFact, g);
  const auto& spec = workload(data::TaskKind::McFact);
  for (const auto& ex : td.eval) {
    RunOptions opt;
    const auto r = run_example(engine, world.vocab(), spec, ex, opt);
    ASSERT_GE(r.chosen_option, 0);
    ASSERT_LT(r.chosen_option, static_cast<int>(ex.options.size()));
    EXPECT_EQ(r.output, ex.options[static_cast<size_t>(r.chosen_option)]);
    EXPECT_EQ(r.passes, static_cast<int>(ex.options.size()));
    EXPECT_EQ(r.metrics.count("accuracy"), 1u);
    EXPECT_TRUE(r.tokens.empty());
  }
}

TEST(Runner, GenerativeContract) {
  data::World world;
  model::ModelConfig cfg;
  cfg.vocab_size = world.vocab().size();
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 160;
  model::InferenceModel engine(model::ModelWeights::init(cfg), {});

  data::GenOptions g;
  g.train_n = 1;
  g.eval_n = 3;
  const auto td = data::make_task(world, data::TaskKind::Translation, g);
  const auto& spec = workload(data::TaskKind::Translation);
  for (const auto& ex : td.eval) {
    RunOptions opt;
    opt.gen.max_new_tokens = 8;
    const auto r = run_example(engine, world.vocab(), spec, ex, opt);
    EXPECT_LE(r.tokens.size(), 8u);
    EXPECT_EQ(r.metrics.count("bleu"), 1u);
    EXPECT_EQ(r.metrics.count("chrf++"), 1u);
    EXPECT_GE(r.passes, 1);
  }
}

TEST(Zoo, TrainsCachesAndReloads) {
  // Use a throwaway cache dir and a tiny training scale so this test
  // stays fast; the second Zoo must load the checkpoint, not retrain.
  const auto dir = std::filesystem::temp_directory_path() /
                   "llmfi_zoo_test_cache";
  std::filesystem::remove_all(dir);
  setenv("LLMFI_TRAIN_SCALE", "0.02", 1);

  float sample = 0.0f;
  {
    Zoo zoo(dir.string());
    const auto& w = zoo.get("scale-xs");
    EXPECT_EQ(w.config.d_model, 32);
    sample = w.embedding.flat()[7];
    EXPECT_TRUE(std::filesystem::exists(dir / "scale-xs_v1.bin"));
  }
  {
    Zoo zoo(dir.string());
    const auto t0 = std::chrono::steady_clock::now();
    const auto& w = zoo.get("scale-xs");
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    EXPECT_EQ(w.embedding.flat()[7], sample);  // same checkpoint bits
    EXPECT_LT(secs, 1.0);                      // loaded, not retrained
  }
  unsetenv("LLMFI_TRAIN_SCALE");
  std::filesystem::remove_all(dir);
}

TEST(Zoo, ModelNamesCoverTheStudy) {
  const auto& names = Zoo::model_names();
  EXPECT_EQ(names.size(), 12u);
  for (const char* required :
       {"aquila", "qilin", "falco", "alma", "summarizer", "qilin-moe",
        "qilin-dense", "scale-xl"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required),
              names.end())
        << required;
  }
}

TEST(Zoo, UnknownModelThrows) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "llmfi_zoo_test_cache2";
  Zoo zoo(dir.string());
  EXPECT_THROW(zoo.get("gpt-4"), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(Zoo, TaskDataIsStableAcrossCalls) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "llmfi_zoo_test_cache3";
  Zoo zoo(dir.string());
  const auto& a = zoo.task(data::TaskKind::QA);
  const auto& b = zoo.task(data::TaskKind::QA);
  EXPECT_EQ(&a, &b);  // cached, not regenerated
  EXPECT_EQ(a.eval.size(), 100u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace llmfi::eval
