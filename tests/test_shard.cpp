// Tensor-parallel sharded forward (DESIGN.md §14): the split/reduce
// primitives, the byte-identity of sharded vs unsharded inference at
// every kernel tier, the deterministic reduction order under adversarial
// worker timing (the ShardParallel suite, run under TSan in CI), the
// tp-partial / tp-reduce injector semantics, and campaign byte-identity
// across the full threads x batch x tp x fork execution grid.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/injector.h"
#include "eval/campaign.h"
#include "gen/generate.h"
#include "model/transformer.h"
#include "numerics/rng.h"
#include "shard/parallel_linear.h"
#include "shard/shard_group.h"
#include "tensor/kernels.h"

namespace llmfi {
namespace {

std::vector<tn::KernelTier> available_tiers() {
  std::vector<tn::KernelTier> tiers{tn::KernelTier::Reference,
                                    tn::KernelTier::Portable};
  if (tn::best_supported_tier() == tn::KernelTier::Avx2) {
    tiers.push_back(tn::KernelTier::Avx2);
  }
  return tiers;
}

tn::Tensor random_tensor(tn::Index rows, tn::Index cols, std::uint64_t seed) {
  num::Rng rng(seed);
  tn::Tensor t({rows, cols});
  for (tn::Index i = 0; i < t.numel(); ++i) {
    t.flat()[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return t;
}

bool same_bytes(const tn::Tensor& a, const tn::Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Ragged on purpose: 6 heads over 4 shards, d_ff not a multiple of the
// shard count, so every bounds computation exercises uneven splits.
model::ModelConfig ragged_config(bool moe = false) {
  model::ModelConfig cfg;
  cfg.vocab_size = 48;
  cfg.d_model = 48;
  cfg.n_layers = 2;
  cfg.n_heads = 6;
  cfg.d_ff = 84;
  cfg.moe = moe;
  cfg.n_experts = 4;
  cfg.top_k = 2;
  cfg.max_seq = 64;
  cfg.seed = 77;
  return cfg;
}

model::InferenceModel make_engine(const model::ModelConfig& cfg, int tp = 1) {
  model::InferenceModel m(model::ModelWeights::init(cfg), {});
  if (tp > 1) m.set_tensor_parallel(tp);
  return m;
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

// Prefill + a few decode passes; returns the logits of every pass
// concatenated row-wise so one byte-compare covers the whole run.
std::vector<tn::Tensor> run_passes(model::InferenceModel& m) {
  std::vector<tn::Tensor> logits;
  nn::KvCache cache = m.make_cache();
  logits.push_back(m.forward(tokens({1, 4, 7, 2, 9}), cache, 0));
  for (int pass = 1; pass <= 3; ++pass) {
    logits.push_back(m.forward(tokens({3 + pass}), cache, pass));
  }
  return logits;
}

// ---------------------------------------------------------------------------
// Split bounds

TEST(ShardBounds, ColumnBoundsCoverAndAlign) {
  for (tn::Index n : {1, 3, 7, 8, 48, 84, 117}) {
    for (int shards : {1, 2, 3, 4, 8}) {
      const auto b = shard::column_bounds(n, shards);
      ASSERT_EQ(static_cast<int>(b.size()), shards + 1);
      EXPECT_EQ(b.front(), 0);
      EXPECT_EQ(b.back(), n);
      for (size_t i = 1; i < b.size(); ++i) {
        EXPECT_LE(b[i - 1], b[i]);
        if (i != b.size() - 1) {
          EXPECT_EQ(b[i] % 4, 0);
        }
      }
    }
  }
}

TEST(ShardBounds, HeadBoundsSpreadRemainder) {
  const auto b = shard::head_bounds(6, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 6);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_GE(b[i] - b[i - 1], 1);
    EXPECT_LE(b[i] - b[i - 1], 2);
  }
}

TEST(ShardBounds, SegmentGridIsIndependentOfShardCount) {
  EXPECT_EQ(shard::RowParallelLinear::segment_count(48), 8);
  EXPECT_EQ(shard::RowParallelLinear::segment_count(5), 5);
  EXPECT_EQ(shard::RowParallelLinear::segment_count(1), 1);
  EXPECT_EQ(shard::RowParallelLinear::segment_begin(48, 0), 0);
  EXPECT_EQ(shard::RowParallelLinear::segment_begin(48, 8), 48);
}

// ---------------------------------------------------------------------------
// Kernel lemmas: the slices recompose the full product byte-for-byte.

TEST(ShardKernels, ColumnSlicesMatchFullProductAtEveryTier) {
  const auto a = random_tensor(5, 48, 11);
  const auto b = random_tensor(84, 48, 12);
  for (auto tier : available_tiers()) {
    const auto full = tn::matmul_bt_tier(a, b, tier);
    for (int shards : {1, 2, 3, 4}) {
      tn::Tensor sliced({a.rows(), b.rows()});
      const auto bounds = shard::column_bounds(b.rows(), shards);
      for (int s = 0; s < shards; ++s) {
        tn::matmul_bt_cols(a.data(), a.rows(), a.cols(), b.data(), bounds[s],
                           bounds[s + 1], sliced.data(), sliced.cols(), tier);
      }
      EXPECT_TRUE(same_bytes(full, sliced))
          << "tier " << tn::kernel_tier_name(tier) << " shards " << shards;
    }
  }
}

TEST(ShardKernels, ColumnParallelMatchesMatmulAtEveryShardCount) {
  const auto x = random_tensor(4, 48, 21);
  const auto w = random_tensor(84, 48, 22);
  for (auto tier : available_tiers()) {
    const auto oracle = tn::matmul_bt_tier(x, w, tier);
    for (int shards : {2, 3, 4}) {
      shard::ShardGroup group(shards);
      const auto y = shard::ColumnParallelLinear::run(&group, x, w, tier);
      EXPECT_TRUE(same_bytes(oracle, y))
          << "tier " << tn::kernel_tier_name(tier) << " shards " << shards;
    }
  }
}

TEST(ShardKernels, RowParallelShardedMatchesSerialAtEveryTier) {
  const auto x = random_tensor(3, 84, 31);
  const auto w = random_tensor(48, 84, 32);
  const nn::LinearId id{0, nn::LayerKind::OProj, -1};
  for (auto tier : available_tiers()) {
    const auto serial = shard::RowParallelLinear::run(
        nullptr, x, w, tier, nullptr, id, 0, 0);
    for (int shards : {2, 3, 4}) {
      shard::ShardGroup group(shards);
      const auto y = shard::RowParallelLinear::run(&group, x, w, tier,
                                                   nullptr, id, 0, 0);
      EXPECT_TRUE(same_bytes(serial, y))
          << "tier " << tn::kernel_tier_name(tier) << " shards " << shards;
    }
  }
}

TEST(ShardKernels, FusedColumnParallelMatchesUnfused) {
  const auto x = random_tensor(3, 48, 41);
  const auto gain = random_tensor(1, 48, 42);
  const auto w0 = random_tensor(84, 48, 43);
  const auto w1 = random_tensor(84, 48, 44);
  const std::vector<const tn::Tensor*> ws{&w0, &w1};
  for (auto tier : available_tiers()) {
    const auto oracle =
        tn::fused_rmsnorm_matmul_bt(x, gain, 1e-5f, ws, tier);
    for (int shards : {2, 4}) {
      shard::ShardGroup group(shards);
      const auto ys = shard::ColumnParallelLinear::run_fused(
          &group, x, gain, 1e-5f, ws, tier);
      ASSERT_EQ(ys.size(), oracle.size());
      for (size_t i = 0; i < ys.size(); ++i) {
        EXPECT_TRUE(same_bytes(oracle[i], ys[i]))
            << "tier " << tn::kernel_tier_name(tier) << " weight " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level identity: TP never changes a bit.

TEST(ShardForward, ForwardIsByteIdenticalAcrossTpDegrees) {
  const auto cfg = ragged_config();
  for (auto tier : available_tiers()) {
    tn::ScopedKernelTier scoped(tier);
    auto base_engine = make_engine(cfg);
    const auto base = run_passes(base_engine);
    for (int tp : {2, 3, 4}) {
      auto tp_engine = make_engine(cfg, tp);
      const auto got = run_passes(tp_engine);
      ASSERT_EQ(base.size(), got.size());
      for (size_t p = 0; p < base.size(); ++p) {
        EXPECT_TRUE(same_bytes(base[p], got[p]))
            << "tier " << tn::kernel_tier_name(tier) << " tp " << tp
            << " pass " << p;
      }
    }
  }
}

TEST(ShardForward, MoeForwardIsByteIdenticalAcrossTpDegrees) {
  const auto cfg = ragged_config(/*moe=*/true);
  auto base_engine = make_engine(cfg);
  const auto base = run_passes(base_engine);
  for (int tp : {2, 4}) {
    auto tp_engine = make_engine(cfg, tp);
    const auto got = run_passes(tp_engine);
    ASSERT_EQ(base.size(), got.size());
    for (size_t p = 0; p < base.size(); ++p) {
      EXPECT_TRUE(same_bytes(base[p], got[p])) << "tp " << tp << " pass " << p;
    }
  }
}

TEST(ShardForward, ForwardBatchIsByteIdenticalAcrossTpDegrees) {
  const auto cfg = ragged_config();
  auto run_batched = [&](model::InferenceModel& m) {
    std::vector<nn::KvCache> caches;
    for (int r = 0; r < 3; ++r) caches.push_back(m.make_cache());
    // Diverge the rows' contexts with per-row prefills first.
    for (int r = 0; r < 3; ++r) {
      nn::KvCache& c = caches[static_cast<size_t>(r)];
      (void)m.forward(tokens({1 + r, 5, 9 - r}), c, 0);
    }
    std::vector<tn::Tensor> logits;
    for (int pass = 1; pass <= 2; ++pass) {
      std::vector<model::InferenceModel::BatchRow> rows(3);
      for (int r = 0; r < 3; ++r) {
        rows[static_cast<size_t>(r)].cache = &caches[static_cast<size_t>(r)];
        rows[static_cast<size_t>(r)].token =
            static_cast<tok::TokenId>(2 + r + pass);
        rows[static_cast<size_t>(r)].pass_index = pass;
      }
      logits.push_back(m.forward_batch(rows));
    }
    return logits;
  };
  auto base_engine = make_engine(cfg);
  const auto base = run_batched(base_engine);
  for (int tp : {2, 4}) {
    auto tp_engine = make_engine(cfg, tp);
    const auto got = run_batched(tp_engine);
    ASSERT_EQ(base.size(), got.size());
    for (size_t p = 0; p < base.size(); ++p) {
      EXPECT_TRUE(same_bytes(base[p], got[p])) << "tp " << tp << " pass " << p;
    }
  }
}

TEST(ShardForward, CloneCarriesTpAndStaysIdentical) {
  const auto cfg = ragged_config();
  auto base_engine = make_engine(cfg);
  auto tp_engine = make_engine(cfg, 4);
  auto replica = tp_engine.clone();
  EXPECT_EQ(replica.tensor_parallel(), 4);
  const auto base = run_passes(base_engine);
  const auto got = run_passes(replica);
  for (size_t p = 0; p < base.size(); ++p) {
    EXPECT_TRUE(same_bytes(base[p], got[p])) << "pass " << p;
  }
}

TEST(ShardForward, QuantizedEngineRefusesTp) {
  auto m = model::InferenceModel(
      model::ModelWeights::init(ragged_config()),
      model::PrecisionConfig::for_dtype(num::DType::I8));
  m.set_tensor_parallel(4);
  EXPECT_EQ(m.tensor_parallel(), 1);
}

TEST(ShardGenerate, GreedyAndBeamTokensIdenticalAcrossTp) {
  const auto cfg = ragged_config();
  for (int beams : {1, 3}) {
    gen::GenerationConfig gc;
    gc.max_new_tokens = 12;
    gc.num_beams = beams;
    gc.eos = -1;  // run the full budget
    auto base_engine = make_engine(cfg);
    const auto base = gen::generate(base_engine, tokens({1, 4, 7}), gc);
    auto tp_engine = make_engine(cfg, 4);
    const auto got = gen::generate(tp_engine, tokens({1, 4, 7}), gc);
    EXPECT_EQ(base.tokens, got.tokens) << "beams " << beams;
  }
}

// ---------------------------------------------------------------------------
// ShardParallel: determinism under adversarial worker timing (TSan'd in
// CI alongside CampaignParallel/ServeParallel).

TEST(ShardParallel, ReduceOrderSurvivesTimingFuzz) {
  const auto x = random_tensor(2, 84, 51);
  const auto w = random_tensor(48, 84, 52);
  const nn::LinearId id{0, nn::LayerKind::DownProj, -1};
  const auto tier = tn::best_supported_tier();
  const auto serial = shard::RowParallelLinear::run(
      nullptr, x, w, tier, nullptr, id, 0, 0);
  shard::ShardGroup group(4);
  for (int rep = 0; rep < 32; ++rep) {
    // Skew worker timing with a per-(rep, shard) pseudo-random stall
    // before the real op; the reduction order must not care who
    // finishes when.
    group.run([&](int s) {
      const unsigned stall =
          (static_cast<unsigned>(rep) * 2654435761u + static_cast<unsigned>(s))
              % 180u;
      std::this_thread::sleep_for(std::chrono::microseconds(stall));
    });
    const auto y = shard::RowParallelLinear::run(&group, x, w, tier, nullptr,
                                                 id, 0, 0);
    ASSERT_TRUE(same_bytes(serial, y)) << "rep " << rep;
  }
}

TEST(ShardParallel, RepeatedShardedForwardIsByteStable) {
  auto engine = make_engine(ragged_config(), 4);
  const auto first = run_passes(engine);
  for (int rep = 0; rep < 8; ++rep) {
    const auto again = run_passes(engine);
    for (size_t p = 0; p < first.size(); ++p) {
      ASSERT_TRUE(same_bytes(first[p], again[p]))
          << "rep " << rep << " pass " << p;
    }
  }
}

TEST(ShardParallel, WorkerExceptionsPropagateLowestShardFirst) {
  shard::ShardGroup group(4);
  try {
    group.run([](int s) {
      if (s == 1 || s == 3) {
        throw std::runtime_error("shard " + std::to_string(s));
      }
    });
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 1");
  }
  // The group must stay usable after an op threw.
  std::atomic<int> ran{0};
  group.run([&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------------
// tp-partial / tp-reduce injector semantics.

core::FaultPlan tp_plan(core::FaultModel model, nn::LayerKind kind) {
  core::FaultPlan plan;
  plan.model = model;
  plan.layer = nn::LinearId{0, kind, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.0;
  plan.out_col = 3;
  plan.bits = {20};
  plan.segment = 1;
  plan.reduce_level = 0;
  return plan;
}

TEST(TpInjector, PartialFlipMovesExactlyOneOutputElement) {
  const auto x = random_tensor(2, 84, 61);
  const auto w = random_tensor(48, 84, 62);
  const nn::LinearId id{0, nn::LayerKind::OProj, -1};
  const auto clean = shard::RowParallelLinear::run(
      nullptr, x, w, tn::KernelTier::Reference, nullptr, id, 0, 0);
  core::TpFaultInjector injector(
      tp_plan(core::FaultModel::TpPartial, nn::LayerKind::OProj));
  const auto faulty = shard::RowParallelLinear::run(
      nullptr, x, w, tn::KernelTier::Reference, &injector, id, 0, 0);
  ASSERT_TRUE(injector.fired());
  EXPECT_EQ(injector.record().row, 0);
  EXPECT_EQ(injector.record().col, 3);
  int diffs = 0;
  for (tn::Index r = 0; r < clean.rows(); ++r) {
    for (tn::Index c = 0; c < clean.cols(); ++c) {
      if (clean.at(r, c) != faulty.at(r, c)) ++diffs;
    }
  }
  // One partial-sum element flipped -> exactly one output element moves
  // (the fold is elementwise).
  EXPECT_EQ(diffs, 1);
  EXPECT_NE(clean.at(0, 3), faulty.at(0, 3));
}

TEST(TpInjector, ReduceFlipTargetsOneLevelAndFiresOnce) {
  const auto x = random_tensor(2, 84, 71);
  const auto w = random_tensor(48, 84, 72);
  const nn::LinearId id{0, nn::LayerKind::DownProj, -1};
  const auto clean = shard::RowParallelLinear::run(
      nullptr, x, w, tn::KernelTier::Reference, nullptr, id, 0, 0);
  auto plan = tp_plan(core::FaultModel::TpReduce, nn::LayerKind::DownProj);
  plan.reduce_level = 99;  // clamps to the last level at fire time
  core::TpFaultInjector injector(plan);
  const auto faulty = shard::RowParallelLinear::run(
      nullptr, x, w, tn::KernelTier::Reference, &injector, id, 0, 0);
  ASSERT_TRUE(injector.fired());
  EXPECT_FALSE(same_bytes(clean, faulty));
  // Single shot: a second product through the same armed injector stays
  // clean.
  const auto second = shard::RowParallelLinear::run(
      nullptr, x, w, tn::KernelTier::Reference, &injector, id, 1, 0);
  EXPECT_TRUE(same_bytes(clean, second));
  injector.on_install();  // reset re-arms
  EXPECT_FALSE(injector.fired());
}

TEST(TpInjector, EngineLevelInjectionPerturbsLogits) {
  auto engine = make_engine(ragged_config(), 2);
  auto clean_engine = make_engine(ragged_config(), 2);
  const auto clean = run_passes(clean_engine);
  auto plan = tp_plan(core::FaultModel::TpPartial, nn::LayerKind::OProj);
  plan.bits = {30};  // high exponent bit: guaranteed visible
  core::TpFaultInjector injector(plan);
  core::ShardHookGuard guard(engine, &injector);
  const auto faulty = run_passes(engine);
  EXPECT_TRUE(injector.fired());
  bool any_diff = false;
  for (size_t p = 0; p < clean.size(); ++p) {
    if (!same_bytes(clean[p], faulty[p])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpInjector, SamplerTargetsOnlyRowParallelSites) {
  auto engine = make_engine(ragged_config(/*moe=*/true));
  num::Rng rng(7);
  core::SamplerScope scope;
  scope.max_passes = 4;
  for (int i = 0; i < 64; ++i) {
    const auto plan = core::sample_fault(core::FaultModel::TpPartial, engine,
                                         scope, rng);
    EXPECT_TRUE(plan.layer.kind == nn::LayerKind::OProj ||
                plan.layer.kind == nn::LayerKind::DownProj);
    EXPECT_GE(plan.segment, 0);
    EXPECT_LT(plan.segment, shard::RowParallelLinear::kSegments);
    ASSERT_EQ(plan.bits.size(), 1u);
    EXPECT_GE(plan.bits[0], 0);
    EXPECT_LT(plan.bits[0], 32);
    const auto rplan = core::sample_fault(core::FaultModel::TpReduce, engine,
                                          scope, rng);
    EXPECT_GE(rplan.reduce_level, 0);
  }
}

// ---------------------------------------------------------------------------
// Campaign byte-identity across the execution grid, and tp campaigns
// end to end. Untrained weights: determinism, not accuracy, is on trial.

struct CampaignFixture {
  data::World world;
  data::TaskData task;
  model::ModelWeights weights;

  CampaignFixture() : weights(model::ModelWeights::init(config())) {
    data::GenOptions opt;
    opt.train_n = 4;
    opt.eval_n = 6;
    task = data::make_task(world, data::TaskKind::QA, opt);
  }

  model::ModelConfig config() const {
    auto cfg = ragged_config();
    cfg.vocab_size = world.vocab().size();
    cfg.max_seq = 160;
    return cfg;
  }
};

CampaignFixture& campaign_fixture() {
  static CampaignFixture f;
  return f;
}

void expect_same_outcomes(const eval::CampaignResult& a,
                          const eval::CampaignResult& b) {
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc_subtle, b.sdc_subtle);
  EXPECT_EQ(a.sdc_distorted, b.sdc_distorted);
  EXPECT_EQ(a.by_highest_bit, b.by_highest_bit);
  EXPECT_EQ(a.faulty_hits, b.faulty_hits);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].output, b.records[i].output) << "trial " << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << "trial " << i;
  }
}

TEST(ShardCampaign, ByteIdenticalAcrossThreadsBatchTpAndFork) {
  auto& f = campaign_fixture();
  const auto& spec = eval::workload(data::TaskKind::QA);
  eval::CampaignConfig cfg;
  cfg.fault = core::FaultModel::Comp1Bit;
  cfg.trials = 12;
  cfg.n_inputs = 3;
  cfg.seed = 1234;
  cfg.keep_trial_records = true;
  cfg.run.gen.max_new_tokens = 8;

  model::InferenceModel engine(f.weights, {});
  const auto base =
      eval::run_campaign_on(engine, f.world.vocab(), f.task.eval, spec, cfg);
  EXPECT_EQ(engine.tensor_parallel(), 1);  // TpScope restored

  for (int threads : {1, 2}) {
    for (int tp : {1, 2, 4}) {
      for (int batch : {1, 4}) {
        for (bool fork : {false, true}) {
          auto c = cfg;
          c.threads = threads;
          c.tp = tp;
          c.batch = batch;
          c.prefix_fork = fork;
          model::InferenceModel e(f.weights, {});
          const auto got = eval::run_campaign_on(e, f.world.vocab(),
                                                 f.task.eval, spec, c);
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " tp=" + std::to_string(tp) +
                       " batch=" + std::to_string(batch) +
                       " fork=" + std::to_string(fork));
          expect_same_outcomes(base, got);
        }
      }
    }
  }
}

TEST(ShardCampaign, TpFaultCampaignsRunEndToEndAndStayDeterministic) {
  auto& f = campaign_fixture();
  const auto& spec = eval::workload(data::TaskKind::QA);
  for (auto fault : {core::FaultModel::TpPartial, core::FaultModel::TpReduce}) {
    eval::CampaignConfig cfg;
    cfg.fault = fault;
    cfg.trials = 10;
    cfg.n_inputs = 3;
    cfg.seed = 555;
    cfg.keep_trial_records = true;
    cfg.run.gen.max_new_tokens = 8;
    model::InferenceModel e1(f.weights, {});
    const auto a =
        eval::run_campaign_on(e1, f.world.vocab(), f.task.eval, spec, cfg);
    EXPECT_EQ(a.trials(), cfg.trials);
    // Identity across TP degrees: tp only changes who computes.
    auto cfg2 = cfg;
    cfg2.tp = 2;
    model::InferenceModel e2(f.weights, {});
    const auto b =
        eval::run_campaign_on(e2, f.world.vocab(), f.task.eval, spec, cfg2);
    SCOPED_TRACE(std::string("fault ") +
                 std::string(core::fault_model_name(fault)));
    expect_same_outcomes(a, b);
    for (const auto& rec : a.records) {
      EXPECT_TRUE(rec.plan.layer.kind == nn::LayerKind::OProj ||
                  rec.plan.layer.kind == nn::LayerKind::DownProj);
    }
  }
}

TEST(ShardCampaign, TpFaultsComposeWithDetection) {
  auto& f = campaign_fixture();
  const auto& spec = eval::workload(data::TaskKind::QA);
  eval::CampaignConfig cfg;
  cfg.fault = core::FaultModel::TpPartial;
  cfg.trials = 8;
  cfg.n_inputs = 2;
  cfg.seed = 99;
  cfg.run.gen.max_new_tokens = 8;
  cfg.detection.range = true;
  cfg.detection.recover = true;
  model::InferenceModel engine(f.weights, {});
  const auto r =
      eval::run_campaign_on(engine, f.world.vocab(), f.task.eval, spec, cfg);
  EXPECT_EQ(r.trials(), cfg.trials);
}

}  // namespace
}  // namespace llmfi
