// Tests for decoding: greedy determinism, beam-search properties, and
// multiple-choice option scoring.

#include <gtest/gtest.h>

#include "gen/generate.h"
#include "tensor/ops.h"
#include "model/transformer.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 48;
  cfg.seed = 55;
  return cfg;
}

model::InferenceModel make_engine() {
  return model::InferenceModel(model::ModelWeights::init(tiny_config()), {});
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

// With all-zero weights every logit is 0, so every token's log-prob ties
// exactly and decoding is driven purely by the tie-break. The fixed rule
// is HF's: highest log-prob first, lowest token id on ties — so beam
// search must emit token 0 forever. Before the fix, std::pair ordering
// under std::greater<> broke ties by *descending* token id and the
// candidate std::sort tie order was unspecified.
TEST(Generate, BeamSearchBreaksTiesByLowestTokenId) {
  auto weights = model::ModelWeights::init(tiny_config());
  weights.for_each_param(
      [](const std::string&, tn::Tensor& t) { t.zero(); });
  model::InferenceModel m(weights, {});
  gen::GenerationConfig cfg;
  cfg.num_beams = 3;
  cfg.max_new_tokens = 4;
  cfg.eos = 1000;  // unreachable: no beam finishes early
  const auto r = gen::generate(m, tokens({1, 4, 7}), cfg);
  EXPECT_EQ(r.tokens, tokens({0, 0, 0, 0}));
  EXPECT_TRUE(r.hit_max_tokens);

  // And the tie-break is stable across repeated runs.
  const auto again = gen::generate(m, tokens({1, 4, 7}), cfg);
  EXPECT_EQ(r.tokens, again.tokens);
}

TEST(Generate, GreedyIsDeterministic) {
  auto m = make_engine();
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 12;
  const auto prompt = tokens({1, 4, 7});
  auto a = gen::generate(m, prompt, cfg);
  auto b = gen::generate(m, prompt, cfg);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.passes, b.passes);
}

TEST(Generate, RespectsMaxNewTokens) {
  auto m = make_engine();
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 5;
  auto r = gen::generate(m, tokens({1, 4, 7}), cfg);
  EXPECT_LE(r.tokens.size(), 5u);
  if (r.tokens.size() == 5u) EXPECT_TRUE(r.hit_max_tokens);
  EXPECT_GE(r.passes, 1);
  EXPECT_LE(r.passes, 5);
}

TEST(Generate, GeneratedTokensAreNeverEos) {
  auto m = make_engine();
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 16;
  auto r = gen::generate(m, tokens({1, 9}), cfg);
  for (auto t : r.tokens) EXPECT_NE(t, cfg.eos);
}

TEST(Generate, ValidatesArguments) {
  auto m = make_engine();
  gen::GenerationConfig cfg;
  EXPECT_THROW(gen::generate(m, {}, cfg), std::invalid_argument);
  cfg.num_beams = 0;
  EXPECT_THROW(gen::generate(m, tokens({1}), cfg), std::invalid_argument);
}

TEST(Generate, BeamSearchNeverWorseCumulativeLogprobThanGreedy) {
  // The greedy path is one of the candidate paths of beam search, so the
  // chosen beam's sequence must have cumulative logprob >= greedy's.
  auto m = make_engine();
  gen::GenerationConfig greedy_cfg;
  greedy_cfg.max_new_tokens = 8;
  auto greedy = gen::generate(m, tokens({1, 4, 7}), greedy_cfg);

  gen::GenerationConfig beam_cfg = greedy_cfg;
  beam_cfg.num_beams = 4;
  auto beam = gen::generate(m, tokens({1, 4, 7}), beam_cfg);

  // Score both sequences by re-running the model.
  auto score = [&m](std::span<const tok::TokenId> prompt,
                    const std::vector<tok::TokenId>& cont) {
    double total = 0.0;
    auto cache = m.make_cache();
    std::vector<tok::TokenId> all(prompt.begin(), prompt.end());
    all.insert(all.end(), cont.begin(), cont.end());
    if (cont.empty()) return 0.0;
    auto logits = m.forward(all, cache, 0);
    for (size_t i = prompt.size(); i < all.size(); ++i) {
      const auto pos = static_cast<tn::Index>(i - 1);
      const float lse = tn::logsumexp_row(logits, pos);
      total += logits.at(pos, all[i]) - lse;
    }
    return total;
  };
  const auto prompt = tokens({1, 4, 7});
  const double gs = score(prompt, greedy.tokens);
  const double bs = score(prompt, beam.tokens);
  EXPECT_GE(bs, gs - 1e-3);
}

TEST(Generate, MoreBeamsNeverLowerChosenScore) {
  auto m = make_engine();
  const auto prompt = tokens({2, 6, 3});
  double prev = -1e300;
  for (int beams : {1, 2, 4}) {
    gen::GenerationConfig cfg;
    cfg.max_new_tokens = 6;
    cfg.num_beams = beams;
    auto r = gen::generate(m, prompt, cfg);
    // Re-score (same procedure as above, but inline).
    auto cache = m.make_cache();
    std::vector<tok::TokenId> all(prompt.begin(), prompt.end());
    all.insert(all.end(), r.tokens.begin(), r.tokens.end());
    if (r.tokens.empty()) continue;
    auto logits = m.forward(all, cache, 0);
    double total = 0.0;
    for (size_t i = prompt.size(); i < all.size(); ++i) {
      const auto pos = static_cast<tn::Index>(i - 1);
      total += logits.at(pos, all[i]) - tn::logsumexp_row(logits, pos);
    }
    EXPECT_GE(total, prev - 1e-3) << "beams=" << beams;
    prev = total;
  }
}

TEST(ScoreOptions, PrefersHighLikelihoodContinuation) {
  // Use the model itself to produce a "likely" continuation via greedy
  // decoding, then verify score_options ranks it above random options.
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 3;
  auto greedy = gen::generate(m, prompt, cfg);
  if (greedy.tokens.size() < 2) GTEST_SKIP() << "model ended immediately";
  std::vector<tok::TokenId> likely(greedy.tokens.begin(),
                                   greedy.tokens.begin() + 2);
  const std::vector<std::vector<tok::TokenId>> options = {
      tokens({20, 21}), likely, tokens({5, 11})};
  auto mc = gen::score_options(m, prompt, options);
  EXPECT_EQ(mc.chosen, 1);
  EXPECT_EQ(mc.passes, 3);
  EXPECT_EQ(mc.scores.size(), 3u);
  EXPECT_GT(mc.scores[1], mc.scores[0]);
  EXPECT_GT(mc.scores[1], mc.scores[2]);
}

TEST(ScoreOptions, ValidatesArguments) {
  auto m = make_engine();
  const auto prompt = tokens({1});
  EXPECT_THROW(gen::score_options(m, prompt, {}), std::invalid_argument);
  EXPECT_THROW(gen::score_options(m, prompt, {{}}), std::invalid_argument);
}

TEST(ScoreOptions, DeterministicAcrossCalls) {
  auto m = make_engine();
  const auto prompt = tokens({3, 8});
  const std::vector<std::vector<tok::TokenId>> options = {tokens({4}),
                                                          tokens({5})};
  auto a = gen::score_options(m, prompt, options);
  auto b = gen::score_options(m, prompt, options);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_DOUBLE_EQ(a.scores[0], b.scores[0]);
}

}  // namespace
}  // namespace llmfi
