// Prefix-fork primitives (DESIGN.md §9): KvCache::fork_from semantics,
// PrefixSnapshot capture on baseline runs, and the exactness of resumed
// transient-fault trials — a run forked at the injection pass must be
// bit-identical to the same run recomputed from pass 0.

#include <gtest/gtest.h>

#include "core/injector.h"
#include "gen/generate.h"
#include "model/transformer.h"
#include "nn/kv_cache.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 24;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 48;
  cfg.seed = 55;
  return cfg;
}

model::InferenceModel make_engine() {
  return model::InferenceModel(model::ModelWeights::init(tiny_config()), {});
}

std::vector<tok::TokenId> tokens(std::initializer_list<int> ids) {
  std::vector<tok::TokenId> out;
  for (int i : ids) out.push_back(static_cast<tok::TokenId>(i));
  return out;
}

// Fills pass rows with a recognizable value: block*1000 + row*10 + col.
tn::Tensor marked_rows(tn::Index rows, tn::Index cols, int block,
                       tn::Index first_row) {
  tn::Tensor t({rows, cols});
  for (tn::Index r = 0; r < rows; ++r) {
    for (tn::Index c = 0; c < cols; ++c) {
      t.at(r, c) = static_cast<float>(block * 1000 +
                                      (first_row + r) * 10 + c);
    }
  }
  return t;
}

nn::KvCache marked_cache(int n_blocks, tn::Index max_seq, tn::Index d,
                         tn::Index filled) {
  nn::KvCache cache(n_blocks, max_seq, d);
  for (int b = 0; b < n_blocks; ++b) {
    cache.append(b, marked_rows(filled, d, b, 0),
                 marked_rows(filled, d, b + 7, 0));
  }
  cache.advance(filled);
  return cache;
}

TEST(KvCacheForkFrom, CopiesExactlyThePrefixRows) {
  const auto src = marked_cache(/*n_blocks=*/2, /*max_seq=*/8, /*d=*/4,
                                /*filled=*/6);
  nn::KvCache dst(2, 8, 4);
  ASSERT_TRUE(dst.fork_compatible(src));
  dst.fork_from(src, 3);
  EXPECT_EQ(dst.length(), 3);
  for (int b = 0; b < 2; ++b) {
    for (tn::Index r = 0; r < 3; ++r) {
      for (tn::Index c = 0; c < 4; ++c) {
        EXPECT_EQ(dst.keys(b).at(r, c), src.keys(b).at(r, c));
        EXPECT_EQ(dst.values(b).at(r, c), src.values(b).at(r, c));
      }
    }
  }
}

TEST(KvCacheForkFrom, WholeLengthAndZeroPrefixAreValid) {
  const auto src = marked_cache(1, 8, 4, 5);
  nn::KvCache dst(1, 8, 4);
  dst.fork_from(src, 5);
  EXPECT_EQ(dst.length(), 5);
  dst.fork_from(src, 0);
  EXPECT_EQ(dst.length(), 0);
}

TEST(KvCacheForkFrom, ValidatesPrefixLength) {
  const auto src = marked_cache(1, 8, 4, 5);
  nn::KvCache dst(1, 8, 4);
  EXPECT_THROW(dst.fork_from(src, 6), std::invalid_argument);  // > length
  EXPECT_THROW(dst.fork_from(src, -1), std::invalid_argument);
}

// Satellite: shape drift between snapshot and engine must be refused,
// not silently produce a shape-valid-but-wrong cache.
TEST(KvCacheForkFrom, RefusesShapeMismatch) {
  const auto src = marked_cache(2, 8, 4, 5);
  nn::KvCache wrong_blocks(3, 8, 4);
  nn::KvCache wrong_seq(2, 16, 4);
  nn::KvCache wrong_d(2, 8, 8);
  EXPECT_FALSE(wrong_blocks.fork_compatible(src));
  EXPECT_FALSE(wrong_seq.fork_compatible(src));
  EXPECT_FALSE(wrong_d.fork_compatible(src));
  EXPECT_THROW(wrong_blocks.fork_from(src, 2), std::invalid_argument);
  EXPECT_THROW(wrong_seq.fork_from(src, 2), std::invalid_argument);
  EXPECT_THROW(wrong_d.fork_from(src, 2), std::invalid_argument);
}

TEST(KvCacheForkFrom, AppendAfterForkContinuesFromPrefix) {
  const auto src = marked_cache(1, 8, 4, 6);
  nn::KvCache dst(1, 8, 4);
  dst.fork_from(src, 2);
  dst.append(0, marked_rows(1, 4, 99, 2), marked_rows(1, 4, 99, 2));
  dst.advance(1);
  EXPECT_EQ(dst.length(), 3);
  // Prefix intact, appended row landed at position 2.
  EXPECT_EQ(dst.keys(0).at(1, 0), src.keys(0).at(1, 0));
  EXPECT_EQ(dst.keys(0).at(2, 1), marked_rows(1, 4, 99, 2).at(0, 1));
}

// Satellite: fork_from(*this, n) is the truncate degenerate. The old
// implementation std::copy'd a block onto itself (self-overlap UB in the
// contiguous layout, released-while-read pages in the paged one).
TEST(KvCacheForkFrom, SelfForkIsTruncate) {
  auto cache = marked_cache(2, 8, 4, 6);
  const float keep = cache.keys(1).at(3, 2);
  cache.fork_from(cache, 4);
  EXPECT_EQ(cache.length(), 4);
  EXPECT_EQ(cache.keys(1).at(3, 2), keep);
  cache.fork_from(cache, 0);
  EXPECT_EQ(cache.length(), 0);
}

// Satellite regression: a zero-length cache used to report d_model() == 0
// (read from the empty tensor vector), so fork_compatible accepted any
// pairing of empty caches. Geometry now comes from the constructor.
TEST(KvCacheForkFrom, EmptyCachesStillCompareDModel) {
  nn::KvCache a(2, 8, 4);
  nn::KvCache b(2, 8, 16);
  EXPECT_EQ(a.d_model(), 4);
  EXPECT_EQ(b.d_model(), 16);
  EXPECT_FALSE(a.fork_compatible(b));
  const auto src = marked_cache(2, 8, 16, 3);
  EXPECT_THROW(a.fork_from(src, 2), std::invalid_argument);
}

// Paged forks must deliver fork_from's exact contract too: the fast path
// (page aliasing + boundary copy) is an optimization, not a semantic.
TEST(KvCacheForkFrom, PagedForkMatchesContiguousForkRowForRow) {
  auto pool = std::make_shared<nn::PagePool>(32, /*page_rows=*/4,
                                             /*d_model=*/4);
  const auto flat_src = marked_cache(2, 8, 4, 6);
  nn::KvCache paged_src(2, 8, 4, pool);
  for (int b = 0; b < 2; ++b) {
    paged_src.append(b, marked_rows(6, 4, b, 0), marked_rows(6, 4, b + 7, 0));
  }
  paged_src.advance(6);
  for (tn::Index prefix : {0, 3, 4, 6}) {  // mid-page, page-exact, full
    nn::KvCache flat_dst(2, 8, 4);
    nn::KvCache paged_dst(2, 8, 4, pool);
    flat_dst.fork_from(flat_src, prefix);
    paged_dst.fork_from(paged_src, prefix);
    ASSERT_EQ(paged_dst.length(), flat_dst.length());
    for (int b = 0; b < 2; ++b) {
      for (tn::Index r = 0; r < prefix; ++r) {
        for (tn::Index c = 0; c < 4; ++c) {
          EXPECT_EQ(paged_dst.key_at(b, r, c), flat_dst.key_at(b, r, c));
          EXPECT_EQ(paged_dst.value_at(b, r, c), flat_dst.value_at(b, r, c));
        }
      }
    }
  }
}

gen::GenerationConfig long_greedy() {
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 10;
  cfg.eos = 1000;  // unreachable: force a multi-pass generation
  return cfg;
}

TEST(GeneratePrefixFork, CaptureRecordsTheBaselineTrajectory) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  gen::PrefixSnapshot snap;
  auto cfg = long_greedy();
  cfg.capture = &snap;
  const auto base = gen::generate(m, prompt, cfg);
  ASSERT_TRUE(snap.valid);
  EXPECT_EQ(snap.prompt, tokens({1, 4, 7}));
  EXPECT_EQ(snap.tokens, base.tokens);
  EXPECT_EQ(snap.passes, base.passes);
  EXPECT_FALSE(snap.nonfinite_logits);
  // One entry per executed pass; prefill enters with an empty cache and
  // pass t with prompt + t - 1 rows.
  ASSERT_EQ(static_cast<int>(snap.cache_len_before_pass.size()),
            base.passes);
  EXPECT_EQ(snap.cache_len_before_pass.front(), 0);
  for (int t = 1; t < base.passes; ++t) {
    EXPECT_EQ(snap.cache_len_before_pass[static_cast<size_t>(t)],
              static_cast<tn::Index>(prompt.size()) + t - 1);
  }
  ASSERT_TRUE(snap.cache.has_value());
  EXPECT_EQ(snap.cache->length(),
            static_cast<tn::Index>(prompt.size()) + base.passes - 1);
}

// The tentpole exactness property: for every possible injection pass t,
// a trial resumed from the baseline snapshot at pass t is bit-identical
// to the same trial recomputed from pass 0 — same tokens, same pass
// accounting, same diagnostics.
TEST(GeneratePrefixFork, ResumedTransientTrialMatchesFullRecompute) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  gen::PrefixSnapshot snap;
  auto cfg = long_greedy();
  cfg.capture = &snap;
  const auto base = gen::generate(m, prompt, cfg);
  ASSERT_TRUE(snap.valid);
  ASSERT_GE(base.passes, 8);  // the multi-pass shape the fork targets

  cfg.capture = nullptr;
  for (int t = 1; t < base.passes; ++t) {
    core::FaultPlan plan;
    plan.model = core::FaultModel::Comp1Bit;
    plan.layer = m.linear_layers()[0].id;
    plan.pass_index = t;
    plan.row_frac = 0.5;
    plan.out_col = 3;
    plan.bits = {30};

    gen::GenerationResult full, resumed;
    {
      core::ComputationalFaultInjector injector(plan, num::DType::F32);
      core::LinearHookGuard guard(m, &injector);
      full = gen::generate(m, prompt, cfg);
    }
    {
      core::ComputationalFaultInjector injector(plan, num::DType::F32);
      core::LinearHookGuard guard(m, &injector);
      auto rcfg = cfg;
      rcfg.resume = &snap;
      rcfg.start_pass = t;
      resumed = gen::generate(m, prompt, rcfg);
    }
    SCOPED_TRACE("injection pass " + std::to_string(t));
    EXPECT_EQ(resumed.tokens, full.tokens);
    EXPECT_EQ(resumed.passes, full.passes);
    EXPECT_EQ(resumed.hit_max_tokens, full.hit_max_tokens);
    EXPECT_EQ(resumed.nonfinite_logits, full.nonfinite_logits);
    EXPECT_EQ(resumed.skipped_passes, t);
    EXPECT_EQ(full.skipped_passes, 0);
  }
}

TEST(GeneratePrefixFork, ShapeDriftFallsBackToFullRecompute) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  auto cfg = long_greedy();

  // Snapshot captured on a differently-shaped engine: same vocab, more
  // layers — fork_compatible is false, so resume must recompute.
  auto drifted_cfg = tiny_config();
  drifted_cfg.n_layers = 3;
  model::InferenceModel other(model::ModelWeights::init(drifted_cfg), {});
  gen::PrefixSnapshot foreign;
  auto capture_cfg = cfg;
  capture_cfg.capture = &foreign;
  (void)gen::generate(other, prompt, capture_cfg);
  ASSERT_TRUE(foreign.valid);

  const auto want = gen::generate(m, prompt, cfg);
  auto rcfg = cfg;
  rcfg.resume = &foreign;
  rcfg.start_pass = 2;
  const auto got = gen::generate(m, prompt, rcfg);
  EXPECT_EQ(got.tokens, want.tokens);
  EXPECT_EQ(got.passes, want.passes);
  EXPECT_EQ(got.skipped_passes, 0);
}

TEST(GeneratePrefixFork, PromptMismatchAndInvalidSnapshotFallBack) {
  auto m = make_engine();
  auto cfg = long_greedy();
  gen::PrefixSnapshot snap;
  auto capture_cfg = cfg;
  capture_cfg.capture = &snap;
  (void)gen::generate(m, tokens({1, 4, 7}), capture_cfg);
  ASSERT_TRUE(snap.valid);

  const auto other_prompt = tokens({2, 5});
  const auto want = gen::generate(m, other_prompt, cfg);
  auto rcfg = cfg;
  rcfg.resume = &snap;
  rcfg.start_pass = 2;
  const auto got = gen::generate(m, other_prompt, rcfg);
  EXPECT_EQ(got.tokens, want.tokens);
  EXPECT_EQ(got.skipped_passes, 0);

  gen::PrefixSnapshot never_captured;
  rcfg.resume = &never_captured;
  const auto got2 = gen::generate(m, other_prompt, rcfg);
  EXPECT_EQ(got2.tokens, want.tokens);
  EXPECT_EQ(got2.skipped_passes, 0);
}

TEST(GeneratePrefixFork, BeamSearchIgnoresResume) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  gen::PrefixSnapshot snap;
  auto capture_cfg = long_greedy();
  capture_cfg.capture = &snap;
  (void)gen::generate(m, prompt, capture_cfg);
  ASSERT_TRUE(snap.valid);

  auto cfg = long_greedy();
  cfg.num_beams = 2;
  const auto want = gen::generate(m, prompt, cfg);
  auto rcfg = cfg;
  rcfg.resume = &snap;
  rcfg.start_pass = 2;
  const auto got = gen::generate(m, prompt, rcfg);
  EXPECT_EQ(got.tokens, want.tokens);
  EXPECT_EQ(got.passes, want.passes);
  EXPECT_EQ(got.skipped_passes, 0);
}

TEST(ScoreOptionsPrefixFork, ResumeMatchesFullRecompute) {
  auto m = make_engine();
  const auto prompt = tokens({1, 4, 7});
  const std::vector<std::vector<tok::TokenId>> options = {
      tokens({3}), tokens({5, 6}), tokens({8}), tokens({9, 2})};

  gen::PrefixSnapshot snap;
  const auto base = gen::score_options(m, prompt, options, nullptr, 0, &snap);
  ASSERT_TRUE(snap.valid);
  EXPECT_EQ(snap.option_scores, base.scores);
  EXPECT_EQ(snap.passes, static_cast<int>(options.size()));

  for (int t = 1; t < static_cast<int>(options.size()); ++t) {
    core::FaultPlan plan;
    plan.model = core::FaultModel::Comp1Bit;
    plan.layer = m.linear_layers()[0].id;
    plan.pass_index = t;
    plan.row_frac = 0.25;
    plan.out_col = 2;
    plan.bits = {30};

    gen::McResult full, resumed;
    {
      core::ComputationalFaultInjector injector(plan, num::DType::F32);
      core::LinearHookGuard guard(m, &injector);
      full = gen::score_options(m, prompt, options);
    }
    {
      core::ComputationalFaultInjector injector(plan, num::DType::F32);
      core::LinearHookGuard guard(m, &injector);
      resumed = gen::score_options(m, prompt, options, nullptr, 0, nullptr,
                                   &snap, t);
    }
    SCOPED_TRACE("injection pass " + std::to_string(t));
    EXPECT_EQ(resumed.chosen, full.chosen);
    EXPECT_EQ(resumed.scores, full.scores);
    EXPECT_EQ(resumed.passes, full.passes);
    EXPECT_EQ(resumed.skipped_passes, t);
  }
}

}  // namespace
}  // namespace llmfi
