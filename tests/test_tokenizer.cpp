// Unit tests for the word-level vocabulary/tokenizer.

#include <gtest/gtest.h>

#include "tokenizer/vocab.h"

namespace llmfi::tok {
namespace {

TEST(Vocab, SpecialTokensHaveFixedIds) {
  Vocab v;
  EXPECT_EQ(v.pad(), 0);
  EXPECT_EQ(v.bos(), 1);
  EXPECT_EQ(v.eos(), 2);
  EXPECT_EQ(v.unk(), 3);
  EXPECT_EQ(v.size(), 4);
  EXPECT_TRUE(v.is_special(0));
  EXPECT_FALSE(v.is_special(4));
}

TEST(Vocab, AddIsIdempotent) {
  Vocab v;
  const TokenId a = v.add("hello");
  const TokenId b = v.add("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 5);
}

TEST(Vocab, RejectsInvalidWords) {
  Vocab v;
  EXPECT_THROW(v.add(""), std::invalid_argument);
  EXPECT_THROW(v.add("two words"), std::invalid_argument);
  EXPECT_THROW(v.add("tab\tword"), std::invalid_argument);
}

TEST(Vocab, FindAndLookup) {
  Vocab v;
  const TokenId id = v.add("alpha");
  EXPECT_EQ(v.find("alpha"), std::optional<TokenId>(id));
  EXPECT_EQ(v.find("beta"), std::nullopt);
  EXPECT_EQ(v.id_or_unk("beta"), v.unk());
  EXPECT_EQ(v.word(id), "alpha");
  EXPECT_THROW(v.word(999), std::out_of_range);
}

TEST(Vocab, EncodeDecodeRoundTrip) {
  Vocab v;
  v.add("the");
  v.add("cat");
  v.add("sat");
  const auto ids = v.encode("the cat sat");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(v.decode(ids), "the cat sat");
}

TEST(Vocab, EncodeHandlesExtraSpacesAndUnknowns) {
  Vocab v;
  v.add("a");
  const auto ids = v.encode("  a   mystery  a ");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], v.unk());
  // Decode skips specials (including <unk>).
  EXPECT_EQ(v.decode(ids), "a a");
}

TEST(Vocab, DecodeSkipsSpecialsAndBadIds) {
  Vocab v;
  const TokenId w = v.add("word");
  EXPECT_EQ(v.decode({v.bos(), w, v.eos(), -1, 999}), "word");
}

}  // namespace
}  // namespace llmfi::tok
