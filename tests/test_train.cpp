// Training-substrate tests: loss decreases, weights sync back, the model
// actually learns a tiny task (dense and MoE), and fine-tuning improves
// the target task — all with deliberately small budgets.

#include <gtest/gtest.h>

#include <cmath>

#include "data/tasks.h"
#include "data/world.h"
#include "eval/runner.h"
#include "eval/workloads.h"
#include "model/transformer.h"
#include "train/trainer.h"

namespace llmfi {
namespace {

const data::World& shared_world() {
  static data::World w;
  return w;
}

model::ModelConfig small_config(bool moe = false) {
  model::ModelConfig cfg;
  cfg.vocab_size = shared_world().vocab().size();
  cfg.d_model = 32;
  cfg.n_layers = 2;
  cfg.n_heads = 4;
  cfg.d_ff = 48;
  cfg.moe = moe;
  cfg.n_experts = 4;
  cfg.top_k = 2;
  cfg.max_seq = 160;
  cfg.seed = 31;
  return cfg;
}

std::vector<data::TrainSeq> fact_corpus() {
  data::GenOptions opt;
  opt.train_n = 200;
  opt.eval_n = 10;
  return data::make_task(shared_world(), data::TaskKind::McFact, opt).train;
}

TEST(Trainer, LossDecreases) {
  auto w = model::ModelWeights::init(small_config());
  train::TrainConfig tc;
  tc.steps = 60;
  tc.batch_size = 4;
  tc.lr = 4e-3f;
  train::Trainer trainer(w, tc);
  const auto corpus = fact_corpus();
  const double before = trainer.evaluate(
      std::vector<data::TrainSeq>(corpus.begin(), corpus.begin() + 20));
  const double tail = trainer.train(corpus);
  const double after = trainer.evaluate(
      std::vector<data::TrainSeq>(corpus.begin(), corpus.begin() + 20));
  EXPECT_LT(after, before * 0.8);
  EXPECT_LT(tail, before);
}

TEST(Trainer, SyncsWeightsBack) {
  auto w = model::ModelWeights::init(small_config());
  const float before = w.blocks[0].wq.flat()[0];
  train::TrainConfig tc;
  tc.steps = 5;
  tc.batch_size = 2;
  train::Trainer trainer(w, tc);
  trainer.train(fact_corpus());
  EXPECT_NE(w.blocks[0].wq.flat()[0], before);
}

TEST(Trainer, RejectsEmptyCorpusAndDegenerateSequences) {
  auto w = model::ModelWeights::init(small_config());
  train::TrainConfig tc;
  tc.steps = 1;
  train::Trainer trainer(w, tc);
  EXPECT_THROW(trainer.train({}), std::invalid_argument);
  data::TrainSeq bad;
  bad.tokens = {1};  // too short
  bad.loss_start = 1;
  EXPECT_THROW(trainer.train({bad}), std::invalid_argument);
}

TEST(Trainer, LearnsFactRecallEndToEnd) {
  // After a short training run on the fact task, multiple-choice accuracy
  // must clearly beat the 25% random-pick rate.
  auto w = model::ModelWeights::init(small_config());
  train::TrainConfig tc;
  tc.steps = 250;
  tc.batch_size = 8;
  tc.lr = 5e-3f;
  train::Trainer trainer(w, tc);
  data::GenOptions opt;
  opt.train_n = 300;
  opt.eval_n = 24;
  const auto td = data::make_task(shared_world(), data::TaskKind::McFact,
                                  opt);
  trainer.train(td.train);

  model::InferenceModel engine(w, {});
  const auto& spec = eval::workload(data::TaskKind::McFact);
  int correct = 0;
  for (const auto& ex : td.eval) {
    eval::RunOptions ropt;
    const auto r = eval::run_example(engine, shared_world().vocab(), spec,
                                     ex, ropt);
    correct += r.correct ? 1 : 0;
  }
  EXPECT_GT(correct, 16) << "accuracy " << correct << "/24";
}

TEST(Trainer, MoeTrainsAndRoutes) {
  auto w = model::ModelWeights::init(small_config(true));
  train::TrainConfig tc;
  tc.steps = 80;
  tc.batch_size = 4;
  tc.lr = 4e-3f;
  train::Trainer trainer(w, tc);
  const auto corpus = fact_corpus();
  const double before = trainer.evaluate(
      std::vector<data::TrainSeq>(corpus.begin(), corpus.begin() + 16));
  trainer.train(corpus);
  const double after = trainer.evaluate(
      std::vector<data::TrainSeq>(corpus.begin(), corpus.begin() + 16));
  EXPECT_LT(after, before);
  // Router weights must have moved (the MoE backward reaches them).
  const auto fresh = model::ModelWeights::init(small_config(true));
  double router_delta = 0.0;
  for (tn::Index i = 0; i < w.blocks[0].router.numel(); ++i) {
    router_delta += std::fabs(w.blocks[0].router.flat()[i] -
                              fresh.blocks[0].router.flat()[i]);
  }
  EXPECT_GT(router_delta, 1e-4);
}

TEST(Trainer, FineTuningImprovesTargetTask) {
  // Train briefly on facts, then fine-tune on translation: translation
  // loss must drop below its pre-fine-tune value.
  auto w = model::ModelWeights::init(small_config());
  train::TrainConfig tc;
  tc.steps = 120;
  tc.batch_size = 6;
  tc.lr = 4e-3f;
  train::Trainer trainer(w, tc);
  trainer.train(fact_corpus());

  data::GenOptions opt;
  opt.train_n = 150;
  const auto mt =
      data::make_task(shared_world(), data::TaskKind::Translation, opt);
  const std::vector<data::TrainSeq> probe(mt.train.begin(),
                                          mt.train.begin() + 20);
  const double before = trainer.evaluate(probe);
  train::TrainConfig ft = tc;
  ft.steps = 120;
  ft.lr = 2e-3f;
  train::Trainer finetuner(w, ft);
  finetuner.train(mt.train);
  const double after = finetuner.evaluate(probe);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace llmfi
