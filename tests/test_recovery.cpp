// End-to-end tests for the detection & recovery pipeline: KV-cache
// rewind, recompute-the-pass recovery for transient computational
// faults, retry-budget exhaustion under persistent weight corruption,
// and the multiple-choice scoring path.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/detector.h"
#include "core/injector.h"
#include "gen/generate.h"

namespace llmfi {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 64;
  cfg.seed = 88;
  return cfg;
}

struct Fixture {
  tok::Vocab vocab;
  model::InferenceModel engine;
  std::vector<std::string> prompts;

  Fixture() : engine(model::ModelWeights::init(tiny_config()), {}) {
    for (const char* w : {"a", "b", "c", "d", "e", "f"}) vocab.add(w);
    prompts = {"a b c", "d e f a", "c c b"};
  }
};

core::FaultPlan prefill_flip() {
  // Last prompt row of the final block's down-projection: the corrupted
  // hidden state feeds the first generated token's logits directly, so
  // the flip is guaranteed to perturb the greedy output (no masking).
  core::FaultPlan plan;
  plan.model = core::FaultModel::Comp1Bit;
  plan.layer = {1, nn::LayerKind::DownProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 1.0;
  plan.out_col = 2;
  plan.bits = {30};  // fp32 exponent MSB
  return plan;
}

TEST(KvCacheTruncate, RewindsAndReplaysIdentically) {
  Fixture f;
  const auto prompt = f.vocab.encode("a b c d");
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(prompt, cache, 0);
  const auto len0 = cache.length();
  EXPECT_EQ(len0, static_cast<tn::Index>(prompt.size()));

  const std::vector<tok::TokenId> step = {prompt.back()};
  const auto first = f.engine.forward(step, cache, 1);
  EXPECT_EQ(cache.length(), len0 + 1);

  cache.truncate(len0);
  EXPECT_EQ(cache.length(), len0);
  const auto replay = f.engine.forward(step, cache, 1);
  ASSERT_EQ(replay.numel(), first.numel());
  for (tn::Index i = 0; i < first.numel(); ++i) {
    EXPECT_EQ(replay.flat()[i], first.flat()[i]);
  }
}

TEST(KvCacheTruncate, RejectsBadLengths) {
  Fixture f;
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c"), cache, 0);
  EXPECT_THROW(cache.truncate(-1), std::invalid_argument);
  EXPECT_THROW(cache.truncate(cache.length() + 1), std::invalid_argument);
  cache.truncate(0);
  EXPECT_EQ(cache.length(), 0);
}

// Satellite acceptance: a detected-and-recovered generation must equal
// the fault-free run bit for bit. The injector is single-shot, so the
// first recomputation of the corrupted pass is clean.
TEST(Recovery, TransientFaultRecoversToFaultFreeOutput) {
  Fixture f;
  const auto profile = core::profile_checksums(f.engine, f.vocab, f.prompts);
  const auto prompt = f.vocab.encode("a b c d");
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 8;

  const auto clean = gen::generate(f.engine, prompt, cfg);

  // Sanity: the same fault without detection perturbs the output.
  core::ComputationalFaultInjector raw(prefill_flip(), num::DType::F32);
  gen::GenerationResult faulty;
  {
    core::LinearHookGuard guard(f.engine, &raw);
    faulty = gen::generate(f.engine, prompt, cfg);
  }
  EXPECT_TRUE(raw.fired());
  EXPECT_NE(faulty.tokens, clean.tokens);
  EXPECT_EQ(faulty.detections, 0);

  core::ComputationalFaultInjector injector(prefill_flip(),
                                            num::DType::F32);
  core::ChecksumDetector det(profile, &injector);
  auto protected_cfg = cfg;
  protected_cfg.detector = &det;
  protected_cfg.max_recoveries = 2;
  gen::GenerationResult recovered;
  {
    core::LinearHookGuard guard(f.engine, &det);
    recovered = gen::generate(f.engine, prompt, protected_cfg);
  }
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(recovered.tokens, clean.tokens);
  EXPECT_EQ(recovered.detections, 1);
  EXPECT_EQ(recovered.recoveries, 1);
  EXPECT_EQ(recovered.recovery_passes, 1);
  EXPECT_FALSE(recovered.unrecovered_detection);
  EXPECT_EQ(recovered.passes, clean.passes + recovered.recovery_passes);
}

// With a zero retry budget the detector only observes: the corrupted
// output goes through unchanged and the trip is reported unrecovered.
TEST(Recovery, DetectOnlyObservesWithoutChangingOutput) {
  Fixture f;
  const auto profile = core::profile_checksums(f.engine, f.vocab, f.prompts);
  const auto prompt = f.vocab.encode("a b c d");
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 8;

  core::ComputationalFaultInjector raw(prefill_flip(), num::DType::F32);
  gen::GenerationResult faulty;
  {
    core::LinearHookGuard guard(f.engine, &raw);
    faulty = gen::generate(f.engine, prompt, cfg);
  }

  core::ComputationalFaultInjector injector(prefill_flip(),
                                            num::DType::F32);
  core::ChecksumDetector det(profile, &injector);
  auto observed_cfg = cfg;
  observed_cfg.detector = &det;
  observed_cfg.max_recoveries = 0;
  gen::GenerationResult observed;
  {
    core::LinearHookGuard guard(f.engine, &det);
    observed = gen::generate(f.engine, prompt, observed_cfg);
  }
  EXPECT_EQ(observed.tokens, faulty.tokens);
  EXPECT_EQ(observed.detections, 1);
  EXPECT_EQ(observed.recoveries, 0);
  EXPECT_EQ(observed.recovery_passes, 0);
  EXPECT_TRUE(observed.unrecovered_detection);
}

// A persistent weight fault re-trips on every recomputation: the retry
// budget is spent and the detection is reported unrecovered — the
// campaign layer then escalates to weight rescreen-and-restore.
TEST(Recovery, PersistentFaultExhaustsRetryBudget) {
  Fixture f;
  const auto profile = core::profile_checksums(f.engine, f.vocab, f.prompts);
  const auto prompt = f.vocab.encode("a b c d");

  core::FaultPlan plan;
  plan.model = core::FaultModel::Mem2Bit;
  plan.layer_index = 0;
  plan.layer = f.engine.linear_layers()[0].id;
  plan.weight_row = 3;
  plan.weight_col = 4;
  plan.bits = {30, 2};

  core::ChecksumDetector det(profile);
  gen::GenerationConfig cfg;
  cfg.max_new_tokens = 8;
  cfg.detector = &det;
  cfg.max_recoveries = 2;
  gen::GenerationResult r;
  {
    core::WeightCorruption corruption(f.engine, plan);
    core::LinearHookGuard guard(f.engine, &det);
    r = gen::generate(f.engine, prompt, cfg);
  }
  // The latch stays set after the failed retries, so later passes are
  // not re-counted as fresh detections.
  EXPECT_EQ(r.detections, 1);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_EQ(r.recovery_passes, cfg.max_recoveries);
  EXPECT_TRUE(r.unrecovered_detection);

  // Restored weights: the same detector stays silent on a rerun.
  core::LinearHookGuard guard(f.engine, &det);
  const auto after = gen::generate(f.engine, prompt, cfg);
  EXPECT_EQ(after.detections, 0);
  EXPECT_FALSE(after.unrecovered_detection);
}

// The multiple-choice scoring path (what the campaign's MC tasks use)
// recovers the same way: a transient flip in one option's pass is
// recomputed and the chosen option matches the fault-free scoring.
TEST(Recovery, ScoreOptionsRecoversTransientFault) {
  Fixture f;
  const auto profile = core::profile_checksums(f.engine, f.vocab, f.prompts);
  const auto prompt = f.vocab.encode("a b c");
  const std::vector<std::vector<tok::TokenId>> options = {
      f.vocab.encode("d e"), f.vocab.encode("b a"), f.vocab.encode("f")};

  const auto clean = gen::score_options(f.engine, prompt, options);

  auto plan = prefill_flip();
  plan.pass_index = 1;  // option 1's scoring pass
  core::ComputationalFaultInjector injector(plan, num::DType::F32);
  core::ChecksumDetector det(profile, &injector);
  gen::McResult recovered;
  {
    core::LinearHookGuard guard(f.engine, &det);
    recovered = gen::score_options(f.engine, prompt, options, &det,
                                   /*max_recoveries=*/2);
  }
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(recovered.detections, 1);
  EXPECT_EQ(recovered.recoveries, 1);
  EXPECT_FALSE(recovered.unrecovered_detection);
  EXPECT_EQ(recovered.chosen, clean.chosen);
  ASSERT_EQ(recovered.scores.size(), clean.scores.size());
  for (size_t i = 0; i < clean.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(recovered.scores[i], clean.scores[i]);
  }
}

}  // namespace
}  // namespace llmfi
