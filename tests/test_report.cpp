// Tests for the report emitters (table alignment, CSV) and formatting
// helpers used by every bench binary.

#include <gtest/gtest.h>

#include <sstream>

#include "report/table.h"

namespace llmfi::report {
namespace {

TEST(Table, AlignsColumnsAndPrintsTitle) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  // Header separator exists and rows appear in order.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_LT(out.find("x"), out.find("longer-name"));
  // Every data line has the two cells separated by >= 2 spaces.
  EXPECT_NE(out.find("x            1"), std::string::npos);
}

TEST(Table, CsvEscapesNothingButJoinsWithCommas) {
  Table t;
  t.header({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.header({"a"});
  t.row({"1", "2", "3"});  // wider than the header
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_NE(os.str().find("3"), std::string::npos);
}

TEST(Fmt, NumberFormatting) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.23456), "1.2346");
  EXPECT_EQ(fmt_pct(0.1234), "12.34%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Fmt, RatioWithInterval) {
  metrics::Ratio r;
  r.value = 0.95;
  r.lo = 0.9;
  r.hi = 1.0;
  EXPECT_EQ(fmt_ratio(r, 2), "0.95 [0.90, 1.00]");
}

}  // namespace
}  // namespace llmfi::report
