// Tests for the mitigation/detection machinery: activation profiling,
// range-restriction hooks (chained with injectors), weight screening,
// and the activation detector.

#include <gtest/gtest.h>

#include <cmath>

#include "core/detector.h"
#include "core/injector.h"
#include "core/mitigation.h"
#include "data/world.h"

namespace llmfi::core {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 24;
  cfg.max_seq = 64;
  cfg.seed = 88;
  return cfg;
}

struct Fixture {
  tok::Vocab vocab;
  model::InferenceModel engine;
  std::vector<std::string> prompts;

  Fixture() : engine(model::ModelWeights::init(tiny_config()), {}) {
    for (const char* w : {"a", "b", "c", "d", "e", "f"}) vocab.add(w);
    prompts = {"a b c", "d e f a", "c c b"};
  }
};

TEST(Mitigation, ProfileCoversAllLayerKinds) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  EXPECT_EQ(profile.bound.size(), 7u);  // dense block layer kinds
  for (const auto& [kind, bound] : profile.bound) {
    EXPECT_GT(bound, 0.0f) << nn::layer_kind_name(kind);
    EXPECT_TRUE(std::isfinite(bound));
  }
}

TEST(Mitigation, MarginScalesBounds) {
  Fixture f;
  const auto p1 = profile_activations(f.engine, f.vocab, f.prompts, 1.0f);
  const auto p3 = profile_activations(f.engine, f.vocab, f.prompts, 3.0f);
  for (const auto& [kind, bound] : p1.bound) {
    EXPECT_NEAR(p3.bound.at(kind), 3.0f * bound, 1e-4f * bound);
  }
}

TEST(Mitigation, CleanRunsAreUntouched) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  RangeRestrictionHook hook(profile);
  f.engine.set_linear_hook(&hook);
  auto cache = f.engine.make_cache();
  const auto ids = f.vocab.encode("a b c");
  (void)f.engine.forward(ids, cache, 0);
  f.engine.set_linear_hook(nullptr);
  EXPECT_EQ(hook.corrections(), 0);
}

TEST(Mitigation, ClampsInjectedExtremes) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);

  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::UpProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.4;
  plan.out_col = 2;
  plan.bits = {30};  // fp32 exponent MSB -> ~1e38
  ComputationalFaultInjector injector(plan, num::DType::F32);
  RangeRestrictionHook restriction(profile, &injector);
  f.engine.set_linear_hook(&restriction);
  auto cache = f.engine.make_cache();
  const auto ids = f.vocab.encode("a b c d");
  auto logits = f.engine.forward(ids, cache, 0);
  f.engine.set_linear_hook(nullptr);

  EXPECT_TRUE(injector.fired());
  EXPECT_GE(restriction.corrections(), 1);
  for (float v : logits.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Mitigation, RestrictionReducesOutputDeviation) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  const auto ids = f.vocab.encode("a b c d e");

  auto run = [&](nn::LinearHook* hook) {
    f.engine.set_linear_hook(hook);
    auto cache = f.engine.make_cache();
    auto logits = f.engine.forward(ids, cache, 0);
    f.engine.set_linear_hook(nullptr);
    return logits;
  };
  const auto clean = run(nullptr);

  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::GateProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.2;
  plan.out_col = 5;
  plan.bits = {30};
  ComputationalFaultInjector raw(plan, num::DType::F32);
  const auto faulty = run(&raw);
  ComputationalFaultInjector again(plan, num::DType::F32);
  RangeRestrictionHook protected_hook(profile, &again);
  const auto mitigated = run(&protected_hook);

  auto deviation = [&clean](const tn::Tensor& x) {
    double d = 0.0;
    for (tn::Index i = 0; i < x.numel(); ++i) {
      const double diff = static_cast<double>(x.flat()[i]) -
                          clean.flat()[i];
      d += std::isfinite(diff) ? std::fabs(diff) : 1e30;
    }
    return d;
  };
  EXPECT_LT(deviation(mitigated), deviation(faulty));
}

TEST(Mitigation, WeightScreenFlagsCorruptionAndRecovers) {
  Fixture f;
  WeightScreen screen(f.engine);
  EXPECT_EQ(screen.scan(4.0f), 0);

  FaultPlan plan;
  plan.model = FaultModel::Mem2Bit;
  plan.layer_index = 0;
  plan.layer = f.engine.linear_layers()[0].id;
  plan.weight_row = 3;
  plan.weight_col = 4;
  plan.bits = {30, 2};  // exponent MSB -> far outside the envelope
  {
    WeightCorruption guard(f.engine, plan);
    EXPECT_EQ(screen.scan(4.0f), 1);
  }
  EXPECT_EQ(screen.scan(4.0f), 0);  // restored
}

TEST(Detector, SilentOnCleanRuns) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  ActivationDetector det(profile);
  f.engine.set_linear_hook(&det);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  EXPECT_FALSE(det.triggered());
}

TEST(Detector, TripsOnInjectedExtremeAndReportsSite) {
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {1, nn::LayerKind::VProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.0;
  plan.out_col = 1;
  plan.bits = {30};
  ComputationalFaultInjector injector(plan, num::DType::F32);
  ActivationDetector det(profile, &injector);
  f.engine.set_linear_hook(&det);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c d"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  ASSERT_TRUE(det.triggered());
  EXPECT_EQ(det.trip_site().block, 1);
  EXPECT_EQ(det.trip_site().kind, nn::LayerKind::VProj);
  EXPECT_EQ(det.trip_pass(), 0);

  det.reset();
  EXPECT_FALSE(det.triggered());
  EXPECT_EQ(det.trip_pass(), -1);
}

TEST(Detector, MantissaFlipStaysUnderRadar) {
  // A low-mantissa-bit flip keeps values inside the envelope: the
  // detector must not trip (these faults are also overwhelmingly masked
  // — coverage/benignity go hand in hand).
  Fixture f;
  const auto profile =
      profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::QProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.5;
  plan.out_col = 3;
  plan.bits = {1};  // low mantissa bit
  ComputationalFaultInjector injector(plan, num::DType::F32);
  ActivationDetector det(profile, &injector);
  f.engine.set_linear_hook(&det);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c d"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(det.triggered());
}

TEST(ChecksumDetector, ProfileCoversEveryLinearLayer) {
  Fixture f;
  const auto profile = profile_checksums(f.engine, f.vocab, f.prompts);
  EXPECT_EQ(profile.col_sum.size(), f.engine.linear_layers().size());
  for (const auto& [kind, tol] : profile.tolerance) {
    EXPECT_GT(tol, 0.0f) << nn::layer_kind_name(kind);
    EXPECT_TRUE(std::isfinite(tol));
  }
}

TEST(ChecksumDetector, SilentOnCleanRuns) {
  Fixture f;
  const auto profile = profile_checksums(f.engine, f.vocab, f.prompts);
  ChecksumDetector det(profile);
  f.engine.set_linear_hook(&det);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c d e"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  EXPECT_FALSE(det.triggered());
}

TEST(ChecksumDetector, CatchesFlipTheRangeDetectorMisses) {
  // A mid-mantissa flip perturbs one output element by far less than the
  // profiled envelope — invisible to range monitoring — but it still
  // moves the row sum away from the weight-column checksum.
  Fixture f;
  const auto act = profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  const auto sums = profile_checksums(f.engine, f.vocab, f.prompts);
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::UpProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.4;
  plan.out_col = 2;
  plan.bits = {20};  // mid-mantissa: small, in-envelope perturbation
  ComputationalFaultInjector injector(plan, num::DType::F32);
  ActivationDetector range(act, &injector);
  ChecksumDetector checksum(sums, &range);
  f.engine.set_linear_hook(&checksum);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c d"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(range.triggered());
  ASSERT_TRUE(checksum.triggered());
  EXPECT_EQ(checksum.trip_site().kind, nn::LayerKind::UpProj);
  EXPECT_EQ(checksum.trip_pass(), 0);
}

TEST(DetectorStack, LatchesFirstTrippedChildAndItsName) {
  Fixture f;
  const auto act = profile_activations(f.engine, f.vocab, f.prompts, 2.0f);
  const auto sums = profile_checksums(f.engine, f.vocab, f.prompts);
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {1, nn::LayerKind::VProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.0;
  plan.out_col = 1;
  plan.bits = {30};  // exponent MSB: trips both detectors
  ComputationalFaultInjector injector(plan, num::DType::F32);
  ChecksumDetector checksum(sums);
  ActivationDetector range(act);
  DetectorStack stack({&checksum, &range}, &injector);
  f.engine.set_linear_hook(&stack);
  auto cache = f.engine.make_cache();
  (void)f.engine.forward(f.vocab.encode("a b c d"), cache, 0);
  f.engine.set_linear_hook(nullptr);
  ASSERT_TRUE(stack.triggered());
  EXPECT_EQ(stack.name(), "checksum");  // first child in stack order
  EXPECT_EQ(stack.trip_site().block, 1);
  EXPECT_EQ(stack.trip_site().kind, nn::LayerKind::VProj);
  stack.reset();
  EXPECT_FALSE(stack.triggered());
  EXPECT_FALSE(checksum.triggered());
  EXPECT_FALSE(range.triggered());
  EXPECT_EQ(stack.name(), "stack");
}

// Satellite regression: detector/hook state must not leak from one trial
// into the next. Trial 1 trips the detector and clamps values; trial 2
// reuses the same hook objects through a fresh LinearHookGuard on a
// fault-free run — the install lifecycle has to start them clean.
TEST(HookLifecycle, GuardInstallResetsDetectorAndCounters) {
  Fixture f;
  model::InferenceModel engine(model::ModelWeights::init(tiny_config()), {});
  const auto act = profile_activations(engine, f.vocab, f.prompts, 2.0f);
  const auto sums = profile_checksums(engine, f.vocab, f.prompts);
  FaultPlan plan;
  plan.model = FaultModel::Comp1Bit;
  plan.layer = {0, nn::LayerKind::UpProj, -1};
  plan.pass_index = 0;
  plan.row_frac = 0.4;
  plan.out_col = 2;
  plan.bits = {30};
  ComputationalFaultInjector injector(plan, num::DType::F32);
  ChecksumDetector checksum(sums);
  ActivationDetector range(act);
  DetectorStack stack({&checksum, &range}, &injector);
  RangeRestrictionHook restriction(act, &injector);

  // Trial 1: fault fires, everything trips/corrects.
  {
    LinearHookGuard guard(engine, &stack);
    auto cache = engine.make_cache();
    (void)engine.forward(f.vocab.encode("a b c d"), cache, 0);
  }
  {
    LinearHookGuard guard(engine, &restriction);
    auto cache = engine.make_cache();
    (void)engine.forward(f.vocab.encode("a b c d"), cache, 0);
  }
  ASSERT_TRUE(stack.triggered());
  ASSERT_GE(restriction.corrections(), 1);

  // Trial 2: same hooks, fresh guards, no manual reset. Installation
  // must clear the trip latch, the correction counter, and re-arm the
  // injector... which, re-armed, fires again under the restriction hook.
  {
    LinearHookGuard guard(engine, &stack);
    EXPECT_FALSE(stack.triggered());
    EXPECT_FALSE(checksum.triggered());
    EXPECT_FALSE(range.triggered());
    auto cache = engine.make_cache();
    (void)engine.forward(f.vocab.encode("a b"), cache, /*pass_index=*/3);
    EXPECT_FALSE(stack.triggered());  // fault targets pass 0 only
  }
  {
    LinearHookGuard guard(engine, &restriction);
    EXPECT_EQ(restriction.corrections(), 0);
    auto cache = engine.make_cache();
    (void)engine.forward(f.vocab.encode("a b"), cache, /*pass_index=*/3);
    EXPECT_EQ(restriction.corrections(), 0);
  }
}

}  // namespace
}  // namespace llmfi::core
